// bench_test.go holds one benchmark per table/figure of the paper's
// evaluation (§6), plus micro-benchmarks for the performance-critical
// substrates and the ablation studies called out in DESIGN.md. Each
// figure/table bench runs the corresponding experiment kernel end to end;
// regenerating the full-size datasets is cmd/rebudget-bench's job.
package rebudget_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"rebudget"
	"rebudget/internal/cache"
	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/experiments"
	"rebudget/internal/market"
	"rebudget/internal/numeric"
	"rebudget/internal/server"
	"rebudget/internal/tenant"
	"rebudget/internal/trace"
	"rebudget/internal/workload"
)

// --- Table 1 ---

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if cfg := rebudget.NewSystemConfig(64); cfg.PowerBudgetW != 640 {
			b.Fatal("bad config")
		}
	}
}

// --- Figure 1: theory bounds ---

func BenchmarkFig1TheoryBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig1(101)
		if len(pts) != 101 {
			b.Fatal("bad point count")
		}
	}
}

// --- Figure 2: cache utility convexification ---

func BenchmarkFig2CacheUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: per-app lambda under budget reassignment ---

func BenchmarkFig3Lambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: phase-1 sweep (efficiency and envy-freeness panels) ---

// sweepOnce runs a reduced sweep (8 cores, one bundle per category) — the
// same kernel as the full 64-core × 40-bundle dataset.
func sweepOnce(b *testing.B) *experiments.SweepResult {
	b.Helper()
	s, err := experiments.RunSweep(8, 1, 7, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// sweepRounds totals the bidding–pricing rounds a sweep performed, so the
// benches can report convergence cost (rounds/op) alongside wall time.
func sweepRounds(s *experiments.SweepResult) int {
	rounds := 0
	for _, br := range s.Bundles {
		for _, it := range br.Iterations {
			rounds += it
		}
	}
	return rounds
}

func BenchmarkFig4Efficiency(b *testing.B) {
	b.ReportAllocs()
	rounds := 0
	for i := 0; i < b.N; i++ {
		s := sweepOnce(b)
		if len(s.EfficiencyColumn("ReBudget-40")) != 6 {
			b.Fatal("bad sweep shape")
		}
		rounds += sweepRounds(s)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func BenchmarkFig4EnvyFreeness(b *testing.B) {
	b.ReportAllocs()
	rounds := 0
	for i := 0; i < b.N; i++ {
		s := sweepOnce(b)
		if len(s.EnvyColumn("EqualBudget")) != 6 {
			b.Fatal("bad sweep shape")
		}
		rounds += sweepRounds(s)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// --- Figure 5: detailed execution-driven simulation ---

func BenchmarkFig5Simulation(b *testing.B) {
	cfg := cmpsim.DefaultConfig(4)
	cfg.Epochs = 4
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(cfg, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6.4 convergence study ---

func BenchmarkConvergence(b *testing.B) {
	b.ReportAllocs()
	rounds := 0
	for i := 0; i < b.N; i++ {
		s := sweepOnce(b)
		for _, sum := range s.Summarize() {
			if sum.Mechanism != "EqualShare" && sum.P95Iterations <= 0 {
				b.Fatal("missing iteration data")
			}
		}
		rounds += sweepRounds(s)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// --- ablations (DESIGN.md design choices) ---

func BenchmarkAblationTalus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTalus(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBackoff(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBidOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBidOptimizer(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLambdaThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLambdaThreshold(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkMarketEquilibrium8(b *testing.B)  { benchEquilibrium(b, 8, 0) }
func BenchmarkMarketEquilibrium64(b *testing.B) { benchEquilibrium(b, 64, 0) }

// Serial pins Workers to 1 — the benchstat reference for the worker-pool
// speedup (identical results, different wall time on multi-core hosts).
func BenchmarkMarketEquilibrium64Serial(b *testing.B) { benchEquilibrium(b, 64, 1) }

func benchEquilibrium(b *testing.B, cores, workers int) {
	b.Helper()
	bundle, err := workload.Generate(workload.CPBN, cores, numeric.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		b.Fatal(err)
	}
	var players []*market.Player
	for i, p := range setup.Players {
		players = append(players, &market.Player{Name: p.Name, Utility: p.Utility, Budget: 100 + float64(i%3)})
	}
	m, err := market.New(setup.Capacity, players, market.Config{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		eq, err := market.Settle(m.FindEquilibrium())
		if err != nil {
			b.Fatal(err)
		}
		rounds += eq.Iterations
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func BenchmarkReBudget64(b *testing.B) {
	bundle, err := workload.Generate(workload.CPBB, 64, numeric.NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		out, err := (core.ReBudget{Step: 20}).Allocate(setup.Capacity, setup.Players)
		if err != nil {
			b.Fatal(err)
		}
		rounds += out.Iterations
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func BenchmarkMaxEfficiency64(b *testing.B) {
	bundle, err := workload.Generate(workload.CPBB, 64, numeric.NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.MaxEfficiency{}).Allocate(setup.Capacity, setup.Players); err != nil {
			b.Fatal(err)
		}
	}
}

// benchChipEpoch measures the single-chip hot path: one simulated epoch of
// an n-core chip with reallocation suppressed, so the loop body is pure
// runEpoch (trace generation, interleave, cache/bank simulation, metric
// retirement). allocs/op here is the steady-state allocation gauge the
// zero-alloc test pins — keep it at 0.
func benchChipEpoch(b *testing.B, cores int) {
	b.Helper()
	cfg := cmpsim.DefaultConfig(cores)
	cfg.ReallocEvery = 1 << 30 // one allocation up front, then pure epochs
	bundle, err := workload.Generate(workload.CPBN, cores, numeric.NewRand(7))
	if err != nil {
		b.Fatal(err)
	}
	chip, err := cmpsim.NewChip(cfg, bundle)
	if err != nil {
		b.Fatal(err)
	}
	if err := chip.Begin(core.EqualShare{}); err != nil {
		b.Fatal(err)
	}
	// One epoch before the timer: settles scratch buffers and the initial
	// allocation so the measured loop is the steady state.
	if err := chip.StepEpoch(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chip.StepEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChipEpoch8(b *testing.B)  { benchChipEpoch(b, 8) }
func BenchmarkChipEpoch64(b *testing.B) { benchChipEpoch(b, 64) }

// benchSweep runs the reduced Fig5 detailed simulation through the
// experiment engine with an explicit worker count. Serial vs Parallel is
// the benchstat pair for the sweep-level fan-out (identical bytes out,
// wall-clock scales with cores).
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	cfg := cmpsim.DefaultConfig(4)
	cfg.Epochs = 4
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2000
	e := experiments.Engine{Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFig5(cfg, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.NewPartitioned(cache.Config{CapacityBytes: 4 << 20, Ways: 16, Partitions: 16})
	if err != nil {
		b.Fatal(err)
	}
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{
		{Kind: trace.Geometric, Weight: 0.8, Param: 4096},
		{Kind: trace.Streaming, Weight: 0.2},
	}, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(g.Next(), i&15)
	}
}

func BenchmarkUMONObserve(b *testing.B) {
	u, err := cache.NewUMON(16, 5)
	if err != nil {
		b.Fatal(err)
	}
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{
		{Kind: trace.Geometric, Weight: 1, Param: 4096},
	}, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Observe(g.Next())
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{
		{Kind: trace.Geometric, Weight: 0.7, Param: 8192},
		{Kind: trace.Cyclic, Weight: 0.2, Param: 4096},
		{Kind: trace.Streaming, Weight: 0.1},
	}, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkTalusSplit(b *testing.B) {
	ratio := make([]float64, 17)
	for r := range ratio {
		if r < 12 {
			ratio[r] = 0.8
		} else {
			ratio[r] = 0.02
		}
	}
	mc, err := cache.NewMissCurve(ratio)
	if err != nil {
		b.Fatal(err)
	}
	tal, err := cache.NewTalus(mc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tal.Split(float64(i%15) + 0.5)
	}
}

func BenchmarkUtilityValue(b *testing.B) {
	spec, err := rebudget.LookupApp("mcf")
	if err != nil {
		b.Fatal(err)
	}
	m := rebudget.NewAppModel(spec)
	curve, err := m.AnalyticMissCurve()
	if err != nil {
		b.Fatal(err)
	}
	u, err := rebudget.NewAppUtility(m, curve)
	if err != nil {
		b.Fatal(err)
	}
	alloc := []float64{5.5, 7.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Value(alloc)
	}
}

func BenchmarkThreeResourceEquilibrium(b *testing.B) {
	bundle, err := workload.Generate(workload.BBNN, 8, numeric.NewRand(4))
	if err != nil {
		b.Fatal(err)
	}
	setup, err := workload.NewSetupWithBandwidth(bundle)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.EqualBudget{}).Allocate(setup.Capacity, setup.Players); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving tier: the request hot path ---

// BenchmarkServeEpoch measures one epoch request through the daemon's full
// HTTP path — routing, admission, session mailbox, engine step, JSON
// response — for a cheap (8-core equal-share) session, the dominant request
// class under mixed load. allocs/op here is the serving tier's per-request
// allocation budget; scripts/bench_record.sh tracks it alongside the
// kernel benchmarks.
func BenchmarkServeEpoch(b *testing.B) {
	srv := server.New(server.Config{
		Workers: 4,
		IdleTTL: -1,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer srv.Close()
	h := srv.Handler()
	resilient := false
	spec, err := json.Marshal(server.SessionSpec{
		ID:        "bench",
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "equalshare",
		Resilient: &resilient,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(spec)))
	if rec.Code != 201 {
		b.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sessions/bench/epoch", http.NoBody))
		if rec.Code != 200 {
			b.Fatalf("epoch: %d %s", rec.Code, rec.Body)
		}
	}
}

func BenchmarkAblationGranularity(b *testing.B) {
	cfg := cmpsim.DefaultConfig(8)
	cfg.Epochs = 4
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGranularity(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tenant economy ---

// BenchmarkTenantRebalance measures one lend/reclaim epoch over a 64-leaf
// two-level tenant tree with churning demand — the tenant governor runs
// this on its epoch ticker, so it must stay far off the serving hot path's
// budget.
func BenchmarkTenantRebalance(b *testing.B) {
	var specs []tenant.NodeSpec
	for i := 0; i < 8; i++ {
		parent := tenant.NodeSpec{Name: fmt.Sprintf("org%d", i), Share: float64(1 + i%3)}
		for j := 0; j < 8; j++ {
			parent.Children = append(parent.Children, tenant.NodeSpec{
				Name:  fmt.Sprintf("team%d", j),
				Share: float64(1 + j%2),
			})
		}
		specs = append(specs, parent)
	}
	tr, err := tenant.New(specs, tenant.Config{Capacity: 1024})
	if err != nil {
		b.Fatal(err)
	}
	var leaves []string
	for _, st := range tr.StatusAll() {
		if st.Leaf {
			leaves = append(leaves, st.Path)
		}
	}
	rng := numeric.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, path := range leaves {
			if err := tr.SetDemand(path, 32*rng.Float64()); err != nil {
				b.Fatal(err)
			}
		}
		tr.Rebalance()
	}
}

// BenchmarkTenantFrontier runs the reduced frontier sweep end to end — the
// experiment kernel scripts/bench_record.sh tracks for the tenant economy.
func BenchmarkTenantFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTenantFrontier(6, 60, 1, []float64{0.25, 0.75}); err != nil {
			b.Fatal(err)
		}
	}
}
