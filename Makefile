# Development targets. `make ci` is the gate every change must pass: a full
# build, vet, and the test suite under the race detector (the allocation
# pipeline is wrapper-heavy and lock-protected; races are a primary failure
# mode of the resilience layer, and the parallel equilibrium engine's
# serial-vs-parallel determinism tests only mean something under -race).
# ci ends with a non-blocking perf smoke: a >10% regression of the market
# equilibrium kernel warns but never fails the build.

GO ?= go

.PHONY: ci build vet test race bench bench-all bench-smoke

ci: build vet race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Key benchmarks (equilibrium engine, ReBudget, simulation, cache substrate)
# recorded as a dated JSON snapshot: BENCH_<yyyymmdd>.json.
bench:
	scripts/bench_record.sh

# Every benchmark once — a smoke test that the kernels still run, not a
# measurement.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-smoke:
	scripts/bench_smoke.sh
