# Development targets. `make ci` is the gate every change must pass: a full
# build, vet (library and commands), and the test suite under the race
# detector (the allocation pipeline is wrapper-heavy and lock-protected;
# races are a primary failure mode of the resilience layer, the parallel
# equilibrium engine's serial-vs-parallel determinism tests only mean
# something under -race, and the serving layer multiplexes sessions across
# goroutines). ci ends with three smokes: serve-smoke boots a real rebudgetd
# and drives it through the typed client (including a snapshot-rehydrate
# restart), router-smoke boots a two-shard tier behind rebudget-router and
# kills a shard mid-traffic, chaos-smoke runs the seeded rebudget-chaos soak
# (partitions, a kill/restart, a latency spike and snapshot corruption
# against a live two-shard tier, asserting zero lost sessions and
# bit-identity to an undisturbed baseline), load-smoke drives a two-shard
# tier with rebudget-loadgen and asserts throughput, a bounded 429 rate and
# the weighted admission gauges, tenant-smoke arms the tenant budget economy
# on one shard and drives a lend-then-reclaim cycle through live traffic
# (idle tenant's slice lent out, then reclaimed back to the deserved split
# when its demand returns, observed through the per-tenant gauges),
# churn-smoke grows and shrinks a live tier 2 -> 4 -> 2 shards through the
# router's admin API under load (zero lost sessions, gossip convergence on
# a second router, snapshot-backed migration), density-smoke floods one
# shard with 10k resident sessions through the loadgen's -resident mode
# (bounded create time, zero errors, sub-250ms full-population scrape, the
# hibernation sweep parking the idle population), and
# bench-smoke warns (but does not fail, unless BENCH_STRICT=1) on a >10%
# regression of the market equilibrium kernel against the newest
# BENCH_*.json snapshot.

GO ?= go

.PHONY: ci build vet vet-cmd test race race-server race-router race-chaos race-tenant race-cluster bench bench-all bench-smoke serve-smoke router-smoke chaos-smoke load-smoke tenant-smoke churn-smoke density-smoke load-ab density-ab profile-sim

ci: build vet vet-cmd race race-server race-router race-chaos race-tenant race-cluster serve-smoke router-smoke chaos-smoke load-smoke tenant-smoke churn-smoke density-smoke bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The daemon and smoke-driver commands, vetted explicitly so `make ci`
# keeps covering them even if a future `vet` narrows its package list.
vet-cmd:
	$(GO) vet ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serving layer on its own under the race detector: session loops,
# LRU eviction, dispatcher backpressure, and the 64-session stress test.
race-server:
	$(GO) test -race ./internal/server/...

# The sharded serving tier on its own under the race detector: ring moves,
# proxy failover, and the cross-shard migration churn test.
race-router:
	$(GO) test -race ./internal/router/...

# End-to-end: start rebudgetd on a random port, drive one session through
# 3 epochs via the client, scrape /metrics, assert the counters moved,
# check SIGTERM drains cleanly, then restart against the same snapshot dir
# and assert the session rehydrates with its progress intact.
serve-smoke:
	scripts/serve_smoke.sh

# The chaos layer on its own under the race detector: the injector's
# per-target streams, the chaos transport and the faulty snapshot store
# are all shared across goroutines in the soak.
race-chaos:
	$(GO) test -race ./internal/chaos/...

# The cluster substrate on its own under the race detector: the consistent
# ring, the MovedKeys rebalance planner and its minimal-movement property
# tests, gossip digest merging, and the snapshot-store backends (HTTP and
# N-way replicated) under the chaos FaultySnapshotStore.
race-cluster:
	$(GO) test -race ./internal/cluster/...

# The tenant economy on its own under the race detector: the tree's
# lend/reclaim property tests plus the governor, which is hammered from
# every request goroutine while the epoch ticker rebalances.
race-tenant:
	$(GO) test -race ./internal/tenant/...

# End-to-end tenancy: one rebudgetd with -tenants armed; an idle and a
# saturated tenant must go through a full lend-then-reclaim cycle under
# live rebudget-loadgen traffic, observed via the per-tenant gauges.
tenant-smoke:
	scripts/tenant_smoke.sh

# End-to-end sharding: two rebudgetd shards sharing a snapshot dir behind a
# rebudget-router; 8 sessions placed, one shard killed mid-traffic, all
# sessions must fail over and resume warm on the survivor.
router-smoke:
	scripts/router_smoke.sh

# End-to-end chaos: schedule-determinism check, then the full rebudget-chaos
# soak — scripted partitions, a shard kill/restart, a latency spike and
# snapshot corruption against a live two-shard tier, asserting zero lost
# sessions, bit-identity to an undisturbed baseline, a bounded error rate
# and breaker/checksum activity in /metrics. CHAOS_SEED overrides the seed.
chaos-smoke:
	scripts/chaos_smoke.sh

# Key benchmarks (equilibrium engine, ReBudget, simulation, cache substrate)
# recorded as a dated JSON snapshot: BENCH_<yyyymmdd>.json.
bench:
	scripts/bench_record.sh

# Every benchmark once — a smoke test that the kernels still run, not a
# measurement.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-smoke:
	scripts/bench_smoke.sh

# End-to-end elastic membership: a snapstore, four shards (two in the ring,
# two standing by) and two gossiping routers; grow 2 -> 4 -> 2 through the
# authenticated admin API under live rebudget-loadgen traffic, asserting
# zero lost sessions, zero loadgen errors, membership/migration/gossip
# counters on both routers, and warm restores through the snapstore.
# CHURN_DURATION overrides the load window (default 16s).
churn-smoke:
	scripts/churn_smoke.sh

# Scaled-down load-harness smoke: two shards behind a router driven by
# rebudget-loadgen (~30s total), asserting nonzero throughput, a bounded
# 429 rate, and the weighted admission gauges in /metrics. LOAD_DURATION
# overrides the measured window (default 15s).
load-smoke:
	scripts/load_smoke.sh

# The cost-vs-count admission A/B (90/10 cheap/expensive mix at
# saturation): runs rebudget-loadgen against both admission modes and
# reports the cheap class's p99 improvement. Reports land in .bench/ and
# are folded into the next dated BENCH_*.json by scripts/bench_record.sh.
load-ab:
	scripts/load_ab.sh

# High-density serving smoke: one shard, 10k resident sessions created
# through the loadgen's -resident mode with the API key armed. Asserts a
# bounded create flood, zero tick errors, a sub-250ms full-population
# /metrics scrape with no per-session-id series, and the hibernation sweep
# parking >=95% of the idle population. DENSITY_RESIDENT scales it down
# for slower machines.
density-smoke:
	scripts/density_smoke.sh

# The 100k-resident density measurement: four shards behind a router,
# DENSITY_RESIDENT (default 100000) sessions created and open-loop ticked
# through a rotating working set. Report (tick percentiles, create rate,
# scrape time, per-shard parked counts and RSS) lands in .bench/density.json
# and is folded into the next dated BENCH_*.json by scripts/bench_record.sh.
# A measurement run, not a CI gate.
density-ab:
	scripts/density_ab.sh

# CPU profile of the end-to-end detailed simulation — the starting point for
# hot-path work. Leaves sim.cpu.prof and the sim.test binary behind:
#   go tool pprof sim.test sim.cpu.prof
profile-sim:
	$(GO) test -run '^$$' -bench '^BenchmarkFig5Simulation$$' -benchtime 5x -cpuprofile sim.cpu.prof -o sim.test .
