# Development targets. `make ci` is the gate every change must pass: a full
# build, vet, and the test suite under the race detector (the allocation
# pipeline is wrapper-heavy and lock-protected; races are a primary failure
# mode of the resilience layer).

GO ?= go

.PHONY: ci build vet test race bench

ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
