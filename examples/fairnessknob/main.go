// Fairnessknob: sweep ReBudget's two knobs — the step size and the
// administrator's envy-freeness floor — and print the efficiency/fairness
// frontier they trace (§6.2: "system designers can use the step as a knob
// to trade off one for the other").
package main

import (
	"fmt"
	"log"

	"rebudget"
)

func main() {
	// The paper's BBPC case-study bundle (§6.1.1) — the category with the
	// most headroom for budget reassignment. Note that per-bundle results
	// are not guaranteed monotone in the knob (§3.2); the aggregate trend
	// across many bundles is (see cmd/rebudget-bench -exp fig4).
	pick, err := rebudget.Figure3Bundle()
	if err != nil {
		log.Fatal(err)
	}
	setup, err := rebudget.NewSetup(pick)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("knob 1: step aggressiveness (initial budget cut)")
	fmt.Printf("%-14s %10s %8s %8s %10s\n", "mechanism", "speedup", "EF", "MBR", "EF bound")
	base, err := rebudget.EqualBudget{}.Allocate(setup.Capacity, setup.Players)
	if err != nil {
		log.Fatal(err)
	}
	printRow(setup, base)
	for _, step := range []float64{5, 10, 20, 40, 60} {
		out, err := rebudget.ReBudget{Step: step}.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		printRow(setup, out)
	}

	fmt.Println("\nknob 2: administrator's fairness floor (Theorem 2 → MBR floor)")
	fmt.Printf("%-14s %10s %8s %8s %10s\n", "min EF", "speedup", "EF", "MBR", "EF bound")
	for _, minEF := range []float64{0.8, 0.6, 0.4, 0.2} {
		out, err := rebudget.ReBudget{MinEnvyFreeness: minEF}.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		ef, err := out.EnvyFreeness(setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if ef < minEF {
			status = "VIOLATED"
		}
		fmt.Printf("%-14.2f %10.3f %8.3f %8.3f %10.3f  %s\n",
			minEF, out.Efficiency(), ef, out.MBR, out.EFBound(), status)
	}
}

func printRow(setup *rebudget.Setup, out *rebudget.Outcome) {
	ef, err := out.EnvyFreeness(setup.Players)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %10.3f %8.3f %8.3f %10.3f\n",
		out.Mechanism, out.Efficiency(), ef, out.MBR, out.EFBound())
}
