// Contextswitch: §4.3 schedules the allocator every millisecond precisely
// so it can follow changing resource demands — context switches and phase
// changes. This example runs four compute-bound applications, switches one
// core to the cache-hungry mcf mid-run, and shows the market redirecting
// cache to the newcomer within a few epochs.
package main

import (
	"fmt"
	"log"

	"rebudget"
)

func main() {
	var bundle rebudget.Bundle
	bundle.Category = "switch-demo"
	for _, name := range []string{"sixtrack", "hmmer", "eon", "crafty"} {
		spec, err := rebudget.LookupApp(name)
		if err != nil {
			log.Fatal(err)
		}
		bundle.Apps = append(bundle.Apps, spec)
	}

	cfg := rebudget.DefaultSimConfig(4)
	cfg.Epochs = 16
	chip, err := rebudget.NewChip(cfg, bundle)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cores 0-3 run compute-bound apps; at epoch 8, core 0 switches to mcf")
	res, err := chip.RunWithSwitches(rebudget.EqualBudget{}, []rebudget.SwitchEvent{
		{Epoch: 8, Core: 0, App: "mcf"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmechanism %s after the switch:\n", res.Mechanism)
	fmt.Printf("%-6s %-10s %12s %12s %12s\n", "core", "app", "norm perf", "Δregions", "Δwatts")
	for i := range res.NormPerf {
		name := bundle.Apps[i].Name
		fmt.Printf("%-6d %-10s %12.3f %12.2f %12.2f\n",
			i, name, res.NormPerf[i],
			res.FinalOutcome.Allocations[i][0], res.FinalOutcome.Allocations[i][1])
	}
	fmt.Println("\nthe market followed the demand shift: the newcomer holds the")
	fmt.Println("cache its peers never wanted, paid for from the same equal budget")
}
