// Multithreaded: §5 notes that resources can be allocated at application
// granularity — all threads of a parallel application share one market
// player's budget and split its allocation. This example runs a mix of
// wide and narrow applications and shows why equal *per-application*
// budgets over-fund narrow apps, and how ReBudget reclaims the surplus.
package main

import (
	"fmt"
	"log"

	"rebudget"
)

func main() {
	mk := func(name string, threads int) rebudget.ThreadedApp {
		spec, err := rebudget.LookupApp(name)
		if err != nil {
			log.Fatal(err)
		}
		return rebudget.ThreadedApp{Spec: spec, Threads: threads}
	}
	// 16 cores: one 8-thread solver, one 4-thread cache-hungry app, and
	// four single-thread jobs.
	tb := rebudget.ThreadedBundle{Apps: []rebudget.ThreadedApp{
		mk("swim", 8),
		mk("mcf", 4),
		mk("sixtrack", 1),
		mk("hmmer", 1),
		mk("gzip", 1),
		mk("lucas", 1),
	}}
	setup, err := rebudget.NewSetupThreaded(tb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d applications on %d cores; market capacity %.0f regions, %.1f W\n\n",
		len(tb.Apps), tb.Cores(), setup.Capacity[0], setup.Capacity[1])

	for _, mech := range []rebudget.Allocator{
		rebudget.EqualBudget{},
		rebudget.ReBudget{Step: 40},
	} {
		out, err := mech.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		per, err := rebudget.PerThreadUtilities(tb, out.Utilities)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: per-core weighted speedup %.3f (max %d)\n", out.Mechanism, out.Efficiency(), tb.Cores())
		fmt.Printf("  %-14s %8s %10s %10s %10s\n", "application", "budget", "Δregions", "Δwatts", "perf/thread")
		for i, p := range setup.Players {
			fmt.Printf("  %-14s %8.1f %10.2f %10.2f %10.3f\n",
				p.Name, out.Budgets[i], out.Allocations[i][0], out.Allocations[i][1], per[i])
		}
		fmt.Println()
	}
}
