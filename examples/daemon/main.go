// Daemon: the serving layer end to end, in process. An embedded rebudgetd
// hosts two tenants — an analytic-market session re-solving a warm-started
// equilibrium each epoch, and an execution-driven cmpsim session stepping
// 1 ms hardware epochs — while the typed client drives epochs, injects
// telemetry (a phase change; a context switch), and scrapes /metrics. This
// is §4.3's per-epoch reallocation loop hosted as a multi-tenant service.
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

func main() {
	// Silence request logs; the example narrates itself.
	quiet := slog.New(slog.NewTextHandler(discard{}, nil))
	srv := server.New(server.Config{Logger: quiet})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(&http.Client{Timeout: time.Minute}))
	ctx := context.Background()

	fmt.Printf("daemon up at %s\n\n", ts.URL)

	// --- Tenant 1: analytic market, warm-started ReBudget epochs ---
	mkt, err := c.CreateSession(ctx, server.SessionSpec{
		ID:        "edge-cluster",
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "rebudget-0.05",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market session %q: %d players, mechanism %s\n", mkt.ID, mkt.Cores, mkt.Mechanism)
	for epoch := 1; epoch <= 3; epoch++ {
		v, err := c.StepEpoch(ctx, mkt.ID)
		if err != nil {
			log.Fatal(err)
		}
		a := v.Alloc
		fmt.Printf("  epoch %d: efficiency %.3f  iterations %3d", epoch, a.Efficiency, a.Iterations)
		if a.EnvyFreeness != nil {
			fmt.Printf("  EF %.3f", *a.EnvyFreeness)
		}
		fmt.Println()
	}
	// A phase change: player 0's monitors report doubled demand; the next
	// warm-started epoch re-converges from the previous bids.
	if _, err := c.Telemetry(ctx, mkt.ID, server.TelemetrySpec{
		Players: []server.PlayerTelemetry{{Player: 0, Demand: 2}},
	}); err != nil {
		log.Fatal(err)
	}
	v, err := c.StepEpoch(ctx, mkt.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after 2x demand on %s: efficiency %.3f  iterations %3d\n\n",
		v.Alloc.Players[0], v.Alloc.Efficiency, v.Alloc.Iterations)

	// --- Tenant 2: execution-driven chip, context switch mid-run ---
	sim, err := c.CreateSession(ctx, server.SessionSpec{
		ID:        "chip-0",
		Mode:      server.ModeSim,
		Workload:  server.WorkloadSpec{Category: "CCPP", Seed: 7},
		Mechanism: "rebudget-0.05",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim session %q: %d cores\n", sim.ID, sim.Cores)
	if _, err := c.StepEpochs(ctx, sim.ID, 6); err != nil {
		log.Fatal(err)
	}
	// The OS switches core 3 to a memory-bound app; the next epoch's
	// monitoring + reallocation adapts (§4.3).
	if _, err := c.Telemetry(ctx, sim.ID, server.TelemetrySpec{
		Switches: []server.SwitchSpec{{Core: 3, App: "mcf"}},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := c.StepEpochs(ctx, sim.ID, 6); err != nil {
		log.Fatal(err)
	}
	res, err := c.Result(ctx, sim.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after 12 epochs: weighted speedup %.2f  EF %.3f  health %s\n\n",
		res.WeightedSpeedup, res.EnvyFreeness, res.Health.State)

	// --- Observability ---
	h, err := c.Healthz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthz: %s, %d sessions\n", h.Status, h.Sessions)
	text, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected /metrics:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "rebudgetd_sessions_live") ||
			strings.HasPrefix(line, "rebudgetd_epochs_served_total") ||
			strings.HasPrefix(line, "rebudgetd_equilibrium_runs_total") ||
			strings.HasPrefix(line, "rebudgetd_equilibrium_rounds_total") ||
			strings.HasPrefix(line, "rebudgetd_sessions_by_state") {
			fmt.Printf("  %s\n", line)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
