// Multicore: compare every allocation mechanism on a custom 8-core
// workload, both analytically and under the detailed execution-driven
// simulator (online UMON monitoring, Talus shadow partitions, DVFS under a
// shared power budget).
package main

import (
	"fmt"
	"log"

	"rebudget"
)

func main() {
	// Hand-pick a mix: two cache-hungry apps, two compute-bound apps,
	// two that want both, and two that want neither.
	var bundle rebudget.Bundle
	bundle.Category = "custom"
	for _, name := range []string{"mcf", "art", "sixtrack", "hmmer", "swim", "equake", "lucas", "gap"} {
		spec, err := rebudget.LookupApp(name)
		if err != nil {
			log.Fatal(err)
		}
		bundle.Apps = append(bundle.Apps, spec)
	}

	mechanisms := []rebudget.Allocator{
		rebudget.EqualShare{},
		rebudget.EqualBudget{},
		rebudget.Balanced{},
		rebudget.ReBudget{Step: 20},
		rebudget.ReBudget{Step: 40},
		rebudget.MaxEfficiency{},
	}

	// Phase 1: analytic market over profiled, convexified utilities.
	setup, err := rebudget.NewSetup(bundle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytic market (profiled utilities):")
	fmt.Printf("%-14s %10s %8s %8s %8s\n", "mechanism", "speedup", "EF", "MUR", "MBR")
	for _, m := range mechanisms {
		out, err := m.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		ef, err := out.EnvyFreeness(setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.3f %8.3f %8.3f %8.3f\n",
			out.Mechanism, out.Efficiency(), ef, out.MUR, out.MBR)
	}

	// Phase 2: detailed simulation with runtime monitoring. Each
	// mechanism gets a fresh chip with the same seed so runs compare
	// apples to apples.
	fmt.Println("\nexecution-driven simulation (online monitoring):")
	fmt.Printf("%-14s %10s %8s %10s %8s\n", "mechanism", "speedup", "EF", "iters/realloc", "temp °C")
	cfg := rebudget.DefaultSimConfig(len(bundle.Apps))
	for _, m := range mechanisms {
		chip, err := rebudget.NewChip(cfg, bundle)
		if err != nil {
			log.Fatal(err)
		}
		res, err := chip.Run(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.3f %8.3f %10.1f %8.1f\n",
			res.Mechanism, res.WeightedSpeedup, res.EnvyFreeness, res.MeanIterations, res.MaxTempC)
	}
}
