// Cluster: the market framework is not CMP-specific — any set of players
// with concave utilities over divisible resources works. This example
// allocates CPU cores and network bandwidth among datacenter tenants with
// hand-written utility functions, then uses ReBudget to favour the tenants
// that benefit most while keeping a provable fairness floor.
package main

import (
	"fmt"
	"log"
	"math"

	"rebudget"
)

// tenant models a service's diminishing-returns utility over
// [cpuCores, gbps]: u = weighted log-saturation per resource.
type tenant struct {
	name      string
	cpuWeight float64 // relative value of CPU
	netWeight float64 // relative value of bandwidth
	cpuDemand float64 // cores at which CPU utility saturates
	netDemand float64 // Gbps at which bandwidth utility saturates
}

func (t tenant) utility(alloc []float64) float64 {
	sat := func(x, demand float64) float64 {
		// log1p-shaped: concave, non-decreasing, ≈1 at the demand point.
		return math.Log1p(x/demand*(math.E-1)) / 1.0
	}
	u := t.cpuWeight*math.Min(1, sat(alloc[0], t.cpuDemand)) +
		t.netWeight*math.Min(1, sat(alloc[1], t.netDemand))
	return u / (t.cpuWeight + t.netWeight)
}

func main() {
	// 128 cores and 100 Gbps to divide among four tenants.
	capacity := []float64{128, 100}
	tenants := []tenant{
		{name: "web-frontend", cpuWeight: 3, netWeight: 2, cpuDemand: 48, netDemand: 40},
		{name: "batch-ml", cpuWeight: 5, netWeight: 0.5, cpuDemand: 96, netDemand: 10},
		{name: "video-cdn", cpuWeight: 0.5, netWeight: 5, cpuDemand: 12, netDemand: 80},
		{name: "cron-jobs", cpuWeight: 1, netWeight: 1, cpuDemand: 8, netDemand: 5},
	}

	var players []rebudget.PlayerSpec
	for _, t := range tenants {
		t := t
		players = append(players, rebudget.PlayerSpec{
			Name:    t.name,
			Utility: rebudget.UtilityFunc(t.utility),
			// Balanced uses these to size budgets by potential.
			MaxAlloc: []float64{t.cpuDemand, t.netDemand},
			MinAlloc: []float64{0, 0},
		})
	}

	for _, mech := range []rebudget.Allocator{
		rebudget.EqualBudget{},
		rebudget.ReBudget{MinEnvyFreeness: 0.5},
		rebudget.MaxEfficiency{},
	} {
		out, err := mech.Allocate(capacity, players)
		if err != nil {
			log.Fatal(err)
		}
		ef, err := out.EnvyFreeness(players)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: welfare %.3f, envy-freeness %.3f\n", out.Mechanism, out.Efficiency(), ef)
		for i, t := range tenants {
			budget := "-"
			if out.Budgets != nil {
				budget = fmt.Sprintf("%.0f", out.Budgets[i])
			}
			fmt.Printf("  %-14s budget %4s → %6.1f cores, %6.1f Gbps (u=%.3f)\n",
				t.name, budget, out.Allocations[i][0], out.Allocations[i][1], out.Utilities[i])
		}
		fmt.Println()
	}
}
