// Quickstart: allocate cache and power among the paper's Figure 3 bundle
// with ReBudget and inspect the efficiency/fairness diagnostics.
package main

import (
	"fmt"
	"log"

	"rebudget"
)

func main() {
	// The 8-core BBPC case-study bundle from the paper (§6.1.1):
	// apsi×2, swim×2, mcf×2, hmmer, sixtrack.
	bundle, err := rebudget.Figure3Bundle()
	if err != nil {
		log.Fatal(err)
	}

	// Profile each application analytically and assemble the market:
	// capacities are the cache regions and watts beyond the free
	// per-core floors (one 128 kB region + 800 MHz power).
	setup, err := rebudget.NewSetup(bundle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %.0f cache regions and %.1f W to allocate across %d players\n\n",
		setup.Capacity[0], setup.Capacity[1], len(setup.Players))

	// ReBudget with the paper's "step" knob: larger steps trade fairness
	// for efficiency.
	out, err := rebudget.ReBudget{Step: 20}.Allocate(setup.Capacity, setup.Players)
	if err != nil {
		log.Fatal(err)
	}

	ef, err := out.EnvyFreeness(setup.Players)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s allocation:\n", out.Mechanism)
	fmt.Printf("  weighted speedup: %.3f\n", out.Efficiency())
	fmt.Printf("  envy-freeness:    %.3f (Theorem 2 guarantees ≥ %.3f)\n", ef, out.EFBound())
	fmt.Printf("  MUR %.3f → efficiency is provably ≥ %.0f%% of optimal (Theorem 1)\n\n",
		out.MUR, out.PoABound()*100)

	fmt.Printf("%-14s %8s %10s %10s %10s\n", "player", "budget", "Δregions", "Δwatts", "utility")
	for i, p := range setup.Players {
		fmt.Printf("%-14s %8.2f %10.2f %10.2f %10.3f\n",
			p.Name, out.Budgets[i], out.Allocations[i][0], out.Allocations[i][1], out.Utilities[i])
	}
}
