// Bandwidth: the paper's market framework is defined for M resources (§2)
// even though its evaluation allocates two. This example adds memory
// bandwidth as a third resource and shows the market routing each resource
// to the class that values it: cache to C apps, power to P apps, bandwidth
// to the N-class streamers that neither cache nor frequency can help.
package main

import (
	"fmt"
	"log"

	"rebudget"
)

func main() {
	var bundle rebudget.Bundle
	bundle.Category = "custom"
	for _, name := range []string{"mcf", "art", "sixtrack", "hmmer", "swim", "equake", "lucas", "wupwise"} {
		spec, err := rebudget.LookupApp(name)
		if err != nil {
			log.Fatal(err)
		}
		bundle.Apps = append(bundle.Apps, spec)
	}
	setup, err := rebudget.NewSetupWithBandwidth(bundle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-resource market: %.0f regions, %.1f W, %.1f GB/s\n\n",
		setup.Capacity[0], setup.Capacity[1], setup.Capacity[2])

	for _, mech := range []rebudget.Allocator{
		rebudget.EqualBudget{},
		rebudget.ReBudget{Step: 20},
	} {
		out, err := mech.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		ef, err := out.EnvyFreeness(setup.Players)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: welfare %.3f, envy-freeness %.3f\n", out.Mechanism, out.Efficiency(), ef)
		fmt.Printf("  %-14s %6s %10s %9s %10s %9s\n", "app", "class", "Δregions", "Δwatts", "ΔGB/s", "utility")
		for i, a := range bundle.Apps {
			fmt.Printf("  %-12s#%d %6s %10.2f %9.2f %10.2f %9.3f\n",
				a.Name, i, a.Class, out.Allocations[i][0], out.Allocations[i][1],
				out.Allocations[i][2], out.Utilities[i])
		}
		fmt.Println()
	}
}
