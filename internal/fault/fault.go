// Package fault is a deterministic fault-injection framework for the
// allocation pipeline. A seeded Injector can corrupt UMON/monitor readings
// (NaN, Inf, multiplicative spikes, dropouts), make player utilities
// misbehave mid-equilibrium, and stall or cap equilibrium searches via the
// market's round hook. Everything is driven by one private xorshift stream,
// so a given (Config, call sequence) always injects the same faults — the
// resilience experiments are bit-reproducible.
//
// The framework is wired in behind nil checks: a disabled Config builds no
// injector, draws no random numbers, and leaves every code path byte-
// identical to a build without fault injection.
package fault

import (
	"math"
	"sync"

	"rebudget/internal/market"
	"rebudget/internal/numeric"
)

// Kind enumerates the monitor-corruption fault types.
type Kind int

// Monitor fault kinds.
const (
	// KindNaN replaces a reading with NaN (a desynchronised sensor).
	KindNaN Kind = iota
	// KindInf replaces a reading with +Inf (a counter rollover).
	KindInf
	// KindSpike multiplies a reading by a large factor (a glitched bus).
	KindSpike
	// KindDropout zeroes a reading (a dropped message).
	KindDropout
	kindCount
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNaN:
		return "nan"
	case KindInf:
		return "inf"
	case KindSpike:
		return "spike"
	case KindDropout:
		return "dropout"
	default:
		return "unknown"
	}
}

// Config selects fault rates. The zero value disables everything.
type Config struct {
	// MonitorRate is the per-reading probability that a monitor curve is
	// corrupted before it reaches utility construction.
	MonitorRate float64
	// UtilityRate is the per-evaluation probability that a wrapped
	// utility returns a non-finite value.
	UtilityRate float64
	// SolverRate is the per-equilibrium-run probability that the
	// bidding–pricing loop is stalled after StallIterations rounds.
	SolverRate float64
	// StallIterations is how many rounds a stalled run is allowed before
	// the hook aborts it (default 1).
	StallIterations int
	// Seed drives the injector's private random stream (default 1).
	Seed uint64
}

// Enabled reports whether any fault rate is non-zero.
func (c Config) Enabled() bool {
	return c.MonitorRate > 0 || c.UtilityRate > 0 || c.SolverRate > 0
}

// Stats counts the faults an injector has actually fired.
type Stats struct {
	CurveFaults   int // monitor curves corrupted
	UtilityFaults int // utility evaluations poisoned
	SolverStalls  int // equilibrium runs stalled
}

// Injector injects deterministic faults. All methods are safe for a nil
// receiver (no-ops) and for concurrent use.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *numeric.Rand
	stats Stats
}

// New builds an injector, or returns nil for a disabled Config so callers
// can gate every hook on a simple nil check.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.StallIterations <= 0 {
		cfg.StallIterations = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Injector{cfg: cfg, rng: numeric.NewRand(cfg.Seed)}
}

// Stats returns a snapshot of the fired-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// CorruptCurve possibly corrupts a monitor reading vector in place and
// reports whether it did. At most one entry is corrupted per hit, which
// keeps the fault rate interpretable as "fraction of readings damaged".
func (in *Injector) CorruptCurve(ratio []float64) bool {
	if in == nil || len(ratio) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.cfg.MonitorRate {
		return false
	}
	idx := in.rng.Intn(len(ratio))
	switch Kind(in.rng.Intn(int(kindCount))) {
	case KindNaN:
		ratio[idx] = math.NaN()
	case KindInf:
		ratio[idx] = math.Inf(1)
	case KindSpike:
		ratio[idx] *= 10 + 90*in.rng.Float64()
	case KindDropout:
		ratio[idx] = 0
	}
	in.stats.CurveFaults++
	return true
}

// faultyUtility poisons a fraction of evaluations with NaN.
type faultyUtility struct {
	in    *Injector
	inner market.Utility
}

// Value implements market.Utility.
func (f faultyUtility) Value(alloc []float64) float64 {
	f.in.mu.Lock()
	hit := f.in.rng.Float64() < f.in.cfg.UtilityRate
	if hit {
		f.in.stats.UtilityFaults++
	}
	f.in.mu.Unlock()
	if hit {
		return math.NaN()
	}
	return f.inner.Value(alloc)
}

// WrapUtility returns a utility that returns NaN for a UtilityRate
// fraction of evaluations — a model gone bad mid-round. With a nil
// injector or zero rate the original utility is returned untouched.
func (in *Injector) WrapUtility(u market.Utility) market.Utility {
	if in == nil || in.cfg.UtilityRate <= 0 {
		return u
	}
	return faultyUtility{in: in, inner: u}
}

// SolverHook returns a market round hook that stalls a SolverRate fraction
// of equilibrium runs: the run is aborted after StallIterations rounds and
// surfaces as a NotConvergedError. Install it with core.WithRoundHook or
// directly in a market.Config. Returns nil for a nil injector or zero
// rate, which the market treats as "no hook".
func (in *Injector) SolverHook() func(iteration int) bool {
	if in == nil || in.cfg.SolverRate <= 0 {
		return nil
	}
	var stalled bool
	return func(iteration int) bool {
		in.mu.Lock()
		defer in.mu.Unlock()
		if iteration == 1 {
			// A new equilibrium run: decide its fate once.
			stalled = in.rng.Float64() < in.cfg.SolverRate
			if stalled {
				in.stats.SolverStalls++
			}
		}
		return !stalled || iteration <= in.cfg.StallIterations
	}
}
