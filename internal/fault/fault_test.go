package fault

import (
	"math"
	"testing"

	"rebudget/internal/market"
)

func cleanCurve() []float64 {
	return []float64{1, 0.8, 0.6, 0.45, 0.35, 0.3, 0.3, 0.3}
}

func TestDisabledConfigBuildsNoInjector(t *testing.T) {
	if in := New(Config{}); in != nil {
		t.Fatal("zero config must build a nil injector")
	}
	var in *Injector
	ratio := cleanCurve()
	if in.CorruptCurve(ratio) {
		t.Error("nil injector corrupted a curve")
	}
	for i, v := range ratio {
		if v != cleanCurve()[i] {
			t.Errorf("nil injector mutated ratio[%d]", i)
		}
	}
	u := market.UtilityFunc(func([]float64) float64 { return 1 })
	if got := in.WrapUtility(u); got.Value(nil) != 1 {
		t.Error("nil injector must pass utilities through")
	}
	if in.SolverHook() != nil {
		t.Error("nil injector must return a nil solver hook")
	}
	if in.Stats() != (Stats{}) {
		t.Error("nil injector stats must be zero")
	}
}

func TestCorruptCurveDeterministic(t *testing.T) {
	run := func() ([]float64, Stats) {
		in := New(Config{MonitorRate: 0.5, Seed: 42})
		ratio := cleanCurve()
		for k := 0; k < 20; k++ {
			in.CorruptCurve(ratio)
		}
		return ratio, in.Stats()
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.CurveFaults == 0 {
		t.Fatal("rate 0.5 over 20 draws fired no faults")
	}
	for i := range r1 {
		if r1[i] != r2[i] && !(math.IsNaN(r1[i]) && math.IsNaN(r2[i])) {
			t.Fatalf("corruption not deterministic at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestCorruptCurveRateOne(t *testing.T) {
	in := New(Config{MonitorRate: 1, Seed: 3})
	for k := 0; k < 50; k++ {
		ratio := cleanCurve()
		if !in.CorruptCurve(ratio) {
			t.Fatal("rate 1 must always corrupt")
		}
		changed := false
		for i, v := range ratio {
			// NaN != anything, so a NaN fault also registers as a change.
			if v != cleanCurve()[i] {
				changed = true
			}
		}
		// A spike on an entry can in principle land back in range, but it
		// still must have changed the value.
		if !changed {
			t.Fatal("corruption reported but curve unchanged")
		}
	}
	if got := in.Stats().CurveFaults; got != 50 {
		t.Errorf("CurveFaults = %d, want 50", got)
	}
}

func TestWrapUtilityPoisonsSomeEvaluations(t *testing.T) {
	in := New(Config{UtilityRate: 0.3, Seed: 9})
	u := in.WrapUtility(market.UtilityFunc(func([]float64) float64 { return 0.7 }))
	nan, ok := 0, 0
	for k := 0; k < 200; k++ {
		if math.IsNaN(u.Value(nil)) {
			nan++
		} else {
			ok++
		}
	}
	if nan == 0 || ok == 0 {
		t.Fatalf("rate 0.3 should mix clean and faulty evaluations, got %d/%d", nan, ok)
	}
	if got := in.Stats().UtilityFaults; got != nan {
		t.Errorf("UtilityFaults = %d, want %d", got, nan)
	}
}

func TestSolverHookStallsRuns(t *testing.T) {
	in := New(Config{SolverRate: 1, StallIterations: 2, Seed: 5})
	hook := in.SolverHook()
	if hook == nil {
		t.Fatal("expected a hook")
	}
	if !hook(1) || !hook(2) {
		t.Error("stalled run must survive StallIterations rounds")
	}
	if hook(3) {
		t.Error("stalled run must abort after StallIterations rounds")
	}
	if got := in.Stats().SolverStalls; got != 1 {
		t.Errorf("SolverStalls = %d, want 1", got)
	}

	// Zero rate: no hook at all, so the market pays nothing.
	if New(Config{MonitorRate: 0.1}).SolverHook() != nil {
		t.Error("zero SolverRate must return a nil hook")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNaN: "nan", KindInf: "inf", KindSpike: "spike", KindDropout: "dropout", kindCount: "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
