// Package app models the 24 SPEC CPU2000/2006 applications of the paper's
// workload (§5) as parameterised synthetic programs. Each application is a
// compute phase (base CPI at a given frequency) interleaved with a memory
// phase (L2 accesses whose reuse behaviour is a trace mixture), the same
// decomposition XChange's runtime monitor assumes (§4.1.1). Parameters are
// chosen so each application lands in its paper class — Cache-sensitive (C),
// Power-sensitive (P), Both (B) or None (N) — and mirrors its namesake's
// qualitative shape (e.g. mcf's 1.5 MB working-set cliff from Figure 2).
package app

import (
	"fmt"
	"hash/fnv"
	"math"

	"rebudget/internal/cache"
	"rebudget/internal/trace"
)

// Class is the paper's four-way sensitivity classification (§5).
type Class int

// Sensitivity classes.
const (
	Cache Class = iota // "C": performance governed by L2 allocation
	Power              // "P": performance governed by frequency
	Both               // "B": sensitive to cache and power
	None               // "N": largely insensitive to either
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Cache:
		return "C"
	case Power:
		return "P"
	case Both:
		return "B"
	case None:
		return "N"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Spec is one application's model parameters.
type Spec struct {
	Name  string
	Class Class
	// CPIBase is cycles per instruction of the compute phase on the
	// 4-wide OoO core, excluding L2/memory stalls.
	CPIBase float64
	// API is L2 accesses per instruction (the L1 miss rate).
	API float64
	// Activity is the dynamic-power activity factor in (0, 1].
	Activity float64
	// Mix is the L2 reuse-distance mixture. Cyclic/geometric parameters
	// are in cache lines (one 128 kB region = 2048 lines).
	Mix []trace.Component
	// Phases, when non-empty, overrides Mix with a cyclic sequence of
	// behavioural phases (§4.3's "application phase changes"): the
	// stream's reuse profile changes shape mid-run and the per-epoch
	// monitoring + reallocation must follow it. The analytic miss curve
	// of a phased application is the access-weighted mix of its phases.
	Phases []trace.Phase
}

// Fingerprint hashes every model parameter — name, class, scalars, the
// full reuse mixture and any phase schedule — into one value. Two specs
// share a fingerprint iff they describe the same synthetic program, so it
// is safe as a cache key where the name alone is not: custom or mutated
// specs may reuse a catalog name with different behaviour.
func (s Spec) Fingerprint() uint64 {
	h := fnv.New64a()
	writeStr := func(v string) {
		h.Write([]byte(v))
		h.Write([]byte{0})
	}
	writeU64 := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }
	writeMix := func(mix []trace.Component) {
		writeU64(uint64(len(mix)))
		for _, c := range mix {
			writeU64(uint64(c.Kind))
			writeF64(c.Weight)
			writeF64(c.Param)
		}
	}
	writeStr(s.Name)
	writeU64(uint64(s.Class))
	writeF64(s.CPIBase)
	writeF64(s.API)
	writeF64(s.Activity)
	writeMix(s.Mix)
	writeU64(uint64(len(s.Phases)))
	for _, p := range s.Phases {
		writeMix(p.Mix)
		writeU64(uint64(p.Accesses))
	}
	return h.Sum64()
}

// reg converts regions to lines for mixture parameters.
const reg = float64(cache.LinesPerRegion)

// Catalog returns the 24-application workload. The slice is freshly
// allocated; callers may reorder it.
func Catalog() []Spec {
	return []Spec{
		// --- Cache-sensitive (C) ---
		{Name: "mcf", Class: Cache, CPIBase: 0.70, API: 0.055, Activity: 0.70, Mix: []trace.Component{
			// The Figure 2 cliff: a 1.5 MB (12-region) working set.
			{Kind: trace.Cyclic, Weight: 0.85, Param: 12 * reg},
			{Kind: trace.Geometric, Weight: 0.10, Param: 0.25 * reg},
			{Kind: trace.Streaming, Weight: 0.05},
		}},
		{Name: "art", Class: Cache, CPIBase: 0.55, API: 0.050, Activity: 0.75, Mix: []trace.Component{
			{Kind: trace.Cyclic, Weight: 0.80, Param: 8 * reg},
			{Kind: trace.Geometric, Weight: 0.15, Param: 0.5 * reg},
			{Kind: trace.Streaming, Weight: 0.05},
		}},
		{Name: "twolf", Class: Cache, CPIBase: 0.60, API: 0.042, Activity: 0.75, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.90, Param: 3 * reg},
			{Kind: trace.Streaming, Weight: 0.10},
		}},
		{Name: "vpr", Class: Cache, CPIBase: 0.60, API: 0.040, Activity: 0.75, Mix: []trace.Component{
			// Smooth concave cache curve (Figure 2).
			{Kind: trace.Geometric, Weight: 0.92, Param: 2 * reg},
			{Kind: trace.Streaming, Weight: 0.08},
		}},
		{Name: "ammp", Class: Cache, CPIBase: 0.65, API: 0.045, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.85, Param: 4 * reg},
			{Kind: trace.Streaming, Weight: 0.15},
		}},
		{Name: "parser", Class: Cache, CPIBase: 0.60, API: 0.038, Activity: 0.75, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.88, Param: 1.5 * reg},
			{Kind: trace.Streaming, Weight: 0.12},
		}},

		// --- Power-sensitive (P) ---
		{Name: "sixtrack", Class: Power, CPIBase: 0.45, API: 0.002, Activity: 1.00, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.95, Param: 0.5 * reg},
			{Kind: trace.Streaming, Weight: 0.05},
		}},
		{Name: "hmmer", Class: Power, CPIBase: 0.50, API: 0.003, Activity: 0.95, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.95, Param: 0.5 * reg},
			{Kind: trace.Streaming, Weight: 0.05},
		}},
		{Name: "crafty", Class: Power, CPIBase: 0.55, API: 0.004, Activity: 0.90, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.93, Param: 0.7 * reg},
			{Kind: trace.Streaming, Weight: 0.07},
		}},
		{Name: "eon", Class: Power, CPIBase: 0.50, API: 0.003, Activity: 0.90, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.95, Param: 0.4 * reg},
			{Kind: trace.Streaming, Weight: 0.05},
		}},
		{Name: "mesa", Class: Power, CPIBase: 0.60, API: 0.005, Activity: 0.85, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.92, Param: 0.6 * reg},
			{Kind: trace.Streaming, Weight: 0.08},
		}},
		{Name: "gzip", Class: Power, CPIBase: 0.55, API: 0.006, Activity: 0.85, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.90, Param: 0.8 * reg},
			{Kind: trace.Streaming, Weight: 0.10},
		}},

		// --- Both-sensitive (B) ---
		{Name: "swim", Class: Both, CPIBase: 0.50, API: 0.020, Activity: 0.80, Mix: []trace.Component{
			// A compact working set: swim saturates its cache appetite
			// quickly, which is what makes it the over-budgeted player
			// of the paper's Figure 3 case study.
			{Kind: trace.Cyclic, Weight: 0.70, Param: 2 * reg},
			{Kind: trace.Geometric, Weight: 0.20, Param: 0.5 * reg},
			{Kind: trace.Streaming, Weight: 0.10},
		}},
		{Name: "apsi", Class: Both, CPIBase: 0.55, API: 0.015, Activity: 0.90, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.80, Param: 2.5 * reg},
			{Kind: trace.Streaming, Weight: 0.20},
		}},
		{Name: "equake", Class: Both, CPIBase: 0.60, API: 0.018, Activity: 0.85, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.75, Param: 3 * reg},
			{Kind: trace.Streaming, Weight: 0.25},
		}},
		{Name: "applu", Class: Both, CPIBase: 0.50, API: 0.016, Activity: 0.90, Mix: []trace.Component{
			{Kind: trace.Cyclic, Weight: 0.60, Param: 4 * reg},
			{Kind: trace.Geometric, Weight: 0.25, Param: 1 * reg},
			{Kind: trace.Streaming, Weight: 0.15},
		}},
		{Name: "mgrid", Class: Both, CPIBase: 0.50, API: 0.014, Activity: 0.90, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.80, Param: 2 * reg},
			{Kind: trace.Streaming, Weight: 0.20},
		}},
		{Name: "bzip2", Class: Both, CPIBase: 0.60, API: 0.013, Activity: 0.85, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.85, Param: 1.5 * reg},
			{Kind: trace.Streaming, Weight: 0.15},
		}},

		// --- Insensitive (N): streaming-bound, cache cannot help and the
		// memory wall mutes frequency gains ---
		{Name: "lucas", Class: None, CPIBase: 0.50, API: 0.030, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Streaming, Weight: 0.95},
			{Kind: trace.Geometric, Weight: 0.05, Param: 0.2 * reg},
		}},
		{Name: "gap", Class: None, CPIBase: 0.60, API: 0.026, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Streaming, Weight: 0.90},
			{Kind: trace.Geometric, Weight: 0.10, Param: 0.2 * reg},
		}},
		{Name: "vortex", Class: None, CPIBase: 0.70, API: 0.024, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Streaming, Weight: 0.85},
			{Kind: trace.Geometric, Weight: 0.15, Param: 0.3 * reg},
		}},
		{Name: "sjeng", Class: None, CPIBase: 0.65, API: 0.028, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Streaming, Weight: 0.90},
			{Kind: trace.Geometric, Weight: 0.10, Param: 0.25 * reg},
		}},
		{Name: "wupwise", Class: None, CPIBase: 0.55, API: 0.032, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Streaming, Weight: 0.92},
			{Kind: trace.Geometric, Weight: 0.08, Param: 0.2 * reg},
		}},
		{Name: "gcc", Class: None, CPIBase: 0.70, API: 0.026, Activity: 0.70, Mix: []trace.Component{
			{Kind: trace.Streaming, Weight: 0.88},
			{Kind: trace.Geometric, Weight: 0.12, Param: 0.3 * reg},
		}},
	}
}

// ByClass groups the catalog into the four classes.
func ByClass() map[Class][]Spec {
	out := map[Class][]Spec{}
	for _, s := range Catalog() {
		out[s.Class] = append(out[s.Class], s)
	}
	return out
}

// Lookup finds a catalog application by name.
func Lookup(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("app: unknown application %q", name)
}
