package app

import (
	"fmt"

	"rebudget/internal/cache"
	"rebudget/internal/power"
)

// FloorBandwidthGBs is the free per-core memory-bandwidth floor, the
// analogue of the free cache region and minimum-frequency power (§4.1):
// every core can always drain some misses.
const FloorBandwidthGBs = 0.25

// BandwidthUtility extends the two-resource multicore utility with memory
// bandwidth as a third market resource — the paper's framework is defined
// for M resources (§2) but its evaluation stops at cache + power; this is
// the natural next resource its introduction motivates. The allocation
// vector is [Δregions, Δwatts, ΔGB/s] beyond the per-core floors.
//
// Bandwidth enters through the miss-service latency: a core granted b GB/s
// with a miss-traffic demand d sees an M/D/1-style latency inflation in
// ρ = d/b. Utility is non-decreasing and concave in b (latency relief has
// diminishing returns); the cache dimension uses the Talus hull of the
// miss curve, keeping it continuous and cliff-free.
// Like Utility, a BandwidthUtility memoizes its watts→frequency inversion
// and is therefore NOT safe for concurrent Value calls on one instance; the
// market engine evaluates each player on at most one goroutine at a time.
type BandwidthUtility struct {
	model        *Model
	tal          *cache.Talus
	floorW       float64
	alone        float64
	baseLatNs    float64
	maxUsefulGBs float64

	// Single-entry watts→frequency memo: perf and demandGBs bisect the
	// power model at the same watts within one evaluation, and probes that
	// move only the cache or bandwidth coordinate keep watts fixed.
	inv       *power.FreqInverter
	lastWatts float64
	lastFreq  float64
	hasFreq   bool
}

// NewBandwidthUtility builds the three-resource utility surface.
func NewBandwidthUtility(m *Model, curve *cache.MissCurve) (*BandwidthUtility, error) {
	if m == nil || curve == nil {
		return nil, fmt.Errorf("app: nil model or curve")
	}
	tal, err := cache.NewTalus(curve)
	if err != nil {
		return nil, err
	}
	u := &BandwidthUtility{
		model:     m,
		tal:       tal,
		floorW:    m.FloorPowerW(),
		baseLatNs: m.MemLatNs,
		inv:       m.Power.NewFreqInverter(m.Spec.Activity, RefTempC),
	}
	// Stand-alone: all cache, max frequency, uncontended memory.
	u.alone = u.perf(float64(curve.MaxRegions()), MaxPowerAlloc(m), 1e9)
	if u.alone <= 0 {
		return nil, fmt.Errorf("app %s: non-positive stand-alone performance", m.Spec.Name)
	}
	// The demand at full throttle bounds how much bandwidth can help:
	// beyond ~10× the arrival rate the queueing term d/(2b) is under 5%
	// and further bandwidth is noise.
	u.maxUsefulGBs = u.demandGBs(float64(curve.MaxRegions()), MaxPowerAlloc(m)) * 10
	if u.maxUsefulGBs < FloorBandwidthGBs {
		u.maxUsefulGBs = FloorBandwidthGBs
	}
	return u, nil
}

// MaxPowerAlloc is the watts beyond the floor that saturate frequency.
func MaxPowerAlloc(m *Model) float64 {
	return m.MaxPowerW() - m.FloorPowerW()
}

// freqAt is FreqAtTotalPowerGHz at the reference temperature through the
// single-entry memo.
func (u *BandwidthUtility) freqAt(watts float64) float64 {
	if u.hasFreq && watts == u.lastWatts {
		return u.lastFreq
	}
	f, err := u.inv.FreqAtPower(watts)
	if err != nil {
		f = power.MinFreqGHz
	}
	u.lastWatts, u.lastFreq, u.hasFreq = watts, f, true
	return f
}

// demandGBs is the miss traffic the core would generate at an uncontended
// memory system, used as the queueing arrival rate.
func (u *BandwidthUtility) demandGBs(regions, dWatts float64) float64 {
	m := u.tal.MissAt(regions)
	f := u.freqAt(u.floorW + dWatts)
	perf := u.model.PerfIPS(m, f)
	return perf * u.model.Spec.API * m * cache.LineSize / 1e9
}

// perf evaluates instructions/second at a total allocation.
func (u *BandwidthUtility) perf(regions, dWatts, bwGBs float64) float64 {
	miss := u.tal.MissAt(regions)
	f := u.freqAt(u.floorW + dWatts)
	// One-step fixed point: demand at uncontended latency sets the
	// queueing load on the allocated bandwidth. The open-form M/D/1 term
	// d/(2b) makes latency convex-decreasing in b, so throughput
	// 1/(A + C/b) is exactly concave in the bandwidth allocation.
	demand := u.demandGBs(regions, dWatts)
	if bwGBs < FloorBandwidthGBs {
		bwGBs = FloorBandwidthGBs
	}
	lat := u.baseLatNs * (1 + demand/(2*bwGBs))
	tpi := u.model.Spec.CPIBase/f +
		u.model.Spec.API*(miss*lat+(1-miss)*u.model.L2HitNs)
	return 1e9 / tpi
}

// Value implements market.Utility over [Δregions, Δwatts, ΔGB/s].
func (u *BandwidthUtility) Value(alloc []float64) float64 {
	regions, dWatts, dBW := 1.0, 0.0, 0.0
	if len(alloc) > 0 && alloc[0] > 0 {
		regions += alloc[0]
	}
	if len(alloc) > 1 && alloc[1] > 0 {
		dWatts = alloc[1]
	}
	if len(alloc) > 2 && alloc[2] > 0 {
		dBW = alloc[2]
	}
	return u.perf(regions, dWatts, FloorBandwidthGBs+dBW) / u.alone
}

// MaxUsefulAlloc bounds the allocations beyond which nothing improves.
func (u *BandwidthUtility) MaxUsefulAlloc() []float64 {
	return []float64{
		float64(MaxRegions - 1),
		MaxPowerAlloc(u.model),
		u.maxUsefulGBs,
	}
}

// MinAlloc is the zero market allocation.
func (u *BandwidthUtility) MinAlloc() []float64 { return []float64{0, 0, 0} }

// FloorPowerW exposes the power floor.
func (u *BandwidthUtility) FloorPowerW() float64 { return u.floorW }
