package app

import (
	"testing"
)

func mustBWUtility(t *testing.T, name string) *BandwidthUtility {
	t.Helper()
	spec, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(spec)
	curve, err := m.AnalyticMissCurve()
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewBandwidthUtility(m, curve)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestBandwidthUtilityValidation(t *testing.T) {
	if _, err := NewBandwidthUtility(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestBandwidthUtilityMonotone(t *testing.T) {
	for _, name := range []string{"mcf", "lucas", "sixtrack"} {
		u := mustBWUtility(t, name)
		maxA := u.MaxUsefulAlloc()
		for dim := 0; dim < 3; dim++ {
			prev := -1.0
			for frac := 0.0; frac <= 1.0; frac += 0.1 {
				alloc := append([]float64(nil), maxA...)
				alloc[dim] = frac * maxA[dim]
				v := u.Value(alloc)
				if v < prev-1e-9 {
					t.Errorf("%s: utility decreasing along dim %d", name, dim)
				}
				prev = v
			}
		}
		full := u.Value(maxA)
		if full < 0.85 || full > 1.05 {
			t.Errorf("%s: full-allocation utility %g, want ≈1", name, full)
		}
		if v := u.Value(u.MinAlloc()); v <= 0 || v >= full {
			t.Errorf("%s: floor utility %g out of range", name, v)
		}
	}
}

func TestBandwidthMattersForStreamers(t *testing.T) {
	// N-class streamers are memory-bandwidth-bound: bandwidth must move
	// their utility far more than cache does.
	u := mustBWUtility(t, "lucas")
	maxA := u.MaxUsefulAlloc()
	base := u.Value([]float64{0, maxA[1], 0})
	cacheGain := u.Value([]float64{maxA[0], maxA[1], 0}) - base
	bwGain := u.Value([]float64{0, maxA[1], maxA[2]}) - base
	if bwGain < 3*cacheGain {
		t.Errorf("lucas: bandwidth gain %g not dominant over cache gain %g", bwGain, cacheGain)
	}
	if bwGain < 0.05 {
		t.Errorf("lucas: bandwidth gain %g too small to matter", bwGain)
	}
}

func TestBandwidthIrrelevantForComputeBound(t *testing.T) {
	u := mustBWUtility(t, "sixtrack")
	maxA := u.MaxUsefulAlloc()
	base := u.Value([]float64{maxA[0], maxA[1], 0})
	gain := u.Value(maxA) - base
	if gain > 0.05 {
		t.Errorf("sixtrack: bandwidth gain %g should be negligible", gain)
	}
}

func TestBandwidthUtilityConcaveInBandwidth(t *testing.T) {
	u := mustBWUtility(t, "lucas")
	maxA := u.MaxUsefulAlloc()
	prevSlope := 1e18
	step := maxA[2] / 10
	for b := 0.0; b+step <= maxA[2]; b += step {
		slope := u.Value([]float64{2, maxA[1], b + step}) - u.Value([]float64{2, maxA[1], b})
		if slope > prevSlope+1e-6 {
			t.Errorf("bandwidth utility not concave at %g GB/s (+%g vs +%g)", b, slope, prevSlope)
		}
		prevSlope = slope
	}
}
