package app

import (
	"math"
	"testing"

	"rebudget/internal/cache"
	"rebudget/internal/trace"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 24 {
		t.Fatalf("catalog has %d applications, want 24 (§5)", len(cat))
	}
	counts := map[Class]int{}
	names := map[string]bool{}
	for _, s := range cat {
		if names[s.Name] {
			t.Errorf("duplicate application name %q", s.Name)
		}
		names[s.Name] = true
		counts[s.Class]++
		if s.CPIBase < 0.25 || s.CPIBase > 2 {
			t.Errorf("%s: CPIBase %g outside a plausible 4-wide OoO range", s.Name, s.CPIBase)
		}
		if s.API <= 0 || s.API > 0.1 {
			t.Errorf("%s: API %g implausible", s.Name, s.API)
		}
		if s.Activity <= 0 || s.Activity > 1 {
			t.Errorf("%s: activity %g outside (0,1]", s.Name, s.Activity)
		}
		if _, err := trace.New(trace.Config{LineSize: cache.LineSize, Mix: s.Mix}); err != nil {
			t.Errorf("%s: invalid mixture: %v", s.Name, err)
		}
	}
	for _, c := range []Class{Cache, Power, Both, None} {
		if counts[c] != 6 {
			t.Errorf("class %v has %d applications, want 6", c, counts[c])
		}
	}
}

func TestClassString(t *testing.T) {
	if Cache.String() != "C" || Power.String() != "P" || Both.String() != "B" || None.String() != "N" {
		t.Error("class strings wrong")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should produce a diagnostic string")
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("mcf")
	if err != nil || s.Name != "mcf" || s.Class != Cache {
		t.Errorf("Lookup(mcf) = %+v, %v", s, err)
	}
	if _, err := Lookup("doom"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestByClass(t *testing.T) {
	m := ByClass()
	if len(m) != 4 {
		t.Fatalf("ByClass has %d classes", len(m))
	}
	for c, apps := range m {
		for _, a := range apps {
			if a.Class != c {
				t.Errorf("%s filed under %v", a.Name, c)
			}
		}
	}
}

func mustUtility(t *testing.T, name string) (*Model, *Utility) {
	t.Helper()
	spec, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(spec)
	curve, err := m.AnalyticMissCurve()
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUtility(m, curve)
	if err != nil {
		t.Fatal(err)
	}
	return m, u
}

func TestMcfCliffShape(t *testing.T) {
	m, u := mustUtility(t, "mcf")
	curve, _ := m.AnalyticMissCurve()
	// Figure 2: flat and high below 12 regions, low at 12+.
	if curve.Ratio[6] < 0.7 {
		t.Errorf("mcf miss at 6 regions = %g, want high (working set not fitting)", curve.Ratio[6])
	}
	if curve.Ratio[12] > 0.25 {
		t.Errorf("mcf miss at 12 regions = %g, want low (1.5 MB fits)", curve.Ratio[12])
	}
	raw, hull := u.CacheUtilityCurve()
	// Raw utility nearly flat from 1..10 regions, then a jump.
	if raw[9].Y-raw[0].Y > 0.2 {
		t.Errorf("mcf raw utility should be flat below the cliff: %g → %g", raw[0].Y, raw[9].Y)
	}
	if raw[11].Y < 0.8 {
		t.Errorf("mcf raw utility at 12 regions = %g, want ≈1", raw[11].Y)
	}
	// The hull bridges the flat region: strictly above raw at 6 regions.
	if hull[5].Y < raw[5].Y+0.1 {
		t.Errorf("talus hull (%g) does not lift the cliff above raw (%g)", hull[5].Y, raw[5].Y)
	}
}

func TestVprConcave(t *testing.T) {
	_, u := mustUtility(t, "vpr")
	raw, hull := u.CacheUtilityCurve()
	// vpr's curve is already nearly concave: hull ≈ raw everywhere.
	for i := range raw {
		if hull[i].Y-raw[i].Y > 0.05 {
			t.Errorf("vpr hull deviates from raw at %g regions: %g vs %g",
				raw[i].X, hull[i].Y, raw[i].Y)
		}
	}
}

func TestUtilityRangeAndMonotonicity(t *testing.T) {
	for _, name := range []string{"mcf", "vpr", "sixtrack", "swim", "lucas"} {
		_, u := mustUtility(t, name)
		maxAlloc := u.MaxUsefulAlloc()
		prev := -1.0
		for dc := 0.0; dc <= maxAlloc[0]; dc += 0.5 {
			v := u.Value([]float64{dc, maxAlloc[1]})
			if v < prev-1e-9 {
				t.Errorf("%s: utility decreasing in cache at %g regions", name, dc)
			}
			prev = v
		}
		prev = -1.0
		for dp := 0.0; dp <= maxAlloc[1]; dp += 0.25 {
			v := u.Value([]float64{maxAlloc[0], dp})
			if v < prev-1e-9 {
				t.Errorf("%s: utility decreasing in power at %g W", name, dp)
			}
			prev = v
		}
		// Normalised: full allocation ≈ 1, everything within [0, 1+ε].
		full := u.Value(maxAlloc)
		if math.Abs(full-1) > 0.05 {
			t.Errorf("%s: utility at max alloc = %g, want ≈1", name, full)
		}
		if v := u.Value([]float64{0, 0}); v <= 0 || v >= 1 {
			t.Errorf("%s: floor utility = %g, want in (0,1)", name, v)
		}
		// Past the useful maximum the utility saturates.
		beyond := u.Value([]float64{maxAlloc[0] * 3, maxAlloc[1] * 3})
		if beyond > full+1e-9 {
			t.Errorf("%s: utility grew past the useful maximum", name)
		}
	}
}

func TestUtilityConcaveAlongAxes(t *testing.T) {
	for _, name := range []string{"mcf", "swim", "vpr"} {
		_, u := mustUtility(t, name)
		maxAlloc := u.MaxUsefulAlloc()
		// Cache axis at a fixed mid power.
		p := maxAlloc[1] / 2
		var prevSlope = math.Inf(1)
		for dc := 0.0; dc+1 <= maxAlloc[0]; dc++ {
			slope := u.Value([]float64{dc + 1, p}) - u.Value([]float64{dc, p})
			if slope > prevSlope+1e-6 {
				t.Errorf("%s: cache utility not concave at %g regions (+%g vs +%g)",
					name, dc, slope, prevSlope)
			}
			prevSlope = slope
		}
	}
}

func TestClassSensitivities(t *testing.T) {
	// Gains are measured as the utility lost when taking one resource away
	// from the full allocation — the marginal importance of each resource.
	gains := func(name string) (cacheGain, powerGain float64) {
		_, u := mustUtility(t, name)
		maxA := u.MaxUsefulAlloc()
		full := u.Value(maxA)
		cacheGain = full - u.Value([]float64{0, maxA[1]})
		powerGain = full - u.Value([]float64{maxA[0], 0})
		return
	}
	// C apps lose more from losing cache than from losing power.
	for _, n := range []string{"mcf", "art", "vpr"} {
		cg, pg := gains(n)
		if cg < 1.1*pg {
			t.Errorf("%s (C class): cache gain %g not dominant over power gain %g", n, cg, pg)
		}
	}
	// P apps gain far more from power.
	for _, n := range []string{"sixtrack", "hmmer", "eon"} {
		cg, pg := gains(n)
		if pg < 5*cg {
			t.Errorf("%s (P class): power gain %g not dominant over cache gain %g", n, pg, cg)
		}
	}
	// B apps gain substantially from both.
	for _, n := range []string{"swim", "apsi", "equake"} {
		cg, pg := gains(n)
		if cg < 0.08 || pg < 0.08 {
			t.Errorf("%s (B class): gains %g/%g, want both substantial", n, cg, pg)
		}
	}
	// N apps gain little from either.
	for _, n := range []string{"lucas", "gap", "sjeng"} {
		cg, pg := gains(n)
		if cg > 0.15 || pg > 0.35 {
			t.Errorf("%s (N class): gains %g/%g too large for an insensitive app", n, cg, pg)
		}
	}
}

func TestFloorPowerAffordable(t *testing.T) {
	// The free floor must be a small fraction of the 10 W per-core budget,
	// otherwise the market has nothing to allocate.
	for _, s := range Catalog() {
		m := NewModel(s)
		if f := m.FloorPowerW(); f > 2 {
			t.Errorf("%s: floor power %g W too large", s.Name, f)
		}
		if m.MaxPowerW() <= m.FloorPowerW() {
			t.Errorf("%s: no power headroom", s.Name)
		}
	}
}

func TestTimeModelComposition(t *testing.T) {
	m := NewModel(Spec{Name: "x", CPIBase: 1.0, API: 0.01, Activity: 1, Mix: []trace.Component{{Kind: trace.Streaming, Weight: 1}}})
	// At 2 GHz with all misses: 0.5 ns compute + 0.01·75 = 0.75 ns memory.
	got := m.TimePerInstrNs(1, 2)
	if math.Abs(got-1.25) > 1e-9 {
		t.Errorf("TimePerInstrNs = %g, want 1.25", got)
	}
	// Zero misses: memory term becomes the L2 hit time.
	got = m.TimePerInstrNs(0, 2)
	if math.Abs(got-(0.5+0.01*8)) > 1e-9 {
		t.Errorf("TimePerInstrNs(hit) = %g", got)
	}
	if m.PerfIPS(1, 2) != 1e9/1.25 {
		t.Errorf("PerfIPS inconsistent with TimePerInstrNs")
	}
}

func TestNewUtilityValidation(t *testing.T) {
	spec, _ := Lookup("vpr")
	m := NewModel(spec)
	if _, err := NewUtility(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
	curve, _ := m.AnalyticMissCurve()
	if _, err := NewUtility(m, curve); err != nil {
		t.Errorf("valid utility rejected: %v", err)
	}
}

func TestUtilityFromMeasuredCurve(t *testing.T) {
	// Build a utility from a UMON-measured curve and check it agrees with
	// the analytic one within monitoring error.
	spec, _ := Lookup("vpr")
	m := NewModel(spec)
	analytic, _ := m.AnalyticMissCurve()
	ua, _ := NewUtility(m, analytic)

	um, _ := cache.NewUMON(MaxRegions, 0)
	g, err := m.NewTrace(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300000; i++ {
		um.Observe(g.Next())
	}
	um.Reset()
	for i := 0; i < 300000; i++ {
		um.Observe(g.Next())
	}
	umu, err := NewUtility(m, um.Curve())
	if err != nil {
		t.Fatal(err)
	}
	for _, alloc := range [][]float64{{0, 0}, {3, 2}, {8, 5}, {15, 9}} {
		a, b := ua.Value(alloc), umu.Value(alloc)
		if math.Abs(a-b) > 0.12 {
			t.Errorf("measured vs analytic utility at %v: %g vs %g", alloc, a, b)
		}
	}
}
