package app

import "testing"

// TestUtilityMemoTransparent checks that the per-instance memo layers
// (segment-cached hull evaluators, last-watts frequency cache) are
// semantically invisible: a utility that has evaluated an arbitrary probe
// history returns bit-identical values to a freshly built one.
func TestUtilityMemoTransparent(t *testing.T) {
	spec, err := Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(spec)
	curve, err := m.AnalyticMissCurve()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewUtility(m, curve)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		{5.5, 7.25}, {5.5, 7.25}, // repeat: memo hit on both layers
		{5.5, 9.0}, // same regions, new watts
		{0, 0}, {15.9, 20}, {1.2, 3.3}, {1.25, 3.3}, {1.3, 3.31},
		{8, 0.5}, {8, 0.5}, {2.75, 12},
	}
	for _, alloc := range probes {
		warm.Value(alloc) // build up memo state
	}
	for _, alloc := range probes {
		fresh, err := NewUtility(m, curve)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := warm.Value(alloc), fresh.Value(alloc); got != want {
			t.Fatalf("Value(%v): memoized %v != fresh %v", alloc, got, want)
		}
	}
}

// TestBandwidthUtilityMemoTransparent is the same property for the
// three-resource utility, whose frequency cache sits under demandGBs/perf.
func TestBandwidthUtilityMemoTransparent(t *testing.T) {
	spec, err := Lookup("swim")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(spec)
	curve, err := m.AnalyticMissCurve()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewBandwidthUtility(m, curve)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		{5.5, 7.25, 2}, {5.5, 7.25, 2},
		{5.5, 7.25, 6}, {3, 1.5, 0}, {12, 10, 9.5}, {12, 10.01, 9.5},
	}
	for _, alloc := range probes {
		warm.Value(alloc)
	}
	for _, alloc := range probes {
		fresh, err := NewBandwidthUtility(m, curve)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := warm.Value(alloc), fresh.Value(alloc); got != want {
			t.Fatalf("Value(%v): memoized %v != fresh %v", alloc, got, want)
		}
	}
}
