package app

import (
	"testing"

	"rebudget/internal/trace"
)

func TestSpecFingerprint(t *testing.T) {
	base, err := Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	again, _ := Lookup("mcf")
	if base.Fingerprint() != again.Fingerprint() {
		t.Fatal("identical specs hash differently")
	}

	// Every model parameter must perturb the hash — a same-named spec with
	// different parameters is a different workload.
	mutations := map[string]func(*Spec){
		"Name":     func(s *Spec) { s.Name = "mcf2" },
		"Class":    func(s *Spec) { s.Class = (s.Class + 1) % 4 },
		"CPIBase":  func(s *Spec) { s.CPIBase *= 1.5 },
		"API":      func(s *Spec) { s.API *= 2 },
		"Activity": func(s *Spec) { s.Activity *= 0.5 },
		"Mix": func(s *Spec) {
			s.Mix = append([]trace.Component(nil), s.Mix...)
			s.Mix[0].Weight *= 1.25
		},
	}
	for field, mutate := range mutations {
		mod := base
		mutate(&mod)
		if mod.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", field)
		}
	}
}
