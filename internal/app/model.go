package app

import (
	"fmt"

	"rebudget/internal/cache"
	"rebudget/internal/power"
	"rebudget/internal/trace"
)

// Performance-model constants shared by the analytic phase and the detailed
// simulator. MemLatNs is the uncontended L2-miss service latency
// (interconnect + DDR3-1600); the simulator replaces it with the live DRAM
// queueing latency.
const (
	DefaultMemLatNs = 75.0
	DefaultL2HitNs  = 8.0
	// MaxRegions caps the useful cache allocation at 2 MB (§5.1: UMON
	// stack distance limited to 16 regions).
	MaxRegions = 16
	// RefTempC is the die temperature assumed when building utility
	// models analytically; the simulator feeds back live temperatures.
	RefTempC = 70.0
)

// Model evaluates an application's performance and power on the modelled
// CMP: execution time per instruction decomposes into a compute phase
// (CPIBase cycles at frequency f) and a memory phase (API accesses through
// the L2, misses served by DRAM), following §4.1.1.
type Model struct {
	Spec     Spec
	Power    power.Model
	MemLatNs float64
	L2HitNs  float64
}

// NewModel builds a model with default electrical and memory parameters.
func NewModel(spec Spec) *Model {
	return &Model{
		Spec:     spec,
		Power:    power.DefaultModel(),
		MemLatNs: DefaultMemLatNs,
		L2HitNs:  DefaultL2HitNs,
	}
}

// TimePerInstrNs is the expected wall-clock nanoseconds per instruction at
// the given L2 miss ratio and core frequency.
func (m *Model) TimePerInstrNs(missRatio, fGHz float64) float64 {
	compute := m.Spec.CPIBase / fGHz
	memory := m.Spec.API * (missRatio*m.MemLatNs + (1-missRatio)*m.L2HitNs)
	return compute + memory
}

// PerfIPS is throughput in instructions per second.
func (m *Model) PerfIPS(missRatio, fGHz float64) float64 {
	return 1e9 / m.TimePerInstrNs(missRatio, fGHz)
}

// AnalyticMissCurve returns the application's modelled miss-rate curve over
// 0..MaxRegions regions, derived from its reuse mixture. For a phased
// application the curve is the access-weighted average of its phases'
// curves — what long-horizon profiling would observe.
func (m *Model) AnalyticMissCurve() (*cache.MissCurve, error) {
	type weighted struct {
		mix    []trace.Component
		weight float64
	}
	var parts []weighted
	if len(m.Spec.Phases) > 0 {
		total := 0.0
		for _, ph := range m.Spec.Phases {
			total += float64(ph.Accesses)
		}
		for _, ph := range m.Spec.Phases {
			parts = append(parts, weighted{mix: ph.Mix, weight: float64(ph.Accesses) / total})
		}
	} else {
		parts = []weighted{{mix: m.Spec.Mix, weight: 1}}
	}
	ratio := make([]float64, MaxRegions+1)
	for _, part := range parts {
		g, err := trace.New(trace.Config{LineSize: cache.LineSize, Mix: part.mix})
		if err != nil {
			return nil, fmt.Errorf("app %s: %w", m.Spec.Name, err)
		}
		for r := 0; r <= MaxRegions; r++ {
			ratio[r] += part.weight * g.MissRatio(r*cache.RegionBytes)
		}
	}
	return cache.NewMissCurve(ratio)
}

// NewTrace returns a fresh access stream for this application, tagged with
// the given namespace (one per core). Phased applications get a
// PhasedGenerator.
func (m *Model) NewTrace(seed uint64, namespace uint8) (trace.Stream, error) {
	if len(m.Spec.Phases) > 0 {
		return trace.NewPhased(cache.LineSize, m.Spec.Phases, seed, namespace)
	}
	return trace.New(trace.Config{
		LineSize:  cache.LineSize,
		Mix:       m.Spec.Mix,
		Seed:      seed,
		Namespace: namespace,
	})
}

// AlonePerfIPS is the throughput when running alone: the full 2 MB useful
// cache at maximum frequency. Utilities normalise against it (§4.1.1).
func (m *Model) AlonePerfIPS(curve *cache.MissCurve) float64 {
	return m.PerfIPS(curve.At(MaxRegions), power.MaxFreqGHz)
}

// FloorPowerW is the free minimum power allocation: enough to run at
// 800 MHz (§4.1).
func (m *Model) FloorPowerW() float64 {
	return m.Power.Total(power.MinFreqGHz, m.Spec.Activity, RefTempC)
}

// MaxPowerW is the power draw at full frequency, the most power this
// application can usefully consume.
func (m *Model) MaxPowerW() float64 {
	return m.Power.Total(power.MaxFreqGHz, m.Spec.Activity, RefTempC)
}

// FreqAtTotalPowerGHz converts a total per-core power budget into the
// highest sustainable frequency, clamping into the DVFS range.
func (m *Model) FreqAtTotalPowerGHz(watts, tempC float64) float64 {
	f, err := m.Power.FreqAtPower(watts, m.Spec.Activity, tempC)
	if err != nil {
		return power.MinFreqGHz
	}
	return f
}
