package app

import (
	"fmt"

	"rebudget/internal/cache"
	"rebudget/internal/numeric"
	"rebudget/internal/power"
)

// Utility is an application's market utility over the two allocated
// resources, alloc = [Δregions, Δwatts]: cache regions and watts granted
// *beyond* the free floor (one region + 800 MHz power, §4.1).
//
// Construction follows the paper's §4.1.1/§6 methodology: performance is
// sampled on a cache × frequency grid, normalised to the stand-alone run,
// and the cache dimension is convexified per frequency level (Talus /
// Figure 2), yielding a utility that is continuous, non-decreasing and
// concave along each resource axis. Between DVFS levels the utility
// interpolates linearly in frequency, and power maps to frequency through
// the concave inverse of the power model, preserving concavity in watts.
//
// A Utility memoizes its hottest sub-computations (the watts→frequency
// inversion and the per-level hull interpolation), so Value is NOT safe for
// concurrent calls on the same instance. The market engine guarantees each
// player's utility is evaluated by at most one goroutine at a time (see
// DESIGN.md, "Performance & concurrency"); callers sharing one Utility
// across goroutines must add their own synchronisation.
type Utility struct {
	model  *Model
	curve  *cache.MissCurve
	freqs  []float64      // DVFS ladder
	hulls  []*numeric.PWL // per ladder level: convexified utility vs regions
	floorW float64
	alone  float64 // stand-alone perf (IPS)

	// Hot-path memo state. The market's finite-difference probes move one
	// allocation coordinate at a time, so between consecutive evaluations
	// either the watts (and thus the bisected frequency) or the regions
	// (and thus the hull lookup x) are unchanged.
	hullEvals []*numeric.PWLEval // per ladder level, memoized
	inv       *power.FreqInverter
	lastWatts float64
	lastFreq  float64
	hasFreq   bool
}

// NewRawUtility builds the utility surface WITHOUT Talus convexification —
// the cache dimension keeps its cliffs and plateaus. It exists for the
// ablation study showing why §4.1.1 insists on convexifying: markets over
// raw utilities misjudge marginal utility around cliffs.
func NewRawUtility(m *Model, curve *cache.MissCurve) (*Utility, error) {
	return newUtility(m, curve, false)
}

// NewUtility builds the utility surface from a miss-rate curve (analytic in
// phase 1, UMON-measured in phase 2).
func NewUtility(m *Model, curve *cache.MissCurve) (*Utility, error) {
	return newUtility(m, curve, true)
}

func newUtility(m *Model, curve *cache.MissCurve, convexify bool) (*Utility, error) {
	if m == nil || curve == nil {
		return nil, fmt.Errorf("app: nil model or curve")
	}
	mono := curve.Monotone()
	u := &Utility{
		model:  m,
		curve:  mono,
		freqs:  power.Levels(),
		floorW: m.FloorPowerW(),
		alone:  m.AlonePerfIPS(mono),
	}
	if u.alone <= 0 {
		return nil, fmt.Errorf("app %s: non-positive stand-alone performance", m.Spec.Name)
	}
	maxR := mono.MaxRegions()
	for _, f := range u.freqs {
		pts := make([]numeric.Point, 0, maxR)
		for c := 1; c <= maxR; c++ {
			perf := m.PerfIPS(mono.At(float64(c)), f)
			pts = append(pts, numeric.Point{X: float64(c), Y: perf / u.alone})
		}
		var hull *numeric.PWL
		var err error
		if convexify {
			hull, err = numeric.HullPWL(pts)
		} else {
			hull, err = numeric.NewPWL(pts)
		}
		if err != nil {
			return nil, fmt.Errorf("app %s: curve at %g GHz: %w", m.Spec.Name, f, err)
		}
		u.hulls = append(u.hulls, hull)
		u.hullEvals = append(u.hullEvals, hull.Evaluator())
	}
	u.inv = m.Power.NewFreqInverter(m.Spec.Activity, RefTempC)
	return u, nil
}

// freqAt is FreqAtTotalPowerGHz at the reference temperature with a
// single-entry memo: a probe that moves only the cache coordinate reuses
// the previous bisection result.
func (u *Utility) freqAt(watts float64) float64 {
	if u.hasFreq && watts == u.lastWatts {
		return u.lastFreq
	}
	f, err := u.inv.FreqAtPower(watts)
	if err != nil {
		f = power.MinFreqGHz
	}
	u.lastWatts, u.lastFreq, u.hasFreq = watts, f, true
	return f
}

// Value implements market.Utility. alloc[0] is Δregions, alloc[1] Δwatts.
func (u *Utility) Value(alloc []float64) float64 {
	regions := 1.0 // free floor region
	if len(alloc) > 0 && alloc[0] > 0 {
		regions += alloc[0]
	}
	watts := u.floorW
	if len(alloc) > 1 && alloc[1] > 0 {
		watts += alloc[1]
	}
	f := u.freqAt(watts)
	return u.valueAt(regions, f)
}

// valueAt interpolates the hull stack at a continuous (regions, frequency).
func (u *Utility) valueAt(regions, fGHz float64) float64 {
	fs := u.freqs
	if fGHz <= fs[0] {
		return u.hullEvals[0].Eval(regions)
	}
	last := len(fs) - 1
	if fGHz >= fs[last] {
		return u.hullEvals[last].Eval(regions)
	}
	k := 0
	for k < last-1 && fs[k+1] < fGHz {
		k++
	}
	w := (fGHz - fs[k]) / (fs[k+1] - fs[k])
	return (1-w)*u.hullEvals[k].Eval(regions) + w*u.hullEvals[k+1].Eval(regions)
}

// MaxUsefulAlloc returns the allocation beyond which this application gains
// nothing: MaxRegions−1 extra regions and the watts gap from the floor to
// full frequency. XChange-Balanced sizes budgets with it.
func (u *Utility) MaxUsefulAlloc() []float64 {
	return []float64{
		float64(u.curve.MaxRegions() - 1),
		u.model.MaxPowerW() - u.floorW,
	}
}

// MinAlloc is the zero market allocation (floor only).
func (u *Utility) MinAlloc() []float64 { return []float64{0, 0} }

// FloorPowerW exposes the free power floor used by the simulator when
// translating market watts into total core power.
func (u *Utility) FloorPowerW() float64 { return u.floorW }

// AlonePerfIPS exposes the normalisation constant.
func (u *Utility) AlonePerfIPS() float64 { return u.alone }

// CacheUtilityCurve returns the normalised utility versus total regions at
// maximum frequency, both raw (monotone-cleaned) and convexified — the two
// series of Figure 2.
func (u *Utility) CacheUtilityCurve() (raw, hull []numeric.Point) {
	maxR := u.curve.MaxRegions()
	top := len(u.freqs) - 1
	for c := 1; c <= maxR; c++ {
		perf := u.model.PerfIPS(u.curve.At(float64(c)), u.freqs[top])
		raw = append(raw, numeric.Point{X: float64(c), Y: perf / u.alone})
		hull = append(hull, numeric.Point{X: float64(c), Y: u.hulls[top].Eval(float64(c))})
	}
	return raw, hull
}
