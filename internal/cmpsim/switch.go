package cmpsim

import (
	"fmt"
	"sort"

	"rebudget/internal/app"
	"rebudget/internal/core"
)

// SwitchEvent schedules a context switch: at the start of measured epoch
// Epoch, core Core begins running application App instead of its current
// one. The §4.3 motivation for re-running the allocator every millisecond
// is exactly this: resource demands change when the OS switches contexts,
// and the next epoch's monitoring + reallocation must adapt.
type SwitchEvent struct {
	Epoch int
	Core  int
	App   string
}

// SwitchApp replaces the application running on a core immediately: a
// fresh trace (new address space), a cleared utility monitor, and a
// pessimistic miss estimate until the next epoch measures the newcomer.
// The core's current resource allocation is kept until the allocator next
// runs, as on real hardware.
func (c *Chip) SwitchApp(coreID int, spec app.Spec) error {
	if coreID < 0 || coreID >= c.cfg.Cores {
		return fmt.Errorf("cmpsim: core %d out of range", coreID)
	}
	m := app.NewModel(spec)
	g, err := m.NewTrace(c.cfg.Seed^(uint64(coreID)<<32)^0x515c, uint8(coreID))
	if err != nil {
		return err
	}
	c.bundle.Apps[coreID] = spec
	c.models[coreID] = m
	c.gens[coreID] = g
	c.umons[coreID].Clear()
	c.floorW[coreID] = m.FloorPowerW()
	c.missEst[coreID] = 1
	// Throughput accounting restarts for the new process; the residual
	// instruction count belongs to the departed application, and normalised
	// performance is measured from the arrival epoch.
	c.instructions[coreID] = 0
	c.arrival[coreID] = c.stepped
	return nil
}

// RunWithSwitches is Run with scheduled context switches. Normalised
// performance for a switched core is reported against the application that
// finishes the run on it, measured from its arrival epoch.
func (c *Chip) RunWithSwitches(alloc core.Allocator, switches []SwitchEvent) (*Result, error) {
	evs := append([]SwitchEvent(nil), switches...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Epoch < evs[j].Epoch })
	for _, e := range evs {
		if e.Epoch < 0 || e.Epoch >= c.cfg.Epochs {
			return nil, fmt.Errorf("cmpsim: switch epoch %d outside run of %d epochs", e.Epoch, c.cfg.Epochs)
		}
		if _, err := app.Lookup(e.App); err != nil {
			return nil, err
		}
	}
	if err := c.Begin(alloc); err != nil {
		return nil, err
	}
	next := 0
	for e := 0; e < c.cfg.Epochs; e++ {
		for next < len(evs) && evs[next].Epoch == e {
			spec, err := app.Lookup(evs[next].App)
			if err != nil {
				return nil, err
			}
			if err := c.SwitchApp(evs[next].Core, spec); err != nil {
				return nil, err
			}
			next++
		}
		if err := c.StepEpoch(); err != nil {
			return nil, err
		}
	}
	return c.Snapshot()
}
