package cmpsim

import (
	"fmt"
	"sort"

	"rebudget/internal/app"
	"rebudget/internal/core"
)

// SwitchEvent schedules a context switch: at the start of measured epoch
// Epoch, core Core begins running application App instead of its current
// one. The §4.3 motivation for re-running the allocator every millisecond
// is exactly this: resource demands change when the OS switches contexts,
// and the next epoch's monitoring + reallocation must adapt.
type SwitchEvent struct {
	Epoch int
	Core  int
	App   string
}

// SwitchApp replaces the application running on a core immediately: a
// fresh trace (new address space), a cleared utility monitor, and a
// pessimistic miss estimate until the next epoch measures the newcomer.
// The core's current resource allocation is kept until the allocator next
// runs, as on real hardware.
func (c *Chip) SwitchApp(coreID int, spec app.Spec) error {
	if coreID < 0 || coreID >= c.cfg.Cores {
		return fmt.Errorf("cmpsim: core %d out of range", coreID)
	}
	m := app.NewModel(spec)
	g, err := m.NewTrace(c.cfg.Seed^(uint64(coreID)<<32)^0x515c, uint8(coreID))
	if err != nil {
		return err
	}
	c.bundle.Apps[coreID] = spec
	c.models[coreID] = m
	c.gens[coreID] = g
	c.umons[coreID].Clear()
	c.floorW[coreID] = m.FloorPowerW()
	c.missEst[coreID] = 1
	// Throughput accounting restarts for the new process; the residual
	// instruction count belongs to the departed application.
	c.instructions[coreID] = 0
	return nil
}

// RunWithSwitches is Run with scheduled context switches. Normalised
// performance for a switched core is reported against the application that
// finishes the run on it, measured from its arrival epoch.
func (c *Chip) RunWithSwitches(alloc core.Allocator, switches []SwitchEvent) (*Result, error) {
	if alloc == nil {
		return nil, fmt.Errorf("cmpsim: nil allocator")
	}
	if c.ran {
		// A chip accumulates cache, thermal and accounting state; a second
		// run would silently mix measurements. Build a fresh chip instead.
		return nil, fmt.Errorf("cmpsim: chip already ran; construct a new chip per run")
	}
	c.ran = true
	if hook := c.injector.SolverHook(); hook != nil {
		// Solver-stall faults enter through the market's round hook; the
		// allocator types themselves stay fault-agnostic.
		alloc = core.WithRoundHook(alloc, hook)
	}
	// Round parallelism and convergence-cost profiling enter the same way.
	alloc = core.WithMarketConfig(alloc, c.marketConfig)
	evs := append([]SwitchEvent(nil), switches...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Epoch < evs[j].Epoch })
	for _, e := range evs {
		if e.Epoch < 0 || e.Epoch >= c.cfg.Epochs {
			return nil, fmt.Errorf("cmpsim: switch epoch %d outside run of %d epochs", e.Epoch, c.cfg.Epochs)
		}
		if _, err := app.Lookup(e.App); err != nil {
			return nil, err
		}
	}
	arrival := make([]int, c.cfg.Cores) // measured epoch each core's final app arrived

	for e := 0; e < c.cfg.WarmupEpochs; e++ {
		c.runEpoch(false)
	}
	next := 0
	for e := 0; e < c.cfg.Epochs; e++ {
		for next < len(evs) && evs[next].Epoch == e {
			spec, err := app.Lookup(evs[next].App)
			if err != nil {
				return nil, err
			}
			if err := c.SwitchApp(evs[next].Core, spec); err != nil {
				return nil, err
			}
			arrival[evs[next].Core] = e
			next++
		}
		if e%c.cfg.ReallocEvery == 0 {
			if err := c.reallocate(alloc); err != nil {
				return nil, err
			}
		}
		c.runEpoch(true)
	}

	res := &Result{
		Mechanism: alloc.Name(),
		NormPerf:  make([]float64, c.cfg.Cores),
	}
	maxTemp, totalPower := 0.0, 0.0
	for i := 0; i < c.cfg.Cores; i++ {
		alone, err := alonePerfIPS(c.bundle.Apps[i], c.sys)
		if err != nil {
			return nil, err
		}
		span := float64(c.cfg.Epochs-arrival[i]) * c.cfg.EpochSeconds
		achieved := c.instructions[i] / span
		res.NormPerf[i] = achieved / alone
		res.WeightedSpeedup += res.NormPerf[i]
		t := c.therm[i].Temp()
		if t > maxTemp {
			maxTemp = t
		}
		totalPower += c.models[i].Power.Total(c.freq[i], c.models[i].Spec.Activity, t)
	}
	res.MaxTempC = maxTemp
	res.AvgPowerW = totalPower / float64(c.cfg.Cores)
	res.ThrottleEpochs = c.throttles
	res.Health = c.health
	res.Faults = c.injector.Stats()
	res.Equilibrium = c.eqProfile.Snapshot()
	res.FinalOutcome = c.lastOutcome
	if c.reallocs > 0 {
		res.MeanIterations = float64(c.iterSum) / float64(c.reallocs)
	}
	if c.lastOutcome != nil {
		_, utils, err := c.buildPlayers()
		if err != nil {
			return nil, err
		}
		ef, err := envyFreenessOf(utils, c.lastOutcome.Allocations)
		if err != nil {
			return nil, err
		}
		res.EnvyFreeness = ef
	} else {
		res.EnvyFreeness = 1
	}
	return res, nil
}
