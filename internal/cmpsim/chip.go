package cmpsim

import (
	"fmt"
	"time"

	"rebudget/internal/app"
	"rebudget/internal/cache"
	"rebudget/internal/core"
	"rebudget/internal/dram"
	"rebudget/internal/fault"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/numeric"
	"rebudget/internal/thermal"
	"rebudget/internal/trace"
	"rebudget/internal/workload"
)

// interconnectNs is the fixed on-chip portion of an L2-miss round trip; the
// DRAM queueing model supplies the rest, so at the default row-hit rate the
// uncontended total matches app.DefaultMemLatNs.
const interconnectNs = app.DefaultMemLatNs - (0.5*dram.RowHitNs + 0.5*dram.RowMissNs)

// rhoHashBuckets quantises the Talus stream-split fraction.
const rhoHashBuckets = 1024

// Chip is one simulated CMP running one bundle.
type Chip struct {
	cfg    Config
	sys    SystemConfig
	bundle workload.Bundle

	models  []*app.Model
	gens    []trace.Stream
	l2      cache.Partitioner
	umons   []*cache.UMON
	therm   []*thermal.Node
	mem     *dram.System
	bankSim *dram.BankSim

	// Per-core allocation state.
	freq      []float64 // GHz
	wattsBudg []float64 // total per-core power budget (floor + market)
	regions   []float64 // total per-core region target (floor + market)
	rhoThresh []uint64  // talus stream split threshold in hash buckets
	floorW    []float64
	bwAlloc   []float64 // GB/s per core (BandwidthMarket mode; floor + market)

	// Per-core measurement state.
	missEst      []float64 // last epoch's measured L2 miss ratio
	instructions []float64 // retired, in instructions
	elapsed      float64   // seconds of measured virtual time
	lastOutcome  *core.Outcome
	iterSum      int
	reallocs     int
	throttles    int
	ran          bool

	// Incremental-stepping state (see step.go): the allocator installed by
	// Begin, the count of measured epochs, and the measured epoch at which
	// each core's current application arrived (0 unless switched in).
	alloc   core.Allocator
	stepped int
	arrival []int

	// Fault-injection and degraded-mode state. The injector is nil when
	// Config.Faults is disabled, so clean runs take no fault branch.
	injector     *fault.Injector
	resil        ResilienceConfig
	health       metrics.Health
	consecFails  int
	cooldownLeft int

	// eqProfile accumulates per-equilibrium cost counters across the run
	// via market.Config.Observer.
	eqProfile metrics.EquilibriumProfile

	// Epoch hot-path state (see sched.go): reusable pacing/interleave
	// scratch so steady-state epochs allocate nothing, and the scheduler
	// override tests use to pin dense/sparse equivalence.
	scratch epochScratch
	sched   schedMode
}

// marketConfig is the transform Begin threads through
// core.WithMarketConfig: it sets the round parallelism from the simulation
// config and installs the chip's equilibrium profiler. Fault-injected runs
// force serial rounds so the injector's RNG draw order stays deterministic.
// An observer already installed on the allocator (a server-wide profile,
// say) is chained, not displaced, so outer telemetry keeps counting.
func (c *Chip) marketConfig(mc market.Config) market.Config {
	mc.Workers = c.cfg.MarketWorkers
	if c.injector != nil {
		mc.Workers = 1
	}
	if prev := mc.Observer; prev != nil {
		mc.Observer = func(rounds, bidSteps int, wall time.Duration) {
			prev(rounds, bidSteps, wall)
			c.eqProfile.Observe(rounds, bidSteps, wall)
		}
	} else {
		mc.Observer = c.eqProfile.Observe
	}
	return mc
}

// NewChip builds a chip for the bundle.
func NewChip(cfg Config, b workload.Bundle) (*Chip, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(b.Apps) != cfg.Cores {
		return nil, fmt.Errorf("cmpsim: bundle has %d apps for %d cores", len(b.Apps), cfg.Cores)
	}
	sys := NewSystemConfig(cfg.Cores)
	var l2 cache.Partitioner
	var err error
	if cfg.WayPartition {
		l2, err = cache.NewWayPartitioned(cache.Config{
			CapacityBytes: sys.L2CapacityBytes,
			Ways:          sys.L2Ways,
			Partitions:    cfg.Cores, // no shadow partitions at way granularity
		})
	} else {
		l2, err = cache.NewPartitioned(cache.Config{
			CapacityBytes: sys.L2CapacityBytes,
			Ways:          sys.L2Ways,
			Partitions:    2 * cfg.Cores, // two Talus shadow partitions per core
		})
	}
	if err != nil {
		return nil, err
	}
	mem, err := dram.New(dram.Config{Channels: sys.MemoryChannels, RowHitRate: 0.5})
	if err != nil {
		return nil, err
	}
	bankSim, err := dram.NewBankSim(sys.MemoryChannels)
	if err != nil {
		return nil, err
	}
	c := &Chip{
		cfg: cfg, sys: sys, bundle: b,
		l2: l2, mem: mem, bankSim: bankSim,
		freq:         make([]float64, cfg.Cores),
		wattsBudg:    make([]float64, cfg.Cores),
		regions:      make([]float64, cfg.Cores),
		rhoThresh:    make([]uint64, cfg.Cores),
		floorW:       make([]float64, cfg.Cores),
		bwAlloc:      make([]float64, cfg.Cores),
		missEst:      make([]float64, cfg.Cores),
		instructions: make([]float64, cfg.Cores),
		arrival:      make([]int, cfg.Cores),
		injector:     fault.New(cfg.Faults),
		resil:        cfg.Resilience.withDefaults(),
	}
	rng := numeric.NewRand(cfg.Seed)
	for i, spec := range b.Apps {
		m := app.NewModel(spec)
		c.models = append(c.models, m)
		g, err := m.NewTrace(rng.Uint64(), uint8(i))
		if err != nil {
			return nil, err
		}
		c.gens = append(c.gens, g)
		u, err := cache.NewUMON(sys.UMONMaxStackRegion, 5) // sample rate 32
		if err != nil {
			return nil, err
		}
		c.umons = append(c.umons, u)
		tn, err := thermal.NewNode(thermal.DefaultConfig())
		if err != nil {
			return nil, err
		}
		c.therm = append(c.therm, tn)
		c.floorW[i] = m.FloorPowerW()
		c.missEst[i] = 1 // pessimistic cold start
	}
	c.applyEqualShare()
	return c, nil
}

// applyEqualShare installs the EqualShare allocation used during warmup.
func (c *Chip) applyEqualShare() {
	n := c.cfg.Cores
	totalRegions := float64(c.sys.L2CapacityBytes / c.sys.RegionBytes)
	marketW := c.sys.PowerBudgetW - numeric.Sum(c.floorW)
	deltas := make([][]float64, n)
	for i := 0; i < n; i++ {
		deltas[i] = []float64{totalRegions/float64(n) - 1, marketW / float64(n)}
		if c.cfg.BandwidthMarket {
			deltas[i] = append(deltas[i], c.marketBandwidthGBs()/float64(n))
		}
	}
	c.applyAllocation(deltas)
}

// marketBandwidthGBs is the allocatable bandwidth beyond per-core floors.
func (c *Chip) marketBandwidthGBs() float64 {
	total := dram.ChannelBandwidthGBs * float64(c.sys.MemoryChannels)
	return total - app.FloorBandwidthGBs*float64(c.cfg.Cores)
}

// applyAllocation converts market allocations (Δregions, Δwatts per core)
// into hardware state: DVFS levels, Talus shadow splits and Futility
// Scaling line targets.
func (c *Chip) applyAllocation(deltas [][]float64) {
	n := c.cfg.Cores
	parts := 2 * n
	if c.cfg.WayPartition {
		parts = n
	}
	targets := make([]float64, parts)
	for i := 0; i < n; i++ {
		dRegions, dWatts := 0.0, 0.0
		if len(deltas[i]) > 0 && deltas[i][0] > 0 {
			dRegions = deltas[i][0]
		}
		if len(deltas[i]) > 1 && deltas[i][1] > 0 {
			dWatts = deltas[i][1]
		}
		c.regions[i] = 1 + dRegions
		c.wattsBudg[i] = c.floorW[i] + dWatts
		c.freq[i] = c.models[i].FreqAtTotalPowerGHz(c.wattsBudg[i], c.therm[i].Temp())
		if c.cfg.BandwidthMarket {
			c.bwAlloc[i] = app.FloorBandwidthGBs
			if len(deltas[i]) > 2 && deltas[i][2] > 0 {
				c.bwAlloc[i] += deltas[i][2]
			}
		}

		if c.cfg.WayPartition {
			// Strict way quotas: the cache quantises the line target
			// itself; no Talus shadows are possible.
			targets[i] = c.regions[i] * cache.LinesPerRegion
			c.rhoThresh[i] = rhoHashBuckets
			continue
		}
		// Talus split from the latest measured miss curve.
		tal, err := cache.NewTalus(c.umons[i].Curve())
		if err != nil {
			// Degenerate curve: single partition at the raw target.
			targets[2*i] = c.regions[i] * cache.LinesPerRegion
			c.rhoThresh[i] = rhoHashBuckets
			continue
		}
		split := tal.Split(c.regions[i])
		targets[2*i] = split.LoLines
		targets[2*i+1] = split.HiLines
		c.rhoThresh[i] = uint64(split.Rho * rhoHashBuckets)
	}
	// Clamp aggregate targets into the cache if rounding overshoots.
	total := numeric.Sum(targets)
	if limit := float64(c.l2.TotalLines()); total > limit {
		scale := limit / total
		for i := range targets {
			targets[i] *= scale
		}
	}
	if err := c.l2.SetTargets(targets); err != nil {
		// Targets are constructed in range; a failure here is a bug.
		panic(fmt.Sprintf("cmpsim: invalid partition targets: %v", err))
	}
}

// shadowFor routes one line address to the core's Lo or Hi shadow
// partition, Talus-style (uniform address hash against ρ).
func (c *Chip) shadowFor(coreID int, addr uint64) int {
	if c.cfg.WayPartition {
		return coreID
	}
	h := (addr / cache.LineSize) * 0x9e3779b97f4a7c15
	if h>>(64-10) < c.rhoThresh[coreID] {
		return 2 * coreID
	}
	return 2*coreID + 1
}

// perfIPS evaluates a core's achieved throughput given its measured miss
// ratio, current frequency and the live memory latency.
func (c *Chip) perfIPS(coreID int, missRatio, memLatNs float64) float64 {
	m := c.models[coreID]
	tpi := m.Spec.CPIBase/c.freq[coreID] +
		m.Spec.API*(missRatio*memLatNs+(1-missRatio)*m.L2HitNs)
	return 1e9 / tpi
}

// instrRate is the core's estimated instruction rate for trace pacing.
func (c *Chip) instrRate(coreID int) float64 {
	base := c.mem.BaseLatencyNs() + interconnectNs
	return c.perfIPS(coreID, c.missEst[coreID], base)
}

// aggregateMissRate returns chip-wide L2 misses per second implied by the
// current estimates, for the DRAM contention model.
func (c *Chip) aggregateMissRate() float64 {
	total := 0.0
	for i := range c.models {
		total += c.instrRate(i) * c.models[i].Spec.API * c.missEst[i]
	}
	return total
}

// MeasuredCurves exposes the current UMON estimates (for tests/tools).
func (c *Chip) MeasuredCurves() []*cache.MissCurve {
	out := make([]*cache.MissCurve, len(c.umons))
	for i, u := range c.umons {
		out[i] = u.Curve()
	}
	return out
}

// Regions returns each core's current total cache-region target (floor
// included).
func (c *Chip) Regions() []float64 {
	return append([]float64(nil), c.regions...)
}

// Frequencies returns each core's current operating frequency in GHz.
func (c *Chip) Frequencies() []float64 {
	return append([]float64(nil), c.freq...)
}

// PowerBudgets returns each core's current total power budget in watts
// (floor included).
func (c *Chip) PowerBudgets() []float64 {
	return append([]float64(nil), c.wattsBudg...)
}

// BandwidthAllocations returns each core's current bandwidth share in GB/s
// (only meaningful in BandwidthMarket mode).
func (c *Chip) BandwidthAllocations() []float64 {
	return append([]float64(nil), c.bwAlloc...)
}

// Temperatures returns each core's current junction temperature in °C.
func (c *Chip) Temperatures() []float64 {
	out := make([]float64, len(c.therm))
	for i, t := range c.therm {
		out[i] = t.Temp()
	}
	return out
}

// buildPlayers constructs market player specs from the clean
// online-monitored miss curves — §4.1.1's runtime utility modelling — with
// no fault injection. The final envy-freeness evaluation uses this path, so
// resilience is judged against what the applications actually wanted.
func (c *Chip) buildPlayers() ([]core.PlayerSpec, []market.Utility, error) {
	curves := make([]*cache.MissCurve, c.cfg.Cores)
	for i := range curves {
		curves[i] = c.umons[i].Curve()
	}
	return c.playersFrom(curves, false)
}

// allocationPlayers is the reallocation-path variant of buildPlayers: each
// monitor reading passes through the fault injector (possibly corrupting
// it) and then through the cache.Repair sanitizer, and the resulting
// utilities may be wrapped to misbehave mid-equilibrium. Corruption lives
// only in the allocator's view — the measurement path and the final
// evaluation stay clean, as a broken sensor cannot change how the hardware
// actually performs.
func (c *Chip) allocationPlayers() ([]core.PlayerSpec, []market.Utility, error) {
	curves := make([]*cache.MissCurve, c.cfg.Cores)
	for i := range curves {
		mc := c.umons[i].Curve()
		c.injector.CorruptCurve(mc.Ratio)
		if cache.Repair(mc.Ratio) {
			c.health.CurveRepairs++
		}
		curves[i] = mc
	}
	return c.playersFrom(curves, true)
}

// playersFrom builds the player specs for the given curves. In
// BandwidthMarket mode the players carry three-resource utilities. With
// faulty set, utilities pass through the injector's wrapper (a no-op when
// injection is disabled).
func (c *Chip) playersFrom(curves []*cache.MissCurve, faulty bool) ([]core.PlayerSpec, []market.Utility, error) {
	players := make([]core.PlayerSpec, c.cfg.Cores)
	utils := make([]market.Utility, c.cfg.Cores)
	for i := range players {
		var u interface {
			market.Utility
			MaxUsefulAlloc() []float64
			MinAlloc() []float64
		}
		var err error
		if c.cfg.BandwidthMarket {
			u, err = app.NewBandwidthUtility(c.models[i], curves[i])
		} else {
			u, err = app.NewUtility(c.models[i], curves[i])
		}
		if err != nil {
			return nil, nil, err
		}
		utils[i] = u
		pu := market.Utility(u)
		if faulty {
			pu = c.injector.WrapUtility(pu)
		}
		players[i] = core.PlayerSpec{
			Name:     fmt.Sprintf("%s#%d", c.bundle.Apps[i].Name, i),
			Utility:  pu,
			MaxAlloc: u.MaxUsefulAlloc(),
			MinAlloc: u.MinAlloc(),
		}
	}
	return players, utils, nil
}

// marketCapacity is the allocatable [Δregions, Δwatts(, ΔGB/s)].
func (c *Chip) marketCapacity() []float64 {
	totalRegions := float64(c.sys.L2CapacityBytes / c.sys.RegionBytes)
	cap := []float64{
		totalRegions - float64(c.cfg.Cores),
		c.sys.PowerBudgetW - numeric.Sum(c.floorW),
	}
	if c.cfg.BandwidthMarket {
		cap = append(cap, c.marketBandwidthGBs())
	}
	return cap
}

// Result summarises a simulated run.
type Result struct {
	Mechanism string
	// NormPerf is each core's achieved throughput normalised to its
	// stand-alone run — the per-application utility (§5).
	NormPerf []float64
	// WeightedSpeedup is Σ NormPerf, the system efficiency (Equation 5).
	WeightedSpeedup float64
	// EnvyFreeness evaluates Definition 3 on the final allocation using
	// the final monitored utilities.
	EnvyFreeness float64
	// MeanIterations is the average bidding–pricing iterations per
	// allocator invocation (0 for non-market mechanisms).
	MeanIterations float64
	// FinalOutcome is the last allocator decision (nil if never invoked).
	FinalOutcome *core.Outcome
	// AvgPowerW and MaxTempC summarise the electrical state.
	AvgPowerW float64
	MaxTempC  float64
	// ThrottleEpochs counts epochs where the RAPL-style governor had to
	// pull frequencies back under the chip TDP.
	ThrottleEpochs int
	// Health is the allocation pipeline's degraded-mode telemetry: final
	// state, failure counts by cause, pinned intervals and repairs.
	Health metrics.Health
	// Faults counts the faults the injector actually fired (all zero when
	// injection is disabled).
	Faults fault.Stats
	// Equilibrium aggregates the §6.4 convergence-cost counters (runs,
	// rounds, bid steps, wall time) over every equilibrium the run's
	// allocator performed.
	Equilibrium metrics.EquilibriumStats
}

// envyFreenessOf evaluates Definition 3 for an outcome under the given
// utilities.
func envyFreenessOf(utils []market.Utility, allocs [][]float64) (float64, error) {
	return metrics.EnvyFreeness(len(utils), func(i int, a []float64) float64 {
		return utils[i].Value(a)
	}, allocs)
}
