package cmpsim

import (
	"errors"
	"math"
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/fault"
	"rebudget/internal/metrics"
)

// TestAloneCacheDistinguishesModifiedSpecs is the regression test for the
// alone-run cache key: a custom spec reusing a catalog name with different
// model parameters must get its own reference run, not the cached one.
func TestAloneCacheDistinguishesModifiedSpecs(t *testing.T) {
	sys := NewSystemConfig(4)
	base, err := app.Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	a, err := alonePerfIPS(base, sys)
	if err != nil {
		t.Fatal(err)
	}
	mod := base
	mod.CPIBase *= 4 // same Name, different machine model
	b, err := alonePerfIPS(mod, sys)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("same-named specs with different CPIBase share an alone-perf entry (%g)", a)
	}
	if b >= a {
		t.Errorf("4x CPIBase should lower alone perf: %g -> %g", a, b)
	}
}

// TestMissEstDecaysWhenIdle: a core that issues nothing in an epoch must not
// keep its old miss estimate forever — it decays toward the pessimistic
// cold-start value.
func TestMissEstDecaysWhenIdle(t *testing.T) {
	cfg := DefaultConfig(4)
	// An (unrealistically) short epoch issues zero accesses on every core,
	// exercising the counts==0 path.
	cfg.EpochSeconds = 1e-15
	chip, err := NewChip(cfg, smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	chip.missEst[0] = 0.2
	chip.runEpoch(false)
	want := 0.2 + 0.5*(1-0.2)
	if math.Abs(chip.missEst[0]-want) > 1e-12 {
		t.Errorf("idle missEst = %g, want %g", chip.missEst[0], want)
	}
	chip.runEpoch(false)
	if chip.missEst[0] <= want {
		t.Errorf("missEst must keep decaying toward 1, got %g", chip.missEst[0])
	}
}

// brokenAllocator fails every call.
type brokenAllocator struct{}

func (brokenAllocator) Name() string { return "broken" }
func (brokenAllocator) Allocate([]float64, []core.PlayerSpec) (*core.Outcome, error) {
	return nil, errors.New("injected allocator failure")
}

// TestDegradedModeStateMachine: a permanently failing allocator must not
// abort the simulation. The pipeline degrades (pinning the last good
// allocation), periodically re-probes, and reports it all in Health.
func TestDegradedModeStateMachine(t *testing.T) {
	chip, err := NewChip(DefaultConfig(4), smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.Run(brokenAllocator{})
	if err != nil {
		t.Fatalf("broken allocator aborted the simulation: %v", err)
	}
	h := res.Health
	if h.State == metrics.Healthy {
		t.Error("pipeline still Healthy after a run of pure failures")
	}
	if h.AllocFailures < chip.resil.MaxConsecFailures {
		t.Errorf("AllocFailures = %d, want >= %d", h.AllocFailures, chip.resil.MaxConsecFailures)
	}
	if h.AllocFailures != h.AllocAttempts {
		t.Errorf("every attempt fails, yet failures %d != attempts %d", h.AllocFailures, h.AllocAttempts)
	}
	if h.PinnedIntervals < chip.resil.CooldownIntervals {
		t.Errorf("PinnedIntervals = %d, want >= %d", h.PinnedIntervals, chip.resil.CooldownIntervals)
	}
	if h.Transitions < 2 {
		t.Errorf("Transitions = %d, want >= 2 (degrade + re-probe)", h.Transitions)
	}
	if h.Causes[metrics.CauseAllocator] != h.AllocFailures {
		t.Errorf("untyped failures must classify as allocator: %v vs %d failures", h.Causes, h.AllocFailures)
	}
	if res.FinalOutcome != nil {
		t.Error("no allocation ever succeeded, yet a final outcome is reported")
	}
	if res.WeightedSpeedup <= 0 {
		t.Error("pinned initial allocation should still make progress")
	}
	if h.FailureRate() != 1 {
		t.Errorf("FailureRate = %g, want 1", h.FailureRate())
	}
}

// TestSimCompletesUnderFaults: at a 10% monitor/solver fault rate the
// detailed simulation finishes without error, the injector demonstrably
// fired, and no installed budget ever dipped below the ReBudget floor.
func TestSimCompletesUnderFaults(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Faults = fault.Config{MonitorRate: 0.1, SolverRate: 0.1, UtilityRate: 0.01, Seed: 7}
	chip, err := NewChip(cfg, smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	mech := core.ReBudget{Step: 20}
	res, err := chip.Run(mech)
	if err != nil {
		t.Fatalf("faulty run aborted: %v", err)
	}
	if res.WeightedSpeedup <= 0 {
		t.Error("no progress under faults")
	}
	f := res.Faults
	if f.CurveFaults+f.UtilityFaults+f.SolverStalls == 0 {
		t.Error("10% fault rate fired nothing — injector not wired into the run")
	}
	if f.CurveFaults > 0 && res.Health.CurveRepairs == 0 {
		t.Error("corrupted curves were never repaired before allocation")
	}
	floor, err := mech.EffectiveMBRFloor()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalOutcome != nil {
		for i, b := range res.FinalOutcome.Budgets {
			if b < floor*core.InitialBudget-1e-9 {
				t.Errorf("player %d final budget %g below MBR floor %g", i, b, floor*core.InitialBudget)
			}
		}
	}
}
