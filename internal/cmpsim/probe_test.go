package cmpsim

import (
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// TestLargeScalePhysicsSanity runs a 64-core bundle under EqualShare and
// MaxEfficiency and asserts the physical invariants that once caught a
// trace-namespace overflow (cores silently sharing address streams made
// streamers "hit" each other's lines and pushed normalised performance far
// above 1): streamers must keep missing, nobody beats its stand-alone run
// materially, and the welfare-optimising reference must not lose to the
// market-free baseline.
func TestLargeScalePhysicsSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core simulation is slow")
	}
	b, err := workload.Generate(workload.CPBN, 64, numeric.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(64)
	cfg.Epochs = 8

	run := func(mech core.Allocator) (*Result, *Chip) {
		chip, err := NewChip(cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chip.Run(mech)
		if err != nil {
			t.Fatal(err)
		}
		return res, chip
	}
	es, esChip := run(core.EqualShare{})
	me, _ := run(core.MaxEfficiency{})

	for i, p := range es.NormPerf {
		if p > 1.15 {
			t.Errorf("core %d (%s) normalised perf %.2f > 1 — alone reference broken",
				i, b.Apps[i].Name, p)
		}
	}
	// N-class streamers cannot be served by any cache: their measured miss
	// ratios must stay high.
	for i, a := range b.Apps {
		if a.Class == app.None && esChip.missEst[i] < 0.8 {
			t.Errorf("streamer %s#%d miss ratio %.2f — address streams may alias",
				a.Name, i, esChip.missEst[i])
		}
	}
	if me.WeightedSpeedup < es.WeightedSpeedup*0.97 {
		t.Errorf("MaxEfficiency speedup %.2f clearly below EqualShare %.2f",
			me.WeightedSpeedup, es.WeightedSpeedup)
	}
}
