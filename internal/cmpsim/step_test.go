package cmpsim

import (
	"reflect"
	"testing"

	"rebudget/internal/core"
	"rebudget/internal/workload"
)

func testBundle(t *testing.T, cores int) workload.Bundle {
	t.Helper()
	b, err := workload.Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Apps) != cores {
		t.Fatalf("figure-3 bundle has %d apps, want %d", len(b.Apps), cores)
	}
	return b
}

// TestStepMatchesBatchRun pins the contract step.go documents: Run is
// implemented on top of Begin/StepEpoch/Snapshot, so driving the primitives
// by hand must reproduce the batch result bit for bit.
func TestStepMatchesBatchRun(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Epochs = 6

	batchChip, err := NewChip(cfg, testBundle(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchChip.Run(core.ReBudget{Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	stepChip, err := NewChip(cfg, testBundle(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := stepChip.Begin(core.ReBudget{Step: 0.05}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < cfg.Epochs; e++ {
		// Mid-run snapshots must be pure reads: taking one every epoch
		// cannot perturb the final result.
		if e > 0 {
			if _, err := stepChip.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := stepChip.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	stepped, err := stepChip.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Wall time inside the equilibrium profile is the one nondeterministic
	// field; everything else — performance, telemetry, the final outcome —
	// must match bit for bit.
	batch.Equilibrium.Wall = 0
	stepped.Equilibrium.Wall = 0
	if !reflect.DeepEqual(batch.FinalOutcome, stepped.FinalOutcome) {
		t.Fatalf("final outcomes diverged:\nbatch   %+v\nstepped %+v",
			batch.FinalOutcome, stepped.FinalOutcome)
	}
	batch.FinalOutcome, stepped.FinalOutcome = nil, nil
	if !reflect.DeepEqual(batch, stepped) {
		t.Fatalf("stepped run diverged from batch run:\nbatch   %+v\nstepped %+v", batch, stepped)
	}
}

func TestStepLifecycleErrors(t *testing.T) {
	cfg := DefaultConfig(8)
	c, err := NewChip(cfg, testBundle(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StepEpoch(); err == nil {
		t.Fatal("StepEpoch before Begin should fail")
	}
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("Snapshot with no measured epochs should fail")
	}
	if err := c.Begin(nil); err == nil {
		t.Fatal("Begin(nil) should fail")
	}
	if err := c.Begin(core.EqualShare{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(core.EqualShare{}); err == nil {
		t.Fatal("double Begin should fail")
	}
	if err := c.StepEpoch(); err != nil {
		t.Fatal(err)
	}
	if c.Stepped() != 1 {
		t.Fatalf("Stepped() = %d after one epoch", c.Stepped())
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
}
