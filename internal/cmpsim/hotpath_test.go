package cmpsim

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/trace"
	"rebudget/internal/workload"
)

// TestAloneSingleflight is the regression test for the duplicate-work race:
// before the singleflight, alonePerfIPS released its lock during the
// ~400-epoch reference run, so concurrent chips with the same key each
// computed it. Now the map hands every caller the same per-key entry and a
// sync.Once runs the simulation exactly once.
func TestAloneSingleflight(t *testing.T) {
	sys := NewSystemConfig(4)
	// A unique custom spec (distinct fingerprint) guarantees a cold key no
	// matter which tests ran earlier in the process.
	spec := app.Spec{
		Name: "singleflight-probe", CPIBase: 0.7, API: 0.012, Activity: 0.8,
		Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 0.9, Param: 3000},
			{Kind: trace.Streaming, Weight: 0.1},
		},
	}
	before := aloneComputes.Load()
	const callers = 16
	perfs := make([]float64, callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err := alonePerfIPS(spec, sys)
			if err != nil {
				t.Errorf("caller %d: %v", k, err)
				return
			}
			perfs[k] = v
		}(k)
	}
	wg.Wait()
	if got := aloneComputes.Load() - before; got != 1 {
		t.Fatalf("%d concurrent callers ran %d reference simulations, want 1", callers, got)
	}
	for k := 1; k < callers; k++ {
		if perfs[k] != perfs[0] {
			t.Fatalf("caller %d got %g, caller 0 got %g", k, perfs[k], perfs[0])
		}
	}
}

// steadyBundle builds a bundle whose generators never allocate: Cyclic and
// Streaming components keep no LRU stack, so every epoch's draws are pure
// counter arithmetic. That isolates the AllocsPerRun assertion to the epoch
// machinery itself.
func steadyBundle(cores int) workload.Bundle {
	b := workload.Bundle{Category: workload.CPBN}
	for i := 0; i < cores; i++ {
		b.Apps = append(b.Apps, app.Spec{
			Name: fmt.Sprintf("steady-%d", i), CPIBase: 0.8, API: 0.01, Activity: 0.7,
			Mix: []trace.Component{
				{Kind: trace.Cyclic, Weight: 0.7, Param: float64(4000 + 512*i)},
				{Kind: trace.Streaming, Weight: 0.3},
			},
		})
	}
	return b
}

// TestRunEpochSteadyStateAllocs pins the zero-allocation property of the
// epoch hot path: once the scratch buffers exist, simulating an epoch must
// not touch the heap.
func TestRunEpochSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig(4)
	chip, err := NewChip(cfg, steadyBundle(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Begin(core.EqualShare{}); err != nil {
		t.Fatal(err)
	}
	// A few measured epochs settle missEst (and hence pacing counts).
	for e := 0; e < 3; e++ {
		chip.runEpoch(true)
	}
	if allocs := testing.AllocsPerRun(50, func() { chip.runEpoch(true) }); allocs != 0 {
		t.Fatalf("steady-state runEpoch allocates %.1f objects per epoch, want 0", allocs)
	}
	// The sparse scheduler must be allocation-free too once its heap is
	// warm.
	chip.sched = schedSparse
	chip.runEpoch(true)
	if allocs := testing.AllocsPerRun(50, func() { chip.runEpoch(true) }); allocs != 0 {
		t.Fatalf("sparse-scheduled runEpoch allocates %.1f objects per epoch, want 0", allocs)
	}
}

// skewedBundle pairs memory-hungry apps with near-idle ones so per-core
// paced counts differ wildly — the regime where the sparse scheduler
// actually engages and where an ordering bug would surface as divergent
// cache contention.
func skewedBundle(t *testing.T, cores int) workload.Bundle {
	t.Helper()
	b := workload.Bundle{Category: workload.CPBN}
	for i := 0; i < cores; i++ {
		s := app.Spec{Name: fmt.Sprintf("skew-%d", i), CPIBase: 0.6, Activity: 0.8}
		if i == 0 {
			s.API = 0.03 // hammers the L2
			s.Mix = []trace.Component{{Kind: trace.Geometric, Weight: 1, Param: 6000}}
		} else {
			s.API = 0.00001 // nearly idle
			s.Mix = []trace.Component{{Kind: trace.Streaming, Weight: 1}}
		}
		b.Apps = append(b.Apps, s)
	}
	return b
}

// TestSchedulersBitIdentical forces the dense and sparse interleave
// schedulers on two chips that are otherwise identical and requires every
// per-epoch observable — miss tallies, cache occupancy, miss estimates —
// and the final Result to match exactly. This is the pin that lets the auto
// heuristic switch schedulers freely without perturbing goldens.
func TestSchedulersBitIdentical(t *testing.T) {
	// One hammering core among idlers: the dense scheduler's slot occupancy
	// is bounded below by 1/cores, so real skew needs a wide chip.
	cfg := DefaultConfig(16)
	cfg.Epochs = 6
	cfg.WarmupEpochs = 2
	bundle := skewedBundle(t, 16)

	newChip := func(m schedMode) *Chip {
		chip, err := NewChip(cfg, bundle)
		if err != nil {
			t.Fatal(err)
		}
		chip.sched = m
		if err := chip.Begin(core.EqualShare{}); err != nil {
			t.Fatal(err)
		}
		return chip
	}
	dense, sparse := newChip(schedDense), newChip(schedSparse)
	for e := 0; e < cfg.Epochs; e++ {
		if err := dense.StepEpoch(); err != nil {
			t.Fatal(err)
		}
		if err := sparse.StepEpoch(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.Cores; i++ {
			if dense.scratch.counts[i] != sparse.scratch.counts[i] {
				t.Fatalf("epoch %d core %d: paced counts diverge (%d vs %d)", e, i, dense.scratch.counts[i], sparse.scratch.counts[i])
			}
			if dense.scratch.misses[i] != sparse.scratch.misses[i] {
				t.Fatalf("epoch %d core %d: miss counts diverge (%d vs %d)", e, i, dense.scratch.misses[i], sparse.scratch.misses[i])
			}
			if math.Float64bits(dense.missEst[i]) != math.Float64bits(sparse.missEst[i]) {
				t.Fatalf("epoch %d core %d: missEst diverges (%v vs %v)", e, i, dense.missEst[i], sparse.missEst[i])
			}
		}
		do, so := dense.l2.Occupancy(), sparse.l2.Occupancy()
		for p := range do {
			if do[p] != so[p] {
				t.Fatalf("epoch %d: occupancy[%d] diverges (%d vs %d)", e, p, do[p], so[p])
			}
		}
	}
	dr, err := dense.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sparse.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dr.NormPerf {
		if math.Float64bits(dr.NormPerf[i]) != math.Float64bits(sr.NormPerf[i]) {
			t.Fatalf("NormPerf[%d] diverges: %v vs %v", i, dr.NormPerf[i], sr.NormPerf[i])
		}
	}
	if math.Float64bits(dr.WeightedSpeedup) != math.Float64bits(sr.WeightedSpeedup) {
		t.Fatalf("WeightedSpeedup diverges: %v vs %v", dr.WeightedSpeedup, sr.WeightedSpeedup)
	}
	// Sanity: the skewed profile must actually exercise the sparse path in
	// auto mode, or this test pins nothing interesting.
	s := sparse.scratch
	total, maxCount := 0, 0
	for i := range s.counts {
		total += s.counts[i]
		if s.counts[i] > maxCount {
			maxCount = s.counts[i]
		}
	}
	if total*8 >= maxCount*cfg.Cores {
		t.Fatalf("bundle not skewed enough to engage the sparse scheduler (total %d, max %d)", total, maxCount)
	}
}
