package cmpsim

import (
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/trace"
	"rebudget/internal/workload"
)

// pBundle builds a 4-core all-power-sensitive bundle so a context switch
// to a cache-hungry app produces an unambiguous allocation shift.
func pBundle(t *testing.T) workload.Bundle {
	t.Helper()
	var b workload.Bundle
	b.Category = "test"
	for _, n := range []string{"sixtrack", "hmmer", "eon", "crafty"} {
		spec, err := app.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		b.Apps = append(b.Apps, spec)
	}
	return b
}

func TestSwitchAppValidation(t *testing.T) {
	chip, err := NewChip(DefaultConfig(4), pBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := app.Lookup("mcf")
	if err := chip.SwitchApp(-1, spec); err == nil {
		t.Error("negative core accepted")
	}
	if err := chip.SwitchApp(4, spec); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := chip.SwitchApp(0, spec); err != nil {
		t.Errorf("valid switch rejected: %v", err)
	}
	if chip.bundle.Apps[0].Name != "mcf" {
		t.Error("switch did not install the new app")
	}
	if chip.missEst[0] != 1 {
		t.Error("miss estimate should reset pessimistically")
	}
	if chip.umons[0].Observations() != 0 {
		t.Error("UMON should be cleared")
	}
}

func TestRunWithSwitchesValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epochs = 6
	chip, err := NewChip(cfg, pBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chip.RunWithSwitches(core.EqualBudget{}, []SwitchEvent{{Epoch: 99, Core: 0, App: "mcf"}}); err == nil {
		t.Error("out-of-range epoch accepted")
	}
	chip2, _ := NewChip(cfg, pBundle(t))
	if _, err := chip2.RunWithSwitches(core.EqualBudget{}, []SwitchEvent{{Epoch: 1, Core: 0, App: "doom"}}); err == nil {
		t.Error("unknown app accepted")
	}
	chip3, _ := NewChip(cfg, pBundle(t))
	if _, err := chip3.RunWithSwitches(nil, nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

// TestMarketAdaptsToContextSwitch is the §4.3 scenario: demands change at a
// context switch and the per-millisecond reallocation follows them.
func TestMarketAdaptsToContextSwitch(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epochs = 14
	cfg.Seed = 5
	chip, err := NewChip(cfg, pBundle(t))
	if err != nil {
		t.Fatal(err)
	}

	// Capture core 0's cache allocation just before the switch by running
	// half the epochs... instead, simply record allocations at the end of
	// a switched run and compare core 0 against a power-only peer.
	res, err := chip.RunWithSwitches(core.EqualBudget{}, []SwitchEvent{
		{Epoch: 7, Core: 0, App: "mcf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if chip.bundle.Apps[0].Name != "mcf" {
		t.Fatal("switch not applied")
	}
	// After adaptation the cache-hungry newcomer must hold more cache
	// than its power-hungry peers.
	if chip.regions[0] <= chip.regions[1] {
		t.Errorf("market did not shift cache to the newcomer: mcf %g regions vs peer %g",
			chip.regions[0], chip.regions[1])
	}
	// Throughput accounting for core 0 must cover only the post-switch span.
	if res.NormPerf[0] <= 0 || res.NormPerf[0] > 1.3 {
		t.Errorf("switched core normalised perf %g implausible", res.NormPerf[0])
	}
	for i := 1; i < 4; i++ {
		if res.NormPerf[i] <= 0 {
			t.Errorf("peer core %d lost all throughput", i)
		}
	}
}

func TestRunWithoutSwitchesMatchesRun(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epochs = 6
	a, err := NewChip(cfg, pBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChip(cfg, pBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Run(core.EqualBudget{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunWithSwitches(core.EqualBudget{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.WeightedSpeedup != rb.WeightedSpeedup {
		t.Errorf("Run (%g) and RunWithSwitches-nil (%g) diverge", ra.WeightedSpeedup, rb.WeightedSpeedup)
	}
}

// TestMarketFollowsPhaseChange is §4.3's other scenario: the application
// itself changes phase (cache-friendly → streaming) and the per-epoch
// monitoring + reallocation must track it.
func TestMarketFollowsPhaseChange(t *testing.T) {
	phased, err := app.Lookup("twolf")
	if err != nil {
		t.Fatal(err)
	}
	// Phase 0: twolf's normal reuse (cache pays off). Phase 1: streaming
	// (cache worthless). Phase length ≈ 3 epochs of accesses.
	phased.Name = "twolf-phased"
	phased.Phases = []trace.Phase{
		{Mix: phased.Mix, Accesses: 18000},
		{Mix: []trace.Component{{Kind: trace.Streaming, Weight: 1}}, Accesses: 60000},
	}
	var b workload.Bundle
	b.Category = "phase-test"
	b.Apps = append(b.Apps, phased)
	for _, n := range []string{"vpr", "sixtrack", "hmmer"} {
		spec, err := app.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		b.Apps = append(b.Apps, spec)
	}
	cfg := DefaultConfig(4)
	cfg.Seed = 11
	cfg.Epochs = 4
	chip, err := NewChip(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Run(core.EqualBudget{}); err != nil {
		t.Fatal(err)
	}
	cacheEraRegions := chip.regions[0]

	// A second chip run long enough to be deep inside the streaming phase.
	cfg2 := cfg
	cfg2.Epochs = 16
	chip2, err := NewChip(cfg2, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chip2.Run(core.EqualBudget{}); err != nil {
		t.Fatal(err)
	}
	streamEraRegions := chip2.regions[0]
	if streamEraRegions >= cacheEraRegions {
		t.Errorf("market did not follow the phase change: %g regions while cache-friendly, %g while streaming",
			cacheEraRegions, streamEraRegions)
	}
}
