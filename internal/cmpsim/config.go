// Package cmpsim is the execution-driven chip-multiprocessor simulator the
// reproduction uses in place of SESC (§5.1). It models the pieces the
// allocation mechanisms interact with: per-core synthetic instruction
// streams driving a shared, partitioned, set-associative L2 (with Talus
// shadow partitions and Futility-Scaling enforcement), UMON monitors,
// per-core DVFS under a chip power budget, an RC thermal model with leakage
// feedback, and a contended DDR3-like memory system. Allocation decisions
// are re-taken every 1 ms epoch from online-monitored utilities, exactly as
// §4.3 schedules ReBudget off the APIC timer.
package cmpsim

import (
	"fmt"

	"rebudget/internal/fault"
	"rebudget/internal/power"
)

// Config sizes a simulation.
type Config struct {
	// Cores is the CMP size (8 or 64 in the paper; any multiple of 4
	// works).
	Cores int
	// WarmupEpochs run under EqualShare before measurement starts.
	WarmupEpochs int
	// Epochs is the measured portion of the run.
	Epochs int
	// EpochSeconds is the allocation interval (§4.3 uses 1 ms).
	EpochSeconds float64
	// MaxAccessesPerCoreEpoch caps the simulated L2 accesses per core
	// each epoch; the per-core access counts are scaled down together so
	// relative cache pressure is preserved (trace sampling).
	MaxAccessesPerCoreEpoch int
	// ReallocEvery invokes the allocator every this many epochs.
	ReallocEvery int
	// Seed drives all randomised behaviour deterministically.
	Seed uint64
	// MarketWorkers sets market.Config.Workers for every equilibrium the
	// chip's allocator runs: 0 means GOMAXPROCS, 1 forces serial rounds.
	// Parallel rounds are bit-identical to serial ones, except that runs
	// with fault injection enabled always force serial — the injector's
	// utility faults consume a shared RNG stream whose draw order must not
	// depend on goroutine scheduling.
	MarketWorkers int
	// WayPartition switches L2 enforcement from the paper's Futility
	// Scaling regions (+ Talus shadow partitions) to strict UCP-style way
	// quotas — the coarse-grained alternative, for the granularity
	// ablation. Way mode cannot host Talus shadows, so utilities keep
	// their hulls but enforcement quantises to whole ways.
	WayPartition bool
	// BandwidthMarket adds memory bandwidth as a third market resource,
	// enforced MemGuard-style: each core's miss traffic queues against
	// its own allocated share of the channels rather than the shared
	// pool. Exercises the framework's general M-resource form (§2).
	BandwidthMarket bool
	// Faults configures deterministic fault injection into the allocation
	// pipeline (corrupted monitor readings, misbehaving utilities, stalled
	// equilibrium searches). The zero value disables injection entirely
	// and leaves the simulation bit-identical to a build without it.
	Faults fault.Config
	// Resilience tunes the degraded-mode state machine that keeps the
	// simulation running when allocation fails. Zero values select the
	// documented defaults.
	Resilience ResilienceConfig
}

// ResilienceConfig tunes the chip's healthy → degraded → recovering state
// machine (see DESIGN.md, "Failure model & degraded mode").
type ResilienceConfig struct {
	// MaxConsecFailures is how many consecutive allocation failures the
	// pipeline tolerates before transitioning to Degraded and pinning the
	// last installed allocation (default 3).
	MaxConsecFailures int
	// CooldownIntervals is how many reallocation intervals the pipeline
	// stays pinned before transitioning to Recovering and re-probing the
	// allocator (default 4).
	CooldownIntervals int
}

func (r ResilienceConfig) withDefaults() ResilienceConfig {
	if r.MaxConsecFailures <= 0 {
		r.MaxConsecFailures = 3
	}
	if r.CooldownIntervals <= 0 {
		r.CooldownIntervals = 4
	}
	return r
}

// DefaultConfig returns a simulation sized for the given core count with
// costs suitable for tests and benchmarks.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:                   cores,
		WarmupEpochs:            8,
		Epochs:                  12,
		EpochSeconds:            1e-3,
		MaxAccessesPerCoreEpoch: 6000,
		ReallocEvery:            1,
		Seed:                    1,
	}
}

func (c Config) validate() error {
	if c.Cores < 2 {
		return fmt.Errorf("cmpsim: need at least 2 cores, got %d", c.Cores)
	}
	if c.Epochs < 1 || c.WarmupEpochs < 0 {
		return fmt.Errorf("cmpsim: invalid epoch counts %d/%d", c.WarmupEpochs, c.Epochs)
	}
	if c.EpochSeconds <= 0 {
		return fmt.Errorf("cmpsim: non-positive epoch length")
	}
	if c.MaxAccessesPerCoreEpoch < 100 {
		return fmt.Errorf("cmpsim: access budget %d too small to be meaningful", c.MaxAccessesPerCoreEpoch)
	}
	if c.ReallocEvery < 1 {
		return fmt.Errorf("cmpsim: ReallocEvery must be >= 1")
	}
	return nil
}

// SystemConfig mirrors Table 1 for reporting: the fixed architectural
// parameters of the modelled CMP at a given core count.
type SystemConfig struct {
	Cores              int
	PowerBudgetW       float64
	L2CapacityBytes    int
	L2Ways             int
	MemoryChannels     int
	FreqMinGHz         float64
	FreqMaxGHz         float64
	VoltMin            float64
	VoltMax            float64
	RegionBytes        int
	UMONSampleRate     int
	UMONMaxStackRegion int
}

// NewSystemConfig scales Table 1 to the core count: 512 kB of shared L2 and
// 10 W of TDP per core, 16 ways at 8 cores and 32 at 64, 2 memory channels
// per 8 cores.
func NewSystemConfig(cores int) SystemConfig {
	ways := 16
	if cores > 16 {
		ways = 32
	}
	channels := cores / 4
	if channels < 1 {
		channels = 1
	}
	return SystemConfig{
		Cores:              cores,
		PowerBudgetW:       power.TDPPerCoreW * float64(cores),
		L2CapacityBytes:    cores * 512 << 10,
		L2Ways:             ways,
		MemoryChannels:     channels,
		FreqMinGHz:         power.MinFreqGHz,
		FreqMaxGHz:         power.MaxFreqGHz,
		VoltMin:            power.MinVolt,
		VoltMax:            power.MaxVolt,
		RegionBytes:        128 << 10,
		UMONSampleRate:     32,
		UMONMaxStackRegion: 16,
	}
}
