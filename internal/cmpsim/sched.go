package cmpsim

// This file is the epoch interleave machinery: the per-chip scratch state
// that makes steady-state epochs allocation-free, and two schedulers that
// emit the cores' paced access streams in one canonical global order.
//
// The canonical order is the one the original Bresenham loop produced: core
// i's k-th access (k 0-based) lands at step ceil((k+1)·maxCount/counts[i])-1,
// and cores that share a step emit in ascending core index. The dense
// scheduler walks every (step, core) pair — O(maxCount × cores), ideal when
// most cores emit most steps. The sparse scheduler keeps one pending
// (step, core) key per core in a binary min-heap and jumps straight from
// emission to emission — O(total × log cores), which wins when counts are
// skewed and the dense inner loop would be mostly skips. Both produce the
// identical emission sequence (a pinned test forces each and compares), so
// the auto heuristic is free to pick by cost without touching results.

// schedMode forces an interleave scheduler; tests use it to pin dense/sparse
// equivalence. The zero value picks by estimated cost.
type schedMode int

const (
	schedAuto schedMode = iota
	schedDense
	schedSparse
)

// epochScratch is runEpoch's reusable working state. It is sized once on
// first use; afterwards epochs run without heap allocation.
type epochScratch struct {
	counts  []int       // per-core paced access count this epoch
	rates   []float64   // per-core raw access rate before joint scaling
	misses  []int       // per-core L2 misses this epoch
	credits []int       // dense scheduler's Bresenham accumulators
	cursor  []int       // per-core index of the next prefetched address
	bufs    [][]uint64  // per-core prefetched epoch addresses
	heap    []uint64    // sparse scheduler's pending (step, core) keys
}

func (s *epochScratch) ensure(n, maxAccesses int) {
	if s.counts != nil {
		return
	}
	s.counts = make([]int, n)
	s.rates = make([]float64, n)
	s.misses = make([]int, n)
	s.credits = make([]int, n)
	s.cursor = make([]int, n)
	s.heap = make([]uint64, 0, n)
	s.bufs = make([][]uint64, n)
	backing := make([]uint64, n*maxAccesses)
	for i := range s.bufs {
		s.bufs[i] = backing[i*maxAccesses : (i+1)*maxAccesses : (i+1)*maxAccesses]
	}
}

// emitAccess issues core i's next prefetched address to its monitor, the
// shared L2 and — on a miss — the DRAM bank model. Emission order across
// cores is the schedulers' responsibility; this body is shared so both
// produce byte-identical side effects.
func (c *Chip) emitAccess(i int) {
	s := &c.scratch
	addr := s.bufs[i][s.cursor[i]]
	s.cursor[i]++
	c.umons[i].Observe(addr)
	if !c.l2.Access(addr, c.shadowFor(i, addr)) {
		s.misses[i]++
		c.bankSim.Access(addr)
	}
}

// interleaveDense is the Bresenham-style scheduler: every core accumulates
// its count per step and emits when the accumulator wraps maxCount.
func (c *Chip) interleaveDense(maxCount int) {
	s := &c.scratch
	n := c.cfg.Cores
	for i := 0; i < n; i++ {
		s.credits[i] = 0
	}
	for step := 0; step < maxCount; step++ {
		for i := 0; i < n; i++ {
			s.credits[i] += s.counts[i]
			if s.credits[i] < maxCount {
				continue
			}
			s.credits[i] -= maxCount
			c.emitAccess(i)
		}
	}
}

// stepKey encodes core i's k-th emission as step·n + i, so ascending key
// order is exactly the dense scheduler's (step, core index) order.
func stepKey(k, count, maxCount, n, i int) uint64 {
	step := ((k+1)*maxCount - 1) / count // ceil((k+1)·maxCount/count) − 1
	return uint64(step)*uint64(n) + uint64(i)
}

// interleaveSparse is the next-event scheduler: a binary min-heap holds each
// active core's next emission key and the loop hops emission to emission,
// never visiting the (step, core) pairs that would have been skips.
func (c *Chip) interleaveSparse(maxCount int) {
	s := &c.scratch
	n := c.cfg.Cores
	h := s.heap[:0]
	for i := 0; i < n; i++ {
		if s.counts[i] > 0 {
			h = heapPush(h, stepKey(0, s.counts[i], maxCount, n, i))
		}
	}
	for len(h) > 0 {
		i := int(h[0] % uint64(n))
		c.emitAccess(i)
		if k := s.cursor[i]; k < s.counts[i] {
			// Replace the top in place with this core's next emission and
			// restore the heap; the new key is strictly larger.
			h[0] = stepKey(k, s.counts[i], maxCount, n, i)
			heapSiftDown(h, 0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				heapSiftDown(h, 0)
			}
		}
	}
	s.heap = h
}

func heapPush(h []uint64, v uint64) []uint64 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapSiftDown(h []uint64, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
