package cmpsim

import (
	"errors"
	"sync"
	"sync/atomic"

	"rebudget/internal/app"
	"rebudget/internal/cache"
	"rebudget/internal/core"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/numeric"
	"rebudget/internal/power"
)

// runEpoch simulates one allocation interval: every core issues its share
// of L2 accesses (paced by its current throughput estimate and scaled under
// the sampling cap), the chip measures per-core miss ratios, retires
// instructions against the live memory latency, and advances thermals.
//
// The hot path works entirely out of the chip's epochScratch: pacing counts,
// miss tallies and the per-core address buffers are reused epoch to epoch,
// so a steady-state epoch performs no heap allocation. Each core's draws are
// prefetched in one batch (keeping that generator's stack state hot) and
// then interleaved in the canonical (step, core) order by whichever
// scheduler in sched.go is cheaper for this epoch's count profile — the
// emission sequence, and hence every downstream measurement, is identical
// either way.
func (c *Chip) runEpoch(measured bool) {
	n := c.cfg.Cores
	s := &c.scratch
	s.ensure(n, c.cfg.MaxAccessesPerCoreEpoch)

	// Trace pacing: per-core access counts proportional to instruction
	// rate × memory intensity, jointly scaled under the sampling cap.
	counts, rates, misses := s.counts, s.rates, s.misses
	for i := 0; i < n; i++ {
		rates[i] = c.instrRate(i) * c.models[i].Spec.API * c.cfg.EpochSeconds
		if rates[i] > float64(c.cfg.MaxAccessesPerCoreEpoch) {
			rates[i] = float64(c.cfg.MaxAccessesPerCoreEpoch)
		}
	}
	scale := 1.0
	top := numeric.Max(rates)
	if top > float64(c.cfg.MaxAccessesPerCoreEpoch) {
		scale = float64(c.cfg.MaxAccessesPerCoreEpoch) / top
	}
	maxCount, total := 0, 0
	for i := 0; i < n; i++ {
		counts[i] = int(rates[i] * scale)
		if counts[i] > maxCount {
			maxCount = counts[i]
		}
		total += counts[i]
		misses[i] = 0
		s.cursor[i] = 0
	}

	// Batched generation: prefetch each core's whole epoch of addresses.
	// Generators are per-core, so drawing ahead of the interleave changes
	// nothing about which addresses appear or in what per-core order.
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			c.gens[i].Fill(s.bufs[i][:counts[i]])
		}
	}

	// Interleave the cores' streams in the canonical schedule so cache
	// pressure is temporally mixed rather than phase-ordered. The sparse
	// scheduler takes over when the dense O(maxCount × cores) scan would
	// be dominated by skips (mean slot occupancy under ~1/8).
	if maxCount > 0 {
		dense := total*8 >= maxCount*n
		if (dense || c.sched == schedDense) && c.sched != schedSparse {
			c.interleaveDense(maxCount)
		} else {
			c.interleaveSparse(maxCount)
		}
	}

	// Measurement: per-core miss ratios and live DRAM latency from the
	// bank-level model (measured row locality + per-bank queueing; the
	// sampling scale converts simulated miss counts into real rates).
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			c.missEst[i] = float64(misses[i]) / float64(counts[i])
		} else {
			// Nothing was measured this epoch, so the old estimate is
			// stale. Decay it toward the pessimistic cold-start value
			// instead of trusting it indefinitely: an idle core that
			// resumes issuing should be re-measured, not modelled by an
			// epoch-old snapshot.
			c.missEst[i] += 0.5 * (1 - c.missEst[i])
		}
	}
	sampleScale := 1.0
	if scale > 0 {
		sampleScale = 1 / scale
	}
	memLat := interconnectNs + c.bankSim.EpochLatencyNs(c.cfg.EpochSeconds, sampleScale)
	deviceLat := c.bankSim.BaseLatencyNs()
	c.bankSim.Reset()

	// Retirement and thermals.
	for i := 0; i < n; i++ {
		coreLat := memLat
		if c.cfg.BandwidthMarket {
			// MemGuard-style enforcement: each core's misses queue on
			// its own allocated bandwidth share, not the shared pool.
			demandGBs := float64(misses[i]) * sampleScale * cache.LineSize /
				c.cfg.EpochSeconds / 1e9
			bw := c.bwAlloc[i]
			if bw < app.FloorBandwidthGBs {
				bw = app.FloorBandwidthGBs
			}
			coreLat = interconnectNs + deviceLat*(1+demandGBs/(2*bw))
		}
		perf := c.perfIPS(i, c.missEst[i], coreLat)
		if measured {
			c.instructions[i] += perf * c.cfg.EpochSeconds
		}
		draw := c.models[i].Power.Total(c.freq[i], c.models[i].Spec.Activity, c.therm[i].Temp())
		c.therm[i].Update(draw, c.cfg.EpochSeconds)
	}
	c.enforcePowerBudget()
	if measured {
		c.elapsed += c.cfg.EpochSeconds
	}
}

// enforcePowerBudget is the RAPL-style chip governor: frequencies are set
// from per-core budgets at allocation time, but leakage grows with the
// temperatures that develop *between* allocations, so the measured draw can
// drift above the chip TDP. When it does, every core's effective power
// budget is scaled back proportionally and its frequency re-derived at the
// live temperature. Returns whether a throttle happened.
func (c *Chip) enforcePowerBudget() bool {
	total := 0.0
	for i := range c.models {
		total += c.models[i].Power.Total(c.freq[i], c.models[i].Spec.Activity, c.therm[i].Temp())
	}
	if total <= c.sys.PowerBudgetW {
		return false
	}
	scale := c.sys.PowerBudgetW / total
	for i := range c.models {
		c.freq[i] = c.models[i].FreqAtTotalPowerGHz(c.wattsBudg[i]*scale, c.therm[i].Temp())
	}
	c.throttles++
	return true
}

// reallocate invokes the mechanism on the freshly monitored utilities and
// installs the resulting allocation. It is also the degraded-mode state
// machine: allocation failures never abort the simulation. Instead the
// previously installed allocation stays pinned, and after MaxConsecFailures
// consecutive failures the pipeline stops probing the allocator for a
// CooldownIntervals window (Degraded), then re-probes (Recovering) — a
// failure mid-recovery falls straight back to Degraded, a success returns
// to Healthy. The returned error is reserved for construction bugs, not
// runtime faults.
func (c *Chip) reallocate(alloc core.Allocator) error {
	if c.health.State == metrics.Degraded {
		// Pinned: serve the last installed allocation without probing.
		c.cooldownLeft--
		c.health.PinnedIntervals++
		if c.cooldownLeft <= 0 {
			c.health.Transition(metrics.Recovering)
		}
		return nil
	}
	players, _, err := c.allocationPlayers()
	if err != nil {
		return err
	}
	c.health.AllocAttempts++
	out, err := alloc.Allocate(c.marketCapacity(), players)
	if err != nil {
		c.health.RecordFailure(classifyFailure(err))
		c.consecFails++
		if c.health.State == metrics.Recovering || c.consecFails >= c.resil.MaxConsecFailures {
			// One failure is evidence enough mid-recovery; from Healthy it
			// takes a streak. Either way the last good allocation stays on
			// the hardware for the cooldown window.
			c.health.Transition(metrics.Degraded)
			c.cooldownLeft = c.resil.CooldownIntervals
			c.consecFails = 0
		}
	} else {
		c.consecFails = 0
		c.health.Transition(metrics.Healthy)
		if !out.Converged {
			c.health.NonConverged++
		}
		c.lastOutcome = out
		c.iterSum += out.Iterations
		c.reallocs++
		// applyAllocation re-reads the live monitor curves for the Talus
		// split, so it must run before the epoch counters are drained.
		c.applyAllocation(out.Allocations)
	}
	// Drain epoch counters whether or not the probe succeeded; shadow tags
	// stay warm (§4.1.1 monitors run continuously).
	for _, u := range c.umons {
		u.Reset()
	}
	return nil
}

// classifyFailure maps an allocation error onto the telemetry cause
// taxonomy via the typed errors the hardened market layer returns.
func classifyFailure(err error) metrics.FailureCause {
	var ue *market.UtilityError
	if errors.As(err, &ue) {
		return metrics.CauseUtility
	}
	var nc *market.NotConvergedError
	if errors.As(err, &nc) {
		return metrics.CauseSolver
	}
	if errors.Is(err, core.ErrBadInput) {
		return metrics.CauseMonitor
	}
	return metrics.CauseAllocator
}

// Run simulates the bundle under the given mechanism and returns the
// result. Stand-alone reference throughputs are simulated on demand and
// cached process-wide (they are mechanism-independent).
func (c *Chip) Run(alloc core.Allocator) (*Result, error) {
	return c.RunWithSwitches(alloc, nil)
}

// --- stand-alone reference runs ---

type aloneKey struct {
	name        string
	fingerprint uint64 // full Spec hash: same-named custom specs must not collide
	l2Bytes     int
	l2Ways      int
}

// aloneEntry is one singleflight slot: the first caller to reach the entry
// runs the reference simulation inside once; every concurrent or later
// caller for the same key blocks on that once and shares the result.
type aloneEntry struct {
	once sync.Once
	perf float64
	err  error
}

var (
	aloneMu    sync.Mutex
	aloneCache = map[aloneKey]*aloneEntry{}
	// aloneComputes counts actual reference simulations (not cache hits);
	// the singleflight regression test asserts it stays at one per key no
	// matter how many chips ask concurrently.
	aloneComputes atomic.Int64
)

// alonePerfIPS simulates the application truly alone — the entire shared L2
// to itself at full frequency (§4.1.1: "running alone and thus owns all the
// resources") — and returns steady-state instructions per second. The run
// warms the cache until the measured miss ratio stabilises, then averages a
// few measurement epochs. Results are cached per (spec fingerprint, cache
// geometry), so custom specs that reuse a catalog name with different
// parameters get their own reference run instead of a silently wrong one.
// The cache is a singleflight: the mutex only guards the map, and the
// ~400-epoch warmup runs under a per-key sync.Once, so concurrent chips
// asking for the same reference wait for one compute instead of each
// duplicating it (the old code released the lock during compute and raced).
func alonePerfIPS(spec app.Spec, sys SystemConfig) (float64, error) {
	key := aloneKey{
		name:        spec.Name,
		fingerprint: spec.Fingerprint(),
		l2Bytes:     sys.L2CapacityBytes,
		l2Ways:      sys.L2Ways,
	}
	aloneMu.Lock()
	e := aloneCache[key]
	if e == nil {
		e = &aloneEntry{}
		aloneCache[key] = e
	}
	aloneMu.Unlock()
	e.once.Do(func() {
		aloneComputes.Add(1)
		e.perf, e.err = computeAlonePerfIPS(spec, sys)
	})
	return e.perf, e.err
}

// computeAlonePerfIPS is the uncached reference simulation.
func computeAlonePerfIPS(spec app.Spec, sys SystemConfig) (float64, error) {
	m := app.NewModel(spec)
	l2, err := cache.NewPartitioned(cache.Config{
		CapacityBytes: sys.L2CapacityBytes,
		Ways:          sys.L2Ways,
		Partitions:    1,
	})
	if err != nil {
		return 0, err
	}
	g, err := m.NewTrace(0xA10E, 0)
	if err != nil {
		return 0, err
	}
	const (
		epochAccesses = 8192
		maxEpochs     = 400
		stableTol     = 0.002
		stableNeed    = 3
		measureEpochs = 3
	)
	epochMiss := func() float64 {
		miss := 0
		for k := 0; k < epochAccesses; k++ {
			if !l2.Access(g.Next(), 0) {
				miss++
			}
		}
		return float64(miss) / float64(epochAccesses)
	}
	prev := epochMiss()
	stable := 0
	for e := 0; e < maxEpochs && stable < stableNeed; e++ {
		cur := epochMiss()
		if cur-prev < stableTol && prev-cur < stableTol {
			stable++
		} else {
			stable = 0
		}
		prev = cur
	}
	sum := 0.0
	for e := 0; e < measureEpochs; e++ {
		sum += epochMiss()
	}
	return m.PerfIPS(sum/measureEpochs, power.MaxFreqGHz), nil
}
