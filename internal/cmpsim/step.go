package cmpsim

import (
	"fmt"

	"rebudget/internal/core"
	"rebudget/internal/metrics"
)

// This file is the chip's incremental execution API. Run/RunWithSwitches
// drive a whole simulation in one call; a long-lived owner (the rebudgetd
// serving layer, notably) instead calls Begin once and then StepEpoch per
// allocation interval, snapshotting results whenever a client asks. The
// batch entry points are implemented on top of these primitives, so the
// two paths execute the identical operation sequence — the golden tests
// pin that equivalence.
//
// A Chip is not safe for concurrent use; the owner must serialise Begin,
// StepEpoch, SwitchApp and Snapshot (the serving layer does so with a
// per-session goroutine).

// Begin prepares the chip for incremental stepping under the given
// allocator: fault hooks and market configuration (round parallelism,
// equilibrium profiling) are installed, and the configured warmup epochs
// run under the initial EqualShare allocation without being measured. A
// chip begins at most once; construct a new chip per run.
func (c *Chip) Begin(alloc core.Allocator) error {
	if alloc == nil {
		return fmt.Errorf("cmpsim: nil allocator")
	}
	if c.ran {
		// A chip accumulates cache, thermal and accounting state; a second
		// run would silently mix measurements. Build a fresh chip instead.
		return fmt.Errorf("cmpsim: chip already ran; construct a new chip per run")
	}
	c.ran = true
	if hook := c.injector.SolverHook(); hook != nil {
		// Solver-stall faults enter through the market's round hook; the
		// allocator types themselves stay fault-agnostic.
		alloc = core.WithRoundHook(alloc, hook)
	}
	// Round parallelism and convergence-cost profiling enter the same way.
	c.alloc = core.WithMarketConfig(alloc, c.marketConfig)
	for e := 0; e < c.cfg.WarmupEpochs; e++ {
		c.runEpoch(false)
	}
	return nil
}

// StepEpoch advances one measured epoch: the allocator is re-invoked when
// the epoch index hits the ReallocEvery cadence (first epoch included),
// then the chip simulates one allocation interval. Allocation failures are
// absorbed by the degraded-mode state machine exactly as in Run; a
// returned error means a construction bug, not a runtime fault.
func (c *Chip) StepEpoch() error {
	if c.alloc == nil {
		return fmt.Errorf("cmpsim: StepEpoch before Begin")
	}
	if c.stepped%c.cfg.ReallocEvery == 0 {
		if err := c.reallocate(c.alloc); err != nil {
			return err
		}
	}
	c.runEpoch(true)
	c.stepped++
	return nil
}

// Stepped returns the number of measured epochs executed so far.
func (c *Chip) Stepped() int { return c.stepped }

// Elapsed returns the measured virtual time simulated so far, in seconds.
func (c *Chip) Elapsed() float64 { return c.elapsed }

// Health returns the allocation pipeline's current degraded-mode telemetry.
func (c *Chip) Health() metrics.Health { return c.health }

// Equilibrium returns the convergence-cost counters accumulated over every
// equilibrium the chip's allocator has run so far.
func (c *Chip) Equilibrium() metrics.EquilibriumStats {
	return c.eqProfile.Snapshot()
}

// LastOutcome returns the most recent allocator decision, or nil if the
// allocator has not succeeded yet. The outcome is shared, not copied;
// callers must treat it as read-only.
func (c *Chip) LastOutcome() *core.Outcome { return c.lastOutcome }

// Snapshot summarises the run so far as a Result: normalised performance
// is measured over each application's residency (arrival epoch to now),
// envy-freeness is evaluated on the latest clean monitor curves, and the
// telemetry counters are copied out. It requires at least one measured
// epoch, does not mutate simulation state, and may be called between
// steps as often as needed.
func (c *Chip) Snapshot() (*Result, error) {
	if c.stepped == 0 {
		return nil, fmt.Errorf("cmpsim: no measured epochs to snapshot")
	}
	res := &Result{
		Mechanism: c.alloc.Name(),
		NormPerf:  make([]float64, c.cfg.Cores),
	}
	maxTemp, totalPower := 0.0, 0.0
	for i := 0; i < c.cfg.Cores; i++ {
		alone, err := alonePerfIPS(c.bundle.Apps[i], c.sys)
		if err != nil {
			return nil, err
		}
		// An application switched in after the last step has no measured
		// residency yet; it reports zero rather than dividing by it.
		if span := float64(c.stepped-c.arrival[i]) * c.cfg.EpochSeconds; span > 0 {
			res.NormPerf[i] = c.instructions[i] / span / alone
		}
		res.WeightedSpeedup += res.NormPerf[i]
		t := c.therm[i].Temp()
		if t > maxTemp {
			maxTemp = t
		}
		totalPower += c.models[i].Power.Total(c.freq[i], c.models[i].Spec.Activity, t)
	}
	res.MaxTempC = maxTemp
	res.AvgPowerW = totalPower / float64(c.cfg.Cores)
	res.ThrottleEpochs = c.throttles
	res.Health = c.health
	res.Faults = c.injector.Stats()
	res.Equilibrium = c.eqProfile.Snapshot()
	res.FinalOutcome = c.lastOutcome
	if c.reallocs > 0 {
		res.MeanIterations = float64(c.iterSum) / float64(c.reallocs)
	}
	if c.lastOutcome != nil {
		_, utils, err := c.buildPlayers()
		if err != nil {
			return nil, err
		}
		ef, err := envyFreenessOf(utils, c.lastOutcome.Allocations)
		if err != nil {
			return nil, err
		}
		res.EnvyFreeness = ef
	} else {
		res.EnvyFreeness = 1
	}
	return res, nil
}
