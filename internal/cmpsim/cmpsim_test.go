package cmpsim

import (
	"math"
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/numeric"
	"rebudget/internal/power"
	"rebudget/internal/workload"
)

func smallBundle(t *testing.T, cores int) workload.Bundle {
	t.Helper()
	b, err := workload.Generate(workload.CPBN, cores, numeric.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewChipValidation(t *testing.T) {
	b := smallBundle(t, 4)
	bad := DefaultConfig(4)
	bad.Epochs = 0
	if _, err := NewChip(bad, b); err == nil {
		t.Error("zero epochs accepted")
	}
	cfg := DefaultConfig(8)
	if _, err := NewChip(cfg, b); err == nil {
		t.Error("bundle/core mismatch accepted")
	}
	cfg = DefaultConfig(4)
	cfg.MaxAccessesPerCoreEpoch = 10
	if _, err := NewChip(cfg, b); err == nil {
		t.Error("tiny access budget accepted")
	}
	cfg = DefaultConfig(4)
	cfg.ReallocEvery = 0
	if _, err := NewChip(cfg, b); err == nil {
		t.Error("zero realloc interval accepted")
	}
	if _, err := NewChip(DefaultConfig(4), b); err != nil {
		t.Errorf("valid chip rejected: %v", err)
	}
}

func TestSystemConfigTable1(t *testing.T) {
	c8 := NewSystemConfig(8)
	if c8.PowerBudgetW != 80 || c8.L2CapacityBytes != 4<<20 || c8.L2Ways != 16 || c8.MemoryChannels != 2 {
		t.Errorf("8-core config does not match Table 1: %+v", c8)
	}
	c64 := NewSystemConfig(64)
	if c64.PowerBudgetW != 640 || c64.L2CapacityBytes != 32<<20 || c64.L2Ways != 32 || c64.MemoryChannels != 16 {
		t.Errorf("64-core config does not match Table 1: %+v", c64)
	}
	if c8.FreqMinGHz != 0.8 || c8.FreqMaxGHz != 4.0 || c8.VoltMin != 0.8 || c8.VoltMax != 1.2 {
		t.Errorf("DVFS range wrong: %+v", c8)
	}
	if c8.RegionBytes != 128<<10 || c8.UMONSampleRate != 32 || c8.UMONMaxStackRegion != 16 {
		t.Errorf("monitoring config wrong: %+v", c8)
	}
}

func TestRunEqualShare(t *testing.T) {
	chip, err := NewChip(DefaultConfig(4), smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.Run(core.EqualShare{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism != "EqualShare" {
		t.Errorf("mechanism = %s", res.Mechanism)
	}
	if len(res.NormPerf) != 4 {
		t.Fatalf("NormPerf size %d", len(res.NormPerf))
	}
	sum := 0.0
	for i, p := range res.NormPerf {
		if p <= 0 || p > 1.3 {
			t.Errorf("core %d normalised perf %g outside (0, 1.3]", i, p)
		}
		sum += p
	}
	if math.Abs(sum-res.WeightedSpeedup) > 1e-9 {
		t.Error("WeightedSpeedup != Σ NormPerf")
	}
	if res.WeightedSpeedup > 4 {
		t.Errorf("weighted speedup %g exceeds core count", res.WeightedSpeedup)
	}
	if res.MaxTempC <= 45 || res.MaxTempC >= 120 {
		t.Errorf("max temperature %g implausible", res.MaxTempC)
	}
	if res.AvgPowerW <= 0 || res.AvgPowerW > 10.5 {
		t.Errorf("average core power %g implausible", res.AvgPowerW)
	}
}

func TestRunMarketMechanism(t *testing.T) {
	chip, err := NewChip(DefaultConfig(4), smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.Run(core.EqualBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalOutcome == nil {
		t.Fatal("market run should record an outcome")
	}
	if res.MeanIterations < 1 {
		t.Errorf("mean iterations %g, want >= 1", res.MeanIterations)
	}
	if res.EnvyFreeness < 0 || res.EnvyFreeness > 1 {
		t.Errorf("EF = %g outside [0,1]", res.EnvyFreeness)
	}
	if res.FinalOutcome.MBR != 1 {
		t.Errorf("EqualBudget MBR = %g", res.FinalOutcome.MBR)
	}
	// The market should put cache where it pays: the C-class app ends with
	// at least as many regions as the P-class app.
	var cRegions, pRegions float64
	for i, a := range chip.bundle.Apps {
		switch a.Class.String() {
		case "C":
			cRegions = chip.regions[i]
		case "P":
			pRegions = chip.regions[i]
		}
	}
	if cRegions < pRegions {
		t.Errorf("C app got %g regions, P app %g — market misdirected cache", cRegions, pRegions)
	}
}

func TestRunReBudgetImprovesOnEqualBudget(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Seed = 3
	b, err := workload.Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	run := func(a core.Allocator) *Result {
		chip, err := NewChip(cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chip.Run(a)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	eq := run(core.EqualBudget{})
	rb := run(core.ReBudget{Step: 40})
	// §6.3: ReBudget trades fairness for efficiency relative to EqualBudget.
	if rb.WeightedSpeedup < eq.WeightedSpeedup-0.15 {
		t.Errorf("ReBudget-40 speedup %g well below EqualBudget %g",
			rb.WeightedSpeedup, eq.WeightedSpeedup)
	}
	if rb.FinalOutcome.MBR >= 1 {
		t.Error("ReBudget never cut a budget")
	}
}

func TestRunNilAllocator(t *testing.T) {
	chip, _ := NewChip(DefaultConfig(4), smallBundle(t, 4))
	if _, err := chip.Run(nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

func TestAlonePerfCachedAndPositive(t *testing.T) {
	sys := NewSystemConfig(4)
	mcfSpec, _ := app.Lookup("mcf")
	sixSpec, _ := app.Lookup("sixtrack")
	a, err := alonePerfIPS(mcfSpec, sys)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatalf("alone perf %g", a)
	}
	b, _ := alonePerfIPS(mcfSpec, sys)
	if a != b {
		t.Error("alone perf should be cached/deterministic")
	}
	// A P-class app at 4 GHz should retire far more IPS than mcf.
	p, _ := alonePerfIPS(sixSpec, sys)
	if p < 2*a {
		t.Errorf("sixtrack alone %g not clearly above mcf %g", p, a)
	}
	// The alone run owns the full L2, so its miss ratio is near the
	// model's best case: perf must be within the analytic envelope.
	spec, _ := app.Lookup("mcf")
	m := app.NewModel(spec)
	best := m.PerfIPS(0, power.MaxFreqGHz)
	if a > best {
		t.Errorf("alone perf %g exceeds zero-miss bound %g", a, best)
	}
}

func TestShadowRouting(t *testing.T) {
	chip, _ := NewChip(DefaultConfig(4), smallBundle(t, 4))
	// Force a 50/50 split on core 2 and check the hash routes both ways.
	chip.rhoThresh[2] = rhoHashBuckets / 2
	lo, hi := 0, 0
	for a := uint64(0); a < 4096; a++ {
		if chip.shadowFor(2, a*64) == 4 {
			lo++
		} else {
			hi++
		}
	}
	frac := float64(lo) / 4096
	if math.Abs(frac-0.5) > 0.06 {
		t.Errorf("hash split %g, want ≈0.5", frac)
	}
	// Degenerate split routes everything to one shadow.
	chip.rhoThresh[2] = rhoHashBuckets
	for a := uint64(0); a < 256; a++ {
		if chip.shadowFor(2, a*64) != 4 {
			t.Fatal("rho=1 must route everything to the Lo shadow")
		}
	}
}

func TestWayPartitionMode(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.WayPartition = true
	cfg.Epochs = 6
	chip, err := NewChip(cfg, smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.Run(core.EqualBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedSpeedup <= 0 || res.WeightedSpeedup > 5 {
		t.Errorf("way-mode speedup %g implausible", res.WeightedSpeedup)
	}
	// All routing collapses to one partition per core.
	for core := 0; core < 4; core++ {
		for a := uint64(0); a < 64; a++ {
			if chip.shadowFor(core, a*64) != core {
				t.Fatal("way mode must route to the core's single partition")
			}
		}
	}
}

func TestChipIsSingleUse(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epochs = 2
	cfg.WarmupEpochs = 1
	chip, err := NewChip(cfg, smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Run(core.EqualShare{}); err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Run(core.EqualShare{}); err == nil {
		t.Error("second run on the same chip accepted")
	}
}

func TestPowerGovernorThrottles(t *testing.T) {
	chip, err := NewChip(DefaultConfig(4), smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Give every core its full budget share and artificially overheat the
	// dies: leakage then pushes the measured draw above the 40 W TDP and
	// the governor must pull frequencies back.
	for i := range chip.wattsBudg {
		chip.wattsBudg[i] = 10
		chip.freq[i] = power.MaxFreqGHz
		for chip.therm[i].Temp() < 110 {
			chip.therm[i].Update(50, 0.05)
		}
	}
	if !chip.enforcePowerBudget() {
		t.Fatal("governor did not throttle an overheated chip")
	}
	total := 0.0
	for i := range chip.models {
		total += chip.models[i].Power.Total(chip.freq[i], chip.models[i].Spec.Activity, chip.therm[i].Temp())
	}
	if total > chip.sys.PowerBudgetW*1.02 {
		t.Errorf("post-throttle draw %.1f W still above %.0f W budget", total, chip.sys.PowerBudgetW)
	}
	// A cool, within-budget chip must not be throttled.
	cool, _ := NewChip(DefaultConfig(4), smallBundle(t, 4))
	if cool.enforcePowerBudget() {
		t.Error("governor throttled a within-budget chip")
	}
}

func TestBandwidthMarketMode(t *testing.T) {
	// A bundle with streamers (N) and compute apps (P): under the
	// three-resource market the streamers must end up holding more
	// bandwidth than the compute-bound apps.
	var b workload.Bundle
	b.Category = "bw-test"
	for _, n := range []string{"lucas", "wupwise", "sixtrack", "hmmer"} {
		spec, err := app.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		b.Apps = append(b.Apps, spec)
	}
	cfg := DefaultConfig(4)
	cfg.BandwidthMarket = true
	cfg.Epochs = 8
	chip, err := NewChip(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.Run(core.EqualBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedSpeedup <= 0 || res.WeightedSpeedup > 4.2 {
		t.Errorf("speedup %g implausible", res.WeightedSpeedup)
	}
	if got := len(chip.marketCapacity()); got != 3 {
		t.Fatalf("market capacity dims = %d, want 3", got)
	}
	streamBW := (chip.bwAlloc[0] + chip.bwAlloc[1]) / 2
	computeBW := (chip.bwAlloc[2] + chip.bwAlloc[3]) / 2
	if streamBW <= computeBW {
		t.Errorf("streamers hold %g GB/s vs compute %g — bandwidth misdirected",
			streamBW, computeBW)
	}
	// The final outcome has three-resource allocations.
	if len(res.FinalOutcome.Allocations[0]) != 3 {
		t.Errorf("allocation dims = %d", len(res.FinalOutcome.Allocations[0]))
	}
}

func TestChipStateAccessors(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Epochs = 2
	cfg.WarmupEpochs = 1
	chip, err := NewChip(cfg, smallBundle(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Run(core.EqualBudget{}); err != nil {
		t.Fatal(err)
	}
	regions := chip.Regions()
	freqs := chip.Frequencies()
	watts := chip.PowerBudgets()
	temps := chip.Temperatures()
	if len(regions) != 4 || len(freqs) != 4 || len(watts) != 4 || len(temps) != 4 {
		t.Fatal("accessor lengths wrong")
	}
	for i := 0; i < 4; i++ {
		if regions[i] < 1 {
			t.Errorf("core %d below the one-region floor: %g", i, regions[i])
		}
		if freqs[i] < power.MinFreqGHz || freqs[i] > power.MaxFreqGHz {
			t.Errorf("core %d frequency %g outside the ladder", i, freqs[i])
		}
		if watts[i] <= 0 {
			t.Errorf("core %d power budget %g", i, watts[i])
		}
		if temps[i] < 45 || temps[i] > 120 {
			t.Errorf("core %d temperature %g implausible", i, temps[i])
		}
	}
	// Accessors return copies, not views.
	regions[0] = -1
	if chip.Regions()[0] == -1 {
		t.Error("Regions returned a live view")
	}
}
