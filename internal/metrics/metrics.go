// Package metrics implements the paper's efficiency and fairness apparatus:
// Market Utility Range (Definition 5) with its Price-of-Anarchy bound
// (Theorem 1), Market Budget Range (Definition 6) with its approximate
// envy-freeness bound (Theorem 2), social-welfare efficiency (Definition 1)
// and envy-freeness (Definition 3).
package metrics

import (
	"fmt"
	"math"
)

// MUR returns the Market Utility Range min λᵢ / max λᵢ (Definition 5).
// It errors on empty input or negative marginal utilities; a market whose
// maximum λ is zero (nobody can gain from money) has MUR 1 by convention.
func MUR(lambdas []float64) (float64, error) {
	if len(lambdas) == 0 {
		return 0, fmt.Errorf("metrics: MUR of empty lambda set")
	}
	min, max := math.Inf(1), 0.0
	for i, l := range lambdas {
		if l < 0 || math.IsNaN(l) {
			return 0, fmt.Errorf("metrics: invalid lambda %g at player %d", l, i)
		}
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return 1, nil
	}
	return min / max, nil
}

// MBR returns the Market Budget Range min Bᵢ / max Bᵢ (Definition 6).
func MBR(budgets []float64) (float64, error) {
	if len(budgets) == 0 {
		return 0, fmt.Errorf("metrics: MBR of empty budget set")
	}
	min, max := math.Inf(1), 0.0
	for i, b := range budgets {
		if b < 0 || math.IsNaN(b) {
			return 0, fmt.Errorf("metrics: invalid budget %g at player %d", b, i)
		}
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return 1, nil
	}
	return min / max, nil
}

// PoALowerBound evaluates Theorem 1: the equilibrium efficiency is at least
// this fraction of the optimal allocation's efficiency. For MUR ≥ ½ the
// bound is 1 − 1/(4·MUR) ≥ ½; below ½ it degrades linearly to MUR itself.
func PoALowerBound(mur float64) float64 {
	mur = clamp01(mur)
	if mur >= 0.5 {
		return 1 - 1/(4*mur)
	}
	return mur
}

// EnvyFreenessBound evaluates Theorem 2: any equilibrium under budget range
// MBR is (2·√(1+MBR) − 2)-approximate envy-free. At MBR = 1 (equal budgets)
// this recovers Zhang's 0.828 bound (Lemma 3).
func EnvyFreenessBound(mbr float64) float64 {
	return 2*math.Sqrt(1+clamp01(mbr)) - 2
}

// MinMBRForEnvyFreeness inverts Theorem 2: the smallest budget range that
// still guarantees the given envy-freeness level c. This is how ReBudget
// translates an administrator's fairness floor into a budget constraint
// (§4.2). c must lie in [0, 2√2−2].
func MinMBRForEnvyFreeness(c float64) (float64, error) {
	maxC := 2*math.Sqrt2 - 2
	if c < 0 || c > maxC {
		return 0, fmt.Errorf("metrics: envy-freeness target %g outside [0, %.4f]", c, maxC)
	}
	h := (c + 2) / 2
	return h*h - 1, nil
}

// Efficiency is the social welfare Σᵢ uᵢ (Definition 1). With utilities
// normalised to stand-alone IPC this is exactly weighted speedup (§5).
func Efficiency(utilities []float64) float64 {
	s := 0.0
	for _, u := range utilities {
		s += u
	}
	return s
}

// ValueFunc evaluates player i's utility on an arbitrary allocation vector.
type ValueFunc func(player int, alloc []float64) float64

// EnvyFreeness computes Definition 3 over a full allocation matrix:
// min over players i of Uᵢ(rᵢ) / maxⱼ Uᵢ(rⱼ). A player that values some
// other player's bundle at zero alongside its own (0/0) envies nobody for
// that bundle, so such pairs are skipped.
func EnvyFreeness(n int, value ValueFunc, allocs [][]float64) (float64, error) {
	if n <= 0 || len(allocs) != n {
		return 0, fmt.Errorf("metrics: %d players but %d allocations", n, len(allocs))
	}
	ef := math.Inf(1)
	for i := 0; i < n; i++ {
		own := value(i, allocs[i])
		for j := 0; j < n; j++ {
			other := value(i, allocs[j])
			switch {
			case other == 0:
				continue // nothing to envy
			case own == 0:
				return 0, nil // infinite envy
			default:
				if r := own / other; r < ef {
					ef = r
				}
			}
		}
	}
	if math.IsInf(ef, 1) {
		// Degenerate: all utilities zero everywhere. Nobody envies anyone.
		return 1, nil
	}
	return ef, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
