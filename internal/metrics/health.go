package metrics

import "fmt"

// HealthState is the allocation pipeline's degraded-mode state machine
// position (healthy → degraded → recovering → healthy).
type HealthState int

// Pipeline health states.
const (
	// Healthy: allocations are being computed and installed normally.
	Healthy HealthState = iota
	// Degraded: repeated allocation failures pinned the last good
	// allocation; the allocator is not being probed.
	Degraded
	// Recovering: the cooldown expired and the pipeline is re-probing the
	// allocator; one more failure falls straight back to Degraded.
	Recovering
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// FailureCause classifies why an allocation attempt failed, so telemetry
// can separate broken monitors from a broken solver.
type FailureCause int

// Allocation failure causes.
const (
	// CauseMonitor: corrupted monitor readings were detected (and
	// repaired) before allocation.
	CauseMonitor FailureCause = iota
	// CauseUtility: a player utility produced a non-finite value
	// mid-equilibrium.
	CauseUtility
	// CauseSolver: the equilibrium search was stalled or ran out of its
	// iteration/step budget.
	CauseSolver
	// CauseAllocator: any other allocator error.
	CauseAllocator
	causeCount
)

// String implements fmt.Stringer.
func (c FailureCause) String() string {
	switch c {
	case CauseMonitor:
		return "monitor"
	case CauseUtility:
		return "utility"
	case CauseSolver:
		return "solver"
	case CauseAllocator:
		return "allocator"
	default:
		return fmt.Sprintf("FailureCause(%d)", int(c))
	}
}

// Health is the pipeline's self-diagnosis telemetry: where the degraded-mode
// state machine is, how it got there, and how much work ran in each mode.
type Health struct {
	// State is the current position of the state machine.
	State HealthState
	// AllocAttempts counts reallocation intervals where the allocator was
	// actually probed (Healthy and Recovering states).
	AllocAttempts int
	// AllocFailures counts probes that returned an error.
	AllocFailures int
	// CurveRepairs counts monitor curves that needed sanitization before
	// they could be used.
	CurveRepairs int
	// NonConverged counts equilibria accepted via the §6.4 fail-safe
	// (best-effort state installed after the iteration budget ran out).
	NonConverged int
	// PinnedIntervals counts reallocation intervals served by the pinned
	// last-good allocation while Degraded.
	PinnedIntervals int
	// Transitions counts state-machine transitions (any edge).
	Transitions int
	// Causes counts failures by classified cause, indexed by FailureCause.
	Causes [causeCount]int
}

// RecordFailure counts a failed allocation attempt with its cause.
func (h *Health) RecordFailure(c FailureCause) {
	h.AllocFailures++
	if c >= 0 && c < causeCount {
		h.Causes[c]++
	}
}

// Transition moves the state machine, counting the edge. Self-transitions
// are ignored so callers can set the target state unconditionally.
func (h *Health) Transition(to HealthState) {
	if h.State == to {
		return
	}
	h.State = to
	h.Transitions++
}

// FailureRate is the fraction of allocator probes that failed.
func (h *Health) FailureRate() float64 {
	if h.AllocAttempts == 0 {
		return 0
	}
	return float64(h.AllocFailures) / float64(h.AllocAttempts)
}
