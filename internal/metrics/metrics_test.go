package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMUR(t *testing.T) {
	if _, err := MUR(nil); err == nil {
		t.Error("empty lambdas accepted")
	}
	if _, err := MUR([]float64{1, -1}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := MUR([]float64{math.NaN()}); err == nil {
		t.Error("NaN lambda accepted")
	}
	got, err := MUR([]float64{1, 2, 4})
	if err != nil || math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MUR = %g (%v), want 0.25", got, err)
	}
	got, _ = MUR([]float64{3, 3, 3})
	if got != 1 {
		t.Errorf("identical lambdas should give MUR 1, got %g", got)
	}
	got, _ = MUR([]float64{0, 0})
	if got != 1 {
		t.Errorf("all-zero lambdas convention: MUR = %g, want 1", got)
	}
	got, _ = MUR([]float64{0, 5})
	if got != 0 {
		t.Errorf("zero min lambda: MUR = %g, want 0", got)
	}
}

func TestMBR(t *testing.T) {
	if _, err := MBR(nil); err == nil {
		t.Error("empty budgets accepted")
	}
	got, err := MBR([]float64{61.25, 100})
	if err != nil || math.Abs(got-0.6125) > 1e-12 {
		t.Errorf("MBR = %g (%v), want 0.6125", got, err)
	}
	got, _ = MBR([]float64{100, 100, 100})
	if got != 1 {
		t.Errorf("equal budgets MBR = %g, want 1", got)
	}
}

func TestPoALowerBoundTheorem1(t *testing.T) {
	// Figure 1 left: the bound rises linearly to 0.5 at MUR = 0.5, then
	// as 1 − 1/(4·MUR) up to 0.75 at MUR = 1.
	cases := []struct{ mur, want float64 }{
		{0, 0},
		{0.25, 0.25},
		{0.5, 0.5},
		{0.75, 1 - 1.0/3},
		{1, 0.75},
		{-1, 0},   // clamped
		{2, 0.75}, // clamped
	}
	for _, c := range cases {
		if got := PoALowerBound(c.mur); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PoALowerBound(%g) = %g, want %g", c.mur, got, c.want)
		}
	}
}

func TestPoALowerBoundContinuousAtHalf(t *testing.T) {
	lo := PoALowerBound(0.5 - 1e-9)
	hi := PoALowerBound(0.5 + 1e-9)
	if math.Abs(lo-hi) > 1e-6 {
		t.Errorf("Theorem 1 bound discontinuous at 0.5: %g vs %g", lo, hi)
	}
}

func TestEnvyFreenessBoundTheorem2(t *testing.T) {
	// Equal budgets (MBR=1) recover Zhang's 0.828 (Lemma 3).
	if got := EnvyFreenessBound(1); math.Abs(got-(2*math.Sqrt2-2)) > 1e-12 {
		t.Errorf("EnvyFreenessBound(1) = %g, want 0.8284", got)
	}
	if got := EnvyFreenessBound(0); got != 0 {
		t.Errorf("EnvyFreenessBound(0) = %g, want 0", got)
	}
	// The paper's §6.2 examples: ReBudget-20 min budget 61.25 → 0.53;
	// ReBudget-40 min budget ≈20 → 0.19.
	if got := EnvyFreenessBound(0.6125); math.Abs(got-0.53) > 0.02 {
		t.Errorf("EnvyFreenessBound(0.6125) = %g, want ≈0.53", got)
	}
	if got := EnvyFreenessBound(0.20); math.Abs(got-0.19) > 0.01 {
		t.Errorf("EnvyFreenessBound(0.20) = %g, want ≈0.19", got)
	}
}

func TestMinMBRForEnvyFreenessInverse(t *testing.T) {
	for _, c := range []float64{0, 0.1, 0.3, 0.53, 0.8, 2*math.Sqrt2 - 2} {
		mbr, err := MinMBRForEnvyFreeness(c)
		if err != nil {
			t.Fatalf("MinMBRForEnvyFreeness(%g): %v", c, err)
		}
		if got := EnvyFreenessBound(mbr); math.Abs(got-c) > 1e-9 {
			t.Errorf("roundtrip failed: c=%g → mbr=%g → %g", c, mbr, got)
		}
	}
	if _, err := MinMBRForEnvyFreeness(-0.1); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := MinMBRForEnvyFreeness(0.9); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestEfficiency(t *testing.T) {
	if Efficiency(nil) != 0 {
		t.Error("empty efficiency should be 0")
	}
	if got := Efficiency([]float64{0.2, 0.3}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Efficiency = %g", got)
	}
}

// linear utility over two resources for envy tests.
func linearValue(weights [][]float64) ValueFunc {
	return func(i int, alloc []float64) float64 {
		s := 0.0
		for j, w := range weights[i] {
			s += w * alloc[j]
		}
		return s
	}
}

func TestEnvyFreenessPerfect(t *testing.T) {
	// Two players each holding exactly what they want: EF = 1.
	v := linearValue([][]float64{{1, 0}, {0, 1}})
	allocs := [][]float64{{10, 0}, {0, 10}}
	got, err := EnvyFreeness(2, v, allocs)
	if err != nil || got != 1 {
		t.Errorf("EF = %g (%v), want 1", got, err)
	}
}

func TestEnvyFreenessEnvious(t *testing.T) {
	// Both value resource 0 only; player 1 holds 3× more of it.
	v := linearValue([][]float64{{1, 0}, {1, 0}})
	allocs := [][]float64{{5, 0}, {15, 0}}
	got, err := EnvyFreeness(2, v, allocs)
	if err != nil || math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("EF = %g (%v), want 1/3", got, err)
	}
}

func TestEnvyFreenessZeroOwnUtility(t *testing.T) {
	// Player 0 has nothing but values player 1's bundle: infinite envy → 0.
	v := linearValue([][]float64{{1, 0}, {1, 0}})
	allocs := [][]float64{{0, 0}, {15, 0}}
	got, err := EnvyFreeness(2, v, allocs)
	if err != nil || got != 0 {
		t.Errorf("EF = %g (%v), want 0", got, err)
	}
}

func TestEnvyFreenessAllZero(t *testing.T) {
	v := linearValue([][]float64{{0, 0}, {0, 0}})
	allocs := [][]float64{{1, 2}, {3, 4}}
	got, err := EnvyFreeness(2, v, allocs)
	if err != nil || got != 1 {
		t.Errorf("degenerate EF = %g (%v), want 1", got, err)
	}
}

func TestEnvyFreenessValidation(t *testing.T) {
	v := linearValue([][]float64{{1, 0}})
	if _, err := EnvyFreeness(2, v, [][]float64{{1, 0}}); err == nil {
		t.Error("mismatched allocation count accepted")
	}
	if _, err := EnvyFreeness(0, v, nil); err == nil {
		t.Error("zero players accepted")
	}
}

// Property: EF is always in [0, 1] for non-negative utilities, and equals 1
// when all players share one allocation.
func TestEnvyFreenessProperties(t *testing.T) {
	f := func(ws [4]float64, as [4]float64) bool {
		weights := [][]float64{
			{math.Abs(math.Mod(ws[0], 3)), math.Abs(math.Mod(ws[1], 3))},
			{math.Abs(math.Mod(ws[2], 3)), math.Abs(math.Mod(ws[3], 3))},
		}
		v := linearValue(weights)
		allocs := [][]float64{
			{math.Abs(math.Mod(as[0], 10)), math.Abs(math.Mod(as[1], 10))},
			{math.Abs(math.Mod(as[2], 10)), math.Abs(math.Mod(as[3], 10))},
		}
		ef, err := EnvyFreeness(2, v, allocs)
		if err != nil {
			return false
		}
		if ef < 0 || ef > 1 {
			return false
		}
		same := [][]float64{allocs[0], allocs[0]}
		ef2, err := EnvyFreeness(2, v, same)
		return err == nil && ef2 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 1 bound is monotone non-decreasing in MUR; Theorem 2
// bound monotone in MBR.
func TestBoundsMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return PoALowerBound(a) <= PoALowerBound(b)+1e-12 &&
			EnvyFreenessBound(a) <= EnvyFreenessBound(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
