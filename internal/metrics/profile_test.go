package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEquilibriumProfile(t *testing.T) {
	var p EquilibriumProfile
	if s := p.Snapshot(); s.Runs != 0 || s.Rounds != 0 || s.BidSteps != 0 || s.Wall != 0 {
		t.Fatalf("zero profile snapshot not empty: %+v", s)
	}
	p.Observe(4, 32, 2*time.Millisecond)
	p.Observe(6, 48, 3*time.Millisecond)
	s := p.Snapshot()
	if s.Runs != 2 || s.Rounds != 10 || s.BidSteps != 80 || s.Wall != 5*time.Millisecond {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if got := s.RoundsPerRun(); got != 5 {
		t.Errorf("RoundsPerRun = %v, want 5", got)
	}
	if got := s.WallPerRun(); got != 2500*time.Microsecond {
		t.Errorf("WallPerRun = %v, want 2.5ms", got)
	}
	str := s.String()
	for _, want := range []string{"runs 2", "rounds 10", "5.00/run", "bid steps 80"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	p.Reset()
	if s := p.Snapshot(); s.Runs != 0 || s.Rounds != 0 {
		t.Errorf("Reset left state: %+v", s)
	}
}

// TestEquilibriumProfileConcurrent exercises the atomic counters under the
// race detector: Observe is the market Observer callback, and concurrent
// sweeps share one profile.
func TestEquilibriumProfileConcurrent(t *testing.T) {
	var p EquilibriumProfile
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Observe(1, 8, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Runs != 800 || s.Rounds != 800 || s.BidSteps != 6400 || s.Wall != 800*time.Microsecond {
		t.Fatalf("bad concurrent snapshot: %+v", s)
	}
}

func TestEquilibriumStatsEmptyString(t *testing.T) {
	var s EquilibriumStats
	if str := s.String(); !strings.Contains(str, "runs 0") {
		t.Errorf("empty stats String() = %q", str)
	}
}
