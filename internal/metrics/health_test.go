package metrics

import "testing"

func TestHealthStrings(t *testing.T) {
	states := map[HealthState]string{
		Healthy: "healthy", Degraded: "degraded", Recovering: "recovering",
		HealthState(99): "HealthState(99)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("HealthState(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	causes := map[FailureCause]string{
		CauseMonitor: "monitor", CauseUtility: "utility",
		CauseSolver: "solver", CauseAllocator: "allocator",
		causeCount: "FailureCause(4)",
	}
	for c, want := range causes {
		if c.String() != want {
			t.Errorf("FailureCause(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestHealthRecordFailure(t *testing.T) {
	var h Health
	h.AllocAttempts = 4
	h.RecordFailure(CauseSolver)
	h.RecordFailure(CauseSolver)
	h.RecordFailure(CauseMonitor)
	h.RecordFailure(FailureCause(-1)) // counted, but no cause bucket
	if h.AllocFailures != 4 {
		t.Errorf("AllocFailures = %d, want 4", h.AllocFailures)
	}
	if h.Causes[CauseSolver] != 2 || h.Causes[CauseMonitor] != 1 || h.Causes[CauseUtility] != 0 {
		t.Errorf("Causes = %v", h.Causes)
	}
	if got := h.FailureRate(); got != 1.0 {
		t.Errorf("FailureRate = %g, want 1", got)
	}
	if got := (&Health{}).FailureRate(); got != 0 {
		t.Errorf("zero-attempt FailureRate = %g, want 0", got)
	}
}

func TestHealthTransitionIgnoresSelfEdges(t *testing.T) {
	var h Health
	h.Transition(Healthy) // self edge from the zero state
	if h.Transitions != 0 {
		t.Fatalf("self transition counted: %d", h.Transitions)
	}
	h.Transition(Degraded)
	h.Transition(Degraded)
	h.Transition(Recovering)
	h.Transition(Healthy)
	if h.State != Healthy {
		t.Errorf("State = %v", h.State)
	}
	if h.Transitions != 3 {
		t.Errorf("Transitions = %d, want 3", h.Transitions)
	}
}
