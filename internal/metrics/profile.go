package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// EquilibriumProfile accumulates per-phase cost counters across equilibrium
// searches: how many searches ran, how many bidding–pricing rounds and
// player bid re-optimisations they took, and the wall time they consumed.
// The paper's §6.4 deployability argument hinges on exactly these numbers —
// convergence cost per epoch, not just end-state quality.
//
// All counters are atomic, so one profile may be shared across concurrent
// markets (the sweep runs bundles in parallel). Wire it to a market via
// Config.Observer:
//
//	var prof metrics.EquilibriumProfile
//	cfg.Observer = prof.Observe
type EquilibriumProfile struct {
	runs     atomic.Int64
	rounds   atomic.Int64
	bidSteps atomic.Int64
	wallNs   atomic.Int64
}

// Observe records one completed equilibrium search. Its signature matches
// market.Config.Observer.
func (p *EquilibriumProfile) Observe(rounds, bidSteps int, wall time.Duration) {
	p.runs.Add(1)
	p.rounds.Add(int64(rounds))
	p.bidSteps.Add(int64(bidSteps))
	p.wallNs.Add(int64(wall))
}

// Reset zeroes the counters.
func (p *EquilibriumProfile) Reset() {
	p.runs.Store(0)
	p.rounds.Store(0)
	p.bidSteps.Store(0)
	p.wallNs.Store(0)
}

// Snapshot returns a consistent-enough copy for reporting (individual
// counters are read atomically; a concurrent Observe may land between
// reads, which is fine for telemetry).
func (p *EquilibriumProfile) Snapshot() EquilibriumStats {
	return EquilibriumStats{
		Runs:     p.runs.Load(),
		Rounds:   p.rounds.Load(),
		BidSteps: p.bidSteps.Load(),
		Wall:     time.Duration(p.wallNs.Load()),
	}
}

// EquilibriumStats is a point-in-time view of an EquilibriumProfile.
type EquilibriumStats struct {
	Runs     int64         // equilibrium searches completed
	Rounds   int64         // bidding–pricing rounds summed over searches
	BidSteps int64         // player bid re-optimisations summed over searches
	Wall     time.Duration // wall time summed over searches
}

// RoundsPerRun is the mean convergence length, or 0 with no runs.
func (s EquilibriumStats) RoundsPerRun() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Rounds) / float64(s.Runs)
}

// WallPerRun is the mean search latency, or 0 with no runs.
func (s EquilibriumStats) WallPerRun() time.Duration {
	if s.Runs == 0 {
		return 0
	}
	return s.Wall / time.Duration(s.Runs)
}

// String renders the stats in a single human-readable line.
func (s EquilibriumStats) String() string {
	return fmt.Sprintf("equilibrium runs %d, rounds %d (%.2f/run), bid steps %d, wall %v (%v/run)",
		s.Runs, s.Rounds, s.RoundsPerRun(), s.BidSteps, s.Wall.Round(time.Microsecond),
		s.WallPerRun().Round(time.Microsecond))
}
