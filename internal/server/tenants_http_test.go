package server_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// tenancy builds a quiet TenancyConfig for tests: the ticker is pushed out
// of the way so only the constructor's (and register's) deterministic
// rebalances run.
func tenancy(t *testing.T, tenants string) *server.TenancyConfig {
	t.Helper()
	specs, err := server.ParseTenants(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return &server.TenancyConfig{Tenants: specs, Epoch: time.Hour}
}

// rawCreate posts a session spec over plain HTTP so the test can set
// headers the typed client doesn't expose.
func rawCreate(t *testing.T, url, body, tenantHeader string) (*http.Response, server.SessionView) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sessions", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantHeader != "" {
		req.Header.Set(server.TenantHeader, tenantHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v server.SessionView
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

// TestTenantLabelFlow covers the label plumbing end to end: spec field,
// header fallback, configured default, the client surfacing the label on
// create/list, and the per-tenant metric series (including that the
// deprecated unsuffixed dispatch gauges stay gone).
func TestTenantLabelFlow(t *testing.T) {
	cfg := server.Config{Tenancy: tenancy(t, "gold:3,bronze:1")}
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := client.New(ts.URL)
	ctx := context.Background()

	v, err := c.CreateSession(ctx, server.SessionSpec{
		ID: "g1", Tenant: "gold",
		Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "gold" {
		t.Fatalf("create view tenant = %q, want gold", v.Tenant)
	}

	v, err = c.CreateSession(ctx, server.SessionSpec{
		ID: "d1", Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "default" {
		t.Fatalf("unlabelled session tenant = %q, want the configured default", v.Tenant)
	}

	// Spec empty + header set: the header labels the session (this is the
	// path the router's pass-through feeds).
	resp, hv := rawCreate(t, ts.URL,
		`{"id":"b1","workload":{"fig3":true},"mechanism":"equalshare"}`, "bronze")
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("header create status %d", resp.StatusCode)
	}
	if hv.Tenant != "bronze" {
		t.Fatalf("header-labelled session tenant = %q, want bronze", hv.Tenant)
	}

	// A malformed header is a client error, not a silent default.
	resp, _ = rawCreate(t, ts.URL,
		`{"id":"b2","workload":{"fig3":true},"mechanism":"equalshare"}`, "not a tenant")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant header: status %d, want 400", resp.StatusCode)
	}

	// List surfaces the labels too — loadgen/smoke can assert placement
	// without scraping /metrics.
	views, err := c.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]string{}
	for _, lv := range views {
		byID[lv.ID] = lv.Tenant
	}
	want := map[string]string{"g1": "gold", "d1": "default", "b1": "bronze"}
	for id, tenant := range want {
		if byID[id] != tenant {
			t.Fatalf("list: session %s tenant = %q, want %q (all: %v)", id, byID[id], tenant, byID)
		}
	}

	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		`rebudgetd_tenant_granted_cost{tenant="gold"}`,
		`rebudgetd_tenant_deserved_cost{tenant="bronze"}`,
		`rebudgetd_tenant_fairness{tenant="default"}`,
		`rebudgetd_tenant_sessions{tenant="gold"} 1`,
		"rebudgetd_tenant_rebalance_epochs_total",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("/metrics missing %s", needle)
		}
	}
	// gold deserves 3x bronze's budget: check the exposed gauges agree.
	if gold, bronze := metricVal(t, body, `rebudgetd_tenant_deserved_cost{tenant="gold"}`),
		metricVal(t, body, `rebudgetd_tenant_deserved_cost{tenant="bronze"}`); gold <= bronze {
		t.Errorf("deserved gold %g should exceed bronze %g (shares 3:1)", gold, bronze)
	}
	// The deprecated unsuffixed dispatch series must stay removed; only the
	// *_cost variants are canonical now.
	for _, gone := range []string{"rebudgetd_dispatch_in_flight ", "rebudgetd_dispatch_queued "} {
		if strings.Contains(body, gone) {
			t.Errorf("deprecated metric %q resurfaced in /metrics", strings.TrimSpace(gone))
		}
	}
}

// metricVal extracts the sample value of an exact series (name plus label
// set) from Prometheus text exposition.
func metricVal(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, rest, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in /metrics", series)
	return 0
}

// TestTenantSnapshotRoundTrip: the tenant label must survive drain →
// snapshot (version 3) → rehydrate on a fresh daemon, landing the session
// back under its tenant's budget.
func TestTenantSnapshotRoundTrip(t *testing.T) {
	st, _ := fileStore(t)
	ctx := context.Background()

	_, a, shutdownA := startDaemonWith(t, server.Config{Snapshots: st, Tenancy: tenancy(t, "")})
	if _, err := a.CreateSession(ctx, server.SessionSpec{
		ID: "mkt", Tenant: "acme/prod",
		Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StepEpoch(ctx, "mkt"); err != nil {
		t.Fatal(err)
	}
	shutdownA()

	// The file on disk is a version-3 snapshot carrying the label in its spec.
	raw, err := st.LoadRaw("mkt")
	if err != nil {
		t.Fatal(err)
	}
	var snap server.SessionSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 3 || server.SnapshotVersion != 3 {
		t.Fatalf("snapshot version %d (const %d), want 3", snap.Version, server.SnapshotVersion)
	}
	if snap.Spec.Tenant != "acme/prod" {
		t.Fatalf("snapshot spec tenant = %q, want acme/prod", snap.Spec.Tenant)
	}

	_, b, _ := startDaemonWith(t, server.Config{Snapshots: st, Tenancy: tenancy(t, "")})
	v, err := b.GetSession(ctx, "mkt") // lazy rehydrate on first touch
	if err != nil {
		t.Fatalf("rehydrate: %v", err)
	}
	if v.Tenant != "acme/prod" {
		t.Fatalf("rehydrated session tenant = %q, want acme/prod", v.Tenant)
	}
	body, err := b.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, `rebudgetd_tenant_granted_cost{tenant="acme/prod"}`) {
		t.Fatal("rehydrated tenant not registered in the budget tree")
	}

	// A daemon without tenancy still rehydrates the same snapshot and
	// carries the label (it just gates nothing).
	st2, _ := fileStore(t)
	if err := st2.SaveRaw("mkt", raw); err != nil {
		t.Fatal(err)
	}
	_, plain, _ := startDaemonWith(t, server.Config{Snapshots: st2})
	pv, err := plain.GetSession(ctx, "mkt")
	if err != nil {
		t.Fatalf("tenancy-less rehydrate: %v", err)
	}
	if pv.Tenant != "acme/prod" {
		t.Fatalf("tenancy-less rehydrate dropped the label: %q", pv.Tenant)
	}
}
