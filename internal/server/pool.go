package server

import (
	"bytes"
	"encoding/json"
	"sync"
)

// jsonWriter is a pooled response encoder: one buffer plus an encoder bound
// to it, reused across requests so the hot path (epoch POSTs at saturation)
// stops paying an encoder allocation and a buffer growth per response.
type jsonWriter struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonWriters = sync.Pool{New: func() any {
	jw := &jsonWriter{}
	jw.enc = json.NewEncoder(&jw.buf)
	jw.enc.SetIndent("", "  ")
	return jw
}}

// poolBufCap bounds what a pooled buffer may retain: a rare giant response
// (a full session listing) must not pin its high-water mark forever.
const poolBufCap = 64 << 10

// encodeJSON renders v with a pooled encoder and returns the writer; the
// caller reads .buf.Bytes() and must hand the writer back via putJSONWriter.
func encodeJSON(v any) (*jsonWriter, error) {
	jw := jsonWriters.Get().(*jsonWriter)
	jw.buf.Reset()
	if err := jw.enc.Encode(v); err != nil {
		putJSONWriter(jw)
		return nil, err
	}
	return jw, nil
}

func putJSONWriter(jw *jsonWriter) {
	if jw.buf.Cap() > poolBufCap {
		return
	}
	jsonWriters.Put(jw)
}
