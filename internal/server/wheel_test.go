package server

import (
	"testing"
	"time"
)

// mailboxSession builds the minimal session a wheel fire needs: a mailbox to
// nudge and a metrics sink for the drop counter. No engine, no loop.
func mailboxSession(buf int) *session {
	return &session{
		reqs: make(chan *request, buf),
		met:  &srvMetrics{},
	}
}

// TestWheelFiresQuantisedPeriods: a session scheduled at a sub-granularity
// period fires at the wheel granularity (quantised UP), repeatedly, and stops
// firing after remove.
func TestWheelFiresQuantisedPeriods(t *testing.T) {
	w := newTimerWheel(5 * time.Millisecond)
	defer w.close()
	s := mailboxSession(64)
	w.schedule(s, time.Millisecond) // quantised up to one 5ms tick
	if w.size() != 1 {
		t.Fatalf("size = %d, want 1", w.size())
	}
	// Re-scheduling is a no-op, not a double registration.
	w.schedule(s, time.Hour)
	if w.size() != 1 {
		t.Fatalf("size after reschedule = %d, want 1", w.size())
	}

	deadline := time.After(2 * time.Second)
	for fires := 0; fires < 3; {
		select {
		case req := <-s.reqs:
			if req.kind != reqTick {
				t.Fatalf("unexpected request kind %d in mailbox", req.kind)
			}
			fires++
		case <-deadline:
			t.Fatal("wheel did not deliver 3 ticks in 2s")
		}
	}

	w.remove(s)
	w.remove(s) // idempotent
	if w.size() != 0 {
		t.Fatalf("size after remove = %d, want 0", w.size())
	}
	// Drain anything already in flight, then verify silence.
	time.Sleep(20 * time.Millisecond)
	for len(s.reqs) > 0 {
		<-s.reqs
	}
	time.Sleep(50 * time.Millisecond)
	if n := len(s.reqs); n != 0 {
		t.Fatalf("%d ticks delivered after remove", n)
	}
}

// TestWheelLongPeriodRotations: a period far beyond one wheel revolution is
// carried as a rotation count and must NOT fire within the first revolutions.
func TestWheelLongPeriodRotations(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	defer w.close()
	s := mailboxSession(4)
	w.schedule(s, 10*time.Second) // ~39 revolutions of a 256ms wheel
	time.Sleep(600 * time.Millisecond)
	if n := len(s.reqs); n != 0 {
		t.Fatalf("long-period entry fired %d times within two revolutions", n)
	}
}

// TestWheelFullMailboxDropsTick: a full mailbox means the nudge is dropped
// and counted, never blocking the wheel goroutine.
func TestWheelFullMailboxDropsTick(t *testing.T) {
	s := mailboxSession(1)
	s.reqs <- &request{kind: reqTick} // fill the mailbox
	s.deliverTick()
	if got := s.met.tickerDropped.Load(); got != 1 {
		t.Fatalf("tickerDropped = %d, want 1", got)
	}
	if n := len(s.reqs); n != 1 {
		t.Fatalf("mailbox length %d, want 1", n)
	}
}
