package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestDaemon stands up a Server plus an httptest listener and tears both
// down with the test.
func newTestDaemon(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON issues a request and decodes the response body into out (if any).
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp
}

func TestDegradedSessionReportsStateThroughMetrics(t *testing.T) {
	// The per-id health series moved behind the debug flag in the metrics
	// cardinality diet; the by-state population gauge is the default surface.
	_, ts := newTestDaemon(t, Config{PerSessionMetrics: true})
	spec := SessionSpec{
		ID:        "faulty-chip",
		Mode:      ModeSim,
		Workload:  WorkloadSpec{Fig3: true},
		Mechanism: "rebudget-0.05",
		Sim: &SimSpec{
			WarmupEpochs: 1,
			// Poisoned utility evaluations make Allocate fail outright
			// (solver stalls alone are absorbed by the §6.4 Settle
			// fail-safe as non-converged successes).
			Faults: &FaultSpec{UtilityRate: 0.9, Seed: 11},
		},
	}
	var created SessionView
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// Step until the chip's FSM degrades (3 consecutive failed allocations
	// at a 90% per-evaluation poisoning rate — a handful of epochs).
	degraded := false
	for i := 0; i < 60 && !degraded; i++ {
		var v SessionView
		if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/faulty-chip/epoch", nil, &v); resp.StatusCode != http.StatusOK {
			t.Fatalf("epoch %d: %d", i, resp.StatusCode)
		}
		degraded = v.Health == "degraded"
	}
	if !degraded {
		t.Fatal("session never degraded under a 90% utility-poisoning rate")
	}
	resp := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rebudgetd_session_health{id="faulty-chip",state="degraded"} 1`,
		`rebudgetd_sessions_by_state{state="degraded"} 1`,
		`rebudgetd_sessions_live 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestEpochBackpressureReturns429(t *testing.T) {
	srv, ts := newTestDaemon(t, Config{
		Workers:        1,
		MaxWaiting:     1,
		RequestTimeout: 300 * time.Millisecond,
	})
	spec := SessionSpec{ID: "bp", Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// Occupy the whole dispatcher budget from the test so epoch requests
	// queue.
	blocker, ok := srv.disp.tryAcquire(srv.disp.capacity)
	if !ok {
		t.Fatal("could not claim the dispatcher capacity")
	}
	release := make(chan struct{})
	go func() {
		<-release
		blocker.release()
	}()
	defer close(release)

	// First request becomes the one allowed waiter...
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sessions/bp/epoch", "application/json", nil)
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	deadline := time.After(2 * time.Second)
	for srv.disp.queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("first epoch request never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// ...and the second is rejected immediately with 429 + Retry-After.
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions/bp/epoch", nil, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// The queued waiter times out against the request deadline (503).
	if code := <-firstDone; code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: expected 503 after deadline, got %d", code)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestDaemon(t, Config{})
	var h healthzBody
	if resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, h.Status)
	}
	srv.StartDrain()
	var hd healthzBody
	if resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &hd); resp.StatusCode != http.StatusServiceUnavailable || hd.Status != "draining" {
		t.Fatalf("draining healthz: %d %q", resp.StatusCode, hd.Status)
	}
	spec := SessionSpec{Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	cases := []struct {
		name string
		spec SessionSpec
	}{
		{"bad id", SessionSpec{ID: "no spaces!", Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}},
		{"bad mode", SessionSpec{Mode: "quantum", Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}},
		{"bad mechanism", SessionSpec{Workload: WorkloadSpec{Fig3: true}, Mechanism: "lottery"}},
		{"no workload", SessionSpec{Mechanism: "equalbudget"}},
		{"rebudget without min_ef", SessionSpec{Workload: WorkloadSpec{Fig3: true}, Mechanism: "rebudget"}},
		{"bad fault rate", SessionSpec{Mode: ModeSim, Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget",
			Sim: &SimSpec{Faults: &FaultSpec{SolverRate: 1.5}}}},
	}
	for _, tc := range cases {
		if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", tc.spec, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: expected 400, got %d", tc.name, resp.StatusCode)
		}
	}
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/ghost", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing session: expected 404, got %d", resp.StatusCode)
	}
	if resp := doJSON(t, "DELETE", ts.URL+"/v1/sessions/ghost", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing delete: expected 404, got %d", resp.StatusCode)
	}
}

func TestDuplicateSessionConflicts(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	spec := SessionSpec{ID: "twin", Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate: expected 409, got %d", resp.StatusCode)
	}
}

func TestTelemetryValidation(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	spec := SessionSpec{ID: "tele", Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// Context switches are sim-only.
	bad := TelemetrySpec{Switches: []SwitchSpec{{Core: 0, App: "mcf"}}}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/tele/telemetry", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("switches on market session: expected 400, got %d", resp.StatusCode)
	}
	// Out-of-range player.
	bad = TelemetrySpec{Players: []PlayerTelemetry{{Player: 99, Demand: 2}}}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/tele/telemetry", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad player index: expected 400, got %d", resp.StatusCode)
	}
	// Result is sim-only.
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/tele/result", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("result on market session: expected 400, got %d", resp.StatusCode)
	}
}

func TestRouteLabelBoundsCardinality(t *testing.T) {
	cases := map[string]string{
		"/healthz":                  "/healthz",
		"/metrics":                  "/metrics",
		"/v1/sessions":              "/v1/sessions",
		"/v1/sessions/abc":          "/v1/sessions/{id}",
		"/v1/sessions/abc/epoch":    "/v1/sessions/{id}/epoch",
		"/v1/sessions/x-1/result":   "/v1/sessions/{id}/result",
		"/v1/sessions/q/telemetry":  "/v1/sessions/{id}/telemetry",
		"/favicon.ico":              "other",
		"/v2/things/whatever/else3": "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestLRUEvictionOverHTTP(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxSessions: 2})
	for i := 0; i < 3; i++ {
		spec := SessionSpec{ID: fmt.Sprintf("lru-%d", i),
			Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalbudget"}
		if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: %d", i, resp.StatusCode)
		}
	}
	// lru-0 was least recently used and must be gone; a request answers 404.
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/lru-0", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still served: %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/lru-2", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh session missing: %d", resp.StatusCode)
	}
}

// TestAPIKeyAuth: with an API key armed, mutating endpoints demand the
// bearer token while reads, probes and scrapes stay open for probes and
// Prometheus.
func TestAPIKeyAuth(t *testing.T) {
	_, ts := newTestDaemon(t, Config{APIKey: "s3kr1t"})
	spec := SessionSpec{ID: "guarded", Workload: WorkloadSpec{Fig3: true}, Mechanism: "equalshare"}

	do := func(method, path, auth string, body any) int {
		t.Helper()
		var rd io.Reader
		if body != nil {
			buf, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// No key, wrong key, malformed scheme: all 401 on mutations.
	for _, auth := range []string{"", "Bearer wrong", "Basic s3kr1t", "s3kr1t"} {
		if code := do("POST", "/v1/sessions", auth, spec); code != http.StatusUnauthorized {
			t.Fatalf("create with auth %q: %d, want 401", auth, code)
		}
	}
	if code := do("POST", "/v1/sessions", "Bearer s3kr1t", spec); code != http.StatusCreated {
		t.Fatalf("create with key: %d, want 201", code)
	}
	if code := do("POST", "/v1/sessions/guarded/epoch", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("epoch without key: %d, want 401", code)
	}
	if code := do("DELETE", "/v1/sessions/guarded", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("delete without key: %d, want 401", code)
	}

	// Reads and operational surfaces stay open.
	for _, path := range []string{"/v1/sessions/guarded", "/v1/sessions", "/healthz", "/metrics"} {
		if code := do("GET", path, "", nil); code != http.StatusOK {
			t.Fatalf("GET %s without key: %d, want 200", path, code)
		}
	}

	// Auth misses are counted.
	resp := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	buf, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(buf), `reason="auth"`) {
		t.Fatal("/metrics missing auth rejection counter")
	}

	// The daemon client speaks the scheme end to end.
	if code := do("POST", "/v1/sessions/guarded/epoch", "Bearer s3kr1t", nil); code != http.StatusOK {
		t.Fatalf("epoch with key: %d, want 200", code)
	}
}
