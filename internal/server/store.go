package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// store is the session registry, lock-striped for density: session ids hash
// (FNV-1a) onto a power-of-two number of segments, each with its own mutex,
// LRU list and id map, so 100k-resident lookups from many connections stop
// serialising on one lock. Capacity eviction is per-segment (each segment
// holds an equal slice of MaxSessions), so MaxSessions is approximate under
// striping: a segment can fill from hash imbalance and evict its LRU while
// the store as a whole is under max — provision headroom as with any
// per-slab LRU. The resident count is a global atomic, and the idle-TTL
// sweep walks each segment's LRU tail independently. A single-segment store is bit-identical to the pre-striping
// global-mutex registry — the configuration the surface-pin tests run.
//
// The store only tracks sessions — closing an evicted session (which blocks
// on its loop goroutine) happens outside the lock, by the caller.
type store struct {
	segs   []storeSegment
	mask   uint32
	segMax int           // per-segment capacity
	ttl    time.Duration
	count  atomic.Int64 // resident sessions across all segments
}

// storeSegment is one stripe: a map for lookup plus an LRU list for
// capacity eviction. Padded-free on purpose — segments are touched by id
// hash, not scanned, so false sharing is not the bottleneck here.
type storeSegment struct {
	mu   sync.Mutex
	ll   *list.List // front = most recently used
	byID map[string]*list.Element
}

// defaultSegments sizes the stripe count for a capacity: one segment per 64
// sessions of capacity, rounded down to a power of two, clamped to [1, 64].
// Small daemons (the default 128-session config, every pre-density test) get
// one or two segments and keep near-global LRU semantics; a 100k-session
// density shard gets 64.
func defaultSegments(max int) int {
	n := 1
	for n*2 <= max/64 && n < 64 {
		n *= 2
	}
	return n
}

// newStore builds a registry for max sessions across the given number of
// segments (rounded up to a power of two; <= 0 selects defaultSegments).
func newStore(max int, ttl time.Duration, segments int) *store {
	if segments <= 0 {
		segments = defaultSegments(max)
	}
	pow := 1
	for pow < segments {
		pow *= 2
	}
	segments = pow
	if segments > max {
		segments = 1
	}
	st := &store{
		segs: make([]storeSegment, segments),
		mask: uint32(segments - 1),
		// Ceiling division: capacities not divisible by the stripe count
		// round each segment up, so the global cap is never undershot.
		segMax: (max + segments - 1) / segments,
		ttl:    ttl,
	}
	for i := range st.segs {
		st.segs[i].ll = list.New()
		st.segs[i].byID = make(map[string]*list.Element)
	}
	return st
}

// seg picks the segment owning an id: FNV-1a over the id bytes, masked onto
// the power-of-two stripe count.
func (st *store) seg(id string) *storeSegment {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &st.segs[h&st.mask]
}

// segments reports the stripe count (for /metrics and tests).
func (st *store) segments() int { return len(st.segs) }

// add registers a session, returning the session evicted to make room (nil
// when under capacity). Eviction is per-segment: the LRU session of the
// *incoming id's* segment goes, which with one segment is exactly the global
// LRU. Duplicate IDs are an error.
func (st *store) add(s *session) (evicted *session, err error) {
	sg := st.seg(s.id)
	sg.mu.Lock()
	defer sg.mu.Unlock()
	if _, ok := sg.byID[s.id]; ok {
		return nil, fmt.Errorf("session %q already exists", s.id)
	}
	if sg.ll.Len() >= st.segMax {
		back := sg.ll.Back()
		evicted = back.Value.(*session)
		sg.ll.Remove(back)
		delete(sg.byID, evicted.id)
		st.count.Add(-1)
	}
	sg.byID[s.id] = sg.ll.PushFront(s)
	st.count.Add(1)
	return evicted, nil
}

// get looks a session up and marks it most recently used within its segment.
func (st *store) get(id string) *session {
	sg := st.seg(id)
	sg.mu.Lock()
	defer sg.mu.Unlock()
	el, ok := sg.byID[id]
	if !ok {
		return nil
	}
	sg.ll.MoveToFront(el)
	return el.Value.(*session)
}

// remove unregisters a session (nil if absent). The caller closes it.
func (st *store) remove(id string) *session {
	sg := st.seg(id)
	sg.mu.Lock()
	defer sg.mu.Unlock()
	el, ok := sg.byID[id]
	if !ok {
		return nil
	}
	sg.ll.Remove(el)
	delete(sg.byID, id)
	st.count.Add(-1)
	return el.Value.(*session)
}

// list snapshots every live session, most recently used first within each
// segment, segments in index order. With one segment this is the global MRU
// order the pre-striping store listed.
func (st *store) list() []*session {
	out := make([]*session, 0, st.count.Load())
	for i := range st.segs {
		sg := &st.segs[i]
		sg.mu.Lock()
		for el := sg.ll.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*session))
		}
		sg.mu.Unlock()
	}
	return out
}

func (st *store) len() int { return int(st.count.Load()) }

// sweepIdle unregisters and returns every session idle past the TTL. Each
// segment's walk starts at its LRU end and stops at the first fresh session.
// The caller closes the returned sessions outside the locks.
func (st *store) sweepIdle(now time.Time) []*session {
	if st.ttl <= 0 {
		return nil
	}
	var idle []*session
	for i := range st.segs {
		sg := &st.segs[i]
		sg.mu.Lock()
		for el := sg.ll.Back(); el != nil; {
			s := el.Value.(*session)
			if now.Sub(s.LastUsed()) < st.ttl {
				break
			}
			prev := el.Prev()
			sg.ll.Remove(el)
			delete(sg.byID, s.id)
			st.count.Add(-1)
			idle = append(idle, s)
			el = prev
		}
		sg.mu.Unlock()
	}
	return idle
}

// idleCandidates returns sessions untouched for at least d WITHOUT removing
// them — the hibernation sweep's read side. Like sweepIdle, each segment
// walks from its LRU end and stops at the first fresh session; the caller
// re-checks freshness per session before actually parking (a touch may land
// between the sweep and the park).
func (st *store) idleCandidates(now time.Time, d time.Duration) []*session {
	if d <= 0 {
		return nil
	}
	var idle []*session
	for i := range st.segs {
		sg := &st.segs[i]
		sg.mu.Lock()
		for el := sg.ll.Back(); el != nil; el = el.Prev() {
			s := el.Value.(*session)
			if now.Sub(s.LastUsed()) < d {
				break
			}
			idle = append(idle, s)
		}
		sg.mu.Unlock()
	}
	return idle
}

// drain unregisters every session for shutdown. The caller closes them.
func (st *store) drain() []*session {
	var all []*session
	for i := range st.segs {
		sg := &st.segs[i]
		sg.mu.Lock()
		for el := sg.ll.Front(); el != nil; el = el.Next() {
			all = append(all, el.Value.(*session))
			st.count.Add(-1)
		}
		sg.ll.Init()
		sg.byID = make(map[string]*list.Element)
		sg.mu.Unlock()
	}
	return all
}
