package server

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// store is the session registry: a map for lookup plus an LRU list for
// capacity eviction and an idle TTL swept by the server's janitor. The
// store only tracks sessions — closing an evicted session (which blocks on
// its loop goroutine) happens outside the lock, by the caller.
type store struct {
	mu   sync.Mutex
	max  int
	ttl  time.Duration
	ll   *list.List // front = most recently used
	byID map[string]*list.Element
}

func newStore(max int, ttl time.Duration) *store {
	return &store{max: max, ttl: ttl, ll: list.New(), byID: make(map[string]*list.Element)}
}

// add registers a session, returning the LRU session evicted to make room
// (nil when under capacity). Duplicate IDs are an error.
func (st *store) add(s *session) (evicted *session, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[s.id]; ok {
		return nil, fmt.Errorf("session %q already exists", s.id)
	}
	if st.ll.Len() >= st.max {
		back := st.ll.Back()
		evicted = back.Value.(*session)
		st.ll.Remove(back)
		delete(st.byID, evicted.id)
	}
	st.byID[s.id] = st.ll.PushFront(s)
	return evicted, nil
}

// get looks a session up and marks it most recently used.
func (st *store) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil
	}
	st.ll.MoveToFront(el)
	return el.Value.(*session)
}

// remove unregisters a session (nil if absent). The caller closes it.
func (st *store) remove(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil
	}
	st.ll.Remove(el)
	delete(st.byID, id)
	return el.Value.(*session)
}

// list snapshots every live session, most recently used first.
func (st *store) list() []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*session, 0, st.ll.Len())
	for el := st.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*session))
	}
	return out
}

func (st *store) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ll.Len()
}

// sweepIdle unregisters and returns every session idle past the TTL. The
// caller closes them outside the lock.
func (st *store) sweepIdle(now time.Time) []*session {
	if st.ttl <= 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var idle []*session
	// Walk from the LRU end; stop at the first fresh session.
	for el := st.ll.Back(); el != nil; {
		s := el.Value.(*session)
		if now.Sub(s.LastUsed()) < st.ttl {
			break
		}
		prev := el.Prev()
		st.ll.Remove(el)
		delete(st.byID, s.id)
		idle = append(idle, s)
		el = prev
	}
	return idle
}

// drain unregisters every session for shutdown. The caller closes them.
func (st *store) drain() []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	var all []*session
	for el := st.ll.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*session))
	}
	st.ll.Init()
	st.byID = make(map[string]*list.Element)
	return all
}
