package server

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// scrapeFixture builds n loop-less sessions with warmed cost estimators —
// enough state for every series the exposition renders.
func scrapeFixture(n int) []*session {
	sessions := make([]*session, n)
	now := time.Now()
	for i := range sessions {
		est := newCostEstimator(4)
		est.observe(1, 40+i%200, 0)
		est.update(1)
		sessions[i] = &session{
			id:       fmt.Sprintf("scrape-%06d", i),
			cost:     est,
			lastUsed: now,
			reqs:     make(chan *request, 1),
			met:      &srvMetrics{},
		}
	}
	return sessions
}

// BenchmarkMetricsRender50k is the 50k-resident scrape: the default
// exposition must stay cheap and bounded no matter the population, because
// the cost profile is a fixed histogram + top-K, not a per-id series.
func BenchmarkMetricsRender50k(b *testing.B) {
	m := &srvMetrics{}
	disp := newDispatcher(8, 64, 512)
	sessions := scrapeFixture(50000)
	for _, mode := range []struct {
		name       string
		perSession bool
	}{{"default", false}, {"per-session", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.render(io.Discard, sessions, disp, nil, false, mode.perSession, time.Minute)
			}
		})
	}
}

// TestDefaultMetricsBoundedCardinality pins the cardinality diet: the
// default exposition carries NO per-session-id series — the cost profile is
// a histogram plus a top-K whose size is fixed, and the per-id debug series
// only exist behind PerSessionMetrics.
func TestDefaultMetricsBoundedCardinality(t *testing.T) {
	m := &srvMetrics{}
	disp := newDispatcher(8, 64, 512)
	sessions := scrapeFixture(500)

	var sb strings.Builder
	m.render(&sb, sessions, disp, nil, false, false, time.Minute)
	out := sb.String()
	for _, banned := range []string{
		"rebudgetd_session_epochs{",
		"rebudgetd_session_health{",
		"rebudgetd_session_epoch_cost_per_id{",
		"rebudgetd_session_tokens{",
		`id="`,
	} {
		if strings.Contains(out, banned) {
			t.Errorf("default exposition leaks per-id series %q", banned)
		}
	}
	for _, want := range []string{
		"rebudgetd_session_epoch_cost_bucket{le=",
		"rebudgetd_session_epoch_cost_sum",
		"rebudgetd_session_epoch_cost_count 500",
		`rebudgetd_session_cost_topk{rank="1"`,
		`rebudgetd_session_cost_topk{rank="5"`,
		"rebudgetd_sessions_parked 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("default exposition missing %q", want)
		}
	}
	// Default-mode line count must not scale with the population.
	base := strings.Count(out, "\n")
	sb.Reset()
	m.render(&sb, scrapeFixture(5000), disp, nil, false, false, time.Minute)
	if grown := strings.Count(sb.String(), "\n"); grown != base {
		t.Errorf("default exposition grew with population: %d lines at 500 sessions, %d at 5000", base, grown)
	}

	// The debug flag restores the per-id view.
	sb.Reset()
	m.render(&sb, sessions, disp, nil, false, true, time.Minute)
	if !strings.Contains(sb.String(), `rebudgetd_session_epoch_cost_per_id{id="scrape-000000"}`) {
		t.Error("per-session mode missing per-id cost series")
	}
}
