package server_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// With a per-session token bucket armed, epochs beyond the burst answer 429
// with a Retry-After hint, the bucket refills with wall-clock time, and the
// bucket level is visible on /metrics.
func TestSessionRateLimit(t *testing.T) {
	// PerSessionMetrics arms the per-id token gauge this test reads; the
	// default exposition keeps cardinality bounded.
	_, c, _ := startDaemonWith(t, server.Config{SessionRPS: 2, SessionBurst: 2, PerSessionMetrics: true})
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, server.SessionSpec{
		ID: "rl", Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
	}); err != nil {
		t.Fatal(err)
	}

	// Burst of 2 is spendable immediately; the next epoch must be limited.
	for i := 0; i < 2; i++ {
		if _, err := c.StepEpoch(ctx, "rl"); err != nil {
			t.Fatalf("epoch %d within burst: %v", i, err)
		}
	}
	_, err := c.StepEpoch(ctx, "rl")
	if !client.IsBusy(err) {
		t.Fatalf("epoch beyond burst: want 429 backpressure, got %v", err)
	}
	ae := err.(*client.APIError)
	if ae.RetryAfter <= 0 {
		t.Fatalf("429 carried no Retry-After hint: %+v", ae)
	}
	if !strings.Contains(ae.Message, "rate limited") {
		t.Fatalf("unexpected 429 message: %q", ae.Message)
	}

	// A batch larger than the bucket can ever hold is also refused, not
	// split — n epochs cost n tokens up front.
	if _, err := c.StepEpochs(ctx, "rl", 50); !client.IsBusy(err) {
		t.Fatalf("oversized batch: want 429, got %v", err)
	}

	// The bucket refills with time: at 2 tokens/s, one epoch is affordable
	// well within a second.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.StepEpoch(ctx, "rl"); err == nil {
			break
		} else if !client.IsBusy(err) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(100 * time.Millisecond)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `rebudgetd_session_tokens{id="rl"}`) {
		t.Fatal("/metrics missing per-session token gauge")
	}
	if !strings.Contains(metrics, `reason="ratelimit"`) {
		t.Fatal("/metrics missing ratelimit rejection counter")
	}
}

// With no SessionRPS configured the bucket is unarmed: arbitrary batches
// pass and no token gauge is exported.
func TestSessionRateLimitUnarmed(t *testing.T) {
	_, c, _ := startDaemonWith(t, server.Config{})
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, server.SessionSpec{
		ID: "free", Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.StepEpochs(ctx, "free", 4); err != nil {
			t.Fatal(err)
		}
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(metrics, "rebudgetd_session_tokens") {
		t.Fatal("unarmed daemon should not export token gauges")
	}
}
