package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/metrics"
)

// latencyBuckets are the request-latency histogram upper bounds, in seconds.
// Allocation epochs land mid-range; reads land in the first buckets.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// costBuckets are the per-epoch cost-estimate histogram upper bounds, in
// cost units. One unit is a cheap 8-core epoch (the dispatcher's pricing
// anchor); the top bucket covers the largest analytic priors.
var costBuckets = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}

// costTopK bounds the per-id offender series in the default exposition:
// instead of one rebudgetd_session_epoch_cost{id} line per resident session
// (100k lines at density), the scrape carries the K most expensive sessions.
const costTopK = 5

// srvMetrics is the daemon's observability state: lock-free counters on the
// hot paths, a mutex-guarded label map for per-route request accounting, and
// a renderer emitting Prometheus text exposition format. No client library —
// the repo takes no dependencies — but the output is scrape-compatible.
type srvMetrics struct {
	sessionsCreated atomic.Int64
	epochsServed    atomic.Int64
	tickerDropped   atomic.Int64
	parked          atomic.Int64 // sessions ever hibernated
	unparked        atomic.Int64 // sessions ever woken from hibernation

	evicted   labelCounters     // reason: capacity | idle | deleted | drain
	rejected  labelCounters     // reason: busy | mailbox | draining | timeout | ratelimit | tenant | auth
	requests  routeCodeCounters // route × status code
	snapshots labelCounters     // op: save | restore | verified | corrupt | save_error | load_error | restore_error

	latCount atomic.Int64
	latSum   atomicFloat
	latBkt   [13]atomic.Int64 // parallel to latencyBuckets

	// eq is the server-wide equilibrium profile: the observer installed on
	// every session's allocator, surviving session eviction so the counters
	// stay monotonic (as Prometheus counters must).
	eq metrics.EquilibriumProfile
}

func init() {
	if len(latencyBuckets) != len((&srvMetrics{}).latBkt) {
		panic("server: latBkt array out of sync with latencyBuckets")
	}
}

// labelCounters is a small label-value → counter map.
type labelCounters struct {
	mu sync.Mutex
	m  map[string]*int64
}

func (lc *labelCounters) inc(label string) {
	lc.mu.Lock()
	if lc.m == nil {
		lc.m = make(map[string]*int64)
	}
	c, ok := lc.m[label]
	if !ok {
		c = new(int64)
		lc.m[label] = c
	}
	*c++
	lc.mu.Unlock()
}

// snapshot returns the labels sorted with their counts.
func (lc *labelCounters) snapshot() ([]string, []int64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	labels := make([]string, 0, len(lc.m))
	for l := range lc.m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	counts := make([]int64, len(labels))
	for i, l := range labels {
		counts[i] = *lc.m[l]
	}
	return labels, counts
}

// routeCodeCounters counts requests by (route, status code) under a struct
// key: the per-request path must not format a label string (the Sprintf it
// replaced showed up in the epoch hot-path allocation profile). Labels are
// rendered at scrape time instead.
type routeCodeCounters struct {
	mu sync.Mutex
	m  map[reqKey]*int64
}

type reqKey struct {
	route string
	code  int
}

func (rc *routeCodeCounters) inc(route string, code int) {
	rc.mu.Lock()
	if rc.m == nil {
		rc.m = make(map[reqKey]*int64)
	}
	k := reqKey{route: route, code: code}
	c, ok := rc.m[k]
	if !ok {
		c = new(int64)
		rc.m[k] = c
	}
	*c++
	rc.mu.Unlock()
}

// snapshot renders the labels in the exposition's historical format and
// order (sorted by formatted label).
func (rc *routeCodeCounters) snapshot() ([]string, []int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	labels := make([]string, 0, len(rc.m))
	byLabel := make(map[string]int64, len(rc.m))
	for k, c := range rc.m {
		l := fmt.Sprintf("route=%q,code=\"%d\"", k.route, k.code)
		labels = append(labels, l)
		byLabel[l] = *c
	}
	sort.Strings(labels)
	counts := make([]int64, len(labels))
	for i, l := range labels {
		counts[i] = byLabel[l]
	}
	return labels, counts
}

// atomicFloat accumulates float64 via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// observeRequest records one served HTTP request.
func (m *srvMetrics) observeRequest(route string, code int, dur time.Duration) {
	m.requests.inc(route, code)
	sec := dur.Seconds()
	m.latCount.Add(1)
	m.latSum.add(sec)
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.latBkt[i].Add(1)
		}
	}
}

// expo is a pooled exposition writer: one bufio.Writer plus a number-format
// scratch buffer, reused across scrapes. Every line is assembled with
// strconv.Append* into the buffered writer — at a 50k-session scrape the
// per-line fmt.Fprintf it replaced was the dominant cost (one format-parse
// and several interface allocations per line).
type expo struct {
	w   *bufio.Writer
	num []byte
}

var expoPool = sync.Pool{New: func() any {
	return &expo{w: bufio.NewWriterSize(io.Discard, 32<<10), num: make([]byte, 0, 64)}
}}

func (e *expo) str(s string)  { e.w.WriteString(s) }
func (e *expo) byte(b byte)   { e.w.WriteByte(b) }
func (e *expo) int(v int64)   { e.num = strconv.AppendInt(e.num[:0], v, 10); e.w.Write(e.num) }
func (e *expo) float(v float64) {
	// %g and AppendFloat('g', -1) produce identical shortest representations,
	// so the exposition text is byte-identical to the Fprintf renderer's.
	e.num = strconv.AppendFloat(e.num[:0], v, 'g', -1, 64)
	e.w.Write(e.num)
}
func (e *expo) quoted(s string) { e.num = strconv.AppendQuote(e.num[:0], s); e.w.Write(e.num) }

// header writes the # HELP / # TYPE preamble for a metric.
func (e *expo) header(name, help, typ string) {
	e.str("# HELP ")
	e.str(name)
	e.byte(' ')
	e.str(help)
	e.str("\n# TYPE ")
	e.str(name)
	e.byte(' ')
	e.str(typ)
	e.byte('\n')
}

// scalar writes a headerless `name value` line.
func (e *expo) scalarFloat(name string, v float64) {
	e.str(name)
	e.byte(' ')
	e.float(v)
	e.byte('\n')
}

func (e *expo) scalarInt(name string, v int64) {
	e.str(name)
	e.byte(' ')
	e.int(v)
	e.byte('\n')
}

// render writes the exposition. Default mode keeps cardinality bounded:
// population gauges, a cost histogram and a top-K offender list stand in for
// the per-session-id series, which only appear when perSession is set
// (Config.PerSessionMetrics / -metrics-per-session) — at 100k resident
// sessions the per-id series are the scrape, so they are debug equipment,
// not steady-state telemetry.
func (m *srvMetrics) render(w io.Writer, sessions []*session, disp *dispatcher,
	gov *tenantGovernor, draining, perSession bool, uptime time.Duration) {
	e := expoPool.Get().(*expo)
	e.w.Reset(w)
	defer func() {
		e.w.Flush()
		e.w.Reset(io.Discard) // drop the handler's writer reference
		expoPool.Put(e)
	}()

	gauge := func(name, help string, v float64) {
		e.header(name, help, "gauge")
		e.scalarFloat(name, v)
	}
	counter := func(name, help string, v float64) {
		e.header(name, help, "counter")
		e.scalarFloat(name, v)
	}
	labelled := func(name, help, typ string, lc *labelCounters) {
		e.header(name, help, typ)
		labels, counts := lc.snapshot()
		for i, l := range labels {
			e.str(name)
			e.byte('{')
			e.str(l)
			e.str("} ")
			e.int(counts[i])
			e.byte('\n')
		}
	}

	parked := 0
	for _, s := range sessions {
		if s.isParked() {
			parked++
		}
	}

	gauge("rebudgetd_up", "Daemon liveness (always 1 while serving).", 1)
	gauge("rebudgetd_uptime_seconds", "Seconds since the daemon started.", uptime.Seconds())
	drainVal := 0.0
	if draining {
		drainVal = 1
	}
	gauge("rebudgetd_draining", "1 while the daemon is draining for shutdown.", drainVal)
	gauge("rebudgetd_sessions_live", "Sessions currently resident.", float64(len(sessions)))
	gauge("rebudgetd_sessions_parked", "Resident sessions currently hibernating (no goroutine, engine collapsed to a snapshot).", float64(parked))
	counter("rebudgetd_sessions_created_total", "Sessions ever created.", float64(m.sessionsCreated.Load()))
	counter("rebudgetd_sessions_parked_total", "Sessions ever hibernated by the park sweep.", float64(m.parked.Load()))
	counter("rebudgetd_sessions_unparked_total", "Hibernated sessions woken by a touch.", float64(m.unparked.Load()))
	labelled("rebudgetd_sessions_evicted_total", "Sessions removed, by reason.", "counter", &m.evicted)
	counter("rebudgetd_epochs_served_total", "Allocation epochs stepped across all sessions.", float64(m.epochsServed.Load()))
	counter("rebudgetd_ticker_epochs_dropped_total", "Ticker epochs dropped under dispatcher backpressure.", float64(m.tickerDropped.Load()))
	labelled("rebudgetd_rejected_total", "Requests rejected, by reason.", "counter", &m.rejected)
	labelled("rebudgetd_snapshots_total", "Session snapshot operations, by outcome.", "counter", &m.snapshots)
	// Dispatcher admission state, in cost units — the canonical series
	// since cost-based admission landed. (The deprecated request-count
	// aliases rebudgetd_dispatch_in_flight/_queued were removed after
	// their one-release grace period; see DESIGN.md, "Metrics migration".)
	gauge("rebudgetd_dispatch_in_flight_cost", "Cost units currently claimed by admitted requests.", disp.inFlightCost())
	gauge("rebudgetd_dispatch_queued_cost", "Cost units waiting for dispatcher capacity.", disp.queuedCostUnits())
	gauge("rebudgetd_dispatch_capacity_cost", "Dispatcher concurrent budget, in cost units.", disp.capacity)

	// Tenant budget economy (only when the governor is armed): the tree's
	// budget state and the admission-side counters, one series per tenant.
	// tenant_smoke.sh and the loadgen tenant mix watch lent/granted move
	// through a lend-then-reclaim cycle.
	if gov != nil {
		rows, epochs := gov.metricsSnapshot()
		counter("rebudgetd_tenant_rebalance_epochs_total", "Tenant-tree rebalance epochs run.", float64(epochs))
		tenantSeries := func(name, help, typ string, value func(tenantMetric) float64) {
			e.header(name, help, typ)
			for _, row := range rows {
				e.str(name)
				e.str("{tenant=")
				e.quoted(row.Path)
				e.str("} ")
				e.float(value(row))
				e.byte('\n')
			}
		}
		tg := func(name, help string, value func(tenantMetric) float64) {
			tenantSeries(name, help, "gauge", value)
		}
		tc := func(name, help string, value func(tenantMetric) float64) {
			tenantSeries(name, help, "counter", value)
		}
		tg("rebudgetd_tenant_deserved_cost", "Deserved budget (cost units): the tenant's static entitlement.",
			func(r tenantMetric) float64 { return r.Deserved })
		tg("rebudgetd_tenant_granted_cost", "Granted budget (cost units): what the tenant may use now.",
			func(r tenantMetric) float64 { return r.Granted })
		tg("rebudgetd_tenant_lent_cost", "Budget currently lent out: max(0, deserved-granted).",
			func(r tenantMetric) float64 { return r.Lent })
		tg("rebudgetd_tenant_borrowed_cost", "Budget currently borrowed: max(0, granted-deserved).",
			func(r tenantMetric) float64 { return r.Borrowed })
		tg("rebudgetd_tenant_demand_cost", "Demand signal fed to the tree (peak wanted in-flight cost, decayed).",
			func(r tenantMetric) float64 { return r.Demand })
		tg("rebudgetd_tenant_in_flight_cost", "Cost units currently admitted under the tenant's grant.",
			func(r tenantMetric) float64 { return r.InFlight })
		tg("rebudgetd_tenant_mbr_floor", "Configured fairness floor: granted never drops below floor x slice while demanding.",
			func(r tenantMetric) float64 { return r.MBRFloor })
		tg("rebudgetd_tenant_fairness", "Realized budget share: granted/deserved (1 = exactly the deserved share).",
			func(r tenantMetric) float64 {
				if r.Deserved <= 0 {
					return 1
				}
				return r.Granted / r.Deserved
			})
		tc("rebudgetd_tenant_lent_cost_total", "Cumulative budget-epochs spent below the deserved share (lender side).",
			func(r tenantMetric) float64 { return r.LentTotal })
		tc("rebudgetd_tenant_reclaimed_cost_total", "Cumulative budget cut back by bounded reclaim.",
			func(r tenantMetric) float64 { return r.ReclaimedTotal })
		tc("rebudgetd_tenant_admitted_total", "Requests admitted under the tenant's sub-budget.",
			func(r tenantMetric) float64 { return float64(r.Admitted) })
		tc("rebudgetd_tenant_rejected_total", "Requests refused because the tenant's grant was exhausted.",
			func(r tenantMetric) float64 { return float64(r.Rejected) })
		bySessTenant := map[string]int{}
		for _, s := range sessions {
			if t := s.spec.Tenant; t != "" {
				bySessTenant[t]++
			}
		}
		e.header("rebudgetd_tenant_sessions", "Resident sessions per tenant.", "gauge")
		for _, row := range rows {
			e.str("rebudgetd_tenant_sessions{tenant=")
			e.quoted(row.Path)
			e.str("} ")
			e.int(int64(bySessTenant[row.Path]))
			e.byte('\n')
		}
	}

	// Equilibrium convergence cost (from metrics.EquilibriumProfile).
	eq := m.eq.Snapshot()
	counter("rebudgetd_equilibrium_runs_total", "Equilibrium computations performed.", float64(eq.Runs))
	counter("rebudgetd_equilibrium_rounds_total", "Bidding-pricing rounds summed over all equilibria.", float64(eq.Rounds))
	counter("rebudgetd_equilibrium_bid_steps_total", "Per-player bid updates summed over all equilibria.", float64(eq.BidSteps))
	counter("rebudgetd_equilibrium_wall_seconds_total", "Wall time spent inside equilibrium computations.", eq.Wall.Seconds())

	// Request accounting.
	e.header("rebudgetd_requests_total", "HTTP requests served, by route and status code.", "counter")
	reqLabels, reqCounts := m.requests.snapshot()
	for i, l := range reqLabels {
		e.str("rebudgetd_requests_total{")
		e.str(l)
		e.str("} ")
		e.int(reqCounts[i])
		e.byte('\n')
	}
	e.header("rebudgetd_request_seconds", "HTTP request latency.", "histogram")
	for i, ub := range latencyBuckets {
		e.str("rebudgetd_request_seconds_bucket{le=\"")
		e.float(ub)
		e.str("\"} ")
		e.int(m.latBkt[i].Load())
		e.byte('\n')
	}
	e.str("rebudgetd_request_seconds_bucket{le=\"+Inf\"} ")
	e.int(m.latCount.Load())
	e.byte('\n')
	e.str("rebudgetd_request_seconds_sum ")
	e.float(m.latSum.load())
	e.byte('\n')
	e.str("rebudgetd_request_seconds_count ")
	e.int(m.latCount.Load())
	e.byte('\n')

	// Degradation FSM: population counts per state.
	byState := map[metrics.HealthState]int{}
	for _, s := range sessions {
		byState[s.Health()]++
	}
	e.header("rebudgetd_sessions_by_state", "Sessions per degradation-FSM state.", "gauge")
	for _, st := range []metrics.HealthState{metrics.Healthy, metrics.Degraded, metrics.Recovering} {
		e.str("rebudgetd_sessions_by_state{state=")
		e.quoted(st.String())
		e.str("} ")
		e.int(int64(byState[st]))
		e.byte('\n')
	}

	// Per-epoch cost estimates as a bounded distribution snapshot plus the
	// K most expensive sessions — what replaced the O(sessions) per-id
	// gauge. (A gauge histogram: recomputed from the live population each
	// scrape, not cumulative.)
	m.renderCostProfile(e, sessions)

	if perSession {
		m.renderPerSession(e, sessions)
	}
}

// renderCostProfile emits the cost histogram and top-K offender series.
func (m *srvMetrics) renderCostProfile(e *expo, sessions []*session) {
	counts := make([]int64, len(costBuckets)+1) // +Inf tail
	var sum float64
	top := make([]*session, 0, costTopK)
	topCost := make([]float64, 0, costTopK)
	for _, s := range sessions {
		c := s.costEstimate()
		sum += c
		i := sort.SearchFloat64s(costBuckets, c)
		counts[i]++
		// Bounded insertion into the descending offender list — K is 5, a
		// linear scan beats cleverness.
		if len(top) < costTopK || c > topCost[len(topCost)-1] {
			ins := len(top)
			for j, tc := range topCost {
				if c > tc {
					ins = j
					break
				}
			}
			if len(top) < costTopK {
				top = append(top, nil)
				topCost = append(topCost, 0)
			}
			copy(top[ins+1:], top[ins:])
			copy(topCost[ins+1:], topCost[ins:])
			top[ins] = s
			topCost[ins] = c
		}
	}
	e.header("rebudgetd_session_epoch_cost", "Distribution of per-epoch EWMA cost estimates across live sessions (recomputed each scrape).", "histogram")
	cum := int64(0)
	for i, ub := range costBuckets {
		cum += counts[i]
		e.str("rebudgetd_session_epoch_cost_bucket{le=\"")
		e.float(ub)
		e.str("\"} ")
		e.int(cum)
		e.byte('\n')
	}
	cum += counts[len(costBuckets)]
	e.str("rebudgetd_session_epoch_cost_bucket{le=\"+Inf\"} ")
	e.int(cum)
	e.byte('\n')
	e.str("rebudgetd_session_epoch_cost_sum ")
	e.float(sum)
	e.byte('\n')
	e.str("rebudgetd_session_epoch_cost_count ")
	e.int(int64(len(sessions)))
	e.byte('\n')

	e.header("rebudgetd_session_cost_topk", "The K most expensive live sessions by per-epoch cost estimate (bounded cardinality; rank 1 = costliest).", "gauge")
	for i, s := range top {
		e.str("rebudgetd_session_cost_topk{rank=\"")
		e.int(int64(i + 1))
		e.str("\",session=")
		e.quoted(s.id)
		e.str("} ")
		e.float(topCost[i])
		e.byte('\n')
	}
}

// renderPerSession emits the unbounded per-session-id debug series — one or
// more lines per resident session, gated behind Config.PerSessionMetrics.
func (m *srvMetrics) renderPerSession(e *expo, sessions []*session) {
	e.header("rebudgetd_session_epochs", "Epochs served, per live session.", "gauge")
	for _, s := range sessions {
		e.str("rebudgetd_session_epochs{id=")
		e.quoted(s.id)
		e.str("} ")
		e.int(s.Epochs())
		e.byte('\n')
	}
	e.header("rebudgetd_session_health", "Degradation-FSM state, per live session (1 = current state).", "gauge")
	for _, s := range sessions {
		e.str("rebudgetd_session_health{id=")
		e.quoted(s.id)
		e.str(",state=")
		e.quoted(s.Health().String())
		e.str("} 1\n")
	}
	e.header("rebudgetd_session_epoch_cost_per_id", "EWMA admission-cost estimate (cost units per epoch), per live session.", "gauge")
	for _, s := range sessions {
		e.str("rebudgetd_session_epoch_cost_per_id{id=")
		e.quoted(s.id)
		e.str("} ")
		e.float(s.costEstimate())
		e.byte('\n')
	}
	// Rate-limit bucket fill, per live session (only when buckets are armed).
	now := time.Now()
	wroteHeader := false
	for _, s := range sessions {
		level := s.tokenLevel(now)
		if level < 0 {
			continue
		}
		if !wroteHeader {
			e.header("rebudgetd_session_tokens", "Rate-limit tokens currently available, per live session.", "gauge")
			wroteHeader = true
		}
		e.str("rebudgetd_session_tokens{id=")
		e.quoted(s.id)
		e.str("} ")
		e.float(level)
		e.byte('\n')
	}
}

// routeLabel normalises a request path into a bounded label set so metric
// cardinality cannot grow with session IDs. The outer request's mux pattern
// is invisible to middleware (ServeMux matches on a copy), hence by hand.
// Known routes return constant strings — this runs per request, and the
// strings.Split version it replaced was a visible slice allocation in the
// epoch hot-path profile.
func routeLabel(path string) string {
	p := strings.Trim(path, "/")
	seg, rest := cutSeg(p)
	switch seg {
	case "healthz":
		return "/healthz"
	case "metrics":
		return "/metrics"
	case "v1":
		seg, rest = cutSeg(rest)
		if seg != "sessions" {
			return "other"
		}
		if rest == "" {
			return "/v1/sessions"
		}
		_, rest = cutSeg(rest) // the session id
		if rest == "" {
			return "/v1/sessions/{id}"
		}
		action, _ := cutSeg(rest)
		switch action {
		case "epoch":
			return "/v1/sessions/{id}/epoch"
		case "telemetry":
			return "/v1/sessions/{id}/telemetry"
		case "result":
			return "/v1/sessions/{id}/result"
		}
		return "/v1/sessions/{id}/" + action
	default:
		return "other"
	}
}

// cutSeg splits the first path segment off a pre-trimmed path.
func cutSeg(p string) (seg, rest string) {
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i+1:]
	}
	return p, ""
}

func fmtFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
