package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/metrics"
)

// latencyBuckets are the request-latency histogram upper bounds, in seconds.
// Allocation epochs land mid-range; reads land in the first buckets.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// srvMetrics is the daemon's observability state: lock-free counters on the
// hot paths, a mutex-guarded label map for per-route request accounting, and
// a renderer emitting Prometheus text exposition format. No client library —
// the repo takes no dependencies — but the output is scrape-compatible.
type srvMetrics struct {
	sessionsCreated atomic.Int64
	epochsServed    atomic.Int64
	tickerDropped   atomic.Int64

	evicted   labelCounters     // reason: capacity | idle | deleted | drain
	rejected  labelCounters     // reason: busy | mailbox | draining | timeout | ratelimit
	requests  routeCodeCounters // route × status code
	snapshots labelCounters     // op: save | restore | verified | corrupt | save_error | load_error | restore_error

	latCount atomic.Int64
	latSum   atomicFloat
	latBkt   [13]atomic.Int64 // parallel to latencyBuckets

	// eq is the server-wide equilibrium profile: the observer installed on
	// every session's allocator, surviving session eviction so the counters
	// stay monotonic (as Prometheus counters must).
	eq metrics.EquilibriumProfile
}

func init() {
	if len(latencyBuckets) != len((&srvMetrics{}).latBkt) {
		panic("server: latBkt array out of sync with latencyBuckets")
	}
}

// labelCounters is a small label-value → counter map.
type labelCounters struct {
	mu sync.Mutex
	m  map[string]*int64
}

func (lc *labelCounters) inc(label string) {
	lc.mu.Lock()
	if lc.m == nil {
		lc.m = make(map[string]*int64)
	}
	c, ok := lc.m[label]
	if !ok {
		c = new(int64)
		lc.m[label] = c
	}
	*c++
	lc.mu.Unlock()
}

// snapshot returns the labels sorted with their counts.
func (lc *labelCounters) snapshot() ([]string, []int64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	labels := make([]string, 0, len(lc.m))
	for l := range lc.m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	counts := make([]int64, len(labels))
	for i, l := range labels {
		counts[i] = *lc.m[l]
	}
	return labels, counts
}

// routeCodeCounters counts requests by (route, status code) under a struct
// key: the per-request path must not format a label string (the Sprintf it
// replaced showed up in the epoch hot-path allocation profile). Labels are
// rendered at scrape time instead.
type routeCodeCounters struct {
	mu sync.Mutex
	m  map[reqKey]*int64
}

type reqKey struct {
	route string
	code  int
}

func (rc *routeCodeCounters) inc(route string, code int) {
	rc.mu.Lock()
	if rc.m == nil {
		rc.m = make(map[reqKey]*int64)
	}
	k := reqKey{route: route, code: code}
	c, ok := rc.m[k]
	if !ok {
		c = new(int64)
		rc.m[k] = c
	}
	*c++
	rc.mu.Unlock()
}

// snapshot renders the labels in the exposition's historical format and
// order (sorted by formatted label).
func (rc *routeCodeCounters) snapshot() ([]string, []int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	labels := make([]string, 0, len(rc.m))
	byLabel := make(map[string]int64, len(rc.m))
	for k, c := range rc.m {
		l := fmt.Sprintf("route=%q,code=\"%d\"", k.route, k.code)
		labels = append(labels, l)
		byLabel[l] = *c
	}
	sort.Strings(labels)
	counts := make([]int64, len(labels))
	for i, l := range labels {
		counts[i] = byLabel[l]
	}
	return labels, counts
}

// atomicFloat accumulates float64 via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// observeRequest records one served HTTP request.
func (m *srvMetrics) observeRequest(route string, code int, dur time.Duration) {
	m.requests.inc(route, code)
	sec := dur.Seconds()
	m.latCount.Add(1)
	m.latSum.add(sec)
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.latBkt[i].Add(1)
		}
	}
}

// render writes the exposition. Per-session gauges (epochs, FSM state) come
// from the live session list; the ISSUE's acceptance check — degraded-mode
// sessions report their FSM state through /metrics — reads
// rebudgetd_session_health and rebudgetd_sessions_by_state.
func (m *srvMetrics) render(w io.Writer, sessions []*session, disp *dispatcher,
	gov *tenantGovernor, draining bool, uptime time.Duration) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	labelled := func(name, help, typ string, lc *labelCounters) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		labels, counts := lc.snapshot()
		for i, l := range labels {
			fmt.Fprintf(w, "%s{%s} %d\n", name, l, counts[i])
		}
	}

	gauge("rebudgetd_up", "Daemon liveness (always 1 while serving).", 1)
	gauge("rebudgetd_uptime_seconds", "Seconds since the daemon started.", uptime.Seconds())
	drainVal := 0.0
	if draining {
		drainVal = 1
	}
	gauge("rebudgetd_draining", "1 while the daemon is draining for shutdown.", drainVal)
	gauge("rebudgetd_sessions_live", "Sessions currently resident.", float64(len(sessions)))
	counter("rebudgetd_sessions_created_total", "Sessions ever created.", float64(m.sessionsCreated.Load()))
	labelled("rebudgetd_sessions_evicted_total", "Sessions removed, by reason.", "counter", &m.evicted)
	counter("rebudgetd_epochs_served_total", "Allocation epochs stepped across all sessions.", float64(m.epochsServed.Load()))
	counter("rebudgetd_ticker_epochs_dropped_total", "Ticker epochs dropped under dispatcher backpressure.", float64(m.tickerDropped.Load()))
	labelled("rebudgetd_rejected_total", "Requests rejected, by reason.", "counter", &m.rejected)
	labelled("rebudgetd_snapshots_total", "Session snapshot operations, by outcome.", "counter", &m.snapshots)
	// Dispatcher admission state, in cost units — the canonical series
	// since cost-based admission landed. (The deprecated request-count
	// aliases rebudgetd_dispatch_in_flight/_queued were removed after
	// their one-release grace period; see DESIGN.md, "Metrics migration".)
	gauge("rebudgetd_dispatch_in_flight_cost", "Cost units currently claimed by admitted requests.", disp.inFlightCost())
	gauge("rebudgetd_dispatch_queued_cost", "Cost units waiting for dispatcher capacity.", disp.queuedCostUnits())
	gauge("rebudgetd_dispatch_capacity_cost", "Dispatcher concurrent budget, in cost units.", disp.capacity)

	// Tenant budget economy (only when the governor is armed): the tree's
	// budget state and the admission-side counters, one series per tenant.
	// tenant_smoke.sh and the loadgen tenant mix watch lent/granted move
	// through a lend-then-reclaim cycle.
	if gov != nil {
		rows, epochs := gov.metricsSnapshot()
		counter("rebudgetd_tenant_rebalance_epochs_total", "Tenant-tree rebalance epochs run.", float64(epochs))
		tg := func(name, help string, value func(tenantMetric) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, row := range rows {
				fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, row.Path, fmtFloat(value(row)))
			}
		}
		tc := func(name, help string, value func(tenantMetric) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, row := range rows {
				fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, row.Path, fmtFloat(value(row)))
			}
		}
		tg("rebudgetd_tenant_deserved_cost", "Deserved budget (cost units): the tenant's static entitlement.",
			func(r tenantMetric) float64 { return r.Deserved })
		tg("rebudgetd_tenant_granted_cost", "Granted budget (cost units): what the tenant may use now.",
			func(r tenantMetric) float64 { return r.Granted })
		tg("rebudgetd_tenant_lent_cost", "Budget currently lent out: max(0, deserved-granted).",
			func(r tenantMetric) float64 { return r.Lent })
		tg("rebudgetd_tenant_borrowed_cost", "Budget currently borrowed: max(0, granted-deserved).",
			func(r tenantMetric) float64 { return r.Borrowed })
		tg("rebudgetd_tenant_demand_cost", "Demand signal fed to the tree (peak wanted in-flight cost, decayed).",
			func(r tenantMetric) float64 { return r.Demand })
		tg("rebudgetd_tenant_in_flight_cost", "Cost units currently admitted under the tenant's grant.",
			func(r tenantMetric) float64 { return r.InFlight })
		tg("rebudgetd_tenant_mbr_floor", "Configured fairness floor: granted never drops below floor x slice while demanding.",
			func(r tenantMetric) float64 { return r.MBRFloor })
		tg("rebudgetd_tenant_fairness", "Realized budget share: granted/deserved (1 = exactly the deserved share).",
			func(r tenantMetric) float64 {
				if r.Deserved <= 0 {
					return 1
				}
				return r.Granted / r.Deserved
			})
		tc("rebudgetd_tenant_lent_cost_total", "Cumulative budget-epochs spent below the deserved share (lender side).",
			func(r tenantMetric) float64 { return r.LentTotal })
		tc("rebudgetd_tenant_reclaimed_cost_total", "Cumulative budget cut back by bounded reclaim.",
			func(r tenantMetric) float64 { return r.ReclaimedTotal })
		tc("rebudgetd_tenant_admitted_total", "Requests admitted under the tenant's sub-budget.",
			func(r tenantMetric) float64 { return float64(r.Admitted) })
		tc("rebudgetd_tenant_rejected_total", "Requests refused because the tenant's grant was exhausted.",
			func(r tenantMetric) float64 { return float64(r.Rejected) })
		bySessTenant := map[string]int{}
		for _, s := range sessions {
			if t := s.spec.Tenant; t != "" {
				bySessTenant[t]++
			}
		}
		fmt.Fprintf(w, "# HELP rebudgetd_tenant_sessions Resident sessions per tenant.\n# TYPE rebudgetd_tenant_sessions gauge\n")
		for _, row := range rows {
			fmt.Fprintf(w, "rebudgetd_tenant_sessions{tenant=%q} %d\n", row.Path, bySessTenant[row.Path])
		}
	}

	// Equilibrium convergence cost (from metrics.EquilibriumProfile).
	eq := m.eq.Snapshot()
	counter("rebudgetd_equilibrium_runs_total", "Equilibrium computations performed.", float64(eq.Runs))
	counter("rebudgetd_equilibrium_rounds_total", "Bidding-pricing rounds summed over all equilibria.", float64(eq.Rounds))
	counter("rebudgetd_equilibrium_bid_steps_total", "Per-player bid updates summed over all equilibria.", float64(eq.BidSteps))
	counter("rebudgetd_equilibrium_wall_seconds_total", "Wall time spent inside equilibrium computations.", eq.Wall.Seconds())

	// Request accounting.
	fmt.Fprintf(w, "# HELP rebudgetd_requests_total HTTP requests served, by route and status code.\n# TYPE rebudgetd_requests_total counter\n")
	reqLabels, reqCounts := m.requests.snapshot()
	for i, l := range reqLabels {
		fmt.Fprintf(w, "rebudgetd_requests_total{%s} %d\n", l, reqCounts[i])
	}
	fmt.Fprintf(w, "# HELP rebudgetd_request_seconds HTTP request latency.\n# TYPE rebudgetd_request_seconds histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "rebudgetd_request_seconds_bucket{le=%q} %d\n", fmtFloat(ub), m.latBkt[i].Load())
	}
	fmt.Fprintf(w, "rebudgetd_request_seconds_bucket{le=\"+Inf\"} %d\n", m.latCount.Load())
	fmt.Fprintf(w, "rebudgetd_request_seconds_sum %s\n", fmtFloat(m.latSum.load()))
	fmt.Fprintf(w, "rebudgetd_request_seconds_count %d\n", m.latCount.Load())

	// Degradation FSM: population counts per state, plus per-session detail.
	byState := map[metrics.HealthState]int{}
	for _, s := range sessions {
		byState[s.Health()]++
	}
	fmt.Fprintf(w, "# HELP rebudgetd_sessions_by_state Sessions per degradation-FSM state.\n# TYPE rebudgetd_sessions_by_state gauge\n")
	for _, st := range []metrics.HealthState{metrics.Healthy, metrics.Degraded, metrics.Recovering} {
		fmt.Fprintf(w, "rebudgetd_sessions_by_state{state=%q} %d\n", st.String(), byState[st])
	}
	fmt.Fprintf(w, "# HELP rebudgetd_session_epochs Epochs served, per live session.\n# TYPE rebudgetd_session_epochs gauge\n")
	for _, s := range sessions {
		fmt.Fprintf(w, "rebudgetd_session_epochs{id=%q} %d\n", s.id, s.Epochs())
	}
	fmt.Fprintf(w, "# HELP rebudgetd_session_health Degradation-FSM state, per live session (1 = current state).\n# TYPE rebudgetd_session_health gauge\n")
	for _, s := range sessions {
		fmt.Fprintf(w, "rebudgetd_session_health{id=%q,state=%q} 1\n", s.id, s.Health().String())
	}
	fmt.Fprintf(w, "# HELP rebudgetd_session_epoch_cost EWMA admission-cost estimate (cost units per epoch), per live session.\n# TYPE rebudgetd_session_epoch_cost gauge\n")
	for _, s := range sessions {
		fmt.Fprintf(w, "rebudgetd_session_epoch_cost{id=%q} %s\n", s.id, fmtFloat(s.costEstimate()))
	}
	// Rate-limit bucket fill, per live session (only when buckets are armed).
	now := time.Now()
	wroteHeader := false
	for _, s := range sessions {
		level := s.tokenLevel(now)
		if level < 0 {
			continue
		}
		if !wroteHeader {
			fmt.Fprintf(w, "# HELP rebudgetd_session_tokens Rate-limit tokens currently available, per live session.\n# TYPE rebudgetd_session_tokens gauge\n")
			wroteHeader = true
		}
		fmt.Fprintf(w, "rebudgetd_session_tokens{id=%q} %s\n", s.id, fmtFloat(level))
	}
}

// routeLabel normalises a request path into a bounded label set so metric
// cardinality cannot grow with session IDs. The outer request's mux pattern
// is invisible to middleware (ServeMux matches on a copy), hence by hand.
// Known routes return constant strings — this runs per request, and the
// strings.Split version it replaced was a visible slice allocation in the
// epoch hot-path profile.
func routeLabel(path string) string {
	p := strings.Trim(path, "/")
	seg, rest := cutSeg(p)
	switch seg {
	case "healthz":
		return "/healthz"
	case "metrics":
		return "/metrics"
	case "v1":
		seg, rest = cutSeg(rest)
		if seg != "sessions" {
			return "other"
		}
		if rest == "" {
			return "/v1/sessions"
		}
		_, rest = cutSeg(rest) // the session id
		if rest == "" {
			return "/v1/sessions/{id}"
		}
		action, _ := cutSeg(rest)
		switch action {
		case "epoch":
			return "/v1/sessions/{id}/epoch"
		case "telemetry":
			return "/v1/sessions/{id}/telemetry"
		case "result":
			return "/v1/sessions/{id}/result"
		}
		return "/v1/sessions/{id}/" + action
	default:
		return "other"
	}
}

// cutSeg splits the first path segment off a pre-trimmed path.
func cutSeg(p string) (seg, rest string) {
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i+1:]
	}
	return p, ""
}

func fmtFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
