package server_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"rebudget/internal/core"
	"rebudget/internal/server"
	"rebudget/internal/server/client"
	"rebudget/internal/workload"
)

// startDaemon stands up a daemon and a typed client against it.
func startDaemon(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

// offlineEpochs replays the daemon's per-epoch allocation sequence with the
// offline core API: the same mechanism, warm bids threaded identically.
func offlineEpochs(t *testing.T, alloc core.Allocator, epochs int, warm bool) [][][]float64 {
	t.Helper()
	bundle, err := workload.Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		t.Fatal(err)
	}
	var seq [][][]float64
	var warmBids [][]float64
	for e := 0; e < epochs; e++ {
		a := alloc
		if warm {
			a = core.WithWarmBids(alloc, warmBids)
			alloc = a
		}
		out, err := a.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			warmBids = out.Bids
		}
		seq = append(seq, out.Allocations)
	}
	return seq
}

func boolPtr(b bool) *bool { return &b }

// TestWarmStartBitIdenticalToOfflineRun is the acceptance criterion: a
// daemon session's per-epoch allocations must equal an offline core run
// that threads warm bids through core.WithWarmBids the same way — no
// serving-layer drift, float for float.
func TestWarmStartBitIdenticalToOfflineRun(t *testing.T) {
	const epochs = 4
	cases := []struct {
		name      string
		mechanism string
		alloc     core.Allocator
		resilient bool
	}{
		{"equalbudget", "equalbudget", core.EqualBudget{}, false},
		{"rebudget", "rebudget-0.05", core.ReBudget{Step: 0.05}, false},
		{"equalbudget-resilient", "equalbudget",
			core.NewResilient(core.EqualBudget{}, core.ResilientConfig{}), true},
	}
	_, c := startDaemon(t, server.Config{})
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := offlineEpochs(t, tc.alloc, epochs, true)
			v, err := c.CreateSession(ctx, server.SessionSpec{
				ID:        "warm-" + tc.name,
				Workload:  server.WorkloadSpec{Fig3: true},
				Mechanism: tc.mechanism,
				Resilient: boolPtr(tc.resilient),
			})
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < epochs; e++ {
				v, err = c.StepEpoch(ctx, v.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(v.Alloc.Allocations, want[e]) {
					t.Fatalf("epoch %d diverged from offline run:\ndaemon  %v\noffline %v",
						e, v.Alloc.Allocations, want[e])
				}
			}
		})
	}
}

// TestColdSessionsMatchFreshSolves: with warm_start disabled every epoch is
// an independent cold solve, bit-identical to a one-shot offline Allocate.
func TestColdSessionsMatchFreshSolves(t *testing.T) {
	_, c := startDaemon(t, server.Config{})
	ctx := context.Background()
	want := offlineEpochs(t, core.EqualBudget{}, 1, false)[0]
	v, err := c.CreateSession(ctx, server.SessionSpec{
		ID:        "cold",
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "equalbudget",
		Resilient: boolPtr(false),
		WarmStart: boolPtr(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		v, err = c.StepEpoch(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Alloc.Allocations, want) {
			t.Fatalf("cold epoch %d differs from a fresh solve", e)
		}
	}
}

func TestClientLifecycle(t *testing.T) {
	_, c := startDaemon(t, server.Config{})
	ctx := context.Background()

	v, err := c.CreateSession(ctx, server.SessionSpec{
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "rebudget-0.05",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatal("daemon did not generate a session id")
	}
	if v.Mode != server.ModeMarket || v.Cores != 8 {
		t.Fatalf("unexpected view: mode %q cores %d", v.Mode, v.Cores)
	}

	list, err := c.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("list = %v", list)
	}

	stepped, err := c.StepEpochs(ctx, v.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stepped.Epochs != 2 || stepped.Alloc == nil {
		t.Fatalf("after 2 epochs: epochs %d alloc %v", stepped.Epochs, stepped.Alloc)
	}
	if stepped.Alloc.MUR == nil || stepped.Alloc.MBR == nil {
		t.Fatal("market outcome missing MUR/MBR")
	}

	if _, err := c.Telemetry(ctx, v.ID, server.TelemetrySpec{
		Players: []server.PlayerTelemetry{{Player: 1, Demand: 1.5}},
	}); err != nil {
		t.Fatal(err)
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sessions != 1 {
		t.Fatalf("healthz = %+v", h)
	}

	if err := c.DeleteSession(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSession(ctx, v.ID); err == nil {
		t.Fatal("deleted session still served")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != 404 {
		t.Fatalf("expected 404 APIError, got %v", err)
	}
}

// TestConcurrent64Sessions is the stress acceptance criterion: at least 64
// sessions served concurrently, allocations bit-identical to offline core
// runs, goroutine count bounded, zero data races (make ci runs this under
// -race).
func TestConcurrent64Sessions(t *testing.T) {
	const sessions = 64
	const epochs = 3
	srv, c := startDaemon(t, server.Config{MaxSessions: sessions + 8})
	ctx := context.Background()
	want := offlineEpochs(t, core.EqualBudget{}, epochs, true)

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("stress-%02d", i)
			spec := server.SessionSpec{
				ID:        id,
				Workload:  server.WorkloadSpec{Fig3: true},
				Mechanism: "equalbudget",
				Resilient: boolPtr(false),
			}
			if err := withBusyRetry(func() error {
				_, err := c.CreateSession(ctx, spec)
				return err
			}); err != nil {
				errs <- fmt.Errorf("%s: create: %w", id, err)
				return
			}
			for e := 0; e < epochs; e++ {
				var v server.SessionView
				if err := withBusyRetry(func() error {
					var err error
					v, err = c.StepEpoch(ctx, id)
					return err
				}); err != nil {
					errs <- fmt.Errorf("%s: epoch %d: %w", id, e, err)
					return
				}
				if !reflect.DeepEqual(v.Alloc.Allocations, want[e]) {
					errs <- fmt.Errorf("%s: epoch %d diverged from offline run", id, e)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := srv.Sessions(); n != sessions {
		t.Fatalf("sessions live = %d, want %d", n, sessions)
	}
	// One goroutine per session plus constant overhead — nothing
	// per-request survives the burst.
	during := runtime.NumGoroutine()
	if during > before+sessions+64 {
		t.Errorf("goroutines ballooned: %d -> %d for %d sessions", before, during, sessions)
	}
	// Deleting every session must release their loop goroutines.
	for i := 0; i < sessions; i++ {
		if err := c.DeleteSession(ctx, fmt.Sprintf("stress-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for runtime.NumGoroutine() > before+16 {
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked after delete: %d -> %d", before, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// withBusyRetry retries a call while the daemon sheds load with 429s.
func withBusyRetry(f func() error) error {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if err = f(); !client.IsBusy(err) {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return err
}

// TestConcurrentCreateTickEvict churns session lifecycle from several
// goroutines against a tiny LRU cap while ticker sessions self-drive
// epochs — the eviction/ticker/request interleavings the race detector
// needs to see.
func TestConcurrentCreateTickEvict(t *testing.T) {
	_, c := startDaemon(t, server.Config{MaxSessions: 8})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 6; k++ {
				id := fmt.Sprintf("churn-%d-%d", g, k)
				spec := server.SessionSpec{
					ID:           id,
					Workload:     server.WorkloadSpec{Fig3: true},
					Mechanism:    "equalbudget",
					Resilient:    boolPtr(false),
					TickerMillis: 5,
				}
				if err := withBusyRetry(func() error {
					_, err := c.CreateSession(ctx, spec)
					return err
				}); err != nil {
					t.Errorf("%s: create: %v", id, err)
					return
				}
				// Race client-driven epochs against the session's own
				// ticker and other goroutines' LRU evictions. Evicted or
				// mid-delete sessions legitimately answer 404/410.
				err := withBusyRetry(func() error {
					_, err := c.StepEpoch(ctx, id)
					return err
				})
				if ae, ok := err.(*client.APIError); err != nil && (!ok || (ae.Status != 404 && ae.Status != 410)) {
					t.Errorf("%s: epoch: %v", id, err)
					return
				}
				if k%2 == 0 {
					if err := c.DeleteSession(ctx, id); err != nil {
						if ae, ok := err.(*client.APIError); !ok || ae.Status != 404 {
							t.Errorf("%s: delete: %v", id, err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDensityOffConfigBitIdentical pins the escape hatch for the density
// machinery: a daemon with striping collapsed to one segment, the timer
// wheel disabled and hibernation off (the pre-density configuration) emits
// exactly the offline allocator outputs — and so does the default density
// configuration, proving striping/wheel/parking change scheduling, never
// arithmetic.
func TestDensityOffConfigBitIdentical(t *testing.T) {
	const epochs = 4
	configs := []struct {
		name string
		cfg  server.Config
	}{
		{"density-off", server.Config{StoreSegments: 1, DisableTickerWheel: true, ParkAfter: -1}},
		{"density-default", server.Config{}},
	}
	want := offlineEpochs(t, core.ReBudget{Step: 0.05}, epochs, true)
	ctx := context.Background()
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			_, c := startDaemon(t, tc.cfg)
			v, err := c.CreateSession(ctx, server.SessionSpec{
				ID:        "pin",
				Workload:  server.WorkloadSpec{Fig3: true},
				Mechanism: "rebudget-0.05",
			})
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < epochs; e++ {
				v, err = c.StepEpoch(ctx, v.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(v.Alloc.Allocations, want[e]) {
					t.Fatalf("%s: epoch %d diverged from offline run:\ndaemon  %v\noffline %v",
						tc.name, e, v.Alloc.Allocations, want[e])
				}
			}
		})
	}
}

// TestClientAPIKeyRoundTrip: the typed client's WithAPIKey speaks the
// daemon's bearer scheme end to end; a keyless client is refused on
// mutations but can still read.
func TestClientAPIKeyRoundTrip(t *testing.T) {
	srv := server.New(server.Config{APIKey: "hunter2",
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	ctx := context.Background()
	spec := server.SessionSpec{ID: "keyed", Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare"}

	bare := client.New(ts.URL)
	if _, err := bare.CreateSession(ctx, spec); err == nil {
		t.Fatal("keyless create succeeded against a keyed daemon")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != 401 {
		t.Fatalf("keyless create: want 401 APIError, got %v", err)
	}

	keyed := client.New(ts.URL, client.WithAPIKey("hunter2"))
	if _, err := keyed.CreateSession(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := keyed.StepEpoch(ctx, "keyed"); err != nil {
		t.Fatal(err)
	}
	// Reads stay open for the keyless client.
	if _, err := bare.GetSession(ctx, "keyed"); err != nil {
		t.Fatalf("keyless read: %v", err)
	}
}
