package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errBusy is dispatcher backpressure: every allocation worker slot is taken
// and the wait queue is at capacity. Surfaced as HTTP 429 + Retry-After.
var errBusy = errors.New("allocation workers saturated")

// dispatcher bounds the allocation work in flight across every session: a
// counting semaphore of worker slots plus a bounded wait queue. Requests
// beyond slots+maxWait are rejected immediately so load spikes turn into
// fast 429s instead of unbounded goroutine pileups; waiters respect their
// request deadline.
type dispatcher struct {
	slots   chan struct{}
	maxWait int64
	waiting atomic.Int64
}

func newDispatcher(workers, maxWait int) *dispatcher {
	return &dispatcher{
		slots:   make(chan struct{}, workers),
		maxWait: int64(maxWait),
	}
}

// acquire claims a worker slot, waiting (bounded) for one to free up.
func (d *dispatcher) acquire(ctx context.Context) error {
	select {
	case d.slots <- struct{}{}:
		return nil
	default:
	}
	if d.waiting.Add(1) > d.maxWait {
		d.waiting.Add(-1)
		return errBusy
	}
	defer d.waiting.Add(-1)
	select {
	case d.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire claims a slot only if one is free right now (ticker epochs).
func (d *dispatcher) tryAcquire() bool {
	select {
	case d.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (d *dispatcher) release() { <-d.slots }

// inFlight reports slots currently claimed (for /metrics).
func (d *dispatcher) inFlight() int { return len(d.slots) }

// queued reports requests currently waiting for a slot (for /metrics).
func (d *dispatcher) queued() int64 { return d.waiting.Load() }
