package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// errBusy is dispatcher backpressure: the wait queue is full — by request
// count or by queued cost depth. Surfaced as HTTP 429 + Retry-After.
var errBusy = errors.New("allocation workers saturated")

// dispatcher bounds the allocation work in flight across every session as a
// weighted semaphore over *cost units*: a request claims units proportional
// to its expected solve cost (a 64-core ReBudget solve is hundreds of times
// an 8-core equal-share touch, and admission prices it that way), not one
// slot per request. Waiters queue strictly FIFO — a long waiter can never
// lose its turn to a fresh arrival — and respect their request deadline.
// Oversize requests (cost > capacity) are clamped to the full capacity, so
// they admit alone once the dispatcher drains rather than deadlocking.
//
// The wait queue is bounded two ways: by request count (maxWait, the
// pre-cost-admission contract) and by queued cost depth (maxQueuedCost), so
// a queue of expensive solves rejects early — the work ahead of a waiter,
// not the number of requests ahead, is what bounds its latency. Requests
// beyond either bound fail fast with errBusy and a Retry-After computed
// from the queue's cost depth.
type dispatcher struct {
	capacity      float64
	maxWait       int
	maxQueuedCost float64

	mu         sync.Mutex
	inUse      float64    // cost units currently claimed
	holding    int        // leases currently held (legacy request-count gauge)
	queue      *list.List // of *waiter, FIFO
	queuedCost float64    // cost units waiting in the queue

	// ewmaHold tracks mean lease hold time (seconds) so Retry-After can
	// translate the queue's cost depth into a drain-time estimate.
	ewmaHold float64
}

// waiter is one queued acquire; ready is closed (under d.mu) when its cost
// has been claimed on its behalf.
type waiter struct {
	cost  float64
	ready chan struct{}
}

// lease is a claimed cost reservation. Exactly one release per lease.
type lease struct {
	d     *dispatcher
	cost  float64
	start time.Time
}

// holdAlpha is the EWMA weight for the lease hold-time estimate.
const holdAlpha = 0.2

// minLeaseCost floors a lease so a zero/negative estimate can't make
// admission free.
const minLeaseCost = 0.25

func newDispatcher(capacity float64, maxWait int, maxQueuedCost float64) *dispatcher {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueuedCost <= 0 {
		maxQueuedCost = 4 * capacity
	}
	return &dispatcher{
		capacity:      capacity,
		maxWait:       maxWait,
		maxQueuedCost: maxQueuedCost,
		queue:         list.New(),
	}
}

// clamp bounds a requested cost to what one lease may claim: at least
// minLeaseCost, at most the whole capacity (the oversize-admits-alone rule).
func (d *dispatcher) clamp(cost float64) float64 {
	if cost < minLeaseCost {
		return minLeaseCost
	}
	if cost > d.capacity {
		return d.capacity
	}
	return cost
}

// acquire claims cost units, waiting FIFO (bounded) for capacity to free up.
func (d *dispatcher) acquire(ctx context.Context, cost float64) (*lease, error) {
	cost = d.clamp(cost)
	d.mu.Lock()
	// Admit immediately only when nobody is queued ahead — otherwise a
	// small fresh request would overtake waiters (the starvation bug this
	// FIFO queue replaced a bare channel select to fix).
	if d.queue.Len() == 0 && d.inUse+cost <= d.capacity {
		d.inUse += cost
		d.holding++
		d.mu.Unlock()
		return &lease{d: d, cost: cost, start: time.Now()}, nil
	}
	if d.queue.Len() >= d.maxWait || d.queuedCost+cost > d.maxQueuedCost {
		d.mu.Unlock()
		return nil, errBusy
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	elem := d.queue.PushBack(w)
	d.queuedCost += cost
	d.mu.Unlock()

	select {
	case <-w.ready:
		return &lease{d: d, cost: cost, start: time.Now()}, nil
	case <-ctx.Done():
		d.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the units back
			// (which may wake the next waiter) and fail the request.
			d.releaseLocked(cost, 0)
			d.mu.Unlock()
		default:
			d.queue.Remove(elem)
			d.queuedCost -= w.cost
			if d.queue.Len() == 0 {
				d.queuedCost = 0
			}
			d.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// tryAcquire claims cost units only if they are free right now AND nobody
// is queued — ticker epochs are background work and must not barge past
// interactive waiters (they drop instead, and are counted).
func (d *dispatcher) tryAcquire(cost float64) (*lease, bool) {
	cost = d.clamp(cost)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.queue.Len() > 0 || d.inUse+cost > d.capacity {
		return nil, false
	}
	d.inUse += cost
	d.holding++
	return &lease{d: d, cost: cost, start: time.Now()}, true
}

// release returns the lease's units and wakes queued waiters in FIFO order.
func (l *lease) release() {
	l.d.mu.Lock()
	l.d.releaseLocked(l.cost, time.Since(l.start))
	l.d.mu.Unlock()
}

// releaseLocked returns cost units, folds the hold time into the drain-rate
// estimate (hold 0 = bookkeeping-only, skip), and grants the queue head(s).
func (d *dispatcher) releaseLocked(cost float64, hold time.Duration) {
	d.inUse -= cost
	d.holding--
	if d.holding == 0 {
		// Mixed-cost adds and subtracts leave float residue; an idle
		// dispatcher must read exactly zero.
		d.inUse = 0
	}
	if hold > 0 {
		s := hold.Seconds()
		if d.ewmaHold == 0 {
			d.ewmaHold = s
		} else {
			d.ewmaHold += holdAlpha * (s - d.ewmaHold)
		}
	}
	// Strict FIFO: grant from the front while the head fits. A big head
	// that doesn't fit blocks the line — that is the no-starvation
	// guarantee for expensive requests, not a defect.
	for d.queue.Len() > 0 {
		w := d.queue.Front().Value.(*waiter)
		if d.inUse+w.cost > d.capacity {
			break
		}
		d.queue.Remove(d.queue.Front())
		d.queuedCost -= w.cost
		d.inUse += w.cost
		d.holding++
		close(w.ready)
	}
	if d.queue.Len() == 0 {
		// Same float-residue snap as inUse: an empty queue reads zero.
		d.queuedCost = 0
	}
}

// retryAfter estimates how long until the current queue drains: the
// outstanding cost (claimed + queued) measured in dispatcher-fulls, each
// taking about one mean lease hold. It reflects the queue's cost *depth* —
// a queue of three 64-core solves hints a far longer retry than three
// equal-share touches, even though both have length three.
func (d *dispatcher) retryAfter() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	hold := d.ewmaHold
	if hold == 0 {
		hold = 0.05 // no completions yet: a plausible allocation-epoch guess
	}
	full := (d.inUse + d.queuedCost) / d.capacity
	return time.Duration(full * hold * float64(time.Second))
}

// inFlightCost reports cost units currently claimed (for /metrics).
func (d *dispatcher) inFlightCost() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inUse
}

// queued reports requests currently waiting (test synchronisation hook; the
// exposition's gauge is queuedCostUnits).
func (d *dispatcher) queued() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(d.queue.Len())
}

// queuedCostUnits reports cost units currently waiting (for /metrics).
func (d *dispatcher) queuedCostUnits() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queuedCost
}
