package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"rebudget/internal/metrics"
)

// engine is what a session goroutine drives: one allocation step per epoch,
// telemetry applied between epochs, and read-side summaries. Implementations
// (marketEngine, simEngine) are single-owner — only the session loop calls
// these methods, so they need no locking.
type engine interface {
	step() error
	telemetry(TelemetrySpec) error
	view() SessionView
	result() (*SimResultView, error)
	healthState() metrics.HealthState
	// cores reports the engine's actual problem size, recalibrating the
	// admission-cost prior once the bundle is built.
	cores() int
	// snapshot fills the engine's durable state into snap. Only called
	// once the session loop has exited, so the single-owner invariant
	// still holds.
	snapshot(snap *SessionSnapshot)
	// restore installs a snapshot's durable state on a freshly built
	// engine (before the session loop starts).
	restore(snap *SessionSnapshot) error
}

// request kinds flowing through a session's mailbox.
const (
	reqEpoch = iota
	reqTelemetry
	reqResult
)

type request struct {
	kind   int
	epochs int           // reqEpoch: how many epochs to step under one slot
	tele   TelemetrySpec // reqTelemetry payload
	reply  chan response // buffered(1); the loop never blocks replying
}

type response struct {
	view   SessionView
	result *SimResultView
	err    error
}

var (
	// errSessionClosed is returned to requests caught in the mailbox when
	// the session stops (evicted or deleted) — surfaced as HTTP 410.
	errSessionClosed = errors.New("session closed")
	// errMailboxFull is per-session backpressure: the session's bounded
	// mailbox is at capacity — surfaced as HTTP 429.
	errMailboxFull = errors.New("session mailbox full")
)

// session owns one engine behind a bounded mailbox served by a dedicated
// goroutine — the concurrency unit of the daemon. All engine access is
// serialised through the loop; handlers read the cached view under mu.
type session struct {
	id        string
	mode      string
	mechanism string
	category  string
	created   time.Time
	spec      SessionSpec // retained for snapshots

	eng  engine
	disp *dispatcher
	met  *srvMetrics

	// cost is the session's EWMA admission-cost estimate; weighted is
	// false under request-count admission (the A/B control), where every
	// request spends exactly one unit regardless of measured cost.
	cost     *costEstimator
	weighted bool

	reqs     chan *request
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	lastUsed time.Time
	epochs   int64
	cached   SessionView
	lastErr  string
	health   metrics.HealthState

	// Token bucket for per-session rate limiting (nil tokensPerSec
	// disables). Epoch requests spend one token per epoch; refill is lazy
	// on each spend, under mu.
	tokensPerSec float64
	tokenBurst   float64
	tokens       float64
	tokenStamp   time.Time
}

// newSession wraps an engine and starts its loop. tick > 0 additionally
// drives epochs from a server-side ticker at that period. rps > 0 arms the
// per-session token bucket (burst tokens available immediately).
func newSession(id string, spec SessionSpec, eng engine, est *costEstimator,
	weighted bool, disp *dispatcher, met *srvMetrics, mailbox int,
	rps, burst float64, epochs int64, now time.Time) *session {
	if est == nil {
		est = newCostEstimator(eng.cores())
	}
	s := &session{
		id:        id,
		mode:      spec.mode(),
		mechanism: spec.Mechanism,
		category:  spec.Workload.Category,
		created:   now,
		spec:      spec,
		eng:       eng,
		disp:      disp,
		met:       met,
		cost:      est,
		weighted:  weighted,
		reqs:      make(chan *request, mailbox),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		lastUsed:  now,
		epochs:    epochs,

		tokensPerSec: rps,
		tokenBurst:   burst,
		tokens:       burst,
		tokenStamp:   now,
	}
	s.refresh("")
	go s.loop(time.Duration(spec.TickerMillis) * time.Millisecond)
	return s
}

// spend debits n tokens from the session's rate-limit bucket, reporting
// whether the request may proceed and, if not, how long until the bucket
// holds n tokens again (the Retry-After hint). Unarmed buckets admit
// everything.
func (s *session) spend(n int, now time.Time) (ok bool, retryAfter time.Duration) {
	if s.tokensPerSec <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if dt := now.Sub(s.tokenStamp).Seconds(); dt > 0 {
		s.tokens += dt * s.tokensPerSec
		if s.tokens > s.tokenBurst {
			s.tokens = s.tokenBurst
		}
	}
	s.tokenStamp = now
	need := float64(n)
	if s.tokens >= need {
		s.tokens -= need
		return true, 0
	}
	return false, time.Duration((need - s.tokens) / s.tokensPerSec * float64(time.Second))
}

// epochCost prices an n-epoch request for admission: n × the session's
// EWMA per-epoch estimate under cost admission, a flat 1 under
// request-count admission (the pre-cost contract, kept runnable for A/B).
func (s *session) epochCost(n int) float64 {
	if !s.weighted {
		return 1
	}
	return float64(n) * s.cost.epochCost()
}

// costEstimate reports the per-epoch cost estimate for /metrics.
func (s *session) costEstimate() float64 { return s.cost.epochCost() }

// tokenLevel reports the bucket's current fill for /metrics (-1 when the
// bucket is unarmed).
func (s *session) tokenLevel(now time.Time) float64 {
	if s.tokensPerSec <= 0 {
		return -1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	level := s.tokens + now.Sub(s.tokenStamp).Seconds()*s.tokensPerSec
	if level > s.tokenBurst {
		level = s.tokenBurst
	}
	return level
}

// snapshot captures the session's durable state. It must only be called
// after close() — the loop has exited, so reading the engine off-loop is
// safe.
func (s *session) snapshot(now time.Time) *SessionSnapshot {
	s.mu.Lock()
	snap := &SessionSnapshot{
		Version:   SnapshotVersion,
		ID:        s.id,
		Spec:      s.spec,
		Epochs:    s.epochs,
		Health:    s.health.String(),
		SavedAt:   now,
		EpochCost: s.cost.epochCost(),
	}
	s.mu.Unlock()
	s.eng.snapshot(snap)
	return snap
}

// loop is the session goroutine: it serves mailbox requests, runs ticker
// epochs, and on stop drains queued requests with errSessionClosed.
func (s *session) loop(tick time.Duration) {
	defer close(s.done)
	var tickC <-chan time.Time
	if tick > 0 {
		t := time.NewTicker(tick)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-s.stop:
			for {
				select {
				case req := <-s.reqs:
					req.reply <- response{err: errSessionClosed}
				default:
					return
				}
			}
		case <-tickC:
			s.tickEpoch()
		case req := <-s.reqs:
			s.handle(req)
		}
	}
}

// tickEpoch runs one ticker-driven epoch if a dispatcher slot is free right
// now; a busy dispatcher drops the tick (and counts it) rather than queueing
// unbounded background work behind interactive requests.
func (s *session) tickEpoch() {
	l, ok := s.disp.tryAcquire(s.epochCost(1))
	if !ok {
		s.met.tickerDropped.Add(1)
		return
	}
	defer l.release()
	s.runEpochs(1)
}

// handle serves one mailbox request on the loop goroutine.
func (s *session) handle(req *request) {
	var resp response
	switch req.kind {
	case reqEpoch:
		resp.err = s.runEpochs(req.epochs)
	case reqTelemetry:
		resp.err = s.eng.telemetry(req.tele)
		s.refresh(errString(resp.err))
	case reqResult:
		resp.result, resp.err = s.eng.result()
	}
	resp.view = s.View()
	req.reply <- resp
}

// runEpochs steps the engine n times, refreshing the cached view once.
func (s *session) runEpochs(n int) error {
	var err error
	ran := int64(0)
	for i := 0; i < n; i++ {
		if err = s.eng.step(); err != nil {
			break
		}
		ran++
	}
	s.mu.Lock()
	s.epochs += ran
	s.mu.Unlock()
	s.met.epochsServed.Add(ran)
	s.cost.update(ran)
	s.refresh(errString(err))
	return err
}

// refresh re-renders the cached view from the engine (loop goroutine only)
// and publishes it under mu for concurrent readers.
func (s *session) refresh(lastErr string) {
	v := s.eng.view()
	h := s.eng.healthState()
	s.mu.Lock()
	v.ID = s.id
	v.Tenant = s.spec.Tenant
	v.Mechanism = s.mechanism
	v.Category = s.category
	v.Epochs = s.epochs
	v.Health = h.String()
	v.CreatedAt = s.created
	v.LastUsed = s.lastUsed
	if lastErr != "" {
		s.lastErr = lastErr
	}
	v.LastError = s.lastErr
	s.cached = v
	s.health = h
	s.mu.Unlock()
}

// enqueue submits a request to the session loop and waits for the reply,
// respecting ctx. A full mailbox fails fast with errMailboxFull (per-session
// backpressure) instead of queueing unboundedly. Epoch requests must already
// hold a dispatcher slot.
func (s *session) enqueue(ctx context.Context, req *request) response {
	req.reply = make(chan response, 1)
	select {
	case s.reqs <- req:
	case <-s.stop:
		return response{err: errSessionClosed}
	default:
		return response{err: errMailboxFull}
	}
	select {
	case resp := <-req.reply:
		return resp
	case <-ctx.Done():
		return response{err: ctx.Err()}
	}
}

// View returns the last published snapshot of the session.
func (s *session) View() SessionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cached
	v.LastUsed = s.lastUsed
	return v
}

// Health returns the last published FSM state.
func (s *session) Health() metrics.HealthState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// Epochs returns the measured epochs served so far.
func (s *session) Epochs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// touch records client activity for idle-TTL accounting.
func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastUsed = now
	s.mu.Unlock()
}

// LastUsed returns the idle-TTL clock value.
func (s *session) LastUsed() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed
}

// close stops the loop and waits for it to exit. Safe to call repeatedly
// and from any goroutine.
func (s *session) close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
