package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/metrics"
)

// engine is what a session goroutine drives: one allocation step per epoch,
// telemetry applied between epochs, and read-side summaries. Implementations
// (marketEngine, simEngine) are single-owner — only the session loop calls
// these methods, so they need no locking.
type engine interface {
	step() error
	telemetry(TelemetrySpec) error
	view() SessionView
	result() (*SimResultView, error)
	healthState() metrics.HealthState
	// cores reports the engine's actual problem size, recalibrating the
	// admission-cost prior once the bundle is built.
	cores() int
	// snapshot fills the engine's durable state into snap. Only called
	// once the session loop has exited, so the single-owner invariant
	// still holds.
	snapshot(snap *SessionSnapshot)
	// restore installs a snapshot's durable state on a freshly built
	// engine (before the session loop starts).
	restore(snap *SessionSnapshot) error
}

// request kinds flowing through a session's mailbox.
const (
	reqEpoch = iota
	reqTelemetry
	reqResult
	// reqTick is a timer-wheel nudge: run one ticker epoch. It carries no
	// reply channel — the wheel never waits.
	reqTick
)

type request struct {
	kind   int
	epochs int           // reqEpoch: how many epochs to step under one slot
	tele   TelemetrySpec // reqTelemetry payload
	reply  chan response // buffered(1); the loop never blocks replying
}

// wheelTick is the shared timer-wheel nudge: immutable, reply-less, safe to
// enqueue into any number of mailboxes at once.
var wheelTick = &request{kind: reqTick}

type response struct {
	view   SessionView
	result *SimResultView
	err    error
}

var (
	// errSessionClosed is returned to requests caught in the mailbox when
	// the session stops (evicted or deleted) — surfaced as HTTP 410.
	errSessionClosed = errors.New("session closed")
	// errMailboxFull is per-session backpressure: the session's bounded
	// mailbox is at capacity — surfaced as HTTP 429.
	errMailboxFull = errors.New("session mailbox full")
)

// Session lifecycle states, guarded by lifeMu. Running sessions own a loop
// goroutine; parked (hibernated) sessions own nothing but an in-memory
// snapshot — the server's unpark path rebuilds the engine and loop on the
// next touch; closed is terminal.
const (
	stateRunning = iota
	stateParked
	stateClosed
)

// session owns one engine behind a bounded mailbox served by a dedicated
// goroutine — the concurrency unit of the daemon. All engine access is
// serialised through the loop; handlers read the cached view under mu.
//
// A session can hibernate: park() snapshots the engine into memory, drops
// it, and lets the loop goroutine exit, so an idle resident session costs a
// struct and a snapshot instead of an engine, a goroutine and a timer. The
// stop/done channels are per-run — resume() makes fresh ones — and the
// engine-rebuild half of unparking lives in the server, which owns engine
// construction.
type session struct {
	id        string
	mode      string
	mechanism string
	category  string
	created   time.Time
	spec      SessionSpec // retained for snapshots

	eng  engine // nil while parked; guarded by the lifecycle, not a mutex
	disp *dispatcher
	met  *srvMetrics

	// cost is the session's EWMA admission-cost estimate; weighted is
	// false under request-count admission (the A/B control), where every
	// request spends exactly one unit regardless of measured cost.
	cost     *costEstimator
	weighted bool

	// wheel, when non-nil, drives ticker epochs for this session (tick > 0)
	// instead of a per-session time.Ticker in the loop.
	wheel *timerWheel
	tick  time.Duration

	reqs chan *request

	lifeMu   sync.Mutex  // guards state, stop, done, hib, eng swaps
	state    int
	stop     chan struct{}
	done     chan struct{}
	hib      *SessionSnapshot // in-memory hibernation snapshot while parked
	parkedFl atomic.Bool      // mirror of state == stateParked, for lock-free reads

	mu       sync.Mutex
	lastUsed time.Time
	epochs   int64
	cached   SessionView
	lastErr  string
	health   metrics.HealthState

	// Token bucket for per-session rate limiting (nil tokensPerSec
	// disables). Epoch requests spend one token per epoch; refill is lazy
	// on each spend, under mu.
	tokensPerSec float64
	tokenBurst   float64
	tokens       float64
	tokenStamp   time.Time
}

// newSession wraps an engine and starts its loop. tick > 0 additionally
// drives epochs from the shared timer wheel when one is given, else from a
// per-session server-side ticker at that period. rps > 0 arms the
// per-session token bucket (burst tokens available immediately).
func newSession(id string, spec SessionSpec, eng engine, est *costEstimator,
	weighted bool, disp *dispatcher, met *srvMetrics, wheel *timerWheel,
	mailbox int, rps, burst float64, epochs int64, now time.Time) *session {
	if est == nil {
		est = newCostEstimator(eng.cores())
	}
	s := &session{
		id:        id,
		mode:      spec.mode(),
		mechanism: spec.Mechanism,
		category:  spec.Workload.Category,
		created:   now,
		spec:      spec,
		eng:       eng,
		disp:      disp,
		met:       met,
		cost:      est,
		weighted:  weighted,
		wheel:     wheel,
		tick:      time.Duration(spec.TickerMillis) * time.Millisecond,
		reqs:      make(chan *request, mailbox),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		lastUsed:  now,
		epochs:    epochs,

		tokensPerSec: rps,
		tokenBurst:   burst,
		tokens:       burst,
		tokenStamp:   now,
	}
	s.refresh("")
	if s.wheel != nil && s.tick > 0 {
		s.wheel.schedule(s, s.tick)
	}
	go s.loop(s.tick, s.stop, s.done)
	return s
}

// spend debits n tokens from the session's rate-limit bucket, reporting
// whether the request may proceed and, if not, how long until the bucket
// holds n tokens again (the Retry-After hint). Unarmed buckets admit
// everything.
func (s *session) spend(n int, now time.Time) (ok bool, retryAfter time.Duration) {
	if s.tokensPerSec <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if dt := now.Sub(s.tokenStamp).Seconds(); dt > 0 {
		s.tokens += dt * s.tokensPerSec
		if s.tokens > s.tokenBurst {
			s.tokens = s.tokenBurst
		}
	}
	s.tokenStamp = now
	need := float64(n)
	if s.tokens >= need {
		s.tokens -= need
		return true, 0
	}
	return false, time.Duration((need - s.tokens) / s.tokensPerSec * float64(time.Second))
}

// epochCost prices an n-epoch request for admission: n × the session's
// EWMA per-epoch estimate under cost admission, a flat 1 under
// request-count admission (the pre-cost contract, kept runnable for A/B).
func (s *session) epochCost(n int) float64 {
	if !s.weighted {
		return 1
	}
	return float64(n) * s.cost.epochCost()
}

// costEstimate reports the per-epoch cost estimate for /metrics.
func (s *session) costEstimate() float64 { return s.cost.epochCost() }

// tokenLevel reports the bucket's current fill for /metrics (-1 when the
// bucket is unarmed).
func (s *session) tokenLevel(now time.Time) float64 {
	if s.tokensPerSec <= 0 {
		return -1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	level := s.tokens + now.Sub(s.tokenStamp).Seconds()*s.tokensPerSec
	if level > s.tokenBurst {
		level = s.tokenBurst
	}
	return level
}

// snapshot captures the session's durable state. It must only be called
// after close() or park() — the loop has exited, so reading the engine
// off-loop is safe. A hibernating session already holds its snapshot in
// memory and hands that back.
func (s *session) snapshot(now time.Time) *SessionSnapshot {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	return s.snapshotLocked(now)
}

func (s *session) snapshotLocked(now time.Time) *SessionSnapshot {
	if s.hib != nil {
		s.hib.SavedAt = now
		return s.hib
	}
	s.mu.Lock()
	snap := &SessionSnapshot{
		Version:   SnapshotVersion,
		ID:        s.id,
		Spec:      s.spec,
		Epochs:    s.epochs,
		Health:    s.health.String(),
		SavedAt:   now,
		EpochCost: s.cost.epochCost(),
	}
	s.mu.Unlock()
	s.eng.snapshot(snap)
	return snap
}

// loop is the session goroutine: it serves mailbox requests, runs ticker
// epochs (its own time.Ticker only on the wheel-off path), and on stop
// drains queued requests with errSessionClosed. The stop/done channels are
// passed in because they are per-run: a parked session's next run gets
// fresh ones.
func (s *session) loop(tick time.Duration, stop, done chan struct{}) {
	defer close(done)
	var tickC <-chan time.Time
	if tick > 0 && s.wheel == nil {
		t := time.NewTicker(tick)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-stop:
			for {
				select {
				case req := <-s.reqs:
					if req.reply != nil {
						req.reply <- response{err: errSessionClosed}
					}
				default:
					return
				}
			}
		case <-tickC:
			s.tickEpoch()
		case req := <-s.reqs:
			s.handle(req)
		}
	}
}

// tickEpoch runs one ticker-driven epoch if a dispatcher slot is free right
// now; a busy dispatcher drops the tick (and counts it) rather than queueing
// unbounded background work behind interactive requests.
func (s *session) tickEpoch() {
	l, ok := s.disp.tryAcquire(s.epochCost(1))
	if !ok {
		s.met.tickerDropped.Add(1)
		return
	}
	defer l.release()
	s.runEpochs(1)
}

// deliverTick is the timer wheel's fire path: a non-blocking nudge into the
// mailbox. A full mailbox drops the tick (counted), mirroring the old
// ticker's behaviour under backpressure; a stopped session ignores it.
func (s *session) deliverTick() {
	select {
	case s.reqs <- wheelTick:
	default:
		s.met.tickerDropped.Add(1)
	}
}

// handle serves one mailbox request on the loop goroutine.
func (s *session) handle(req *request) {
	if req.kind == reqTick {
		s.tickEpoch()
		return
	}
	var resp response
	switch req.kind {
	case reqEpoch:
		resp.err = s.runEpochs(req.epochs)
	case reqTelemetry:
		resp.err = s.eng.telemetry(req.tele)
		s.refresh(errString(resp.err))
	case reqResult:
		resp.result, resp.err = s.eng.result()
	}
	resp.view = s.View()
	req.reply <- resp
}

// runEpochs steps the engine n times, refreshing the cached view once.
func (s *session) runEpochs(n int) error {
	var err error
	ran := int64(0)
	for i := 0; i < n; i++ {
		if err = s.eng.step(); err != nil {
			break
		}
		ran++
	}
	s.mu.Lock()
	s.epochs += ran
	s.mu.Unlock()
	s.met.epochsServed.Add(ran)
	s.cost.update(ran)
	s.refresh(errString(err))
	return err
}

// refresh re-renders the cached view from the engine (loop goroutine only,
// or with the loop stopped) and publishes it under mu for concurrent readers.
func (s *session) refresh(lastErr string) {
	v := s.eng.view()
	h := s.eng.healthState()
	s.mu.Lock()
	v.ID = s.id
	v.Tenant = s.spec.Tenant
	v.Mechanism = s.mechanism
	v.Category = s.category
	v.Epochs = s.epochs
	v.Health = h.String()
	v.CreatedAt = s.created
	v.LastUsed = s.lastUsed
	if lastErr != "" {
		s.lastErr = lastErr
	}
	v.LastError = s.lastErr
	s.cached = v
	s.health = h
	s.mu.Unlock()
}

// enqueue submits a request to the session loop and waits for the reply,
// respecting ctx. A full mailbox fails fast with errMailboxFull (per-session
// backpressure) instead of queueing unboundedly. Epoch requests must already
// hold a dispatcher slot, and parked sessions must be unparked first
// (Server.ensureRunning) — a request racing a park sees errSessionClosed,
// exactly like one racing an idle eviction.
func (s *session) enqueue(ctx context.Context, req *request) response {
	req.reply = make(chan response, 1)
	s.lifeMu.Lock()
	if s.state != stateRunning {
		s.lifeMu.Unlock()
		return response{err: errSessionClosed}
	}
	stop := s.stop
	s.lifeMu.Unlock()
	select {
	case s.reqs <- req:
	case <-stop:
		return response{err: errSessionClosed}
	default:
		return response{err: errMailboxFull}
	}
	select {
	case resp := <-req.reply:
		return resp
	case <-ctx.Done():
		return response{err: ctx.Err()}
	}
}

// View returns the last published snapshot of the session.
func (s *session) View() SessionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cached
	v.LastUsed = s.lastUsed
	return v
}

// Health returns the last published FSM state.
func (s *session) Health() metrics.HealthState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// Epochs returns the measured epochs served so far.
func (s *session) Epochs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// touch records client activity for idle-TTL and hibernation accounting.
func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastUsed = now
	s.mu.Unlock()
}

// LastUsed returns the idle-TTL clock value.
func (s *session) LastUsed() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed
}

// isParked reports whether the session is hibernating (lock-free; the flag
// mirrors state == stateParked).
func (s *session) isParked() bool { return s.parkedFl.Load() }

// park hibernates a running session: the loop goroutine exits, the engine's
// durable state moves into an in-memory snapshot (the same bytes the retire
// path would persist), and the engine is dropped for the GC. minIdle > 0
// re-checks freshness under the lifecycle lock so a touch that raced the
// sweep aborts the park; pass 0 to force. Reports whether the session is now
// parked by this call.
func (s *session) park(now time.Time, minIdle time.Duration) bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.state != stateRunning {
		return false
	}
	if minIdle > 0 && now.Sub(s.LastUsed()) < minIdle {
		return false
	}
	if s.wheel != nil {
		s.wheel.remove(s)
	}
	close(s.stop)
	<-s.done
	s.hib = s.snapshotLocked(now)
	s.eng = nil
	s.state = stateParked
	s.parkedFl.Store(true)
	return true
}

// resume installs a freshly rebuilt engine on a parked session and restarts
// its loop. Caller must hold lifeMu (Server.ensureRunning does) and have
// restored the engine from s.hib.
func (s *session) resume(eng engine) {
	s.eng = eng
	s.hib = nil
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.state = stateRunning
	s.parkedFl.Store(false)
	// Re-render the cached view before the loop starts — the engine is
	// still single-owner here.
	s.refresh("")
	if s.wheel != nil && s.tick > 0 {
		s.wheel.schedule(s, s.tick)
	}
	go s.loop(s.tick, s.stop, s.done)
}

// close stops the loop (if running) and waits for it to exit. Safe to call
// repeatedly and from any goroutine; closing a parked session just marks it
// terminal — there is no loop to stop.
func (s *session) close() {
	if s.wheel != nil {
		s.wheel.remove(s)
	}
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.state == stateRunning {
		close(s.stop)
		<-s.done
	}
	s.state = stateClosed
	s.parkedFl.Store(false)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
