package server

import (
	"sync"
	"time"
)

// wheelSlots is the wheel circumference. With the default 20ms granularity
// one revolution covers ~5s; ticker periods beyond that park in their slot
// with a rotation count and are only touched once per revolution.
const wheelSlots = 256

// timerWheel drives every ticker session from ONE goroutine and ONE
// time.Ticker, replacing the per-session time.Ticker the loop used to own —
// the second half of making 100k resident-but-idle sessions cost ~0 timers.
// It is a coarse timing wheel: a circle of wheelSlots buckets advanced every
// granularity tick, where an entry due more than one revolution out carries
// a rotation count (the collapsed upper wheel of a hierarchical design —
// entries with long periods are touched once per revolution, not per tick).
// Periods are quantised UP to the granularity, so a 5ms ticker under a 20ms
// wheel fires every 20ms; density is the trade, and the wheel-off
// configuration (Config.DisableTickerWheel) keeps the exact per-session
// time.Ticker behaviour for anything that needs it.
//
// Fires are delivered through the session mailbox (session.deliverTick), so
// the engine's single-owner invariant holds: the wheel goroutine never
// touches an engine, it just nudges loops. A full mailbox drops the tick
// (counted), exactly like the old ticker under dispatcher backpressure.
type timerWheel struct {
	gran time.Duration

	mu    sync.Mutex
	cur   int // slot index last advanced to
	slots [wheelSlots]map[*session]*wheelEntry
	ents  map[*session]*wheelEntry

	stop chan struct{}
	done chan struct{}
}

type wheelEntry struct {
	periodTicks int // fire every this many granularity ticks (>= 1)
	rotations   int // full revolutions left before the entry is due
	slot        int // which bucket the entry currently sits in
}

func newTimerWheel(gran time.Duration) *timerWheel {
	if gran <= 0 {
		gran = 20 * time.Millisecond
	}
	w := &timerWheel{
		gran: gran,
		ents: make(map[*session]*wheelEntry),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w
}

func (w *timerWheel) run() {
	defer close(w.done)
	t := time.NewTicker(w.gran)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.advance()
		}
	}
}

// advance moves the cursor one slot and fires everything due there. Delivery
// happens outside the lock — deliverTick is non-blocking, but schedule and
// remove must never wait behind a slot scan.
func (w *timerWheel) advance() {
	w.mu.Lock()
	w.cur = (w.cur + 1) % wheelSlots
	slot := w.slots[w.cur]
	var due []*session
	for s, e := range slot {
		if e.rotations > 0 {
			e.rotations--
			continue
		}
		due = append(due, s)
		delete(slot, s)
		w.placeLocked(s, e, e.periodTicks)
	}
	w.mu.Unlock()
	for _, s := range due {
		s.deliverTick()
	}
}

// placeLocked files an entry `after` granularity ticks from the cursor.
func (w *timerWheel) placeLocked(s *session, e *wheelEntry, after int) {
	if after < 1 {
		after = 1
	}
	e.slot = (w.cur + after) % wheelSlots
	e.rotations = after / wheelSlots
	if w.slots[e.slot] == nil {
		w.slots[e.slot] = make(map[*session]*wheelEntry)
	}
	w.slots[e.slot][s] = e
}

// schedule registers a session to fire every period (quantised up to the
// wheel granularity). Re-scheduling an already-registered session is a no-op.
func (w *timerWheel) schedule(s *session, period time.Duration) {
	ticks := int((period + w.gran - 1) / w.gran)
	if ticks < 1 {
		ticks = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.ents[s]; ok {
		return
	}
	e := &wheelEntry{periodTicks: ticks}
	w.ents[s] = e
	w.placeLocked(s, e, ticks)
}

// remove deregisters a session (idempotent). After remove returns, the wheel
// will not deliver further ticks to it — at most one fire already past the
// lock is in flight, and that lands harmlessly in the mailbox.
func (w *timerWheel) remove(s *session) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.ents[s]
	if !ok {
		return
	}
	delete(w.ents, s)
	delete(w.slots[e.slot], s)
}

// size reports the registered-session count (for /metrics and tests).
func (w *timerWheel) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.ents)
}

func (w *timerWheel) close() {
	close(w.stop)
	<-w.done
}
