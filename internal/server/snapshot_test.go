package server_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// startDaemonWith stands up a daemon with a snapshot store and a typed
// client against it, returning both plus a shutdown func that drains the
// daemon (writing snapshots) without tearing down the test.
func startDaemonWith(t *testing.T, cfg server.Config) (*server.Server, *client.Client, func()) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	closed := false
	shutdown := func() {
		if !closed {
			closed = true
			ts.Close()
			srv.Close()
		}
	}
	t.Cleanup(shutdown)
	return srv, client.New(ts.URL), shutdown
}

func fileStore(t *testing.T) (*server.FileSnapshotStore, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := server.NewFileSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

func TestFileSnapshotStoreRoundTrip(t *testing.T) {
	st, _ := fileStore(t)
	snap := &server.SessionSnapshot{
		Version: server.SnapshotVersion,
		ID:      "rt-1",
		Spec:    server.SessionSpec{Mechanism: "equalshare", Workload: server.WorkloadSpec{Fig3: true}},
		Epochs:  7,
		Health:  "healthy",
		SavedAt: time.Now().UTC(),
		Market:  &server.MarketSnapshot{WarmBids: [][]float64{{1, 2}, {3, 4}}, Demand: []float64{1, 2}, Weights: []float64{1, 1}},
	}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("rt-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Epochs != 7 || !reflect.DeepEqual(got.Market.WarmBids, snap.Market.WarmBids) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if err := st.Delete("rt-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("rt-1"); err == nil {
		t.Fatal("load after delete should fail")
	}
	// Deleting twice is fine.
	if err := st.Delete("rt-1"); err != nil {
		t.Fatal(err)
	}
}

// Corrupt, truncated, wrong-version, and mismatched-id snapshot files must
// all come back as ErrNoSnapshot — a cold start, never a serving error.
func TestFileSnapshotStoreUnusableFiles(t *testing.T) {
	st, dir := fileStore(t)
	cases := map[string]string{
		"garbage":   `{{{{not json`,
		"truncated": `{"version":1,"id":"truncated","spec"`,
		"wrongver":  `{"version":99,"id":"wrongver"}`,
		"mismatch":  `{"version":1,"id":"other","epochs":1}`,
		"empty":     ``,
	}
	for id, content := range cases {
		if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Load(id); err == nil {
			t.Fatalf("%s: load should fail", id)
		} else if !errors.Is(err, server.ErrNoSnapshot) {
			t.Fatalf("%s: want ErrNoSnapshot, got %v", id, err)
		}
	}
	// An id that cannot be a session id never hits the filesystem.
	if _, err := st.Load("../escape"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("path-escape id: want ErrNoSnapshot, got %v", err)
	}
}

// A market session evicted to a snapshot and rehydrated must continue
// bit-identically to a session that was never interrupted — same epoch
// allocations, same utilities — and its first post-restore equilibrium
// must be warm (strictly fewer rounds than a cold solve).
func TestMarketSnapshotRehydrateBitIdentical(t *testing.T) {
	spec := server.SessionSpec{
		ID:        "mkt",
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "rebudget-0.05",
	}
	tele := server.TelemetrySpec{Players: []server.PlayerTelemetry{{Player: 0, Demand: 2}}}
	ctx := context.Background()
	const preEpochs, postEpochs = 3, 3

	// Reference: one uninterrupted daemon run.
	_, ref, _ := startDaemonWith(t, server.Config{})
	if _, err := ref.CreateSession(ctx, spec); err != nil {
		t.Fatal(err)
	}
	var want []server.SessionView
	for e := 0; e < preEpochs; e++ {
		v, err := ref.StepEpoch(ctx, "mkt")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	if _, err := ref.Telemetry(ctx, "mkt", tele); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < postEpochs; e++ {
		v, err := ref.StepEpoch(ctx, "mkt")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}

	// Interrupted: same prefix on daemon A, drain (snapshot), resume on a
	// fresh daemon B sharing the store.
	st, _ := fileStore(t)
	_, a, shutdownA := startDaemonWith(t, server.Config{Snapshots: st})
	if _, err := a.CreateSession(ctx, spec); err != nil {
		t.Fatal(err)
	}
	var got []server.SessionView
	for e := 0; e < preEpochs; e++ {
		v, err := a.StepEpoch(ctx, "mkt")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if _, err := a.Telemetry(ctx, "mkt", tele); err != nil {
		t.Fatal(err)
	}
	shutdownA()

	_, b, _ := startDaemonWith(t, server.Config{Snapshots: st})
	v, err := b.GetSession(ctx, "mkt") // lazy rehydrate on first touch
	if err != nil {
		t.Fatalf("rehydrate: %v", err)
	}
	if v.Epochs != preEpochs {
		t.Fatalf("rehydrated session reports %d epochs, want %d", v.Epochs, preEpochs)
	}
	for e := 0; e < postEpochs; e++ {
		v, err := b.StepEpoch(ctx, "mkt")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}

	for i := range want {
		wa, ga := want[i].Alloc, got[i].Alloc
		if wa == nil || ga == nil {
			t.Fatalf("epoch %d: missing allocation", i)
		}
		if !reflect.DeepEqual(wa.Allocations, ga.Allocations) {
			t.Fatalf("epoch %d allocations diverge:\nuninterrupted %v\nrehydrated    %v",
				i, wa.Allocations, ga.Allocations)
		}
		if !reflect.DeepEqual(wa.Utilities, ga.Utilities) || wa.Iterations != ga.Iterations {
			t.Fatalf("epoch %d view diverges (iterations %d vs %d)", i, wa.Iterations, ga.Iterations)
		}
	}

	// Warm resume: the first post-restore epoch re-converged from the
	// snapshot's bids, so it must cost strictly fewer rounds than the same
	// session's cold first epoch.
	coldRounds := want[0].Alloc.Iterations
	warmRounds := got[preEpochs].Alloc.Iterations
	if warmRounds >= coldRounds {
		t.Fatalf("post-restore equilibrium not warm: %d rounds, cold solve took %d", warmRounds, coldRounds)
	}
}

// A sim session replayed from its snapshot (deterministic epochs + the
// context-switch journal) must match the uninterrupted run bit-for-bit.
func TestSimSnapshotRehydrateBitIdentical(t *testing.T) {
	spec := server.SessionSpec{
		ID:        "sim",
		Mode:      server.ModeSim,
		Workload:  server.WorkloadSpec{Category: "CCPP", Seed: 7},
		Mechanism: "rebudget-0.05",
	}
	sw := server.TelemetrySpec{Switches: []server.SwitchSpec{{Core: 3, App: "mcf"}}}
	ctx := context.Background()

	run := func(c *client.Client, pre bool) {
		t.Helper()
		if pre {
			if _, err := c.CreateSession(ctx, spec); err != nil {
				t.Fatal(err)
			}
			if _, err := c.StepEpochs(ctx, "sim", 4); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Telemetry(ctx, "sim", sw); err != nil {
				t.Fatal(err)
			}
			if _, err := c.StepEpochs(ctx, "sim", 2); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := c.StepEpochs(ctx, "sim", 4); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The rehydrate on first touch replays every sim epoch inside one
	// request; under -race on a slow host that can outrun the default
	// 10s request deadline, so give these daemons a generous one — this
	// test pins bit-identity, not latency.
	slow := server.Config{RequestTimeout: 2 * time.Minute}
	_, ref, _ := startDaemonWith(t, slow)
	run(ref, true)
	run(ref, false)
	want, err := ref.Result(ctx, "sim")
	if err != nil {
		t.Fatal(err)
	}
	wantView, err := ref.GetSession(ctx, "sim")
	if err != nil {
		t.Fatal(err)
	}

	st, _ := fileStore(t)
	slowSnap := slow
	slowSnap.Snapshots = st
	_, a, shutdownA := startDaemonWith(t, slowSnap)
	run(a, true)
	shutdownA()

	_, b, _ := startDaemonWith(t, slowSnap)
	v, err := b.GetSession(ctx, "sim")
	if err != nil {
		t.Fatalf("rehydrate: %v", err)
	}
	if v.Sim == nil || v.Sim.Epochs != 6 {
		t.Fatalf("rehydrated sim session not replayed to 6 epochs: %+v", v.Sim)
	}
	run(b, false)
	got, err := b.Result(ctx, "sim")
	if err != nil {
		t.Fatal(err)
	}
	gotView, err := b.GetSession(ctx, "sim")
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want.NormPerf, got.NormPerf) ||
		want.WeightedSpeedup != got.WeightedSpeedup ||
		want.EnvyFreeness != got.EnvyFreeness ||
		want.AvgPowerW != got.AvgPowerW ||
		want.MaxTempC != got.MaxTempC {
		t.Fatalf("sim results diverge:\nuninterrupted %+v\nrehydrated    %+v", want, got)
	}
	if !reflect.DeepEqual(wantView.Sim.FrequenciesGHz, gotView.Sim.FrequenciesGHz) ||
		!reflect.DeepEqual(wantView.Sim.PowerBudgetsW, gotView.Sim.PowerBudgetsW) ||
		!reflect.DeepEqual(wantView.Alloc.Allocations, gotView.Alloc.Allocations) {
		t.Fatalf("sim hardware state diverges after rehydrate")
	}
}

// A corrupt snapshot file degrades to a cold start: the touch answers 404
// (so the client recreates) instead of erroring, and a fresh create under
// the same id works.
func TestCorruptSnapshotColdStart(t *testing.T) {
	st, dir := fileStore(t)
	_, c, _ := startDaemonWith(t, server.Config{Snapshots: st})
	ctx := context.Background()

	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte(`{"version":1,"id":"broken"`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := c.GetSession(ctx, "broken")
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != 404 {
		t.Fatalf("corrupt snapshot should 404 (cold start), got %v", err)
	}
	if _, err := c.CreateSession(ctx, server.SessionSpec{
		ID: "broken", Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
	}); err != nil {
		t.Fatalf("cold re-create after corrupt snapshot: %v", err)
	}
	if _, err := c.StepEpoch(ctx, "broken"); err != nil {
		t.Fatal(err)
	}
}

// DELETE removes the durable snapshot too — nothing resurrects a deleted
// session, whether it was resident or only on disk.
func TestDeleteRemovesSnapshot(t *testing.T) {
	st, _ := fileStore(t)
	ctx := context.Background()
	spec := server.SessionSpec{ID: "gone", Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare"}

	_, a, shutdownA := startDaemonWith(t, server.Config{Snapshots: st})
	if _, err := a.CreateSession(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StepEpoch(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	shutdownA() // drain → snapshot written

	_, b, _ := startDaemonWith(t, server.Config{Snapshots: st})
	// Delete while non-resident: the snapshot itself is the session.
	if err := b.DeleteSession(ctx, "gone"); err != nil {
		t.Fatalf("delete of snapshotted session: %v", err)
	}
	if _, err := b.GetSession(ctx, "gone"); err == nil {
		t.Fatal("deleted session came back from the dead")
	}
}

// Version-1 files (no checksum) must stay loadable: a mixed-version tier
// shares one snapshot directory during a rolling upgrade.
func TestFileSnapshotStoreReadsV1(t *testing.T) {
	st, dir := fileStore(t)
	v1 := `{"version":1,"id":"old","spec":{"workload":{"fig3":true},"mechanism":"equalshare"},"epochs":4,"health":"healthy","saved_at":"2026-01-01T00:00:00Z"}`
	if err := os.WriteFile(filepath.Join(dir, "old.json"), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("old")
	if err != nil {
		t.Fatalf("v1 snapshot should load: %v", err)
	}
	if got.Epochs != 4 || got.Checksum != "" {
		t.Fatalf("v1 load mismatch: %+v", got)
	}
}

// A saved v2 snapshot carries a checksum, and any single flipped bit in the
// stored bytes — even one that keeps the JSON parseable — lands on
// ErrNoSnapshot, deterministically a cold start.
func TestFileSnapshotStoreChecksumCatchesBitFlips(t *testing.T) {
	st, _ := fileStore(t)
	snap := &server.SessionSnapshot{
		Version: server.SnapshotVersion,
		ID:      "bits",
		Spec:    server.SessionSpec{Mechanism: "equalshare", Workload: server.WorkloadSpec{Fig3: true}},
		Epochs:  9,
		Health:  "healthy",
		SavedAt: time.Now().UTC(),
		Market:  &server.MarketSnapshot{Demand: []float64{1.5, 2.5}},
	}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := st.Load("bits")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Checksum == "" {
		t.Fatal("v2 snapshot saved without a checksum")
	}
	raw, err := st.LoadRaw("bits")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the demand vector: still valid JSON, wrong data.
	tampered := []byte(strings.Replace(string(raw), "1.5", "1.6", 1))
	if string(tampered) == string(raw) {
		t.Fatal("tamper target not found in raw snapshot")
	}
	if err := st.SaveRaw("bits", tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("bits"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("tampered snapshot: want ErrNoSnapshot, got %v", err)
	}
}

// SaveRaw/LoadRaw round-trip bytes verbatim — the chaos layer depends on
// this seam to model torn writes against the real file.
func TestFileSnapshotStoreRawRoundTrip(t *testing.T) {
	st, _ := fileStore(t)
	data := []byte(`{"version":2,"id":"raw","half`)
	if err := st.SaveRaw("raw", data); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadRaw("raw")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("raw round-trip mismatch: %q", got)
	}
	if _, err := st.Load("raw"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("torn raw file: want ErrNoSnapshot, got %v", err)
	}
}
