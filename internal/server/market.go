package server

import (
	"fmt"
	"time"

	"rebudget/internal/core"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/workload"
)

// marketEngine serves analytic-market sessions: each epoch re-runs the
// mechanism on the current (telemetry-adjusted) players, warm-starting the
// equilibrium from the previous epoch's final bids. It is driven only from
// the owning session's goroutine, so it needs no locking of its own.
type marketEngine struct {
	names    []string
	players  []core.PlayerSpec
	capacity []float64
	demand   []float64 // per-player utility multipliers, telemetry-updated

	alloc core.Allocator
	resil *core.Resilient // nil when the session opted out of hardening
	warm  bool

	warmBids [][]float64
	last     *core.Outcome
	lastEF   float64
}

// scaledUtility multiplies a profiled utility surface by a live demand
// factor — the serving layer's stand-in for a phase change reported by the
// tenant's monitors. The factor pointer is written only between epochs by
// the session goroutine, so solves never observe a torn update; scaling by
// the default 1.0 is bit-transparent.
type scaledUtility struct {
	inner market.Utility
	scale *float64
}

// Value implements market.Utility.
func (u scaledUtility) Value(alloc []float64) float64 {
	return *u.scale * u.inner.Value(alloc)
}

// newMarketEngine profiles the bundle analytically and assembles the
// session's hardened allocator. The observer receives every equilibrium's
// convergence cost (the server-wide profile).
func newMarketEngine(spec SessionSpec, bundle workload.Bundle,
	observer func(rounds, bidSteps int, wall time.Duration)) (*marketEngine, error) {
	var setup *workload.Setup
	var err error
	if spec.Bandwidth {
		setup, err = workload.NewSetupWithBandwidth(bundle)
	} else {
		setup, err = workload.NewSetup(bundle)
	}
	if err != nil {
		return nil, err
	}
	mech, err := parseMechanism(spec.Mechanism, spec.MinEnvyFreeness)
	if err != nil {
		return nil, err
	}
	e := &marketEngine{
		players:  setup.Players,
		capacity: setup.Capacity,
		demand:   make([]float64, len(setup.Players)),
		warm:     spec.warmStart(),
	}
	for i := range e.players {
		e.names = append(e.names, e.players[i].Name)
		e.demand[i] = 1
		e.players[i].Utility = scaledUtility{inner: e.players[i].Utility, scale: &e.demand[i]}
	}
	alloc := mech
	if spec.resilient() {
		e.resil = core.NewResilient(mech, core.ResilientConfig{})
		alloc = e.resil
	}
	e.alloc = core.WithMarketConfig(alloc, func(mc market.Config) market.Config {
		mc.Workers = spec.Workers
		mc.Observer = observer
		return mc
	})
	return e, nil
}

// step runs one allocation epoch.
func (e *marketEngine) step() error {
	a := e.alloc
	if e.warm {
		// Value mechanisms return a warm-seeded copy; Resilient installs
		// the bids in place and returns itself. Either way the handle we
		// keep is the one that allocates.
		a = core.WithWarmBids(a, e.warmBids)
		e.alloc = a
	}
	out, err := a.Allocate(e.capacity, e.players)
	if err != nil {
		return err
	}
	ef, err := out.EnvyFreeness(e.players)
	if err != nil {
		return err
	}
	e.last = out
	e.lastEF = ef
	if e.warm {
		e.warmBids = out.Bids
	}
	return nil
}

// snapshot fills the market side of a session snapshot: the warm bid
// matrix plus the telemetry-adjusted demand/weight vectors. Called only
// after the owning session loop has exited, so the engine is quiescent.
func (e *marketEngine) snapshot(snap *SessionSnapshot) {
	m := &MarketSnapshot{
		Demand:  append([]float64(nil), e.demand...),
		Weights: make([]float64, len(e.players)),
	}
	for i := range e.players {
		m.Weights[i] = e.players[i].BudgetWeight
	}
	if e.warm && e.warmBids != nil {
		m.WarmBids = make([][]float64, len(e.warmBids))
		for i, row := range e.warmBids {
			m.WarmBids[i] = append([]float64(nil), row...)
		}
	}
	snap.Market = m
}

// restore installs a snapshot's durable state on a freshly built engine.
// Vectors of the wrong shape (a snapshot taken against a different bundle)
// are rejected — the restored session must be the same problem or nothing.
func (e *marketEngine) restore(snap *SessionSnapshot) error {
	m := snap.Market
	if m == nil {
		return fmt.Errorf("snapshot for market session has no market state")
	}
	if len(m.Demand) != len(e.players) || len(m.Weights) != len(e.players) {
		return fmt.Errorf("snapshot shape %d players, engine has %d", len(m.Demand), len(e.players))
	}
	copy(e.demand, m.Demand)
	for i := range e.players {
		if m.Weights[i] > 0 {
			e.players[i].BudgetWeight = m.Weights[i]
		}
	}
	if e.warm && len(m.WarmBids) == len(e.players) {
		// The next step threads these through core.WithWarmBids, so the
		// first post-restore equilibrium runs market.FindEquilibriumFrom —
		// the warm resume the snapshot exists for.
		e.warmBids = m.WarmBids
	}
	return nil
}

// telemetry applies per-player monitor updates between epochs.
func (e *marketEngine) telemetry(t TelemetrySpec) error {
	if len(t.Switches) > 0 {
		return fmt.Errorf("market sessions take player telemetry, not context switches")
	}
	for _, pt := range t.Players {
		if pt.Player < 0 || pt.Player >= len(e.players) {
			return fmt.Errorf("player %d out of range [0,%d)", pt.Player, len(e.players))
		}
		if pt.Demand < 0 || pt.Weight < 0 {
			return fmt.Errorf("player %d: negative demand/weight", pt.Player)
		}
		if pt.Demand > 0 {
			e.demand[pt.Player] = pt.Demand
		}
		if pt.Weight > 0 {
			e.players[pt.Player].BudgetWeight = pt.Weight
		}
	}
	return nil
}

// view renders the mode-specific part of the session view.
func (e *marketEngine) view() SessionView {
	v := SessionView{Mode: ModeMarket, Cores: len(e.players)}
	if e.last != nil {
		v.Alloc = allocationView(e.names, e.last, finitePtr(e.lastEF))
	}
	return v
}

// result is sim-only.
func (e *marketEngine) result() (*SimResultView, error) {
	return nil, fmt.Errorf("result is only available for sim sessions")
}

// cores reports the market's player count — the N in the admission-cost
// prior (equilibrium cost scales with N × rounds).
func (e *marketEngine) cores() int { return len(e.players) }

// healthState reports the Resilient wrapper's backoff position (always
// Healthy for unhardened sessions, which fail loudly instead).
func (e *marketEngine) healthState() metrics.HealthState {
	if e.resil == nil {
		return metrics.Healthy
	}
	return e.resil.HealthState()
}

// allocationView converts an outcome for JSON.
func allocationView(names []string, out *core.Outcome, ef *float64) *AllocationView {
	return &AllocationView{
		Players:         names,
		Allocations:     out.Allocations,
		Budgets:         out.Budgets,
		Utilities:       out.Utilities,
		Lambdas:         out.Lambdas,
		MUR:             finitePtr(out.MUR),
		MBR:             finitePtr(out.MBR),
		PoABound:        finitePtr(out.PoABound()),
		EFBound:         finitePtr(out.EFBound()),
		Efficiency:      out.Efficiency(),
		EnvyFreeness:    ef,
		Iterations:      out.Iterations,
		EquilibriumRuns: out.EquilibriumRuns,
		Converged:       out.Converged,
	}
}

// healthView converts pipeline telemetry for JSON.
func healthView(h metrics.Health) HealthView {
	return HealthView{
		State:           h.State.String(),
		AllocAttempts:   h.AllocAttempts,
		AllocFailures:   h.AllocFailures,
		CurveRepairs:    h.CurveRepairs,
		NonConverged:    h.NonConverged,
		PinnedIntervals: h.PinnedIntervals,
		Transitions:     h.Transitions,
	}
}

// equilibriumView converts convergence-cost counters for JSON.
func equilibriumView(s metrics.EquilibriumStats) EquilibriumView {
	return EquilibriumView{
		Runs:        s.Runs,
		Rounds:      s.Rounds,
		BidSteps:    s.BidSteps,
		WallSeconds: s.Wall.Seconds(),
	}
}
