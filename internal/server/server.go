package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// MaxSessions caps resident sessions; the LRU session is evicted to
	// admit a new one past the cap (default 128).
	MaxSessions int
	// StoreSegments stripes the session registry's lock: ids hash onto this
	// many independently locked LRU segments (rounded up to a power of two).
	// 0 auto-sizes from MaxSessions (one segment per 64 sessions, max 64);
	// 1 is the pre-density single-mutex layout with exact global LRU
	// eviction order. With more segments, capacity eviction is per-segment.
	StoreSegments int
	// IdleTTL evicts sessions untouched by any client for this long
	// (default 10m; <0 disables).
	IdleTTL time.Duration
	// ParkAfter hibernates sessions untouched by any client for this long
	// but not yet idle enough to evict: the loop goroutine exits, the
	// engine collapses into an in-memory snapshot, and the next touch
	// rebuilds it warm (bit-identical, via the rehydrate machinery). Ticker
	// sessions never park — they are active by definition. Default 5m;
	// <0 disables. Parking is what lets 100k resident-but-idle sessions
	// cost ~0 goroutines.
	ParkAfter time.Duration
	// DisableTickerWheel reverts ticker-driven sessions (TickerMillis > 0)
	// to one time.Ticker per session loop — the pre-density behaviour, kept
	// for exact tick-period semantics. By default ticker epochs are driven
	// by one shared coarse timer wheel (see WheelGranularity).
	DisableTickerWheel bool
	// WheelGranularity is the shared timer wheel's tick (default 20ms).
	// Ticker periods are quantised up to it.
	WheelGranularity time.Duration
	// PerSessionMetrics re-enables the unbounded per-session-id /metrics
	// series (rebudgetd_session_epochs{id}, _health{id}, _epoch_cost{id},
	// _tokens{id}) for debugging. Off by default: at density those series
	// dominate scrape cost, so the exposition carries a bounded cost
	// histogram + top-K offenders instead.
	PerSessionMetrics bool
	// APIKey, when set, requires `Authorization: Bearer <key>` on every
	// mutating endpoint (create/epoch/evict/telemetry/delete). Reads —
	// /healthz, /metrics, session GETs — stay open for probes and scrapes.
	APIKey string
	// Workers bounds allocation work in flight across all sessions
	// (default GOMAXPROCS).
	Workers int
	// MaxWaiting bounds requests queued for a worker slot; beyond it the
	// daemon answers 429 + Retry-After (default 4×Workers, min 64).
	MaxWaiting int
	// Admission selects how the dispatcher prices requests: AdmissionCost
	// (the default) spends weighted cost units from each session's EWMA
	// estimate, AdmissionCount spends one unit per request regardless of
	// measured cost — the pre-cost contract, kept runnable for A/B
	// comparison (rebudget-loadgen drives both).
	Admission string
	// CostCapacity is the dispatcher's concurrent budget in cost units
	// under AdmissionCost (default 8×Workers: one unit is a cheap 8-core
	// epoch, so each worker slot carries ~8 cheap epochs' worth of
	// admitted work). Ignored under AdmissionCount, where capacity is
	// exactly Workers.
	CostCapacity float64
	// MaxQueuedCost bounds the wait queue by cost depth under
	// AdmissionCost (default 4×CostCapacity): a queue holding a few
	// expensive solves rejects as readily as one holding many cheap
	// touches, because it represents the same wait.
	MaxQueuedCost float64
	// RequestTimeout is the per-request deadline for allocation work
	// (default 10s).
	RequestTimeout time.Duration
	// MailboxDepth is each session's queued-request bound (default 8).
	MailboxDepth int
	// Snapshots, when non-nil, persists session state across evictions and
	// shutdown: evicted/drained sessions are serialized to the store, and a
	// request touching a non-resident id lazily rehydrates it (warm bids,
	// telemetry state, sim replay) instead of answering 404. Sharing one
	// store (e.g. a FileSnapshotStore directory) across shards is what lets
	// the router migrate sessions between backends.
	Snapshots SnapshotStore
	// SessionRPS arms a per-session token bucket: each session may spend at
	// most this many epochs per second (averaged; see SessionBurst), beyond
	// which epoch requests answer 429 with a computed Retry-After. 0
	// disables rate limiting.
	SessionRPS float64
	// SessionBurst is the bucket depth (default 2×SessionRPS, min 1): how
	// many epochs a quiet session may burst before the average rate gates.
	SessionBurst float64
	// Tenancy, when non-nil, arms the hierarchical tenant budget economy:
	// per-tenant cost sub-budgets over the dispatcher's capacity, with
	// epoch-driven lending and bounded reclaim (see internal/tenant and
	// DESIGN.md "Tenant economy"). Must be valid (pre-validate with
	// ParseTenants / tenant.New); New panics on a malformed tree rather
	// than silently serving untenanted.
	Tenancy *TenancyConfig
	// Logger receives structured request/lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
}

// Admission modes.
const (
	// AdmissionCost prices requests by their EWMA cost estimate (default).
	AdmissionCost = "cost"
	// AdmissionCount prices every request at one unit (legacy behaviour,
	// the A/B control).
	AdmissionCount = "count"
)

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 10 * time.Minute
	}
	if c.ParkAfter == 0 {
		c.ParkAfter = 5 * time.Minute
	}
	if c.WheelGranularity <= 0 {
		c.WheelGranularity = 20 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxWaiting <= 0 {
		c.MaxWaiting = 4 * c.Workers
		if c.MaxWaiting < 64 {
			c.MaxWaiting = 64
		}
	}
	if c.Admission != AdmissionCount {
		c.Admission = AdmissionCost
	}
	if c.CostCapacity <= 0 {
		c.CostCapacity = 8 * float64(c.Workers)
	}
	if c.MaxQueuedCost <= 0 {
		c.MaxQueuedCost = 4 * c.CostCapacity
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 8
	}
	if c.SessionRPS > 0 && c.SessionBurst <= 0 {
		c.SessionBurst = 2 * c.SessionRPS
		if c.SessionBurst < 1 {
			c.SessionBurst = 1
		}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the rebudgetd daemon: session registry, dispatcher, metrics and
// the HTTP API. Construct with New, mount Handler, Close when done.
type Server struct {
	cfg   Config
	log   *slog.Logger
	store *store
	disp  *dispatcher
	gov   *tenantGovernor // nil unless Config.Tenancy is set
	met   *srvMetrics
	wheel *timerWheel // nil when Config.DisableTickerWheel
	mux   *http.ServeMux

	started  time.Time
	draining atomic.Bool
	closed   atomic.Bool
	idSeq    atomic.Int64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a server and starts its idle-TTL janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Under count admission every request costs exactly one unit, so
	// capacity Workers and a cost bound equal to the count bound reproduce
	// the pre-cost dispatcher contract bit for bit (modulo FIFO wakes).
	capacity, maxQueued := cfg.CostCapacity, cfg.MaxQueuedCost
	if cfg.Admission == AdmissionCount {
		capacity, maxQueued = float64(cfg.Workers), float64(cfg.MaxWaiting)
	}
	s := &Server{
		cfg:         cfg,
		log:         cfg.Logger,
		store:       newStore(cfg.MaxSessions, cfg.IdleTTL, cfg.StoreSegments),
		disp:        newDispatcher(capacity, cfg.MaxWaiting, maxQueued),
		met:         &srvMetrics{},
		mux:         http.NewServeMux(),
		started:     time.Now(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if !cfg.DisableTickerWheel {
		s.wheel = newTimerWheel(cfg.WheelGranularity)
	}
	if cfg.Tenancy != nil {
		gov, err := newTenantGovernor(*cfg.Tenancy, capacity, s.log)
		if err != nil {
			panic(fmt.Sprintf("server: invalid tenancy config: %v", err))
		}
		s.gov = gov
	}
	s.routes()
	go s.janitor()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/epoch", s.handleEpoch)
	s.mux.HandleFunc("POST /v1/sessions/{id}/evict", s.handleEvict)
	s.mux.HandleFunc("POST /v1/sessions/{id}/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the daemon's HTTP handler (logging + metrics wrapped,
// API-key auth when configured).
func (s *Server) Handler() http.Handler {
	return s.instrument(s.authenticate(s.mux))
}

// authenticate guards mutating endpoints with a bearer API key when
// Config.APIKey is set. Reads stay open: health probes, scrapes, and view
// GETs carry no state-changing power, and the router's probe loop must work
// without credentials. The comparison is constant-time; a miss is a 401
// counted under rejected{reason="auth"}.
func (s *Server) authenticate(next http.Handler) http.Handler {
	if s.cfg.APIKey == "" {
		return next
	}
	expect := []byte("Bearer " + s.cfg.APIKey)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			next.ServeHTTP(w, r)
			return
		}
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, expect) != 1 {
			s.met.rejected.inc(`reason="auth"`)
			writeErr(w, http.StatusUnauthorized, "missing or invalid API key")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// StartDrain flips the daemon into drain mode: /healthz reports 503 so load
// balancers stop routing, and new sessions are refused. Existing sessions
// keep serving until Close.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("draining")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the janitor and closes every session, waiting for their
// goroutines to exit and snapshotting each to the configured store. The
// HTTP listener (owned by the caller) should be shut down first. Close is
// idempotent: a drain path racing a shutdown path must not panic.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.janitorStop)
	<-s.janitorDone
	if s.gov != nil {
		s.gov.close()
	}
	for _, sess := range s.store.drain() {
		s.retire(sess, "drain")
	}
	if s.wheel != nil {
		s.wheel.close()
	}
}

// retire closes an evicted session and, when a snapshot store is
// configured, persists its durable state so the next touch — here or on
// another shard sharing the store — resumes warm. Snapshot failures are
// logged and counted, never fatal: the session is already gone.
func (s *Server) retire(sess *session, reason string) {
	sess.close()
	s.met.evicted.inc(fmt.Sprintf("reason=%q", reason))
	if s.cfg.Snapshots == nil {
		return
	}
	if err := s.cfg.Snapshots.Save(sess.snapshot(time.Now())); err != nil {
		s.met.snapshots.inc(`op="save_error"`)
		s.log.Warn("snapshot save failed", "id", sess.id, "err", err)
		return
	}
	s.met.snapshots.inc(`op="save"`)
	s.log.Info("session snapshotted", "id", sess.id, "reason", reason)
}

// Sessions reports the live session count.
func (s *Server) Sessions() int { return s.store.len() }

// buildEngine constructs a session engine from its spec; a non-nil snap
// additionally restores durable state (warm bids and telemetry for market
// engines, deterministic replay for sim engines). The caller must hold a
// dispatcher lease — construction and replay are allocation-grade work.
// A non-nil est is chained behind the server-wide equilibrium observer so
// every solve the engine runs also feeds the session's cost estimate, then
// recalibrated to the engine's actual core count (construction-time solves
// — sim warmup, replay — are drained so they don't inflate the first
// served epoch's sample).
func (s *Server) buildEngine(spec SessionSpec, snap *SessionSnapshot, est *costEstimator) (engine, error) {
	bundle, err := buildBundle(spec.Workload)
	if err != nil {
		return nil, err
	}
	observer := s.met.eq.Observe
	if est != nil {
		observer = func(rounds, bidSteps int, wall time.Duration) {
			s.met.eq.Observe(rounds, bidSteps, wall)
			est.observe(rounds, bidSteps, wall)
		}
	}
	var eng engine
	switch spec.mode() {
	case ModeSim:
		eng, err = newSimEngine(spec, bundle, observer)
	default:
		eng, err = newMarketEngine(spec, bundle, observer)
	}
	if err != nil {
		return nil, err
	}
	if snap != nil {
		if err := eng.restore(snap); err != nil {
			return nil, err
		}
	}
	if est != nil {
		est.recalibrate(eng.cores())
		est.resetPending()
	}
	return eng, nil
}

// newSession assembles a session around an engine with the server's
// dispatcher, metrics, admission and rate-limit configuration. epochs seeds
// the served-epoch counter (nonzero only on rehydrate).
func (s *Server) newSession(id string, spec SessionSpec, eng engine, est *costEstimator, epochs int64) *session {
	return newSession(id, spec, eng, est, s.cfg.Admission == AdmissionCost,
		s.disp, s.met, s.wheel, s.cfg.MailboxDepth,
		s.cfg.SessionRPS, s.cfg.SessionBurst, epochs, time.Now())
}

// janitor sweeps idle sessions (TTL eviction) and parks idle-but-resident
// ones (hibernation) on a fraction of whichever deadline is shorter.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	var period time.Duration
	if ttl := s.cfg.IdleTTL; ttl > 0 {
		period = ttl / 4
	}
	if pa := s.cfg.ParkAfter; pa > 0 {
		if p := pa / 2; period == 0 || p < period {
			period = p
		}
	}
	if period == 0 {
		<-s.janitorStop
		return
	}
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			for _, sess := range s.store.sweepIdle(now) {
				s.retire(sess, "idle")
				s.log.Info("session evicted", "id", sess.id, "reason", "idle")
			}
			s.parkSweep(now)
		}
	}
}

// parkSweep hibernates sessions idle past ParkAfter but not yet TTL-evicted.
// Ticker sessions are exempt — they self-drive epochs and are never idle by
// design; bound them with rate limits, not hibernation. park() re-checks
// freshness under the lifecycle lock, so a touch racing the sweep wins.
func (s *Server) parkSweep(now time.Time) {
	pa := s.cfg.ParkAfter
	if pa <= 0 {
		return
	}
	for _, sess := range s.store.idleCandidates(now, pa) {
		if sess.isParked() || sess.tick > 0 {
			continue
		}
		if sess.park(now, pa) {
			s.met.parked.Add(1)
			s.log.Info("session parked", "id", sess.id)
		}
	}
}

// ensureRunning wakes a hibernating session: rebuild the engine from the
// in-memory snapshot (the same restore path rehydrate uses, so outputs are
// bit-identical to an uninterrupted run) and restart the loop. Engine
// rebuild is allocation-grade work — it competes for dispatcher capacity at
// the session's measured cost, like rehydrate. No-op for running sessions.
func (s *Server) ensureRunning(ctx context.Context, sess *session) error {
	if !sess.isParked() {
		return nil
	}
	sess.lifeMu.Lock()
	defer sess.lifeMu.Unlock()
	switch sess.state {
	case stateRunning:
		return nil
	case stateClosed:
		return errSessionClosed
	}
	lease, err := s.disp.acquire(ctx, s.admissionCost(sess.cost.epochCost()))
	if err != nil {
		return err
	}
	eng, err := s.buildEngine(sess.hib.Spec, sess.hib, sess.cost)
	lease.release()
	if err != nil {
		return fmt.Errorf("unpark %q: %w", sess.id, err)
	}
	sess.resume(eng)
	s.met.unparked.Add(1)
	s.log.Info("session unparked", "id", sess.id)
	return nil
}

// --- HTTP plumbing ---

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request logging and metrics.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		s.met.observeRequest(route, rec.code, dur)
		s.log.Info("request",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"code", rec.code, "dur_ms", float64(dur.Microseconds())/1000)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	jw, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jw.buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(jw.buf.Bytes())
	putJSONWriter(jw)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: msg})
}

// writeRetryErr answers 429 with a computed Retry-After (whole seconds,
// rounded up, min 1 — the header cannot carry fractions).
func writeRetryErr(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, errorBody{Error: msg})
}

// decodeBody decodes a bounded JSON body into v; an empty body leaves v as
// the zero value.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	// Fast path: bodyless requests (epoch ticks at saturation) skip the
	// decoder allocation entirely.
	if r.Body == nil || r.Body == http.NoBody || r.ContentLength == 0 {
		return nil
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// admissionCost translates raw cost units into what admission charges:
// unchanged under cost admission, a flat 1 under count admission.
func (s *Server) admissionCost(units float64) float64 {
	if s.cfg.Admission == AdmissionCount {
		return 1
	}
	return units
}

// tenantAdmit charges cost units against the tenant's granted sub-budget;
// a no-op without a governor or label. On refusal it writes the 429
// (Retry-After = the next rebalance epoch) and reports false.
func (s *Server) tenantAdmit(w http.ResponseWriter, path string, cost float64) bool {
	if s.gov == nil || path == "" {
		return true
	}
	ok, retryAfter := s.gov.admit(path, cost)
	if !ok {
		s.met.rejected.inc(`reason="tenant"`)
		writeRetryErr(w, retryAfter, fmt.Sprintf("tenant %q over budget", path))
	}
	return ok
}

// tenantRelease returns cost units admitted by tenantAdmit.
func (s *Server) tenantRelease(path string, cost float64) {
	if s.gov != nil && path != "" {
		s.gov.release(path, cost)
	}
}

// replyError maps session/dispatcher errors onto HTTP statuses.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBusy):
		// Retry-After is computed from the dispatcher's cost depth — the
		// work queued ahead, not the number of requests holding it.
		s.met.rejected.inc(`reason="busy"`)
		writeRetryErr(w, s.disp.retryAfter(), err.Error())
	case errors.Is(err, errMailboxFull):
		s.met.rejected.inc(`reason="mailbox"`)
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errSessionClosed):
		writeErr(w, http.StatusGone, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.met.rejected.inc(`reason="timeout"`)
		writeErr(w, http.StatusServiceUnavailable, "request deadline exceeded")
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

// replyEngineError maps an engine-mediated failure: infrastructure
// errors (closed session, full mailbox, expired deadline) go through
// replyError's status mapping, while anything else is the engine
// rejecting the request's content — the caller's fault, a 400.
func (s *Server) replyEngineError(w http.ResponseWriter, err error) {
	if errors.Is(err, errSessionClosed) || errors.Is(err, errMailboxFull) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.replyError(w, err)
		return
	}
	writeErr(w, http.StatusBadRequest, err.Error())
}

// --- handlers ---

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.met.rejected.inc(`reason="draining"`)
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var spec SessionSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// Under the tenant economy every session carries a label: the spec's,
	// else the router-forwarded header, else the default tenant. The label
	// self-registers in the tree (with an immediate rebalance, so the
	// newcomer holds its floor before its first admission check).
	if s.gov != nil {
		if spec.Tenant == "" {
			spec.Tenant = r.Header.Get(TenantHeader)
			if spec.Tenant != "" && !validTenantPath(spec.Tenant) {
				writeErr(w, http.StatusBadRequest,
					fmt.Sprintf("header %s: tenant %q must be %s segments joined by \"/\"",
						TenantHeader, spec.Tenant, idPattern))
				return
			}
		}
		if spec.Tenant == "" {
			spec.Tenant = s.gov.defaultTenant
		}
		if err := s.gov.register(spec.Tenant); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	// Engine construction is allocation-grade work (sim warmup runs whole
	// epochs), so it competes for dispatcher capacity like any epoch,
	// priced by the spec's analytic prior (no measurements exist yet) —
	// and, under tenancy, against the tenant's sub-budget first.
	est := newCostEstimator(spec.guessCores())
	createCost := s.admissionCost(est.epochCost())
	if !s.tenantAdmit(w, spec.Tenant, createCost) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	lease, err := s.disp.acquire(ctx, createCost)
	if err != nil {
		s.tenantRelease(spec.Tenant, createCost)
		s.replyError(w, err)
		return
	}
	eng, err := s.buildEngine(spec, nil, est)
	lease.release()
	s.tenantRelease(spec.Tenant, createCost)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	id := spec.ID
	if id == "" {
		id = fmt.Sprintf("s-%06d", s.idSeq.Add(1))
	}
	sess := s.newSession(id, spec, eng, est, 0)
	evicted, err := s.store.add(sess)
	if err != nil {
		sess.close()
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	if evicted != nil {
		s.retire(evicted, "capacity")
		s.log.Info("session evicted", "id", evicted.id, "reason", "capacity")
	}
	// A fresh session supersedes any stale snapshot under the same id; a
	// later touch must not resurrect the old one.
	if s.cfg.Snapshots != nil {
		if err := s.cfg.Snapshots.Delete(id); err != nil {
			s.log.Warn("stale snapshot delete failed", "id", id, "err", err)
		}
	}
	s.met.sessionsCreated.Add(1)
	s.log.Info("session created", "id", id, "mode", spec.mode(), "mechanism", spec.Mechanism)
	writeJSON(w, http.StatusCreated, sess.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.store.list()
	views := make([]SessionView, len(sessions))
	for i, sess := range sessions {
		views[i] = sess.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

// lookup resolves {id}, touching the session for LRU/TTL accounting. A
// non-resident id falls through to the snapshot store: this is the "lazily
// rehydrate on next touch" half of durable sessions.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	sess := s.store.get(id)
	if sess == nil {
		if sess = s.rehydrate(w, r, id); sess == nil {
			return nil // rehydrate already wrote the error
		}
	}
	sess.touch(time.Now())
	return sess
}

// lookupRunning is lookup for endpoints that need the engine loop (epoch,
// telemetry, result): a hibernating session is woken first. Pure reads
// (handleGet, list) stay on lookup — they serve the cached view without
// paying an engine rebuild.
func (s *Server) lookupRunning(w http.ResponseWriter, r *http.Request) *session {
	sess := s.lookup(w, r)
	if sess == nil {
		return nil
	}
	if sess.isParked() {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		err := s.ensureRunning(ctx, sess)
		cancel()
		if err != nil {
			s.replyError(w, err)
			return nil
		}
	}
	return sess
}

// rehydrate rebuilds a non-resident session from its snapshot, if the
// configured store holds a usable one. On any failure it writes the HTTP
// error and returns nil; an unusable (corrupt, truncated, wrong-version)
// snapshot degrades to 404 — a cold start for the client — never a 500.
func (s *Server) rehydrate(w http.ResponseWriter, r *http.Request, id string) *session {
	notFound := func() { writeErr(w, http.StatusNotFound, fmt.Sprintf("no session %q", id)) }
	if s.cfg.Snapshots == nil {
		notFound()
		return nil
	}
	snap, err := s.cfg.Snapshots.Load(id)
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			if err != ErrNoSnapshot {
				// A file exists but is unusable: cold start, counted.
				s.met.snapshots.inc(`op="corrupt"`)
				s.log.Warn("snapshot unusable, cold start", "id", id, "err", err)
			}
		} else {
			s.met.snapshots.inc(`op="load_error"`)
			s.log.Warn("snapshot load failed, cold start", "id", id, "err", err)
		}
		notFound()
		return nil
	}
	if s.draining.Load() {
		// Same contract as create: a draining shard takes no new residents,
		// so the ring can move the session to a healthy one.
		s.met.rejected.inc(`reason="draining"`)
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return nil
	}
	// A snapshot predating the tenant economy (or from an untenanted
	// shard) rehydrates into the default tenant, like an unlabeled create.
	if s.gov != nil {
		if snap.Spec.Tenant == "" {
			snap.Spec.Tenant = s.gov.defaultTenant
		}
		if err := s.gov.register(snap.Spec.Tenant); err != nil {
			s.log.Warn("tenant registration on rehydrate failed", "id", id,
				"tenant", snap.Spec.Tenant, "err", err)
		}
	}
	// The estimate travels with the snapshot: a rehydrated session is
	// priced by its measured history, not the cold prior.
	est := newCostEstimator(snap.Spec.guessCores())
	est.restore(snap.EpochCost)
	restoreCost := s.admissionCost(est.epochCost())
	if !s.tenantAdmit(w, snap.Spec.Tenant, restoreCost) {
		return nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	lease, err := s.disp.acquire(ctx, restoreCost)
	if err != nil {
		s.tenantRelease(snap.Spec.Tenant, restoreCost)
		s.replyError(w, err)
		return nil
	}
	eng, err := s.buildEngine(snap.Spec, snap, est)
	lease.release()
	s.tenantRelease(snap.Spec.Tenant, restoreCost)
	if err != nil {
		s.met.snapshots.inc(`op="restore_error"`)
		s.log.Warn("snapshot restore failed, cold start", "id", id, "err", err)
		notFound()
		return nil
	}
	sess := s.newSession(id, snap.Spec, eng, est, snap.Epochs)
	evicted, addErr := s.store.add(sess)
	if addErr != nil {
		// A concurrent touch rehydrated the same id first; serve from the
		// now-resident copy and discard ours.
		sess.close()
		if resident := s.store.get(id); resident != nil {
			return resident
		}
		writeErr(w, http.StatusConflict, addErr.Error())
		return nil
	}
	if evicted != nil {
		s.retire(evicted, "capacity")
		s.log.Info("session evicted", "id", evicted.id, "reason", "capacity")
	}
	s.met.snapshots.inc(`op="restore"`)
	if snap.Checksum != "" {
		// The store verified this snapshot's integrity checksum on load
		// (version 2 format); v1 files restore without one.
		s.met.snapshots.inc(`op="verified"`)
	}
	s.log.Info("session rehydrated", "id", id, "epochs", snap.Epochs, "saved_at", snap.SavedAt)
	return sess
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.View())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.store.remove(id)
	if sess == nil {
		// Not resident, but a snapshotted session still "exists" durably:
		// deleting it removes the snapshot so nothing resurrects it.
		if s.cfg.Snapshots != nil {
			if _, err := s.cfg.Snapshots.Load(id); err == nil {
				_ = s.cfg.Snapshots.Delete(id)
				s.met.evicted.inc(`reason="deleted"`)
				s.log.Info("snapshotted session deleted", "id", id)
				w.WriteHeader(http.StatusNoContent)
				return
			}
		}
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	sess.close()
	s.met.evicted.inc(`reason="deleted"`)
	if s.cfg.Snapshots != nil {
		if err := s.cfg.Snapshots.Delete(id); err != nil {
			s.log.Warn("snapshot delete failed", "id", id, "err", err)
		}
	}
	s.log.Info("session deleted", "id", id)
	w.WriteHeader(http.StatusNoContent)
}

// epochBody is the optional POST body for /epoch.
type epochBody struct {
	Epochs int `json:"epochs,omitempty"`
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupRunning(w, r)
	if sess == nil {
		return
	}
	var body epochBody
	if err := decodeBody(w, r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	n := body.Epochs
	if n == 0 {
		n = 1
	}
	if n < 1 || n > 1000 {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("epochs %d outside [1,1000]", n))
		return
	}
	// Per-session rate limit: a batched request spends one token per epoch,
	// so batching cannot sidestep the budget.
	if ok, retryAfter := sess.spend(n, time.Now()); !ok {
		s.met.rejected.inc(`reason="ratelimit"`)
		writeRetryErr(w, retryAfter, fmt.Sprintf("session %q rate limited", sess.id))
		return
	}
	// A batched request spends n epochs' worth of cost units under one
	// lease — batching cannot sidestep weighted admission either. Under
	// tenancy the same cost charges the session's tenant sub-budget first:
	// one tenant saturating its grant gets 429s while its neighbours'
	// budgets stay untouched.
	cost := sess.epochCost(n)
	if !s.tenantAdmit(w, sess.spec.Tenant, cost) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	lease, err := s.disp.acquire(ctx, cost)
	if err != nil {
		s.tenantRelease(sess.spec.Tenant, cost)
		s.replyError(w, err)
		return
	}
	resp := sess.enqueue(ctx, &request{kind: reqEpoch, epochs: n})
	lease.release()
	s.tenantRelease(sess.spec.Tenant, cost)
	if resp.err != nil {
		s.replyError(w, resp.err)
		return
	}
	writeJSON(w, http.StatusOK, resp.view)
}

// handleEvict retires a resident session to its snapshot on demand: the
// session closes, its durable state lands in the snapshot store, and the
// next touch — on this shard or any other sharing the store — rehydrates it
// warm. This is the router's migration verb: a ring rebalance drains each
// moved session here on its old owner, then routes it to the new one.
// Unlike DELETE, the snapshot is the point, not collateral to remove. A
// non-resident id answers 404; the caller treats that as already migrated
// (an eviction or drain got there first).
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.store.remove(id)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	s.retire(sess, "migrate")
	s.log.Info("session evicted", "id", id, "reason", "migrate")
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupRunning(w, r)
	if sess == nil {
		return
	}
	var tele TelemetrySpec
	if err := decodeBody(w, r, &tele); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp := sess.enqueue(ctx, &request{kind: reqTelemetry, tele: tele})
	if resp.err != nil {
		s.replyEngineError(w, resp.err)
		return
	}
	writeJSON(w, http.StatusOK, resp.view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupRunning(w, r)
	if sess == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp := sess.enqueue(ctx, &request{kind: reqResult})
	if resp.err != nil {
		s.replyEngineError(w, resp.err)
		return
	}
	writeJSON(w, http.StatusOK, resp.result)
}

// healthzBody is the /healthz response.
type healthzBody struct {
	Status        string `json:"status"`
	Sessions      int    `json:"sessions"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{
		Status:        "ok",
		Sessions:      s.store.len(),
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
	}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.store.list(), s.disp, s.gov, s.draining.Load(),
		s.cfg.PerSessionMetrics, time.Since(s.started))
}
