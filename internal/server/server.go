package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// MaxSessions caps resident sessions; the LRU session is evicted to
	// admit a new one past the cap (default 128).
	MaxSessions int
	// IdleTTL evicts sessions untouched by any client for this long
	// (default 10m; <0 disables).
	IdleTTL time.Duration
	// Workers bounds allocation work in flight across all sessions
	// (default GOMAXPROCS).
	Workers int
	// MaxWaiting bounds requests queued for a worker slot; beyond it the
	// daemon answers 429 + Retry-After (default 4×Workers, min 64).
	MaxWaiting int
	// RequestTimeout is the per-request deadline for allocation work
	// (default 10s).
	RequestTimeout time.Duration
	// MailboxDepth is each session's queued-request bound (default 8).
	MailboxDepth int
	// Logger receives structured request/lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 10 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxWaiting <= 0 {
		c.MaxWaiting = 4 * c.Workers
		if c.MaxWaiting < 64 {
			c.MaxWaiting = 64
		}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 8
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the rebudgetd daemon: session registry, dispatcher, metrics and
// the HTTP API. Construct with New, mount Handler, Close when done.
type Server struct {
	cfg   Config
	log   *slog.Logger
	store *store
	disp  *dispatcher
	met   *srvMetrics
	mux   *http.ServeMux

	started  time.Time
	draining atomic.Bool
	idSeq    atomic.Int64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a server and starts its idle-TTL janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		log:         cfg.Logger,
		store:       newStore(cfg.MaxSessions, cfg.IdleTTL),
		disp:        newDispatcher(cfg.Workers, cfg.MaxWaiting),
		met:         &srvMetrics{},
		mux:         http.NewServeMux(),
		started:     time.Now(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.routes()
	go s.janitor()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/epoch", s.handleEpoch)
	s.mux.HandleFunc("POST /v1/sessions/{id}/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the daemon's HTTP handler (logging + metrics wrapped).
func (s *Server) Handler() http.Handler {
	return s.instrument(s.mux)
}

// StartDrain flips the daemon into drain mode: /healthz reports 503 so load
// balancers stop routing, and new sessions are refused. Existing sessions
// keep serving until Close.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("draining")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the janitor and closes every session, waiting for their
// goroutines to exit. The HTTP listener (owned by the caller) should be shut
// down first.
func (s *Server) Close() {
	close(s.janitorStop)
	<-s.janitorDone
	for _, sess := range s.store.drain() {
		sess.close()
		s.met.evicted.inc(`reason="drain"`)
	}
}

// Sessions reports the live session count.
func (s *Server) Sessions() int { return s.store.len() }

// janitor sweeps idle sessions on a fraction of the TTL.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.cfg.IdleTTL <= 0 {
		<-s.janitorStop
		return
	}
	period := s.cfg.IdleTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			for _, sess := range s.store.sweepIdle(now) {
				sess.close()
				s.met.evicted.inc(`reason="idle"`)
				s.log.Info("session evicted", "id", sess.id, "reason", "idle")
			}
		}
	}
}

// --- HTTP plumbing ---

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request logging and metrics.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		s.met.observeRequest(route, rec.code, dur)
		s.log.Info("request",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"code", rec.code, "dur_ms", float64(dur.Microseconds())/1000)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: msg})
}

// decodeBody decodes a bounded JSON body into v; an empty body leaves v as
// the zero value.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// replyError maps session/dispatcher errors onto HTTP statuses.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBusy):
		s.met.rejected.inc(`reason="busy"`)
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errMailboxFull):
		s.met.rejected.inc(`reason="mailbox"`)
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errSessionClosed):
		writeErr(w, http.StatusGone, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.met.rejected.inc(`reason="timeout"`)
		writeErr(w, http.StatusServiceUnavailable, "request deadline exceeded")
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

// --- handlers ---

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.met.rejected.inc(`reason="draining"`)
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var spec SessionSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	bundle, err := buildBundle(spec.Workload)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// Engine construction is allocation-grade work (sim warmup runs whole
	// epochs), so it competes for a dispatcher slot like any epoch.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.disp.acquire(ctx); err != nil {
		s.replyError(w, err)
		return
	}
	var eng engine
	switch spec.mode() {
	case ModeSim:
		eng, err = newSimEngine(spec, bundle, s.met.eq.Observe)
	default:
		eng, err = newMarketEngine(spec, bundle, s.met.eq.Observe)
	}
	s.disp.release()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	id := spec.ID
	if id == "" {
		id = fmt.Sprintf("s-%06d", s.idSeq.Add(1))
	}
	sess := newSession(id, spec, eng, s.disp, s.met, s.cfg.MailboxDepth, time.Now())
	evicted, err := s.store.add(sess)
	if err != nil {
		sess.close()
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	if evicted != nil {
		evicted.close()
		s.met.evicted.inc(`reason="capacity"`)
		s.log.Info("session evicted", "id", evicted.id, "reason", "capacity")
	}
	s.met.sessionsCreated.Add(1)
	s.log.Info("session created", "id", id, "mode", spec.mode(), "mechanism", spec.Mechanism)
	writeJSON(w, http.StatusCreated, sess.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.store.list()
	views := make([]SessionView, len(sessions))
	for i, sess := range sessions {
		views[i] = sess.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

// lookup resolves {id}, touching the session for LRU/TTL accounting.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	sess := s.store.get(id)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return nil
	}
	sess.touch(time.Now())
	return sess
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.View())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.store.remove(id)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	sess.close()
	s.met.evicted.inc(`reason="deleted"`)
	s.log.Info("session deleted", "id", id)
	w.WriteHeader(http.StatusNoContent)
}

// epochBody is the optional POST body for /epoch.
type epochBody struct {
	Epochs int `json:"epochs,omitempty"`
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	var body epochBody
	if err := decodeBody(w, r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	n := body.Epochs
	if n == 0 {
		n = 1
	}
	if n < 1 || n > 1000 {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("epochs %d outside [1,1000]", n))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.disp.acquire(ctx); err != nil {
		s.replyError(w, err)
		return
	}
	resp := sess.enqueue(ctx, &request{kind: reqEpoch, epochs: n})
	s.disp.release()
	if resp.err != nil {
		s.replyError(w, resp.err)
		return
	}
	writeJSON(w, http.StatusOK, resp.view)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	var tele TelemetrySpec
	if err := decodeBody(w, r, &tele); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp := sess.enqueue(ctx, &request{kind: reqTelemetry, tele: tele})
	if resp.err != nil {
		if errors.Is(resp.err, errSessionClosed) || errors.Is(resp.err, errMailboxFull) ||
			errors.Is(resp.err, context.DeadlineExceeded) || errors.Is(resp.err, context.Canceled) {
			s.replyError(w, resp.err)
		} else {
			writeErr(w, http.StatusBadRequest, resp.err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, resp.view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp := sess.enqueue(ctx, &request{kind: reqResult})
	if resp.err != nil {
		if errors.Is(resp.err, errSessionClosed) || errors.Is(resp.err, errMailboxFull) ||
			errors.Is(resp.err, context.DeadlineExceeded) || errors.Is(resp.err, context.Canceled) {
			s.replyError(w, resp.err)
		} else {
			writeErr(w, http.StatusBadRequest, resp.err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, resp.result)
}

// healthzBody is the /healthz response.
type healthzBody struct {
	Status        string `json:"status"`
	Sessions      int    `json:"sessions"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{
		Status:        "ok",
		Sessions:      s.store.len(),
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
	}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.store.list(), s.disp, s.draining.Load(), time.Since(s.started))
}
