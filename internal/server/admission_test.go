package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// TestAdmissionModesAreBitIdentical pins the A/B contract behind
// rebudget-loadgen: admission pricing only decides *when* work is admitted,
// never *what* it computes. The same seeded session stepped under cost and
// count admission must produce byte-for-byte identical allocations.
func TestAdmissionModesAreBitIdentical(t *testing.T) {
	run := func(admission string) json.RawMessage {
		_, ts := newTestDaemon(t, Config{Admission: admission, IdleTTL: -1})
		spec := SessionSpec{
			ID:        "ab",
			Workload:  WorkloadSpec{Category: "CPBN", Cores: 8, Seed: 42},
			Mechanism: "equalbudget",
		}
		if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create under %s: %d", admission, resp.StatusCode)
		}
		for i := 0; i < 5; i++ {
			if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/ab/epoch", nil, nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("epoch under %s: %d", admission, resp.StatusCode)
			}
		}
		var view struct {
			Allocation json.RawMessage `json:"allocation"`
			Epochs     int64           `json:"epochs"`
		}
		doJSON(t, "GET", ts.URL+"/v1/sessions/ab", nil, &view)
		if view.Epochs != 5 {
			t.Fatalf("epochs under %s: %d", admission, view.Epochs)
		}
		return view.Allocation
	}
	cost := run(AdmissionCost)
	count := run(AdmissionCount)
	if !reflect.DeepEqual(cost, count) {
		t.Fatalf("admission mode changed the allocation:\ncost:  %s\ncount: %s", cost, count)
	}
}

// TestAdmissionDefaults pins the config surface: cost is the default mode,
// with capacity 8× workers and queue depth 4× capacity; count mode maps the
// dispatcher back onto the request-count contract.
func TestAdmissionDefaults(t *testing.T) {
	srv, _ := newTestDaemon(t, Config{Workers: 2, MaxWaiting: 5})
	if srv.cfg.Admission != AdmissionCost {
		t.Fatalf("default admission = %q, want %q", srv.cfg.Admission, AdmissionCost)
	}
	if srv.disp.capacity != 16 {
		t.Fatalf("cost capacity = %g, want 8×workers = 16", srv.disp.capacity)
	}
	if srv.disp.maxQueuedCost != 64 {
		t.Fatalf("max queued cost = %g, want 4×capacity = 64", srv.disp.maxQueuedCost)
	}

	srv, _ = newTestDaemon(t, Config{Workers: 2, MaxWaiting: 5, Admission: AdmissionCount})
	if srv.disp.capacity != 2 {
		t.Fatalf("count capacity = %g, want workers = 2", srv.disp.capacity)
	}
	if srv.disp.maxQueuedCost != 5 {
		t.Fatalf("count queued bound = %g, want maxWaiting = 5", srv.disp.maxQueuedCost)
	}
}
