package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cost units normalize allocation work across sessions so admission can be
// priced: one unit is the analytic prior for a cheap reference epoch — an
// 8-core session converging in costPriorRounds bidding rounds. Equilibrium
// wall cost scales with rounds × players per round (each round re-optimises
// every player's bid) × the per-step cost of evaluating a bid over an
// N-core allocation — so the measured unit is *step-cores*, bid-steps
// weighted by core count. A 64-core ReBudget cold solve converging in a
// handful of rounds still lands at several units (each of its steps is 8×
// an 8-core step), while a closed-form equal-share touch sits at the floor.
const (
	// costPriorRounds is the assumed convergence length for an unmeasured
	// session (warm-started steady-state epochs re-converge in tens of
	// rounds; the first measurement corrects either way).
	costPriorRounds = 64.0
	// costRefStepCores is one cost unit, in step-cores: the reference
	// 8-core epoch performs 8 players × costPriorRounds bid-steps, each
	// over an 8-core allocation.
	costRefStepCores = 8 * costPriorRounds * 8
	// costAlpha is the EWMA weight per measured epoch batch — heavy enough
	// that an app switch re-converges in a handful of epochs, light enough
	// that one outlier solve doesn't whipsaw admission.
	costAlpha = 0.35
	// minEpochCost floors the estimate: even a session doing no
	// equilibrium work (equal-share) spends a little of the dispatcher.
	minEpochCost = 0.25
)

// costEstimator tracks one session's expected allocation cost per epoch, in
// cost units. It is seeded from an analytic prior on core count N (cost ≈
// N × expected rounds), then updated from the measured equilibrium work the
// session's allocator reports through the market observer chain — the same
// rounds/bid-steps stream metrics.EquilibriumProfile aggregates for
// /metrics, finally spent at the admission door instead of thrown away.
//
// observe is called from inside equilibrium solves (any goroutine); update
// folds the accumulated work into the EWMA from the owning session's loop.
type costEstimator struct {
	// pendingSteps accumulates bid-steps observed since the last update.
	pendingSteps atomic.Int64

	mu       sync.Mutex
	cores    int // problem size, weights each bid-step's cost
	perEpoch float64
	measured bool // a real measurement has landed (prior no longer rules)
}

// costPrior is the analytic seed for an N-core session, in cost units:
// N players × the prior round count, each step over an N-core allocation.
// Quadratic in N — deliberately conservative for big unmeasured sessions;
// the first measured epoch corrects it (and the dispatcher clamps oversize
// requests to its capacity regardless).
func costPrior(cores int) float64 {
	if cores <= 0 {
		cores = 8
	}
	prior := float64(cores) * costPriorRounds * float64(cores) / costRefStepCores
	if prior < 1 {
		prior = 1
	}
	return prior
}

func newCostEstimator(cores int) *costEstimator {
	if cores <= 0 {
		cores = 8
	}
	return &costEstimator{cores: cores, perEpoch: costPrior(cores)}
}

// observe chains behind market.Config.Observer: it banks one equilibrium
// search's bid-steps for the next update. Matching signature with
// metrics.EquilibriumProfile.Observe keeps the chain uniform.
func (c *costEstimator) observe(rounds, bidSteps int, wall time.Duration) {
	c.pendingSteps.Add(int64(bidSteps))
}

// update folds the equilibrium work banked since the last call into the
// per-epoch EWMA. epochs is how many engine epochs that work covered (a
// batched request updates once for the whole batch).
func (c *costEstimator) update(epochs int64) {
	if epochs <= 0 {
		return
	}
	steps := c.pendingSteps.Swap(0)
	c.mu.Lock()
	sample := float64(steps) * float64(c.cores) / float64(epochs) / costRefStepCores
	if sample < minEpochCost {
		sample = minEpochCost
	}
	c.perEpoch += costAlpha * (sample - c.perEpoch)
	c.measured = true
	c.mu.Unlock()
}

// resetPending drops banked work that predates serving (sim warmup,
// snapshot replay) so the first served epoch's sample isn't inflated by
// construction-time solves.
func (c *costEstimator) resetPending() { c.pendingSteps.Store(0) }

// epochCost is the current expected cost of one epoch, in cost units.
func (c *costEstimator) epochCost() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perEpoch
}

// recalibrate replaces a spec-guessed prior with the engine's actual core
// count, but never overrides a landed measurement — the engine knows the
// problem size, the measurements know the problem.
func (c *costEstimator) recalibrate(cores int) {
	c.mu.Lock()
	if cores > 0 {
		c.cores = cores
	}
	if !c.measured {
		c.perEpoch = costPrior(cores)
	}
	c.mu.Unlock()
}

// restore installs a persisted estimate (a rehydrated session resumes with
// the cost knowledge it was evicted with). Non-positive values are ignored
// (old snapshots carry none).
func (c *costEstimator) restore(perEpoch float64) {
	if perEpoch <= 0 {
		return
	}
	c.mu.Lock()
	c.perEpoch = perEpoch
	c.measured = true
	c.mu.Unlock()
}
