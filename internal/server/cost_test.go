package server

import (
	"math"
	"testing"
	"time"
)

// stepsPerUnit is how many bid-steps an N-core session must report for its
// banked work to equal one cost unit (steps × cores = costRefStepCores).
func stepsPerUnit(cores int) int {
	return int(costRefStepCores) / cores
}

func TestCostPriorScalesWithCores(t *testing.T) {
	// The reference workload (8 cores × the prior round count, each step
	// over 8 cores) defines one cost unit; the prior is quadratic in core
	// count, so a 64-core session is priced 64× before any measurement
	// (the dispatcher clamps that to capacity — it admits alone).
	if got := costPrior(8); got != 1 {
		t.Fatalf("costPrior(8) = %g, want 1", got)
	}
	if got := costPrior(64); got != 64 {
		t.Fatalf("costPrior(64) = %g, want 64", got)
	}
	// Tiny problems floor at one unit — admission is never free.
	if got := costPrior(1); got != 1 {
		t.Fatalf("costPrior(1) = %g, want floor 1", got)
	}
}

func TestCostEstimatorConvergesAfterAppSwitch(t *testing.T) {
	// A session's workload can change mid-life (telemetry switches the app
	// bundle). The EWMA must track the new regime: start at the 8-core
	// prior (1 unit), then feed epochs that each burn 4 units of step-cores
	// — the estimate should close most of the gap within ~10 epochs.
	est := newCostEstimator(8)
	if got := est.epochCost(); got != 1 {
		t.Fatalf("seed estimate = %g, want prior 1", got)
	}
	perEpoch := 4 * stepsPerUnit(8)
	for i := 0; i < 10; i++ {
		est.observe(64, perEpoch, time.Millisecond)
		est.update(1)
	}
	got := est.epochCost()
	if math.Abs(got-4) > 0.1 {
		t.Fatalf("after 10 heavy epochs estimate = %g, want ≈4", got)
	}
	// Switch back to a light app: the estimate must come down again, and
	// bottom out at the minimum epoch cost rather than zero.
	for i := 0; i < 40; i++ {
		est.observe(1, 0, 0)
		est.update(1)
	}
	got = est.epochCost()
	if math.Abs(got-minEpochCost) > 0.05 {
		t.Fatalf("after light epochs estimate = %g, want ≈%g", got, minEpochCost)
	}
}

func TestCostEstimatorBatchedEpochsAveragePerEpoch(t *testing.T) {
	// A 10-epoch batch banking 10 units of work is 1 unit/epoch, not 10.
	est := newCostEstimator(8)
	est.observe(640, 10*stepsPerUnit(8), time.Millisecond)
	est.update(10)
	if got := est.epochCost(); math.Abs(got-1) > 0.01 {
		t.Fatalf("batched estimate = %g, want ≈1 per epoch", got)
	}
}

func TestCostEstimatorRecalibrateOnlyBeforeMeasurement(t *testing.T) {
	// Engine construction refines the prior (spec guess → real core count)
	// — but never clobbers a measured estimate on snapshot rehydrate.
	est := newCostEstimator(8)
	est.recalibrate(64)
	if got := est.epochCost(); got != 64 {
		t.Fatalf("recalibrated prior = %g, want 64", got)
	}
	est.observe(64, stepsPerUnit(64), time.Millisecond)
	est.update(1)
	measured := est.epochCost()
	est.recalibrate(8)
	if got := est.epochCost(); got != measured {
		t.Fatalf("recalibrate after measurement moved estimate %g → %g", measured, got)
	}
}

func TestCostEstimatorRestore(t *testing.T) {
	// Snapshot rehydrate carries the learned estimate across restarts;
	// absent or nonsense values fall back to the prior.
	est := newCostEstimator(64)
	est.restore(2.5)
	if got := est.epochCost(); got != 2.5 {
		t.Fatalf("restored estimate = %g, want 2.5", got)
	}
	est = newCostEstimator(64)
	est.restore(0) // old snapshot without epoch_cost
	if got := est.epochCost(); got != 64 {
		t.Fatalf("restore(0) estimate = %g, want prior 64", got)
	}
}

func TestCostEstimatorResetPendingDropsConstructionWork(t *testing.T) {
	// Engine construction (sim warm-up, snapshot replay) runs equilibria
	// through the same observer; resetPending keeps that work out of the
	// first epoch's sample.
	est := newCostEstimator(8)
	est.observe(1000, 50*stepsPerUnit(8), time.Second)
	est.resetPending()
	est.observe(64, stepsPerUnit(8), time.Millisecond)
	est.update(1)
	if got := est.epochCost(); got > 1.01 {
		t.Fatalf("construction work leaked into estimate: %g", got)
	}
}
