package server

import (
	"fmt"
	"time"

	"rebudget/internal/app"
	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/workload"
)

// simEngine serves execution-driven sessions: a cmpsim chip stepped one
// measured epoch per request (or tick), with context switches applied
// between epochs. Like marketEngine it is single-owner: only the session
// goroutine touches it.
type simEngine struct {
	chip      *cmpsim.Chip
	names     []string
	bandwidth bool
	// journal records every applied context switch so a snapshot can
	// replay the (deterministic, seeded) run bit-identically elsewhere.
	journal []SwitchEvent
}

// newSimEngine builds the chip, installs the server-wide equilibrium
// observer on the allocator (the chip chains its own profiler behind it),
// and runs warmup via Begin so the first StepEpoch is already measured.
func newSimEngine(spec SessionSpec, bundle workload.Bundle,
	observer func(rounds, bidSteps int, wall time.Duration)) (*simEngine, error) {
	mech, err := parseMechanism(spec.Mechanism, spec.MinEnvyFreeness)
	if err != nil {
		return nil, err
	}
	cfg := cmpsim.DefaultConfig(len(bundle.Apps))
	cfg.MarketWorkers = spec.Workers
	cfg.BandwidthMarket = spec.Bandwidth
	cfg.Faults = spec.faultConfig()
	if s := spec.Sim; s != nil {
		if s.Seed != 0 {
			cfg.Seed = s.Seed
		}
		if s.WarmupEpochs != 0 {
			cfg.WarmupEpochs = s.WarmupEpochs
		}
		if s.ReallocEvery != 0 {
			cfg.ReallocEvery = s.ReallocEvery
		}
		if s.MaxAccessesPerCoreEpoch != 0 {
			cfg.MaxAccessesPerCoreEpoch = s.MaxAccessesPerCoreEpoch
		}
		cfg.WayPartition = s.WayPartition
	}
	chip, err := cmpsim.NewChip(cfg, bundle)
	if err != nil {
		return nil, err
	}
	var alloc core.Allocator = mech
	if spec.resilient() {
		alloc = core.NewResilient(mech, core.ResilientConfig{})
	}
	alloc = core.WithMarketConfig(alloc, func(mc market.Config) market.Config {
		mc.Observer = observer
		return mc
	})
	if err := chip.Begin(alloc); err != nil {
		return nil, err
	}
	e := &simEngine{chip: chip, bandwidth: spec.Bandwidth}
	for i, a := range bundle.Apps {
		e.names = append(e.names, fmt.Sprintf("%s#%d", a.Name, i))
	}
	return e, nil
}

// step advances one measured epoch on the chip. Allocation faults are
// absorbed by the chip's degraded-mode state machine, so an error here is a
// construction bug, not a runtime fault.
func (e *simEngine) step() error {
	return e.chip.StepEpoch()
}

// telemetry applies context switches (§4.3) between epochs.
func (e *simEngine) telemetry(t TelemetrySpec) error {
	if len(t.Players) > 0 {
		return fmt.Errorf("sim sessions take context switches, not player telemetry")
	}
	for _, sw := range t.Switches {
		spec, err := app.Lookup(sw.App)
		if err != nil {
			return err
		}
		if err := e.chip.SwitchApp(sw.Core, spec); err != nil {
			return err
		}
		e.names[sw.Core] = fmt.Sprintf("%s#%d", spec.Name, sw.Core)
		e.journal = append(e.journal, SwitchEvent{
			AfterEpoch: e.chip.Stepped(), Core: sw.Core, App: sw.App,
		})
	}
	return nil
}

// snapshot fills the sim side of a session snapshot: the measured epoch
// count plus the context-switch journal. Called only after the owning
// session loop has exited.
func (e *simEngine) snapshot(snap *SessionSnapshot) {
	snap.Sim = &SimSnapshot{
		Epochs:   e.chip.Stepped(),
		Switches: append([]SwitchEvent(nil), e.journal...),
	}
}

// restore replays a snapshot on a freshly built (warmed-up, unstepped)
// chip: step measured epochs in order, applying journalled context
// switches at the exact epoch boundaries they originally landed on. The
// chip is seeded and deterministic, so the replayed state — cache stacks,
// thermal history, degradation FSM, warm equilibrium bids — is
// bit-identical to the uninterrupted run's.
func (e *simEngine) restore(snap *SessionSnapshot) error {
	s := snap.Sim
	if s == nil {
		return fmt.Errorf("snapshot for sim session has no sim state")
	}
	if s.Epochs < 0 {
		return fmt.Errorf("snapshot sim epochs %d < 0", s.Epochs)
	}
	next := 0
	apply := func() error {
		for next < len(s.Switches) && s.Switches[next].AfterEpoch <= e.chip.Stepped() {
			sw := s.Switches[next]
			if err := e.telemetry(TelemetrySpec{Switches: []SwitchSpec{{Core: sw.Core, App: sw.App}}}); err != nil {
				return fmt.Errorf("replaying switch at epoch %d: %w", sw.AfterEpoch, err)
			}
			next++
		}
		return nil
	}
	for e.chip.Stepped() < s.Epochs {
		if err := apply(); err != nil {
			return err
		}
		if err := e.chip.StepEpoch(); err != nil {
			return fmt.Errorf("replaying epoch %d: %w", e.chip.Stepped()+1, err)
		}
	}
	return apply()
}

// view renders the chip's hardware-facing state plus the latest allocator
// outcome.
func (e *simEngine) view() SessionView {
	v := SessionView{Mode: ModeSim, Cores: len(e.names)}
	sv := &SimView{
		Epochs:         e.chip.Stepped(),
		VirtualSeconds: e.chip.Elapsed(),
		RegionTargets:  e.chip.Regions(),
		FrequenciesGHz: e.chip.Frequencies(),
		PowerBudgetsW:  e.chip.PowerBudgets(),
		Health:         healthView(e.chip.Health()),
		Equilibrium:    equilibriumView(e.chip.Equilibrium()),
	}
	if e.bandwidth {
		sv.BandwidthGBs = e.chip.BandwidthAllocations()
	}
	v.Sim = sv
	if out := e.chip.LastOutcome(); out != nil {
		v.Alloc = allocationView(e.names, out, nil)
	}
	return v
}

// result summarises the run so far (normalised performance, weighted
// speedup, envy-freeness on the latest monitored utilities).
func (e *simEngine) result() (*SimResultView, error) {
	res, err := e.chip.Snapshot()
	if err != nil {
		return nil, err
	}
	return &SimResultView{
		Mechanism:       res.Mechanism,
		NormPerf:        res.NormPerf,
		WeightedSpeedup: res.WeightedSpeedup,
		EnvyFreeness:    res.EnvyFreeness,
		MeanIterations:  res.MeanIterations,
		AvgPowerW:       res.AvgPowerW,
		MaxTempC:        res.MaxTempC,
		ThrottleEpochs:  res.ThrottleEpochs,
		Health:          healthView(res.Health),
		Equilibrium:     equilibriumView(res.Equilibrium),
	}, nil
}

// healthState reports the chip's degraded-mode FSM position.
func (e *simEngine) healthState() metrics.HealthState {
	return e.chip.Health().State
}

// cores reports the chip's core count — the N in the admission-cost prior.
func (e *simEngine) cores() int { return len(e.names) }
