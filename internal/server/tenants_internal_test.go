package server

import (
	"io"
	"log/slog"
	"testing"
	"time"

	"rebudget/internal/tenant"
)

func testGovernor(t *testing.T, cfg TenancyConfig, capacity float64) *tenantGovernor {
	t.Helper()
	if cfg.Epoch == 0 {
		cfg.Epoch = time.Hour // ticker out of the way; tests drive rebalanceOnce
	}
	g, err := newTenantGovernor(cfg, capacity, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.close)
	return g
}

// TestTenantGovernorAdmission: per-tenant cost sub-budgets gate admission —
// one tenant exhausting its grant is refused while its sibling's budget is
// untouched — and an idle tenant's first request always clamps through.
func TestTenantGovernorAdmission(t *testing.T) {
	g := testGovernor(t, TenancyConfig{
		Tenants: []tenant.NodeSpec{{Name: "a"}, {Name: "b"}},
	}, 8)
	// The constructor's first rebalance parks each tenant's slice: 4/4.
	if got := g.tree.Granted("a"); got != 4 {
		t.Fatalf("initial grant for a = %g, want 4", got)
	}
	if ok, _ := g.admit("a", 3); !ok {
		t.Fatal("admit(a,3) under a grant of 4 refused")
	}
	ok, retry := g.admit("a", 2)
	if ok {
		t.Fatal("admit(a,2) with 3 in flight of a 4 grant should refuse")
	}
	if retry != g.epoch {
		t.Fatalf("Retry-After hint %v, want the rebalance epoch %v", retry, g.epoch)
	}
	if ok, _ := g.admit("b", 4); !ok {
		t.Fatal("tenant b's budget must be untouched by a's saturation")
	}
	g.release("a", 3)
	// Progress clamp: an idle tenant admits even an oversize request.
	if ok, _ := g.admit("a", 100); !ok {
		t.Fatal("idle tenant's first request must clamp through")
	}
	g.release("a", 100)
	g.release("b", 4)
}

// TestTenantGovernorResidueSnaps: draining mixed fractional costs must
// leave inFlight at exactly zero, or the ~1e-15 float residue would
// defeat the idle-tenant progress clamp forever — a busy sibling's grant
// plus an oversize cold-create prior would then wedge the tenant.
func TestTenantGovernorResidueSnaps(t *testing.T) {
	g := testGovernor(t, TenancyConfig{
		Tenants: []tenant.NodeSpec{{Name: "a"}, {Name: "b"}},
	}, 4)
	// Mixed fractional costs that don't cancel exactly in floating point.
	costs := []float64{0.3, 0.55, 0.25, 0.7, 0.1}
	for _, c := range costs {
		g.admit("a", c)
	}
	for _, c := range costs {
		g.release("a", c)
	}
	g.mu.Lock()
	inFlight := g.usage["a"].inFlight
	g.mu.Unlock()
	if inFlight != 0 {
		t.Fatalf("drained inFlight = %g, want exactly 0", inFlight)
	}
	// The clamp must now let an oversize request (a cold-create prior far
	// past the 2-unit grant) through, as it would for a fresh tenant.
	if ok, _ := g.admit("a", 16); !ok {
		t.Fatal("idle tenant with drained history must still clamp through")
	}
	g.release("a", 16)
}

// TestTenantGovernorLendAndReclaim: refused demand still counts as demand,
// so a saturated tenant borrows its idle sibling's budget within a few
// rebalances; when the sibling's demand returns, bounded reclaim restores
// the deserved split.
func TestTenantGovernorLendAndReclaim(t *testing.T) {
	g := testGovernor(t, TenancyConfig{
		Tenants: []tenant.NodeSpec{{Name: "idle"}, {Name: "busy"}},
	}, 8)
	if ok, _ := g.admit("busy", 4); !ok {
		t.Fatal("admit(busy,4)")
	}
	if ok, _ := g.admit("busy", 2); ok {
		t.Fatal("admit(busy,2) past the grant should refuse (but record demand)")
	}
	// Keep retrying the refused work across rebalances, as a real client
	// would: each attempt (refused or not) re-records the 6-unit demand.
	for i := 0; i < 8; i++ {
		if ok, _ := g.admit("busy", 2); ok {
			g.release("busy", 2)
		}
		g.rebalanceOnce()
	}
	if got := g.tree.Granted("busy"); got < 5.5 {
		t.Fatalf("busy should borrow idle's headroom: granted %g, want ≥ 5.5", got)
	}
	if ok, _ := g.admit("busy", 1.5); !ok {
		t.Fatal("borrowed budget should admit the previously refused work")
	}
	g.release("busy", 1.5)
	g.release("busy", 4)

	// idle's demand returns: its floor is honoured immediately and the
	// deserved 4/4 split is restored within the halving schedule.
	if ok, _ := g.admit("idle", 4); !ok {
		t.Fatal("idle tenant's first request must clamp through")
	}
	g.rebalanceOnce()
	if got := g.tree.Granted("idle"); got < 0.25*g.tree.Deserved("idle")-1e-9 {
		t.Fatalf("idle below MBR floor right after demand returned: %g", got)
	}
	for i := 0; i < 12; i++ {
		g.rebalanceOnce()
	}
	if got := g.tree.Granted("idle"); got < 4-1e-6 {
		t.Fatalf("idle's deserved share not reclaimed: granted %g, want 4", got)
	}
	g.release("idle", 4)
}

// TestTenantGovernorDemandDecay: the demand signal rises instantly to the
// interval peak and halves per epoch afterwards — a drained burst fades
// from the signal instead of vanishing (or sticking forever).
func TestTenantGovernorDemandDecay(t *testing.T) {
	g := testGovernor(t, TenancyConfig{
		Tenants: []tenant.NodeSpec{{Name: "x"}},
	}, 8)
	if ok, _ := g.admit("x", 6); !ok {
		t.Fatal("admit(x,6)")
	}
	g.release("x", 6)
	g.rebalanceOnce()
	rows, _ := g.metricsSnapshot()
	if rows[0].Demand != 6 {
		t.Fatalf("demand after burst = %g, want the peak 6", rows[0].Demand)
	}
	g.rebalanceOnce()
	rows, _ = g.metricsSnapshot()
	if rows[0].Demand != 3 {
		t.Fatalf("decayed demand = %g, want 3", rows[0].Demand)
	}
}

func TestParseTenants(t *testing.T) {
	specs, err := ParseTenants("acme/prod:3:2:0.5, acme/dev:1 ,free")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "acme" || specs[1].Name != "free" {
		t.Fatalf("top level: %+v", specs)
	}
	kids := specs[0].Children
	if len(kids) != 2 || kids[0].Name != "dev" || kids[1].Name != "prod" {
		t.Fatalf("acme children: %+v", kids)
	}
	prod := kids[1]
	if prod.Share != 3 || prod.OverQuotaWeight != 2 || prod.MBRFloor != 0.5 {
		t.Fatalf("acme/prod numbers: %+v", prod)
	}
	if kids[0].Share != 1 {
		t.Fatalf("acme/dev share: %+v", kids[0])
	}
	// The parsed tree must construct.
	if _, err := tenant.New(specs, tenant.Config{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"a b", "x:nope", "x:1:2:3:4", "x:-1", "y:1:1:2"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) should fail", bad)
		}
	}
	if specs, err := ParseTenants(""); err != nil || len(specs) != 0 {
		t.Fatalf("empty flag: %v, %v", specs, err)
	}
}
