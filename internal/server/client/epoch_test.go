package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"rebudget/internal/server"
)

// epochServer answers /healthz stamping a controllable membership epoch.
func epochServer(t *testing.T, epoch *atomic.Uint64, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		if e := epoch.Load(); e != 0 {
			w.Header().Set(server.EpochHeader, strconv.FormatUint(e, 10))
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","sessions":0,"uptime_seconds":1}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// A membership-epoch change resets the sticky fallback index: state
// learned under the old ring (which base last worked) is stale once the
// shard set moves, so the client re-homes to its primary base.
func TestEpochChangeResetsStickyBase(t *testing.T) {
	var epochA, epochB atomic.Uint64
	var hitsA atomic.Int64
	epochA.Store(1)
	epochB.Store(1)
	tsA := epochServer(t, &epochA, &hitsA)
	tsB := epochServer(t, &epochB, nil)

	c := New(tsA.URL, WithFallbackBases(tsB.URL))
	ctx := context.Background()

	// Learn epoch 1, then pretend a transport failure pushed us to base B.
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("epoch after first response = %d, want 1", got)
	}
	c.cur.Store(1)
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.cur.Load(); got != 1 {
		t.Fatalf("sticky index = %d, want 1 (no epoch change yet)", got)
	}

	// The fleet rebalances: base B starts stamping epoch 2. The next
	// response snaps the client back to its primary base.
	epochB.Store(2)
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("epoch after change = %d, want 2", got)
	}
	if got := c.cur.Load(); got != 0 {
		t.Fatalf("sticky index after epoch change = %d, want 0 (re-homed)", got)
	}
	before := hitsA.Load()
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if hitsA.Load() != before+1 {
		t.Fatal("client did not route the next request to its primary base")
	}
}

// Static daemons send no epoch header: the client's epoch stays 0 and the
// sticky index is never disturbed — pre-elastic behavior, bit for bit.
func TestNoEpochHeaderLeavesStickyBaseAlone(t *testing.T) {
	var zero atomic.Uint64
	tsA := epochServer(t, &zero, nil)
	tsB := epochServer(t, &zero, nil)
	c := New(tsA.URL, WithFallbackBases(tsB.URL))
	ctx := context.Background()
	c.cur.Store(1)
	for i := 0; i < 3; i++ {
		if _, err := c.Healthz(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Epoch(); got != 0 {
		t.Fatalf("epoch without header = %d, want 0", got)
	}
	if got := c.cur.Load(); got != 1 {
		t.Fatalf("sticky index moved to %d without any epoch signal", got)
	}
}

// The first epoch ever seen is adopted without a reset: a fresh client
// joining mid-life must not treat "learned the epoch" as "epoch changed".
func TestFirstEpochObservationDoesNotReset(t *testing.T) {
	var e atomic.Uint64
	e.Store(7)
	tsA := epochServer(t, &e, nil)
	tsB := epochServer(t, &e, nil)
	c := New(tsA.URL, WithFallbackBases(tsB.URL))
	c.cur.Store(1)
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 7 {
		t.Fatalf("first observed epoch = %d, want 7", got)
	}
	if got := c.cur.Load(); got != 1 {
		t.Fatalf("first observation reset the sticky index to %d", got)
	}
}
