package client

import (
	"context"
	"fmt"
	"time"

	"rebudget/internal/numeric"
)

// RetryConfig tunes Retry. Zero values select the documented defaults.
type RetryConfig struct {
	// MaxWall caps the total wall-clock spent across all attempts and
	// sleeps (default 30s). When the next sleep would cross the cap, Retry
	// gives up and returns the last backpressure error instead.
	MaxWall time.Duration
	// MaxAttempts caps call attempts (default 10).
	MaxAttempts int
	// Jitter scales the random spread added to each Retry-After sleep
	// (default 0.5): the sleep is uniform in [d·(1−Jitter/2), d·(1+Jitter/2)]
	// where d is the server's hint. Jitter is what keeps a fleet of
	// synchronized controllers from re-stampeding a recovering shard the
	// instant their identical Retry-After timers expire.
	Jitter float64
	// Seed drives the jitter stream (default 1). Give each controller its
	// own seed — identical seeds re-synchronize the fleet, defeating the
	// point.
	Seed uint64
	// Sleep substitutes the sleep function (tests); default waits on a
	// timer, honouring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxWall <= 0 {
		c.MaxWall = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs fn until it returns a non-backpressure result, sleeping out
// each 429's Retry-After with jitter. Two caps bound the total cost: a
// wall-clock budget (MaxWall) and an attempt count (MaxAttempts) — without
// them a saturated shard would pin every controller in lockstep retry
// forever. Non-429 errors (and success) return immediately.
func Retry(ctx context.Context, cfg RetryConfig, fn func(context.Context) error) error {
	cfg = cfg.withDefaults()
	rng := numeric.NewRand(cfg.Seed)
	deadline := time.Now().Add(cfg.MaxWall)
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(ctx); !IsBusy(err) {
			return err
		}
		if attempt >= cfg.MaxAttempts {
			return fmt.Errorf("giving up after %d attempts: %w", attempt, err)
		}
		hint := err.(*APIError).RetryAfter
		if hint <= 0 {
			hint = time.Second
		}
		// Jittered sleep: uniform in [hint·(1−J/2), hint·(1+J/2)], so the
		// mean honours the server's hint while the fleet spreads out.
		scale := 1 + cfg.Jitter*(rng.Float64()-0.5)
		sleep := time.Duration(float64(hint) * scale)
		if remaining := time.Until(deadline); sleep > remaining {
			return fmt.Errorf("retry wall-clock budget %s exhausted: %w", cfg.MaxWall, err)
		}
		if serr := cfg.Sleep(ctx, sleep); serr != nil {
			return serr
		}
	}
}
