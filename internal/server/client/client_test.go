package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Retry-After parsing is table-driven over what real proxies and daemons
// actually emit: integer seconds parse into RetryAfter, anything else
// (absent, HTTP-date, garbage) degrades to zero rather than an error —
// the status code is the contract, the hint is advisory.
func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		name   string
		header string
		status int
		want   time.Duration
	}{
		{"integer seconds", "2", http.StatusTooManyRequests, 2 * time.Second},
		{"zero seconds", "0", http.StatusTooManyRequests, 0},
		{"absent", "", http.StatusTooManyRequests, 0},
		{"http date form ignored", "Fri, 07 Aug 2026 00:00:00 GMT", http.StatusTooManyRequests, 0},
		{"garbage ignored", "soon", http.StatusTooManyRequests, 0},
		{"negative accepted verbatim", "-3", http.StatusTooManyRequests, -3 * time.Second},
		{"on 503 too", "1", http.StatusServiceUnavailable, time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.header != "" {
					w.Header().Set("Retry-After", tc.header)
				}
				http.Error(w, `{"error":"busy"}`, tc.status)
			}))
			defer ts.Close()
			_, err := New(ts.URL).GetSession(context.Background(), "x")
			ae, ok := err.(*APIError)
			if !ok {
				t.Fatalf("want *APIError, got %v", err)
			}
			if ae.Status != tc.status {
				t.Fatalf("status = %d, want %d", ae.Status, tc.status)
			}
			if ae.RetryAfter != tc.want {
				t.Fatalf("RetryAfter = %v, want %v", ae.RetryAfter, tc.want)
			}
		})
	}
}

// WithTimeout bounds one attempt; the default matches DefaultTimeout; a
// non-positive value disables the client-side timeout entirely.
func TestWithTimeout(t *testing.T) {
	t.Run("default", func(t *testing.T) {
		if got := New("http://example.invalid").http.Timeout; got != DefaultTimeout {
			t.Fatalf("default timeout = %v, want %v", got, DefaultTimeout)
		}
	})
	t.Run("disable", func(t *testing.T) {
		if got := New("http://example.invalid", WithTimeout(-1)).http.Timeout; got != 0 {
			t.Fatalf("WithTimeout(-1) = %v, want 0 (disabled)", got)
		}
	})
	t.Run("bounds a slow server", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}))
		defer ts.Close()
		c := New(ts.URL, WithTimeout(50*time.Millisecond))
		start := time.Now()
		_, err := c.GetSession(context.Background(), "slow")
		if err == nil {
			t.Fatal("want timeout error")
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("timeout not applied: attempt took %v", el)
		}
	})
	t.Run("applies after WithHTTPClient", func(t *testing.T) {
		h := &http.Client{Timeout: time.Hour}
		c := New("http://example.invalid", WithHTTPClient(h), WithTimeout(time.Second))
		if c.http.Timeout != time.Second {
			t.Fatalf("timeout = %v, want 1s", c.http.Timeout)
		}
	})
}
