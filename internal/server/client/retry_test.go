package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func busy(after time.Duration) error {
	return &APIError{Status: http.StatusTooManyRequests, Message: "busy", RetryAfter: after}
}

// fakeSleep records requested sleeps without waiting.
func fakeSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*log = append(*log, d)
		return nil
	}
}

func TestRetrySucceedsAfterBackpressure(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(context.Background(), RetryConfig{Sleep: fakeSleep(&slept)}, func(context.Context) error {
		calls++
		if calls < 3 {
			return busy(2 * time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d slept=%v", calls, slept)
	}
	// Default jitter 0.5: each sleep is uniform in [1.5s, 2.5s] around the
	// 2s hint — never the bare hint for a whole fleet at once.
	for _, d := range slept {
		if d < 1500*time.Millisecond || d > 2500*time.Millisecond {
			t.Fatalf("sleep %v outside jitter envelope [1.5s, 2.5s]", d)
		}
	}
	if slept[0] == slept[1] {
		t.Fatalf("consecutive sleeps identical (%v): jitter not applied", slept[0])
	}
}

func TestRetryNonBusyErrorsReturnImmediately(t *testing.T) {
	var slept []time.Duration
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), RetryConfig{Sleep: fakeSleep(&slept)}, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 || len(slept) != 0 {
		t.Fatalf("err=%v calls=%d slept=%v", err, calls, slept)
	}
}

func TestRetryAttemptCap(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(context.Background(), RetryConfig{MaxAttempts: 4, Sleep: fakeSleep(&slept)}, func(context.Context) error {
		calls++
		return busy(time.Millisecond)
	})
	if err == nil || !IsBusy(errors.Unwrap(err)) {
		t.Fatalf("want wrapped backpressure error, got %v", err)
	}
	if calls != 4 || len(slept) != 3 {
		t.Fatalf("calls=%d slept=%d, want 4 calls / 3 sleeps", calls, len(slept))
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("unexpected message: %v", err)
	}
}

// The wall-clock cap refuses a sleep that would cross the budget — a fleet
// of controllers cannot be pinned in lockstep retry against a dead shard.
func TestRetryWallClockCap(t *testing.T) {
	var slept []time.Duration
	err := Retry(context.Background(), RetryConfig{
		MaxWall: 100 * time.Millisecond, Sleep: fakeSleep(&slept),
	}, func(context.Context) error {
		return busy(time.Hour)
	})
	if err == nil || !strings.Contains(err.Error(), "wall-clock budget") {
		t.Fatalf("want wall-clock budget error, got %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("should refuse the over-budget sleep, slept %v", slept)
	}
}

func TestRetryHonoursContextDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryConfig{}, func(context.Context) error {
		return busy(10 * time.Second)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from sleep, got %v", err)
	}
}

// Distinct seeds must yield distinct sleep schedules — identical seeds would
// re-synchronize the fleet and defeat the jitter.
func TestRetrySeedsDecorrelate(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var slept []time.Duration
		calls := 0
		_ = Retry(context.Background(), RetryConfig{Seed: seed, Sleep: fakeSleep(&slept)}, func(context.Context) error {
			if calls++; calls > 5 {
				return nil
			}
			return busy(time.Second)
		})
		return slept
	}
	a, b := schedule(2), schedule(3)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 2 and 3 produced identical schedules: %v", a)
	}
}

// Transport-level failures rotate the client across its fallback bases; the
// index that worked is remembered for subsequent calls.
func TestClientFailoverAcrossBases(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","sessions":0,"uptime_seconds":1}`))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // connection refused from here on

	c := New(dead.URL, WithFallbackBases(live.URL))
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("failover to live base: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("unexpected health: %+v", h)
	}
	if got := c.bases[c.cur.Load()]; got != live.URL {
		t.Fatalf("client did not remember the live base: %q", got)
	}
}

// HTTP error statuses are answers, not failover triggers: a 429 from the
// first base must surface as backpressure, not get retried on the next base.
func TestClientDoesNotFailOverOnHTTPStatus(t *testing.T) {
	hits := 0
	limited := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "3")
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	defer limited.Close()
	fallback := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("fallback base must not be consulted on an HTTP error status")
	}))
	defer fallback.Close()

	c := New(limited.URL, WithFallbackBases(fallback.URL))
	_, err := c.Healthz(context.Background())
	if !IsBusy(err) {
		t.Fatalf("want 429 surfaced, got %v", err)
	}
	if got := err.(*APIError).RetryAfter; got != 3*time.Second {
		t.Fatalf("Retry-After = %v, want 3s", got)
	}
	if hits != 1 {
		t.Fatalf("limited base hit %d times, want 1", hits)
	}
}
