// Package client is the typed Go client for the rebudgetd HTTP API
// (internal/server). It speaks the same spec/view structs the daemon
// serves, maps error responses onto *APIError (with Retry-After surfaced
// for 429 backpressure), and takes a context on every call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rebudget/internal/server"
)

// Client talks to a rebudgetd instance — or, with fallback bases, to a
// rebudget-router tier: transport-level failures rotate to the next base
// URL, and the index that last worked is remembered so steady-state traffic
// goes straight to a healthy endpoint.
type Client struct {
	bases  []string
	cur    atomic.Int64  // index into bases of the endpoint that last worked
	epoch  atomic.Uint64 // last membership epoch seen from an elastic router
	apiKey string
	http   *http.Client
}

// DefaultTimeout is the client's per-attempt HTTP timeout when
// WithTimeout is not given. It deliberately matches the router's default
// ProxyTimeout (30s) and sits above the daemon's RequestTimeout (10s):
// every server-side deadline fires first and yields a typed 503, so the
// client's timeout is the backstop for a hung transport, not the normal
// failure path. A client timeout below the server's turns every
// slow-but-succeeding epoch batch into wasted work — lower it only
// alongside the server's own deadline.
const DefaultTimeout = 30 * time.Second

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (test servers,
// custom transports, timeouts).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithTimeout sets the per-attempt HTTP timeout (default DefaultTimeout;
// d <= 0 means no timeout, deadlines then come only from the caller's
// context). Per-attempt is the operative word: this bounds one request on
// one base URL, while the fallback-base rotation multiplies it by the
// number of bases in the worst case, and client.Retry's MaxWall caps the
// whole backpressure loop above both. It mutates the client's current
// *http.Client, so order it after WithHTTPClient when combining the two.
func WithTimeout(d time.Duration) Option {
	if d < 0 {
		d = 0
	}
	return func(c *Client) { c.http.Timeout = d }
}

// WithFallbackBases appends alternate base URLs (additional routers, or the
// shards themselves) tried in order when a request cannot reach the current
// endpoint at all. HTTP error responses — including 429 backpressure — are
// not failover triggers: the endpoint answered, and its answer stands.
func WithFallbackBases(bases ...string) Option {
	return func(c *Client) {
		for _, b := range bases {
			c.bases = append(c.bases, strings.TrimRight(b, "/"))
		}
	}
}

// WithAPIKey sends key as a bearer token on every request, matching the
// daemon's -api-key check on mutating endpoints. The empty string sends no
// Authorization header.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// New builds a client for the daemon or router at base (e.g.
// "http://127.0.0.1:8344").
func New(base string, opts ...Option) *Client {
	c := &Client{
		bases: []string{strings.TrimRight(base, "/")},
		http:  &http.Client{Timeout: DefaultTimeout},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration // nonzero on 429 backpressure
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rebudgetd: %d %s", e.Status, e.Message)
}

// IsBusy reports whether err is daemon backpressure (HTTP 429) — the caller
// should wait RetryAfter and retry.
func IsBusy(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusTooManyRequests
}

// do issues one request and decodes the JSON response into out (if non-nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var buf []byte
	if in != nil {
		var err error
		if buf, err = json.Marshal(in); err != nil {
			return err
		}
	}
	resp, err := c.roundTrip(ctx, method, path, in != nil, buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode}
		var eb struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			ae.Message = eb.Error
		} else {
			ae.Message = strings.TrimSpace(string(raw))
		}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// roundTrip sends one request, rotating through the configured base URLs on
// transport errors (connection refused, reset — not HTTP error statuses).
// The index that succeeded is remembered, so after a failover subsequent
// calls go straight to the live endpoint.
func (c *Client) roundTrip(ctx context.Context, method, path string, hasBody bool, body []byte) (*http.Response, error) {
	start := c.cur.Load()
	var lastErr error
	for i := 0; i < len(c.bases); i++ {
		idx := (start + int64(i)) % int64(len(c.bases))
		req, err := http.NewRequestWithContext(ctx, method, c.bases[idx]+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if hasBody {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.apiKey != "" {
			req.Header.Set("Authorization", "Bearer "+c.apiKey)
		}
		resp, err := c.http.Do(req)
		if err == nil {
			c.cur.Store(idx)
			c.observeEpoch(resp, idx)
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's deadline expired or it cancelled; trying the
			// next base would just fail the same way.
			return nil, err
		}
	}
	return nil, lastErr
}

// observeEpoch tracks the membership epoch an elastic router stamps on
// every response (server.EpochHeader). When the epoch moves, the fleet's
// shard set changed — sticky fallback state learned under the old ring
// (a remembered shard, a failed-over base) may now be wrong, so the
// client snaps back to its primary base and rediscovers from there.
// Static daemons and pre-elastic routers send no header; this never fires.
func (c *Client) observeEpoch(resp *http.Response, idx int64) {
	s := resp.Header.Get(server.EpochHeader)
	if s == "" {
		return
	}
	e, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return
	}
	old := c.epoch.Swap(e)
	if old != 0 && old != e && idx != 0 {
		c.cur.Store(0)
	}
}

// Epoch returns the last membership epoch observed on a response, or 0 if
// the endpoint has never sent one (static daemon or pre-elastic router).
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// CreateSession registers a new chip session and returns its initial view.
func (c *Client) CreateSession(ctx context.Context, spec server.SessionSpec) (server.SessionView, error) {
	var v server.SessionView
	err := c.do(ctx, http.MethodPost, "/v1/sessions", spec, &v)
	return v, err
}

// ListSessions returns every live session, most recently used first.
func (c *Client) ListSessions(ctx context.Context) ([]server.SessionView, error) {
	var out struct {
		Sessions []server.SessionView `json:"sessions"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out.Sessions, err
}

// GetSession returns one session's current view.
func (c *Client) GetSession(ctx context.Context, id string) (server.SessionView, error) {
	var v server.SessionView
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &v)
	return v, err
}

// DeleteSession removes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// StepEpoch advances the session one allocation epoch.
func (c *Client) StepEpoch(ctx context.Context, id string) (server.SessionView, error) {
	return c.StepEpochs(ctx, id, 1)
}

// StepEpochs advances the session n epochs under one request.
func (c *Client) StepEpochs(ctx context.Context, id string, n int) (server.SessionView, error) {
	var v server.SessionView
	body := map[string]int{"epochs": n}
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/epoch", body, &v)
	return v, err
}

// Telemetry applies monitor updates (market: demand/weight; sim: context
// switches) between epochs.
func (c *Client) Telemetry(ctx context.Context, id string, t server.TelemetrySpec) (server.SessionView, error) {
	var v server.SessionView
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/telemetry", t, &v)
	return v, err
}

// Result returns a sim session's run summary so far.
func (c *Client) Result(ctx context.Context, id string) (server.SimResultView, error) {
	var v server.SimResultView
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/result", nil, &v)
	return v, err
}

// Health is the /healthz response.
type Health struct {
	Status        string `json:"status"`
	Sessions      int    `json:"sessions"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// Healthz probes daemon liveness. A draining daemon answers HTTP 503, which
// surfaces here as an *APIError.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics scrapes /metrics and returns the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/metrics", false, nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	return string(raw), nil
}
