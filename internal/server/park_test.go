package server

import (
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// spawnSession builds a session through the same engine path handleCreate
// uses, bypassing HTTP — the fixture for density tests where 10k round-trips
// would dominate the test budget.
func spawnSession(srv *Server, spec SessionSpec) (*session, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	est := newCostEstimator(spec.guessCores())
	eng, err := srv.buildEngine(spec, nil, est)
	if err != nil {
		return nil, err
	}
	sess := srv.newSession(spec.ID, spec, eng, est, 0)
	if _, err := srv.store.add(sess); err != nil {
		sess.close()
		return nil, err
	}
	return sess, nil
}

func fig3Spec(id, mech string) SessionSpec {
	return SessionSpec{ID: id, Workload: WorkloadSpec{Fig3: true}, Mechanism: mech}
}

// TestParkUnparkBitIdentity: a session that hibernates mid-run and is woken
// by the next epoch request must produce exactly the allocations of an
// uninterrupted twin — unpark rides the snapshot-restore path that already
// guarantees warm-start bit-identity.
func TestParkUnparkBitIdentity(t *testing.T) {
	srv, ts := newTestDaemon(t, Config{ParkAfter: time.Hour})
	for _, id := range []string{"cold", "warm"} {
		if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", fig3Spec(id, "rebudget-0.05"), nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d", id, resp.StatusCode)
		}
	}
	step := func(id string) SessionView {
		var v SessionView
		if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/epoch", nil, &v); resp.StatusCode != http.StatusOK {
			t.Fatalf("epoch %s: %d", id, resp.StatusCode)
		}
		return v
	}
	for i := 0; i < 3; i++ {
		step("cold")
		step("warm")
	}

	sess := srv.store.get("cold")
	if sess == nil {
		t.Fatal("cold session missing")
	}
	if !sess.park(time.Now(), 0) {
		t.Fatal("park refused")
	}
	if !sess.isParked() {
		t.Fatal("session not marked parked")
	}
	// A parked session still answers reads from its cached view — without
	// waking up.
	var view SessionView
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/cold", nil, &view); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET parked: %d", resp.StatusCode)
	}
	if view.Epochs != 3 {
		t.Fatalf("parked view epochs = %d, want 3", view.Epochs)
	}
	if !sess.isParked() {
		t.Fatal("GET woke the parked session")
	}

	// Epochs transparently unpark; outputs must match the uninterrupted twin
	// epoch for epoch.
	for i := 0; i < 3; i++ {
		vc, vw := step("cold"), step("warm")
		if i == 0 && sess.isParked() {
			t.Fatal("epoch request did not unpark the session")
		}
		if vc.Epochs != vw.Epochs {
			t.Fatalf("epoch drift: cold %d vs warm %d", vc.Epochs, vw.Epochs)
		}
		if !reflect.DeepEqual(vc.Alloc, vw.Alloc) {
			t.Fatalf("epoch %d: parked/unparked allocations diverge:\ncold: %+v\nwarm: %+v", vc.Epochs, vc.Alloc, vw.Alloc)
		}
	}
	if srv.met.unparked.Load() != 1 {
		t.Fatalf("unparked counter = %d, want 1", srv.met.unparked.Load())
	}
}

// TestParkSweepPolicy: the sweep parks sessions idle past ParkAfter, skips
// ticker sessions (self-driving, never idle by design), skips fresh ones,
// and the parked population is visible on /metrics. Deleting a parked
// session must release it cleanly.
func TestParkSweepPolicy(t *testing.T) {
	srv, ts := newTestDaemon(t, Config{ParkAfter: time.Minute})
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", fig3Spec("idle", "equalshare"), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create idle: %d", resp.StatusCode)
	}
	ticky := fig3Spec("ticky", "equalshare")
	ticky.TickerMillis = 50
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", ticky, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create ticky: %d", resp.StatusCode)
	}

	// Nothing parks before the deadline.
	srv.parkSweep(time.Now())
	if srv.met.parked.Load() != 0 {
		t.Fatal("fresh session parked prematurely")
	}
	// Past the deadline the idle session parks; the ticker session never does.
	srv.parkSweep(time.Now().Add(5 * time.Minute))
	if got := srv.met.parked.Load(); got != 1 {
		t.Fatalf("parked counter = %d, want 1", got)
	}
	if srv.store.get("ticky").isParked() {
		t.Fatal("ticker session was parked")
	}
	if !srv.store.get("idle").isParked() {
		t.Fatal("idle session was not parked")
	}

	var metrics string
	{
		resp := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
		buf := make([]byte, 1<<20)
		n, _ := resp.Body.Read(buf)
		metrics = string(buf[:n])
	}
	if !strings.Contains(metrics, "rebudgetd_sessions_parked 1") {
		t.Fatal("/metrics missing parked gauge")
	}
	if !strings.Contains(metrics, "rebudgetd_sessions_parked_total 1") {
		t.Fatal("/metrics missing parked counter")
	}

	// Deleting a parked session releases it without waking it first.
	if resp := doJSON(t, "DELETE", ts.URL+"/v1/sessions/idle", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete parked: %d", resp.StatusCode)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d after delete, want 1", srv.Sessions())
	}
}

// Test10kParkedSessionsGoroutineBound: ten thousand hibernating sessions
// must cost ~zero goroutines — the loop goroutine exits at park and only
// respawns on touch. Sessions are created in waves so peak engine residency
// stays bounded while the final parked population is the full 10k.
func Test10kParkedSessionsGoroutineBound(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-session density test skipped in -short mode")
	}
	const (
		total = 10000
		wave  = 2500
	)
	// Capacity is enforced per segment under striping, so an exactly-sized
	// store capacity-evicts on hash imbalance; provision ~25% headroom like
	// a real deployment would.
	srv, ts := newTestDaemon(t, Config{MaxSessions: total + total/4, ParkAfter: time.Minute})
	before := runtime.NumGoroutine()

	errs := make(chan error, total)
	for base := 0; base < total; base += wave {
		var wg sync.WaitGroup
		sem := make(chan struct{}, 16)
		for i := base; i < base+wave; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := spawnSession(srv, fig3Spec(fmt.Sprintf("d-%05d", i), "equalshare")); err != nil {
					errs <- err
				}
			}(i)
		}
		wg.Wait()
		srv.parkSweep(time.Now().Add(5 * time.Minute))
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.met.parked.Load(); got != total {
		t.Fatalf("parked counter = %d, want %d", got, total)
	}
	if srv.Sessions() != total {
		t.Fatalf("sessions = %d, want %d", srv.Sessions(), total)
	}

	// Goroutines must return to near the pre-density baseline: parked
	// sessions own no loop, no ticker, no timer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+64 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d with 10k parked sessions (baseline %d)", g, before)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A random resident still wakes on touch.
	var v SessionView
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/d-04321/epoch", nil, &v); resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch on parked resident: %d", resp.StatusCode)
	}
	if v.Epochs != 1 {
		t.Fatalf("woken session epochs = %d, want 1", v.Epochs)
	}
}

// BenchmarkResidentSessionBytes reports heap bytes per resident session for
// the running and parked states — the before/after for hibernation. Run with
// -benchtime=1x; the measurement is a single census, not a loop.
func BenchmarkResidentSessionBytes(b *testing.B) {
	for _, mode := range []string{"running", "parked"} {
		b.Run(mode, func(b *testing.B) {
			const n = 2000
			srv, _ := newTestDaemon(b, Config{MaxSessions: n + 16, ParkAfter: time.Hour, Logger: quietLogger()})
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			for i := 0; i < n; i++ {
				if _, err := spawnSession(srv, fig3Spec(fmt.Sprintf("b-%05d", i), "equalshare")); err != nil {
					b.Fatal(err)
				}
			}
			if mode == "parked" {
				srv.parkSweep(time.Now().Add(2 * time.Hour))
			}
			runtime.GC()
			runtime.ReadMemStats(&m1)
			b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc)/n, "bytes/session")
			for i := 0; i < b.N; i++ {
				// The metric above is the point; keep the harness happy.
			}
		})
	}
}
