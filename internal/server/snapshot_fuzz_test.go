package server_test

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"rebudget/internal/server"
)

// FuzzSnapshotLoad hammers the snapshot decode path with arbitrary bytes:
// whatever is on disk — valid v1/v2/v3 files, truncated checksums, garbage
// JSON, wrong versions — Load must either return a valid snapshot or
// ErrNoSnapshot (a cold start). It must never panic and never surface any
// other error: the rehydrate path's contract is "no worse than cold".
func FuzzSnapshotLoad(f *testing.F) {
	valid := &server.SessionSnapshot{
		Version: server.SnapshotVersion,
		ID:      "fuzz",
		Spec: server.SessionSpec{
			ID: "fuzz", Tenant: "acme/prod",
			Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare",
		},
		Epochs:  3,
		Health:  "ok",
		SavedAt: time.Unix(1700000000, 0).UTC(),
	}
	seedStore, err := server.NewFileSnapshotStore(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	if err := seedStore.Save(valid); err != nil {
		f.Fatal(err)
	}
	validBytes, err := seedStore.LoadRaw("fuzz")
	if err != nil {
		f.Fatal(err)
	}

	v1, _ := json.Marshal(map[string]any{"version": 1, "id": "fuzz", "epochs": 1})
	v2, _ := json.Marshal(map[string]any{"version": 2, "id": "fuzz", "epochs": 1})
	v2bad, _ := json.Marshal(map[string]any{
		"version": 2, "id": "fuzz", "epochs": 1, "checksum": "crc32:00000000",
	})

	f.Add(validBytes)                                      // well-formed v3 with a good checksum
	f.Add(v1)                                              // v1: no checksum, accepted
	f.Add(v2)                                              // v2 without checksum: accepted vacuously
	f.Add(v2bad)                                           // checksum mismatch
	f.Add(validBytes[:len(validBytes)/2])                  // truncated mid-checksum
	f.Add([]byte(`{"version":3,`))                         // garbage JSON
	f.Add([]byte(`{"version":9,"id":"fuzz"}`))             // unknown version
	f.Add([]byte(`{"version":3,"id":"other","epochs":1}`)) // id mismatch
	f.Add([]byte(`{"version":3,"id":"fuzz","epochs":-1}`)) // negative epochs
	f.Add([]byte{})
	f.Add([]byte("null"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := server.NewFileSnapshotStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveRaw("fuzz", data); err != nil {
			t.Fatal(err)
		}
		snap, err := st.Load("fuzz")
		if err != nil {
			if !errors.Is(err, server.ErrNoSnapshot) {
				t.Fatalf("Load returned a non-ErrNoSnapshot error: %v", err)
			}
			return
		}
		// Accepted snapshots must be internally coherent — that is what the
		// rehydrate path assumes of them.
		if snap.ID != "fuzz" {
			t.Fatalf("accepted snapshot with mismatched id %q", snap.ID)
		}
		if snap.Version < 1 || snap.Version > server.SnapshotVersion {
			t.Fatalf("accepted snapshot with version %d", snap.Version)
		}
		if snap.Epochs < 0 {
			t.Fatalf("accepted snapshot with negative epochs %d", snap.Epochs)
		}
	})
}
