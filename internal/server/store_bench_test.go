package server

import (
	"fmt"
	"testing"
	"time"
)

// Contention A/B for the session store: segments=1 reproduces the old
// global-mutex LRU, higher counts are the striped layout. The acceptance
// bar for this package is BenchmarkStoreParallelGet/segments=16 at >= 4x
// the segments=1 throughput with GOMAXPROCS >= 4.

func benchStore(b *testing.B, segments, resident int) (*store, []string) {
	b.Helper()
	st := newStore(resident*2, time.Hour, segments)
	now := time.Now()
	ids := make([]string, resident)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%06d", i)
		if _, err := st.add(bareSession(ids[i], now)); err != nil {
			b.Fatal(err)
		}
	}
	return st, ids
}

func BenchmarkStoreParallelGet(b *testing.B) {
	for _, segs := range []int{1, 16} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			st, ids := benchStore(b, segs, 8192)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if st.get(ids[i&(len(ids)-1)]) == nil {
						b.Fatal("session vanished")
					}
					i++
				}
			})
		})
	}
}

func BenchmarkStoreParallelAdd(b *testing.B) {
	for _, segs := range []int{1, 16} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			st := newStore(1<<20, time.Hour, segs)
			now := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := fmt.Sprintf("churn-%p-%d", &i, i&1023)
					if _, err := st.add(bareSession(id, now)); err != nil {
						b.Fatal(err)
					}
					st.remove(id)
					i++
				}
			})
		})
	}
}
