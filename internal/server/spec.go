// Package server is the allocation-as-a-service layer: a multi-tenant HTTP
// daemon (cmd/rebudgetd) hosting many concurrent chip sessions. Each session
// owns an allocation mechanism — optionally core.Resilient-hardened — over
// either the analytic market (§6 phase 1) or the execution-driven cmpsim
// chip (§6.3 phase 2), re-allocating once per requested (or ticker-driven)
// epoch with warm-started equilibria, exactly how §4.3 schedules ReBudget
// off the APIC timer. Concurrent allocation work across sessions is
// coalesced onto a bounded dispatcher with backpressure, and the whole
// thing is observable through /metrics (Prometheus text format) and
// /healthz. See DESIGN.md, "Serving layer".
package server

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/fault"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// SessionSpec is the client-supplied description of a new chip session.
type SessionSpec struct {
	// ID optionally names the session ([A-Za-z0-9_-], ≤64 chars); the
	// server generates one when empty.
	ID string `json:"id,omitempty"`
	// Tenant labels the session with a tenant path ("acme" or
	// "acme/prod": [A-Za-z0-9_-] segments joined by "/"). When the daemon
	// runs the tenant budget economy (Config.Tenancy), the label selects
	// whose cost sub-budget admits this session's work; unknown tenants
	// self-register with default share and floor, and an empty label
	// falls back to the X-Rebudget-Tenant header, then the configured
	// default tenant. Without tenancy the label is carried and reported
	// but gates nothing.
	Tenant string `json:"tenant,omitempty"`
	// Workload selects the bundle the session allocates for.
	Workload WorkloadSpec `json:"workload"`
	// Mechanism is the allocator, in cmd/marketsim syntax: equalshare,
	// equalbudget, balanced, maxefficiency, rebudget-<step>, or rebudget
	// (which requires MinEnvyFreeness).
	Mechanism string `json:"mechanism"`
	// MinEnvyFreeness is the Theorem 2 fairness knob for "rebudget".
	MinEnvyFreeness float64 `json:"min_ef,omitempty"`
	// Mode selects the session engine: "market" (default) re-solves the
	// analytic market each epoch; "sim" steps the execution-driven cmpsim
	// chip, re-allocating on its ReallocEvery cadence.
	Mode string `json:"mode,omitempty"`
	// Bandwidth adds memory bandwidth as a third market resource.
	Bandwidth bool `json:"bandwidth,omitempty"`
	// Resilient wraps the mechanism in the core.Resilient fallback chain.
	// Defaults to true in market mode; in sim mode the chip's own
	// degraded-mode state machine plays that role, so it defaults to false.
	Resilient *bool `json:"resilient,omitempty"`
	// WarmStart (market mode, default true) threads each epoch's final bid
	// matrix into the next epoch's equilibrium via market.FindEquilibriumFrom,
	// so steady-state epochs re-converge from the previous one.
	WarmStart *bool `json:"warm_start,omitempty"`
	// Workers is the equilibrium round parallelism (market.Config.Workers):
	// 0 means GOMAXPROCS, 1 forces serial rounds.
	Workers int `json:"workers,omitempty"`
	// TickerMillis, when positive, drives epochs from a server-side ticker
	// at this wall-clock period instead of (only) client POSTs. Ticks that
	// hit dispatcher backpressure are dropped and counted.
	TickerMillis int `json:"ticker_ms,omitempty"`
	// Sim tunes the cmpsim engine; ignored in market mode.
	Sim *SimSpec `json:"sim,omitempty"`
}

// WorkloadSpec selects the session's bundle: the paper's Figure 3 bundle,
// an explicit application list (one per core), or a seeded random draw from
// a §5 category.
type WorkloadSpec struct {
	Category string   `json:"category,omitempty"`
	Cores    int      `json:"cores,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Fig3     bool     `json:"fig3,omitempty"`
	Apps     []string `json:"apps,omitempty"`
}

// SimSpec tunes a sim-mode session's chip.
type SimSpec struct {
	Seed                    uint64     `json:"seed,omitempty"`
	WarmupEpochs            int        `json:"warmup_epochs,omitempty"`
	ReallocEvery            int        `json:"realloc_every,omitempty"`
	MaxAccessesPerCoreEpoch int        `json:"max_accesses_per_core_epoch,omitempty"`
	WayPartition            bool       `json:"way_partition,omitempty"`
	Faults                  *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec enables deterministic fault injection in a sim session.
type FaultSpec struct {
	MonitorRate     float64 `json:"monitor_rate,omitempty"`
	UtilityRate     float64 `json:"utility_rate,omitempty"`
	SolverRate      float64 `json:"solver_rate,omitempty"`
	StallIterations int     `json:"stall_iterations,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
}

// TelemetrySpec is per-epoch monitor input POSTed between epochs. Market
// sessions accept per-player demand multipliers (a phase change scaling the
// utility surface) and budget weights; sim sessions accept context switches
// (§4.3), applied just before the next stepped epoch.
type TelemetrySpec struct {
	Players  []PlayerTelemetry `json:"players,omitempty"`
	Switches []SwitchSpec      `json:"switches,omitempty"`
}

// PlayerTelemetry updates one market player's monitored state.
type PlayerTelemetry struct {
	Player int `json:"player"`
	// Demand scales the player's utility surface (>0; 1 restores the
	// profiled baseline). Zero means "leave unchanged".
	Demand float64 `json:"demand,omitempty"`
	// Weight sets the player's budget weight (§5 coalitions). Zero means
	// "leave unchanged".
	Weight float64 `json:"weight,omitempty"`
}

// SwitchSpec schedules a context switch on a sim session.
type SwitchSpec struct {
	Core int    `json:"core"`
	App  string `json:"app"`
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// validTenantPath checks a tenant label: one or more id-shaped segments
// joined by "/".
func validTenantPath(p string) bool {
	for _, seg := range strings.Split(p, "/") {
		if !idPattern.MatchString(seg) {
			return false
		}
	}
	return true
}

func (s SessionSpec) validate() error {
	if s.ID != "" && !idPattern.MatchString(s.ID) {
		return fmt.Errorf("session id %q must match %s", s.ID, idPattern)
	}
	if s.Tenant != "" && !validTenantPath(s.Tenant) {
		return fmt.Errorf("tenant %q must be %s segments joined by \"/\"", s.Tenant, idPattern)
	}
	switch s.Mode {
	case "", ModeMarket, ModeSim:
	default:
		return fmt.Errorf("unknown mode %q (want %q or %q)", s.Mode, ModeMarket, ModeSim)
	}
	if s.TickerMillis < 0 {
		return fmt.Errorf("ticker_ms %d must be >= 0", s.TickerMillis)
	}
	if s.Sim != nil && s.Sim.Faults != nil {
		f := s.Sim.Faults
		for _, r := range []float64{f.MonitorRate, f.UtilityRate, f.SolverRate} {
			if r < 0 || r >= 1 {
				return fmt.Errorf("fault rate %g outside [0,1)", r)
			}
		}
	}
	return nil
}

// Session modes.
const (
	ModeMarket = "market"
	ModeSim    = "sim"
)

// guessCores estimates the session's core count from the spec alone —
// enough to seed the admission-cost prior before the bundle exists (the
// engine's actual count recalibrates it after construction).
func (s SessionSpec) guessCores() int {
	switch {
	case len(s.Workload.Apps) > 0:
		return len(s.Workload.Apps)
	case s.Workload.Cores > 0:
		return s.Workload.Cores
	default:
		// Figure 3 is the 8-core CPBB bundle; a bare category also
		// defaults to 8 cores in buildBundle.
		return 8
	}
}

func (s SessionSpec) mode() string {
	if s.Mode == "" {
		return ModeMarket
	}
	return s.Mode
}

func (s SessionSpec) resilient() bool {
	if s.Resilient != nil {
		return *s.Resilient
	}
	return s.mode() == ModeMarket
}

func (s SessionSpec) warmStart() bool {
	return s.WarmStart == nil || *s.WarmStart
}

func (s SessionSpec) faultConfig() fault.Config {
	if s.Sim == nil || s.Sim.Faults == nil {
		return fault.Config{}
	}
	f := s.Sim.Faults
	return fault.Config{
		MonitorRate:     f.MonitorRate,
		UtilityRate:     f.UtilityRate,
		SolverRate:      f.SolverRate,
		StallIterations: f.StallIterations,
		Seed:            f.Seed,
	}
}

// buildBundle materialises the workload selection.
func buildBundle(w WorkloadSpec) (workload.Bundle, error) {
	switch {
	case w.Fig3:
		return workload.Figure3Bundle()
	case len(w.Apps) > 0:
		b := workload.Bundle{Category: workload.Category(w.Category)}
		for _, name := range w.Apps {
			spec, err := app.Lookup(name)
			if err != nil {
				return workload.Bundle{}, err
			}
			b.Apps = append(b.Apps, spec)
		}
		return b, nil
	default:
		if w.Category == "" {
			return workload.Bundle{}, fmt.Errorf("workload needs fig3, apps, or a category")
		}
		cores := w.Cores
		if cores == 0 {
			cores = 8
		}
		seed := w.Seed
		if seed == 0 {
			seed = 1
		}
		return workload.Generate(workload.Category(w.Category), cores, numeric.NewRand(seed))
	}
}

// parseMechanism resolves the cmd/marketsim mechanism syntax.
func parseMechanism(name string, minEF float64) (core.Allocator, error) {
	switch {
	case name == "equalshare":
		return core.EqualShare{}, nil
	case name == "equalbudget":
		return core.EqualBudget{}, nil
	case name == "balanced":
		return core.Balanced{}, nil
	case name == "maxefficiency":
		return core.MaxEfficiency{}, nil
	case name == "rebudget":
		if minEF <= 0 {
			return nil, fmt.Errorf("mechanism %q needs min_ef > 0", name)
		}
		return core.ReBudget{MinEnvyFreeness: minEF}, nil
	case strings.HasPrefix(name, "rebudget-"):
		step, err := strconv.ParseFloat(strings.TrimPrefix(name, "rebudget-"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rebudget step in %q: %w", name, err)
		}
		return core.ReBudget{Step: step}, nil
	default:
		return nil, fmt.Errorf("unknown mechanism %q", name)
	}
}

// --- views (the JSON the daemon serves) ---

// SessionView is the client-visible state of a session.
type SessionView struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant,omitempty"`
	Mode      string          `json:"mode"`
	Mechanism string          `json:"mechanism"`
	Category  string          `json:"category,omitempty"`
	Cores     int             `json:"cores"`
	Epochs    int64           `json:"epochs"`
	Health    string          `json:"health"`
	CreatedAt time.Time       `json:"created_at"`
	LastUsed  time.Time       `json:"last_used"`
	LastError string          `json:"last_error,omitempty"`
	Alloc     *AllocationView `json:"allocation,omitempty"`
	Sim       *SimView        `json:"sim,omitempty"`
}

// AllocationView is the latest allocator outcome: the current allocation,
// budgets, MUR/MBR and the theory bounds they imply.
type AllocationView struct {
	Players         []string    `json:"players"`
	Allocations     [][]float64 `json:"allocations"`
	Budgets         []float64   `json:"budgets,omitempty"`
	Utilities       []float64   `json:"utilities"`
	Lambdas         []float64   `json:"lambdas,omitempty"`
	MUR             *float64    `json:"mur,omitempty"`
	MBR             *float64    `json:"mbr,omitempty"`
	PoABound        *float64    `json:"poa_bound,omitempty"`
	EFBound         *float64    `json:"ef_bound,omitempty"`
	Efficiency      float64     `json:"efficiency"`
	EnvyFreeness    *float64    `json:"envy_freeness,omitempty"`
	Iterations      int         `json:"iterations"`
	EquilibriumRuns int         `json:"equilibrium_runs"`
	Converged       bool        `json:"converged"`
}

// SimView is the hardware-facing state of a sim session.
type SimView struct {
	Epochs         int             `json:"epochs"`
	VirtualSeconds float64         `json:"virtual_seconds"`
	RegionTargets  []float64       `json:"region_targets"`
	FrequenciesGHz []float64       `json:"frequencies_ghz"`
	PowerBudgetsW  []float64       `json:"power_budgets_w"`
	BandwidthGBs   []float64       `json:"bandwidth_gbs,omitempty"`
	Health         HealthView      `json:"health"`
	Equilibrium    EquilibriumView `json:"equilibrium"`
}

// HealthView mirrors metrics.Health for JSON.
type HealthView struct {
	State           string `json:"state"`
	AllocAttempts   int    `json:"alloc_attempts"`
	AllocFailures   int    `json:"alloc_failures"`
	CurveRepairs    int    `json:"curve_repairs"`
	NonConverged    int    `json:"non_converged"`
	PinnedIntervals int    `json:"pinned_intervals"`
	Transitions     int    `json:"transitions"`
}

// EquilibriumView mirrors metrics.EquilibriumStats for JSON.
type EquilibriumView struct {
	Runs        int64   `json:"runs"`
	Rounds      int64   `json:"rounds"`
	BidSteps    int64   `json:"bid_steps"`
	WallSeconds float64 `json:"wall_seconds"`
}

// SimResultView is the full cmpsim Result summary for a sim session.
type SimResultView struct {
	Mechanism       string          `json:"mechanism"`
	NormPerf        []float64       `json:"norm_perf"`
	WeightedSpeedup float64         `json:"weighted_speedup"`
	EnvyFreeness    float64         `json:"envy_freeness"`
	MeanIterations  float64         `json:"mean_iterations"`
	AvgPowerW       float64         `json:"avg_power_w"`
	MaxTempC        float64         `json:"max_temp_c"`
	ThrottleEpochs  int             `json:"throttle_epochs"`
	Health          HealthView      `json:"health"`
	Equilibrium     EquilibriumView `json:"equilibrium"`
}

// finitePtr returns a pointer to v, or nil when v is NaN/Inf — JSON cannot
// carry non-finite floats, and "absent" is the honest encoding of "not
// applicable".
func finitePtr(v float64) *float64 {
	if v != v || v > 1e308 || v < -1e308 {
		return nil
	}
	return &v
}
