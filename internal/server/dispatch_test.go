package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDispatcherBackpressure(t *testing.T) {
	d := newDispatcher(1, 1, 0)
	ctx := context.Background()
	l, err := d.acquire(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter is allowed to queue...
	waited := make(chan error, 1)
	go func() {
		wl, err := d.acquire(ctx, 1)
		if err == nil {
			defer wl.release()
		}
		waited <- err
	}()
	// Give the waiter time to enter the queue, then a second waiter must be
	// rejected immediately.
	deadline := time.After(2 * time.Second)
	for d.queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := d.acquire(ctx, 1); !errors.Is(err, errBusy) {
		t.Fatalf("expected errBusy, got %v", err)
	}
	// Releasing the lease hands the capacity to the queued waiter.
	l.release()
	if err := <-waited; err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherQueuedCostBound(t *testing.T) {
	// Queue bound by cost depth: capacity 2, max queued cost 3. With the
	// capacity claimed, a queued cost-2 waiter leaves room for one more
	// unit — a second cost-2 waiter must bounce even though the request
	// count (maxWait 100) is nowhere near its bound.
	d := newDispatcher(2, 100, 3)
	l, err := d.acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		wl, err := d.acquire(context.Background(), 2)
		if err == nil {
			wl.release()
		}
		queued <- err
	}()
	waitQueued(t, d, 1)
	if _, err := d.acquire(context.Background(), 2); !errors.Is(err, errBusy) {
		t.Fatalf("expected errBusy from cost-depth bound, got %v", err)
	}
	// A one-unit waiter still fits under the cost bound.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := d.acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("one-unit waiter should queue (then expire), got %v", err)
	}
	l.release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	l, err = d.acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	l.release()
}

func TestDispatcherAcquireRespectsDeadline(t *testing.T) {
	d := newDispatcher(1, 4, 0)
	l, err := d.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := d.acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	// The expired waiter must have left the queue: its slot frees up for
	// a fresh waiter, and the released capacity reaches that waiter, not
	// the dead one.
	if got := d.queued(); got != 0 {
		t.Fatalf("expired waiter still queued: %d", got)
	}
	done := make(chan error, 1)
	go func() {
		wl, err := d.acquire(context.Background(), 1)
		if err == nil {
			wl.release()
		}
		done <- err
	}()
	waitQueued(t, d, 1)
	l.release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherTryAcquire(t *testing.T) {
	d := newDispatcher(1, 1, 0)
	l, ok := d.tryAcquire(1)
	if !ok {
		t.Fatal("tryAcquire on free dispatcher failed")
	}
	if _, ok := d.tryAcquire(1); ok {
		t.Fatal("tryAcquire on full dispatcher succeeded")
	}
	l.release()
	l, ok = d.tryAcquire(1)
	if !ok {
		t.Fatal("tryAcquire after release failed")
	}
	l.release()
}

// TestDispatcherFIFOWakeOrder pins the starvation fix: waiters must be
// granted strictly in arrival order. The old bare-channel dispatcher woke a
// random waiter per release, so a long waiter could lose to fresh arrivals
// indefinitely.
func TestDispatcherFIFOWakeOrder(t *testing.T) {
	d := newDispatcher(1, 16, 100)
	l, err := d.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			wl, err := d.acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			wl.release()
		}()
		// Wait until waiter i is in the queue before launching i+1, so
		// arrival order is deterministic.
		waitQueued(t, d, int64(i+1))
	}
	l.release()
	for want := 0; want < n; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("wake order: got waiter %d, want %d (FIFO violated)", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d never woke", want)
		}
	}
}

// TestDispatcherNoStarvationUnderChurn is the regression test for the
// waiter-races-fresh-arrival bug: while one request waits, a stream of
// fresh arrivals (tryAcquire and immediate-deadline acquires) must never
// overtake it once capacity frees.
func TestDispatcherNoStarvationUnderChurn(t *testing.T) {
	d := newDispatcher(1, 4, 0)
	l, err := d.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		wl, err := d.acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		close(got)
		wl.release()
	}()
	waitQueued(t, d, 1)
	// Churn: fresh arrivals hammer the dispatcher from several goroutines.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if wl, ok := d.tryAcquire(1); ok {
					// The waiter is queued; a fresh arrival must not win.
					select {
					case <-got:
						// Granted before us — fine, this claim came later.
					default:
						t.Error("fresh tryAcquire barged past a queued waiter")
					}
					wl.release()
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
				wl, err := d.acquire(ctx, 1)
				cancel()
				if err == nil {
					select {
					case <-got:
						// Granted after the waiter finished — legitimate.
					default:
						t.Error("fresh acquire overtook the queued waiter")
					}
					wl.release()
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the churn run against the held lease
	l.release()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("long waiter starved: capacity release never reached it")
	}
	close(stop)
	wg.Wait()
}

// TestDispatcherOversizeAdmitsAlone pins the oversize rule: a request
// costing more than total capacity is clamped, admits once the dispatcher
// drains, and holds the whole capacity rather than deadlocking forever.
func TestDispatcherOversizeAdmitsAlone(t *testing.T) {
	d := newDispatcher(4, 8, 0)
	small, err := d.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	huge := make(chan *lease, 1)
	go func() {
		wl, err := d.acquire(context.Background(), 100) // 25× capacity
		if err != nil {
			t.Error(err)
			return
		}
		huge <- wl
	}()
	waitQueued(t, d, 1)
	small.release()
	var hl *lease
	select {
	case hl = <-huge:
	case <-time.After(2 * time.Second):
		t.Fatal("oversize request deadlocked instead of admitting alone")
	}
	if got := d.inFlightCost(); got != 4 {
		t.Fatalf("oversize lease claims %g units, want the full capacity 4", got)
	}
	// While it holds everything, nothing else fits...
	if _, ok := d.tryAcquire(1); ok {
		t.Fatal("tryAcquire succeeded under an oversize lease")
	}
	hl.release()
	// ...and afterwards the dispatcher is whole again.
	if got := d.inFlightCost(); got != 0 {
		t.Fatalf("inFlightCost after oversize release = %g, want 0", got)
	}
}

// TestDispatcherWeightedAdmission checks that cost, not request count,
// bounds concurrency: capacity 4 admits four cost-1 requests but only one
// cost-3 plus one cost-1.
func TestDispatcherWeightedAdmission(t *testing.T) {
	d := newDispatcher(4, 8, 0)
	big, err := d.acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	one, ok := d.tryAcquire(1)
	if !ok {
		t.Fatal("cost-1 should fit beside cost-3 under capacity 4")
	}
	if _, ok := d.tryAcquire(1); ok {
		t.Fatal("cost exhausted: a further unit must not fit")
	}
	one.release()
	big.release()
}

// TestDispatcherRetryAfterTracksCostDepth pins Retry-After semantics: a
// queue holding more cost units hints a longer retry than one holding the
// same number of cheaper requests.
func TestDispatcherRetryAfterTracksCostDepth(t *testing.T) {
	mk := func(queueCost float64) time.Duration {
		d := newDispatcher(2, 16, 1e9)
		l, err := d.acquire(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		defer l.release()
		for i := 0; i < 3; i++ {
			go func() {
				if wl, err := d.acquire(context.Background(), queueCost); err == nil {
					wl.release()
				}
			}()
		}
		waitQueued(t, d, 3)
		return d.retryAfter()
	}
	cheap := mk(0.5)
	costly := mk(2)
	if costly <= cheap {
		t.Fatalf("Retry-After ignores cost depth: 3×2.0 queued → %v, 3×0.5 queued → %v", costly, cheap)
	}
}

// waitQueued blocks until the dispatcher reports n queued waiters.
func waitQueued(t *testing.T, d *dispatcher, n int64) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for d.queued() < n {
		select {
		case <-deadline:
			t.Fatalf("never reached %d queued waiters (have %d)", n, d.queued())
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
}
