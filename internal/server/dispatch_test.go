package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDispatcherBackpressure(t *testing.T) {
	d := newDispatcher(1, 1)
	ctx := context.Background()
	if err := d.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// One waiter is allowed to queue...
	waited := make(chan error, 1)
	go func() {
		waited <- d.acquire(ctx)
	}()
	// Give the waiter time to enter the queue, then a second waiter must be
	// rejected immediately.
	deadline := time.After(2 * time.Second)
	for d.queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := d.acquire(ctx); !errors.Is(err, errBusy) {
		t.Fatalf("expected errBusy, got %v", err)
	}
	// Releasing the slot hands it to the queued waiter.
	d.release()
	if err := <-waited; err != nil {
		t.Fatal(err)
	}
	d.release()
}

func TestDispatcherAcquireRespectsDeadline(t *testing.T) {
	d := newDispatcher(1, 4)
	if err := d.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := d.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	d.release()
}

func TestDispatcherTryAcquire(t *testing.T) {
	d := newDispatcher(1, 1)
	if !d.tryAcquire() {
		t.Fatal("tryAcquire on free dispatcher failed")
	}
	if d.tryAcquire() {
		t.Fatal("tryAcquire on full dispatcher succeeded")
	}
	d.release()
	if !d.tryAcquire() {
		t.Fatal("tryAcquire after release failed")
	}
	d.release()
}
