package server

import (
	"fmt"
	"testing"
	"time"
)

// bareSession builds a session shell (no engine, no loop) for store tests.
func bareSession(id string, lastUsed time.Time) *session {
	return &session{id: id, lastUsed: lastUsed}
}

func TestStoreLRUEviction(t *testing.T) {
	st := newStore(3, 0)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := st.add(bareSession(fmt.Sprintf("s%d", i), now)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch s0 so s1 becomes LRU.
	if st.get("s0") == nil {
		t.Fatal("s0 missing")
	}
	ev, err := st.add(bareSession("s3", now))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.id != "s1" {
		t.Fatalf("expected s1 evicted, got %v", ev)
	}
	if st.get("s1") != nil {
		t.Fatal("s1 still resident after eviction")
	}
	if st.len() != 3 {
		t.Fatalf("len = %d, want 3", st.len())
	}
}

func TestStoreDuplicateID(t *testing.T) {
	st := newStore(4, 0)
	if _, err := st.add(bareSession("dup", time.Now())); err != nil {
		t.Fatal(err)
	}
	if _, err := st.add(bareSession("dup", time.Now())); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestStoreSweepIdle(t *testing.T) {
	st := newStore(8, time.Minute)
	now := time.Now()
	stale := bareSession("stale", now.Add(-2*time.Minute))
	fresh := bareSession("fresh", now)
	if _, err := st.add(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := st.add(fresh); err != nil {
		t.Fatal(err)
	}
	idle := st.sweepIdle(now)
	if len(idle) != 1 || idle[0].id != "stale" {
		t.Fatalf("sweepIdle = %v, want [stale]", idle)
	}
	if st.get("stale") != nil {
		t.Fatal("stale session still resident")
	}
	if st.get("fresh") == nil {
		t.Fatal("fresh session swept")
	}
}

func TestStoreRemoveAndDrain(t *testing.T) {
	st := newStore(8, 0)
	if _, err := st.add(bareSession("a", time.Now())); err != nil {
		t.Fatal(err)
	}
	if _, err := st.add(bareSession("b", time.Now())); err != nil {
		t.Fatal(err)
	}
	if st.remove("a") == nil {
		t.Fatal("remove(a) = nil")
	}
	if st.remove("a") != nil {
		t.Fatal("double remove returned a session")
	}
	all := st.drain()
	if len(all) != 1 || all[0].id != "b" {
		t.Fatalf("drain = %v, want [b]", all)
	}
	if st.len() != 0 {
		t.Fatal("store non-empty after drain")
	}
}
