package server

import (
	"sync"
	"fmt"
	"testing"
	"time"
)

// bareSession builds a session shell (no engine, no loop) for store tests.
func bareSession(id string, lastUsed time.Time) *session {
	return &session{id: id, lastUsed: lastUsed}
}

func TestStoreLRUEviction(t *testing.T) {
	st := newStore(3, 0, 1)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := st.add(bareSession(fmt.Sprintf("s%d", i), now)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch s0 so s1 becomes LRU.
	if st.get("s0") == nil {
		t.Fatal("s0 missing")
	}
	ev, err := st.add(bareSession("s3", now))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.id != "s1" {
		t.Fatalf("expected s1 evicted, got %v", ev)
	}
	if st.get("s1") != nil {
		t.Fatal("s1 still resident after eviction")
	}
	if st.len() != 3 {
		t.Fatalf("len = %d, want 3", st.len())
	}
}

func TestStoreDuplicateID(t *testing.T) {
	st := newStore(4, 0, 1)
	if _, err := st.add(bareSession("dup", time.Now())); err != nil {
		t.Fatal(err)
	}
	if _, err := st.add(bareSession("dup", time.Now())); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestStoreSweepIdle(t *testing.T) {
	st := newStore(8, time.Minute, 1)
	now := time.Now()
	stale := bareSession("stale", now.Add(-2*time.Minute))
	fresh := bareSession("fresh", now)
	if _, err := st.add(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := st.add(fresh); err != nil {
		t.Fatal(err)
	}
	idle := st.sweepIdle(now)
	if len(idle) != 1 || idle[0].id != "stale" {
		t.Fatalf("sweepIdle = %v, want [stale]", idle)
	}
	if st.get("stale") != nil {
		t.Fatal("stale session still resident")
	}
	if st.get("fresh") == nil {
		t.Fatal("fresh session swept")
	}
}

func TestStoreRemoveAndDrain(t *testing.T) {
	st := newStore(8, 0, 1)
	if _, err := st.add(bareSession("a", time.Now())); err != nil {
		t.Fatal(err)
	}
	if _, err := st.add(bareSession("b", time.Now())); err != nil {
		t.Fatal(err)
	}
	if st.remove("a") == nil {
		t.Fatal("remove(a) = nil")
	}
	if st.remove("a") != nil {
		t.Fatal("double remove returned a session")
	}
	all := st.drain()
	if len(all) != 1 || all[0].id != "b" {
		t.Fatalf("drain = %v, want [b]", all)
	}
	if st.len() != 0 {
		t.Fatal("store non-empty after drain")
	}
}

// TestStoreDefaultSegments pins the auto-sizing curve: small daemons stay
// effectively global-LRU, density configs stripe wide.
func TestStoreDefaultSegments(t *testing.T) {
	cases := []struct{ max, want int }{
		{2, 1}, {64, 1}, {128, 2}, {1024, 16}, {100000, 64}, {1 << 20, 64},
	}
	for _, tc := range cases {
		if got := defaultSegments(tc.max); got != tc.want {
			t.Errorf("defaultSegments(%d) = %d, want %d", tc.max, got, tc.want)
		}
		st := newStore(tc.max, 0, 0)
		if st.segments() != tc.want {
			t.Errorf("newStore(%d).segments() = %d, want %d", tc.max, st.segments(), tc.want)
		}
	}
	// Requested counts round up to a power of two; absurd counts collapse.
	if st := newStore(1024, 0, 3); st.segments() != 4 {
		t.Errorf("segments=3 should round to 4, got %d", st.segments())
	}
	if st := newStore(2, 0, 64); st.segments() != 1 {
		t.Errorf("more segments than capacity should collapse to 1, got %d", st.segments())
	}
}

// sameSegmentIDs finds n distinct ids hashing to the segment of seed.
func sameSegmentIDs(st *store, seed string, n int) []string {
	ids := []string{seed}
	target := st.seg(seed)
	for i := 0; len(ids) < n; i++ {
		id := fmt.Sprintf("%s-%d", seed, i)
		if st.seg(id) == target {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestStoreSegmentBoundaryEviction: with striping, capacity eviction is
// per-segment — filling one segment past its share evicts that segment's LRU
// even while the store as a whole is under max, and the eviction order
// within the segment is exact LRU.
func TestStoreSegmentBoundaryEviction(t *testing.T) {
	st := newStore(8, 0, 4) // 4 segments × 2 sessions each
	now := time.Now()
	ids := sameSegmentIDs(st, "seg", 3)
	for _, id := range ids[:2] {
		if _, err := st.add(bareSession(id, now)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the first so the second becomes the segment's LRU.
	if st.get(ids[0]) == nil {
		t.Fatalf("%s missing", ids[0])
	}
	ev, err := st.add(bareSession(ids[2], now))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.id != ids[1] {
		t.Fatalf("expected %s evicted at the segment boundary, got %v", ids[1], ev)
	}
	if st.len() != 2 {
		t.Fatalf("len = %d, want 2", st.len())
	}
	// A session in a different segment is untouched by the other's pressure.
	other := "x"
	for st.seg(other) == st.seg(ids[0]) {
		other += "x"
	}
	if _, err := st.add(bareSession(other, now)); err != nil {
		t.Fatal(err)
	}
	if st.get(other) == nil || st.get(ids[0]) == nil {
		t.Fatal("cross-segment add disturbed an unrelated segment")
	}
}

// TestStoreStripedConsistency hammers a striped store with concurrent
// add/get/remove/list/sweep churn; meaningful under -race, and the final
// resident count must reconcile with what the segments actually hold.
func TestStoreStripedConsistency(t *testing.T) {
	st := newStore(256, time.Hour, 8)
	now := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i%32)
				switch i % 4 {
				case 0:
					_, _ = st.add(bareSession(id, now))
				case 1:
					st.get(id)
				case 2:
					st.remove(id)
				case 3:
					st.list()
					st.sweepIdle(now)
					st.idleCandidates(now, time.Minute)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := st.len(), len(st.list()); got != want {
		t.Fatalf("resident count %d disagrees with list length %d", got, want)
	}
	for _, s := range st.drain() {
		_ = s
	}
	if st.len() != 0 {
		t.Fatalf("len = %d after drain", st.len())
	}
}
