package server

import (
	"errors"
	"os"
	"sync"
)

// MemorySnapshotStore keeps snapshots in process memory — no durability
// across a process death, but the full SnapshotStore contract otherwise.
// It is the replica primitive under cluster.ReplicatedSnapshotStore (N
// in-memory copies across nodes stand in for shared disk) and the default
// backing of the HTTP snapshot service. It implements RawSnapshotStore, so
// the chaos layer's torn-write and bit-rot faults exercise it exactly like
// the file store.
type MemorySnapshotStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemorySnapshotStore returns an empty in-memory store.
func NewMemorySnapshotStore() *MemorySnapshotStore {
	return &MemorySnapshotStore{blobs: make(map[string][]byte)}
}

// Save implements SnapshotStore.
func (ms *MemorySnapshotStore) Save(snap *SessionSnapshot) error {
	buf, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	return ms.SaveRaw(snap.ID, buf)
}

// Load implements SnapshotStore.
func (ms *MemorySnapshotStore) Load(id string) (*SessionSnapshot, error) {
	buf, err := ms.LoadRaw(id)
	if err != nil {
		return nil, ErrNoSnapshot
	}
	return DecodeSnapshot(id, buf)
}

// Delete implements SnapshotStore; deleting an absent snapshot is not an
// error.
func (ms *MemorySnapshotStore) Delete(id string) error {
	ms.mu.Lock()
	delete(ms.blobs, id)
	ms.mu.Unlock()
	return nil
}

// SaveRaw implements RawSnapshotStore: data is copied, so later mutation of
// the caller's buffer cannot corrupt the stored snapshot.
func (ms *MemorySnapshotStore) SaveRaw(id string, data []byte) error {
	if !idPattern.MatchString(id) {
		return errors.New("snapshot id " + id + " not storable")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	ms.mu.Lock()
	ms.blobs[id] = cp
	ms.mu.Unlock()
	return nil
}

// LoadRaw implements RawSnapshotStore; the returned bytes are a copy for
// the same reason SaveRaw copies.
func (ms *MemorySnapshotStore) LoadRaw(id string) ([]byte, error) {
	ms.mu.RLock()
	buf, ok := ms.blobs[id]
	ms.mu.RUnlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	return cp, nil
}

// Len reports the stored snapshot count (tests and /metrics).
func (ms *MemorySnapshotStore) Len() int {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return len(ms.blobs)
}
