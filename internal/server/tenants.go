package server

import (
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rebudget/internal/tenant"
)

// TenantHeader is the HTTP header carrying a tenant label when the session
// spec doesn't: the router forwards it verbatim, and handleCreate uses it
// as the spec's default.
const TenantHeader = "X-Rebudget-Tenant"

// EpochHeader is the HTTP header an elastic router stamps on every
// response with its current membership epoch; long-lived clients watch it
// to refresh sticky/fallback routing state after a membership change.
// (Declared here beside TenantHeader so client and router share one
// definition without importing each other.)
const EpochHeader = "X-Rebudget-Epoch"

// TenancyConfig arms the hierarchical tenant budget economy: the
// dispatcher's cost capacity is divided across a tenant tree
// (internal/tenant), each tenant's sessions admit against its granted
// sub-budget, and an epoch ticker rebalances grants — lending idle
// tenants' headroom, reclaiming it with bounded cuts when demand returns.
// A nil TenancyConfig (the default) leaves admission exactly as before:
// one flat dispatcher budget.
type TenancyConfig struct {
	// Tenants pre-declares the tree under the root (optional): unknown
	// labels self-register as leaves with default share, weight and floor.
	Tenants []tenant.NodeSpec
	// Epoch is the rebalance period (default 250ms).
	Epoch time.Duration
	// Capacity is the root budget in dispatcher cost units (default: the
	// dispatcher's concurrent cost capacity).
	Capacity float64
	// MBRFloor is the default per-tenant fairness floor (default 0.25).
	MBRFloor float64
	// DisableLending freezes tenants at static quotas (the A/B control
	// the tenant experiments sweep measures against).
	DisableLending bool
	// DefaultTenant labels sessions that arrive with neither a spec
	// tenant nor a TenantHeader (default "default").
	DefaultTenant string
}

func (c TenancyConfig) withDefaults() TenancyConfig {
	if c.Epoch <= 0 {
		c.Epoch = 250 * time.Millisecond
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	return c
}

// tenantUsage is one tenant's admission-side state, guarded by the
// governor mutex.
type tenantUsage struct {
	// inFlight is the cost currently admitted under this tenant's grant.
	inFlight float64
	// peak is the highest wanted in-flight cost (admitted or refused)
	// since the last rebalance — the demand signal. Refused demand counts:
	// a starved tenant must look demanding, or it could never grow.
	peak float64
	// demand is the value last fed to the tree: peak, decayed geometrically
	// so demand falls smoothly after a burst instead of collapsing to the
	// instantaneous in-flight level.
	demand   float64
	admitted int64
	rejected int64
}

// tenantGovernor gates admission by tenant: each tenant's concurrent cost
// is capped by its granted share of the dispatcher budget, and a ticker
// drives the tree's lend/reclaim epochs. It sits in front of the existing
// weighted FIFO dispatcher — the dispatcher still bounds the fleet total;
// the governor decides whose requests may claim it, so one tenant cannot
// starve another at admission time.
type tenantGovernor struct {
	tree          *tenant.Tree
	epoch         time.Duration
	defaultTenant string
	log           *slog.Logger

	mu    sync.Mutex
	usage map[string]*tenantUsage

	stop chan struct{}
	done chan struct{}
}

// newTenantGovernor builds the tree, runs the first rebalance (so
// configured tenants hold their parked slices before any traffic), and
// starts the epoch ticker.
func newTenantGovernor(cfg TenancyConfig, dispCapacity float64, log *slog.Logger) (*tenantGovernor, error) {
	cfg = cfg.withDefaults()
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = dispCapacity
	}
	tree, err := tenant.New(cfg.Tenants, tenant.Config{
		Capacity:        capacity,
		DefaultMBRFloor: cfg.MBRFloor,
		DisableLending:  cfg.DisableLending,
	})
	if err != nil {
		return nil, err
	}
	g := &tenantGovernor{
		tree:          tree,
		epoch:         cfg.Epoch,
		defaultTenant: cfg.DefaultTenant,
		log:           log,
		usage:         map[string]*tenantUsage{},
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	tree.Rebalance()
	go g.loop()
	return g, nil
}

func (g *tenantGovernor) loop() {
	defer close(g.done)
	t := time.NewTicker(g.epoch)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.rebalanceOnce()
		}
	}
}

func (g *tenantGovernor) close() {
	close(g.stop)
	<-g.done
}

// register ensures the tenant exists in the tree, rebalancing immediately
// on first sight so the newcomer holds its floor before its first
// admission check (the late-arrival guarantee the tenant package proves).
func (g *tenantGovernor) register(path string) error {
	created, err := g.tree.Ensure(path)
	if err != nil {
		return err
	}
	if created {
		g.tree.Rebalance()
		g.log.Info("tenant registered", "tenant", path)
	}
	return nil
}

// admit charges cost units against the tenant's granted sub-budget. A
// refusal reports how long until the next rebalance epoch — the honest
// Retry-After. An idle tenant always admits its first request even past
// its grant (mirroring the dispatcher's oversize-lease clamp), so a
// freshly shrunk grant can never deadlock a tenant outright.
func (g *tenantGovernor) admit(path string, cost float64) (ok bool, retryAfter time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usage[path]
	if u == nil {
		u = &tenantUsage{}
		g.usage[path] = u
	}
	want := u.inFlight + cost
	if want > u.peak {
		u.peak = want
	}
	if u.inFlight > 1e-9 && want > g.tree.Granted(path)+1e-9 {
		u.rejected++
		return false, g.epoch
	}
	u.inFlight = want
	u.admitted++
	return true, 0
}

// release returns admitted cost units. Like the dispatcher, it snaps
// float residue to exactly zero on idle: mixed fractional costs leave
// ~1e-15 behind, which would otherwise defeat admit's idle-tenant
// progress clamp forever (no real cost is anywhere near the epsilon —
// the estimator floors at 0.25 units).
func (g *tenantGovernor) release(path string, cost float64) {
	g.mu.Lock()
	if u := g.usage[path]; u != nil {
		u.inFlight -= cost
		if u.inFlight < 1e-9 {
			u.inFlight = 0
		}
	}
	g.mu.Unlock()
}

// rebalanceOnce feeds each tenant's demand signal into the tree and runs
// one lend/reclaim epoch. Demand rises instantly to the interval's peak
// wanted cost and decays geometrically afterwards, so a burst doesn't
// vanish from the signal the moment it drains.
func (g *tenantGovernor) rebalanceOnce() {
	g.mu.Lock()
	for path, u := range g.usage {
		d := u.peak
		if half := u.demand / 2; d < half {
			d = half
		}
		u.demand = d
		u.peak = u.inFlight
		// A path that stopped being a leaf (a sub-tenant registered under
		// it) can't carry leaf demand anymore; its aggregate speaks for it.
		_ = g.tree.SetDemand(path, d)
	}
	g.mu.Unlock()
	g.tree.Rebalance()
}

// tenantMetric is one tenant's row for /metrics: the tree's budget state
// plus the governor's admission-side counters.
type tenantMetric struct {
	tenant.Status
	InFlight float64
	Admitted int64
	Rejected int64
}

// metricsSnapshot returns per-tenant rows sorted by path, plus the
// rebalance epoch counter.
func (g *tenantGovernor) metricsSnapshot() ([]tenantMetric, int64) {
	statuses := g.tree.StatusAll()
	g.mu.Lock()
	defer g.mu.Unlock()
	rows := make([]tenantMetric, len(statuses))
	for i, st := range statuses {
		rows[i] = tenantMetric{Status: st}
		if u := g.usage[st.Path]; u != nil {
			rows[i].InFlight = u.inFlight
			rows[i].Admitted = u.admitted
			rows[i].Rejected = u.rejected
		}
	}
	return rows, g.tree.Epochs()
}

// ParseTenants parses the rebudgetd -tenants flag: comma-separated
// "path[:share[:weight[:floor]]]" entries, where path is one or more
// [A-Za-z0-9_-] segments joined by "/". Intermediate nodes are created
// with defaults; repeating a path overrides its numbers. Example:
//
//	acme/prod:3:2:0.5,acme/dev:1,free:1:0.5
func ParseTenants(arg string) ([]tenant.NodeSpec, error) {
	type entry struct {
		spec     tenant.NodeSpec
		children map[string]*entry
		order    []string
	}
	root := &entry{children: map[string]*entry{}}
	for _, item := range strings.Split(arg, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		path := parts[0]
		if !validTenantPath(path) {
			return nil, fmt.Errorf("tenant path %q must be %s segments joined by \"/\"", path, idPattern)
		}
		cur := root
		for _, seg := range strings.Split(path, "/") {
			next := cur.children[seg]
			if next == nil {
				next = &entry{spec: tenant.NodeSpec{Name: seg}, children: map[string]*entry{}}
				cur.children[seg] = next
				cur.order = append(cur.order, seg)
			}
			cur = next
		}
		for i, field := range parts[1:] {
			if field == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q field %d: %w", path, i+1, err)
			}
			switch i {
			case 0:
				cur.spec.Share = v
			case 1:
				cur.spec.OverQuotaWeight = v
			case 2:
				cur.spec.MBRFloor = v
			default:
				return nil, fmt.Errorf("tenant %q: too many fields", path)
			}
		}
	}
	var build func(e *entry) []tenant.NodeSpec
	build = func(e *entry) []tenant.NodeSpec {
		names := append([]string(nil), e.order...)
		sort.Strings(names)
		var out []tenant.NodeSpec
		for _, name := range names {
			child := e.children[name]
			spec := child.spec
			spec.Children = build(child)
			out = append(out, spec)
		}
		return out
	}
	specs := build(root)
	// Test-build the tree so out-of-range shares/weights/floors surface here
	// (flag-parse time) instead of panicking inside server.New.
	if _, err := tenant.New(specs, tenant.Config{Capacity: 1}); err != nil {
		return nil, err
	}
	return specs, nil
}
