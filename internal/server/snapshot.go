package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// SnapshotVersion is the wire-format version stamped into every snapshot.
// Loaders reject other versions (treated as "no snapshot", a cold start)
// rather than guessing at a foreign layout.
const SnapshotVersion = 1

// ErrNoSnapshot reports that a store holds no usable snapshot for an id —
// either nothing was ever saved, or what is there is corrupt, truncated, or
// from an incompatible version. Callers degrade to a cold start.
var ErrNoSnapshot = errors.New("no snapshot")

// SessionSnapshot is the durable state of one session: enough to rebuild
// the engine from its spec and resume warm, not a byte image of the engine.
// Market sessions carry their final bid matrix plus the telemetry-adjusted
// demand/weight vectors, so the first post-restore epoch re-converges via
// market.FindEquilibriumFrom instead of a cold solve. Sim sessions carry a
// context-switch journal and replay their (deterministic, seeded) epochs,
// which reconstructs chip state — including the degradation FSM — exactly.
type SessionSnapshot struct {
	Version int         `json:"version"`
	ID      string      `json:"id"`
	Spec    SessionSpec `json:"spec"`
	Epochs  int64       `json:"epochs"`
	Health  string      `json:"health"`
	SavedAt time.Time   `json:"saved_at"`

	Market *MarketSnapshot `json:"market,omitempty"`
	Sim    *SimSnapshot    `json:"sim,omitempty"`
}

// MarketSnapshot is the market engine's durable state.
type MarketSnapshot struct {
	// WarmBids is the final equilibrium bid matrix (player × resource);
	// nil when the session ran cold-start epochs or never stepped.
	WarmBids [][]float64 `json:"warm_bids,omitempty"`
	// Demand and Weights are the telemetry-adjusted per-player state.
	Demand  []float64 `json:"demand,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
}

// SimSnapshot is the sim engine's durable state: the measured epoch count
// plus the context-switch journal needed to replay it bit-identically.
type SimSnapshot struct {
	Epochs   int           `json:"epochs"`
	Switches []SwitchEvent `json:"switches,omitempty"`
}

// SwitchEvent records one applied context switch: which app landed on which
// core once AfterEpoch measured epochs had been stepped.
type SwitchEvent struct {
	AfterEpoch int    `json:"after_epoch"`
	Core       int    `json:"core"`
	App        string `json:"app"`
}

func (s *SessionSnapshot) validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("snapshot version %d (want %d)", s.Version, SnapshotVersion)
	}
	if s.ID == "" {
		return errors.New("snapshot missing id")
	}
	if s.Epochs < 0 {
		return fmt.Errorf("snapshot epochs %d < 0", s.Epochs)
	}
	return nil
}

// SnapshotStore persists session snapshots across evictions, restarts and
// cross-shard migrations. Implementations must be safe for concurrent use;
// Load returns ErrNoSnapshot for absent or unusable entries.
type SnapshotStore interface {
	Save(snap *SessionSnapshot) error
	Load(id string) (*SessionSnapshot, error)
	Delete(id string) error
}

// FileSnapshotStore keeps one JSON file per session under a directory —
// the simple durable backend, and (via a shared directory) the migration
// channel between shards. Writes are atomic (temp file + rename) so a
// crash mid-save leaves the previous snapshot intact rather than a torn
// file; loads treat any undecodable or wrong-version file as ErrNoSnapshot
// so corruption degrades to a cold start instead of a serving error.
type FileSnapshotStore struct {
	dir string
}

// NewFileSnapshotStore creates the directory (if needed) and returns the
// store rooted there.
func NewFileSnapshotStore(dir string) (*FileSnapshotStore, error) {
	if dir == "" {
		return nil, errors.New("snapshot dir must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot dir: %w", err)
	}
	return &FileSnapshotStore{dir: dir}, nil
}

// path maps a session id onto its snapshot file. Session ids are already
// constrained to [A-Za-z0-9_-] by SessionSpec validation (and the server's
// generated ids), so they are safe as file names; anything else is refused
// defensively.
func (fs *FileSnapshotStore) path(id string) (string, error) {
	if !idPattern.MatchString(id) {
		return "", fmt.Errorf("snapshot id %q not storable", id)
	}
	return filepath.Join(fs.dir, id+".json"), nil
}

// Save implements SnapshotStore with an atomic temp-file + rename.
func (fs *FileSnapshotStore) Save(snap *SessionSnapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	path, err := fs.path(snap.ID)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(fs.dir, "."+snap.ID+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Load implements SnapshotStore. Absent, truncated, corrupt or
// wrong-version files all come back as ErrNoSnapshot: the rehydrate path
// must never be worse than a cold start.
func (fs *FileSnapshotStore) Load(id string) (*SessionSnapshot, error) {
	path, err := fs.path(id)
	if err != nil {
		return nil, ErrNoSnapshot
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, ErrNoSnapshot
	}
	var snap SessionSnapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("%w: %s undecodable: %v", ErrNoSnapshot, filepath.Base(path), err)
	}
	if err := snap.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSnapshot, err)
	}
	if snap.ID != id {
		return nil, fmt.Errorf("%w: file for %q holds snapshot of %q", ErrNoSnapshot, id, snap.ID)
	}
	return &snap, nil
}

// Delete implements SnapshotStore; deleting an absent snapshot is not an
// error.
func (fs *FileSnapshotStore) Delete(id string) error {
	path, err := fs.path(id)
	if err != nil {
		return nil
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}
