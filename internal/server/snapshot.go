package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// SnapshotVersion is the wire-format version stamped into every snapshot
// written from now on. Version 3 carries the session's tenant label (in
// the spec, so a rehydrated session lands back under its tenant's budget);
// version 2 added an integrity checksum over the snapshot body; version 1
// files (no checksum) remain readable too, so a tier can be upgraded shard
// by shard against a shared snapshot directory. Unknown versions are
// rejected (treated as "no snapshot", a cold start) rather than guessed at.
const SnapshotVersion = 3

// Older formats still accepted on load.
const (
	snapshotVersionV1 = 1 // pre-checksum
	snapshotVersionV2 = 2 // checksummed, pre-tenant
)

// ErrNoSnapshot reports that a store holds no usable snapshot for an id —
// either nothing was ever saved, or what is there is corrupt, truncated, or
// from an incompatible version. Callers degrade to a cold start.
var ErrNoSnapshot = errors.New("no snapshot")

// SessionSnapshot is the durable state of one session: enough to rebuild
// the engine from its spec and resume warm, not a byte image of the engine.
// Market sessions carry their final bid matrix plus the telemetry-adjusted
// demand/weight vectors, so the first post-restore epoch re-converges via
// market.FindEquilibriumFrom instead of a cold solve. Sim sessions carry a
// context-switch journal and replay their (deterministic, seeded) epochs,
// which reconstructs chip state — including the degradation FSM — exactly.
type SessionSnapshot struct {
	Version int         `json:"version"`
	ID      string      `json:"id"`
	Spec    SessionSpec `json:"spec"`
	Epochs  int64       `json:"epochs"`
	Health  string      `json:"health"`
	SavedAt time.Time   `json:"saved_at"`

	// EpochCost is the session's admission-cost estimate (cost units per
	// epoch) at save time, so a rehydrated session is priced from its
	// measured history instead of the analytic prior. Absent (0) in
	// snapshots written before cost-based admission; the prior then seeds
	// it as for a fresh session.
	EpochCost float64 `json:"epoch_cost,omitempty"`

	// Checksum is a CRC32 (IEEE) over the snapshot's canonical JSON with
	// this field empty, formatted "crc32:%08x". Version 2 snapshots carry
	// it; loads verify it when present, so a bit-flipped or hand-edited
	// file that still parses as JSON deterministically lands on
	// ErrNoSnapshot (a cold start) instead of resurrecting damaged state.
	Checksum string `json:"checksum,omitempty"`

	Market *MarketSnapshot `json:"market,omitempty"`
	Sim    *SimSnapshot    `json:"sim,omitempty"`
}

// MarketSnapshot is the market engine's durable state.
type MarketSnapshot struct {
	// WarmBids is the final equilibrium bid matrix (player × resource);
	// nil when the session ran cold-start epochs or never stepped.
	WarmBids [][]float64 `json:"warm_bids,omitempty"`
	// Demand and Weights are the telemetry-adjusted per-player state.
	Demand  []float64 `json:"demand,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
}

// SimSnapshot is the sim engine's durable state: the measured epoch count
// plus the context-switch journal needed to replay it bit-identically.
type SimSnapshot struct {
	Epochs   int           `json:"epochs"`
	Switches []SwitchEvent `json:"switches,omitempty"`
}

// SwitchEvent records one applied context switch: which app landed on which
// core once AfterEpoch measured epochs had been stepped.
type SwitchEvent struct {
	AfterEpoch int    `json:"after_epoch"`
	Core       int    `json:"core"`
	App        string `json:"app"`
}

func (s *SessionSnapshot) validate() error {
	if s.Version != SnapshotVersion && s.Version != snapshotVersionV2 && s.Version != snapshotVersionV1 {
		return fmt.Errorf("snapshot version %d (want %d, %d or %d)",
			s.Version, snapshotVersionV1, snapshotVersionV2, SnapshotVersion)
	}
	if s.ID == "" {
		return errors.New("snapshot missing id")
	}
	if s.Epochs < 0 {
		return fmt.Errorf("snapshot epochs %d < 0", s.Epochs)
	}
	return nil
}

// checksum computes the snapshot's integrity sum: CRC32 (IEEE) over the
// canonical indented JSON with the Checksum field cleared. The encoding is
// deterministic (struct-ordered fields, fixed indentation), so the sum
// computed at save time reproduces exactly at load time.
func (s *SessionSnapshot) checksum() (string, error) {
	c := *s
	c.Checksum = ""
	buf, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(buf)), nil
}

// verifyChecksum recomputes the sum and compares. Snapshots without a
// checksum (version 1 files) pass vacuously; Verified reports whether a
// checksum was actually checked.
func (s *SessionSnapshot) verifyChecksum() (verified bool, err error) {
	if s.Checksum == "" {
		return false, nil
	}
	want, err := s.checksum()
	if err != nil {
		return false, err
	}
	if s.Checksum != want {
		return false, fmt.Errorf("checksum %s, recomputed %s", s.Checksum, want)
	}
	return true, nil
}

// EncodeSnapshot validates a snapshot, stamps its integrity checksum and
// returns the canonical wire bytes every SnapshotStore backend persists.
// Factoring the encoding out of FileSnapshotStore is what makes backends
// pluggable: the file store, the in-memory store, the HTTP snapshot service
// and the replicated store (internal/cluster) all store these exact bytes,
// so a snapshot written by one restores through any other.
func EncodeSnapshot(snap *SessionSnapshot) ([]byte, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	c := *snap
	sum, err := c.checksum()
	if err != nil {
		return nil, err
	}
	c.Checksum = sum
	return json.MarshalIndent(&c, "", "  ")
}

// DecodeSnapshot parses stored snapshot bytes for id, enforcing the full
// load contract shared by every backend: undecodable, truncated, checksum-
// failing, wrong-version or mis-filed bytes all come back as ErrNoSnapshot
// (wrapped with detail) so corruption degrades to a cold start — never a
// panic, never a serving error.
func DecodeSnapshot(id string, data []byte) (*SessionSnapshot, error) {
	var snap SessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: snapshot %q undecodable: %v", ErrNoSnapshot, id, err)
	}
	if err := snap.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSnapshot, err)
	}
	if _, err := snap.verifyChecksum(); err != nil {
		return nil, fmt.Errorf("%w: snapshot %q corrupt: %v", ErrNoSnapshot, id, err)
	}
	if snap.ID != id {
		return nil, fmt.Errorf("%w: entry for %q holds snapshot of %q", ErrNoSnapshot, id, snap.ID)
	}
	return &snap, nil
}

// SnapshotStore persists session snapshots across evictions, restarts and
// cross-shard migrations. Implementations must be safe for concurrent use;
// Load returns ErrNoSnapshot for absent or unusable entries.
type SnapshotStore interface {
	Save(snap *SessionSnapshot) error
	Load(id string) (*SessionSnapshot, error)
	Delete(id string) error
}

// RawSnapshotStore is the byte-level seam under a SnapshotStore: direct
// access to a snapshot's stored representation, bypassing validation and
// checksumming. It exists for the chaos layer (internal/chaos), which uses
// it to model torn writes and storage bit rot against the real durable
// medium, and for forensics tooling. FileSnapshotStore implements it.
type RawSnapshotStore interface {
	SnapshotStore
	// SaveRaw stores data verbatim as id's snapshot (atomically, like Save).
	SaveRaw(id string, data []byte) error
	// LoadRaw returns id's stored bytes verbatim; os.ErrNotExist when absent.
	LoadRaw(id string) ([]byte, error)
}

// FileSnapshotStore keeps one JSON file per session under a directory —
// the simple durable backend, and (via a shared directory) the migration
// channel between shards. Writes are atomic and durable (temp file, fsync,
// rename, best-effort directory fsync) so a crash — or a power loss — mid-
// save leaves the previous snapshot intact rather than a torn file; loads
// treat any undecodable, checksum-failing or wrong-version file as
// ErrNoSnapshot so corruption degrades to a cold start instead of a
// serving error.
type FileSnapshotStore struct {
	dir string
}

// NewFileSnapshotStore creates the directory (if needed) and returns the
// store rooted there.
func NewFileSnapshotStore(dir string) (*FileSnapshotStore, error) {
	if dir == "" {
		return nil, errors.New("snapshot dir must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot dir: %w", err)
	}
	return &FileSnapshotStore{dir: dir}, nil
}

// path maps a session id onto its snapshot file. Session ids are already
// constrained to [A-Za-z0-9_-] by SessionSpec validation (and the server's
// generated ids), so they are safe as file names; anything else is refused
// defensively.
func (fs *FileSnapshotStore) path(id string) (string, error) {
	if !idPattern.MatchString(id) {
		return "", fmt.Errorf("snapshot id %q not storable", id)
	}
	return filepath.Join(fs.dir, id+".json"), nil
}

// Save implements SnapshotStore: the snapshot is checksummed and written
// with an atomic, durable temp-file + fsync + rename.
func (fs *FileSnapshotStore) Save(snap *SessionSnapshot) error {
	buf, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	return fs.writeAtomic(snap.ID, buf)
}

// writeAtomic lands data under id's path via temp file + fsync + rename,
// then best-effort fsyncs the directory so the rename itself survives power
// loss. The "atomic" half (rename) protects against a crashed process; the
// fsyncs protect against the machine dying with the page cache unflushed.
func (fs *FileSnapshotStore) writeAtomic(id string, data []byte) error {
	path, err := fs.path(id)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(fs.dir, "."+id+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if dir, err := os.Open(fs.dir); err == nil {
		// Directory fsync is what makes the rename durable; not every
		// filesystem supports it, so failure is ignored, not fatal.
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// SaveRaw implements RawSnapshotStore: data lands verbatim (atomically and
// durably) as id's snapshot file, with no validation or checksumming — the
// chaos layer's torn-write and bit-rot channel.
func (fs *FileSnapshotStore) SaveRaw(id string, data []byte) error {
	return fs.writeAtomic(id, data)
}

// LoadRaw implements RawSnapshotStore.
func (fs *FileSnapshotStore) LoadRaw(id string) ([]byte, error) {
	path, err := fs.path(id)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// Load implements SnapshotStore. Absent, truncated, corrupt, checksum-
// failing or wrong-version files all come back as ErrNoSnapshot: the
// rehydrate path must never be worse than a cold start.
func (fs *FileSnapshotStore) Load(id string) (*SessionSnapshot, error) {
	path, err := fs.path(id)
	if err != nil {
		return nil, ErrNoSnapshot
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, ErrNoSnapshot
	}
	return DecodeSnapshot(id, buf)
}

// Delete implements SnapshotStore; deleting an absent snapshot is not an
// error.
func (fs *FileSnapshotStore) Delete(id string) error {
	path, err := fs.path(id)
	if err != nil {
		return nil
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}
