package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
)

func errMapServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	t.Cleanup(s.Close)
	return s
}

func decodeErrBody(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	return body.Error
}

// replyError's status mapping, table-driven — in particular the
// context.DeadlineExceeded/Canceled chain: a request that timed out
// waiting for a dispatcher slot is overload (503, retryable), not an
// internal error, even when the sentinel arrives wrapped.
func TestReplyErrorStatusMapping(t *testing.T) {
	s := errMapServer(t)
	cases := []struct {
		name     string
		err      error
		wantCode int
	}{
		{"busy", errBusy, 429},
		{"wrapped busy", fmt.Errorf("acquiring slot: %w", errBusy), 429},
		{"mailbox full", errMailboxFull, 429},
		{"session closed", errSessionClosed, 410},
		{"deadline exceeded", context.DeadlineExceeded, 503},
		{"wrapped deadline", fmt.Errorf("epoch batch: %w", context.DeadlineExceeded), 503},
		{"canceled", context.Canceled, 503},
		{"wrapped canceled", fmt.Errorf("caller went away: %w", context.Canceled), 503},
		{"unknown error", errors.New("exploded"), 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.replyError(rec, tc.err)
			if rec.Code != tc.wantCode {
				t.Fatalf("replyError(%v) = %d, want %d", tc.err, rec.Code, tc.wantCode)
			}
			if msg := decodeErrBody(t, rec); msg == "" {
				t.Fatal("error body empty")
			}
		})
	}
	// The timeout mapping hides the raw error text behind a stable
	// message (clients should match on the 503, not on Go's sentinel
	// strings).
	rec := httptest.NewRecorder()
	s.replyError(rec, context.DeadlineExceeded)
	if got := decodeErrBody(t, rec); got != "request deadline exceeded" {
		t.Fatalf("timeout body = %q, want %q", got, "request deadline exceeded")
	}
}

// replyEngineError forwards infrastructure failures to replyError's
// mapping and treats everything else as the caller's bad input (400) —
// the shared path behind the telemetry and result handlers.
func TestReplyEngineErrorStatusMapping(t *testing.T) {
	s := errMapServer(t)
	cases := []struct {
		name     string
		err      error
		wantCode int
	}{
		{"session closed", errSessionClosed, 410},
		{"mailbox full", errMailboxFull, 429},
		{"deadline exceeded", context.DeadlineExceeded, 503},
		{"canceled", context.Canceled, 503},
		{"wrapped deadline", fmt.Errorf("enqueue: %w", context.DeadlineExceeded), 503},
		{"engine rejection", errors.New("telemetry arity mismatch"), 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.replyEngineError(rec, tc.err)
			if rec.Code != tc.wantCode {
				t.Fatalf("replyEngineError(%v) = %d, want %d", tc.err, rec.Code, tc.wantCode)
			}
		})
	}
}
