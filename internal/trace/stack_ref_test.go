package trace

import (
	"testing"

	"rebudget/internal/numeric"
)

// refStack is the obviously-correct reference model: a plain slice in MRU
// order. The chunked lruStack must match it operation for operation — this
// is what guarantees the treap→chunked-list swap left every generated
// stream bit-identical.
type refStack struct{ s []uint64 }

func (r *refStack) Len() int        { return len(r.s) }
func (r *refStack) At(d int) uint64 { return r.s[d] }
func (r *refStack) Touch(d int) uint64 {
	b := r.s[d]
	copy(r.s[1:d+1], r.s[:d])
	r.s[0] = b
	return b
}
func (r *refStack) PushFront(b uint64) { r.s = append([]uint64{b}, r.s...) }
func (r *refStack) DropBack() {
	if len(r.s) > 0 {
		r.s = r.s[:len(r.s)-1]
	}
}

func TestChunkedStackMatchesReference(t *testing.T) {
	rng := numeric.NewRand(99)
	s := newLRUStack(numeric.NewRand(1))
	ref := &refStack{}
	next := uint64(0)
	for op := 0; op < 200000; op++ {
		switch {
		case ref.Len() == 0 || rng.Float64() < 0.15:
			s.PushFront(next)
			ref.PushFront(next)
			next++
		case rng.Float64() < 0.05:
			s.DropBack()
			ref.DropBack()
		default:
			// Bias towards shallow depths like a geometric draw would,
			// but hit deep ones too.
			d := int(rng.Uint64() % uint64(ref.Len()))
			if rng.Float64() < 0.7 {
				d /= 16
			}
			got, want := s.Touch(d), ref.Touch(d)
			if got != want {
				t.Fatalf("op %d: Touch(%d) = %d, reference %d", op, d, got, want)
			}
		}
		if s.Len() != ref.Len() {
			t.Fatalf("op %d: Len = %d, reference %d", op, s.Len(), ref.Len())
		}
	}
	// Full-order check at the end: every depth must agree.
	for d := 0; d < ref.Len(); d++ {
		if s.At(d) != ref.At(d) {
			t.Fatalf("final order diverges at depth %d: %d vs %d", d, s.At(d), ref.At(d))
		}
	}
}

func TestFillMatchesNext(t *testing.T) {
	cfg := Config{LineSize: 64, Seed: 7, Namespace: 3, Mix: []Component{
		{Kind: Geometric, Weight: 0.5, Param: 512},
		{Kind: Cyclic, Weight: 0.3, Param: 9000},
		{Kind: Streaming, Weight: 0.2},
	}}
	a, b := MustNew(cfg), MustNew(cfg)
	buf := make([]uint64, 0, 4096)
	// Uneven batch sizes so chunk boundaries land everywhere.
	for _, n := range []int{1, 7, 64, 1000, 4096, 3, 333} {
		buf = buf[:n]
		a.Fill(buf)
		for i := 0; i < n; i++ {
			if want := b.Next(); buf[i] != want {
				t.Fatalf("Fill diverges from Next at draw %d of batch %d: %d vs %d", i, n, buf[i], want)
			}
		}
	}
}

func TestPhasedFillMatchesNext(t *testing.T) {
	phases := []Phase{
		{Mix: []Component{{Kind: Geometric, Weight: 1, Param: 256}}, Accesses: 100},
		{Mix: []Component{{Kind: Streaming, Weight: 1}}, Accesses: 37},
	}
	a, err := NewPhased(64, phases, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPhased(64, phases, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Batches straddle phase boundaries (phase cycle is 137 accesses).
	buf := make([]uint64, 0, 500)
	for _, n := range []int{50, 120, 1, 500, 137} {
		buf = buf[:n]
		a.Fill(buf)
		for i := 0; i < n; i++ {
			if want := b.Next(); buf[i] != want {
				t.Fatalf("phased Fill diverges at draw %d of batch %d: %d vs %d", i, n, buf[i], want)
			}
		}
	}
	if a.CurrentPhase() != b.CurrentPhase() {
		t.Fatalf("phase diverged: %d vs %d", a.CurrentPhase(), b.CurrentPhase())
	}
}
