package trace

import (
	"fmt"
	"math"

	"rebudget/internal/numeric"
)

// ComponentKind selects one of the built-in reuse behaviours a synthetic
// access stream is mixed from.
type ComponentKind int

const (
	// Geometric draws LRU stack distances from a geometric distribution
	// with the given mean (Param, in cache lines). It yields smooth,
	// concave miss-rate curves — the vpr-like behaviour in Figure 2.
	Geometric ComponentKind = iota
	// Cyclic sweeps a working set of Param lines in a fixed cyclic order.
	// Under LRU every access has stack distance ≈ Param, producing the
	// all-or-nothing cliff the paper shows for mcf (Figure 2).
	Cyclic
	// Streaming touches a new line on every access (compulsory misses
	// only); no cache capacity helps. This is the "N"-class floor.
	Streaming
)

// String implements fmt.Stringer for diagnostics.
func (k ComponentKind) String() string {
	switch k {
	case Geometric:
		return "geometric"
	case Cyclic:
		return "cyclic"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("ComponentKind(%d)", int(k))
	}
}

// Component is one weighted behaviour in an access-stream mixture.
type Component struct {
	Kind   ComponentKind
	Weight float64 // relative probability of drawing from this component
	Param  float64 // mean reuse distance (Geometric) or working-set lines (Cyclic)
}

// Config describes a synthetic access stream.
type Config struct {
	LineSize int // bytes per cache line (power of two)
	Mix      []Component
	Seed     uint64
	// Namespace tags the high address bits so that streams from different
	// generators (e.g. different cores) never alias in a shared cache.
	Namespace uint8
}

// Stream is any source of memory addresses: a plain Generator or a
// PhasedGenerator.
type Stream interface {
	Next() uint64
	// Fill writes the next len(dst) addresses into dst, exactly as if
	// Next had been called that many times. Batch consumers (the cmpsim
	// epoch loop) use it to amortise call overhead and keep the
	// generator's working state hot across a whole epoch's draws.
	Fill(dst []uint64)
	LineSize() int
}

// Generator produces the address stream. Each component owns a disjoint
// block namespace; components interact only through cache capacity, exactly
// as independent data structures of one application would.
type Generator struct {
	cfg     Config
	rng     *numeric.Rand
	cum     []float64 // cumulative normalized weights
	states  []componentState
	lineOff uint64
}

type componentState struct {
	kind      ComponentKind
	param     float64
	stack     *lruStack // Geometric only
	nextBlock uint64
	cyclePos  uint64
	base      uint64 // namespace tag in the high bits
}

// maxGeomStack bounds the footprint of a geometric component's bookkeeping.
const maxGeomStack = 1 << 20

// New validates cfg and returns a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("trace: line size %d is not a positive power of two", cfg.LineSize)
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("trace: empty component mix")
	}
	total := 0.0
	for i, c := range cfg.Mix {
		if c.Weight < 0 || math.IsNaN(c.Weight) {
			return nil, fmt.Errorf("trace: component %d has invalid weight %g", i, c.Weight)
		}
		switch c.Kind {
		case Geometric, Cyclic:
			if c.Param < 1 {
				return nil, fmt.Errorf("trace: component %d (%v) needs Param >= 1, got %g", i, c.Kind, c.Param)
			}
		case Streaming:
		default:
			return nil, fmt.Errorf("trace: component %d has unknown kind %v", i, c.Kind)
		}
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("trace: mixture weights sum to %g", total)
	}
	g := &Generator{cfg: cfg, rng: numeric.NewRand(cfg.Seed)}
	acc := 0.0
	for i, c := range cfg.Mix {
		acc += c.Weight / total
		g.cum = append(g.cum, acc)
		// Namespace and component tags sit at bits 40–47 and 32–39 so
		// that block × LineSize never overflows uint64 (block < 2^48,
		// addresses < 2^55). Each component still owns 2^32 lines.
		st := componentState{kind: c.Kind, param: c.Param, base: uint64(cfg.Namespace)<<40 | uint64(i+1)<<32}
		if c.Kind == Geometric {
			st.stack = newLRUStack(g.rng.Split())
		}
		g.states = append(g.states, st)
	}
	g.cum[len(g.cum)-1] = 1 // guard against rounding
	return g, nil
}

// MustNew is New that panics on error, for statically known configurations.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Next returns the next memory address in the stream.
func (g *Generator) Next() uint64 {
	u := g.rng.Float64()
	idx := 0
	for idx < len(g.cum)-1 && u > g.cum[idx] {
		idx++
	}
	st := &g.states[idx]
	var block uint64
	switch st.kind {
	case Geometric:
		d := g.sampleGeometric(st.param)
		if d >= st.stack.Len() {
			block = st.base | st.nextBlock
			st.nextBlock++
			st.stack.PushFront(block)
			if st.stack.Len() > maxGeomStack {
				st.stack.DropBack()
			}
		} else {
			block = st.stack.Touch(d)
		}
	case Cyclic:
		block = st.base | st.cyclePos
		st.cyclePos++
		if st.cyclePos >= uint64(st.param) {
			st.cyclePos = 0
		}
	case Streaming:
		block = st.base | st.nextBlock
		st.nextBlock++
	}
	return block * uint64(g.cfg.LineSize)
}

// Fill writes the next len(dst) addresses into dst.
func (g *Generator) Fill(dst []uint64) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// sampleGeometric draws a stack distance with the given mean.
func (g *Generator) sampleGeometric(mean float64) int {
	// P(d = k) = (1-q) q^k with q = mean/(1+mean); inverse-CDF sampling.
	q := mean / (1 + mean)
	u := g.rng.Float64()
	if u <= 0 {
		return 0
	}
	d := int(math.Floor(math.Log(1-u) / math.Log(q)))
	if d < 0 {
		d = 0
	}
	return d
}

// MissRatio returns the analytic miss ratio of the stream through a
// fully-associative LRU cache with the given capacity in bytes, ignoring
// inter-component stack interference (each component judged against its own
// reuse distances). The measured ratio of a mixed stream is slightly higher
// because components displace each other; tests bound that gap.
func (g *Generator) MissRatio(capacityBytes int) float64 {
	lines := float64(capacityBytes / g.cfg.LineSize)
	total := 0.0
	for _, c := range g.cfg.Mix {
		total += c.Weight
	}
	miss := 0.0
	for _, c := range g.cfg.Mix {
		w := c.Weight / total
		switch c.Kind {
		case Geometric:
			q := c.Param / (1 + c.Param)
			miss += w * math.Pow(q, lines)
		case Cyclic:
			if lines < c.Param {
				miss += w
			}
		case Streaming:
			miss += w
		}
	}
	// Weight normalisation can leave 1+ulp residue; keep the ratio valid.
	return math.Min(math.Max(miss, 0), 1)
}

// LineSize returns the configured line size in bytes.
func (g *Generator) LineSize() int { return g.cfg.LineSize }
