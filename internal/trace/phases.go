package trace

import "fmt"

// Phase is one behavioural phase of a phased stream: a mixture that runs
// for Accesses accesses before the stream moves on.
type Phase struct {
	Mix      []Component
	Accesses int
}

// PhasedGenerator cycles through behavioural phases, reproducing the
// application phase changes §4.3 cites (alongside context switches) as the
// reason allocation must be re-run every millisecond: an application's
// miss curve can change shape mid-run, and monitoring + reallocation must
// follow it.
//
// Each phase owns an independent Generator (disjoint component namespaces
// are preserved across phases via distinct phase tags), so returning to a
// phase resumes its reuse state — like a program revisiting a data
// structure it built earlier.
type PhasedGenerator struct {
	gens     []*Generator
	phases   []Phase
	lineSize int
	cur      int
	left     int
}

// NewPhased validates the phases and builds the generator.
func NewPhased(lineSize int, phases []Phase, seed uint64, namespace uint8) (*PhasedGenerator, error) {
	if len(phases) < 1 {
		return nil, fmt.Errorf("trace: need at least one phase")
	}
	p := &PhasedGenerator{phases: append([]Phase(nil), phases...), lineSize: lineSize}
	for i, ph := range phases {
		if ph.Accesses < 1 {
			return nil, fmt.Errorf("trace: phase %d has %d accesses", i, ph.Accesses)
		}
		// Tag each phase's components into a disjoint namespace slice by
		// offsetting the component index space: reuse Config.Namespace
		// for the core and shift the phase into the seed so streams
		// differ across phases.
		g, err := New(Config{
			LineSize:  lineSize,
			Mix:       ph.Mix,
			Seed:      seed ^ (uint64(i+1) << 20),
			Namespace: namespace,
		})
		if err != nil {
			return nil, fmt.Errorf("trace: phase %d: %w", i, err)
		}
		// Tag each phase's component bases at bits 28–31 so phases never
		// alias each other's lines (block counters keep bits 0–27, which
		// is 268M lines per component — far beyond any run).
		for ci := range g.states {
			g.states[ci].base |= uint64(i&0xF) << 28
		}
		p.gens = append(p.gens, g)
	}
	p.left = p.phases[0].Accesses
	return p, nil
}

// Next returns the next address, advancing phases as their access budgets
// drain.
func (p *PhasedGenerator) Next() uint64 {
	if p.left == 0 {
		p.cur = (p.cur + 1) % len(p.phases)
		p.left = p.phases[p.cur].Accesses
	}
	p.left--
	return p.gens[p.cur].Next()
}

// Fill writes the next len(dst) addresses into dst, batching draws from the
// current phase's generator and advancing phases exactly as Next would.
func (p *PhasedGenerator) Fill(dst []uint64) {
	for len(dst) > 0 {
		if p.left == 0 {
			p.cur = (p.cur + 1) % len(p.phases)
			p.left = p.phases[p.cur].Accesses
		}
		n := len(dst)
		if n > p.left {
			n = p.left
		}
		p.gens[p.cur].Fill(dst[:n])
		p.left -= n
		dst = dst[n:]
	}
}

// CurrentPhase reports which phase the stream is in.
func (p *PhasedGenerator) CurrentPhase() int { return p.cur }

// LineSize returns the configured line size.
func (p *PhasedGenerator) LineSize() int { return p.lineSize }
