// Package trace generates synthetic memory-access streams whose LRU
// stack-distance profiles follow specified mixtures of reuse behaviours.
// The streams stand in for the SPEC CPU2000/2006 SimPoint regions the paper
// drives SESC with: allocation mechanisms observe applications only through
// the miss-rate curves and access streams these generators produce, so
// matching the curve *shapes* (smooth concave reuse, working-set cliffs,
// streaming) reproduces the allocation dynamics of the paper's workloads.
package trace

import "rebudget/internal/numeric"

// lruStack is an order-statistic treap over block IDs ordered by recency
// (index 0 = most recently used). It supports the three operations a
// stack-distance trace generator needs, each in O(log n): fetch the block at
// a given depth, move it to the front, and push a brand-new block.
type lruStack struct {
	root *stackNode
	rng  *numeric.Rand
}

type stackNode struct {
	block    uint64
	priority uint64
	size     int
	left     *stackNode
	right    *stackNode
}

func newLRUStack(rng *numeric.Rand) *lruStack {
	return &lruStack{rng: rng}
}

func size(n *stackNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *stackNode) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// split divides t into (left, right) where left holds the first k nodes.
func split(t *stackNode, k int) (*stackNode, *stackNode) {
	if t == nil {
		return nil, nil
	}
	if size(t.left) >= k {
		l, r := split(t.left, k)
		t.left = r
		t.update()
		return l, t
	}
	l, r := split(t.right, k-size(t.left)-1)
	t.right = l
	t.update()
	return t, r
}

func merge(a, b *stackNode) *stackNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.priority > b.priority {
		a.right = merge(a.right, b)
		a.update()
		return a
	}
	b.left = merge(a, b.left)
	b.update()
	return b
}

// Len returns the number of blocks on the stack.
func (s *lruStack) Len() int { return size(s.root) }

// At returns the block at stack depth d (0 = MRU) without reordering.
func (s *lruStack) At(d int) uint64 {
	n := s.root
	for {
		ls := size(n.left)
		switch {
		case d < ls:
			n = n.left
		case d == ls:
			return n.block
		default:
			d -= ls + 1
			n = n.right
		}
	}
}

// Touch moves the block at depth d to the front and returns it.
func (s *lruStack) Touch(d int) uint64 {
	left, rest := split(s.root, d)
	node, right := split(rest, 1)
	s.root = merge(node, merge(left, right))
	return node.block
}

// PushFront inserts a new block at depth 0.
func (s *lruStack) PushFront(block uint64) {
	n := &stackNode{block: block, priority: s.rng.Uint64(), size: 1}
	s.root = merge(n, s.root)
}

// DropBack removes the least-recently-used block (used to bound memory for
// streaming components whose footprint would otherwise grow without limit).
func (s *lruStack) DropBack() {
	if s.root == nil {
		return
	}
	l, _ := split(s.root, size(s.root)-1)
	s.root = l
}
