// Package trace generates synthetic memory-access streams whose LRU
// stack-distance profiles follow specified mixtures of reuse behaviours.
// The streams stand in for the SPEC CPU2000/2006 SimPoint regions the paper
// drives SESC with: allocation mechanisms observe applications only through
// the miss-rate curves and access streams these generators produce, so
// matching the curve *shapes* (smooth concave reuse, working-set cliffs,
// streaming) reproduces the allocation dynamics of the paper's workloads.
package trace

import "rebudget/internal/numeric"

// stackChunkCap sizes the contiguous runs an lruStack is stored in. Larger
// chunks mean fewer chunk-header hops to reach a given depth but longer
// memmoves on every front insertion; 256 (a 2 kB run) balances the two for
// the geometric reuse distances the generators draw.
const stackChunkCap = 256

// lruStack is an order-statistic list over block IDs ordered by recency
// (index 0 = most recently used). It supports the three operations a
// stack-distance trace generator needs: fetch the block at a given depth,
// move it to the front, and push a brand-new block.
//
// The representation is a list of contiguous chunks rather than the earlier
// order-statistic treap: reaching depth d walks ~d/chunk chunk headers and
// then moves a couple of kilobytes at most, all over dense memory, where the
// treap chased ~2·log2(n) pointers through split/merge recursions. The
// logical LRU order — the only thing Touch/At/PushFront/DropBack expose — is
// identical, so streams are bit-identical to the treap-backed generator
// (treap priorities only ever shaped the tree, never the order). Emptied
// chunk backings are recycled, so a warm stack performs no steady-state
// allocation.
type lruStack struct {
	chunks [][]uint64 // MRU order; every chunk non-empty
	total  int
	spare  []uint64 // one recycled chunk backing, nil when absent
}

// newLRUStack returns an empty stack. The rng parameter is unused since the
// treap representation was replaced, but the signature is kept so that
// callers still consume an rng split per stack — Generator seeding depends
// on that draw sequence for bit-identical streams.
func newLRUStack(_ *numeric.Rand) *lruStack {
	return &lruStack{}
}

// Len returns the number of blocks on the stack.
func (s *lruStack) Len() int { return s.total }

// At returns the block at stack depth d (0 = MRU) without reordering.
func (s *lruStack) At(d int) uint64 {
	ci := 0
	for d >= len(s.chunks[ci]) {
		d -= len(s.chunks[ci])
		ci++
	}
	return s.chunks[ci][d]
}

// Touch moves the block at depth d to the front and returns it.
func (s *lruStack) Touch(d int) uint64 {
	if d == 0 {
		return s.chunks[0][0]
	}
	ci := 0
	for d >= len(s.chunks[ci]) {
		d -= len(s.chunks[ci])
		ci++
	}
	c := s.chunks[ci]
	block := c[d]
	copy(c[d:], c[d+1:])
	s.chunks[ci] = c[:len(c)-1]
	if len(s.chunks[ci]) == 0 {
		s.dropChunk(ci)
	}
	s.total--
	s.PushFront(block)
	return block
}

// PushFront inserts a new block at depth 0.
func (s *lruStack) PushFront(block uint64) {
	s.total++
	if len(s.chunks) == 0 {
		c := s.grabChunk()
		s.chunks = append(s.chunks, append(c, block))
		return
	}
	front := s.chunks[0]
	if len(front) == cap(front) {
		// Split the full front chunk: its colder half moves to a fresh
		// chunk inserted right behind, keeping insertions cheap.
		half := len(front) / 2
		cold := append(s.grabChunk(), front[half:]...)
		s.chunks = append(s.chunks, nil)
		copy(s.chunks[2:], s.chunks[1:])
		s.chunks[1] = cold
		front = front[:half]
	}
	front = front[:len(front)+1]
	copy(front[1:], front)
	front[0] = block
	s.chunks[0] = front
}

// DropBack removes the least-recently-used block (used to bound memory for
// streaming components whose footprint would otherwise grow without limit).
func (s *lruStack) DropBack() {
	if s.total == 0 {
		return
	}
	last := len(s.chunks) - 1
	c := s.chunks[last]
	s.chunks[last] = c[:len(c)-1]
	if len(s.chunks[last]) == 0 {
		s.dropChunk(last)
	}
	s.total--
}

// grabChunk returns an empty chunk backing, reusing a recycled one if held.
func (s *lruStack) grabChunk() []uint64 {
	if s.spare != nil {
		c := s.spare[:0]
		s.spare = nil
		return c
	}
	return make([]uint64, 0, stackChunkCap)
}

// dropChunk removes the (empty) chunk at index ci, recycling its backing.
func (s *lruStack) dropChunk(ci int) {
	if s.spare == nil {
		s.spare = s.chunks[ci][:0]
	}
	copy(s.chunks[ci:], s.chunks[ci+1:])
	s.chunks[len(s.chunks)-1] = nil
	s.chunks = s.chunks[:len(s.chunks)-1]
}
