package trace

import (
	"math"
	"testing"

	"rebudget/internal/numeric"
)

// refLRU is a simple fully-associative LRU used as a reference model.
type refLRU struct {
	capacity int
	order    []uint64 // index 0 = MRU
	index    map[uint64]int
}

func newRefLRU(capacityLines int) *refLRU {
	return &refLRU{capacity: capacityLines, index: map[uint64]int{}}
}

func (c *refLRU) access(line uint64) bool {
	pos, ok := c.index[line]
	if ok {
		c.order = append(c.order[:pos], c.order[pos+1:]...)
	} else if len(c.order) >= c.capacity {
		evict := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		delete(c.index, evict)
	}
	c.order = append([]uint64{line}, c.order...)
	for i, l := range c.order {
		c.index[l] = i
	}
	return ok
}

func measuredMissRatio(t *testing.T, g *Generator, capacityLines, accesses int) float64 {
	t.Helper()
	c := newRefLRU(capacityLines)
	// Warm up to populate reuse state before measuring.
	for i := 0; i < accesses/2; i++ {
		c.access(g.Next() / uint64(g.LineSize()))
	}
	misses := 0
	for i := 0; i < accesses; i++ {
		if !c.access(g.Next() / uint64(g.LineSize())) {
			misses++
		}
	}
	return float64(misses) / float64(accesses)
}

func TestNewValidation(t *testing.T) {
	valid := Config{LineSize: 64, Mix: []Component{{Kind: Streaming, Weight: 1}}}
	if _, err := New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{LineSize: 0, Mix: valid.Mix},
		{LineSize: 48, Mix: valid.Mix},
		{LineSize: 64},
		{LineSize: 64, Mix: []Component{{Kind: Geometric, Weight: 1, Param: 0}}},
		{LineSize: 64, Mix: []Component{{Kind: Cyclic, Weight: 1, Param: 0.5}}},
		{LineSize: 64, Mix: []Component{{Kind: Streaming, Weight: -1}}},
		{LineSize: 64, Mix: []Component{{Kind: Streaming, Weight: 0}}},
		{LineSize: 64, Mix: []Component{{Kind: ComponentKind(99), Weight: 1}}},
		{LineSize: 64, Mix: []Component{{Kind: Geometric, Weight: math.NaN(), Param: 10}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStreamingAlwaysMisses(t *testing.T) {
	g := MustNew(Config{LineSize: 64, Mix: []Component{{Kind: Streaming, Weight: 1}}, Seed: 1})
	got := measuredMissRatio(t, g, 1024, 5000)
	if got != 1 {
		t.Errorf("streaming miss ratio = %g, want 1", got)
	}
	if a := g.MissRatio(1 << 20); a != 1 {
		t.Errorf("analytic streaming miss ratio = %g, want 1", a)
	}
}

func TestCyclicCliff(t *testing.T) {
	const ws = 256 // lines
	g := MustNew(Config{LineSize: 64, Mix: []Component{{Kind: Cyclic, Weight: 1, Param: ws}}, Seed: 2})
	// Below the working set: ~100% misses.
	below := measuredMissRatio(t, g, ws-16, 20000)
	if below < 0.99 {
		t.Errorf("below-WS miss ratio = %g, want ~1", below)
	}
	// At/above the working set: ~0% misses.
	g2 := MustNew(Config{LineSize: 64, Mix: []Component{{Kind: Cyclic, Weight: 1, Param: ws}}, Seed: 2})
	above := measuredMissRatio(t, g2, ws, 20000)
	if above > 0.01 {
		t.Errorf("above-WS miss ratio = %g, want ~0", above)
	}
	// Analytic curve has the same cliff.
	if g.MissRatio((ws-1)*64) != 1 || g.MissRatio(ws*64) != 0 {
		t.Errorf("analytic cliff wrong: %g, %g", g.MissRatio((ws-1)*64), g.MissRatio(ws*64))
	}
}

func TestGeometricMatchesAnalytic(t *testing.T) {
	const mean = 200.0
	for _, lines := range []int{64, 256, 1024} {
		g := MustNew(Config{LineSize: 64, Mix: []Component{{Kind: Geometric, Weight: 1, Param: mean}}, Seed: 3})
		got := measuredMissRatio(t, g, lines, 40000)
		want := g.MissRatio(lines * 64)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("capacity %d lines: measured %g vs analytic %g", lines, got, want)
		}
	}
}

func TestGeometricMissCurveMonotone(t *testing.T) {
	g := MustNew(Config{LineSize: 64, Mix: []Component{
		{Kind: Geometric, Weight: 0.7, Param: 300},
		{Kind: Streaming, Weight: 0.3},
	}, Seed: 4})
	prev := 1.1
	for lines := 16; lines <= 4096; lines *= 2 {
		m := g.MissRatio(lines * 64)
		if m > prev+1e-12 {
			t.Errorf("analytic miss curve not monotone at %d lines: %g > %g", lines, m, prev)
		}
		prev = m
	}
}

func TestMixtureMissFloor(t *testing.T) {
	// 30% streaming imposes a 0.3 miss floor no matter the capacity.
	g := MustNew(Config{LineSize: 64, Mix: []Component{
		{Kind: Geometric, Weight: 0.7, Param: 50},
		{Kind: Streaming, Weight: 0.3},
	}, Seed: 5})
	got := measuredMissRatio(t, g, 1<<14, 30000)
	if got < 0.25 || got > 0.4 {
		t.Errorf("mixture miss floor = %g, want ≈0.3", got)
	}
}

func TestAddressesAreLineAligned(t *testing.T) {
	g := MustNew(Config{LineSize: 128, Mix: []Component{
		{Kind: Geometric, Weight: 1, Param: 10},
	}, Seed: 6})
	for i := 0; i < 1000; i++ {
		if a := g.Next(); a%128 != 0 {
			t.Fatalf("address %#x not line-aligned", a)
		}
	}
}

func TestComponentNamespacesDisjoint(t *testing.T) {
	g := MustNew(Config{LineSize: 64, Mix: []Component{
		{Kind: Cyclic, Weight: 0.5, Param: 64},
		{Kind: Streaming, Weight: 0.5},
	}, Seed: 7})
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		seen[g.Next()/64>>32] = true
	}
	if len(seen) != 2 {
		t.Errorf("expected 2 disjoint namespaces, got %d", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{LineSize: 64, Mix: []Component{
		{Kind: Geometric, Weight: 0.6, Param: 100},
		{Kind: Cyclic, Weight: 0.3, Param: 500},
		{Kind: Streaming, Weight: 0.1},
	}, Seed: 42}
	a, b := MustNew(cfg), MustNew(cfg)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestComponentKindString(t *testing.T) {
	if Geometric.String() != "geometric" || Cyclic.String() != "cyclic" || Streaming.String() != "streaming" {
		t.Error("kind strings wrong")
	}
	if ComponentKind(99).String() == "" {
		t.Error("unknown kind should still produce a string")
	}
}

func TestLRUStackOperations(t *testing.T) {
	s := newLRUStack(numeric.NewRand(1))
	for i := 5; i >= 1; i-- {
		s.PushFront(uint64(i))
	}
	// Stack is now [1 2 3 4 5] from MRU to LRU.
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 5; i++ {
		if got := s.At(i); got != uint64(i+1) {
			t.Fatalf("At(%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := s.Touch(3); got != 4 {
		t.Fatalf("Touch(3) = %d, want 4", got)
	}
	// Now [4 1 2 3 5].
	want := []uint64{4, 1, 2, 3, 5}
	for i, w := range want {
		if got := s.At(i); got != w {
			t.Fatalf("after touch At(%d) = %d, want %d", i, got, w)
		}
	}
	s.DropBack()
	if s.Len() != 4 || s.At(3) != 3 {
		t.Fatalf("DropBack failed: len=%d back=%d", s.Len(), s.At(s.Len()-1))
	}
}

func TestLRUStackLarge(t *testing.T) {
	s := newLRUStack(numeric.NewRand(2))
	const n = 20000
	for i := 0; i < n; i++ {
		s.PushFront(uint64(i))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	// Touch random depths and verify the touched block lands at depth 0.
	r := numeric.NewRand(3)
	for i := 0; i < 1000; i++ {
		d := r.Intn(s.Len())
		b := s.At(d)
		if got := s.Touch(d); got != b {
			t.Fatalf("Touch(%d) returned %d, expected %d", d, got, b)
		}
		if s.At(0) != b {
			t.Fatalf("touched block not at front")
		}
	}
	if s.Len() != n {
		t.Fatalf("Len changed to %d", s.Len())
	}
	s.DropBack()
	if s.Len() != n-1 {
		t.Fatalf("DropBack: len=%d", s.Len())
	}
}

func TestDropBackEmpty(t *testing.T) {
	s := newLRUStack(numeric.NewRand(4))
	s.DropBack() // must not panic
	if s.Len() != 0 {
		t.Fatal("empty stack should stay empty")
	}
}

func TestNamespaceNoOverflowAtHighIDs(t *testing.T) {
	// Regression: namespace tags once sat at bits 56–61, so block×LineSize
	// overflowed uint64 and namespaces collided modulo 4 — cores 0, 4, 8…
	// of a large CMP silently shared address streams.
	mk := func(ns uint8) *Generator {
		return MustNew(Config{LineSize: 64, Mix: []Component{
			{Kind: Cyclic, Weight: 1, Param: 64},
		}, Seed: 1, Namespace: ns})
	}
	for _, ns := range []uint8{4, 63, 255} {
		a, b := mk(0), mk(ns)
		linesA := map[uint64]bool{}
		for i := 0; i < 256; i++ {
			linesA[a.Next()/64] = true
		}
		for i := 0; i < 256; i++ {
			if linesA[b.Next()/64] {
				t.Fatalf("namespace %d aliases namespace 0", ns)
			}
		}
	}
}

func TestAddressesFitUint64(t *testing.T) {
	g := MustNew(Config{LineSize: 64, Mix: []Component{
		{Kind: Streaming, Weight: 1},
	}, Seed: 2, Namespace: 255})
	for i := 0; i < 10000; i++ {
		if a := g.Next(); a>>55 != 0 {
			t.Fatalf("address %#x unexpectedly large (overflow risk)", a)
		}
	}
}

func TestPhasedGeneratorValidation(t *testing.T) {
	if _, err := NewPhased(64, nil, 1, 0); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := NewPhased(64, []Phase{{Mix: []Component{{Kind: Streaming, Weight: 1}}, Accesses: 0}}, 1, 0); err == nil {
		t.Error("zero-length phase accepted")
	}
	if _, err := NewPhased(64, []Phase{{Mix: nil, Accesses: 10}}, 1, 0); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestPhasedGeneratorCycles(t *testing.T) {
	cacheFriendly := []Component{{Kind: Cyclic, Weight: 1, Param: 64}}
	streaming := []Component{{Kind: Streaming, Weight: 1}}
	p, err := NewPhased(64, []Phase{
		{Mix: cacheFriendly, Accesses: 1000},
		{Mix: streaming, Accesses: 500},
	}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CurrentPhase() != 0 {
		t.Fatal("should start in phase 0")
	}
	// Drive through phase 0 and into phase 1.
	for i := 0; i < 1001; i++ {
		p.Next()
	}
	if p.CurrentPhase() != 1 {
		t.Fatalf("after 1001 accesses phase = %d, want 1", p.CurrentPhase())
	}
	for i := 0; i < 500; i++ {
		p.Next()
	}
	if p.CurrentPhase() != 0 {
		t.Fatalf("phases should cycle back, got %d", p.CurrentPhase())
	}
}

func TestPhasedGeneratorBehaviourChanges(t *testing.T) {
	// Phase 0 is cache-friendly (64-line loop), phase 1 streams: a small
	// reference cache must hit in phase 0 and miss in phase 1.
	p, err := NewPhased(64, []Phase{
		{Mix: []Component{{Kind: Cyclic, Weight: 1, Param: 64}}, Accesses: 4000},
		{Mix: []Component{{Kind: Streaming, Weight: 1}}, Accesses: 4000},
	}, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := newRefLRU(512)
	measure := func(n int) float64 {
		miss := 0
		for i := 0; i < n; i++ {
			if !c.access(p.Next() / 64) {
				miss++
			}
		}
		return float64(miss) / float64(n)
	}
	measure(1000) // warm phase 0
	phase0 := measure(3000)
	phase1 := measure(4000)
	if phase0 > 0.05 {
		t.Errorf("cache-friendly phase miss ratio %g, want ~0", phase0)
	}
	if phase1 < 0.9 {
		t.Errorf("streaming phase miss ratio %g, want ~1", phase1)
	}
}

func TestPhasedPhasesDoNotAlias(t *testing.T) {
	// Two phases with identical mixes must still use disjoint lines.
	mix := []Component{{Kind: Cyclic, Weight: 1, Param: 32}}
	p, err := NewPhased(64, []Phase{
		{Mix: mix, Accesses: 100},
		{Mix: mix, Accesses: 100},
	}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen0 := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen0[p.Next()/64] = true
	}
	for i := 0; i < 100; i++ {
		if seen0[p.Next()/64] {
			t.Fatal("phases share lines")
		}
	}
}
