package cluster

import (
	"errors"
	"fmt"
	"os"

	"rebudget/internal/server"
)

// ReplicatedSnapshotStore fans one SnapshotStore contract out over N
// replicas (typically MemorySnapshotStores on different nodes, or a mix of
// HTTP stores): writes go to every replica, reads return the freshest copy
// any replica holds and repair the rest. One intact replica is enough to
// restore warm — corrupt or torn copies elsewhere degrade to that replica's
// answer, not to a cold start, and a fleet-wide wipe is the only way to
// lose a snapshot.
//
// Freshness is the snapshot's own (Epochs, SavedAt) — monotone per session,
// so the replica that saw the most recent retire wins and a stale replica
// can never roll a session backwards.
type ReplicatedSnapshotStore struct {
	replicas []server.SnapshotStore
}

// NewReplicatedSnapshotStore builds a store over the given replicas (at
// least one required).
func NewReplicatedSnapshotStore(replicas ...server.SnapshotStore) (*ReplicatedSnapshotStore, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replicated snapshot store: at least one replica required")
	}
	for _, r := range replicas {
		if r == nil {
			return nil, errors.New("replicated snapshot store: nil replica")
		}
	}
	return &ReplicatedSnapshotStore{replicas: replicas}, nil
}

// Save implements SnapshotStore: the write fans out to every replica and
// succeeds while at least one replica accepted it — a down replica costs
// redundancy, not the snapshot. All-replicas-failed is the only error.
func (rs *ReplicatedSnapshotStore) Save(snap *server.SessionSnapshot) error {
	var firstErr error
	ok := 0
	for _, r := range rs.replicas {
		if err := r.Save(snap); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("replicated snapshot store: all %d replicas failed: %w", len(rs.replicas), firstErr)
	}
	return nil
}

// Load implements SnapshotStore: every replica is consulted, the freshest
// usable snapshot wins, and replicas holding nothing or something staler
// are repaired with it (self-heal — the read path is also the anti-entropy
// path). ErrNoSnapshot only when no replica holds a usable copy.
func (rs *ReplicatedSnapshotStore) Load(id string) (*server.SessionSnapshot, error) {
	var best *server.SessionSnapshot
	var loadErr error
	for _, r := range rs.replicas {
		snap, err := r.Load(id)
		if err != nil {
			if !errors.Is(err, server.ErrNoSnapshot) && loadErr == nil {
				loadErr = err
			}
			continue
		}
		if best == nil || fresher(snap, best) {
			best = snap
		}
	}
	if best == nil {
		if loadErr != nil {
			return nil, fmt.Errorf("replicated snapshot store: %w", loadErr)
		}
		return nil, server.ErrNoSnapshot
	}
	// Repair: re-save the winner everywhere it is missing, unusable, or
	// stale. Best-effort — a replica that rejects the repair stays stale
	// and is repaired again on the next load.
	for _, r := range rs.replicas {
		cur, err := r.Load(id)
		if err == nil && !fresher(best, cur) {
			continue
		}
		_ = r.Save(best)
	}
	return best, nil
}

// Delete implements SnapshotStore: fan-out, tolerating individual replica
// failures the same way Save does.
func (rs *ReplicatedSnapshotStore) Delete(id string) error {
	var firstErr error
	ok := 0
	for _, r := range rs.replicas {
		if err := r.Delete(id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("replicated snapshot store: all %d replicas failed: %w", len(rs.replicas), firstErr)
	}
	return nil
}

// fresher reports whether a should be preferred over b: more served epochs
// first, later save time as the tie-break.
func fresher(a, b *server.SessionSnapshot) bool {
	if a.Epochs != b.Epochs {
		return a.Epochs > b.Epochs
	}
	return a.SavedAt.After(b.SavedAt)
}

// SaveRaw implements RawSnapshotStore when every replica does — the seam
// the chaos layer's fault wrapper needs. Raw bytes fan out verbatim.
func (rs *ReplicatedSnapshotStore) SaveRaw(id string, data []byte) error {
	var firstErr error
	ok := 0
	for _, r := range rs.replicas {
		raw, is := r.(server.RawSnapshotStore)
		if !is {
			return fmt.Errorf("replicated snapshot store: replica %T lacks raw access", r)
		}
		if err := raw.SaveRaw(id, data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("replicated snapshot store: all %d replicas failed: %w", len(rs.replicas), firstErr)
	}
	return nil
}

// LoadRaw implements RawSnapshotStore: the first replica holding bytes for
// id answers (raw reads carry no freshness metadata to arbitrate with).
func (rs *ReplicatedSnapshotStore) LoadRaw(id string) ([]byte, error) {
	var firstErr error
	for _, r := range rs.replicas {
		raw, is := r.(server.RawSnapshotStore)
		if !is {
			return nil, fmt.Errorf("replicated snapshot store: replica %T lacks raw access", r)
		}
		buf, err := raw.LoadRaw(id)
		if err != nil {
			if !os.IsNotExist(err) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		return buf, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, os.ErrNotExist
}
