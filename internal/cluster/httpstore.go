package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"rebudget/internal/server"
)

// HTTPSnapshotStore is a server.SnapshotStore backed by a rebudget-snapstore
// service: every shard pointed at the same base URL shares one snapshot
// namespace, so a killed shard's sessions restore warm on any node with no
// shared filesystem. It also implements server.RawSnapshotStore, which is
// the seam the chaos layer's FaultySnapshotStore uses for torn-write and
// bit-rot faults — damaged bytes round-trip through the service verbatim
// and are rejected by DecodeSnapshot on the way out, exactly like the file
// store.
//
// Error mapping follows the SnapshotStore contract: a 404 (absent or
// server-side integrity failure) is ErrNoSnapshot — a cold start — while a
// transport failure (service down, partitioned) surfaces as a plain error
// so the daemon counts it as load_error rather than pretending the
// snapshot never existed.
type HTTPSnapshotStore struct {
	base   string
	client *http.Client
}

// NewHTTPSnapshotStore builds a store over the service at base (e.g.
// "http://127.0.0.1:9701"). client nil selects a 5s-timeout default.
func NewHTTPSnapshotStore(base string, client *http.Client) *HTTPSnapshotStore {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &HTTPSnapshotStore{base: strings.TrimRight(base, "/"), client: client}
}

// Save implements SnapshotStore.
func (hs *HTTPSnapshotStore) Save(snap *server.SessionSnapshot) error {
	buf, err := server.EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	return hs.SaveRaw(snap.ID, buf)
}

// Load implements SnapshotStore.
func (hs *HTTPSnapshotStore) Load(id string) (*server.SessionSnapshot, error) {
	buf, err := hs.LoadRaw(id)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, server.ErrNoSnapshot
		}
		return nil, err
	}
	return server.DecodeSnapshot(id, buf)
}

// Delete implements SnapshotStore; deleting an absent snapshot is not an
// error.
func (hs *HTTPSnapshotStore) Delete(id string) error {
	req, err := http.NewRequest(http.MethodDelete, hs.blobURL(id), nil)
	if err != nil {
		return err
	}
	resp, err := hs.client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("snapstore delete %s: %s", id, resp.Status)
	}
	return nil
}

// SaveRaw implements RawSnapshotStore: data lands verbatim.
func (hs *HTTPSnapshotStore) SaveRaw(id string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, hs.blobURL(id), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := hs.client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("snapstore put %s: %s", id, resp.Status)
	}
	return nil
}

// LoadRaw implements RawSnapshotStore; os.ErrNotExist when the service
// holds no (usable) blob for id.
func (hs *HTTPSnapshotStore) LoadRaw(id string) ([]byte, error) {
	resp, err := hs.client.Get(hs.blobURL(id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, os.ErrNotExist
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("snapstore get %s: %s", id, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func (hs *HTTPSnapshotStore) blobURL(id string) string {
	return hs.base + "/v1/blobs/" + id
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
