package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func keyset(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%d", i)
	}
	return keys
}

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:9001", i+1)
	}
	return out
}

// Adding one shard to N-1 must move at most ⌈K/N⌉ + ε of K keys — the
// consistent-hashing bound that makes scale-out a small migration. ε
// absorbs vnode placement variance: half a fair share on top of the fair
// share itself.
func TestMovedKeysBoundOnAdd(t *testing.T) {
	const k = 2000
	keys := keyset(k)
	for n := 2; n <= 6; n++ {
		oldMembers := shardNames(n - 1)
		newMembers := shardNames(n)
		moved := MovedKeys(oldMembers, newMembers, 64, keys)
		fair := (k + n - 1) / n
		bound := fair + fair/2
		if len(moved) == 0 {
			t.Fatalf("n=%d: shard add moved nothing — the new shard owns no keys", n)
		}
		if len(moved) > bound {
			t.Fatalf("n=%d: shard add moved %d of %d keys, bound %d", n, len(moved), k, bound)
		}
		// Every moved key must land on the added shard, and only moved keys
		// may change owner — the moved set IS the migration plan.
		added := newMembers[n-1]
		oldRing, newRing := NewRing(64), NewRing(64)
		for _, m := range oldMembers {
			oldRing.Add(m)
		}
		for _, m := range newMembers {
			newRing.Add(m)
		}
		movedSet := make(map[string]bool, len(moved))
		for _, key := range moved {
			movedSet[key] = true
			if got := newRing.Primary(key); got != added {
				t.Fatalf("n=%d: moved key %q lands on %q, not the added shard %q", n, key, got, added)
			}
		}
		for _, key := range keys {
			if !movedSet[key] && oldRing.Primary(key) != newRing.Primary(key) {
				t.Fatalf("n=%d: key %q changed owner but is not in the moved set", n, key)
			}
		}
	}
}

// Removing a shard moves exactly the keys it owned, nothing else.
func TestMovedKeysOnRemove(t *testing.T) {
	keys := keyset(1000)
	members := shardNames(4)
	oldRing := NewRing(64)
	for _, m := range members {
		oldRing.Add(m)
	}
	removed := members[2]
	kept := append(append([]string{}, members[:2]...), members[3])
	moved := MovedKeys(members, kept, 64, keys)
	owned := 0
	for _, key := range keys {
		if oldRing.Primary(key) == removed {
			owned++
		}
	}
	if len(moved) != owned {
		t.Fatalf("remove moved %d keys but the shard owned %d", len(moved), owned)
	}
	for _, key := range moved {
		if oldRing.Primary(key) != removed {
			t.Fatalf("key %q moved on remove but was owned by %q", key, oldRing.Primary(key))
		}
	}
}

// The moved set must be a pure function of (members, vnodes, keys): member
// order, key order, and duplicate keys must not change the answer — that is
// what lets N router replicas compute identical migration plans from the
// same membership epoch with no coordination beyond the epoch itself.
func TestMovedKeysDeterministicAcrossReplicas(t *testing.T) {
	keys := keyset(500)
	oldMembers := shardNames(3)
	newMembers := shardNames(4)
	want := MovedKeys(oldMembers, newMembers, 64, keys)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffledOld := append([]string{}, oldMembers...)
		shuffledNew := append([]string{}, newMembers...)
		shuffledKeys := append([]string{}, keys...)
		shuffledKeys = append(shuffledKeys, keys[:50]...) // duplicates
		rng.Shuffle(len(shuffledOld), func(i, j int) { shuffledOld[i], shuffledOld[j] = shuffledOld[j], shuffledOld[i] })
		rng.Shuffle(len(shuffledNew), func(i, j int) { shuffledNew[i], shuffledNew[j] = shuffledNew[j], shuffledNew[i] })
		rng.Shuffle(len(shuffledKeys), func(i, j int) { shuffledKeys[i], shuffledKeys[j] = shuffledKeys[j], shuffledKeys[i] })
		got := MovedKeys(shuffledOld, shuffledNew, 64, shuffledKeys)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: moved set depends on input order:\n got %d keys\nwant %d keys", trial, len(got), len(want))
		}
	}
}

// Clone must be deep: mutating the clone may not disturb the original.
func TestRingClone(t *testing.T) {
	r := NewRing(64)
	for _, m := range shardNames(3) {
		r.Add(m)
	}
	before := make(map[string]string)
	keys := keyset(200)
	for _, key := range keys {
		before[key] = r.Primary(key)
	}
	c := r.Clone()
	c.Add("http://10.0.0.99:9001")
	c.Remove(shardNames(3)[0])
	for _, key := range keys {
		if got := r.Primary(key); got != before[key] {
			t.Fatalf("mutating a clone moved key %q on the original (%q -> %q)", key, before[key], got)
		}
	}
	if r.Len() != 3 || !r.Has(shardNames(3)[0]) {
		t.Fatal("clone mutation leaked into original membership")
	}
}
