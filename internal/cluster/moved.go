package cluster

import "sort"

// MovedKeys reports, in sorted order, which of keys change primary owner
// when membership goes from oldMembers to newMembers (same vnodes on both
// sides). This is the migration plan for a membership change: only the
// returned keys need their sessions drained to snapshot and rehydrated on
// the new owner; every other resident session stays put.
//
// The computation is pure — two fresh rings are built from the member
// lists, so the answer depends only on (oldMembers, newMembers, vnodes,
// keys) and is identical on every router replica that observed the same
// membership epoch. Consistent hashing bounds the answer: adding one
// member to N claims only the key ranges adjacent to its vnodes, ≈K/(N+1)
// of K keys in expectation (the property test pins ⌈K/N⌉+ε).
func MovedKeys(oldMembers, newMembers []string, vnodes int, keys []string) []string {
	oldRing := NewRing(vnodes)
	for _, m := range oldMembers {
		oldRing.Add(m)
	}
	newRing := NewRing(vnodes)
	for _, m := range newMembers {
		newRing.Add(m)
	}
	moved := make([]string, 0)
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if oldRing.Primary(k) != newRing.Primary(k) {
			moved = append(moved, k)
		}
	}
	sort.Strings(moved)
	return moved
}
