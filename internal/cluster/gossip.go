package cluster

// Gossip types: the anti-entropy digest router replicas exchange so N
// routers converge on one view of membership and shard health. The
// protocol is deliberately tiny — a periodic full-state push of
// (epoch, members, per-shard observations) to each peer — because the
// state is tiny: single-digit shards, versioned by per-shard sequence
// numbers rather than clocks.
//
// Convergence: a push to every peer each interval means any observation
// made on one replica reaches all N-1 peers within one gossip interval
// and is then re-pushed by them, so a full mesh converges in 1 round and
// any connected peer graph of diameter D converges in D rounds. The
// cluster tests pin that bound.

// ShardObservation is one replica's current belief about one shard,
// versioned by Seq. Seq is bumped only by a replica that observes a state
// flip first-hand (a probe or data-path failure/recovery); replicas that
// merely adopt a peer's observation keep its Seq. Higher Seq wins a merge,
// so a fresh first-hand flip beats any amount of stale gossip, and a
// replica's own next first-hand flip (Seq = max seen + 1) reclaims
// authority over what gossip told it.
type ShardObservation struct {
	Shard   string `json:"shard"`
	Healthy bool   `json:"healthy"`
	Seq     uint64 `json:"seq"`
}

// Digest is the full gossip payload: the sender's membership epoch, its
// member list at that epoch, and its per-shard health observations.
// Membership travels inside the digest (not as a "go ask the admin API"
// pointer) so a partitioned-then-healed replica catches up from any one
// peer in a single exchange.
type Digest struct {
	Epoch   uint64             `json:"epoch"`
	Members []string           `json:"members,omitempty"`
	Shards  []ShardObservation `json:"shards,omitempty"`
}

// Supersedes reports whether remote should replace local when both
// describe the same shard. Higher Seq wins; on a Seq tie an unhealthy
// observation wins — the pessimistic tie-break, because acting on a false
// "down" costs one redundant failover probe while acting on a false "up"
// sends live traffic at a dead shard.
func Supersedes(remote, local ShardObservation) bool {
	if remote.Seq != local.Seq {
		return remote.Seq > local.Seq
	}
	return !remote.Healthy && local.Healthy
}

// MergeObservations folds a received digest's shard observations into a
// local view (keyed by shard) and returns the observations that were
// adopted, in digest order. Shards absent from the local view are ignored:
// membership is epoch-gated, so an observation about a shard this replica
// doesn't know belongs to a membership change it hasn't adopted yet, and
// will be re-gossiped after it has.
func MergeObservations(local map[string]ShardObservation, remote []ShardObservation) []ShardObservation {
	var adopted []ShardObservation
	for _, obs := range remote {
		cur, known := local[obs.Shard]
		if !known {
			continue
		}
		if Supersedes(obs, cur) {
			local[obs.Shard] = obs
			adopted = append(adopted, obs)
		}
	}
	return adopted
}
