package cluster

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"rebudget/internal/server"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func clusterSnap(id string, epochs int) *server.SessionSnapshot {
	return &server.SessionSnapshot{
		Version: server.SnapshotVersion,
		ID:      id,
		Spec:    server.SessionSpec{Mechanism: "equalshare", Workload: server.WorkloadSpec{Fig3: true}},
		Epochs:  int64(epochs),
		Health:  "healthy",
		SavedAt: time.Unix(1700000000+int64(epochs), 0).UTC(),
		Market:  &server.MarketSnapshot{Demand: []float64{1.25, 2.5}, Weights: []float64{1, 1}},
	}
}

func newHTTPStore(t *testing.T) (*HTTPSnapshotStore, *SnapServer) {
	t.Helper()
	ss := NewSnapServer(0, discardLogger())
	srv := httptest.NewServer(ss.Handler())
	t.Cleanup(srv.Close)
	return NewHTTPSnapshotStore(srv.URL, srv.Client()), ss
}

// --- HTTP store / snap server ---

func TestHTTPStoreRoundTrip(t *testing.T) {
	hs, ss := newHTTPStore(t)
	if err := hs.Save(clusterSnap("rt", 12)); err != nil {
		t.Fatal(err)
	}
	got, err := hs.Load("rt")
	if err != nil || got.Epochs != 12 {
		t.Fatalf("load: %+v %v", got, err)
	}
	if ss.Len() != 1 {
		t.Fatalf("server holds %d snapshots, want 1", ss.Len())
	}
	if err := hs.Delete("rt"); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Load("rt"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("after delete: want ErrNoSnapshot, got %v", err)
	}
	// Deleting again (absent) is not an error, matching the file store.
	if err := hs.Delete("rt"); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPStoreMissingIsErrNoSnapshot(t *testing.T) {
	hs, _ := newHTTPStore(t)
	if _, err := hs.Load("ghost"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
	if _, err := hs.LoadRaw("ghost"); !os.IsNotExist(err) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}

// A down service is a load error, not a phantom cold start: the daemon
// counts it separately and still degrades gracefully.
func TestHTTPStoreTransportErrorIsNotErrNoSnapshot(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	hs := NewHTTPSnapshotStore(url, &http.Client{Timeout: time.Second})
	if err := hs.Save(clusterSnap("down", 1)); err == nil {
		t.Fatal("save against a dead service should fail")
	}
	_, err := hs.Load("down")
	if err == nil || errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("dead service must not masquerade as ErrNoSnapshot: %v", err)
	}
}

// Raw bytes round-trip verbatim — the seam chaos faults ride through.
func TestHTTPStoreRawRoundTrip(t *testing.T) {
	hs, _ := newHTTPStore(t)
	torn := []byte(`{"version":3,"id":"torn","epo`) // truncated JSON
	if err := hs.SaveRaw("torn", torn); err != nil {
		t.Fatal(err)
	}
	got, err := hs.LoadRaw("torn")
	if err != nil || !bytes.Equal(got, torn) {
		t.Fatalf("raw round trip: %q %v", got, err)
	}
	// And the decode path turns the damage into a cold start.
	if _, err := hs.Load("torn"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("torn bytes: want ErrNoSnapshot, got %v", err)
	}
}

// Identical content under two ids is stored once (content addressing).
func TestSnapServerDedupsIdenticalContent(t *testing.T) {
	hs, ss := newHTTPStore(t)
	data := []byte("identical bytes")
	if err := hs.SaveRaw("a", data); err != nil {
		t.Fatal(err)
	}
	if err := hs.SaveRaw("b", data); err != nil {
		t.Fatal(err)
	}
	ss.mu.RLock()
	uniq := len(ss.blobs)
	ss.mu.RUnlock()
	if uniq != 1 {
		t.Fatalf("identical content stored %d times, want 1", uniq)
	}
	// Deleting one id must not take the other's bytes with it.
	if err := hs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if got, err := hs.LoadRaw("b"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("dedup delete broke the surviving id: %q %v", got, err)
	}
}

// Server-side rot (stored bytes no longer match their content address) is
// detected on GET and answered 404 — a cold start, never damaged state.
func TestSnapServerDetectsRot(t *testing.T) {
	hs, ss := newHTTPStore(t)
	if err := hs.SaveRaw("rot", []byte("pristine bytes")); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	for _, b := range ss.blobs {
		b.data[0] ^= 0x40 // flip a bit in place, behind the hash's back
	}
	ss.mu.Unlock()
	if _, err := hs.LoadRaw("rot"); !os.IsNotExist(err) {
		t.Fatalf("rotted blob: want os.ErrNotExist, got %v", err)
	}
	if _, err := hs.Load("rot"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("rotted blob: want ErrNoSnapshot, got %v", err)
	}
}

// --- replicated store ---

func TestReplicatedStoreFreshestWinsAndRepairs(t *testing.T) {
	r1 := server.NewMemorySnapshotStore()
	r2 := server.NewMemorySnapshotStore()
	r3 := server.NewMemorySnapshotStore()
	rs, err := NewReplicatedSnapshotStore(r1, r2, r3)
	if err != nil {
		t.Fatal(err)
	}
	// r1 holds a stale copy, r2 the freshest, r3 nothing.
	if err := r1.Save(clusterSnap("f", 5)); err != nil {
		t.Fatal(err)
	}
	if err := r2.Save(clusterSnap("f", 9)); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Load("f")
	if err != nil || got.Epochs != 9 {
		t.Fatalf("load: %+v %v", got, err)
	}
	// The read repaired both the stale and the empty replica.
	for i, r := range []*server.MemorySnapshotStore{r1, r3} {
		cur, err := r.Load("f")
		if err != nil || cur.Epochs != 9 {
			t.Fatalf("replica %d not repaired: %+v %v", i, cur, err)
		}
	}
}

func TestReplicatedStoreSurvivesCorruptMinority(t *testing.T) {
	r1 := server.NewMemorySnapshotStore()
	r2 := server.NewMemorySnapshotStore()
	rs, err := NewReplicatedSnapshotStore(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save(clusterSnap("c", 7)); err != nil {
		t.Fatal(err)
	}
	// Bit-rot replica 1's copy behind the store's back.
	raw, err := r1.LoadRaw("c")
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := r1.SaveRaw("c", raw); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Load("c")
	if err != nil || got.Epochs != 7 {
		t.Fatalf("one intact replica should be enough: %+v %v", got, err)
	}
	// And the rotted replica was healed from the intact one.
	if cur, err := r1.Load("c"); err != nil || cur.Epochs != 7 {
		t.Fatalf("rotted replica not healed: %+v %v", cur, err)
	}
}

func TestReplicatedStoreAllCorruptIsColdStart(t *testing.T) {
	r1 := server.NewMemorySnapshotStore()
	r2 := server.NewMemorySnapshotStore()
	rs, err := NewReplicatedSnapshotStore(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SaveRaw("x", []byte("not a snapshot at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Load("x"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("all-corrupt: want ErrNoSnapshot, got %v", err)
	}
	if _, err := rs.Load("absent"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("absent: want ErrNoSnapshot, got %v", err)
	}
}

func TestReplicatedStoreMixedBackends(t *testing.T) {
	// A memory replica beside an HTTP replica: the interface is the seam.
	hs, _ := newHTTPStore(t)
	mem := server.NewMemorySnapshotStore()
	rs, err := NewReplicatedSnapshotStore(mem, hs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save(clusterSnap("mix", 3)); err != nil {
		t.Fatal(err)
	}
	for _, st := range []server.SnapshotStore{mem, hs, rs} {
		got, err := st.Load("mix")
		if err != nil || got.Epochs != 3 {
			t.Fatalf("%T: %+v %v", st, got, err)
		}
	}
	if err := rs.Delete("mix"); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Load("mix"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("after delete: want ErrNoSnapshot, got %v", err)
	}
}
