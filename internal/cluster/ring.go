// Package cluster is the elastic-membership layer of the serving tier:
// the consistent-hash ring (moved here from internal/router once membership
// stopped being a boot-time constant), the moved-key computation that turns
// a ring change into a minimal migration plan, gossip digests that let N
// router replicas converge on one view of shard health, and non-filesystem
// SnapshotStore backends (an HTTP blob service and an in-process N-way
// replicated store) so a shard's sessions restore warm on any node without
// shared disk. The ring math is deliberately deterministic and replica-
// independent: two routers holding the same member list compute identical
// placements and identical moved sets, which is what makes a membership
// epoch a sufficient coordination token. See DESIGN.md, "Elastic
// membership".
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Every member is
// hashed onto the ring VNodes times; a key maps to the first point at or
// clockwise after its hash. Membership changes move only the keys adjacent
// to the changed member — the property that makes scale-out a small
// migration instead of a full reshuffle.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring; vnodes <= 0 selects 64 virtual nodes per
// member (ample balance for single-digit shard counts).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash is FNV-1a with a splitmix64-style finalizer. FNV alone scatters
// similar short strings ("s1#0", "s2#0", vnode names generally) badly enough
// to starve whole members; the avalanche rounds fix the distribution while
// staying dependency-free.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership without building the full sorted list.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[member]
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy with identical membership and vnode
// count. The migration planner uses it to evaluate "the ring as it would
// be" without disturbing the ring that is serving traffic.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{
		vnodes:  r.vnodes,
		points:  make([]ringPoint, len(r.points)),
		members: make(map[string]bool, len(r.members)),
	}
	copy(c.points, r.points)
	for m := range r.members {
		c.members[m] = true
	}
	return c
}

// Primary returns the member owning key ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every distinct member in the order the ring visits them
// clockwise from key's hash: the primary first, then each successive
// failover target. This is the router's whole placement policy — try
// Sequence(key) in order, first healthy member wins.
func (r *Ring) Sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
