package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"sync"
	"time"
)

// SnapServer is the HTTP snapshot service behind cmd/rebudget-snapstore: a
// content-addressed blob store any shard can reach, so warm restore stops
// requiring a shared filesystem. Bytes are opaque to the service — the
// snapshot format (JSON + checksum) belongs to the client side, which is
// exactly what lets the chaos layer's torn-write and bit-rot faults pass
// through to storage and come back out for DecodeSnapshot to reject.
//
// Content addressing: each PUT body is stored once under its SHA-256 and
// an id → address index entry points at it, so N sessions snapshotting
// identical state (common right after a fleet-wide warm start) share one
// blob. Every GET re-hashes the blob and CRC-checks it against the values
// recorded at PUT; a mismatch — storage rot — answers 404, which the
// client maps to ErrNoSnapshot: a cold start, never resurrected damage.
type SnapServer struct {
	log     *slog.Logger
	maxBody int64
	started time.Time

	mu    sync.RWMutex
	index map[string]string // snapshot id → content address
	blobs map[string]*blob  // content address → bytes

	puts, gets, deletes, misses, corrupt, dedups uint64
}

type blob struct {
	data []byte
	crc  uint32
	refs int
}

// snapIDPattern mirrors the daemon's session-id discipline: addresses in
// the store namespace stay shell- and URL-safe.
var snapIDPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// NewSnapServer builds an empty snapshot service. maxBody <= 0 selects
// 4 MiB (snapshots are bounded JSON, but sim journals can be long);
// logger nil selects slog.Default().
func NewSnapServer(maxBody int64, logger *slog.Logger) *SnapServer {
	if maxBody <= 0 {
		maxBody = 4 << 20
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &SnapServer{
		log:     logger,
		maxBody: maxBody,
		started: time.Now(),
		index:   make(map[string]string),
		blobs:   make(map[string]*blob),
	}
}

// Handler returns the service's HTTP handler.
func (ss *SnapServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/blobs/{id}", ss.handlePut)
	mux.HandleFunc("GET /v1/blobs/{id}", ss.handleGet)
	mux.HandleFunc("DELETE /v1/blobs/{id}", ss.handleDelete)
	mux.HandleFunc("GET /healthz", ss.handleHealthz)
	mux.HandleFunc("GET /metrics", ss.handleMetrics)
	return mux
}

// Len reports how many snapshot ids the index holds (tests, /healthz).
func (ss *SnapServer) Len() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.index)
}

func (ss *SnapServer) handlePut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !snapIDPattern.MatchString(id) {
		http.Error(w, "unstorable id", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, ss.maxBody+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > ss.maxBody {
		http.Error(w, "blob too large", http.StatusRequestEntityTooLarge)
		return
	}
	sum := sha256.Sum256(data)
	addr := hex.EncodeToString(sum[:])
	crc := crc32.ChecksumIEEE(data)
	ss.mu.Lock()
	ss.puts++
	if prev, ok := ss.index[id]; ok && prev != addr {
		ss.unrefLocked(prev)
	}
	if b, ok := ss.blobs[addr]; ok {
		if prev, had := ss.index[id]; !had || prev != addr {
			b.refs++
			ss.dedups++
		}
	} else {
		ss.blobs[addr] = &blob{data: data, crc: crc, refs: 1}
	}
	ss.index[id] = addr
	ss.mu.Unlock()
	w.Header().Set("X-Content-Address", addr)
	w.WriteHeader(http.StatusNoContent)
}

func (ss *SnapServer) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ss.mu.Lock()
	ss.gets++
	addr, ok := ss.index[id]
	var b *blob
	if ok {
		b = ss.blobs[addr]
	}
	if !ok || b == nil {
		ss.misses++
		ss.mu.Unlock()
		http.Error(w, "no blob", http.StatusNotFound)
		return
	}
	data := b.data
	wantCRC := b.crc
	ss.mu.Unlock()
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != addr || crc32.ChecksumIEEE(data) != wantCRC {
		ss.mu.Lock()
		ss.corrupt++
		ss.mu.Unlock()
		ss.log.Warn("blob failed integrity check", "id", id, "addr", addr)
		http.Error(w, "blob corrupt", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Content-Address", addr)
	_, _ = w.Write(data)
}

func (ss *SnapServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ss.mu.Lock()
	ss.deletes++
	if addr, ok := ss.index[id]; ok {
		delete(ss.index, id)
		ss.unrefLocked(addr)
	}
	ss.mu.Unlock()
	// Deleting an absent snapshot is not an error, matching the file store.
	w.WriteHeader(http.StatusNoContent)
}

func (ss *SnapServer) unrefLocked(addr string) {
	if b, ok := ss.blobs[addr]; ok {
		b.refs--
		if b.refs <= 0 {
			delete(ss.blobs, addr)
		}
	}
}

func (ss *SnapServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ss.mu.RLock()
	n, uniq := len(ss.index), len(ss.blobs)
	ss.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"snapshots":      n,
		"unique_blobs":   uniq,
		"uptime_seconds": int64(time.Since(ss.started).Seconds()),
	})
}

func (ss *SnapServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	var bytes int
	for _, b := range ss.blobs {
		bytes += len(b.data)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE snapstore_puts_total counter\nsnapstore_puts_total %d\n", ss.puts)
	fmt.Fprintf(w, "# TYPE snapstore_gets_total counter\nsnapstore_gets_total %d\n", ss.gets)
	fmt.Fprintf(w, "# TYPE snapstore_deletes_total counter\nsnapstore_deletes_total %d\n", ss.deletes)
	fmt.Fprintf(w, "# TYPE snapstore_misses_total counter\nsnapstore_misses_total %d\n", ss.misses)
	fmt.Fprintf(w, "# TYPE snapstore_corrupt_total counter\nsnapstore_corrupt_total %d\n", ss.corrupt)
	fmt.Fprintf(w, "# TYPE snapstore_dedup_hits_total counter\nsnapstore_dedup_hits_total %d\n", ss.dedups)
	fmt.Fprintf(w, "# TYPE snapstore_snapshots gauge\nsnapstore_snapshots %d\n", len(ss.index))
	fmt.Fprintf(w, "# TYPE snapstore_blob_bytes gauge\nsnapstore_blob_bytes %d\n", bytes)
}
