package cluster

import (
	"fmt"
	"testing"
)

func TestSupersedes(t *testing.T) {
	cases := []struct {
		name          string
		remote, local ShardObservation
		want          bool
	}{
		{"higher seq wins", ShardObservation{Seq: 3, Healthy: true}, ShardObservation{Seq: 2, Healthy: false}, true},
		{"lower seq loses", ShardObservation{Seq: 1, Healthy: false}, ShardObservation{Seq: 2, Healthy: true}, false},
		{"tie: unhealthy beats healthy", ShardObservation{Seq: 2, Healthy: false}, ShardObservation{Seq: 2, Healthy: true}, true},
		{"tie: healthy does not beat unhealthy", ShardObservation{Seq: 2, Healthy: true}, ShardObservation{Seq: 2, Healthy: false}, false},
		{"tie: equal states are not adopted", ShardObservation{Seq: 2, Healthy: true}, ShardObservation{Seq: 2, Healthy: true}, false},
	}
	for _, c := range cases {
		if got := Supersedes(c.remote, c.local); got != c.want {
			t.Errorf("%s: Supersedes=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestMergeObservationsIgnoresUnknownShards(t *testing.T) {
	local := map[string]ShardObservation{
		"s1": {Shard: "s1", Healthy: true, Seq: 1},
	}
	adopted := MergeObservations(local, []ShardObservation{
		{Shard: "s1", Healthy: false, Seq: 2},
		{Shard: "s9", Healthy: false, Seq: 7}, // not in local membership
	})
	if len(adopted) != 1 || adopted[0].Shard != "s1" {
		t.Fatalf("adopted = %+v", adopted)
	}
	if _, leaked := local["s9"]; leaked {
		t.Fatal("merge adopted an observation about an unknown shard")
	}
	if local["s1"].Healthy || local["s1"].Seq != 2 {
		t.Fatalf("merge did not adopt the newer observation: %+v", local["s1"])
	}
}

// gossipNode is a minimal replica for convergence simulation: a local view
// plus the digest push that a real router's gossip loop performs.
type gossipNode struct {
	view map[string]ShardObservation
}

func (n *gossipNode) digest() []ShardObservation {
	out := make([]ShardObservation, 0, len(n.view))
	for _, obs := range n.view {
		out = append(out, obs)
	}
	return out
}

// Convergence bound: on a peer graph of diameter D where every node pushes
// its digest to its peers once per round, a first-hand observation reaches
// every node within D rounds. Pinned for the two shapes that matter: full
// mesh (D=1, the deployment default) and a chain (worst connected case).
func TestGossipConvergenceBound(t *testing.T) {
	shards := []string{"s1", "s2", "s3", "s4"}
	newNodes := func(n int) []*gossipNode {
		nodes := make([]*gossipNode, n)
		for i := range nodes {
			nodes[i] = &gossipNode{view: make(map[string]ShardObservation)}
			for _, s := range shards {
				nodes[i].view[s] = ShardObservation{Shard: s, Healthy: true, Seq: 0}
			}
		}
		return nodes
	}
	runRound := func(nodes []*gossipNode, peers func(i int) []int) {
		// Push-style: every node sends its current digest to its peers.
		// Digests are snapshotted first so a round is one exchange, not a
		// cascade (the bound must hold without intra-round relaying).
		digests := make([][]ShardObservation, len(nodes))
		for i, n := range nodes {
			digests[i] = n.digest()
		}
		for i := range nodes {
			for _, p := range peers(i) {
				MergeObservations(nodes[p].view, digests[i])
			}
		}
	}
	converged := func(nodes []*gossipNode, shard string) bool {
		for _, n := range nodes {
			if n.view[shard].Healthy {
				return false
			}
		}
		return true
	}

	t.Run("full mesh converges in 1 round", func(t *testing.T) {
		nodes := newNodes(5)
		// Node 0 observes s3 die first-hand: seq bump + flip.
		nodes[0].view["s3"] = ShardObservation{Shard: "s3", Healthy: false, Seq: 1}
		all := func(i int) []int {
			var out []int
			for j := range nodes {
				if j != i {
					out = append(out, j)
				}
			}
			return out
		}
		runRound(nodes, all)
		if !converged(nodes, "s3") {
			t.Fatal("full mesh did not converge on the dead shard within 1 round")
		}
	})

	t.Run("chain of N converges in N-1 rounds", func(t *testing.T) {
		const n = 6
		nodes := newNodes(n)
		nodes[0].view["s2"] = ShardObservation{Shard: "s2", Healthy: false, Seq: 1}
		chain := func(i int) []int {
			var out []int
			if i > 0 {
				out = append(out, i-1)
			}
			if i < n-1 {
				out = append(out, i+1)
			}
			return out
		}
		for round := 1; round <= n-1; round++ {
			runRound(nodes, chain)
			if converged(nodes, "s2") && round < n-1 {
				break
			}
		}
		if !converged(nodes, "s2") {
			t.Fatalf("chain of %d did not converge within %d rounds", n, n-1)
		}
	})

	t.Run("fresh local flip overrides stale gossip", func(t *testing.T) {
		nodes := newNodes(2)
		// Node 0 saw s1 die (seq 1) and gossiped it; node 1 adopted it.
		nodes[0].view["s1"] = ShardObservation{Shard: "s1", Healthy: false, Seq: 1}
		runRound(nodes, func(i int) []int { return []int{1 - i} })
		if nodes[1].view["s1"].Healthy {
			t.Fatal("setup: node 1 should have adopted the death")
		}
		// Node 1 then probes s1 healthy first-hand: seq = max seen + 1.
		nodes[1].view["s1"] = ShardObservation{Shard: "s1", Healthy: true, Seq: 2}
		runRound(nodes, func(i int) []int { return []int{1 - i} })
		for i, n := range nodes {
			if !n.view["s1"].Healthy {
				t.Fatalf("node %d still believes stale gossip over a fresh first-hand probe", i)
			}
		}
	})
}

// A dense cluster of observations across many shards still merges shard by
// shard — no cross-shard interference.
func TestMergeObservationsManyShards(t *testing.T) {
	local := make(map[string]ShardObservation)
	var remote []ShardObservation
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("s%d", i)
		local[name] = ShardObservation{Shard: name, Healthy: true, Seq: uint64(i)}
		// Every third shard has a newer remote observation.
		if i%3 == 0 {
			remote = append(remote, ShardObservation{Shard: name, Healthy: false, Seq: uint64(i) + 1})
		} else {
			remote = append(remote, ShardObservation{Shard: name, Healthy: false, Seq: uint64(i) - 1})
		}
	}
	adopted := MergeObservations(local, remote)
	want := 0
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("s%d", i)
		if i%3 == 0 {
			want++
			if local[name].Healthy {
				t.Fatalf("shard %s: newer remote not adopted", name)
			}
		} else if !local[name].Healthy {
			t.Fatalf("shard %s: older remote adopted", name)
		}
	}
	if len(adopted) != want {
		t.Fatalf("adopted %d observations, want %d", len(adopted), want)
	}
}
