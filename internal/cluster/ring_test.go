package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingStableMapping(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	// Membership order must not matter: the ring is a pure function of the
	// member set.
	for _, m := range []string{"s1", "s2", "s3"} {
		a.Add(m)
	}
	for _, m := range []string{"s3", "s1", "s2"} {
		b.Add(m)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		if pa, pb := a.Primary(key), b.Primary(key); pa != pb {
			t.Fatalf("key %q: primary depends on insertion order (%q vs %q)", key, pa, pb)
		}
		if !reflect.DeepEqual(a.Sequence(key), b.Sequence(key)) {
			t.Fatalf("key %q: sequence depends on insertion order", key)
		}
	}
	// And repeated lookups are stable.
	if a.Primary("session-7") != a.Primary("session-7") {
		t.Fatal("primary not stable across lookups")
	}
}

func TestRingSequenceCoversAllMembersOnce(t *testing.T) {
	r := NewRing(32)
	members := []string{"s1", "s2", "s3", "s4"}
	for _, m := range members {
		r.Add(m)
	}
	seq := r.Sequence("some-session")
	if len(seq) != len(members) {
		t.Fatalf("sequence %v does not cover all %d members", seq, len(members))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		if seen[m] {
			t.Fatalf("sequence %v repeats %q", seq, m)
		}
		seen[m] = true
	}
	if seq[0] != r.Primary("some-session") {
		t.Fatal("sequence head is not the primary")
	}
}

// Removing a member must move only the keys it owned: every other key keeps
// its primary — the consistent-hashing property the migration story rests on.
func TestRingRemoveMovesOnlyOwnedKeys(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"s1", "s2", "s3"} {
		r.Add(m)
	}
	const n = 500
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("session-%d", i)
		before[key] = r.Primary(key)
	}
	r.Remove("s2")
	for key, owner := range before {
		now := r.Primary(key)
		if owner != "s2" && now != owner {
			t.Fatalf("key %q moved %q -> %q though its owner stayed in the ring", key, owner, now)
		}
		if owner == "s2" && now == "s2" {
			t.Fatalf("key %q still maps to removed member", key)
		}
	}
	// Re-adding restores the original mapping exactly.
	r.Add("s2")
	for key, owner := range before {
		if got := r.Primary(key); got != owner {
			t.Fatalf("key %q: re-add did not restore mapping (%q vs %q)", key, got, owner)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	members := []string{"s1", "s2", "s3"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Primary(fmt.Sprintf("session-%d", i))]++
	}
	for _, m := range members {
		// With 64 vnodes the split is not exact, but no shard should fall
		// below half its fair share or exceed double it.
		if counts[m] < n/(2*len(members)) || counts[m] > 2*n/len(members) {
			t.Fatalf("unbalanced ring: %v", counts)
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(0) // default vnodes
	if r.Primary("x") != "" || r.Sequence("x") != nil {
		t.Fatal("empty ring should map to nothing")
	}
	r.Add("s1")
	r.Add("s1") // idempotent
	if got := r.Members(); !reflect.DeepEqual(got, []string{"s1"}) {
		t.Fatalf("members = %v", got)
	}
	if r.Primary("x") != "s1" {
		t.Fatal("single-member ring must own every key")
	}
	r.Remove("s1")
	r.Remove("s1") // idempotent
	if r.Primary("x") != "" {
		t.Fatal("removal did not empty the ring")
	}
}
