// Package market implements the dynamic proportional-share market the paper
// adopts from XChange (Wang & Martínez, HPCA 2015). N players bid on M
// divisible resources; the market prices each resource as the sum of bids
// over its capacity (Equation 1) and allocates proportionally to bids. An
// iterative bidding–pricing loop (§2.1) drives the market to equilibrium:
// each round the market broadcasts prices and every player locally
// re-optimises its bids by marginal-utility hill climbing (§4.1.2).
package market

import (
	"fmt"
	"math"
	"runtime"
	"time"
)

// Utility is a player's utility over an allocation vector (one entry per
// resource, in resource units). Implementations should be continuous,
// non-decreasing and concave for the theory of §3 to apply; the multicore
// layer guarantees this via Talus convexification.
type Utility interface {
	Value(alloc []float64) float64
}

// UtilityFunc adapts a plain function to the Utility interface.
type UtilityFunc func(alloc []float64) float64

// Value implements Utility.
func (f UtilityFunc) Value(alloc []float64) float64 { return f(alloc) }

// Player is one market participant.
type Player struct {
	Name    string
	Utility Utility
	Budget  float64
}

// Config tunes the equilibrium search. Zero values select the paper's
// defaults (see DefaultConfig).
type Config struct {
	// PriceTolerance declares convergence when every resource price
	// changes by less than this relative fraction between rounds (§2.1
	// uses 1%).
	PriceTolerance float64
	// MaxIterations is the fail-safe bound on bidding–pricing rounds
	// (§6.4 terminates after 30).
	MaxIterations int
	// LambdaTolerance stops a player's hill climb once its per-resource
	// marginal utilities agree within this relative fraction (§4.1.2
	// uses 5%).
	LambdaTolerance float64
	// MinShiftFraction stops the hill climb once the shift amount S
	// drops below this fraction of the player's budget (§4.1.2 uses 1%).
	MinShiftFraction float64
	// Damping blends each player's new bids with its previous bids
	// (0 = pure best response). The paper's markets converge without
	// damping; a small value guards pathological oscillations.
	Damping float64
	// Optimizer selects the player-local bid search. The default is the
	// paper's exponential hill climb (§4.1.2); GreedyExact is the
	// water-filling reference used by the bid-optimizer ablation.
	Optimizer BidOptimizer
	// GreedyQuanta is the budget granularity of GreedyExact (default 100).
	GreedyQuanta int
	// MaxBidSteps bounds one equilibrium run's total player bid
	// re-optimisations (N players × iterations). 0 means no step budget;
	// when exhausted the run stops with a NotConvergedError carrying the
	// partial state. A finer-grained fail-safe than MaxIterations for
	// latency-bounded runtime reallocation.
	MaxBidSteps int
	// RoundHook, when non-nil, observes each bidding–pricing round before
	// it executes (1-based). Returning false aborts the run with a
	// NotConvergedError. Watchdogs and the fault-injection framework hang
	// off this hook; nil costs nothing.
	RoundHook func(iteration int) bool
	// Workers sets the parallelism of each bidding round: per-player bid
	// re-optimisations fan out across a persistent goroutine pool. 0 means
	// GOMAXPROCS, 1 forces the serial loop, and markets with fewer than
	// minParallelPlayers players always run serially (the dispatch overhead
	// dwarfs the work). Parallel results are bit-identical to serial ones —
	// see the workerPool doc and DESIGN.md "Performance & concurrency".
	Workers int
	// Observer, when non-nil, receives one callback per completed
	// equilibrium search (converged or not) with the rounds executed, the
	// total player bid re-optimisations, and the wall time spent. The
	// metrics.EquilibriumProfile counters hang off this hook; nil costs
	// nothing. Called from whichever goroutine ran the search.
	Observer func(rounds, bidSteps int, wall time.Duration)
}

// BidOptimizer selects a player-local bid search strategy.
type BidOptimizer int

// Available optimizers.
const (
	// HillClimb is §4.1.2: shift S of money from the lowest-λ resource
	// to the highest, halving S each round.
	HillClimb BidOptimizer = iota
	// GreedyExact water-fills the budget one quantum at a time by
	// marginal utility — near-exact for concave utilities, ~10× the
	// evaluations.
	GreedyExact
)

// DefaultConfig returns the constants used throughout the paper.
func DefaultConfig() Config {
	return Config{
		PriceTolerance:   0.01,
		MaxIterations:    30,
		LambdaTolerance:  0.05,
		MinShiftFraction: 0.01,
		Damping:          0,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PriceTolerance <= 0 {
		c.PriceTolerance = d.PriceTolerance
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = d.MaxIterations
	}
	if c.LambdaTolerance <= 0 {
		c.LambdaTolerance = d.LambdaTolerance
	}
	if c.MinShiftFraction <= 0 {
		c.MinShiftFraction = d.MinShiftFraction
	}
	if c.GreedyQuanta <= 0 {
		c.GreedyQuanta = 100
	}
	return c
}

// Market couples players with resource capacities.
//
// A Market owns reusable equilibrium state (double-buffered bid matrices,
// price buffers, scratch space, and the lazily-created worker pool), so a
// single Market must not run FindEquilibrium concurrently with itself. The
// returned Equilibrium holds fresh copies and stays valid across runs.
// Call Close when done to release pool goroutines promptly; a finalizer
// backstops markets that are simply dropped.
type Market struct {
	capacity []float64
	players  []*Player
	cfg      Config

	// Reusable equilibrium state, lazily sized on first use. curBids and
	// nxtBids are row views into two flat backing arrays, swapped each
	// round; priceA/priceB double-buffer the price vector.
	curBids [][]float64
	nxtBids [][]float64
	priceA  []float64
	priceB  []float64
	scratch *bidScratch // serial-path and finalisation scratch
	pool    *workerPool
}

// New validates inputs and builds a market.
func New(capacity []float64, players []*Player, cfg Config) (*Market, error) {
	if len(capacity) == 0 {
		return nil, fmt.Errorf("market: no resources")
	}
	for j, c := range capacity {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("market: resource %d has invalid capacity %g", j, c)
		}
	}
	if len(players) < 2 {
		return nil, fmt.Errorf("market: need at least 2 players, got %d", len(players))
	}
	for i, p := range players {
		if p == nil || p.Utility == nil {
			return nil, fmt.Errorf("market: player %d missing utility", i)
		}
		if p.Budget < 0 || math.IsNaN(p.Budget) || math.IsInf(p.Budget, 0) {
			return nil, fmt.Errorf("market: player %d (%s) has invalid budget %g", i, p.Name, p.Budget)
		}
	}
	return &Market{
		capacity: append([]float64(nil), capacity...),
		players:  players,
		cfg:      cfg.withDefaults(),
	}, nil
}

// Close releases the worker-pool goroutines, if any were started. The
// Market remains usable afterwards (a later parallel round restarts the
// pool). Close is idempotent.
func (m *Market) Close() {
	if m.pool != nil {
		m.pool.close()
		m.pool = nil
		runtime.SetFinalizer(m, nil)
	}
}

// minParallelPlayers is the market size below which a bidding round always
// runs serially: channel hand-off costs more than re-optimising a handful
// of players.
const minParallelPlayers = 4

// resolveWorkers maps Config.Workers to the effective round parallelism.
func (m *Market) resolveWorkers() int {
	n := len(m.players)
	if n < minParallelPlayers {
		return 1
	}
	w := m.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ensureScratch sizes the reusable equilibrium buffers on first use.
func (m *Market) ensureScratch() {
	if m.curBids != nil {
		return
	}
	n, mm := len(m.players), len(m.capacity)
	bufA := make([]float64, n*mm)
	bufB := make([]float64, n*mm)
	m.curBids = make([][]float64, n)
	m.nxtBids = make([][]float64, n)
	for i := 0; i < n; i++ {
		m.curBids[i] = bufA[i*mm : (i+1)*mm : (i+1)*mm]
		m.nxtBids[i] = bufB[i*mm : (i+1)*mm : (i+1)*mm]
	}
	m.priceA = make([]float64, mm)
	m.priceB = make([]float64, mm)
	m.scratch = newBidScratch(mm)
}

// reoptimize computes player i's best response to the broadcast prices into
// its row of the next-round bid matrix, using only the given scratch — the
// unit of work a pool worker claims. It reads curBids[i] and prices, writes
// nxtBids[i], and touches no other shared state.
func (m *Market) reoptimize(i int, prices []float64, s *bidScratch) {
	p := m.players[i]
	cur := m.curBids[i]
	others := s.others
	for j := range m.capacity {
		y := prices[j]*m.capacity[j] - cur[j]
		if y < 0 {
			y = 0
		}
		others[j] = y
	}
	nb := m.nxtBids[i]
	if m.cfg.Optimizer == GreedyExact {
		optimizeBidsGreedy(p.Utility, p.Budget, others, m.capacity, m.cfg.GreedyQuanta, s, nb)
	} else {
		optimizeBids(p.Utility, p.Budget, others, m.capacity, m.cfg, s, nb)
	}
	if d := m.cfg.Damping; d > 0 {
		for j := range nb {
			nb[j] = d*cur[j] + (1-d)*nb[j]
		}
	}
}

// runRound re-optimises every player for one bidding round, serially or on
// the pool depending on the resolved worker count.
func (m *Market) runRound(prices []float64) {
	w := m.resolveWorkers()
	if w < 2 {
		for i := range m.players {
			m.reoptimize(i, prices, m.scratch)
		}
		return
	}
	if m.pool == nil {
		m.pool = newWorkerPool(w, len(m.capacity))
		// Backstop for markets dropped without Close: release the pool
		// goroutines when the Market becomes unreachable. The workers hold
		// no reference back to the Market, so the finalizer can run.
		runtime.SetFinalizer(m, (*Market).Close)
	}
	m.pool.run(m, prices)
}

// Capacity returns the resource capacities.
func (m *Market) Capacity() []float64 {
	return append([]float64(nil), m.capacity...)
}

// Players returns the participant slice (shared, not copied: budgets are
// mutated by budget-reassignment algorithms between equilibrium runs).
func (m *Market) Players() []*Player { return m.players }

// Equilibrium is the outcome of a bidding–pricing run.
type Equilibrium struct {
	Prices      []float64   // per resource (Equation 1)
	Bids        [][]float64 // player × resource
	Allocations [][]float64 // player × resource (proportional rule)
	Utilities   []float64   // player utility at its allocation
	Lambdas     []float64   // per-player marginal utility of money λᵢ
	Iterations  int         // bidding–pricing rounds executed
	Converged   bool        // prices settled within tolerance
}

// Efficiency returns the social welfare Σᵢ Uᵢ(rᵢ) (Definition 1).
func (e *Equilibrium) Efficiency() float64 {
	s := 0.0
	for _, u := range e.Utilities {
		s += u
	}
	return s
}

// prices computes Equation 1 for a full bid matrix.
func (m *Market) prices(bids [][]float64) []float64 {
	return m.pricesInto(bids, make([]float64, len(m.capacity)))
}

// pricesInto is prices writing into a caller-owned buffer.
func (m *Market) pricesInto(bids [][]float64, ps []float64) []float64 {
	for j := range m.capacity {
		sum := 0.0
		for i := range bids {
			sum += bids[i][j]
		}
		ps[j] = sum / m.capacity[j]
	}
	return ps
}

// allocate applies the proportional rule rᵢⱼ = bᵢⱼ/pⱼ. Resources nobody
// bids on are left unallocated (price zero).
func (m *Market) allocate(bids [][]float64, prices []float64) [][]float64 {
	out := make([][]float64, len(bids))
	for i := range bids {
		out[i] = make([]float64, len(m.capacity))
		for j := range m.capacity {
			if prices[j] > 0 {
				out[i][j] = bids[i][j] / prices[j]
			}
		}
	}
	return out
}

// StronglyCompetitive reports whether every resource receives non-zero bids
// from at least two players, the condition under which Lemma 1 guarantees
// an equilibrium exists.
func StronglyCompetitive(bids [][]float64) bool {
	if len(bids) == 0 {
		return false
	}
	for j := range bids[0] {
		n := 0
		for i := range bids {
			if bids[i][j] > 0 {
				n++
			}
		}
		if n < 2 {
			return false
		}
	}
	return true
}
