package market

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// sqrtUtility is a smooth, strictly concave, non-decreasing test utility:
// U(r) = Σⱼ wⱼ·√(rⱼ/Cⱼ), normalised so owning everything gives Σ wⱼ.
type sqrtUtility struct {
	weights  []float64
	capacity []float64
}

func (u sqrtUtility) Value(alloc []float64) float64 {
	s := 0.0
	for j, w := range u.weights {
		frac := alloc[j] / u.capacity[j]
		if frac < 0 {
			frac = 0
		}
		s += w * math.Sqrt(frac)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	u := sqrtUtility{weights: []float64{1, 1}, capacity: []float64{1, 1}}
	ps := []*Player{
		{Name: "a", Utility: u, Budget: 1},
		{Name: "b", Utility: u, Budget: 1},
	}
	if _, err := New(nil, ps, Config{}); err == nil {
		t.Error("no resources accepted")
	}
	if _, err := New([]float64{0, 1}, ps, Config{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New([]float64{1, 1}, ps[:1], Config{}); err == nil {
		t.Error("single player accepted")
	}
	if _, err := New([]float64{1, 1}, []*Player{ps[0], {Name: "x", Budget: 1}}, Config{}); err == nil {
		t.Error("player without utility accepted")
	}
	if _, err := New([]float64{1, 1}, []*Player{ps[0], {Name: "x", Utility: u, Budget: -1}}, Config{}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := New([]float64{1, 1}, ps, Config{}); err != nil {
		t.Errorf("valid market rejected: %v", err)
	}
}

func TestOptimizeBidsEqualizesLambda(t *testing.T) {
	cfg := DefaultConfig()
	capacity := []float64{100, 100}
	u := sqrtUtility{weights: []float64{1, 1}, capacity: capacity}
	others := []float64{10, 10}
	bids := optimizeBids(u, 20, others, capacity, cfg, nil, nil)
	if math.Abs(bids[0]+bids[1]-20) > 1e-9 {
		t.Fatalf("bids %v do not spend the budget", bids)
	}
	lams := marginalUtilities(u, bids, others, capacity, 1e-4, nil)
	span := math.Abs(lams[0]-lams[1]) / math.Max(lams[0], lams[1])
	if span > 0.10 {
		t.Errorf("lambda spread %.3f too large: %v", span, lams)
	}
	// Symmetric problem: bids should be near-equal.
	if math.Abs(bids[0]-bids[1]) > 2 {
		t.Errorf("symmetric bids unbalanced: %v", bids)
	}
}

func TestOptimizeBidsSkewedPreferences(t *testing.T) {
	cfg := DefaultConfig()
	capacity := []float64{100, 100}
	// Strongly prefers resource 0.
	u := sqrtUtility{weights: []float64{10, 0.1}, capacity: capacity}
	bids := optimizeBids(u, 20, []float64{10, 10}, capacity, cfg, nil, nil)
	if bids[0] <= bids[1] {
		t.Errorf("player should bid more on the preferred resource: %v", bids)
	}
	if bids[0] < 15 {
		t.Errorf("preferred-resource bid %g too small", bids[0])
	}
}

func TestOptimizeBidsZeroBudget(t *testing.T) {
	capacity := []float64{10, 10}
	u := sqrtUtility{weights: []float64{1, 1}, capacity: capacity}
	bids := optimizeBids(u, 0, []float64{1, 1}, capacity, DefaultConfig(), nil, nil)
	if bids[0] != 0 || bids[1] != 0 {
		t.Errorf("zero budget should produce zero bids: %v", bids)
	}
}

func TestOptimizeBidsSingleResource(t *testing.T) {
	capacity := []float64{10}
	u := sqrtUtility{weights: []float64{1}, capacity: capacity}
	bids := optimizeBids(u, 7, []float64{3}, capacity, DefaultConfig(), nil, nil)
	if bids[0] != 7 {
		t.Errorf("single-resource bid = %g, want full budget", bids[0])
	}
}

func newTestMarket(t *testing.T, budgets []float64, weights [][]float64) *Market {
	t.Helper()
	capacity := []float64{100, 100}
	var players []*Player
	for i, b := range budgets {
		players = append(players, &Player{
			Name:    string(rune('A' + i)),
			Utility: sqrtUtility{weights: weights[i], capacity: capacity},
			Budget:  b,
		})
	}
	m, err := New(capacity, players, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEquilibriumSymmetric(t *testing.T) {
	m := newTestMarket(t,
		[]float64{10, 10},
		[][]float64{{1, 1}, {1, 1}})
	eq, err := m.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Converged {
		t.Fatalf("symmetric market did not converge in %d iterations", eq.Iterations)
	}
	// Equal players, equal budgets: allocations split evenly.
	for j := 0; j < 2; j++ {
		if math.Abs(eq.Allocations[0][j]-eq.Allocations[1][j]) > 2 {
			t.Errorf("asymmetric allocation of resource %d: %g vs %g",
				j, eq.Allocations[0][j], eq.Allocations[1][j])
		}
	}
	// Everything is allocated.
	for j := 0; j < 2; j++ {
		total := eq.Allocations[0][j] + eq.Allocations[1][j]
		if math.Abs(total-100) > 1e-6 {
			t.Errorf("resource %d allocation total %g, want 100", j, total)
		}
	}
	if !StronglyCompetitive(eq.Bids) {
		t.Error("symmetric market should be strongly competitive")
	}
}

func TestEquilibriumSpecializedPlayers(t *testing.T) {
	// Player A cares only about resource 0, B only about resource 1.
	m := newTestMarket(t,
		[]float64{10, 10},
		[][]float64{{1, 0}, {0, 1}})
	eq, err := m.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if eq.Allocations[0][0] < 90 {
		t.Errorf("specialist A got only %g of its resource", eq.Allocations[0][0])
	}
	if eq.Allocations[1][1] < 90 {
		t.Errorf("specialist B got only %g of its resource", eq.Allocations[1][1])
	}
}

func TestEquilibriumBudgetBuysShare(t *testing.T) {
	// Identical utilities, 3:1 budgets → allocation shares ≈ 3:1.
	m := newTestMarket(t,
		[]float64{30, 10},
		[][]float64{{1, 1}, {1, 1}})
	eq, err := m.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		ratio := eq.Allocations[0][j] / eq.Allocations[1][j]
		if math.Abs(ratio-3) > 0.3 {
			t.Errorf("resource %d allocation ratio = %g, want ≈3", j, ratio)
		}
	}
	if eq.Utilities[0] <= eq.Utilities[1] {
		t.Error("richer identical player should get higher utility")
	}
}

func TestLambdaDecreasesWithBudget(t *testing.T) {
	// Footnote 1: λᵢ decreases monotonically with a larger budget.
	lambdaFor := func(budget float64) float64 {
		m := newTestMarket(t,
			[]float64{budget, 10, 10},
			[][]float64{{1, 1}, {1, 1}, {1, 1}})
		eq, err := m.FindEquilibrium()
		if err != nil {
			t.Fatal(err)
		}
		return eq.Lambdas[0]
	}
	l5, l20, l80 := lambdaFor(5), lambdaFor(20), lambdaFor(80)
	if !(l5 > l20 && l20 > l80) {
		t.Errorf("lambda should fall with budget: λ(5)=%g λ(20)=%g λ(80)=%g", l5, l20, l80)
	}
}

func TestEquilibriumRespectsMaxIterations(t *testing.T) {
	// Asymmetric preferences: one bidding–pricing round cannot settle the
	// prices, so the iteration budget must trip.
	m := newTestMarket(t,
		[]float64{10, 40},
		[][]float64{{5, 1}, {1, 5}})
	m.cfg.MaxIterations = 1
	eq, err := m.FindEquilibrium()
	if err == nil {
		t.Fatal("1-iteration run converged; expected NotConvergedError")
	}
	var nc *NotConvergedError
	if !errors.As(err, &nc) {
		t.Fatalf("error %v is not a NotConvergedError", err)
	}
	if nc.Partial == nil {
		t.Fatal("NotConvergedError must carry the partial state")
	}
	if eq != nil {
		t.Error("non-converged run must not also return an equilibrium")
	}
	// Settle is the explicit §6.4 fail-safe: accept the best-effort state.
	eq, err = Settle(m.FindEquilibrium())
	if err != nil {
		t.Fatal(err)
	}
	if eq.Converged {
		t.Error("settled partial state should report Converged=false")
	}
	if eq.Iterations > 1 {
		t.Errorf("iterations = %d, want <= 1", eq.Iterations)
	}
	if len(eq.Utilities) != 2 || len(eq.Lambdas) != 2 {
		t.Error("partial state missing utilities or lambdas")
	}
}

func TestEquilibriumEfficiency(t *testing.T) {
	eq := &Equilibrium{Utilities: []float64{0.5, 0.25, 0.1}}
	if got := eq.Efficiency(); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("Efficiency = %g, want 0.85", got)
	}
}

func TestStronglyCompetitive(t *testing.T) {
	if StronglyCompetitive(nil) {
		t.Error("empty bids cannot be strongly competitive")
	}
	if !StronglyCompetitive([][]float64{{1, 2}, {3, 4}}) {
		t.Error("two positive bidders per resource is strongly competitive")
	}
	if StronglyCompetitive([][]float64{{1, 0}, {3, 4}}) {
		t.Error("resource with single bidder accepted")
	}
}

func TestUtilityFuncAdapter(t *testing.T) {
	f := UtilityFunc(func(a []float64) float64 { return a[0] * 2 })
	if f.Value([]float64{3}) != 6 {
		t.Error("UtilityFunc adapter broken")
	}
}

func TestCapacityCopied(t *testing.T) {
	cap := []float64{1, 2}
	u := sqrtUtility{weights: []float64{1, 1}, capacity: cap}
	m, _ := New(cap, []*Player{
		{Name: "a", Utility: u, Budget: 1},
		{Name: "b", Utility: u, Budget: 1},
	}, Config{})
	got := m.Capacity()
	got[0] = 99
	if m.Capacity()[0] != 1 {
		t.Error("Capacity must return a copy")
	}
}

// Property: random 3-player sqrt-utility markets settle to a feasible
// allocation with spent budgets and capacity conservation — converged or
// not (the §6.4 fail-safe state must be feasible too).
func TestEquilibriumFeasibility(t *testing.T) {
	f := func(ws [6]float64, bs [3]float64) bool {
		capacity := []float64{100, 50}
		var players []*Player
		for i := 0; i < 3; i++ {
			w1 := 0.1 + math.Abs(math.Mod(ws[2*i], 5))
			w2 := 0.1 + math.Abs(math.Mod(ws[2*i+1], 5))
			b := 1 + math.Abs(math.Mod(bs[i], 50))
			players = append(players, &Player{
				Utility: sqrtUtility{weights: []float64{w1, w2}, capacity: capacity},
				Budget:  b,
			})
		}
		m, err := New(capacity, players, Config{})
		if err != nil {
			return false
		}
		eq, err := Settle(m.FindEquilibrium())
		if err != nil {
			return false
		}
		for j := range capacity {
			total := 0.0
			for i := range players {
				if eq.Allocations[i][j] < -1e-9 {
					return false
				}
				total += eq.Allocations[i][j]
			}
			if total > capacity[j]*(1+1e-6) {
				return false
			}
		}
		for i, p := range players {
			spent := 0.0
			for _, b := range eq.Bids[i] {
				if b < -1e-9 {
					return false
				}
				spent += b
			}
			if spent > p.Budget*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFindEquilibriumFromWarmStart(t *testing.T) {
	m := newTestMarket(t,
		[]float64{30, 10},
		[][]float64{{1, 1}, {1, 1}})
	cold, err := m.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	// Warm-starting from the converged bids must converge immediately and
	// land on (essentially) the same equilibrium.
	warm, err := m.FindEquilibriumFrom(cold.Bids)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatal("warm restart did not converge")
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm restart took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
	for j := range warm.Prices {
		if math.Abs(warm.Prices[j]-cold.Prices[j]) > 0.05*cold.Prices[j] {
			t.Errorf("warm price %d drifted: %g vs %g", j, warm.Prices[j], cold.Prices[j])
		}
	}
}

func TestFindEquilibriumFromScalesOverBudgetBids(t *testing.T) {
	m := newTestMarket(t,
		[]float64{10, 10},
		[][]float64{{1, 1}, {1, 1}})
	// Warm bids that exceed player 0's budget must be scaled down, not
	// spent: a budget cut between equilibrium runs is the ReBudget case.
	m.Players()[0].Budget = 4
	eq, err := m.FindEquilibriumFrom([][]float64{{8, 8}, {5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	spent := 0.0
	for _, b := range eq.Bids[0] {
		spent += b
	}
	if spent > 4+1e-9 {
		t.Errorf("player 0 spent %g with budget 4", spent)
	}
}

func TestFindEquilibriumFromMalformedStart(t *testing.T) {
	m := newTestMarket(t,
		[]float64{10, 10},
		[][]float64{{1, 1}, {1, 1}})
	// Wrong-shaped warm starts fall back to the cold equal split.
	eq, err := m.FindEquilibriumFrom([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Converged {
		t.Error("malformed warm start should still converge from cold split")
	}
}

func TestEquilibriumRejectsNaNUtility(t *testing.T) {
	// A pathological utility that emits NaN must surface as an error, not
	// poison downstream MUR/efficiency computations.
	nan := UtilityFunc(func(a []float64) float64 { return math.NaN() })
	ok := sqrtUtility{weights: []float64{1, 1}, capacity: []float64{10, 10}}
	m, err := New([]float64{10, 10}, []*Player{
		{Name: "bad", Utility: nan, Budget: 5},
		{Name: "ok", Utility: ok, Budget: 5},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FindEquilibrium(); err == nil {
		t.Error("NaN utility accepted")
	}
}

func TestGreedyOptimizerMatchesHillClimb(t *testing.T) {
	capacity := []float64{100, 100}
	others := []float64{40, 25}
	for _, w := range [][]float64{{1, 1}, {5, 1}, {0.3, 2}} {
		u := sqrtUtility{weights: w, capacity: capacity}
		hc := optimizeBids(u, 30, others, capacity, DefaultConfig(), nil, nil)
		gr := optimizeBidsGreedy(u, 30, others, capacity, 200, nil, nil)
		uhc := u.Value(predictedAlloc(hc, others, capacity, nil))
		ugr := u.Value(predictedAlloc(gr, others, capacity, nil))
		// The reference may beat the heuristic slightly, never hugely,
		// and the heuristic must be within 2% of the reference.
		if uhc < ugr*0.98 {
			t.Errorf("weights %v: hill climb %g more than 2%% below greedy %g", w, uhc, ugr)
		}
	}
}

func TestGreedyOptimizerSpendsBudget(t *testing.T) {
	capacity := []float64{10, 10}
	u := sqrtUtility{weights: []float64{1, 1}, capacity: capacity}
	gr := optimizeBidsGreedy(u, 12, []float64{3, 3}, capacity, 100, nil, nil)
	if math.Abs(gr[0]+gr[1]-12) > 1e-9 {
		t.Errorf("greedy bids %v do not spend the budget", gr)
	}
	if z := optimizeBidsGreedy(u, 0, []float64{3, 3}, capacity, 100, nil, nil); z[0] != 0 || z[1] != 0 {
		t.Error("zero budget should give zero bids")
	}
	single := optimizeBidsGreedy(u, 5, []float64{1}, capacity[:1], 100, nil, nil)
	if single[0] != 5 {
		t.Error("single resource gets everything")
	}
}

func TestEquilibriumWithGreedyOptimizer(t *testing.T) {
	capacity := []float64{100, 100}
	mk := func(opt BidOptimizer) *Equilibrium {
		var players []*Player
		for i, w := range [][]float64{{1, 2}, {2, 1}, {1, 1}} {
			players = append(players, &Player{
				Name:    string(rune('A' + i)),
				Utility: sqrtUtility{weights: w, capacity: capacity},
				Budget:  10 + float64(i)*5,
			})
		}
		m, err := New(capacity, players, Config{Optimizer: opt})
		if err != nil {
			t.Fatal(err)
		}
		eq, err := m.FindEquilibrium()
		if err != nil {
			t.Fatal(err)
		}
		return eq
	}
	hc, gr := mk(HillClimb), mk(GreedyExact)
	if !gr.Converged {
		t.Error("greedy-optimizer market did not converge")
	}
	// Both optimizers land on essentially the same equilibrium welfare.
	if math.Abs(hc.Efficiency()-gr.Efficiency()) > 0.05*gr.Efficiency() {
		t.Errorf("equilibria diverge: hill climb %g vs greedy %g",
			hc.Efficiency(), gr.Efficiency())
	}
}

// TestEquilibriumIsApproximateNash verifies the defining property of the
// equilibrium directly: once converged, no player can improve its utility
// more than marginally by unilaterally re-optimising its bids against the
// final prices.
func TestEquilibriumIsApproximateNash(t *testing.T) {
	capacity := []float64{100, 60}
	var players []*Player
	weights := [][]float64{{1, 2}, {2, 1}, {1, 1}, {3, 0.5}}
	for i, w := range weights {
		players = append(players, &Player{
			Name:    string(rune('A' + i)),
			Utility: sqrtUtility{weights: w, capacity: capacity},
			Budget:  20 + 10*float64(i),
		})
	}
	m, err := New(capacity, players, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := m.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Converged {
		t.Fatal("market did not converge")
	}
	for i, p := range players {
		others := make([]float64, len(capacity))
		for j := range others {
			others[j] = eq.Prices[j]*capacity[j] - eq.Bids[i][j]
		}
		current := p.Utility.Value(eq.Allocations[i])
		// Best unilateral response via the fine-grained reference optimizer.
		best := optimizeBidsGreedy(p.Utility, p.Budget, others, capacity, 400, nil, nil)
		alt := p.Utility.Value(predictedAlloc(best, others, capacity, nil))
		if alt > current*1.03 {
			t.Errorf("player %s can deviate profitably: %.4f -> %.4f", p.Name, current, alt)
		}
	}
}
