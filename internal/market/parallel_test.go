package market

import (
	"math"
	"reflect"
	"testing"
)

// parallelPlayers builds a deterministic bundle of n players over two
// resources with seed-varied preferences and budgets — enough asymmetry
// that any scheduling-dependent divergence in the parallel engine would
// show up in the bid matrix.
func parallelPlayers(n int, seed uint64) ([]float64, []*Player) {
	capacity := []float64{100, 100}
	players := make([]*Player, n)
	for i := range players {
		s := seed + uint64(i)*2654435761
		w0 := 0.5 + float64(s%17)/4
		w1 := 0.5 + float64((s/17)%13)/3
		players[i] = &Player{
			Name:    string(rune('A' + i)),
			Utility: sqrtUtility{weights: []float64{w0, w1}, capacity: capacity},
			Budget:  50 + float64(s%7)*10,
		}
	}
	return capacity, players
}

// TestParallelMatchesSerial pins the engine's core guarantee: the worker
// pool claims players dynamically, but each result lands in its own indexed
// slot and per-player math reads only round-start state, so Workers:8 must
// be bit-identical to Workers:1 — not approximately equal, reflect.DeepEqual
// on every float.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		capacity, players := parallelPlayers(8, seed)
		serial, err := New(capacity, players, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		capacity2, players2 := parallelPlayers(8, seed)
		parallel, err := New(capacity2, players2, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer parallel.Close()

		// Two consecutive runs per market: the second exercises the reused
		// scratch buffers and the already-warm worker pool.
		for run := 0; run < 2; run++ {
			want, err := Settle(serial.FindEquilibrium())
			if err != nil {
				t.Fatalf("seed %d run %d serial: %v", seed, run, err)
			}
			got, err := Settle(parallel.FindEquilibrium())
			if err != nil {
				t.Fatalf("seed %d run %d parallel: %v", seed, run, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d run %d: parallel equilibrium diverged from serial\nserial:   %+v\nparallel: %+v",
					seed, run, want, got)
			}
		}
	}
}

// TestParallelWarmStartMatchesSerial covers the ReBudget path: warm-started
// re-convergence after a budget cut must also be bit-identical across
// worker counts.
func TestParallelWarmStartMatchesSerial(t *testing.T) {
	capacity, players := parallelPlayers(8, 99)
	serial, err := New(capacity, players, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	capacity2, players2 := parallelPlayers(8, 99)
	parallel, err := New(capacity2, players2, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.Close()

	want, err := Settle(serial.FindEquilibrium())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Settle(parallel.FindEquilibrium())
	if err != nil {
		t.Fatal(err)
	}
	// Cut one budget and re-converge from the previous bids on both engines.
	players[3].Budget *= 0.6
	players2[3].Budget *= 0.6
	want2, err := Settle(serial.FindEquilibriumFrom(want.Bids))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Settle(parallel.FindEquilibriumFrom(got.Bids))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want2, got2) {
		t.Fatalf("warm-started parallel equilibrium diverged from serial\nserial:   %+v\nparallel: %+v", want2, got2)
	}
}

// TestWarmStartRenormalisation checks the round-zero bid scaling of
// FindEquilibriumFrom directly: the round hook aborts before the first
// round, so the partial state exposes exactly the renormalised warm bids.
func TestWarmStartRenormalisation(t *testing.T) {
	capacity := []float64{100, 100}
	u := sqrtUtility{weights: []float64{1, 1}, capacity: capacity}
	players := []*Player{
		{Name: "raised", Utility: u, Budget: 40}, // warm bids sum to 20
		{Name: "cut", Utility: u, Budget: 10},    // warm bids sum to 20
		{Name: "same", Utility: u, Budget: 20},   // warm bids sum to 20
		{Name: "fresh", Utility: u, Budget: 12},  // all-zero warm bids
	}
	m, err := New(capacity, players, Config{
		RoundHook: func(int) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameBids := []float64{7.25, 12.75}
	warm := [][]float64{
		{5, 15},
		{12, 8},
		{sameBids[0], sameBids[1]},
		{0, 0},
	}
	_, err = m.FindEquilibriumFrom(warm)
	nc, ok := err.(*NotConvergedError)
	if !ok {
		t.Fatalf("expected *NotConvergedError from aborted run, got %v", err)
	}
	bids := nc.Partial.Bids

	sum := func(row []float64) float64 {
		s := 0.0
		for _, b := range row {
			s += b
		}
		return s
	}
	// Raised budget: bids scale up to spend the full 40 (this was the bug —
	// the old engine only scaled down, so a raised budget went unspent).
	if got := sum(bids[0]); math.Abs(got-40) > 1e-9 {
		t.Errorf("raised-budget player spends %g of 40", got)
	}
	if ratio := bids[0][1] / bids[0][0]; math.Abs(ratio-3) > 1e-9 {
		t.Errorf("scale-up should preserve bid proportions, got ratio %g want 3", ratio)
	}
	// Cut budget: scaled down as before.
	if got := sum(bids[1]); math.Abs(got-10) > 1e-9 {
		t.Errorf("cut-budget player spends %g of 10", got)
	}
	// Unchanged budget: bids pass through bit-identical — the 1e-9 relative
	// tolerance must not perturb bids that already spend the budget.
	if bids[2][0] != sameBids[0] || bids[2][1] != sameBids[1] {
		t.Errorf("unchanged-budget bids perturbed: %v want %v", bids[2], sameBids)
	}
	// Zero warm bids with positive budget: cold equal split.
	if bids[3][0] != 6 || bids[3][1] != 6 {
		t.Errorf("zero warm bids should restart from equal split, got %v", bids[3])
	}
}
