package market

import (
	"sync"
	"sync/atomic"
)

// workerPool fans one bidding round's per-player re-optimisations across a
// fixed set of goroutines. The §2.1 round is embarrassingly parallel: every
// player best-responds against the SAME broadcast prices and the SAME
// previous-round bid matrix, both read-only for the duration of the round,
// and writes only its own row of the next-round matrix.
//
// Determinism: workers claim player indices from a shared atomic cursor, so
// the assignment of players to workers varies run to run — but the result
// does not. Player i's new bids depend only on (prices, curBids[i], the
// player's utility and budget), each worker writes only slot i, and each
// player's memoizing utility is touched by exactly one goroutine per round
// (rounds are separated by the dispatch barrier, which establishes the
// happens-before edge between a player's consecutive owners). The parallel
// engine is therefore bit-identical to the serial loop.
//
// The pool is created lazily by the first parallel round and pinned to its
// Market. Close the Market (or let the finalizer run) to release the
// goroutines.
type workerPool struct {
	workers int
	jobs    chan *poolRound
	stop    sync.Once
}

// poolRound is one round's shared dispatch state.
type poolRound struct {
	m      *Market
	prices []float64
	cursor atomic.Int64
	wg     sync.WaitGroup
}

// newWorkerPool spawns the goroutines, each with a private bidScratch sized
// to the market's resource count.
func newWorkerPool(workers, resources int) *workerPool {
	p := &workerPool{workers: workers, jobs: make(chan *poolRound)}
	for k := 0; k < workers; k++ {
		go func() {
			s := newBidScratch(resources)
			for r := range p.jobs {
				n := int64(len(r.m.players))
				for {
					i := r.cursor.Add(1) - 1
					if i >= n {
						break
					}
					r.m.reoptimize(int(i), r.prices, s)
				}
				r.wg.Done()
			}
		}()
	}
	return p
}

// run executes one round and blocks until every player is re-optimised.
func (p *workerPool) run(m *Market, prices []float64) {
	r := &poolRound{m: m, prices: prices}
	r.wg.Add(p.workers)
	for k := 0; k < p.workers; k++ {
		p.jobs <- r
	}
	r.wg.Wait()
}

// close releases the worker goroutines. Safe to call more than once.
func (p *workerPool) close() {
	p.stop.Do(func() { close(p.jobs) })
}
