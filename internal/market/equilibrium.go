package market

import (
	"math"
)

// FindEquilibrium runs the iterative bidding–pricing process of §2.1:
//
//  1. every player re-optimises its bids against the others' last bids
//     (derived from the broadcast prices: yᵢⱼ = pⱼ·Cⱼ − bᵢⱼ);
//  2. the market re-prices (Equation 1);
//
// repeating until every price fluctuates by less than PriceTolerance
// between rounds, or MaxIterations is hit (the §6.4 fail-safe), in which
// case Converged is false and the last state is returned.
func (m *Market) FindEquilibrium() (*Equilibrium, error) {
	return m.FindEquilibriumFrom(nil)
}

// FindEquilibriumFrom is FindEquilibrium warm-started from an existing bid
// matrix — how ReBudget re-converges cheaply after a budget adjustment
// (§6.4). A nil start means the cold §4.1.2 equal split. Warm-start bids
// exceeding a player's (possibly reduced) budget are scaled down
// proportionally.
//
// Every run is budgeted: Config.MaxIterations bounds bidding–pricing
// rounds, Config.MaxBidSteps bounds total player re-optimisations, and
// Config.RoundHook may abort a round. A run that stops before prices
// settle returns a *NotConvergedError carrying the full partial state
// (utilities and lambdas included) instead of an equilibrium with a silent
// Converged flag; use Settle to accept best-effort state explicitly. A
// player utility producing NaN/Inf surfaces as a *UtilityError.
func (m *Market) FindEquilibriumFrom(initial [][]float64) (*Equilibrium, error) {
	n := len(m.players)
	mm := len(m.capacity)

	bids := make([][]float64, n)
	for i, p := range m.players {
		bids[i] = make([]float64, mm)
		if initial != nil && i < len(initial) && len(initial[i]) == mm {
			copy(bids[i], initial[i])
			spent := 0.0
			for _, b := range bids[i] {
				spent += b
			}
			if spent > p.Budget && spent > 0 {
				scale := p.Budget / spent
				for j := range bids[i] {
					bids[i][j] *= scale
				}
			}
			continue
		}
		// Round zero: equal split of the budget (§4.1.2 step 1).
		for j := range bids[i] {
			bids[i][j] = p.Budget / float64(mm)
		}
	}
	prices := m.prices(bids)

	iterations := 0
	steps := 0
	converged := false
	stopReason := "iteration budget exhausted"
	for iterations < m.cfg.MaxIterations {
		if m.cfg.RoundHook != nil && !m.cfg.RoundHook(iterations+1) {
			stopReason = "aborted by round hook"
			break
		}
		if m.cfg.MaxBidSteps > 0 && steps+n > m.cfg.MaxBidSteps {
			stopReason = "bid-step budget exhausted"
			break
		}
		iterations++
		steps += n
		next := make([][]float64, n)
		for i, p := range m.players {
			others := make([]float64, mm)
			for j := range others {
				y := prices[j]*m.capacity[j] - bids[i][j]
				if y < 0 {
					y = 0
				}
				others[j] = y
			}
			var nb []float64
			if m.cfg.Optimizer == GreedyExact {
				nb = optimizeBidsGreedy(p.Utility, p.Budget, others, m.capacity, m.cfg.GreedyQuanta)
			} else {
				nb = optimizeBids(p.Utility, p.Budget, others, m.capacity, m.cfg)
			}
			if d := m.cfg.Damping; d > 0 {
				for j := range nb {
					nb[j] = d*bids[i][j] + (1-d)*nb[j]
				}
			}
			next[i] = nb
		}
		newPrices := m.prices(next)
		stable := true
		for j := range newPrices {
			ref := math.Max(prices[j], newPrices[j])
			if ref == 0 {
				continue
			}
			if math.Abs(newPrices[j]-prices[j]) > m.cfg.PriceTolerance*ref {
				stable = false
				break
			}
		}
		bids, prices = next, newPrices
		if stable {
			converged = true
			break
		}
	}

	allocs := m.allocate(bids, prices)
	eq := &Equilibrium{
		Prices:      prices,
		Bids:        bids,
		Allocations: allocs,
		Utilities:   make([]float64, n),
		Lambdas:     make([]float64, n),
		Iterations:  iterations,
		Converged:   converged,
	}
	for i, p := range m.players {
		u := p.Utility.Value(allocs[i])
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, &UtilityError{Player: i, Name: p.Name, Value: u, Context: "utility"}
		}
		eq.Utilities[i] = u
		others := make([]float64, mm)
		for j := range others {
			y := prices[j]*m.capacity[j] - bids[i][j]
			if y < 0 {
				y = 0
			}
			others[j] = y
		}
		l := lambdaOf(p.Utility, bids[i], others, m.capacity, p.Budget)
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, &UtilityError{Player: i, Name: p.Name, Value: l, Context: "lambda"}
		}
		eq.Lambdas[i] = l
	}
	if !converged {
		return nil, &NotConvergedError{Partial: eq, Reason: stopReason}
	}
	return eq, nil
}
