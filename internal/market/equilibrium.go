package market

import (
	"math"
	"time"
)

// FindEquilibrium runs the iterative bidding–pricing process of §2.1:
//
//  1. every player re-optimises its bids against the others' last bids
//     (derived from the broadcast prices: yᵢⱼ = pⱼ·Cⱼ − bᵢⱼ);
//  2. the market re-prices (Equation 1);
//
// repeating until every price fluctuates by less than PriceTolerance
// between rounds, or MaxIterations is hit (the §6.4 fail-safe), in which
// case Converged is false and the last state is returned.
func (m *Market) FindEquilibrium() (*Equilibrium, error) {
	return m.FindEquilibriumFrom(nil)
}

// FindEquilibriumFrom is FindEquilibrium warm-started from an existing bid
// matrix — how ReBudget re-converges cheaply after a budget adjustment
// (§6.4). A nil start means the cold §4.1.2 equal split. Warm-start bids
// are renormalised to the player's current budget in both directions:
// scaled down when the budget shrank, scaled up when it grew (a player
// whose budget was raised would otherwise keep bidding its old, smaller
// total and never spend the increase). A player with positive budget but
// all-zero warm bids falls back to the cold equal split.
//
// Every run is budgeted: Config.MaxIterations bounds bidding–pricing
// rounds, Config.MaxBidSteps bounds total player re-optimisations, and
// Config.RoundHook may abort a round. A run that stops before prices
// settle returns a *NotConvergedError carrying the full partial state
// (utilities and lambdas included) instead of an equilibrium with a silent
// Converged flag; use Settle to accept best-effort state explicitly. A
// player utility producing NaN/Inf surfaces as a *UtilityError.
//
// The search reuses the Market's internal buffers (see Market), so calls on
// one Market must not overlap; the returned Equilibrium is freshly
// allocated and independent of later runs. Rounds execute on the worker
// pool per Config.Workers, with results bit-identical to the serial loop.
func (m *Market) FindEquilibriumFrom(initial [][]float64) (*Equilibrium, error) {
	var start time.Time
	if m.cfg.Observer != nil {
		start = time.Now()
	}
	n := len(m.players)
	mm := len(m.capacity)

	m.ensureScratch()
	for i, p := range m.players {
		row := m.curBids[i]
		if initial != nil && i < len(initial) && len(initial[i]) == mm {
			copy(row, initial[i])
			spent := 0.0
			for _, b := range row {
				spent += b
			}
			switch {
			case spent > p.Budget && spent > 0:
				scale := p.Budget / spent
				for j := range row {
					row[j] *= scale
				}
			case spent <= 0 && p.Budget > 0:
				// Nothing to scale: restart this player from the cold
				// equal split so a raised budget is actually spent.
				for j := range row {
					row[j] = p.Budget / float64(mm)
				}
			case spent < p.Budget*(1-1e-9):
				// Budget increased since the warm bids were formed: scale
				// up so the player enters the market at full strength. The
				// relative tolerance leaves budgets that merely accumulated
				// float drift (spent ≈ budget) untouched, keeping unchanged
				// runs bit-identical.
				scale := p.Budget / spent
				for j := range row {
					row[j] *= scale
				}
			}
			continue
		}
		// Round zero: equal split of the budget (§4.1.2 step 1).
		for j := range row {
			row[j] = p.Budget / float64(mm)
		}
	}
	prices := m.pricesInto(m.curBids, m.priceA)
	nextPrices := m.priceB

	iterations := 0
	steps := 0
	converged := false
	stopReason := "iteration budget exhausted"
	for iterations < m.cfg.MaxIterations {
		if m.cfg.RoundHook != nil && !m.cfg.RoundHook(iterations+1) {
			stopReason = "aborted by round hook"
			break
		}
		if m.cfg.MaxBidSteps > 0 && steps+n > m.cfg.MaxBidSteps {
			stopReason = "bid-step budget exhausted"
			break
		}
		iterations++
		steps += n
		m.runRound(prices)
		newPrices := m.pricesInto(m.nxtBids, nextPrices)
		stable := true
		for j := range newPrices {
			ref := math.Max(prices[j], newPrices[j])
			if ref == 0 {
				continue
			}
			if math.Abs(newPrices[j]-prices[j]) > m.cfg.PriceTolerance*ref {
				stable = false
				break
			}
		}
		m.curBids, m.nxtBids = m.nxtBids, m.curBids
		prices, nextPrices = newPrices, prices
		if stable {
			converged = true
			break
		}
	}
	if m.cfg.Observer != nil {
		m.cfg.Observer(iterations, steps, time.Since(start))
	}

	bids := make([][]float64, n)
	for i := range bids {
		bids[i] = append([]float64(nil), m.curBids[i]...)
	}
	finalPrices := append([]float64(nil), prices...)
	allocs := m.allocate(bids, finalPrices)
	eq := &Equilibrium{
		Prices:      finalPrices,
		Bids:        bids,
		Allocations: allocs,
		Utilities:   make([]float64, n),
		Lambdas:     make([]float64, n),
		Iterations:  iterations,
		Converged:   converged,
	}
	for i, p := range m.players {
		u := p.Utility.Value(allocs[i])
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, &UtilityError{Player: i, Name: p.Name, Value: u, Context: "utility"}
		}
		eq.Utilities[i] = u
		others := m.scratch.others
		for j := range others {
			y := finalPrices[j]*m.capacity[j] - bids[i][j]
			if y < 0 {
				y = 0
			}
			others[j] = y
		}
		l := lambdaOf(p.Utility, bids[i], others, m.capacity, p.Budget, m.scratch)
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, &UtilityError{Player: i, Name: p.Name, Value: l, Context: "lambda"}
		}
		eq.Lambdas[i] = l
	}
	if !converged {
		return nil, &NotConvergedError{Partial: eq, Reason: stopReason}
	}
	return eq, nil
}
