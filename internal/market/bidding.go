package market

import "math"

// bidOptimizer implements the player-local hill climb of §4.1.2: starting
// from an equal split of the budget, repeatedly move an amount S of money
// from the resource with the lowest marginal utility λᵢⱼ to the one with the
// highest, halving S each round, until the marginal utilities agree within
// LambdaTolerance or S falls below MinShiftFraction of the budget.
//
// The player predicts its allocation with Equation 2, holding the other
// players' aggregate bids yᵢⱼ fixed.
//
// Every function takes a *bidScratch of reusable work buffers and an `out`
// slice for its result, so the equilibrium hot loop performs no heap
// allocation. Passing nil for either falls back to fresh allocations — the
// convenient form for tests and one-off callers. Buffer reuse never changes
// results: each buffer is fully overwritten before it is read.

// bidScratch holds one worker's reusable buffers, all sized to the resource
// count M. A scratch is owned by exactly one goroutine at a time (in the
// parallel engine, one pool worker); sharing one across concurrent calls is
// a data race.
type bidScratch struct {
	others  []float64 // aggregate other-player bids yᵢⱼ
	probe   []float64 // finite-difference probe bid vector
	alloc   []float64 // predicted allocation at the base bids
	allocB  []float64 // predicted allocation at the probe bids
	lambdas []float64 // per-resource marginal utilities
}

func newBidScratch(resources int) *bidScratch {
	return &bidScratch{
		others:  make([]float64, resources),
		probe:   make([]float64, resources),
		alloc:   make([]float64, resources),
		allocB:  make([]float64, resources),
		lambdas: make([]float64, resources),
	}
}

// predictedAlloc evaluates rᵢⱼ = bⱼ/(bⱼ+yⱼ)·Cⱼ for a full bid vector.
func predictedAlloc(bids, others, capacity []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(capacity))
	}
	for j := range capacity {
		denom := bids[j] + others[j]
		if denom <= 0 {
			// Nobody (including us) bids: a vanishing bid would still
			// capture the whole resource, but with a zero bid we get none.
			out[j] = 0
			continue
		}
		out[j] = bids[j] / denom * capacity[j]
	}
	return out
}

// marginalUtilities computes λᵢⱼ = ∂Uᵢ/∂bᵢⱼ by forward finite differences
// on the predicted allocation. The result lives in s.lambdas and is valid
// until the next call on the same scratch.
func marginalUtilities(u Utility, bids, others, capacity []float64, eps float64, s *bidScratch) []float64 {
	if s == nil {
		s = newBidScratch(len(capacity))
	}
	lambdas := s.lambdas
	base := u.Value(predictedAlloc(bids, others, capacity, s.alloc))
	probe := s.probe
	copy(probe, bids)
	for j := range capacity {
		probe[j] = bids[j] + eps
		pa := predictedAlloc(probe, others, capacity, s.allocB)
		lambdas[j] = (u.Value(pa) - base) / eps
		probe[j] = bids[j]
	}
	return lambdas
}

// optimizeBids returns the player's (approximately) utility-maximising bid
// vector subject to Σⱼ bⱼ ≤ B, given the other players' aggregate bids.
// The result is written into out (allocated when nil).
func optimizeBids(u Utility, budget float64, others, capacity []float64, cfg Config, s *bidScratch, out []float64) []float64 {
	m := len(capacity)
	if out == nil {
		out = make([]float64, m)
	}
	bids := out
	for j := range bids {
		bids[j] = 0
	}
	if budget <= 0 {
		return bids
	}
	if m == 1 {
		bids[0] = budget
		return bids
	}
	if s == nil {
		s = newBidScratch(m)
	}
	for j := range bids {
		bids[j] = budget / float64(m)
	}
	shift := bids[0] / 2
	minShift := cfg.MinShiftFraction * budget
	eps := math.Max(budget*1e-4, 1e-9)
	for shift >= minShift {
		lambdas := marginalUtilities(u, bids, others, capacity, eps, s)
		lo, hi := 0, 0
		for j := 1; j < m; j++ {
			// Money can only leave resources that still have some.
			if bids[j] > 0 && (bids[lo] == 0 || lambdas[j] < lambdas[lo]) {
				lo = j
			}
			if lambdas[j] > lambdas[hi] {
				hi = j
			}
		}
		if lo == hi {
			break
		}
		span := lambdas[hi] - lambdas[lo]
		scale := math.Max(math.Abs(lambdas[hi]), math.Abs(lambdas[lo]))
		if scale == 0 || span <= cfg.LambdaTolerance*scale {
			break // marginal utilities equalised (condition (a) of §4.1.2)
		}
		move := math.Min(shift, bids[lo])
		bids[lo] -= move
		bids[hi] += move
		shift /= 2
	}
	return bids
}

// optimizeBidsGreedy is the reference bid optimiser: the budget is split
// into quanta and each quantum goes to the resource with the highest
// marginal utility at the current bids. For concave utilities this
// water-filling is (quantisation aside) exact, making it the yardstick the
// §4.1.2 exponential hill climb is validated against (see the bid-optimizer
// ablation). It costs quanta × M utility evaluations versus the hill
// climb's ~log₂(1/MinShiftFraction) × M.
func optimizeBidsGreedy(u Utility, budget float64, others, capacity []float64, quanta int, s *bidScratch, out []float64) []float64 {
	m := len(capacity)
	if out == nil {
		out = make([]float64, m)
	}
	bids := out
	for j := range bids {
		bids[j] = 0
	}
	if budget <= 0 {
		return bids
	}
	if m == 1 {
		bids[0] = budget
		return bids
	}
	if s == nil {
		s = newBidScratch(m)
	}
	if quanta < 1 {
		quanta = 1
	}
	q := budget / float64(quanta)
	probe, allocA, allocB := s.probe, s.alloc, s.allocB
	for k := 0; k < quanta; k++ {
		base := u.Value(predictedAlloc(bids, others, capacity, allocA))
		best, bestGain := 0, math.Inf(-1)
		copy(probe, bids)
		for j := 0; j < m; j++ {
			probe[j] = bids[j] + q
			gain := u.Value(predictedAlloc(probe, others, capacity, allocB)) - base
			probe[j] = bids[j]
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		bids[best] += q
	}
	return bids
}

// lambdaOf reports the player's marginal utility of money λᵢ at its current
// bids: the maximum λᵢⱼ over resources (Equation 4 makes all non-zero-bid
// resources share this value at a local optimum; taking the maximum is
// robust to hill-climb truncation error).
func lambdaOf(u Utility, bids, others, capacity []float64, budget float64, s *bidScratch) float64 {
	eps := math.Max(budget*1e-4, 1e-9)
	lambdas := marginalUtilities(u, bids, others, capacity, eps, s)
	max := 0.0
	for _, l := range lambdas {
		if l > max {
			max = l
		}
	}
	return max
}
