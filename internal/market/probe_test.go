package market

import (
	"testing"

	"rebudget/internal/app"
)

// TestProbeOptimizeBidsOnAppUtility diagnoses the player-local hill climb
// on a real application utility (verbose diagnostics under -v).
func TestProbeOptimizeBidsOnAppUtility(t *testing.T) {
	for _, name := range []string{"swim", "mcf", "hmmer"} {
		spec, err := app.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		m := app.NewModel(spec)
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			t.Fatal(err)
		}
		u, err := app.NewUtility(m, curve)
		if err != nil {
			t.Fatal(err)
		}
		capacity := []float64{24, 73.8}
		others := []float64{350, 350}
		cfg := DefaultConfig()
		start := []float64{50, 50}
		lams := marginalUtilities(u, start, others, capacity, 0.01, nil)
		t.Logf("%s: λ at equal bids = %v", name, lams)
		bids := optimizeBids(u, 100, others, capacity, cfg, nil, nil)
		t.Logf("%s: optimized bids = %v", name, bids)
	}
}

// TestProbeEquilibriumOnAppUtilities traces the full bidding–pricing loop
// on the Figure 3 application set.
func TestProbeEquilibriumOnAppUtilities(t *testing.T) {
	names := []string{"apsi", "apsi", "swim", "swim", "mcf", "mcf", "hmmer", "sixtrack"}
	var players []*Player
	for _, n := range names {
		spec, err := app.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		m := app.NewModel(spec)
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			t.Fatal(err)
		}
		u, err := app.NewUtility(m, curve)
		if err != nil {
			t.Fatal(err)
		}
		players = append(players, &Player{Name: n, Utility: u, Budget: 100})
	}
	mkt, err := New([]float64{24, 73.8}, players, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := mkt.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("iterations=%d converged=%v prices=%v", eq.Iterations, eq.Converged, eq.Prices)
	for i, n := range names {
		t.Logf("%-10s bids=%v alloc=%v u=%.3f λ=%.5f",
			n, eq.Bids[i], eq.Allocations[i], eq.Utilities[i], eq.Lambdas[i])
	}
}
