package market

import (
	"errors"
	"fmt"
)

// NotConvergedError reports that an equilibrium run stopped before prices
// settled within tolerance — the iteration fail-safe tripped (§6.4), the
// per-run bid-step budget ran out, or a round hook aborted the search.
// Partial always carries the complete last state (prices, bids,
// allocations, utilities, lambdas), so callers can degrade gracefully —
// install the best-effort equilibrium, fall back, or retry — instead of
// learning about the problem from a silently false Converged flag.
type NotConvergedError struct {
	// Partial is the full equilibrium state at the point the search
	// stopped; Partial.Converged is always false.
	Partial *Equilibrium
	// Reason says which budget stopped the run.
	Reason string
}

// Error implements error.
func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("market: equilibrium not converged after %d iterations (%s)",
		e.Partial.Iterations, e.Reason)
}

// UtilityError reports a player utility that produced a non-finite value
// (NaN/Inf) during an equilibrium run — a corrupted monitor reading or a
// broken utility model. It is typed so hardened callers can classify the
// failure and sanitize or fall back rather than abort.
type UtilityError struct {
	Player  int
	Name    string
	Value   float64
	Context string // where the bad value surfaced ("utility", "lambda")
}

// Error implements error.
func (e *UtilityError) Error() string {
	return fmt.Sprintf("market: player %d (%s) %s is %v at its allocation",
		e.Player, e.Name, e.Context, e.Value)
}

// Settle unwraps a NotConvergedError into its partial equilibrium: callers
// that accept best-effort equilibria (the paper installs the fail-safe
// state and moves on, §6.4) get the pre-typed-error behaviour back, but now
// as an explicit policy choice at the call site. Any other error passes
// through unchanged.
func Settle(eq *Equilibrium, err error) (*Equilibrium, error) {
	var nc *NotConvergedError
	if errors.As(err, &nc) {
		return nc.Partial, nil
	}
	return eq, err
}
