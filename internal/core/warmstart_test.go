package core

import (
	"reflect"
	"testing"
)

// allocationsEqual does exact (bit-level) float comparison.
func allocationsEqual(a, b [][]float64) bool {
	return reflect.DeepEqual(a, b)
}

func TestWithWarmBidsNilIsColdStart(t *testing.T) {
	players := heterogeneousPlayers()
	cold, err := EqualBudget{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	warmed := WithWarmBids(EqualBudget{}, nil)
	out, err := warmed.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if !allocationsEqual(cold.Allocations, out.Allocations) {
		t.Fatalf("nil warm bids changed the solve:\ncold %v\nwarm %v",
			cold.Allocations, out.Allocations)
	}
	if cold.Iterations != out.Iterations {
		t.Fatalf("nil warm bids changed iteration count: %d vs %d", cold.Iterations, out.Iterations)
	}
}

func TestWithWarmBidsReconvergesToFixedPoint(t *testing.T) {
	players := heterogeneousPlayers()
	first, err := EqualBudget{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if first.Bids == nil {
		t.Fatal("market outcome carries no final bids")
	}
	warmed := WithWarmBids(EqualBudget{}, first.Bids)
	second, err := warmed.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	// Re-solving an unchanged market from its own equilibrium bids must
	// reproduce the allocation exactly and converge at least as fast.
	if !allocationsEqual(first.Allocations, second.Allocations) {
		t.Fatalf("warm re-solve diverged:\nfirst  %v\nsecond %v",
			first.Allocations, second.Allocations)
	}
	if second.Iterations > first.Iterations {
		t.Fatalf("warm start took more rounds (%d) than cold (%d)",
			second.Iterations, first.Iterations)
	}
}

func TestWithWarmBidsThreadsThroughMechanisms(t *testing.T) {
	bids := [][]float64{{1, 2}, {3, 4}}
	if a := WithWarmBids(EqualBudget{}, bids).(EqualBudget); len(a.WarmBids) != 2 {
		t.Fatal("EqualBudget warm bids not installed")
	}
	if a := WithWarmBids(Balanced{}, bids).(Balanced); len(a.WarmBids) != 2 {
		t.Fatal("Balanced warm bids not installed")
	}
	if a := WithWarmBids(ReBudget{Step: 0.05}, bids).(ReBudget); len(a.WarmBids) != 2 {
		t.Fatal("ReBudget warm bids not installed")
	}
	// Non-market mechanisms pass through untouched.
	if _, ok := WithWarmBids(EqualShare{}, bids).(EqualShare); !ok {
		t.Fatal("EqualShare should pass through WithWarmBids unchanged")
	}
}

func TestWithWarmBidsOnResilientInstallsInPlace(t *testing.T) {
	players := heterogeneousPlayers()
	r := NewResilient(EqualBudget{}, ResilientConfig{})
	first, err := r.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	got := WithWarmBids(r, first.Bids)
	if got != Allocator(r) {
		t.Fatal("WithWarmBids on *Resilient should return the same wrapper")
	}
	second, err := r.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if !allocationsEqual(first.Allocations, second.Allocations) {
		t.Fatal("warm re-solve through Resilient diverged")
	}
	if second.Iterations > first.Iterations {
		t.Fatalf("warm start through Resilient took more rounds (%d) than cold (%d)",
			second.Iterations, first.Iterations)
	}
}

func TestOutcomeBidsAreACopy(t *testing.T) {
	players := heterogeneousPlayers()
	out, err := EqualBudget{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	mutated := out.Bids[0][0]
	out.Bids[0][0] = mutated + 1e9
	again, err := EqualBudget{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if again.Bids[0][0] != mutated {
		t.Fatal("mutating a returned bid matrix leaked into later solves")
	}
}
