package core

import (
	"fmt"
	"math"
	"sync"

	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/numeric"
)

// ResilientConfig tunes the Resilient wrapper. Zero values select the
// defaults documented on each field.
type ResilientConfig struct {
	// Fallback is the terminal mechanism of the chain (default EqualShare).
	// It runs on sanitized utilities, so it cannot be poisoned by the same
	// bad input that felled the inner mechanism.
	Fallback Allocator
	// Threshold is the number of consecutive inner failures before the
	// wrapper backs off and serves degraded outcomes without probing the
	// inner mechanism (default 3).
	Threshold int
	// CooldownCalls is the base number of Allocate calls spent backing
	// off before the inner mechanism is probed again (default 4). The
	// actual cooldown adds a deterministic jitter of up to CooldownCalls
	// extra calls so that fleets of wrappers sharing a failing dependency
	// do not re-probe in lockstep.
	CooldownCalls int
	// Seed drives the cooldown jitter (default 1).
	Seed uint64
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.Fallback == nil {
		c.Fallback = EqualShare{}
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.CooldownCalls <= 0 {
		c.CooldownCalls = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ResilientStats counts what the fallback chain had to do.
type ResilientStats struct {
	Calls               int // Allocate invocations
	InnerFailures       int // inner mechanism errors or non-finite outcomes
	SanitizedRecoveries int // retries that succeeded on sanitized utilities
	LastGoodServed      int // calls answered with the last good outcome
	FallbackServed      int // calls answered by the Fallback mechanism
	Backoffs            int // times the wrapper entered cooldown
}

// Resilient hardens any allocation mechanism with a graceful-degradation
// fallback chain. Each Allocate call walks:
//
//  1. the inner mechanism on the raw inputs;
//  2. one retry with sanitized utilities (non-finite and negative values
//     clamped), the cheap repair for transiently corrupted monitors;
//  3. the last good outcome this wrapper produced for the same problem
//     shape (player count and capacities);
//  4. the Fallback mechanism (EqualShare by default) on sanitized inputs.
//
// After Threshold consecutive inner failures the wrapper backs off: it
// serves steps 3–4 directly for a jittered CooldownCalls window before
// probing the inner mechanism again, bounding how much latency a
// persistently failing solver can add to the allocation path. A Resilient
// whose inner mechanism never fails is byte-transparent: outcomes pass
// through unmodified.
type Resilient struct {
	inner Allocator
	cfg   ResilientConfig
	rng   *numeric.Rand

	mu           sync.Mutex
	consecFails  int
	cooldownLeft int
	recovering   bool // the next probe follows a cooldown; fail fast on error
	lastGood     *Outcome
	lastCapacity []float64
	lastPlayers  int
	stats        ResilientStats
}

// NewResilient wraps inner with the graceful-degradation chain.
func NewResilient(inner Allocator, cfg ResilientConfig) *Resilient {
	cfg = cfg.withDefaults()
	return &Resilient{inner: inner, cfg: cfg, rng: numeric.NewRand(cfg.Seed)}
}

// Name implements Allocator.
func (r *Resilient) Name() string { return r.inner.Name() }

// WithRoundHook implements RoundHooker: the hook is threaded through to the
// wrapped mechanism in place, so handles to this wrapper (and its stats)
// stay valid.
func (r *Resilient) WithRoundHook(hook func(iteration int) bool) Allocator {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner = WithRoundHook(r.inner, hook)
	return r
}

// WithMarketConfig implements MarketConfigurer; like WithRoundHook, the
// transform is applied to the wrapped mechanism in place.
func (r *Resilient) WithMarketConfig(apply func(market.Config) market.Config) Allocator {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner = WithMarketConfig(r.inner, apply)
	return r
}

// WithWarmBids implements WarmStarter; like WithRoundHook, the bids are
// installed on the wrapped mechanism in place. Long-lived owners call this
// once per epoch with the previous outcome's Bids.
func (r *Resilient) WithWarmBids(bids [][]float64) Allocator {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner = WithWarmBids(r.inner, bids)
	return r
}

// HealthState maps the wrapper's backoff position onto the pipeline health
// taxonomy: Degraded while a cooldown is being served without probing the
// inner mechanism, Recovering on the probe right after a cooldown, Healthy
// otherwise. The serving layer exports it per session through /metrics.
func (r *Resilient) HealthState() metrics.HealthState {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.cooldownLeft > 0:
		return metrics.Degraded
	case r.recovering:
		return metrics.Recovering
	default:
		return metrics.Healthy
	}
}

// Stats returns a snapshot of the fallback-chain counters.
func (r *Resilient) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Allocate implements Allocator. It never returns NaN allocations; it
// errors only when every link of the chain fails (which requires the
// fallback mechanism itself to reject the inputs).
func (r *Resilient) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Calls++

	if r.cooldownLeft > 0 {
		r.cooldownLeft--
		if r.cooldownLeft == 0 {
			r.recovering = true
		}
		return r.degraded(capacity, players)
	}

	out, err := r.inner.Allocate(capacity, players)
	if err == nil {
		if err = checkFinite(out); err == nil {
			r.recordGood(out, capacity, len(players))
			return out, nil
		}
	}
	r.stats.InnerFailures++

	// Retry once on sanitized utilities: if the failure came from a
	// transiently corrupted reading, clamping non-finite values is enough
	// to get a real (if slightly conservative) decision this interval.
	out, err = r.inner.Allocate(capacity, sanitizePlayers(players))
	if err == nil {
		if err = checkFinite(out); err == nil {
			r.stats.SanitizedRecoveries++
			r.recordGood(out, capacity, len(players))
			return out, nil
		}
	}

	r.consecFails++
	if r.recovering || r.consecFails >= r.cfg.Threshold {
		// A probe straight after cooldown failing again re-enters backoff
		// immediately: one failure is evidence enough mid-recovery.
		r.stats.Backoffs++
		r.consecFails = 0
		r.recovering = false
		// Jittered backoff: cooldown + [0, cooldown) extra calls.
		r.cooldownLeft = r.cfg.CooldownCalls + int(r.rng.Uint64()%uint64(r.cfg.CooldownCalls))
	}
	return r.degraded(capacity, players)
}

// recordGood stores a defensive copy of the outcome for the last-known-good
// fallback and resets the failure streak.
func (r *Resilient) recordGood(out *Outcome, capacity []float64, players int) {
	r.consecFails = 0
	r.recovering = false
	r.lastGood = cloneOutcome(out)
	r.lastCapacity = append([]float64(nil), capacity...)
	r.lastPlayers = players
}

// degraded serves the tail of the chain: last good outcome if the problem
// shape matches, otherwise the fallback mechanism on sanitized inputs.
func (r *Resilient) degraded(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	if r.lastGood != nil && r.lastPlayers == len(players) && sameCapacity(r.lastCapacity, capacity) {
		r.stats.LastGoodServed++
		return cloneOutcome(r.lastGood), nil
	}
	out, err := r.cfg.Fallback.Allocate(capacity, sanitizePlayers(players))
	if err != nil {
		return nil, fmt.Errorf("core: resilient fallback chain exhausted: %w", err)
	}
	r.stats.FallbackServed++
	return out, nil
}

func sameCapacity(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkFinite rejects outcomes carrying NaN/Inf allocations or budgets so
// they can never be installed on hardware or cached as last-good.
func checkFinite(out *Outcome) error {
	for i, row := range out.Allocations {
		for j, a := range row {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("core: %w: non-finite allocation %v for player %d resource %d",
					ErrBadInput, a, i, j)
			}
		}
	}
	for i, b := range out.Budgets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("core: %w: non-finite budget %v for player %d", ErrBadInput, b, i)
		}
	}
	return nil
}

func cloneOutcome(out *Outcome) *Outcome {
	cp := *out
	cp.Allocations = make([][]float64, len(out.Allocations))
	for i, row := range out.Allocations {
		cp.Allocations[i] = append([]float64(nil), row...)
	}
	cp.Utilities = append([]float64(nil), out.Utilities...)
	cp.Budgets = append([]float64(nil), out.Budgets...)
	cp.Lambdas = append([]float64(nil), out.Lambdas...)
	if out.Bids != nil {
		cp.Bids = make([][]float64, len(out.Bids))
		for i, row := range out.Bids {
			cp.Bids[i] = append([]float64(nil), row...)
		}
	}
	return &cp
}

// sanitizedUtility clamps a misbehaving utility into the finite,
// non-negative range the market theory assumes. It deliberately does not
// try to be clever: a corrupted reading becomes "worthless" rather than
// "infinitely valuable", which biases degraded allocations toward the
// players whose monitors still work.
type sanitizedUtility struct {
	inner market.Utility
}

// Value implements market.Utility.
func (s sanitizedUtility) Value(alloc []float64) float64 {
	v := s.inner.Value(alloc)
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// sanitizePlayers wraps every player's utility with the non-finite clamp.
// Specs are copied; the caller's slice is never mutated.
func sanitizePlayers(players []PlayerSpec) []PlayerSpec {
	out := make([]PlayerSpec, len(players))
	for i, p := range players {
		out[i] = p
		out[i].Utility = sanitizedUtility{inner: p.Utility}
	}
	return out
}
