package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"rebudget/internal/market"
)

// flakyAllocator fails (or returns poisoned outcomes) according to a
// script, then delegates to EqualShare.
type flakyAllocator struct {
	script []error // nil entry = success; consumed per call
	calls  int
	poison bool // return NaN allocations instead of an error
}

func (f *flakyAllocator) Name() string { return "flaky" }

func (f *flakyAllocator) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	i := f.calls
	f.calls++
	if i < len(f.script) && f.script[i] != nil {
		if f.poison {
			out, err := EqualShare{}.Allocate(capacity, players)
			if err != nil {
				return nil, err
			}
			out.Allocations[0][0] = math.NaN()
			return out, nil
		}
		return nil, f.script[i]
	}
	return EqualShare{}.Allocate(capacity, players)
}

func failN(n int) []error {
	errs := make([]error, n)
	for i := range errs {
		errs[i] = fmt.Errorf("boom %d", i)
	}
	return errs
}

func TestResilientTransparentWhenHealthy(t *testing.T) {
	players := heterogeneousPlayers()
	want, err := EqualShare{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResilient(EqualShare{}, ResilientConfig{})
	got, err := r.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Allocations {
		for j := range want.Allocations[i] {
			if got.Allocations[i][j] != want.Allocations[i][j] {
				t.Fatalf("healthy wrapper altered allocation [%d][%d]", i, j)
			}
		}
	}
	s := r.Stats()
	if s.InnerFailures != 0 || s.FallbackServed != 0 || s.LastGoodServed != 0 {
		t.Errorf("healthy wrapper recorded degradations: %+v", s)
	}
	if r.Name() != "EqualShare" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestResilientServesLastGoodThenFallback(t *testing.T) {
	players := heterogeneousPlayers()
	// Each failing Allocate consumes two inner calls (raw + sanitized retry).
	inner := &flakyAllocator{script: append([]error{nil}, failN(4)...)}
	r := NewResilient(inner, ResilientConfig{Threshold: 5})
	if _, err := r.Allocate(testCapacity, players); err != nil {
		t.Fatal(err)
	}
	// Failures with a cached outcome for the same shape → last good.
	for k := 0; k < 2; k++ {
		out, err := r.Allocate(testCapacity, players)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			t.Fatal("nil outcome from degraded path")
		}
	}
	if got := r.Stats().LastGoodServed; got != 2 {
		t.Errorf("LastGoodServed = %d, want 2", got)
	}

	// A different problem shape invalidates the cache → fallback mechanism.
	inner2 := &flakyAllocator{script: failN(8)}
	r2 := NewResilient(inner2, ResilientConfig{Threshold: 100})
	out, err := r2.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mechanism != "EqualShare" {
		t.Errorf("fallback mechanism = %q, want EqualShare", out.Mechanism)
	}
	if got := r2.Stats().FallbackServed; got != 1 {
		t.Errorf("FallbackServed = %d, want 1", got)
	}
}

func TestResilientBackoffAndRecovery(t *testing.T) {
	players := heterogeneousPlayers()
	// Fails 3× at the wrapper level (threshold) then recovers; each failed
	// call burns a raw attempt plus a sanitized retry.
	inner := &flakyAllocator{script: failN(6)}
	cfg := ResilientConfig{Threshold: 3, CooldownCalls: 2, Seed: 1}
	r := NewResilient(inner, cfg)
	// Three failures: the wrapper should enter backoff on the third.
	for k := 0; k < 3; k++ {
		if _, err := r.Allocate(testCapacity, players); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Backoffs != 1 {
		t.Fatalf("Backoffs = %d, want 1", s.Backoffs)
	}
	innerCallsAtBackoff := inner.calls
	// During cooldown the inner mechanism must not be probed.
	cooldown := 0
	for r.cooldownLeft > 0 {
		if _, err := r.Allocate(testCapacity, players); err != nil {
			t.Fatal(err)
		}
		cooldown++
		if cooldown > 2*cfg.CooldownCalls+1 {
			t.Fatal("cooldown never expired")
		}
	}
	if inner.calls != innerCallsAtBackoff {
		t.Errorf("inner probed %d times during cooldown", inner.calls-innerCallsAtBackoff)
	}
	// Next call probes again and succeeds.
	if _, err := r.Allocate(testCapacity, players); err != nil {
		t.Fatal(err)
	}
	if inner.calls != innerCallsAtBackoff+1 {
		// one raw probe; the scripted failures are exhausted so it succeeds
		// on the first try (no sanitized retry).
		t.Errorf("inner calls after recovery = %d, want %d", inner.calls, innerCallsAtBackoff+1)
	}
	if got := r.Stats().Backoffs; got != 1 {
		t.Errorf("recovered wrapper backed off again: %d", got)
	}
}

func TestResilientFailedProbeReentersBackoffImmediately(t *testing.T) {
	players := heterogeneousPlayers()
	inner := &flakyAllocator{script: failN(50)}
	r := NewResilient(inner, ResilientConfig{Threshold: 3, CooldownCalls: 2, Seed: 1})
	for k := 0; k < 3; k++ {
		if _, err := r.Allocate(testCapacity, players); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats().Backoffs != 1 {
		t.Fatal("did not enter backoff after threshold failures")
	}
	// Drain the cooldown, then fail the recovery probe: backoff must
	// resume after ONE failure, not another full threshold streak.
	for r.cooldownLeft > 0 {
		if _, err := r.Allocate(testCapacity, players); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Allocate(testCapacity, players); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Backoffs; got != 2 {
		t.Errorf("Backoffs after failed recovery probe = %d, want 2", got)
	}
}

func TestResilientRejectsNonFiniteOutcomes(t *testing.T) {
	players := heterogeneousPlayers()
	inner := &flakyAllocator{script: failN(1), poison: true}
	r := NewResilient(inner, ResilientConfig{})
	out, err := r.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Allocations {
		for j, a := range out.Allocations[i] {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Fatalf("non-finite allocation [%d][%d] leaked through", i, j)
			}
		}
	}
	if r.Stats().InnerFailures != 1 {
		t.Errorf("poisoned outcome not counted as inner failure: %+v", r.Stats())
	}
}

func TestResilientSanitizedRetryRecovers(t *testing.T) {
	// An inner mechanism that fails only when it sees a non-finite utility:
	// the sanitized retry must succeed.
	players := heterogeneousPlayers()
	players[0].Utility = market.UtilityFunc(func(a []float64) float64 { return math.NaN() })
	inner := EqualBudget{}
	r := NewResilient(inner, ResilientConfig{})
	out, err := r.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range out.Budgets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatal("NaN budget leaked through sanitized retry")
		}
	}
	if got := r.Stats().SanitizedRecoveries; got != 1 {
		t.Errorf("SanitizedRecoveries = %d, want 1", got)
	}
}

func TestCheckFinite(t *testing.T) {
	ok := &Outcome{Allocations: [][]float64{{1, 2}}, Budgets: []float64{3}}
	if err := checkFinite(ok); err != nil {
		t.Errorf("finite outcome rejected: %v", err)
	}
	bad := &Outcome{Allocations: [][]float64{{1, math.Inf(1)}}}
	if err := checkFinite(bad); !errors.Is(err, ErrBadInput) {
		t.Errorf("Inf allocation error = %v, want ErrBadInput", err)
	}
	badB := &Outcome{Allocations: [][]float64{{1}}, Budgets: []float64{math.NaN()}}
	if err := checkFinite(badB); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN budget error = %v, want ErrBadInput", err)
	}
}
