// Package core implements the paper's contribution — the ReBudget runtime
// budget-reassignment algorithm (§4.2) — together with the competing
// mechanisms it is evaluated against (§6): EqualShare, XChange-EqualBudget,
// XChange-Balanced and the infeasible MaxEfficiency search.
package core

import (
	"errors"
	"fmt"
	"math"

	"rebudget/internal/market"
	"rebudget/internal/metrics"
)

// InitialBudget is every player's starting budget in the evaluation (§6).
const InitialBudget = 100.0

// PlayerSpec describes one allocation client.
type PlayerSpec struct {
	Name    string
	Utility market.Utility
	// MaxAlloc / MinAlloc are the per-player maximum and minimum
	// meaningful allocations (2 MB + 4.0 GHz vs 128 kB + 800 MHz in the
	// multicore instantiation). XChange-Balanced uses them to size
	// budgets; they default to the full capacity and zero respectively.
	MaxAlloc []float64
	MinAlloc []float64
	// BudgetWeight scales the budget this player receives from
	// budget-assigning mechanisms (EqualBudget, Balanced, ReBudget).
	// Zero means 1. A k-thread application coalition carries weight k so
	// that "equal budget" keeps meaning equal budget *per core* (§5).
	BudgetWeight float64
}

// weight returns the effective budget weight.
func (p PlayerSpec) weight() float64 {
	if p.BudgetWeight <= 0 {
		return 1
	}
	return p.BudgetWeight
}

// Outcome is the result of running an allocation mechanism.
type Outcome struct {
	Mechanism   string
	Allocations [][]float64 // player × resource
	Utilities   []float64
	Budgets     []float64 // nil for non-market mechanisms
	Lambdas     []float64 // nil for non-market mechanisms
	// Bids is the final equilibrium bid matrix (player × resource), nil
	// for non-market mechanisms. Long-lived callers feed it back through
	// WithWarmBids so the next epoch's equilibrium re-converges from the
	// previous one instead of the cold §4.1.2 equal split — how the
	// serving layer keeps steady-state epochs cheap.
	Bids [][]float64
	MUR  float64 // NaN when not applicable
	MBR  float64 // NaN when not applicable
	// Iterations counts bidding–pricing rounds summed over every
	// equilibrium run the mechanism performed; EquilibriumRuns counts the
	// runs themselves (ReBudget re-converges after each budget cut).
	Iterations      int
	EquilibriumRuns int
	Converged       bool
}

// Efficiency is the social welfare of the outcome (weighted speedup).
func (o *Outcome) Efficiency() float64 { return metrics.Efficiency(o.Utilities) }

// EnvyFreeness evaluates Definition 3 for the outcome against the players
// that produced it.
func (o *Outcome) EnvyFreeness(players []PlayerSpec) (float64, error) {
	return metrics.EnvyFreeness(len(players), func(i int, alloc []float64) float64 {
		return players[i].Utility.Value(alloc)
	}, o.Allocations)
}

// PoABound returns the Theorem 1 efficiency guarantee implied by the
// outcome's MUR, or NaN for non-market outcomes.
func (o *Outcome) PoABound() float64 {
	if math.IsNaN(o.MUR) {
		return math.NaN()
	}
	return metrics.PoALowerBound(o.MUR)
}

// EFBound returns the Theorem 2 fairness guarantee implied by the outcome's
// MBR, or NaN for non-market outcomes.
func (o *Outcome) EFBound() float64 {
	if math.IsNaN(o.MBR) {
		return math.NaN()
	}
	return metrics.EnvyFreenessBound(o.MBR)
}

// Allocator is a resource-allocation mechanism.
type Allocator interface {
	Name() string
	Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error)
}

// ErrBadInput marks allocation failures caused by invalid player input —
// a utility returning NaN/Inf mid-round, or the degenerate market state
// such a utility induces — rather than by the mechanism itself. Hardened
// callers test with errors.Is and sanitize or fall back; the mechanisms
// guarantee they return this typed error, never NaN budgets.
var ErrBadInput = errors.New("invalid player input")

// WithRoundHook returns a copy of alloc with the market-level round hook
// installed on mechanisms that run equilibria (ReBudget, EqualBudget,
// Balanced); any other mechanism passes through unchanged. The
// fault-injection framework uses it to stall equilibrium searches without
// the allocator types knowing about faults.
func WithRoundHook(a Allocator, hook func(iteration int) bool) Allocator {
	switch m := a.(type) {
	case ReBudget:
		m.Market.RoundHook = hook
		return m
	case EqualBudget:
		m.Market.RoundHook = hook
		return m
	case Balanced:
		m.Market.RoundHook = hook
		return m
	case RoundHooker:
		return m.WithRoundHook(hook)
	}
	return a
}

// RoundHooker is implemented by wrapper allocators (Resilient, telemetry
// shims) so WithRoundHook can thread the hook through to the mechanism they
// wrap.
type RoundHooker interface {
	WithRoundHook(hook func(iteration int) bool) Allocator
}

// WithMarketConfig returns a copy of alloc whose inner market configuration
// has been transformed by apply, on mechanisms that run equilibria; any
// other mechanism passes through unchanged. The simulator uses it to set
// the worker count and install profiling observers without the allocator
// types knowing about either.
func WithMarketConfig(a Allocator, apply func(market.Config) market.Config) Allocator {
	switch m := a.(type) {
	case ReBudget:
		m.Market = apply(m.Market)
		return m
	case EqualBudget:
		m.Market = apply(m.Market)
		return m
	case Balanced:
		m.Market = apply(m.Market)
		return m
	case MarketConfigurer:
		return m.WithMarketConfig(apply)
	}
	return a
}

// MarketConfigurer is the WithMarketConfig analogue of RoundHooker for
// wrapper allocators.
type MarketConfigurer interface {
	WithMarketConfig(apply func(market.Config) market.Config) Allocator
}

// WithWarmBids returns a copy of alloc whose first equilibrium run is
// warm-started from the given bid matrix (normally the Bids of the previous
// epoch's Outcome), on mechanisms that run equilibria; any other mechanism
// passes through unchanged. A nil matrix resets to the cold equal split.
// Rows that do not match the market shape are ignored per player, and bids
// are renormalised to the current budgets (see market.FindEquilibriumFrom),
// so stale matrices are safe, merely useless.
func WithWarmBids(a Allocator, bids [][]float64) Allocator {
	switch m := a.(type) {
	case ReBudget:
		m.WarmBids = bids
		return m
	case EqualBudget:
		m.WarmBids = bids
		return m
	case Balanced:
		m.WarmBids = bids
		return m
	case WarmStarter:
		return m.WithWarmBids(bids)
	}
	return a
}

// WarmStarter is the WithWarmBids analogue of RoundHooker for wrapper
// allocators.
type WarmStarter interface {
	WithWarmBids(bids [][]float64) Allocator
}

func validate(capacity []float64, players []PlayerSpec) error {
	if len(capacity) == 0 {
		return fmt.Errorf("core: no resources")
	}
	if len(players) < 2 {
		return fmt.Errorf("core: need at least 2 players, got %d", len(players))
	}
	for i, p := range players {
		if p.Utility == nil {
			return fmt.Errorf("core: player %d (%s) missing utility", i, p.Name)
		}
	}
	return nil
}

// EqualShare partitions every resource evenly among players, the
// market-free baseline of §6.
type EqualShare struct{}

// Name implements Allocator.
func (EqualShare) Name() string { return "EqualShare" }

// Allocate implements Allocator.
func (EqualShare) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	if err := validate(capacity, players); err != nil {
		return nil, err
	}
	n := len(players)
	out := &Outcome{
		Mechanism:   "EqualShare",
		Allocations: make([][]float64, n),
		Utilities:   make([]float64, n),
		MUR:         math.NaN(),
		MBR:         math.NaN(),
		Converged:   true,
	}
	// One backing array for all rows: EqualShare runs every epoch of every
	// market-free session, so per-player row allocations dominate its cost.
	flat := make([]float64, n*len(capacity))
	for i, p := range players {
		row := flat[i*len(capacity) : (i+1)*len(capacity) : (i+1)*len(capacity)]
		for j, c := range capacity {
			row[j] = c / float64(n)
		}
		out.Allocations[i] = row
		out.Utilities[i] = p.Utility.Value(row)
	}
	return out, nil
}

// marketOutcome runs one equilibrium with the given budgets and wraps it.
// Non-convergence is accepted explicitly (Settle) and reported through the
// outcome's Converged field, matching the paper's §6.4 fail-safe. A non-nil
// warm matrix seeds the search from a previous equilibrium's bids.
func marketOutcome(name string, capacity []float64, players []PlayerSpec,
	budgets []float64, warm [][]float64, cfg market.Config) (*Outcome, error) {
	mp := make([]*market.Player, len(players))
	for i, p := range players {
		mp[i] = &market.Player{Name: p.Name, Utility: p.Utility, Budget: budgets[i]}
	}
	m, err := market.New(capacity, mp, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w: %w", name, ErrBadInput, err)
	}
	defer m.Close()
	eq, err := market.Settle(m.FindEquilibriumFrom(warm))
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w: %w", name, ErrBadInput, err)
	}
	mur, err := metrics.MUR(eq.Lambdas)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w: %w", name, ErrBadInput, err)
	}
	mbr, err := metrics.MBR(budgets)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w: %w", name, ErrBadInput, err)
	}
	return &Outcome{
		Mechanism:       name,
		Allocations:     eq.Allocations,
		Utilities:       eq.Utilities,
		Budgets:         append([]float64(nil), budgets...),
		Lambdas:         eq.Lambdas,
		Bids:            eq.Bids,
		MUR:             mur,
		MBR:             mbr,
		Iterations:      eq.Iterations,
		EquilibriumRuns: 1,
		Converged:       eq.Converged,
	}, nil
}

// EqualBudget is the XChange baseline: a market where every player holds
// the same budget.
type EqualBudget struct {
	Market market.Config
	// WarmBids optionally seeds the equilibrium search; see WithWarmBids.
	WarmBids [][]float64
}

// Name implements Allocator.
func (EqualBudget) Name() string { return "EqualBudget" }

// Allocate implements Allocator.
func (a EqualBudget) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	if err := validate(capacity, players); err != nil {
		return nil, err
	}
	budgets := make([]float64, len(players))
	for i := range budgets {
		budgets[i] = players[i].weight() * InitialBudget
	}
	return marketOutcome("EqualBudget", capacity, players, budgets, a.WarmBids, a.Market)
}

// Balanced is XChange's wealth-redistribution baseline: each player's
// budget is proportional to its performance "potential", the utility gap
// between its maximum and minimum possible allocations normalised to the
// former (§6).
type Balanced struct {
	Market market.Config
	// WarmBids optionally seeds the equilibrium search; see WithWarmBids.
	WarmBids [][]float64
}

// Name implements Allocator.
func (Balanced) Name() string { return "Balanced" }

// Allocate implements Allocator.
func (a Balanced) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	if err := validate(capacity, players); err != nil {
		return nil, err
	}
	n := len(players)
	weights := make([]float64, n)
	sum := 0.0
	for i, p := range players {
		maxAlloc := p.MaxAlloc
		if maxAlloc == nil {
			maxAlloc = capacity
		}
		minAlloc := p.MinAlloc
		if minAlloc == nil {
			minAlloc = make([]float64, len(capacity))
		}
		umax := p.Utility.Value(maxAlloc)
		umin := p.Utility.Value(minAlloc)
		// A non-finite potential probe would silently turn into NaN budgets
		// for everyone; surface the culprit as a typed error instead.
		for _, v := range []float64{umax, umin} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: Balanced: %w: %w", ErrBadInput,
					&market.UtilityError{Player: i, Name: p.Name, Value: v, Context: "potential probe utility"})
			}
		}
		w := 0.0
		if umax > 0 {
			w = (umax - umin) / umax
		}
		if w < 0 {
			w = 0
		}
		w *= p.weight()
		weights[i] = w
		sum += w
	}
	budgets := make([]float64, n)
	if sum == 0 {
		for i := range budgets {
			budgets[i] = InitialBudget
		}
	} else {
		for i := range budgets {
			// Mean budget stays at InitialBudget so prices remain
			// comparable with EqualBudget.
			budgets[i] = weights[i] / sum * InitialBudget * float64(n)
		}
	}
	return marketOutcome("Balanced", capacity, players, budgets, a.WarmBids, a.Market)
}
