package core

import (
	"math"
	"testing"

	"rebudget/internal/market"
)

// satUtility is a concave saturating utility: u = min(1, Σⱼ wⱼ·fracⱼ/satⱼ)
// where fracⱼ is the share of resource j obtained. A player with a small
// saturation point is easily satisfied (its λ collapses to ~0 once
// saturated), which is exactly the over-budgeted behaviour ReBudget exploits.
type satUtility struct {
	weights  []float64
	sat      []float64
	capacity []float64
}

func (u satUtility) Value(alloc []float64) float64 {
	s := 0.0
	for j := range u.weights {
		frac := alloc[j] / u.capacity[j]
		v := frac / u.sat[j]
		if v > 1 {
			v = 1
		}
		s += u.weights[j] * v
	}
	if s > 1 {
		s = 1
	}
	return s
}

var testCapacity = []float64{100, 100}

// heterogeneousPlayers builds a market where ReBudget clearly helps: two
// easily-satisfied players and two hungry ones.
func heterogeneousPlayers() []PlayerSpec {
	mk := func(name string, sat0, sat1 float64) PlayerSpec {
		return PlayerSpec{
			Name: name,
			Utility: satUtility{
				weights:  []float64{0.5, 0.5},
				sat:      []float64{sat0, sat1},
				capacity: testCapacity,
			},
		}
	}
	return []PlayerSpec{
		mk("sated-a", 0.15, 0.15),
		mk("sated-b", 0.20, 0.20),
		mk("hungry-a", 1.0, 1.0),
		mk("hungry-b", 0.9, 0.9),
	}
}

func TestEqualShare(t *testing.T) {
	out, err := EqualShare{}.Allocate(testCapacity, heterogeneousPlayers())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Allocations {
		for j, c := range testCapacity {
			if math.Abs(out.Allocations[i][j]-c/4) > 1e-12 {
				t.Errorf("player %d resource %d = %g, want %g", i, j, out.Allocations[i][j], c/4)
			}
		}
	}
	if !math.IsNaN(out.MUR) || !math.IsNaN(out.MBR) {
		t.Error("EqualShare should not report market metrics")
	}
	if !math.IsNaN(out.PoABound()) || !math.IsNaN(out.EFBound()) {
		t.Error("bounds should be NaN for non-market mechanisms")
	}
	if out.Efficiency() <= 0 {
		t.Error("efficiency should be positive")
	}
}

func TestAllocatorValidation(t *testing.T) {
	players := heterogeneousPlayers()
	for _, a := range []Allocator{EqualShare{}, EqualBudget{}, Balanced{}, ReBudget{Step: 20}, MaxEfficiency{}} {
		if _, err := a.Allocate(nil, players); err == nil {
			t.Errorf("%s accepted empty capacity", a.Name())
		}
		if _, err := a.Allocate(testCapacity, players[:1]); err == nil {
			t.Errorf("%s accepted single player", a.Name())
		}
		bad := []PlayerSpec{{Name: "x"}, {Name: "y"}}
		if _, err := a.Allocate(testCapacity, bad); err == nil {
			t.Errorf("%s accepted players without utilities", a.Name())
		}
	}
}

func TestEqualBudgetProperties(t *testing.T) {
	out, err := EqualBudget{}.Allocate(testCapacity, heterogeneousPlayers())
	if err != nil {
		t.Fatal(err)
	}
	if out.MBR != 1 {
		t.Errorf("EqualBudget MBR = %g, want 1", out.MBR)
	}
	if !out.Converged {
		t.Error("market did not converge")
	}
	for _, b := range out.Budgets {
		if b != InitialBudget {
			t.Errorf("budget %g, want %g", b, InitialBudget)
		}
	}
	// Zhang's Lemma 3: ≈0.828-approximate envy-free at worst.
	ef, err := out.EnvyFreeness(heterogeneousPlayers())
	if err != nil {
		t.Fatal(err)
	}
	if ef < out.EFBound()-1e-9 {
		t.Errorf("EqualBudget EF %g below Theorem 2 bound %g", ef, out.EFBound())
	}
}

func TestMaxEfficiencyDominates(t *testing.T) {
	players := heterogeneousPlayers()
	maxEff, err := MaxEfficiency{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Allocator{EqualShare{}, EqualBudget{}, Balanced{}, ReBudget{Step: 20}} {
		out, err := a.Allocate(testCapacity, players)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if out.Efficiency() > maxEff.Efficiency()+0.02 {
			t.Errorf("%s efficiency %g exceeds MaxEfficiency %g",
				a.Name(), out.Efficiency(), maxEff.Efficiency())
		}
	}
}

func TestMaxEfficiencyStarvesSatedPlayers(t *testing.T) {
	players := heterogeneousPlayers()
	out, err := MaxEfficiency{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	// Sated players should get roughly their saturation share and no more.
	if out.Allocations[0][0] > 30 {
		t.Errorf("sated player got %g of resource 0, expected ≈15", out.Allocations[0][0])
	}
	// All capacity is handed out.
	for j := range testCapacity {
		total := 0.0
		for i := range players {
			total += out.Allocations[i][j]
		}
		if math.Abs(total-testCapacity[j]) > 1e-6 {
			t.Errorf("resource %d total %g, want %g", j, total, testCapacity[j])
		}
	}
}

func TestReBudgetImprovesEfficiency(t *testing.T) {
	players := heterogeneousPlayers()
	eq, err := EqualBudget{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReBudget{Step: 40}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Efficiency() < eq.Efficiency()-1e-9 {
		t.Errorf("ReBudget-40 efficiency %g below EqualBudget %g", rb.Efficiency(), eq.Efficiency())
	}
	if rb.MUR < eq.MUR-1e-9 {
		t.Errorf("ReBudget-40 MUR %g did not improve on EqualBudget %g", rb.MUR, eq.MUR)
	}
	if rb.MBR >= 1 {
		t.Error("ReBudget should have cut someone's budget")
	}
	// The sated players must be the ones cut.
	if rb.Budgets[0] >= rb.Budgets[2] {
		t.Errorf("sated player budget %g should be below hungry player %g",
			rb.Budgets[0], rb.Budgets[2])
	}
}

func TestReBudgetKnobMonotonicity(t *testing.T) {
	players := heterogeneousPlayers()
	r20, err := ReBudget{Step: 20}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	r40, err := ReBudget{Step: 40}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: budget re-assignment does not *guarantee* efficiency gains;
	// allow hill-climb-level noise while catching real regressions.
	if r40.Efficiency() < r20.Efficiency()-0.05 {
		t.Errorf("more aggressive step lost efficiency: %g vs %g", r40.Efficiency(), r20.Efficiency())
	}
	if r40.MBR > r20.MBR+1e-9 {
		t.Errorf("more aggressive step should reduce MBR: %g vs %g", r40.MBR, r20.MBR)
	}
	ef20, _ := r20.EnvyFreeness(players)
	ef40, _ := r40.EnvyFreeness(players)
	if ef40 > ef20+0.05 {
		t.Errorf("aggressiveness should not improve fairness: EF40=%g EF20=%g", ef40, ef20)
	}
}

func TestReBudgetRespectsMBRFloor(t *testing.T) {
	players := heterogeneousPlayers()
	out, err := ReBudget{Step: 40, MBRFloor: 0.7}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range out.Budgets {
		if b < 0.7*InitialBudget-1e-9 {
			t.Errorf("player %d budget %g below floor 70", i, b)
		}
	}
	if out.MBR < 0.7-1e-9 {
		t.Errorf("MBR %g below floor", out.MBR)
	}
}

func TestReBudgetFairnessGuarantee(t *testing.T) {
	// §4.2: set a fairness target, derive MBR via Theorem 2, and the
	// resulting equilibrium must satisfy the guarantee.
	players := heterogeneousPlayers()
	out, err := ReBudget{MinEnvyFreeness: 0.5}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := out.EnvyFreeness(players)
	if err != nil {
		t.Fatal(err)
	}
	if ef < 0.5-1e-9 {
		t.Errorf("envy-freeness %g violates the 0.5 guarantee", ef)
	}
	if out.EFBound() < 0.5-1e-9 {
		t.Errorf("EFBound %g below requested level", out.EFBound())
	}
}

func TestReBudgetDerivedFloorMatchesPaper(t *testing.T) {
	// ReBudget-20 stops after cuts 20+10+5+2.5+1.25 = 38.75, so the
	// lowest possible budget is 61.25 (§6.1.3).
	cfg, err := ReBudget{Step: 20}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.MBRFloor-0.6125) > 1e-9 {
		t.Errorf("derived MBR floor = %g, want 0.6125", cfg.MBRFloor)
	}
}

func TestReBudgetConfigValidation(t *testing.T) {
	players := heterogeneousPlayers()
	if _, err := (ReBudget{}).Allocate(testCapacity, players); err == nil {
		t.Error("ReBudget without any knob accepted")
	}
	if _, err := (ReBudget{MinEnvyFreeness: 0.9}).Allocate(testCapacity, players); err == nil {
		t.Error("unreachable fairness target accepted")
	}
}

func TestReBudgetName(t *testing.T) {
	if (ReBudget{Step: 20}).Name() != "ReBudget-20" {
		t.Errorf("name = %s", ReBudget{Step: 20}.Name())
	}
	if (ReBudget{MBRFloor: 0.5}).Name() != "ReBudget" {
		t.Errorf("name = %s", ReBudget{MBRFloor: 0.5}.Name())
	}
}

func TestReBudgetRunsMultipleEquilibria(t *testing.T) {
	players := heterogeneousPlayers()
	out, err := ReBudget{Step: 20}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	if out.EquilibriumRuns < 2 {
		t.Errorf("expected several equilibrium runs, got %d", out.EquilibriumRuns)
	}
	if out.Iterations < out.EquilibriumRuns {
		t.Errorf("iterations %d < runs %d", out.Iterations, out.EquilibriumRuns)
	}
}

func TestBalancedBudgetsFollowPotential(t *testing.T) {
	// One player with no headroom (utility 1 everywhere), one with full
	// headroom: the former should receive (near-)zero budget.
	flat := PlayerSpec{
		Name:    "flat",
		Utility: market.UtilityFunc(func([]float64) float64 { return 1 }),
	}
	hungry := PlayerSpec{
		Name: "hungry",
		Utility: satUtility{
			weights:  []float64{0.5, 0.5},
			sat:      []float64{1, 1},
			capacity: testCapacity,
		},
	}
	spare := PlayerSpec{
		Name: "spare",
		Utility: satUtility{
			weights:  []float64{0.5, 0.5},
			sat:      []float64{1, 1},
			capacity: testCapacity,
		},
	}
	out, err := Balanced{}.Allocate(testCapacity, []PlayerSpec{flat, hungry, spare})
	if err != nil {
		t.Fatal(err)
	}
	if out.Budgets[0] > 1e-9 {
		t.Errorf("flat player budget = %g, want 0", out.Budgets[0])
	}
	if out.Budgets[1] < InitialBudget {
		t.Errorf("hungry player budget = %g, want above %g", out.Budgets[1], InitialBudget)
	}
	// Mean budget preserved.
	mean := (out.Budgets[0] + out.Budgets[1] + out.Budgets[2]) / 3
	if math.Abs(mean-InitialBudget) > 1e-6 {
		t.Errorf("mean budget = %g, want %g", mean, InitialBudget)
	}
}

func TestBalancedAllFlatFallsBackToEqual(t *testing.T) {
	flat := func(name string) PlayerSpec {
		return PlayerSpec{Name: name, Utility: market.UtilityFunc(func([]float64) float64 { return 1 })}
	}
	out, err := Balanced{}.Allocate(testCapacity, []PlayerSpec{flat("a"), flat("b")})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range out.Budgets {
		if b != InitialBudget {
			t.Errorf("fallback budget = %g, want %g", b, InitialBudget)
		}
	}
}

func TestOutcomeEnvyFreenessMatchesManual(t *testing.T) {
	players := heterogeneousPlayers()
	out, err := EqualShare{}.Allocate(testCapacity, players)
	if err != nil {
		t.Fatal(err)
	}
	// Equal allocations: nobody can envy anyone.
	ef, err := out.EnvyFreeness(players)
	if err != nil {
		t.Fatal(err)
	}
	if ef != 1 {
		t.Errorf("equal-share EF = %g, want 1", ef)
	}
}

func TestAllocatorNames(t *testing.T) {
	names := map[string]Allocator{
		"EqualShare":    EqualShare{},
		"EqualBudget":   EqualBudget{},
		"Balanced":      Balanced{},
		"MaxEfficiency": MaxEfficiency{},
	}
	for want, a := range names {
		if a.Name() != want {
			t.Errorf("Name() = %s, want %s", a.Name(), want)
		}
	}
}
