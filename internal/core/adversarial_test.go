package core

import (
	"errors"
	"math"
	"testing"

	"rebudget/internal/market"
)

// TestMBRFloorNeverViolated is the Theorem 2 property check: across ReBudget
// configurations and budget weights, no player's budget ever falls below
// MBRFloor × weight × InitialBudget.
func TestMBRFloorNeverViolated(t *testing.T) {
	configs := []ReBudget{
		{Step: 5},
		{Step: 20},
		{Step: 45},
		{MBRFloor: 0.3},
		{MBRFloor: 0.61},
		{MBRFloor: 0.9},
		{MinEnvyFreeness: 0.5},
		{MinEnvyFreeness: 0.8},
	}
	weightSets := [][]float64{
		nil, // default weight 1 for everyone
		{1, 1, 2, 2},
		{0.5, 1, 1.5, 3},
	}
	for _, cfg := range configs {
		floor, err := cfg.EffectiveMBRFloor()
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		for _, weights := range weightSets {
			players := heterogeneousPlayers()
			if weights != nil {
				for i := range players {
					players[i].BudgetWeight = weights[i]
				}
			}
			out, err := cfg.Allocate(testCapacity, players)
			if err != nil {
				t.Fatalf("%+v weights %v: %v", cfg, weights, err)
			}
			for i, b := range out.Budgets {
				w := players[i].weight()
				if min := floor * w * InitialBudget; b < min-1e-9 {
					t.Errorf("%+v weights %v: player %d budget %.6f below floor %.6f",
						cfg, weights, i, b, min)
				}
				if b > w*InitialBudget+1e-9 {
					t.Errorf("%+v weights %v: player %d budget %.6f above initial %.6f — cuts only",
						cfg, weights, i, b, w*InitialBudget)
				}
			}
			// Outcome.MBR is min/max over absolute budgets, so it maps onto
			// the floor only when all weights are equal; with unequal weights
			// the per-player check above is the Theorem 2 property.
			if weights == nil && out.MBR < floor-1e-9 {
				t.Errorf("%+v: reported MBR %.6f below floor %.6f", cfg, out.MBR, floor)
			}
		}
	}
}

// poisonedUtility returns a bad value on every evaluation.
type poisonedUtility struct{ bad float64 }

func (p poisonedUtility) Value([]float64) float64 { return p.bad }

// TestAllocateTypedErrorOnBadUtility: a NaN or Inf utility must surface as a
// typed error — ErrBadInput wrapping a market.UtilityError naming the
// culprit — and never as NaN budgets in a "successful" outcome.
func TestAllocateTypedErrorOnBadUtility(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, mech := range []Allocator{EqualBudget{}, Balanced{}, ReBudget{Step: 20}} {
			players := heterogeneousPlayers()
			players[1].Utility = poisonedUtility{bad: bad}
			out, err := mech.Allocate(testCapacity, players)
			if err == nil {
				// A mechanism may only "succeed" if the outcome is fully
				// finite; NaN budgets leaking out is the failure mode this
				// test exists to catch.
				if ferr := checkFinite(out); ferr != nil {
					t.Fatalf("%s with utility %v returned a non-finite outcome and no error: %v",
						mech.Name(), bad, ferr)
				}
				continue
			}
			if !errors.Is(err, ErrBadInput) {
				t.Errorf("%s with utility %v: error %v does not wrap ErrBadInput", mech.Name(), bad, err)
			}
			var uerr *market.UtilityError
			if !errors.As(err, &uerr) {
				t.Errorf("%s with utility %v: error %v carries no *market.UtilityError", mech.Name(), bad, err)
			} else if uerr.Player != 1 {
				t.Errorf("%s with utility %v: UtilityError blames player %d, want 1", mech.Name(), bad, uerr.Player)
			}
			if out != nil {
				t.Errorf("%s with utility %v: non-nil outcome alongside error", mech.Name(), bad)
			}
		}
	}
}

// TestResilientMasksBadUtility: the same poisoned inputs through the
// Resilient wrapper must yield a finite outcome with no error — the
// sanitized retry clamps the corruption.
func TestResilientMasksBadUtility(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		players := heterogeneousPlayers()
		players[2].Utility = poisonedUtility{bad: bad}
		r := NewResilient(ReBudget{Step: 20}, ResilientConfig{})
		out, err := r.Allocate(testCapacity, players)
		if err != nil {
			t.Fatalf("resilient ReBudget with utility %v: %v", bad, err)
		}
		if ferr := checkFinite(out); ferr != nil {
			t.Fatalf("resilient ReBudget with utility %v: %v", bad, ferr)
		}
	}
}
