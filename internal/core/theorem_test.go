package core

import (
	"fmt"
	"math"
	"testing"

	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/numeric"
)

// theorem_test.go empirically verifies Theorems 1 and 2 on randomly
// generated markets: for every equilibrium the measured efficiency ratio
// must respect the PoA bound implied by the measured MUR, and the measured
// envy-freeness must respect the bound implied by the MBR. The allowance
// accounts for the approximate equilibrium (1% price tolerance, hill-climb
// bid truncation) and the numerical OPT reference.
const theoremSlack = 0.05

// randomConcaveUtility builds a random utility from a family of concave,
// non-decreasing, continuous functions: a weighted mix of saturating-linear
// and square-root terms per resource.
func randomConcaveUtility(rng *numeric.Rand, capacity []float64) market2Utility {
	u := market2Utility{capacity: capacity}
	for range capacity {
		u.weights = append(u.weights, 0.1+rng.Float64())
		u.sat = append(u.sat, 0.1+0.9*rng.Float64())
		u.sqrtFrac = append(u.sqrtFrac, rng.Float64())
	}
	// Normalise so the utility at full allocation is 1.
	u.norm = 1
	u.norm = u.Value(capacity)
	return u
}

type market2Utility struct {
	capacity []float64
	weights  []float64
	sat      []float64
	sqrtFrac []float64
	norm     float64
}

func (u market2Utility) Value(alloc []float64) float64 {
	s := 0.0
	for j := range u.weights {
		frac := alloc[j] / u.capacity[j]
		if frac < 0 {
			frac = 0
		}
		lin := frac / u.sat[j]
		if lin > 1 {
			lin = 1
		}
		s += u.weights[j] * (u.sqrtFrac[j]*math.Sqrt(frac) + (1-u.sqrtFrac[j])*lin)
	}
	return s / u.norm
}

func randomMarket(rng *numeric.Rand, n int) ([]float64, []PlayerSpec, []float64) {
	capacity := []float64{50 + 100*rng.Float64(), 50 + 100*rng.Float64()}
	players := make([]PlayerSpec, n)
	budgets := make([]float64, n)
	for i := range players {
		players[i] = PlayerSpec{
			Name:    fmt.Sprintf("p%d", i),
			Utility: randomConcaveUtility(rng, capacity),
		}
		budgets[i] = 20 + 80*rng.Float64()
	}
	return capacity, players, budgets
}

// runWithBudgets runs one equilibrium under explicit budgets.
func runWithBudgets(t *testing.T, capacity []float64, players []PlayerSpec, budgets []float64) *Outcome {
	t.Helper()
	out, err := marketOutcome("test", capacity, players, budgets, nil, market.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTheorem1OnRandomMarkets(t *testing.T) {
	rng := numeric.NewRand(20160402)
	for trial := 0; trial < 25; trial++ {
		capacity, players, budgets := randomMarket(rng, 3+rng.Intn(3))
		out := runWithBudgets(t, capacity, players, budgets)
		opt, err := (MaxEfficiency{UnitsPerResource: 400}).Allocate(capacity, players)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Efficiency() <= 0 {
			t.Fatal("degenerate OPT")
		}
		ratio := out.Efficiency() / opt.Efficiency()
		bound := metrics.PoALowerBound(out.MUR)
		if ratio < bound-theoremSlack {
			t.Errorf("trial %d: Theorem 1 violated: Nash/OPT = %.4f < bound %.4f (MUR %.4f)",
				trial, ratio, bound, out.MUR)
		}
	}
}

func TestTheorem2OnRandomMarkets(t *testing.T) {
	rng := numeric.NewRand(8284)
	for trial := 0; trial < 25; trial++ {
		capacity, players, budgets := randomMarket(rng, 3+rng.Intn(3))
		out := runWithBudgets(t, capacity, players, budgets)
		ef, err := out.EnvyFreeness(players)
		if err != nil {
			t.Fatal(err)
		}
		bound := metrics.EnvyFreenessBound(out.MBR)
		if ef < bound-theoremSlack {
			t.Errorf("trial %d: Theorem 2 violated: EF = %.4f < bound %.4f (MBR %.4f)",
				trial, ef, bound, out.MBR)
		}
	}
}

// TestTheorem2EqualBudgetRecoversLemma3 checks Zhang's special case: with
// equal budgets every equilibrium is at least 0.828-approximate envy-free.
func TestTheorem2EqualBudgetRecoversLemma3(t *testing.T) {
	rng := numeric.NewRand(40)
	lemma3 := 2*math.Sqrt2 - 2
	worst := 1.0
	for trial := 0; trial < 25; trial++ {
		capacity, players, _ := randomMarket(rng, 4)
		budgets := []float64{100, 100, 100, 100}
		out := runWithBudgets(t, capacity, players, budgets)
		ef, err := out.EnvyFreeness(players)
		if err != nil {
			t.Fatal(err)
		}
		if ef < worst {
			worst = ef
		}
		if ef < lemma3-theoremSlack {
			t.Errorf("trial %d: Lemma 3 violated: EF = %.4f", trial, ef)
		}
	}
	// The bound is not vacuous: heterogeneous players do envy each other
	// somewhat, so the worst case should sit below perfect fairness.
	if worst == 1.0 {
		t.Log("note: no envy observed across trials; bound untested at its edge")
	}
}

// TestTheorem1BoundTightensWithReBudget verifies the mechanism the paper
// builds on: cutting low-λ budgets raises MUR, which raises the PoA
// guarantee (§3.1), across random markets in aggregate.
func TestTheorem1BoundTightensWithReBudget(t *testing.T) {
	rng := numeric.NewRand(77)
	improved, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		capacity, players, _ := randomMarket(rng, 4)
		eq, err := (EqualBudget{}).Allocate(capacity, players)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := (ReBudget{Step: 40}).Allocate(capacity, players)
		if err != nil {
			t.Fatal(err)
		}
		if rb.MBR == 1 {
			continue // nobody was low-λ; no reassignment happened
		}
		total++
		if rb.PoABound() >= eq.PoABound()-1e-9 {
			improved++
		}
	}
	if total == 0 {
		t.Skip("no market triggered reassignment")
	}
	if frac := float64(improved) / float64(total); frac < 0.7 {
		t.Errorf("PoA bound improved in only %.0f%% of reassigned markets", frac*100)
	}
}
