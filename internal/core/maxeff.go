package core

import (
	"math"
)

// MaxEfficiency is the infeasible reference allocation of §6: a central,
// very fine-grained hill-climbing search for the allocation maximising
// social welfare. With concave (Talus-convexified) utilities, greedy
// marginal-gain filling followed by inter-player exchange passes converges
// to (a numerical approximation of) the welfare-optimal allocation.
type MaxEfficiency struct {
	// UnitsPerResource controls granularity; each resource is handed out
	// in capacity/UnitsPerResource quanta. Default 512.
	UnitsPerResource int
	// MaxExchangePasses bounds the local-improvement phase. Default 50.
	MaxExchangePasses int
}

// Name implements Allocator.
func (MaxEfficiency) Name() string { return "MaxEfficiency" }

// Allocate implements Allocator.
func (a MaxEfficiency) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	if err := validate(capacity, players); err != nil {
		return nil, err
	}
	units := a.UnitsPerResource
	if units <= 0 {
		units = 512
	}
	passes := a.MaxExchangePasses
	if passes <= 0 {
		passes = 50
	}
	n := len(players)
	m := len(capacity)
	alloc := make([][]float64, n)
	for i := range alloc {
		alloc[i] = make([]float64, m)
	}
	values := make([]float64, n)
	for i, p := range players {
		values[i] = p.Utility.Value(alloc[i])
	}

	// Phase 1: greedy marginal-gain filling, one resource quantum at a
	// time, interleaving resources so cross-resource interactions are
	// reflected in the marginal evaluations.
	quantum := make([]float64, m)
	for j, c := range capacity {
		quantum[j] = c / float64(units)
	}
	gain := func(i, j int) float64 {
		alloc[i][j] += quantum[j]
		g := players[i].Utility.Value(alloc[i]) - values[i]
		alloc[i][j] -= quantum[j]
		return g
	}
	for u := 0; u < units; u++ {
		for j := 0; j < m; j++ {
			best, bestGain := 0, math.Inf(-1)
			for i := 0; i < n; i++ {
				if g := gain(i, j); g > bestGain {
					best, bestGain = i, g
				}
			}
			alloc[best][j] += quantum[j]
			values[best] = players[best].Utility.Value(alloc[best])
		}
	}

	// Phase 2: exchange passes — move one quantum of resource j from the
	// donor losing least to the recipient gaining most while total
	// welfare improves.
	for pass := 0; pass < passes; pass++ {
		improved := false
		for j := 0; j < m; j++ {
			for {
				// Best recipient.
				ri, rGain := -1, 0.0
				for i := 0; i < n; i++ {
					if g := gain(i, j); g > rGain {
						ri, rGain = i, g
					}
				}
				if ri < 0 {
					break
				}
				// Cheapest donor (other than the recipient).
				di, dLoss := -1, math.Inf(1)
				for i := 0; i < n; i++ {
					if i == ri || alloc[i][j] < quantum[j]-1e-12 {
						continue
					}
					alloc[i][j] -= quantum[j]
					loss := values[i] - players[i].Utility.Value(alloc[i])
					alloc[i][j] += quantum[j]
					if loss < dLoss {
						di, dLoss = i, loss
					}
				}
				if di < 0 || rGain <= dLoss+1e-12 {
					break
				}
				alloc[di][j] -= quantum[j]
				alloc[ri][j] += quantum[j]
				values[di] = players[di].Utility.Value(alloc[di])
				values[ri] = players[ri].Utility.Value(alloc[ri])
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	return &Outcome{
		Mechanism:   "MaxEfficiency",
		Allocations: alloc,
		Utilities:   values,
		MUR:         math.NaN(),
		MBR:         math.NaN(),
		Converged:   true,
	}, nil
}
