package core

import (
	"fmt"

	"rebudget/internal/market"
	"rebudget/internal/metrics"
)

// ReBudget is the paper's iterative budget-reassignment mechanism (§4.2).
// Starting from equal budgets it repeatedly (1) drives the market to
// equilibrium, (2) cuts the budget of every player whose marginal utility
// of money λᵢ falls below LambdaThreshold of the market maximum by the
// current step, and (3) halves the step — an exponential back-off that
// terminates once the step drops below 1% of the initial budget or no
// player was cut. Budgets never fall below MBRFloor × InitialBudget, so the
// Theorem 2 fairness guarantee chosen by the administrator always holds.
type ReBudget struct {
	// Step is the first budget cut ("ReBudget-20" ⇒ 20). If zero, it is
	// derived from MBRFloor as (1−MBR)·B/2, the §4.2 initialisation.
	Step float64
	// MBRFloor is the lowest admissible ratio of any budget to the
	// maximum budget. If zero, it is derived from Step as the tightest
	// floor the halving sequence can reach.
	MBRFloor float64
	// MinEnvyFreeness, when set, derives MBRFloor from Theorem 2 — the
	// administrator's fairness knob. Takes precedence over MBRFloor.
	MinEnvyFreeness float64
	// LambdaThreshold marks a player "low-λ" when its λᵢ is below this
	// fraction of the market's maximum λ (§4.2 uses 0.5, the point where
	// Theorem 1's guarantee starts degrading linearly).
	LambdaThreshold float64
	// MinStepFraction terminates the back-off once step < this fraction
	// of the initial budget (§4.2 uses 1%).
	MinStepFraction float64
	// MaxRounds is a safety bound on budget-reassignment rounds.
	MaxRounds int
	// NoBackoff disables the exponential step halving (ablation only):
	// the cut stays at Step every round until no player is cut, the floor
	// absorbs every cut, or MaxRounds is reached.
	NoBackoff bool
	// Market configures the inner equilibrium runs.
	Market market.Config
	// WarmBids optionally seeds the first equilibrium run from a previous
	// outcome's bid matrix (see WithWarmBids); later runs always warm-start
	// from the preceding budget step, as in §6.4.
	WarmBids [][]float64
}

// Name implements Allocator.
func (r ReBudget) Name() string {
	if r.Step > 0 {
		return fmt.Sprintf("ReBudget-%g", r.Step)
	}
	return "ReBudget"
}

func (r ReBudget) withDefaults() (ReBudget, error) {
	if r.LambdaThreshold <= 0 {
		r.LambdaThreshold = 0.5
	}
	if r.MinStepFraction <= 0 {
		r.MinStepFraction = 0.01
	}
	if r.MaxRounds <= 0 {
		r.MaxRounds = 30
	}
	if r.MinEnvyFreeness > 0 {
		mbr, err := metrics.MinMBRForEnvyFreeness(r.MinEnvyFreeness)
		if err != nil {
			return r, err
		}
		r.MBRFloor = mbr
	}
	switch {
	case r.Step <= 0 && r.MBRFloor <= 0:
		return r, fmt.Errorf("core: ReBudget needs Step, MBRFloor or MinEnvyFreeness")
	case r.Step <= 0:
		// §4.2 initialisation from the fairness floor.
		r.Step = (1 - r.MBRFloor) * InitialBudget / 2
	case r.MBRFloor <= 0:
		// Tightest floor the halving sequence can reach: total cut of
		// step + step/2 + … while each term ≥ 1% of the budget.
		r.MBRFloor = (InitialBudget - MaxTotalCut(r.Step, r.MinStepFraction*InitialBudget)) / InitialBudget
		if r.MBRFloor < 0 {
			r.MBRFloor = 0
		}
	}
	if r.MBRFloor > 1 {
		return r, fmt.Errorf("core: MBR floor %g above 1", r.MBRFloor)
	}
	return r, nil
}

// EffectiveMBRFloor resolves the fairness floor this configuration
// guarantees: the lowest admissible ratio of any player's budget to the
// maximum, after the Step/MBRFloor/MinEnvyFreeness derivation rules of
// withDefaults. Tests and the resilience experiment use it to check the
// Theorem 2 guarantee is never violated, faults or not.
func (r ReBudget) EffectiveMBRFloor() (float64, error) {
	cfg, err := r.withDefaults()
	if err != nil {
		return 0, err
	}
	return cfg.MBRFloor, nil
}

// CutSchedule is the §4.2 bounded budget-cut sequence, factored out of
// ReBudget.Allocate so other reassignment loops — notably the tenant-level
// rebalancer in internal/tenant, which reclaims lent budget with the same
// exponential back-off — reuse the exact machinery instead of duplicating
// it. Each Next() yields the cut allowed this round (the current step) and
// halves the step (unless NoBackoff was set); the sequence terminates once
// the step drops below minStep, exactly like ReBudget's loop.
type CutSchedule struct {
	step      float64
	minStep   float64
	noBackoff bool
}

// NewCutSchedule starts a cut sequence at step, terminating below minStep.
// noBackoff disables the halving (the §6 ablation): the cut stays at step
// every round until the caller stops asking.
func NewCutSchedule(step, minStep float64, noBackoff bool) *CutSchedule {
	return &CutSchedule{step: step, minStep: minStep, noBackoff: noBackoff}
}

// Next returns the cut allowed this round and advances the schedule. ok is
// false once the back-off has run below minStep — the caller's signal to
// stop (ReBudget breaks its loop; the tenant rebalancer snaps the residual).
func (c *CutSchedule) Next() (cut float64, ok bool) {
	if c.step < c.minStep {
		return 0, false
	}
	cut = c.step
	if !c.noBackoff {
		c.step /= 2
	}
	return cut, true
}

// Step reports the cut the next call to Next would allow.
func (c *CutSchedule) Step() float64 { return c.step }

// MaxTotalCut sums the halving sequence step, step/2, … down to minStep —
// the largest total budget a schedule can ever remove. ReBudget derives its
// tightest reachable MBR floor from it; the tenant layer sizes reclaim
// cycles with it so a loan is recovered within the schedule's lifetime.
func MaxTotalCut(step, minStep float64) float64 {
	total := 0.0
	for s := step; s >= minStep; s /= 2 {
		total += s
	}
	return total
}

// Allocate implements Allocator.
func (r ReBudget) Allocate(capacity []float64, players []PlayerSpec) (*Outcome, error) {
	if err := validate(capacity, players); err != nil {
		return nil, err
	}
	cfg, err := r.withDefaults()
	if err != nil {
		return nil, err
	}
	n := len(players)
	budgets := make([]float64, n)
	weights := make([]float64, n)
	for i := range budgets {
		weights[i] = players[i].weight()
		budgets[i] = weights[i] * InitialBudget
	}
	// Floors, steps and the termination threshold all scale with each
	// player's weight, so the knob's meaning is per-core (§5) and the MBR
	// guarantee holds on the weight-relative budgets.
	sched := NewCutSchedule(cfg.Step, cfg.MinStepFraction*InitialBudget, cfg.NoBackoff)

	mp := make([]*market.Player, n)
	for i, p := range players {
		mp[i] = &market.Player{Name: p.Name, Utility: p.Utility, Budget: budgets[i]}
	}
	m, err := market.New(capacity, mp, cfg.Market)
	if err != nil {
		return nil, err
	}
	// One Market persists across all budget steps, so the worker pool and
	// scratch buffers are reused by every warm-started re-convergence.
	defer m.Close()

	var eq *market.Equilibrium
	warmBids := cfg.WarmBids
	totalIters, runs := 0, 0
	for round := 0; round < cfg.MaxRounds; round++ {
		// Re-converge from the previous equilibrium's bids: after a
		// budget cut the market is already close, which is what keeps
		// ReBudget's extra equilibrium runs cheap (§6.4). Non-converged
		// runs are accepted explicitly (the §6.4 fail-safe installs the
		// best-effort state); any other equilibrium failure — a NaN/Inf
		// utility mid-round, say — aborts with a typed error so callers
		// never see NaN budgets.
		eq, err = market.Settle(m.FindEquilibriumFrom(warmBids))
		if err != nil {
			return nil, fmt.Errorf("core: ReBudget round %d: %w: %w", round, ErrBadInput, err)
		}
		warmBids = eq.Bids
		totalIters += eq.Iterations
		runs++
		step, ok := sched.Next()
		if !ok {
			break
		}
		maxLambda := 0.0
		for _, l := range eq.Lambdas {
			if l > maxLambda {
				maxLambda = l
			}
		}
		cut := false
		for i, l := range eq.Lambdas {
			if l < cfg.LambdaThreshold*maxLambda {
				nb := budgets[i] - step*weights[i]
				if floor := cfg.MBRFloor * weights[i] * InitialBudget; nb < floor {
					nb = floor
				}
				if nb < budgets[i] {
					budgets[i] = nb
					mp[i].Budget = nb
					cut = true
				}
			}
		}
		if !cut {
			break
		}
	}

	mur, err := metrics.MUR(eq.Lambdas)
	if err != nil {
		return nil, fmt.Errorf("core: ReBudget: %w: %w", ErrBadInput, err)
	}
	mbr, err := metrics.MBR(budgets)
	if err != nil {
		return nil, fmt.Errorf("core: ReBudget: %w: %w", ErrBadInput, err)
	}
	return &Outcome{
		Mechanism:       r.Name(),
		Allocations:     eq.Allocations,
		Utilities:       eq.Utilities,
		Budgets:         budgets,
		Lambdas:         eq.Lambdas,
		Bids:            eq.Bids,
		MUR:             mur,
		MBR:             mbr,
		Iterations:      totalIters,
		EquilibriumRuns: runs,
		Converged:       eq.Converged,
	}, nil
}
