package core

import (
	"math"
	"testing"
)

// TestCutScheduleSequence pins the schedule to ReBudget's §4.2 loop: each
// round yields the current step, the step halves, and the sequence ends
// once the step drops below minStep.
func TestCutScheduleSequence(t *testing.T) {
	s := NewCutSchedule(20, 3, false)
	want := []float64{20, 10, 5}
	for i, w := range want {
		cut, ok := s.Next()
		if !ok {
			t.Fatalf("round %d: schedule ended early", i)
		}
		if cut != w {
			t.Fatalf("round %d: cut %g, want %g", i, cut, w)
		}
	}
	if cut, ok := s.Next(); ok {
		t.Fatalf("schedule yielded %g past minStep", cut)
	}
}

// TestCutScheduleNoBackoff pins the ablation: the cut never decays.
func TestCutScheduleNoBackoff(t *testing.T) {
	s := NewCutSchedule(7, 1, true)
	for i := 0; i < 50; i++ {
		cut, ok := s.Next()
		if !ok || cut != 7 {
			t.Fatalf("round %d: cut %g ok %v, want 7 true", i, cut, ok)
		}
	}
}

// TestCutScheduleTotalMatchesMaxTotalCut: the sum of every yielded cut is
// exactly MaxTotalCut — the bound ReBudget derives its tightest floor from
// and the tenant layer sizes reclaim cycles with.
func TestCutScheduleTotalMatchesMaxTotalCut(t *testing.T) {
	for _, tc := range []struct{ step, min float64 }{
		{20, 1}, {20, 0.2}, {5, 5}, {4, 4.5}, {100, 0.01},
	} {
		s := NewCutSchedule(tc.step, tc.min, false)
		total := 0.0
		for {
			cut, ok := s.Next()
			if !ok {
				break
			}
			total += cut
		}
		if want := MaxTotalCut(tc.step, tc.min); math.Abs(total-want) > 1e-12 {
			t.Errorf("step=%g min=%g: schedule total %g, MaxTotalCut %g",
				tc.step, tc.min, total, want)
		}
	}
}

// TestCutScheduleReBudgetFloorUnchanged guards the refactor: the derived
// effective floor of a Step-configured ReBudget must match the historical
// maxTotalCut-based derivation.
func TestCutScheduleReBudgetFloorUnchanged(t *testing.T) {
	r := ReBudget{Step: 20}
	floor, err := r.EffectiveMBRFloor()
	if err != nil {
		t.Fatal(err)
	}
	want := (InitialBudget - MaxTotalCut(20, 0.01*InitialBudget)) / InitialBudget
	if floor != want {
		t.Fatalf("EffectiveMBRFloor = %g, want %g", floor, want)
	}
}
