package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Channels: 0, RowHitRate: 0.5}); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := New(Config{Channels: 2, RowHitRate: -0.1}); err == nil {
		t.Error("negative row hit rate accepted")
	}
	if _, err := New(Config{Channels: 2, RowHitRate: 1.1}); err == nil {
		t.Error("row hit rate > 1 accepted")
	}
	if _, err := New(Config{Channels: 2, RowHitRate: 0.5}); err != nil {
		t.Error("valid config rejected")
	}
}

func TestDefaultConfigChannelScaling(t *testing.T) {
	if c := DefaultConfig(8); c.Channels != 2 {
		t.Errorf("8-core channels = %d, want 2 (Table 1)", c.Channels)
	}
	if c := DefaultConfig(64); c.Channels != 16 {
		t.Errorf("64-core channels = %d, want 16 (Table 1)", c.Channels)
	}
	if c := DefaultConfig(1); c.Channels != 1 {
		t.Errorf("tiny system should still get a channel, got %d", c.Channels)
	}
}

func TestBaseLatencyBetweenHitAndMiss(t *testing.T) {
	s, _ := New(Config{Channels: 2, RowHitRate: 0.5})
	base := s.BaseLatencyNs()
	if base <= RowHitNs || base >= RowMissNs {
		t.Errorf("base latency %g outside (%g, %g)", base, RowHitNs, RowMissNs)
	}
	allHit, _ := New(Config{Channels: 2, RowHitRate: 1})
	if allHit.BaseLatencyNs() != RowHitNs {
		t.Error("all-hit base latency wrong")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	s, _ := New(DefaultConfig(8))
	idle := s.LatencyNs(0)
	if math.Abs(idle-s.BaseLatencyNs()) > 1e-9 {
		t.Errorf("idle latency = %g, want base %g", idle, s.BaseLatencyNs())
	}
	// Half the peak bandwidth in misses/second.
	half := s.PeakBandwidthGBs() / 2 * 1e9 / LineBytes
	mid := s.LatencyNs(half)
	if mid <= idle {
		t.Error("latency must grow with load")
	}
	// Saturation is capped, not divergent.
	sat := s.LatencyNs(1e18)
	if math.IsInf(sat, 0) || math.IsNaN(sat) {
		t.Fatal("latency diverged at saturation")
	}
	if sat <= mid {
		t.Error("latency at saturation should exceed mid-load latency")
	}
}

func TestUtilizationCapped(t *testing.T) {
	s, _ := New(DefaultConfig(8))
	if u := s.Utilization(1e18); u > maxUtilization {
		t.Errorf("utilization %g exceeds cap", u)
	}
	if u := s.Utilization(-5); u != 0 {
		t.Errorf("negative demand should clamp to 0, got %g", u)
	}
}

func TestMoreChannelsLowerLatency(t *testing.T) {
	few, _ := New(Config{Channels: 2, RowHitRate: 0.5})
	many, _ := New(Config{Channels: 16, RowHitRate: 0.5})
	demand := 3e9 / float64(LineBytes) // 3 GB/s of misses
	if many.LatencyNs(demand) >= few.LatencyNs(demand) {
		t.Error("more channels should reduce contention latency")
	}
}

// Property: latency is monotone non-decreasing in demand.
func TestLatencyMonotone(t *testing.T) {
	s, _ := New(DefaultConfig(64))
	f := func(d1, d2 float64) bool {
		d1 = math.Abs(math.Mod(d1, 1e12))
		d2 = math.Abs(math.Mod(d2, 1e12))
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return s.LatencyNs(d1) <= s.LatencyNs(d2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
