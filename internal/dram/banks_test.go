package dram

import (
	"math"
	"testing"
)

func TestNewBankSimValidation(t *testing.T) {
	if _, err := NewBankSim(0); err == nil {
		t.Error("zero channels accepted")
	}
	s, err := NewBankSim(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.RowHitRate() != 0 {
		t.Error("idle hit rate should be 0")
	}
	if s.BankImbalance() != 1 {
		t.Error("idle imbalance should be 1")
	}
}

func TestSequentialStreamRowLocality(t *testing.T) {
	// A sequential line stream revisits each open row many times (lines
	// interleave across channels, rows fill within a channel).
	s, _ := NewBankSim(2)
	for i := 0; i < 100000; i++ {
		s.Access(uint64(i) * LineBytes)
	}
	if hr := s.RowHitRate(); hr < 0.95 {
		t.Errorf("sequential stream row hit rate %g, want near 1", hr)
	}
}

func TestRandomStreamRowMisses(t *testing.T) {
	// Widely scattered rows rarely hit open rows.
	s, _ := NewBankSim(2)
	addr := uint64(1)
	for i := 0; i < 100000; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		s.Access(addr % (1 << 40))
	}
	if hr := s.RowHitRate(); hr > 0.1 {
		t.Errorf("random stream row hit rate %g, want near 0", hr)
	}
}

func TestEpochLatencyReflectsLocality(t *testing.T) {
	seq, _ := NewBankSim(2)
	for i := 0; i < 50000; i++ {
		seq.Access(uint64(i) * LineBytes)
	}
	rnd, _ := NewBankSim(2)
	addr := uint64(7)
	for i := 0; i < 50000; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		rnd.Access(addr % (1 << 40))
	}
	const epoch, scale = 1e-3, 1.0
	if seq.EpochLatencyNs(epoch, scale) >= rnd.EpochLatencyNs(epoch, scale) {
		t.Errorf("sequential latency %g should beat random %g",
			seq.EpochLatencyNs(epoch, scale), rnd.EpochLatencyNs(epoch, scale))
	}
}

func TestEpochLatencyGrowsWithLoad(t *testing.T) {
	mk := func(accesses int) float64 {
		s, _ := NewBankSim(2)
		for i := 0; i < accesses; i++ {
			s.Access(uint64(i) * LineBytes)
		}
		return s.EpochLatencyNs(1e-3, 1)
	}
	light, heavy := mk(1000), mk(80000)
	if heavy <= light {
		t.Errorf("latency should grow with load: light %g vs heavy %g", light, heavy)
	}
	// Queueing saturates rather than diverging.
	extreme := mk(500000)
	if math.IsInf(extreme, 0) || math.IsNaN(extreme) || extreme > 1000 {
		t.Errorf("latency %g diverged under extreme load", extreme)
	}
}

func TestSampleScaleRaisesLoad(t *testing.T) {
	mk := func(scale float64) float64 {
		s, _ := NewBankSim(2)
		for i := 0; i < 5000; i++ {
			s.Access(uint64(i) * LineBytes)
		}
		return s.EpochLatencyNs(1e-3, scale)
	}
	if mk(10) <= mk(1) {
		t.Error("higher sample scale means higher real load and latency")
	}
}

func TestHotBankImbalance(t *testing.T) {
	s, _ := NewBankSim(2)
	// Hammer one single row repeatedly: one bank takes everything.
	for i := 0; i < 10000; i++ {
		s.Access(0)
	}
	if imb := s.BankImbalance(); imb < float64(len(s.perBank))-1e-9 {
		t.Errorf("single-bank hammer imbalance %g, want %d", imb, len(s.perBank))
	}
	// And it should pay more queueing than a spread stream of equal size.
	spread, _ := NewBankSim(2)
	for i := 0; i < 10000; i++ {
		spread.Access(uint64(i) * LineBytes * uint64(DefaultRowLines))
	}
	// The hammered stream is all row hits, so compare pure queueing by
	// load: same access count, hot bank has N× the per-bank rate.
	if s.BankImbalance() <= spread.BankImbalance() {
		t.Errorf("hammer imbalance %g should exceed spread %g",
			s.BankImbalance(), spread.BankImbalance())
	}
}

func TestBankSimReset(t *testing.T) {
	s, _ := NewBankSim(1)
	for i := 0; i < 100; i++ {
		s.Access(uint64(i) * LineBytes)
	}
	s.Reset()
	if s.RowHitRate() != 0 || s.BankImbalance() != 1 {
		t.Error("Reset did not clear epoch counters")
	}
	// Open rows persist: the next access to the same row still hits.
	s.Access(0)
	s.Access(LineBytes)
	if s.RowHitRate() < 0.5 {
		t.Error("open-row state should survive Reset")
	}
}
