package dram

import (
	"fmt"
	"math"
)

// BankSim is the bank-level refinement of the analytic System model: it
// consumes the actual L2-miss address stream, tracks per-bank open rows
// (open-page policy) and measures — rather than assumes — the row-buffer
// hit rate and the per-bank load imbalance. Latency per epoch is the
// measured mean device latency plus an M/D/1 queueing term evaluated per
// bank, so a stream that hammers one bank pays more than one spread across
// the channel's banks.
type BankSim struct {
	channels int
	banks    int // per channel
	rowLines int // cache lines per row buffer

	openRow []int64 // per (channel, bank); -1 = closed
	// Per-epoch counters.
	perBank  []uint64
	accesses uint64
	rowHits  uint64
}

// DDR3-1600-like geometry: 8 banks per rank, one rank per channel modelled,
// 8 kB row buffers (128 lines).
const (
	DefaultBanksPerChannel = 8
	DefaultRowLines        = 8 << 10 / LineBytes
	// bankServiceNs is the bank-occupancy time of one access (device
	// core latency; the shared data bus is accounted by the channel
	// bandwidth model).
	bankServiceNs = 10.0
)

// NewBankSim builds the model.
func NewBankSim(channels int) (*BankSim, error) {
	if channels < 1 {
		return nil, fmt.Errorf("dram: need at least one channel, got %d", channels)
	}
	n := channels * DefaultBanksPerChannel
	s := &BankSim{
		channels: channels,
		banks:    DefaultBanksPerChannel,
		rowLines: DefaultRowLines,
		openRow:  make([]int64, n),
		perBank:  make([]uint64, n),
	}
	for i := range s.openRow {
		s.openRow[i] = -1
	}
	return s, nil
}

// bankOf maps a line address to its (channel, bank) slot and row id. Lines
// interleave across channels (bandwidth); within a channel, consecutive
// lines fill a row before moving on (locality), and rows interleave across
// banks.
func (s *BankSim) bankOf(lineAddr uint64) (slot int, row int64) {
	ch := int(lineAddr % uint64(s.channels))
	inChannel := lineAddr / uint64(s.channels)
	rowID := inChannel / uint64(s.rowLines)
	bank := int(rowID % uint64(s.banks))
	return ch*s.banks + bank, int64(rowID / uint64(s.banks))
}

// Access records one miss going to memory and reports whether it hit an
// open row.
func (s *BankSim) Access(addr uint64) bool {
	slot, row := s.bankOf(addr / LineBytes)
	s.accesses++
	s.perBank[slot]++
	if s.openRow[slot] == row {
		s.rowHits++
		return true
	}
	s.openRow[slot] = row
	return false
}

// BaseLatencyNs is the measured device latency this epoch: the row-hit /
// row-miss mix without any queueing term. Used when bandwidth is privately
// partitioned per core and queueing is charged against each core's own
// allocation instead of the shared pool.
func (s *BankSim) BaseLatencyNs() float64 {
	if s.accesses == 0 {
		return 0.5*RowHitNs + 0.5*RowMissNs
	}
	hit := s.RowHitRate()
	return hit*RowHitNs + (1-hit)*RowMissNs
}

// RowHitRate returns the measured row-buffer hit rate this epoch (0 when
// idle).
func (s *BankSim) RowHitRate() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.rowHits) / float64(s.accesses)
}

// EpochLatencyNs returns the average miss-service latency over the epoch:
// the measured row-hit/row-miss mix plus per-bank queueing. The simulator
// samples the access stream, so sampleScale (≥1) converts observed counts
// into real arrival rates; epochSeconds is the wall-clock epoch length.
func (s *BankSim) EpochLatencyNs(epochSeconds, sampleScale float64) float64 {
	if s.accesses == 0 {
		return 0.5*RowHitNs + 0.5*RowMissNs
	}
	hit := s.RowHitRate()
	base := hit*RowHitNs + (1-hit)*RowMissNs
	// Access-weighted queueing delay across banks.
	epochNs := epochSeconds * 1e9
	var weighted float64
	for _, n := range s.perBank {
		if n == 0 {
			continue
		}
		rate := float64(n) * sampleScale
		rho := math.Min(rate*bankServiceNs/epochNs, 0.95)
		wait := base * rho / (2 * (1 - rho))
		weighted += float64(n) * wait
	}
	return base + weighted/float64(s.accesses)
}

// BankImbalance reports the ratio of the hottest bank's load to the mean
// (1 = perfectly balanced), a diagnostic for pathological mappings.
func (s *BankSim) BankImbalance() float64 {
	if s.accesses == 0 {
		return 1
	}
	var max uint64
	for _, n := range s.perBank {
		if n > max {
			max = n
		}
	}
	mean := float64(s.accesses) / float64(len(s.perBank))
	return float64(max) / mean
}

// Reset clears epoch counters; open-row state persists (rows stay open
// across allocation epochs on real parts).
func (s *BankSim) Reset() {
	for i := range s.perBank {
		s.perBank[i] = 0
	}
	s.accesses, s.rowHits = 0, 0
}
