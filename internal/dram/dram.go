// Package dram models the off-chip memory system the paper configures as
// Micron DDR3-1600 behind 2 (8-core) or 16 (64-core) channels. The
// allocation mechanisms only feel DRAM through the average L2-miss service
// latency, which grows with channel load, so the model is an open queueing
// approximation: row-buffer-aware base latency plus an M/D/1-style
// contention term in channel utilisation.
package dram

import (
	"fmt"
	"math"
)

// Timing constants approximating DDR3-1600 (Micron MT41J256M8).
const (
	// RowHitNs is the device latency of a row-buffer hit (CL ≈ 13.75 ns
	// plus I/O).
	RowHitNs = 18.0
	// RowMissNs adds precharge + activate (tRP + tRCD ≈ 27.5 ns).
	RowMissNs = 46.0
	// ChannelBandwidthGBs is the peak transfer rate per channel
	// (64-bit bus × 1600 MT/s = 12.8 GB/s).
	ChannelBandwidthGBs = 12.8
	// LineBytes is the transfer unit (one L2 line).
	LineBytes = 64
	// maxUtilization caps the queueing model before it diverges.
	maxUtilization = 0.95
)

// Config describes a memory system.
type Config struct {
	Channels   int
	RowHitRate float64 // fraction of accesses hitting an open row
}

// DefaultConfig returns the paper's configuration for the given core count:
// 2 channels per 8 cores.
func DefaultConfig(cores int) Config {
	ch := cores / 4
	if ch < 1 {
		ch = 1
	}
	return Config{Channels: ch, RowHitRate: 0.5}
}

// System is a memory-system instance.
type System struct {
	cfg Config
}

// New validates cfg.
func New(cfg Config) (*System, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("dram: need at least one channel, got %d", cfg.Channels)
	}
	if cfg.RowHitRate < 0 || cfg.RowHitRate > 1 {
		return nil, fmt.Errorf("dram: row hit rate %g outside [0,1]", cfg.RowHitRate)
	}
	return &System{cfg: cfg}, nil
}

// BaseLatencyNs is the uncontended average access latency.
func (s *System) BaseLatencyNs() float64 {
	return s.cfg.RowHitRate*RowHitNs + (1-s.cfg.RowHitRate)*RowMissNs
}

// PeakBandwidthGBs is the aggregate peak bandwidth across channels.
func (s *System) PeakBandwidthGBs() float64 {
	return ChannelBandwidthGBs * float64(s.cfg.Channels)
}

// Utilization converts an aggregate demand of missesPerSecond L2-line
// transfers into channel utilisation in [0, maxUtilization].
func (s *System) Utilization(missesPerSecond float64) float64 {
	demandGBs := missesPerSecond * LineBytes / 1e9
	u := demandGBs / s.PeakBandwidthGBs()
	return math.Min(math.Max(u, 0), maxUtilization)
}

// LatencyNs returns the average miss service latency (ns) under the given
// aggregate miss traffic. The waiting-time term follows M/D/1:
// W = ρ/(2(1-ρ)) · service.
func (s *System) LatencyNs(missesPerSecond float64) float64 {
	base := s.BaseLatencyNs()
	rho := s.Utilization(missesPerSecond)
	return base * (1 + rho/(2*(1-rho)))
}
