package cache

import (
	"fmt"

	"rebudget/internal/numeric"
)

// Talus convexifies a cache's performance-vs-capacity behaviour, following
// Beckmann & Sanchez (HPCA 2015). Given a measured miss curve, it derives
// the convex hull of the corresponding hit curve; the hull's vertices are
// the "points of interest" (PoIs). For an arbitrary capacity target between
// two PoIs, Talus splits the partition into two shadow partitions sized so
// that the achieved miss ratio is the linear interpolation of the PoI miss
// ratios — removing cliffs and making cache utility concave and continuous.

// ShadowSplit describes how to realise a fractional-capacity target t
// (in regions) between two points of interest.
type ShadowSplit struct {
	LoRegions float64 // PoI below (or equal to) the target
	HiRegions float64 // PoI above (or equal to) the target
	Rho       float64 // fraction of the access stream routed to the Lo shadow
	LoLines   float64 // line budget of the Lo shadow partition (ρ·c1)
	HiLines   float64 // line budget of the Hi shadow partition ((1-ρ)·c2)
}

// Talus wraps a miss curve with its convex-hull machinery.
type Talus struct {
	raw  *MissCurve
	hull *numeric.PWL // hit ratio (1 - miss) on the convex hull
	pois []float64    // hull vertex capacities, in regions
}

// NewTalus builds the convex hull of the (monotone-cleaned) miss curve.
func NewTalus(mc *MissCurve) (*Talus, error) {
	if mc == nil {
		return nil, fmt.Errorf("cache: nil miss curve")
	}
	mono := mc.Monotone()
	pts := make([]numeric.Point, len(mono.Ratio))
	for r, m := range mono.Ratio {
		pts[r] = numeric.Point{X: float64(r), Y: 1 - m}
	}
	hullPts := numeric.UpperConvexHull(pts)
	hull, err := numeric.NewPWL(hullPts)
	if err != nil {
		return nil, fmt.Errorf("cache: building talus hull: %w", err)
	}
	t := &Talus{raw: mono, hull: hull}
	for _, p := range hullPts {
		t.pois = append(t.pois, p.X)
	}
	return t, nil
}

// PoIs returns the hull vertex capacities in regions, ascending.
func (t *Talus) PoIs() []float64 {
	return append([]float64(nil), t.pois...)
}

// MissAt returns the convexified miss ratio at a fractional region target.
func (t *Talus) MissAt(regions float64) float64 {
	return 1 - t.hull.Eval(regions)
}

// RawMissAt returns the non-convexified (monotone-cleaned) miss ratio.
func (t *Talus) RawMissAt(regions float64) float64 {
	return t.raw.At(regions)
}

// Split computes the shadow-partition configuration achieving the target.
// For targets at or beyond a PoI boundary the split degenerates to a single
// partition (Rho = 1).
func (t *Talus) Split(targetRegions float64) ShadowSplit {
	ps := t.pois
	target := numeric.Clamp(targetRegions, ps[0], ps[len(ps)-1])
	// Find neighbouring PoIs.
	lo, hi := ps[0], ps[len(ps)-1]
	for i := 1; i < len(ps); i++ {
		if ps[i] >= target {
			lo, hi = ps[i-1], ps[i]
			break
		}
	}
	if hi == lo || target >= hi {
		return ShadowSplit{LoRegions: hi, HiRegions: hi, Rho: 1, LoLines: hi * LinesPerRegion}
	}
	if target <= lo {
		return ShadowSplit{LoRegions: lo, HiRegions: lo, Rho: 1, LoLines: lo * LinesPerRegion}
	}
	// Shadow partition sizing (Talus §3): route ρ of the stream to a
	// partition that must behave like a cache of lo regions for that
	// substream, so its size is ρ·lo; the rest sees (1-ρ)·hi. Choosing
	// ρ = (hi-target)/(hi-lo) makes the sizes sum to the target and the
	// miss ratio interpolate linearly between m(lo) and m(hi).
	rho := (hi - target) / (hi - lo)
	return ShadowSplit{
		LoRegions: lo,
		HiRegions: hi,
		Rho:       rho,
		LoLines:   rho * lo * LinesPerRegion,
		HiLines:   (1 - rho) * hi * LinesPerRegion,
	}
}

// IsConcaveHitCurve reports whether the convexified hit curve is concave and
// non-decreasing — the property the market's theory requires (§4.1.1).
func (t *Talus) IsConcaveHitCurve() bool {
	return t.hull.IsConcave() && t.hull.IsNonDecreasing()
}
