package cache

import (
	"testing"

	"rebudget/internal/numeric"
)

// refCache is the pre-SoA PartitionedCache, array-of-structs layout and
// all, kept verbatim as a reference model. The production cache must agree
// with it access for access: same hit/miss verdicts, same victim choices
// (observable through occupancy), same stats. This pins the SoA rewrite —
// including the used==0-means-invalid encoding — to the original semantics.
type refCache struct {
	cfg       Config
	sets      int
	lines     []line
	clock     uint64
	occupancy []int
	target    []float64
}

func newRefCache(cfg Config) *refCache {
	linesTotal := cfg.CapacityBytes / LineSize
	c := &refCache{
		cfg:       cfg,
		sets:      linesTotal / cfg.Ways,
		lines:     make([]line, linesTotal),
		occupancy: make([]int, cfg.Partitions),
		target:    make([]float64, cfg.Partitions),
	}
	for i := range c.target {
		c.target[i] = float64(linesTotal) / float64(cfg.Partitions)
	}
	return c
}

func (c *refCache) SetTargets(t []float64) { copy(c.target, t) }

func (c *refCache) Access(addr uint64, owner int) bool {
	lineAddr := addr / LineSize
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr >> uint(log2(c.sets))
	base := set * c.cfg.Ways
	c.clock++
	ways := c.lines[base : base+c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.clock
			if int(ways[i].owner) != owner {
				c.occupancy[ways[i].owner]--
				c.occupancy[owner]++
				ways[i].owner = int32(owner)
			}
			return true
		}
	}
	victim := c.chooseVictim(ways, owner)
	if ways[victim].valid {
		c.occupancy[ways[victim].owner]--
	}
	ways[victim] = line{tag: tag, owner: int32(owner), valid: true, used: c.clock}
	c.occupancy[owner]++
	return false
}

func (c *refCache) chooseVictim(ways []line, requester int) int {
	bestIdx := -1
	bestOver := 0.0
	var bestUsed uint64
	ownIdx, globalIdx := -1, -1
	var ownUsed, globalUsed uint64
	for i := range ways {
		w := &ways[i]
		if !w.valid {
			return i
		}
		if globalIdx == -1 || w.used < globalUsed {
			globalIdx, globalUsed = i, w.used
		}
		if int(w.owner) == requester && (ownIdx == -1 || w.used < ownUsed) {
			ownIdx, ownUsed = i, w.used
		}
		over := float64(c.occupancy[w.owner]) - c.target[w.owner]
		if over > 0 {
			if bestIdx == -1 || over > bestOver || (over == bestOver && w.used < bestUsed) {
				bestIdx, bestOver, bestUsed = i, over, w.used
			}
		}
	}
	if float64(c.occupancy[requester]) >= c.target[requester] && ownIdx != -1 {
		if bestIdx == -1 || int(ways[bestIdx].owner) == requester ||
			float64(c.occupancy[requester])-c.target[requester] >= bestOver {
			return ownIdx
		}
	}
	if bestIdx != -1 {
		return bestIdx
	}
	if ownIdx != -1 {
		return ownIdx
	}
	return globalIdx
}

func TestSoACacheMatchesReference(t *testing.T) {
	cfg := Config{CapacityBytes: 256 << 10, Ways: 8, Partitions: 4}
	soa, err := NewPartitioned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefCache(cfg)
	rng := numeric.NewRand(42)
	lines := cfg.CapacityBytes / LineSize
	// Shifting targets mid-stream exercises every chooseVictim branch:
	// over-quota eviction, the requester-feeds-on-itself rule, and both
	// fallbacks.
	retarget := func() {
		w := make([]float64, cfg.Partitions)
		totalW := 0.0
		for i := range w {
			w[i] = rng.Float64() + 0.05
			totalW += w[i]
		}
		for i := range w {
			w[i] = w[i] / totalW * float64(lines)
		}
		if err := soa.SetTargets(w); err != nil {
			t.Fatal(err)
		}
		ref.SetTargets(w)
	}
	for step := 0; step < 300000; step++ {
		if step%25000 == 0 {
			retarget()
		}
		// Address pool ~2x the cache so hits, cold misses and capacity
		// misses all occur; tag 0 (low addresses) included deliberately —
		// the SoA layout must not confuse a zero tag with an empty way.
		addr := (rng.Uint64() % uint64(2*lines)) * LineSize
		owner := int(rng.Uint64() % uint64(cfg.Partitions))
		if got, want := soa.Access(addr, owner), ref.Access(addr, owner); got != want {
			t.Fatalf("step %d: Access(%#x, %d) = %v, reference %v", step, addr, owner, got, want)
		}
	}
	occ := soa.Occupancy()
	for p := range occ {
		if occ[p] != ref.occupancy[p] {
			t.Fatalf("occupancy[%d] = %d, reference %d (full: %v vs %v)", p, occ[p], ref.occupancy[p], occ, ref.occupancy)
		}
	}
	acc, miss := soa.Stats()
	if acc != 300000 {
		t.Fatalf("accesses = %d, want 300000", acc)
	}
	if miss == 0 || miss == acc {
		t.Fatalf("degenerate miss count %d of %d", miss, acc)
	}
}
