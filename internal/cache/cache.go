// Package cache implements the shared last-level cache substrate the paper
// evaluates on: a set-associative, LRU, way-unconstrained cache partitioned
// at 128 kB "region" granularity by a Futility-Scaling-style controller
// (Wang & Chen, MICRO 2014), UMON shadow-tag monitors (Qureshi & Patt,
// MICRO 2006) limited to stack distance 16, and Talus convexification
// (Beckmann & Sanchez, HPCA 2015) via address-hashed shadow partitions.
package cache

import "fmt"

// Standard geometry constants used across the reproduction (Table 1).
const (
	// LineSize is the L2 line size in bytes.
	LineSize = 64
	// RegionBytes is the partitioning granularity (one cache region).
	RegionBytes = 128 << 10
	// LinesPerRegion is RegionBytes expressed in lines.
	LinesPerRegion = RegionBytes / LineSize
)

// Config sizes a partitioned cache.
type Config struct {
	CapacityBytes int // total capacity
	Ways          int // associativity
	Partitions    int // number of partition IDs (two per core when Talus is used)
}

type line struct {
	tag   uint64
	owner int32
	valid bool
	used  uint64 // global LRU timestamp
}

// PartitionedCache is a set-associative LRU cache whose replacement policy
// biases evictions so that per-partition occupancies track per-partition
// line-count targets, emulating Futility Scaling's fine-grained partition
// enforcement without per-line futility counters.
type PartitionedCache struct {
	cfg       Config
	sets      int
	lines     []line // sets × ways
	clock     uint64
	occupancy []int     // lines held per partition
	target    []float64 // line target per partition
	accesses  uint64
	misses    uint64
}

// NewPartitioned validates cfg and builds the cache.
func NewPartitioned(cfg Config) (*PartitionedCache, error) {
	if cfg.CapacityBytes <= 0 || cfg.Ways <= 0 || cfg.Partitions <= 0 {
		return nil, fmt.Errorf("cache: non-positive config %+v", cfg)
	}
	linesTotal := cfg.CapacityBytes / LineSize
	if linesTotal%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: capacity %d not divisible into %d ways", cfg.CapacityBytes, cfg.Ways)
	}
	sets := linesTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	c := &PartitionedCache{
		cfg:       cfg,
		sets:      sets,
		lines:     make([]line, linesTotal),
		occupancy: make([]int, cfg.Partitions),
		target:    make([]float64, cfg.Partitions),
	}
	// Default: equal share.
	for i := range c.target {
		c.target[i] = float64(linesTotal) / float64(cfg.Partitions)
	}
	return c, nil
}

// SetTargets installs per-partition line-count targets. Targets may be
// fractional; their sum should not exceed the cache's line count.
func (c *PartitionedCache) SetTargets(linesPerPartition []float64) error {
	if len(linesPerPartition) != c.cfg.Partitions {
		return fmt.Errorf("cache: %d targets for %d partitions", len(linesPerPartition), c.cfg.Partitions)
	}
	total := 0.0
	for i, t := range linesPerPartition {
		if t < 0 {
			return fmt.Errorf("cache: negative target for partition %d", i)
		}
		total += t
	}
	if total > float64(len(c.lines))*1.0001 {
		return fmt.Errorf("cache: targets total %.0f lines exceed capacity %d", total, len(c.lines))
	}
	copy(c.target, linesPerPartition)
	return nil
}

// Access looks up addr on behalf of partition owner, updating replacement
// state, and reports whether it hit.
func (c *PartitionedCache) Access(addr uint64, owner int) bool {
	lineAddr := addr / LineSize
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr >> uint(log2(c.sets))
	base := set * c.cfg.Ways
	c.clock++
	c.accesses++

	ways := c.lines[base : base+c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.clock
			// A hit migrates ownership: the line now serves this
			// partition's reuse. Keeping occupancy in sync matters
			// when targets shift between epochs.
			if int(ways[i].owner) != owner {
				c.occupancy[ways[i].owner]--
				c.occupancy[owner]++
				ways[i].owner = int32(owner)
			}
			return true
		}
	}
	c.misses++
	victim := c.chooseVictim(ways, owner)
	if ways[victim].valid {
		c.occupancy[ways[victim].owner]--
	}
	ways[victim] = line{tag: tag, owner: int32(owner), valid: true, used: c.clock}
	c.occupancy[owner]++
	return false
}

// chooseVictim implements the futility-scaling bias: evict the LRU line of
// the most over-quota partition present in the set; if every partition in
// the set is at or under quota, fall back to evicting the requester's own
// LRU line (if present) or the set's global LRU line.
func (c *PartitionedCache) chooseVictim(ways []line, requester int) int {
	bestIdx := -1
	bestOver := 0.0
	var bestUsed uint64
	ownIdx, globalIdx := -1, -1
	var ownUsed, globalUsed uint64
	for i := range ways {
		w := &ways[i]
		if !w.valid {
			return i
		}
		if globalIdx == -1 || w.used < globalUsed {
			globalIdx, globalUsed = i, w.used
		}
		if int(w.owner) == requester && (ownIdx == -1 || w.used < ownUsed) {
			ownIdx, ownUsed = i, w.used
		}
		over := float64(c.occupancy[w.owner]) - c.target[w.owner]
		if over > 0 {
			if bestIdx == -1 || over > bestOver || (over == bestOver && w.used < bestUsed) {
				bestIdx, bestOver, bestUsed = i, over, w.used
			}
		}
	}
	// If the requester is over its own quota, it must feed on itself even
	// when other partitions are also over quota but less so.
	if float64(c.occupancy[requester]) >= c.target[requester] && ownIdx != -1 {
		if bestIdx == -1 || int(ways[bestIdx].owner) == requester ||
			float64(c.occupancy[requester])-c.target[requester] >= bestOver {
			return ownIdx
		}
	}
	if bestIdx != -1 {
		return bestIdx
	}
	if ownIdx != -1 {
		return ownIdx
	}
	return globalIdx
}

// Occupancy returns the current line count of each partition.
func (c *PartitionedCache) Occupancy() []int {
	out := make([]int, len(c.occupancy))
	copy(out, c.occupancy)
	return out
}

// Stats returns accesses and misses since construction.
func (c *PartitionedCache) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// ResetStats clears the access/miss counters but keeps cache contents.
func (c *PartitionedCache) ResetStats() {
	c.accesses, c.misses = 0, 0
}

// Sets returns the number of sets.
func (c *PartitionedCache) Sets() int { return c.sets }

// TotalLines returns the cache capacity in lines.
func (c *PartitionedCache) TotalLines() int { return len(c.lines) }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
