// Package cache implements the shared last-level cache substrate the paper
// evaluates on: a set-associative, LRU, way-unconstrained cache partitioned
// at 128 kB "region" granularity by a Futility-Scaling-style controller
// (Wang & Chen, MICRO 2014), UMON shadow-tag monitors (Qureshi & Patt,
// MICRO 2006) limited to stack distance 16, and Talus convexification
// (Beckmann & Sanchez, HPCA 2015) via address-hashed shadow partitions.
package cache

import "fmt"

// Standard geometry constants used across the reproduction (Table 1).
const (
	// LineSize is the L2 line size in bytes.
	LineSize = 64
	// RegionBytes is the partitioning granularity (one cache region).
	RegionBytes = 128 << 10
	// LinesPerRegion is RegionBytes expressed in lines.
	LinesPerRegion = RegionBytes / LineSize
)

// Config sizes a partitioned cache.
type Config struct {
	CapacityBytes int // total capacity
	Ways          int // associativity
	Partitions    int // number of partition IDs (two per core when Talus is used)
}

// PartitionedCache is a set-associative LRU cache whose replacement policy
// biases evictions so that per-partition occupancies track per-partition
// line-count targets, emulating Futility Scaling's fine-grained partition
// enforcement without per-line futility counters.
//
// Line state is stored struct-of-arrays — parallel tags/used/owners slices
// indexed by set*ways+way — so the hit scan touches one dense uint64 run and
// the branchy victim scan reads each field as a contiguous stride instead of
// hopping 24-byte structs. A line is invalid exactly when used == 0: the
// clock pre-increments before the first access, so every resident line
// carries a non-zero timestamp.
type PartitionedCache struct {
	cfg      Config
	sets     int
	tagShift uint // log2(sets): lineAddr >> tagShift == tag
	tags     []uint64
	used     []uint64 // global LRU timestamps; 0 marks an invalid line
	owners   []int32
	clock    uint64
	occupancy []int     // lines held per partition
	target    []float64 // line target per partition
	accesses  uint64
	misses    uint64
}

// NewPartitioned validates cfg and builds the cache.
func NewPartitioned(cfg Config) (*PartitionedCache, error) {
	if cfg.CapacityBytes <= 0 || cfg.Ways <= 0 || cfg.Partitions <= 0 {
		return nil, fmt.Errorf("cache: non-positive config %+v", cfg)
	}
	linesTotal := cfg.CapacityBytes / LineSize
	if linesTotal%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: capacity %d not divisible into %d ways", cfg.CapacityBytes, cfg.Ways)
	}
	sets := linesTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	c := &PartitionedCache{
		cfg:       cfg,
		sets:      sets,
		tagShift:  uint(log2(sets)),
		tags:      make([]uint64, linesTotal),
		used:      make([]uint64, linesTotal),
		owners:    make([]int32, linesTotal),
		occupancy: make([]int, cfg.Partitions),
		target:    make([]float64, cfg.Partitions),
	}
	// Default: equal share.
	for i := range c.target {
		c.target[i] = float64(linesTotal) / float64(cfg.Partitions)
	}
	return c, nil
}

// SetTargets installs per-partition line-count targets. Targets may be
// fractional; their sum should not exceed the cache's line count.
func (c *PartitionedCache) SetTargets(linesPerPartition []float64) error {
	if len(linesPerPartition) != c.cfg.Partitions {
		return fmt.Errorf("cache: %d targets for %d partitions", len(linesPerPartition), c.cfg.Partitions)
	}
	total := 0.0
	for i, t := range linesPerPartition {
		if t < 0 {
			return fmt.Errorf("cache: negative target for partition %d", i)
		}
		total += t
	}
	if total > float64(len(c.tags))*1.0001 {
		return fmt.Errorf("cache: targets total %.0f lines exceed capacity %d", total, len(c.tags))
	}
	copy(c.target, linesPerPartition)
	return nil
}

// Access looks up addr on behalf of partition owner, updating replacement
// state, and reports whether it hit.
func (c *PartitionedCache) Access(addr uint64, owner int) bool {
	lineAddr := addr / LineSize
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr >> c.tagShift
	base := set * c.cfg.Ways
	c.clock++
	c.accesses++

	tags := c.tags[base : base+c.cfg.Ways]
	for i := range tags {
		if tags[i] == tag && c.used[base+i] != 0 {
			c.used[base+i] = c.clock
			// A hit migrates ownership: the line now serves this
			// partition's reuse. Keeping occupancy in sync matters
			// when targets shift between epochs.
			if o := c.owners[base+i]; int(o) != owner {
				c.occupancy[o]--
				c.occupancy[owner]++
				c.owners[base+i] = int32(owner)
			}
			return true
		}
	}
	c.misses++
	v := base + c.chooseVictim(base, owner)
	if c.used[v] != 0 {
		c.occupancy[c.owners[v]]--
	}
	c.tags[v] = tag
	c.owners[v] = int32(owner)
	c.used[v] = c.clock
	c.occupancy[owner]++
	return false
}

// chooseVictim implements the futility-scaling bias: evict the LRU line of
// the most over-quota partition present in the set; if every partition in
// the set is at or under quota, fall back to evicting the requester's own
// LRU line (if present) or the set's global LRU line. The choice reads
// global per-partition occupancy, which is why a single chip cannot be
// set-sharded across goroutines without changing results.
func (c *PartitionedCache) chooseVictim(base, requester int) int {
	used := c.used[base : base+c.cfg.Ways]
	owners := c.owners[base : base+c.cfg.Ways]
	bestIdx := -1
	bestOver := 0.0
	var bestUsed uint64
	ownIdx, globalIdx := -1, -1
	var ownUsed, globalUsed uint64
	for i := range used {
		u := used[i]
		if u == 0 {
			return i
		}
		o := owners[i]
		if globalIdx == -1 || u < globalUsed {
			globalIdx, globalUsed = i, u
		}
		if int(o) == requester && (ownIdx == -1 || u < ownUsed) {
			ownIdx, ownUsed = i, u
		}
		over := float64(c.occupancy[o]) - c.target[o]
		if over > 0 {
			if bestIdx == -1 || over > bestOver || (over == bestOver && u < bestUsed) {
				bestIdx, bestOver, bestUsed = i, over, u
			}
		}
	}
	// If the requester is over its own quota, it must feed on itself even
	// when other partitions are also over quota but less so.
	if float64(c.occupancy[requester]) >= c.target[requester] && ownIdx != -1 {
		if bestIdx == -1 || int(owners[bestIdx]) == requester ||
			float64(c.occupancy[requester])-c.target[requester] >= bestOver {
			return ownIdx
		}
	}
	if bestIdx != -1 {
		return bestIdx
	}
	if ownIdx != -1 {
		return ownIdx
	}
	return globalIdx
}

// Occupancy returns the current line count of each partition.
func (c *PartitionedCache) Occupancy() []int {
	out := make([]int, len(c.occupancy))
	copy(out, c.occupancy)
	return out
}

// Stats returns accesses and misses since construction.
func (c *PartitionedCache) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// ResetStats clears the access/miss counters but keeps cache contents.
func (c *PartitionedCache) ResetStats() {
	c.accesses, c.misses = 0, 0
}

// Sets returns the number of sets.
func (c *PartitionedCache) Sets() int { return c.sets }

// TotalLines returns the cache capacity in lines.
func (c *PartitionedCache) TotalLines() int { return len(c.tags) }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
