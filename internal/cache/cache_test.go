package cache

import (
	"math"
	"testing"

	"rebudget/internal/trace"
)

func TestNewPartitionedValidation(t *testing.T) {
	if _, err := NewPartitioned(Config{CapacityBytes: 0, Ways: 16, Partitions: 2}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 0, Partitions: 2}); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 0}); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := NewPartitioned(Config{CapacityBytes: 3 << 19, Ways: 16, Partitions: 2}); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	c, err := NewPartitioned(Config{CapacityBytes: 4 << 20, Ways: 16, Partitions: 8})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if c.Sets() != 4096 {
		t.Errorf("sets = %d, want 4096", c.Sets())
	}
	if c.TotalLines() != 65536 {
		t.Errorf("lines = %d, want 65536", c.TotalLines())
	}
}

func TestSetTargetsValidation(t *testing.T) {
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	if err := c.SetTargets([]float64{100}); err == nil {
		t.Error("wrong target count accepted")
	}
	if err := c.SetTargets([]float64{-1, 100}); err == nil {
		t.Error("negative target accepted")
	}
	if err := c.SetTargets([]float64{1e9, 1e9}); err == nil {
		t.Error("over-capacity targets accepted")
	}
	if err := c.SetTargets([]float64{8192, 8192}); err != nil {
		t.Errorf("valid targets rejected: %v", err)
	}
}

func TestLRUWithinWorkingSet(t *testing.T) {
	// Single partition, working set smaller than capacity: after warmup
	// everything hits.
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 1})
	const lines = 4096 // 256 kB working set in a 1 MB cache
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*LineSize), 0)
		}
	}
	c.ResetStats()
	for i := 0; i < lines; i++ {
		if !c.Access(uint64(i*LineSize), 0) {
			t.Fatalf("unexpected miss on warm line %d", i)
		}
	}
}

func TestThrashingBeyondCapacity(t *testing.T) {
	// Cyclic sweep over 2× capacity in a direct-mapped-ish pattern should
	// miss every time under LRU.
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 1})
	lines := 2 * c.TotalLines()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*LineSize), 0)
		}
	}
	c.ResetStats()
	for i := 0; i < lines; i++ {
		c.Access(uint64(i*LineSize), 0)
	}
	acc, miss := c.Stats()
	if acc != uint64(lines) {
		t.Fatalf("accesses = %d", acc)
	}
	if float64(miss)/float64(acc) < 0.99 {
		t.Errorf("cyclic thrash miss ratio = %g, want ~1", float64(miss)/float64(acc))
	}
}

func TestPartitionConvergesToTargets(t *testing.T) {
	c, _ := NewPartitioned(Config{CapacityBytes: 2 << 20, Ways: 16, Partitions: 2})
	total := float64(c.TotalLines())
	// 75/25 split.
	if err := c.SetTargets([]float64{0.75 * total, 0.25 * total}); err != nil {
		t.Fatal(err)
	}
	// Both partitions stream over huge working sets, demanding all the
	// cache they can get.
	g0 := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 1 << 17}}, Seed: 1, Namespace: 1})
	g1 := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 1 << 17}}, Seed: 2, Namespace: 2})
	for i := 0; i < 600000; i++ {
		c.Access(g0.Next(), 0)
		c.Access(g1.Next(), 1)
	}
	occ := c.Occupancy()
	got0 := float64(occ[0]) / total
	if math.Abs(got0-0.75) > 0.05 {
		t.Errorf("partition 0 occupancy = %.3f of cache, want 0.75±0.05", got0)
	}
	if occ[0]+occ[1] != c.TotalLines() {
		t.Errorf("occupancies %v do not fill the cache (%d lines)", occ, c.TotalLines())
	}
}

func TestPartitionRetargetingShiftsOccupancy(t *testing.T) {
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	total := float64(c.TotalLines())
	drive := func(n int, seedBase uint64) {
		g0 := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 1 << 16}}, Seed: seedBase, Namespace: 1})
		g1 := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 1 << 16}}, Seed: seedBase + 1, Namespace: 2})
		for i := 0; i < n; i++ {
			c.Access(g0.Next(), 0)
			c.Access(g1.Next(), 1)
		}
	}
	c.SetTargets([]float64{0.9 * total, 0.1 * total})
	drive(300000, 1)
	occA := c.Occupancy()
	c.SetTargets([]float64{0.1 * total, 0.9 * total})
	drive(300000, 10)
	occB := c.Occupancy()
	if occB[0] >= occA[0] {
		t.Errorf("partition 0 did not shrink after retarget: %d -> %d", occA[0], occB[0])
	}
	if math.Abs(float64(occB[1])/total-0.9) > 0.05 {
		t.Errorf("partition 1 occupancy after retarget = %.3f, want 0.9±0.05", float64(occB[1])/total)
	}
}

func TestPartitionIsolation(t *testing.T) {
	// A small, cache-friendly partition must keep hitting even while a
	// streaming partition floods the cache.
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	total := float64(c.TotalLines())
	c.SetTargets([]float64{0.5 * total, 0.5 * total})
	friendly := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 2048}}, Seed: 3, Namespace: 1})
	hostile := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Streaming, Weight: 1}}, Seed: 4, Namespace: 2})
	// Warm up.
	for i := 0; i < 200000; i++ {
		c.Access(friendly.Next(), 0)
		c.Access(hostile.Next(), 1)
	}
	hits, accs := 0, 0
	for i := 0; i < 100000; i++ {
		if c.Access(friendly.Next(), 0) {
			hits++
		}
		accs++
		c.Access(hostile.Next(), 1)
	}
	hitRatio := float64(hits) / float64(accs)
	if hitRatio < 0.95 {
		t.Errorf("friendly partition hit ratio = %.3f under streaming pressure, want >= 0.95", hitRatio)
	}
}

func TestOwnershipMigrationKeepsOccupancyConsistent(t *testing.T) {
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	// Same addresses accessed by both partitions.
	for i := 0; i < 10000; i++ {
		c.Access(uint64(i%512)*LineSize, 0)
		c.Access(uint64(i%512)*LineSize, 1)
	}
	occ := c.Occupancy()
	sum := occ[0] + occ[1]
	// Occupancy must equal the number of valid lines (512 distinct lines).
	if sum != 512 {
		t.Errorf("occupancy sum = %d, want 512", sum)
	}
}

func TestStatsAndReset(t *testing.T) {
	c, _ := NewPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 1})
	for i := 0; i < 100; i++ {
		c.Access(uint64(i)*LineSize, 0)
	}
	acc, miss := c.Stats()
	if acc != 100 || miss != 100 {
		t.Errorf("stats = %d/%d, want 100/100 cold misses", acc, miss)
	}
	c.ResetStats()
	acc, miss = c.Stats()
	if acc != 0 || miss != 0 {
		t.Error("ResetStats did not clear counters")
	}
	// Warm lines now hit without counting old history.
	for i := 0; i < 100; i++ {
		c.Access(uint64(i)*LineSize, 0)
	}
	acc, miss = c.Stats()
	if acc != 100 || miss != 0 {
		t.Errorf("warm stats = %d/%d, want 100/0", acc, miss)
	}
}
