package cache

import (
	"math"
	"testing"

	"rebudget/internal/trace"
)

func TestNewWayPartitionedValidation(t *testing.T) {
	if _, err := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 4, Partitions: 8}); err == nil {
		t.Error("more partitions than ways accepted")
	}
	c, err := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 4})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, q := range c.Quotas() {
		if q != 4 {
			t.Errorf("initial quota[%d] = %d, want 4", i, q)
		}
	}
}

func TestWayQuotaRounding(t *testing.T) {
	c, _ := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	linesPerWay := float64(c.Sets())
	// 75/25 split in lines quantises to 12/4 ways.
	if err := c.SetTargets([]float64{0.75 * 16 * linesPerWay, 0.25 * 16 * linesPerWay}); err != nil {
		t.Fatal(err)
	}
	q := c.Quotas()
	if q[0]+q[1] != 16 {
		t.Fatalf("quotas %v do not use all ways", q)
	}
	if q[0] != 12 || q[1] != 4 {
		t.Errorf("quotas %v, want [12 4]", q)
	}
	// A tiny non-zero target keeps a floor of one way.
	if err := c.SetTargets([]float64{15.9 * linesPerWay, 0.1 * linesPerWay}); err != nil {
		t.Fatal(err)
	}
	q = c.Quotas()
	if q[1] < 1 {
		t.Errorf("floor way lost: %v", q)
	}
	if q[0]+q[1] != 16 {
		t.Errorf("quotas %v do not use all ways", q)
	}
	if err := c.SetTargets([]float64{-1, 0}); err == nil {
		t.Error("negative target accepted")
	}
	if err := c.SetTargets([]float64{1}); err == nil {
		t.Error("wrong target count accepted")
	}
}

func TestWayPartitionIsolation(t *testing.T) {
	// The friendly partition's quota (8 ways = 512 kB) holds its working
	// set; the streaming partition cannot steal beyond its own 8 ways.
	c, _ := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	friendly := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 2048}}, Seed: 3, Namespace: 1})
	hostile := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Streaming, Weight: 1}}, Seed: 4, Namespace: 2})
	for i := 0; i < 200000; i++ {
		c.Access(friendly.Next(), 0)
		c.Access(hostile.Next(), 1)
	}
	hits := 0
	const probe = 100000
	for i := 0; i < probe; i++ {
		if c.Access(friendly.Next(), 0) {
			hits++
		}
		c.Access(hostile.Next(), 1)
	}
	if ratio := float64(hits) / probe; ratio < 0.95 {
		t.Errorf("friendly hit ratio %g under streaming pressure, want ≥ 0.95", ratio)
	}
}

func TestWayPartitionGranularityLoss(t *testing.T) {
	// The ablation's point: a fractional target (e.g. 2.5 regions) is
	// unachievable at way granularity. With 16 ways over 1 MB a way is
	// 64 kB (1024 lines); a 1.5-way target quantises to 1 or 2 ways.
	c, _ := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	linesPerWay := float64(c.Sets())
	if err := c.SetTargets([]float64{1.5 * linesPerWay, 14.5 * linesPerWay}); err != nil {
		t.Fatal(err)
	}
	q := c.Quotas()
	got := float64(q[0])
	if got != 1 && got != 2 {
		t.Fatalf("1.5-way target quantised to %v ways", got)
	}
	if math.Abs(got-1.5) < 0.4 {
		t.Fatalf("test premise broken: quantisation error should be ≥ 0.5 way")
	}
}

func TestWayPartitionOccupancyTracksQuota(t *testing.T) {
	c, _ := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	linesPerWay := float64(c.Sets())
	c.SetTargets([]float64{12 * linesPerWay, 4 * linesPerWay})
	g0 := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 1 << 16}}, Seed: 1, Namespace: 1})
	g1 := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: 1 << 16}}, Seed: 2, Namespace: 2})
	for i := 0; i < 400000; i++ {
		c.Access(g0.Next(), 0)
		c.Access(g1.Next(), 1)
	}
	occ := c.Occupancy()
	frac0 := float64(occ[0]) / float64(c.TotalLines())
	if math.Abs(frac0-0.75) > 0.05 {
		t.Errorf("partition 0 occupancy %g of cache, want ≈ 12/16", frac0)
	}
}

func TestWayPartitionStatsAndInterfaces(t *testing.T) {
	c, _ := NewWayPartitioned(Config{CapacityBytes: 1 << 20, Ways: 16, Partitions: 2})
	for i := 0; i < 100; i++ {
		c.Access(uint64(i)*LineSize, 0)
	}
	acc, miss := c.Stats()
	if acc != 100 || miss != 100 {
		t.Errorf("stats %d/%d, want 100/100", acc, miss)
	}
	c.ResetStats()
	if a, m := c.Stats(); a != 0 || m != 0 {
		t.Error("ResetStats failed")
	}
	if c.WayBytes() != c.Sets()*LineSize {
		t.Error("WayBytes inconsistent")
	}
	if c.TotalLines() != 1<<20/LineSize {
		t.Errorf("TotalLines = %d", c.TotalLines())
	}
}
