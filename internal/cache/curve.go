package cache

import (
	"fmt"

	"rebudget/internal/numeric"
)

// MissCurve is a measured or modelled miss ratio as a function of allocated
// cache regions. Index r holds the miss ratio of a cache of r regions;
// index 0 (no cache) is conventionally 1.
type MissCurve struct {
	Ratio []float64 // Ratio[r] = miss ratio with r regions, r = 0..MaxRegions
}

// NewMissCurve validates the per-region ratios (index 0 = zero regions).
func NewMissCurve(ratio []float64) (*MissCurve, error) {
	if len(ratio) < 2 {
		return nil, fmt.Errorf("cache: miss curve needs at least 2 points, got %d", len(ratio))
	}
	for i, m := range ratio {
		if m < 0 || m > 1 {
			return nil, fmt.Errorf("cache: miss ratio out of range at %d regions: %g", i, m)
		}
	}
	return &MissCurve{Ratio: append([]float64(nil), ratio...)}, nil
}

// MaxRegions returns the largest allocation the curve covers.
func (mc *MissCurve) MaxRegions() int { return len(mc.Ratio) - 1 }

// At returns the miss ratio for a (possibly fractional) number of regions by
// linear interpolation, clamping to the profiled range.
func (mc *MissCurve) At(regions float64) float64 {
	if regions <= 0 {
		return mc.Ratio[0]
	}
	max := float64(mc.MaxRegions())
	if regions >= max {
		return mc.Ratio[mc.MaxRegions()]
	}
	lo := int(regions)
	frac := regions - float64(lo)
	return mc.Ratio[lo] + frac*(mc.Ratio[lo+1]-mc.Ratio[lo])
}

// Monotone returns a copy with any measurement noise removed so the curve is
// non-increasing in allocated capacity (more cache never hurts under LRU
// inclusion; violations are sampling noise).
func (mc *MissCurve) Monotone() *MissCurve {
	out := append([]float64(nil), mc.Ratio...)
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1] {
			out[i] = out[i-1]
		}
	}
	return &MissCurve{Ratio: out}
}

// Repair sanitizes a raw miss-ratio vector in place so it satisfies the
// invariants NewMissCurve checks and the allocation pipeline assumes:
// every entry finite, within [0, 1], and non-increasing in allocated
// capacity. Non-finite or out-of-range entries inherit their left
// neighbour (conventionally 1 at index 0, the no-cache miss ratio), then a
// monotonicity sweep clamps any remaining upticks. It reports whether
// anything was changed — false means the input was already a valid curve,
// so fault-free runs pass through untouched.
func Repair(ratio []float64) bool {
	changed := false
	for i, m := range ratio {
		if m != m || m < 0 || m > 1 { // NaN, Inf and range violations alike
			if i == 0 {
				ratio[i] = 1
			} else {
				ratio[i] = ratio[i-1]
			}
			changed = true
		}
	}
	for i := 1; i < len(ratio); i++ {
		if ratio[i] > ratio[i-1] {
			ratio[i] = ratio[i-1]
			changed = true
		}
	}
	return changed
}

// Points converts the curve into (regions, missRatio) samples.
func (mc *MissCurve) Points() []numeric.Point {
	pts := make([]numeric.Point, len(mc.Ratio))
	for i, m := range mc.Ratio {
		pts[i] = numeric.Point{X: float64(i), Y: m}
	}
	return pts
}
