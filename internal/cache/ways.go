package cache

import (
	"fmt"
	"math"
)

// Partitioner is the contract the simulator needs from a partitioned
// last-level cache. PartitionedCache (Futility-Scaling-style, 128 kB
// regions) is the paper's mechanism; WayPartitionedCache (UCP-style strict
// way quotas) is the coarse-grained alternative the paper's choice of
// Futility Scaling implicitly argues against, kept for the granularity
// ablation.
type Partitioner interface {
	Access(addr uint64, owner int) bool
	SetTargets(linesPerPartition []float64) error
	Occupancy() []int
	Stats() (accesses, misses uint64)
	ResetStats()
	TotalLines() int
	Sets() int
}

var (
	_ Partitioner = (*PartitionedCache)(nil)
	_ Partitioner = (*WayPartitionedCache)(nil)
)

type line struct {
	tag   uint64
	owner int32
	valid bool
	used  uint64 // global LRU timestamp
}

// WayPartitionedCache enforces strict per-set way quotas (Qureshi & Patt's
// UCP enforcement): partition p may hold at most quota[p] lines in any set.
// Line-count targets quantise to whole ways — with a 64-core 32 MB cache a
// way is 1 MB, eight regions — which is exactly the granularity loss the
// paper avoids by adopting Futility Scaling (§4.1.1).
type WayPartitionedCache struct {
	cfg       Config
	sets      int
	tagShift  uint
	lines     []line
	clock     uint64
	quota     []int // ways per partition
	occupancy []int
	counts    []int // per-miss scratch: valid lines per partition in the set
	accesses  uint64
	misses    uint64
}

// NewWayPartitioned builds the cache with an initially equal way split.
func NewWayPartitioned(cfg Config) (*WayPartitionedCache, error) {
	base, err := NewPartitioned(cfg) // reuse geometry validation
	if err != nil {
		return nil, err
	}
	c := &WayPartitionedCache{
		cfg:       cfg,
		sets:      base.sets,
		tagShift:  base.tagShift,
		lines:     make([]line, base.TotalLines()),
		quota:     make([]int, cfg.Partitions),
		occupancy: make([]int, cfg.Partitions),
		counts:    make([]int, cfg.Partitions),
	}
	if cfg.Ways < cfg.Partitions {
		return nil, fmt.Errorf("cache: %d ways cannot host %d way-partitions", cfg.Ways, cfg.Partitions)
	}
	for i := range c.quota {
		c.quota[i] = cfg.Ways / cfg.Partitions
	}
	// Leftover ways go to the first partitions.
	for i := 0; i < cfg.Ways%cfg.Partitions; i++ {
		c.quota[i]++
	}
	return c, nil
}

// WayBytes is the capacity of one way — the partitioning granularity.
func (c *WayPartitionedCache) WayBytes() int {
	return c.sets * LineSize
}

// SetTargets quantises line-count targets to whole ways (largest-remainder
// rounding under the total way budget). Partitions with non-zero targets
// keep at least one way so no client is starved outright.
func (c *WayPartitionedCache) SetTargets(linesPerPartition []float64) error {
	if len(linesPerPartition) != c.cfg.Partitions {
		return fmt.Errorf("cache: %d targets for %d partitions", len(linesPerPartition), c.cfg.Partitions)
	}
	linesPerWay := float64(c.sets)
	type share struct {
		idx   int
		whole int
		frac  float64
	}
	shares := make([]share, len(linesPerPartition))
	used := 0
	for i, t := range linesPerPartition {
		if t < 0 {
			return fmt.Errorf("cache: negative target for partition %d", i)
		}
		ways := t / linesPerWay
		w := int(math.Floor(ways))
		if w == 0 && t > 0 {
			w = 1 // floor guarantee
		}
		if w > c.cfg.Ways {
			w = c.cfg.Ways
		}
		shares[i] = share{idx: i, whole: w, frac: ways - math.Floor(ways)}
		used += w
	}
	// Hand out any remaining ways by largest fractional remainder;
	// claw back overshoot from the smallest remainders.
	for used < c.cfg.Ways {
		best := -1
		for i := range shares {
			if best == -1 || shares[i].frac > shares[best].frac {
				best = i
			}
		}
		shares[best].whole++
		shares[best].frac = 0
		used++
	}
	for used > c.cfg.Ways {
		worst := -1
		for i := range shares {
			if shares[i].whole <= 1 {
				continue
			}
			if worst == -1 || shares[i].frac < shares[worst].frac {
				worst = i
			}
		}
		if worst == -1 {
			return fmt.Errorf("cache: cannot fit way quotas into %d ways", c.cfg.Ways)
		}
		shares[worst].whole--
		shares[worst].frac = 1
		used--
	}
	for _, s := range shares {
		c.quota[s.idx] = s.whole
	}
	return nil
}

// Quotas returns the current per-partition way quotas.
func (c *WayPartitionedCache) Quotas() []int {
	return append([]int(nil), c.quota...)
}

// Access looks up addr for the owner partition under strict way quotas.
func (c *WayPartitionedCache) Access(addr uint64, owner int) bool {
	lineAddr := addr / LineSize
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr >> c.tagShift
	base := set * c.cfg.Ways
	ways := c.lines[base : base+c.cfg.Ways]
	c.clock++
	c.accesses++

	held := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == tag {
			w.used = c.clock
			return true
		}
		if w.valid && int(w.owner) == owner {
			held++
		}
	}
	c.misses++
	victim := -1
	var victimUsed uint64
	if held < c.quota[owner] {
		// Under quota in this set: fill an invalid way, else steal the
		// LRU line of a partition exceeding its quota here.
		counts := c.counts
		for i := range counts {
			counts[i] = 0
		}
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
			counts[ways[i].owner]++
		}
		if victim < 0 {
			for i := range ways {
				w := &ways[i]
				if counts[w.owner] > c.quota[w.owner] && (victim < 0 || w.used < victimUsed) {
					victim, victimUsed = i, w.used
				}
			}
		}
	}
	if victim < 0 {
		// At quota (or nothing to steal): replace own LRU line.
		for i := range ways {
			w := &ways[i]
			if w.valid && int(w.owner) == owner && (victim < 0 || w.used < victimUsed) {
				victim, victimUsed = i, w.used
			}
		}
	}
	if victim < 0 {
		// Quota zero and no stealable line: bypass (count the miss).
		return false
	}
	if ways[victim].valid {
		c.occupancy[ways[victim].owner]--
	}
	ways[victim] = line{tag: tag, owner: int32(owner), valid: true, used: c.clock}
	c.occupancy[owner]++
	return false
}

// Occupancy returns per-partition line counts.
func (c *WayPartitionedCache) Occupancy() []int {
	return append([]int(nil), c.occupancy...)
}

// Stats returns accesses and misses since construction or ResetStats.
func (c *WayPartitionedCache) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// ResetStats clears counters, keeping contents.
func (c *WayPartitionedCache) ResetStats() { c.accesses, c.misses = 0, 0 }

// TotalLines returns capacity in lines.
func (c *WayPartitionedCache) TotalLines() int { return len(c.lines) }

// Sets returns the set count.
func (c *WayPartitionedCache) Sets() int { return c.sets }
