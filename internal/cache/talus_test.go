package cache

import (
	"math"
	"testing"
	"testing/quick"
)

// mcfLikeCurve reproduces the Figure 2 mcf shape: flat high miss ratio until
// the working set fits at 12 regions, then near-zero.
func mcfLikeCurve() *MissCurve {
	ratio := make([]float64, 17)
	for r := 0; r <= 16; r++ {
		if r < 12 {
			ratio[r] = 0.8
		} else {
			ratio[r] = 0.02
		}
	}
	mc, _ := NewMissCurve(ratio)
	return mc
}

func TestMissCurveValidation(t *testing.T) {
	if _, err := NewMissCurve([]float64{1}); err == nil {
		t.Error("single-point curve accepted")
	}
	if _, err := NewMissCurve([]float64{1, -0.1}); err == nil {
		t.Error("negative ratio accepted")
	}
	if _, err := NewMissCurve([]float64{1, 1.5}); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestMissCurveAt(t *testing.T) {
	mc, _ := NewMissCurve([]float64{1, 0.5, 0.25})
	cases := []struct{ r, want float64 }{
		{-1, 1}, {0, 1}, {0.5, 0.75}, {1, 0.5}, {1.5, 0.375}, {2, 0.25}, {3, 0.25},
	}
	for _, c := range cases {
		if got := mc.At(c.r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.r, got, c.want)
		}
	}
	if mc.MaxRegions() != 2 {
		t.Errorf("MaxRegions = %d", mc.MaxRegions())
	}
}

func TestMissCurveMonotone(t *testing.T) {
	mc, _ := NewMissCurve([]float64{1, 0.6, 0.7, 0.3})
	m := mc.Monotone()
	want := []float64{1, 0.6, 0.6, 0.3}
	for i := range want {
		if m.Ratio[i] != want[i] {
			t.Errorf("Monotone[%d] = %g, want %g", i, m.Ratio[i], want[i])
		}
	}
	// Original untouched.
	if mc.Ratio[2] != 0.7 {
		t.Error("Monotone mutated the original curve")
	}
}

func TestTalusRemovesCliff(t *testing.T) {
	tal, err := NewTalus(mcfLikeCurve())
	if err != nil {
		t.Fatal(err)
	}
	if !tal.IsConcaveHitCurve() {
		t.Fatal("talus hull not concave/non-decreasing")
	}
	// Raw curve is flat at 0.8 for 6 regions; the hull must do much better.
	raw := tal.RawMissAt(6)
	hull := tal.MissAt(6)
	if raw < 0.79 {
		t.Fatalf("test premise broken: raw miss at 6 = %g", raw)
	}
	if hull > 0.45 {
		t.Errorf("talus miss at 6 regions = %g, want well below raw 0.8", hull)
	}
	// Hull meets raw curve at the PoIs.
	for _, p := range tal.PoIs() {
		if math.Abs(tal.MissAt(p)-tal.RawMissAt(p)) > 1e-9 {
			t.Errorf("hull does not touch raw curve at PoI %g", p)
		}
	}
}

func TestTalusLinearInterpolationBetweenPoIs(t *testing.T) {
	tal, _ := NewTalus(mcfLikeCurve())
	pois := tal.PoIs()
	if len(pois) < 2 {
		t.Fatal("expected at least 2 PoIs")
	}
	// Between consecutive PoIs the hull is exactly linear.
	for i := 1; i < len(pois); i++ {
		lo, hi := pois[i-1], pois[i]
		mid := (lo + hi) / 2
		want := (tal.MissAt(lo) + tal.MissAt(hi)) / 2
		if math.Abs(tal.MissAt(mid)-want) > 1e-9 {
			t.Errorf("hull not linear between PoIs %g and %g", lo, hi)
		}
	}
}

func TestTalusSplitGeometry(t *testing.T) {
	tal, _ := NewTalus(mcfLikeCurve())
	for _, target := range []float64{0.5, 3, 6, 9, 11.5, 13} {
		s := tal.Split(target)
		if s.Rho < 0 || s.Rho > 1 {
			t.Errorf("target %g: rho = %g out of range", target, s.Rho)
		}
		totalLines := s.LoLines + s.HiLines
		if math.Abs(totalLines-target*LinesPerRegion) > 1e-6*LinesPerRegion {
			// Degenerate splits clamp to a PoI; only check when interpolating.
			if s.Rho != 1 {
				t.Errorf("target %g: shadow lines %g != target %g",
					target, totalLines, target*LinesPerRegion)
			}
		}
		if s.LoRegions > s.HiRegions {
			t.Errorf("target %g: PoIs out of order: %g > %g", target, s.LoRegions, s.HiRegions)
		}
	}
}

func TestTalusSplitAtPoIIsDegenerate(t *testing.T) {
	tal, _ := NewTalus(mcfLikeCurve())
	for _, p := range tal.PoIs() {
		s := tal.Split(p)
		if s.Rho != 1 {
			t.Errorf("split at PoI %g should be degenerate, got rho=%g", p, s.Rho)
		}
	}
}

func TestTalusSplitInterpolatesMiss(t *testing.T) {
	// The blended miss ratio ρ·m(lo) + (1-ρ)·m(hi) must equal the hull.
	tal, _ := NewTalus(mcfLikeCurve())
	for target := 0.5; target <= 15.5; target += 0.5 {
		s := tal.Split(target)
		blend := s.Rho*tal.RawMissAt(s.LoRegions) + (1-s.Rho)*tal.RawMissAt(s.HiRegions)
		if math.Abs(blend-tal.MissAt(target)) > 1e-9 {
			t.Errorf("target %g: blended miss %g != hull miss %g", target, blend, tal.MissAt(target))
		}
	}
}

func TestTalusNilCurve(t *testing.T) {
	if _, err := NewTalus(nil); err == nil {
		t.Error("nil curve accepted")
	}
}

// Property: for any valid random miss curve, the Talus hull is concave,
// non-decreasing in hits, below the raw curve in misses, and bounded [0,1].
func TestTalusHullProperties(t *testing.T) {
	f := func(raw [17]float64) bool {
		ratio := make([]float64, len(raw))
		for i, v := range raw {
			v = math.Abs(math.Mod(v, 1))
			if math.IsNaN(v) {
				v = 0.5
			}
			ratio[i] = v
		}
		mc, err := NewMissCurve(ratio)
		if err != nil {
			return false
		}
		tal, err := NewTalus(mc)
		if err != nil {
			return false
		}
		if !tal.IsConcaveHitCurve() {
			return false
		}
		for r := 0.0; r <= 16; r += 0.25 {
			h := tal.MissAt(r)
			if h < -1e-9 || h > 1+1e-9 {
				return false
			}
			if h > tal.RawMissAt(r)+1e-9 {
				return false // hull may never be worse than raw
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
