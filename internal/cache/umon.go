package cache

import "fmt"

// UMON is a sampled shadow-tag utility monitor in the style of Qureshi &
// Patt's UMON-DSS. It observes one core's L2 access stream and estimates the
// miss-rate curve that core would see if it ran alone in a cache of
// 1..MaxRegions regions. The stack distance is capped (16 regions in the
// paper, i.e. 128 kB–2 MB) and sets are sampled at a fixed rate to keep the
// hardware budget under 1% of the L2 (§5.1).
type UMON struct {
	maxRegions  int
	sampleShift uint       // sample sets where (set % 2^shift) == 0
	sets        int        // shadow sets modelled (full, pre-sampling)
	setMask     uint64     // sets-1: lineAddr & setMask == set (sets is a power of two)
	setShift    uint       // log2(sets): lineAddr >> setShift == tag
	sampleMask  uint64     // rejects unsampled accesses with one AND on lineAddr
	tags        [][]uint64 // per sampled set: LRU-ordered tags, MRU first
	hits        []uint64   // hits at region stack distance d (0-based)
	missed      uint64
	total       uint64
}

// NewUMON builds a monitor covering capacities up to maxRegions regions,
// sampling one in 2^sampleShift shadow sets.
func NewUMON(maxRegions int, sampleShift uint) (*UMON, error) {
	if maxRegions < 1 {
		return nil, fmt.Errorf("cache: UMON needs maxRegions >= 1, got %d", maxRegions)
	}
	if sampleShift > 16 {
		return nil, fmt.Errorf("cache: UMON sample shift %d too large", sampleShift)
	}
	// The shadow structure models a cache with one region per "way":
	// LinesPerRegion sets of maxRegions-associativity fully cover one
	// region per stack-distance column.
	u := &UMON{
		maxRegions:  maxRegions,
		sampleShift: sampleShift,
		sets:        LinesPerRegion,
		setMask:     LinesPerRegion - 1, // LinesPerRegion is a power of two
		setShift:    uint(log2(LinesPerRegion)),
		sampleMask:  (1 << sampleShift) - 1,
		hits:        make([]uint64, maxRegions),
	}
	sampled := u.sets >> sampleShift
	if sampled == 0 {
		return nil, fmt.Errorf("cache: sample shift %d leaves no sampled sets", sampleShift)
	}
	u.tags = make([][]uint64, sampled)
	return u, nil
}

// Observe feeds one access (full byte address) to the monitor.
func (u *UMON) Observe(addr uint64) {
	// Sampling rejects all but one in 2^sampleShift sets; since the set is
	// the low setShift bits of the line address, the reject test needs only
	// the low sample bits — the hot path is one shift and one AND.
	lineAddr := addr / LineSize
	if lineAddr&u.sampleMask != 0 {
		return
	}
	set := int(lineAddr & u.setMask)
	u.total++
	idx := set >> u.sampleShift
	tag := lineAddr >> u.setShift
	list := u.tags[idx]
	for i, t := range list {
		if t == tag {
			u.hits[i]++
			// Move to MRU position.
			copy(list[1:i+1], list[:i])
			list[0] = tag
			return
		}
	}
	u.missed++
	if len(list) < u.maxRegions {
		list = append(list, 0)
	}
	copy(list[1:], list)
	list[0] = tag
	u.tags[idx] = list
}

// Curve returns the estimated miss-rate curve for 0..maxRegions regions.
// With no observations the curve is pessimistically all-miss.
func (u *UMON) Curve() *MissCurve {
	ratio := make([]float64, u.maxRegions+1)
	if u.total == 0 {
		for i := range ratio {
			ratio[i] = 1
		}
		mc, _ := NewMissCurve(ratio)
		return mc
	}
	misses := u.missed
	for d := u.maxRegions - 1; d >= 0; d-- {
		misses += u.hits[d]
		ratio[d] = float64(misses) / float64(u.total)
	}
	// ratio[r] currently holds misses for capacity r regions: a cache of r
	// regions hits stack distances < r. ratio[maxRegions] = cold misses.
	ratio[u.maxRegions] = float64(u.missed) / float64(u.total)
	mc, _ := NewMissCurve(ratio)
	return mc
}

// Reset clears counters but keeps shadow tags warm, matching how the
// hardware monitor is drained every scheduling epoch.
func (u *UMON) Reset() {
	for i := range u.hits {
		u.hits[i] = 0
	}
	u.missed, u.total = 0, 0
}

// Clear wipes counters AND shadow tags — used on a context switch, when
// the monitored process changes and stale reuse history would poison the
// next utility estimate.
func (u *UMON) Clear() {
	u.Reset()
	for i := range u.tags {
		u.tags[i] = nil
	}
}

// Observations returns the number of sampled accesses since the last Reset.
func (u *UMON) Observations() uint64 { return u.total }

// StorageBits estimates the monitor's hardware cost in bits (tag store plus
// counters), used to check the <1%-of-L2 budget claim from §5.1.
func (u *UMON) StorageBits() int {
	const tagBits, counterBits = 40, 32
	entries := len(u.tags) * u.maxRegions
	return entries*tagBits + (u.maxRegions+2)*counterBits
}
