package cache

import (
	"math"
	"testing"

	"rebudget/internal/trace"
)

func TestNewUMONValidation(t *testing.T) {
	if _, err := NewUMON(0, 0); err == nil {
		t.Error("zero regions accepted")
	}
	if _, err := NewUMON(16, 30); err == nil {
		t.Error("absurd sample shift accepted")
	}
	if _, err := NewUMON(16, 5); err != nil {
		t.Errorf("valid UMON rejected: %v", err)
	}
}

func TestUMONEmptyCurveIsAllMiss(t *testing.T) {
	u, _ := NewUMON(16, 5)
	curve := u.Curve()
	for r, m := range curve.Ratio {
		if m != 1 {
			t.Errorf("empty UMON ratio[%d] = %g, want 1", r, m)
		}
	}
}

func TestUMONStreaming(t *testing.T) {
	u, _ := NewUMON(16, 0)
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Streaming, Weight: 1}}, Seed: 1})
	for i := 0; i < 200000; i++ {
		u.Observe(g.Next())
	}
	curve := u.Curve()
	if curve.Ratio[16] < 0.999 {
		t.Errorf("streaming should never hit: ratio[16] = %g", curve.Ratio[16])
	}
}

func TestUMONCyclicCliff(t *testing.T) {
	// Working set of 4 regions: miss curve should be ~1 below 4 regions
	// (after its own warmup) and ~0 at 5+ regions.
	u, _ := NewUMON(16, 0)
	ws := 4 * LinesPerRegion
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: float64(ws)}}, Seed: 2})
	for i := 0; i < 4*ws; i++ { // warm shadow tags
		u.Observe(g.Next())
	}
	u.Reset()
	for i := 0; i < 8*ws; i++ {
		u.Observe(g.Next())
	}
	curve := u.Curve()
	if curve.Ratio[3] < 0.95 {
		t.Errorf("ratio[3 regions] = %g, want ~1 (below working set)", curve.Ratio[3])
	}
	if curve.Ratio[5] > 0.05 {
		t.Errorf("ratio[5 regions] = %g, want ~0 (working set fits)", curve.Ratio[5])
	}
}

func TestUMONGeometricMatchesAnalytic(t *testing.T) {
	u, _ := NewUMON(16, 0)
	mean := 1.5 * LinesPerRegion // reuse mostly within ~2 regions
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Geometric, Weight: 1, Param: mean}}, Seed: 3})
	for i := 0; i < 100000; i++ {
		u.Observe(g.Next())
	}
	u.Reset()
	for i := 0; i < 400000; i++ {
		u.Observe(g.Next())
	}
	curve := u.Curve()
	for _, regions := range []int{1, 2, 4, 8} {
		want := g.MissRatio(regions * RegionBytes)
		got := curve.Ratio[regions]
		if math.Abs(got-want) > 0.08 {
			t.Errorf("UMON miss at %d regions = %.3f, analytic %.3f", regions, got, want)
		}
	}
}

func TestUMONCurveMonotone(t *testing.T) {
	u, _ := NewUMON(16, 2)
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{
		{Kind: trace.Geometric, Weight: 0.5, Param: 3000},
		{Kind: trace.Cyclic, Weight: 0.3, Param: 6 * LinesPerRegion},
		{Kind: trace.Streaming, Weight: 0.2},
	}, Seed: 4})
	for i := 0; i < 500000; i++ {
		u.Observe(g.Next())
	}
	curve := u.Curve()
	for r := 1; r < len(curve.Ratio); r++ {
		if curve.Ratio[r] > curve.Ratio[r-1]+1e-12 {
			t.Errorf("UMON curve not monotone at %d: %g > %g", r, curve.Ratio[r], curve.Ratio[r-1])
		}
	}
}

func TestUMONSamplingApproximatesFull(t *testing.T) {
	mk := func(shift uint) *MissCurve {
		u, err := NewUMON(16, shift)
		if err != nil {
			t.Fatal(err)
		}
		g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{
			{Kind: trace.Geometric, Weight: 1, Param: 2 * LinesPerRegion},
		}, Seed: 5})
		for i := 0; i < 600000; i++ {
			u.Observe(g.Next())
		}
		return u.Curve()
	}
	full := mk(0)
	sampled := mk(5) // rate 32, as in the paper
	for _, r := range []int{1, 2, 4, 8, 16} {
		if math.Abs(full.Ratio[r]-sampled.Ratio[r]) > 0.06 {
			t.Errorf("sampled UMON deviates at %d regions: full %.3f vs sampled %.3f",
				r, full.Ratio[r], sampled.Ratio[r])
		}
	}
}

func TestUMONStorageBudget(t *testing.T) {
	// Paper (§5.1): with sampling rate 32 the shadow tags take ~3.6 kB per
	// core, under 1% of the per-core 512 kB L2 slice.
	u, _ := NewUMON(16, 5)
	bytes := u.StorageBits() / 8
	if bytes > 8<<10 {
		t.Errorf("UMON storage = %d bytes, want within the same order as the paper's 3.6 kB", bytes)
	}
	perCoreL2 := 512 << 10
	if float64(bytes)/float64(perCoreL2) > 0.01*2 {
		t.Errorf("UMON storage fraction %.4f exceeds ~1%% budget", float64(bytes)/float64(perCoreL2))
	}
}

func TestUMONResetKeepsTagsWarm(t *testing.T) {
	u, _ := NewUMON(16, 0)
	ws := 2 * LinesPerRegion
	g := trace.MustNew(trace.Config{LineSize: 64, Mix: []trace.Component{{Kind: trace.Cyclic, Weight: 1, Param: float64(ws)}}, Seed: 6})
	for i := 0; i < 4*ws; i++ {
		u.Observe(g.Next())
	}
	u.Reset()
	if u.Observations() != 0 {
		t.Fatal("Reset did not clear observation count")
	}
	for i := 0; i < ws; i++ {
		u.Observe(g.Next())
	}
	// Tags were warm, so a 3-region cache fits the 2-region working set.
	if m := u.Curve().Ratio[3]; m > 0.05 {
		t.Errorf("post-reset warm miss ratio = %g, want ~0", m)
	}
}
