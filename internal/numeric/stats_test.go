package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %g, want 4", got)
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %g", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %g", Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{10}, 37); got != 10 {
		t.Errorf("single-element percentile = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Median = %g, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Error("Clamp misbehaves")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("tiny absolute diff should be equal")
	}
	if !AlmostEqual(1e12, 1e12*(1+1e-10), 1e-9) {
		t.Error("tiny relative diff should be equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("1 and 2 are not almost equal")
	}
}

// Property: Percentile is monotone in p and bounded by Min/Max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw [9]float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs = append(xs, math.Mod(x, 1000))
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		a, b := Percentile(xs, p1), Percentile(xs, p2)
		return a <= b+1e-9 && a >= Min(xs)-1e-9 && b <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) did not cover all values: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandNormRoughMoments(t *testing.T) {
	r := NewRand(1234)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean too far from 0: %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance too far from 1: %g", variance)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(5)
	child := r.Split()
	if child.Uint64() == r.Uint64() {
		t.Error("child stream should not mirror parent")
	}
}
