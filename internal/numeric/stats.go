package numeric

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	ys := make([]float64, len(xs))
	copy(ys, xs)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	t := rank - float64(lo)
	return ys[lo] + t*(ys[hi]-ys[lo])
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AlmostEqual reports whether a and b differ by less than tol in absolute
// terms or relative to their magnitudes.
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
