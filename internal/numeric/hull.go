package numeric

import "sort"

// UpperConvexHull returns the upper convex hull of the given samples as a
// subset of the input points, sorted by increasing X. The hull is the
// smallest concave piecewise-linear majorant touching the samples; it is the
// construction Talus uses to convexify a cache-utility curve (the retained
// points are the "points of interest").
//
// Input points with duplicate X keep only the one with the largest Y.
func UpperConvexHull(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y > ps[j].Y
	})
	// Drop duplicate X, keeping the max-Y representative (first after sort).
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p.X != uniq[len(uniq)-1].X {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) <= 2 {
		out := make([]Point, len(uniq))
		copy(out, uniq)
		return out
	}
	hull := make([]Point, 0, len(uniq))
	for _, p := range uniq {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) >= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull
}

// cross computes the z-component of (b-a) × (c-a). A non-negative value
// means b lies on or below the segment a→c, i.e. b is not an upper-hull
// vertex.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// HullPWL builds the concave piecewise-linear function through the upper
// convex hull of the samples.
func HullPWL(points []Point) (*PWL, error) {
	return NewPWL(UpperConvexHull(points))
}
