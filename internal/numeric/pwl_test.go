package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPWLValidation(t *testing.T) {
	if _, err := NewPWL(nil); err == nil {
		t.Fatal("expected error for empty knots")
	}
	if _, err := NewPWL([]Point{{0, 0}, {0, 1}}); err == nil {
		t.Fatal("expected error for duplicate X")
	}
	if _, err := NewPWL([]Point{{0, math.NaN()}}); err == nil {
		t.Fatal("expected error for NaN knot")
	}
	if _, err := NewPWL([]Point{{math.Inf(1), 0}}); err == nil {
		t.Fatal("expected error for infinite knot")
	}
	if _, err := NewPWL([]Point{{0, 0}, {1, 1}}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPWLSortsKnots(t *testing.T) {
	p := MustPWL([]Point{{2, 4}, {0, 0}, {1, 1}})
	ks := p.Knots()
	for i := 1; i < len(ks); i++ {
		if ks[i].X <= ks[i-1].X {
			t.Fatalf("knots not sorted: %v", ks)
		}
	}
}

func TestPWLEvalInterpolatesAndClamps(t *testing.T) {
	p := MustPWL([]Point{{0, 0}, {2, 4}, {4, 4}})
	cases := []struct{ x, want float64 }{
		{-1, 0},  // clamp left
		{0, 0},   // knot
		{1, 2},   // interior interpolation
		{2, 4},   // knot
		{3, 4},   // flat segment
		{5, 4},   // clamp right
		{0.5, 1}, // interior
	}
	for _, c := range cases {
		if got := p.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestPWLSingleKnot(t *testing.T) {
	p := MustPWL([]Point{{3, 7}})
	for _, x := range []float64{-10, 3, 10} {
		if got := p.Eval(x); got != 7 {
			t.Errorf("Eval(%g) = %g, want 7", x, got)
		}
	}
	if p.Slope(3) != 0 {
		t.Errorf("Slope of constant function should be 0")
	}
}

func TestPWLShapePredicates(t *testing.T) {
	concave := MustPWL([]Point{{0, 0}, {1, 2}, {2, 3}, {3, 3.5}})
	if !concave.IsConcave() || !concave.IsNonDecreasing() {
		t.Error("expected concave non-decreasing")
	}
	cliff := MustPWL([]Point{{0, 0.2}, {1, 0.2}, {2, 1.0}})
	if cliff.IsConcave() {
		t.Error("cliff curve misclassified as concave")
	}
	decreasing := MustPWL([]Point{{0, 1}, {1, 0.5}})
	if decreasing.IsNonDecreasing() {
		t.Error("decreasing curve misclassified as non-decreasing")
	}
}

func TestPWLSlope(t *testing.T) {
	p := MustPWL([]Point{{0, 0}, {1, 2}, {3, 3}})
	if got := p.Slope(0.5); math.Abs(got-2) > 1e-12 {
		t.Errorf("Slope(0.5) = %g, want 2", got)
	}
	if got := p.Slope(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Slope(2) = %g, want 0.5", got)
	}
	if got := p.Slope(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Slope at knot should use right segment: got %g", got)
	}
	if p.Slope(-1) != 0 || p.Slope(4) != 0 {
		t.Error("out-of-domain slope should be 0")
	}
}

func TestPWLDomainBounds(t *testing.T) {
	p := MustPWL([]Point{{-2, 0}, {5, 1}})
	if p.Min() != -2 || p.Max() != 5 {
		t.Errorf("Min/Max = %g/%g, want -2/5", p.Min(), p.Max())
	}
}

// Property: Eval is within the [min Y, max Y] envelope of the knots.
func TestPWLEvalWithinEnvelope(t *testing.T) {
	f := func(ys [5]float64, x float64) bool {
		knots := make([]Point, 0, 5)
		for i, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = float64(i)
			}
			knots = append(knots, Point{X: float64(i), Y: y})
		}
		p := MustPWL(knots)
		lo, hi := knots[0].Y, knots[0].Y
		for _, k := range knots {
			lo = math.Min(lo, k.Y)
			hi = math.Max(hi, k.Y)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		got := p.Eval(x)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Eval at a knot returns the knot Y exactly.
func TestPWLEvalAtKnots(t *testing.T) {
	f := func(ys [6]float64) bool {
		knots := make([]Point, 0, 6)
		for i, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = 0
			}
			knots = append(knots, Point{X: float64(i) * 1.5, Y: math.Mod(y, 1e6)})
		}
		p := MustPWL(knots)
		for _, k := range knots {
			if p.Eval(k.X) != k.Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
