package numeric

import "sort"

// PWLEval is a memoizing evaluator over a PWL for hot paths that probe the
// same function many times at identical or nearby points — the
// finite-difference pattern of the market's marginal-utility probes. It
// caches the last (x, y) pair and the last segment hit, so a repeated x
// costs one comparison and a neighbouring x a couple, falling back to the
// binary search otherwise. Results are bit-identical to PWL.Eval.
//
// A PWLEval is NOT safe for concurrent use; each goroutine (in the market
// engine: each player, which is owned by exactly one worker per round)
// needs its own evaluator. The underlying PWL stays immutable and shareable.
type PWLEval struct {
	p          *PWL
	seg        int // candidate upper knot index of the containing segment
	lastX      float64
	lastY      float64
	hasLast    bool
	first, end Point // domain boundary knots, hoisted out of the hot path
}

// Evaluator returns a fresh memoizing evaluator for the function.
func (p *PWL) Evaluator() *PWLEval {
	return &PWLEval{p: p, seg: 1, first: p.knots[0], end: p.knots[len(p.knots)-1]}
}

// Eval returns f(x) exactly as PWL.Eval would.
func (e *PWLEval) Eval(x float64) float64 {
	if e.hasLast && x == e.lastX {
		return e.lastY
	}
	ks := e.p.knots
	var y float64
	switch {
	case x <= e.first.X:
		y = e.first.Y
	case x >= e.end.X:
		y = e.end.Y
	default:
		// PWL.Eval picks the smallest i with ks[i].X >= x; the containing
		// segment is (i-1, i), i.e. ks[i-1].X < x <= ks[i].X. Try the cached
		// segment and its neighbours before the full binary search.
		i := e.seg
		if !(i >= 1 && i < len(ks) && ks[i-1].X < x && x <= ks[i].X) {
			switch {
			case i+1 < len(ks) && ks[i].X < x && x <= ks[i+1].X:
				i++
			case i >= 2 && ks[i-2].X < x && x <= ks[i-1].X:
				i--
			default:
				i = sort.Search(len(ks), func(j int) bool { return ks[j].X >= x })
			}
			e.seg = i
		}
		a, b := ks[i-1], ks[i]
		t := (x - a.X) / (b.X - a.X)
		y = a.Y + t*(b.Y-a.Y)
	}
	e.lastX, e.lastY, e.hasLast = x, y, true
	return y
}
