// Package numeric provides small numerical building blocks shared by the
// market, cache and application-model packages: piecewise-linear functions,
// upper convex hulls of sampled curves, summary statistics and deterministic
// random sources.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a 2-D sample of a scalar function y = f(x).
type Point struct {
	X, Y float64
}

// PWL is a continuous piecewise-linear function defined by a sequence of
// knots with strictly increasing X. Evaluation outside the knot range clamps
// to the boundary values, which matches how resource-utility curves behave
// (no extrapolated benefit beyond the largest profiled allocation).
type PWL struct {
	knots []Point
}

// NewPWL builds a piecewise-linear function from the given knots. Knots are
// sorted by X; duplicate X values are rejected.
func NewPWL(knots []Point) (*PWL, error) {
	if len(knots) == 0 {
		return nil, errors.New("numeric: PWL needs at least one knot")
	}
	ks := make([]Point, len(knots))
	copy(ks, knots)
	sort.Slice(ks, func(i, j int) bool { return ks[i].X < ks[j].X })
	for i := 1; i < len(ks); i++ {
		if ks[i].X == ks[i-1].X {
			return nil, fmt.Errorf("numeric: duplicate PWL knot at x=%g", ks[i].X)
		}
	}
	for _, k := range ks {
		if math.IsNaN(k.X) || math.IsNaN(k.Y) || math.IsInf(k.X, 0) || math.IsInf(k.Y, 0) {
			return nil, fmt.Errorf("numeric: non-finite PWL knot (%g,%g)", k.X, k.Y)
		}
	}
	return &PWL{knots: ks}, nil
}

// MustPWL is like NewPWL but panics on error. It is intended for statically
// known knot sets (tests, built-in application models).
func MustPWL(knots []Point) *PWL {
	p, err := NewPWL(knots)
	if err != nil {
		panic(err)
	}
	return p
}

// Knots returns a copy of the function's knots in increasing X order.
func (p *PWL) Knots() []Point {
	out := make([]Point, len(p.knots))
	copy(out, p.knots)
	return out
}

// Eval returns f(x), clamping x to the knot range.
func (p *PWL) Eval(x float64) float64 {
	ks := p.knots
	if x <= ks[0].X {
		return ks[0].Y
	}
	if x >= ks[len(ks)-1].X {
		return ks[len(ks)-1].Y
	}
	// Binary search for the segment containing x.
	i := sort.Search(len(ks), func(i int) bool { return ks[i].X >= x })
	a, b := ks[i-1], ks[i]
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// Min and Max return the knot-range bounds of the domain.
func (p *PWL) Min() float64 { return p.knots[0].X }

// Max returns the largest knot X.
func (p *PWL) Max() float64 { return p.knots[len(p.knots)-1].X }

// IsNonDecreasing reports whether the function never decreases across knots.
func (p *PWL) IsNonDecreasing() bool {
	for i := 1; i < len(p.knots); i++ {
		if p.knots[i].Y < p.knots[i-1].Y-1e-12 {
			return false
		}
	}
	return true
}

// IsConcave reports whether successive segment slopes are non-increasing,
// i.e. the piecewise-linear function is concave.
func (p *PWL) IsConcave() bool {
	const eps = 1e-9
	prev := math.Inf(1)
	for i := 1; i < len(p.knots); i++ {
		dx := p.knots[i].X - p.knots[i-1].X
		slope := (p.knots[i].Y - p.knots[i-1].Y) / dx
		if slope > prev+eps {
			return false
		}
		prev = slope
	}
	return true
}

// Slope returns the left-to-right slope of the segment containing x. At a
// knot the slope of the right-hand segment is returned; beyond the domain the
// slope is zero (values clamp).
func (p *PWL) Slope(x float64) float64 {
	ks := p.knots
	if x < ks[0].X || x >= ks[len(ks)-1].X {
		return 0
	}
	i := sort.Search(len(ks), func(i int) bool { return ks[i].X > x })
	a, b := ks[i-1], ks[i]
	return (b.Y - a.Y) / (b.X - a.X)
}
