package numeric

import (
	"math/rand"
	"testing"
)

// TestPWLEvalMatchesEval sweeps probe patterns that exercise every branch
// of the memoizing evaluator — repeated x, cached-segment hits, ±1
// neighbour steps, binary-search fallbacks, knot boundaries and
// out-of-domain clamps — and demands bitwise equality with PWL.Eval.
func TestPWLEvalMatchesEval(t *testing.T) {
	knots := []Point{{0, 0}, {1, 0.9}, {2.5, 1.4}, {4, 1.7}, {7, 2.1}, {10, 2.2}}
	p, err := NewPWL(knots)
	if err != nil {
		t.Fatal(err)
	}
	e := p.Evaluator()

	var probes []float64
	// Exact knot coordinates and just-off values (segment boundary cases).
	for _, k := range knots {
		probes = append(probes, k.X, k.X-1e-12, k.X+1e-12)
	}
	// Out-of-domain clamps.
	probes = append(probes, -5, -0.001, 10.001, 100)
	// Monotone sweep (neighbour-segment fast path) and its reverse.
	for x := -1.0; x <= 11; x += 0.07 {
		probes = append(probes, x)
	}
	for x := 11.0; x >= -1; x -= 0.11 {
		probes = append(probes, x)
	}
	// Random jumps (binary-search fallback) with immediate repeats
	// (last-(x,y) memo hit).
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		x := rng.Float64()*14 - 2
		probes = append(probes, x, x)
	}

	for _, x := range probes {
		want := p.Eval(x)
		got := e.Eval(x)
		if got != want {
			t.Fatalf("Eval(%v): evaluator %v != PWL %v", x, got, want)
		}
	}
}

// TestPWLEvalTwoKnots covers the degenerate single-segment function, where
// the neighbour shortcuts can never apply.
func TestPWLEvalTwoKnots(t *testing.T) {
	p, err := NewPWL([]Point{{1, 2}, {3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	e := p.Evaluator()
	for _, x := range []float64{0, 1, 1.5, 2, 2, 2.999, 3, 4} {
		if got, want := e.Eval(x), p.Eval(x); got != want {
			t.Fatalf("Eval(%v): evaluator %v != PWL %v", x, got, want)
		}
	}
}
