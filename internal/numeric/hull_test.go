package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUpperConvexHullCliff(t *testing.T) {
	// An mcf-like cliff: flat then a jump. The hull should bridge the flat
	// region with a straight line from the first point to the cliff top.
	var pts []Point
	for i := 1; i <= 10; i++ {
		pts = append(pts, Point{X: float64(i), Y: 0.2})
	}
	pts = append(pts, Point{X: 12, Y: 1.0}, Point{X: 16, Y: 1.0})
	hull := UpperConvexHull(pts)
	p := MustPWL(hull)
	if !p.IsConcave() {
		t.Fatalf("hull not concave: %v", hull)
	}
	if !p.IsNonDecreasing() {
		t.Fatalf("hull not non-decreasing: %v", hull)
	}
	// The hull at x=6 should be well above the raw 0.2 value.
	if v := p.Eval(6); v <= 0.2 {
		t.Errorf("hull did not bridge cliff: Eval(6)=%g", v)
	}
	// Endpoints preserved.
	if p.Eval(1) != 0.2 || p.Eval(16) != 1.0 {
		t.Errorf("hull endpoints moved: %g, %g", p.Eval(1), p.Eval(16))
	}
}

func TestUpperConvexHullAlreadyConcave(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0.5}, {2, 0.8}, {3, 0.95}, {4, 1.0}}
	hull := UpperConvexHull(pts)
	if len(hull) != len(pts) {
		t.Fatalf("concave input should be unchanged, got %d of %d points", len(hull), len(pts))
	}
}

func TestUpperConvexHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull := UpperConvexHull(pts)
	// Interior collinear points are redundant; only endpoints must remain.
	if hull[0] != (Point{0, 0}) || hull[len(hull)-1] != (Point{3, 3}) {
		t.Fatalf("collinear hull endpoints wrong: %v", hull)
	}
	p := MustPWL(hull)
	if math.Abs(p.Eval(1.5)-1.5) > 1e-12 {
		t.Errorf("collinear hull evaluation wrong: %g", p.Eval(1.5))
	}
}

func TestUpperConvexHullDuplicateX(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0.3}, {1, 0.9}, {2, 1.0}}
	hull := UpperConvexHull(pts)
	p := MustPWL(hull)
	if v := p.Eval(1); v < 0.9-1e-12 {
		t.Errorf("duplicate X should keep max Y: Eval(1)=%g", v)
	}
}

func TestUpperConvexHullSmallInputs(t *testing.T) {
	if got := UpperConvexHull(nil); got != nil {
		t.Errorf("nil input should give nil, got %v", got)
	}
	one := UpperConvexHull([]Point{{1, 2}})
	if len(one) != 1 || one[0] != (Point{1, 2}) {
		t.Errorf("single point hull wrong: %v", one)
	}
	two := UpperConvexHull([]Point{{2, 5}, {1, 3}})
	if len(two) != 2 || two[0].X != 1 || two[1].X != 2 {
		t.Errorf("two point hull wrong: %v", two)
	}
}

// Property: the hull is concave, majorizes every input point, and touches
// the extreme-X points.
func TestUpperConvexHullProperties(t *testing.T) {
	f := func(raw [12]float64) bool {
		pts := make([]Point, 0, len(raw))
		for i, y := range raw {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = 0
			}
			// Compress into a sane range to avoid precision blowups.
			y = math.Mod(y, 100)
			pts = append(pts, Point{X: float64(i), Y: y})
		}
		hull := UpperConvexHull(pts)
		p, err := NewPWL(hull)
		if err != nil {
			return false
		}
		if !p.IsConcave() {
			return false
		}
		for _, q := range pts {
			if p.Eval(q.X) < q.Y-1e-6 {
				return false
			}
		}
		return p.Eval(pts[0].X) == pts[0].Y || p.Eval(pts[len(pts)-1].X) == pts[len(pts)-1].Y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
