package router

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// Cross-shard migration under churn: sessions step continuously through the
// router while one backend drains and dies mid-epoch. Its sessions must
// resume on the surviving shard from their snapshots — epochs monotone, no
// lost progress — with only transient errors during the handoff. Run with
// -race (make race-router): the interesting failures here are concurrent.
func TestMigrationUnderChurn(t *testing.T) {
	st, err := server.NewFileSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Snapshots: st}
	shardA := newShard(t, cfg)
	shardB := newShard(t, cfg)
	rt, err := New(Config{
		Backends:      []string{shardA.ts.URL, shardB.ts.URL},
		ProbeInterval: 20 * time.Millisecond,
		Logger:        discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := newRouterServer(t, rt)
	rc := client.New(rts)
	ctx := context.Background()

	const nSessions = 6
	ids := make([]string, nSessions)
	onA := 0
	for i := range ids {
		ids[i] = fmt.Sprintf("churn-%d", i)
		if rt.ring.Primary(ids[i]) == shardA.ts.URL {
			onA++
		}
		mustCreate(t, rc, fig3Spec(ids[i]))
	}
	if onA == 0 || onA == nSessions {
		t.Fatalf("degenerate placement (%d/%d on shard A) — churn would not migrate anything", onA, nSessions)
	}

	// Steppers: step every session continuously, tolerating the transient
	// errors of the handoff window (404 before the snapshot lands, 503
	// while no route is up) but never an epoch regression. Each stepper
	// runs until it has landed several epochs *after* the kill — the only
	// way to do that for a shard-A session is to rehydrate on shard B.
	killed := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, nSessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			deadline := time.Now().Add(30 * time.Second)
			last, postKill := int64(0), 0
			for postKill < 3 {
				if time.Now().After(deadline) {
					errs[i] = fmt.Errorf("session %s stuck at epoch %d after the kill", id, last)
					return
				}
				v, err := rc.StepEpoch(ctx, id)
				if err != nil {
					time.Sleep(25 * time.Millisecond)
					continue
				}
				if v.Epochs < last {
					errs[i] = fmt.Errorf("session %s epochs regressed %d -> %d", id, last, v.Epochs)
					return
				}
				last = v.Epochs
				select {
				case <-killed:
					postKill++
				default:
				}
			}
		}(i, id)
	}

	// Mid-churn: drain shard A (healthz flips 503, prober sees it), then
	// kill it — Close() writes every resident session's snapshot to the
	// shared store, which is what shard B rehydrates from.
	time.Sleep(150 * time.Millisecond)
	shardA.srv.StartDrain()
	time.Sleep(100 * time.Millisecond) // a probe period: router notices the drain
	shardA.ts.Close()
	shardA.srv.Close()
	close(killed)

	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every session — including the migrated ones — finished on shard B.
	if got := shardB.srv.Sessions(); got != nSessions {
		t.Fatalf("survivor holds %d sessions, want all %d", got, nSessions)
	}
	if rt.met.failovers.Load() == 0 {
		t.Fatal("failover counter did not move during the churn")
	}
	// The survivor's metrics show actual snapshot restores.
	metrics, err := client.New(shardB.ts.URL).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `rebudgetd_snapshots_total{op="restore"}`) {
		t.Fatal("survivor shard reports no snapshot restores — sessions were recreated, not migrated")
	}
}

// newRouterServer mounts a router on httptest and returns its base URL.
func newRouterServer(t *testing.T, rt *Router) string {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return ts.URL
}
