package router

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// Cross-shard migration under churn: sessions step continuously through the
// router while one backend drains and dies mid-epoch. Its sessions must
// resume on the surviving shard from their snapshots — epochs monotone, no
// lost progress — with only transient errors during the handoff. Run with
// -race (make race-router): the interesting failures here are concurrent.
func TestMigrationUnderChurn(t *testing.T) {
	st, err := server.NewFileSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Snapshots: st}
	shardA := newShard(t, cfg)
	shardB := newShard(t, cfg)
	rt, err := New(Config{
		Backends:      []string{shardA.ts.URL, shardB.ts.URL},
		ProbeInterval: 20 * time.Millisecond,
		Logger:        discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := newRouterServer(t, rt)
	rc := client.New(rts)
	ctx := context.Background()

	// Placement hashes the shards' random httptest ports, so a fixed id
	// set can degenerate onto one shard; pick ids so both shards hold
	// sessions and the kill below actually forces migrations.
	const nSessions = 6
	ids := make([]string, 0, nSessions)
	onA := 0
	for i := 0; len(ids) < nSessions; i++ {
		if i >= 1000 {
			t.Fatal("could not spread sessions across both shards")
		}
		id := fmt.Sprintf("churn-%d", i)
		a := rt.ring.Primary(id) == shardA.ts.URL
		if len(ids) == nSessions-1 && (onA == 0 || onA == len(ids)) {
			if (onA == 0) != a { // last slot goes to the still-empty shard
				continue
			}
		}
		if a {
			onA++
		}
		ids = append(ids, id)
		mustCreate(t, rc, fig3Spec(id))
	}

	// Steppers: step every session continuously, tolerating the transient
	// errors of the handoff window (404 before the snapshot lands, 503
	// while no route is up) but never an epoch regression. Each stepper
	// runs until it has landed several epochs *after* the kill — the only
	// way to do that for a shard-A session is to rehydrate on shard B.
	killed := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, nSessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			deadline := time.Now().Add(30 * time.Second)
			last, postKill := int64(0), 0
			for postKill < 3 {
				if time.Now().After(deadline) {
					errs[i] = fmt.Errorf("session %s stuck at epoch %d after the kill", id, last)
					return
				}
				v, err := rc.StepEpoch(ctx, id)
				if err != nil {
					time.Sleep(25 * time.Millisecond)
					continue
				}
				if v.Epochs < last {
					errs[i] = fmt.Errorf("session %s epochs regressed %d -> %d", id, last, v.Epochs)
					return
				}
				last = v.Epochs
				select {
				case <-killed:
					postKill++
				default:
				}
			}
		}(i, id)
	}

	// Mid-churn: drain shard A (healthz flips 503, prober sees it), then
	// kill it — Close() writes every resident session's snapshot to the
	// shared store, which is what shard B rehydrates from.
	time.Sleep(150 * time.Millisecond)
	shardA.srv.StartDrain()
	time.Sleep(100 * time.Millisecond) // a probe period: router notices the drain
	shardA.ts.Close()
	shardA.srv.Close()
	close(killed)

	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every session — including the migrated ones — finished on shard B.
	if got := shardB.srv.Sessions(); got != nSessions {
		t.Fatalf("survivor holds %d sessions, want all %d", got, nSessions)
	}
	if rt.met.failovers.Load() == 0 {
		t.Fatal("failover counter did not move during the churn")
	}
	// The survivor's metrics show actual snapshot restores.
	metrics, err := client.New(shardB.ts.URL).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `rebudgetd_snapshots_total{op="restore"}`) {
		t.Fatal("survivor shard reports no snapshot restores — sessions were recreated, not migrated")
	}
}

// newRouterServer mounts a router on httptest and returns its base URL.
func newRouterServer(t *testing.T, rt *Router) string {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return ts.URL
}
