package router

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rebudget/internal/chaos"
	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// newChaosTier boots n shards plus a router whose proxy data path runs
// through a chaos transport; probes stay on a clean path, so injected
// faults are gray failures by construction.
func newChaosTier(t *testing.T, n int, rtCfg Config) ([]*shard, *Router, *client.Client) {
	t.Helper()
	shards := make([]*shard, n)
	bases := make([]string, n)
	for i := range shards {
		shards[i] = newShard(t, server.Config{})
		bases[i] = shards[i].ts.URL
	}
	rtCfg.Backends = bases
	rtCfg.ProbeInterval = time.Hour // tests probe explicitly
	rtCfg.Logger = discardLog()
	rt, err := New(rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return shards, rt, client.New(ts.URL)
}

// idPrimariedOn finds a session id whose ring primary is base.
func idPrimariedOn(t *testing.T, rt *Router, base string) string {
	t.Helper()
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("cx-%d", i)
		if rt.ring.Primary(id) == base {
			return id
		}
	}
	t.Fatalf("no id primaried on %s", base)
	return ""
}

// A partition the prober can't see (gray failure) opens the victim's
// breaker through passive detection, the open breaker short-circuits the
// first pass, and a heal plus one good probe walks it back to closed via
// a half-open trial.
func TestRouterBreakerGrayFailure(t *testing.T) {
	ctx := context.Background()
	tr := chaos.NewTransport(nil, nil)
	shards, rt, rc := newChaosTier(t, 2, Config{
		Transport: tr,
		Breaker:   BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour},
	})
	victimBase := shards[0].ts.URL
	stranded := idPrimariedOn(t, rt, victimBase)
	mustCreate(t, rc, fig3Spec(stranded))

	tr.Partition(victimBase)
	// Two failed-over requests: passive detection feeds the breaker. A
	// probe sweep between them flips the victim back to probe-green —
	// probes bypass the partition, which is the gray failure — so the
	// second request actually re-attempts the data path.
	for i := 0; i < 2; i++ {
		if i > 0 {
			rt.probeAll(ctx)
		}
		_, err := rc.GetSession(ctx, stranded)
		ae, ok := err.(*client.APIError)
		if !ok || ae.Status != 404 {
			t.Fatalf("partitioned request %d: want failover 404 from survivor, got %v", i, err)
		}
	}
	victim := rt.backends[victimBase]
	if got := victim.br.currentState(); got != breakerOpen {
		t.Fatalf("victim breaker = %v after %d transport failures, want open", got, 2)
	}

	// Pretend the prober's view is stale-green (exactly what a gray
	// failure looks like): the open breaker must reject on the first
	// pass, so the request is served without re-touching the victim.
	victim.healthy.Store(true)
	if _, err := rc.GetSession(ctx, stranded); err == nil {
		t.Fatal("stranded session resolved with its shard partitioned")
	}
	if rt.met.breakerRejects.Load() == 0 {
		t.Fatal("open breaker did not short-circuit the first pass")
	}
	text, err := rc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rebudget_router_breaker_state{shard="` + victimBase + `",state="open"} 1`,
		`rebudget_router_breaker_transitions_total{shard="` + victimBase + `",to="open"}`,
		"rebudget_router_breaker_rejections_total",
		"rebudget_router_retries_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Heal. A good probe grants a half-open trial; the next request is
	// that trial, succeeds on the victim (which still holds the
	// session), and closes the breaker.
	tr.Heal(victimBase)
	rt.probeAll(ctx)
	if got := victim.br.currentState(); got != breakerHalfOpen {
		t.Fatalf("breaker = %v after heal+probe, want half_open", got)
	}
	if _, err := rc.GetSession(ctx, stranded); err != nil {
		t.Fatalf("healed shard's session unreachable: %v", err)
	}
	if got := victim.br.currentState(); got != breakerClosed {
		t.Fatalf("breaker = %v after successful trial, want closed", got)
	}
}

// With every shard partitioned, the per-request retry budget bounds how
// many attempts one request may burn: first attempt free, RetryBudget
// retries, then a 503 — it never walks the whole ring.
func TestRouterRetryBudgetBoundsAttempts(t *testing.T) {
	ctx := context.Background()
	in := chaos.New(chaos.Config{LatencyRate: 1e-12}) // enabled, effectively silent
	tr := chaos.NewTransport(in, nil)
	shards, _, rc := newChaosTier(t, 3, Config{Transport: tr, RetryBudget: 1})
	for _, s := range shards {
		tr.Partition(s.ts.URL)
	}
	_, err := rc.GetSession(ctx, "anything")
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != 503 {
		t.Fatalf("want 503 with all shards partitioned, got %v", err)
	}
	if !strings.Contains(ae.Message, "retry budget") {
		t.Fatalf("503 body should say the retry budget ran out: %q", ae.Message)
	}
	if got := in.Stats().PartitionDrops; got != 2 {
		t.Fatalf("request burned %d attempts, want 2 (1 + RetryBudget)", got)
	}
}

// The router-wide token bucket caps the tier's total retry rate: once
// drained, further requests get their first attempt but no failover.
func TestRouterRetryTokenBucket(t *testing.T) {
	ctx := context.Background()
	tr := chaos.NewTransport(nil, nil)
	shards, rt, rc := newChaosTier(t, 2, Config{
		Transport: tr,
		RetryRate: 0.000001, RetryBurst: 1,
	})
	for _, s := range shards {
		tr.Partition(s.ts.URL)
	}
	for i := 0; i < 2; i++ {
		if _, err := rc.GetSession(ctx, "x"); err == nil {
			t.Fatal("partitioned tier served a request")
		}
	}
	if got := rt.met.retries.Load(); got != 1 {
		t.Fatalf("retries spent = %d, want exactly the 1 banked token", got)
	}
	if rt.met.retryExhausted.Load() == 0 {
		t.Fatal("drained bucket never reported exhaustion")
	}
}
