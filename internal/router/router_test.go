package router

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

type shard struct {
	srv *server.Server
	ts  *httptest.Server
}

func discardLog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// newShard boots one rebudgetd over httptest.
func newShard(t *testing.T, cfg server.Config) *shard {
	t.Helper()
	cfg.Logger = discardLog()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &shard{srv: srv, ts: ts}
}

// newTier boots n shards plus a router over them, with a long probe period
// so tests drive probes synchronously via probeAll.
func newTier(t *testing.T, n int, cfg server.Config) ([]*shard, *Router, *client.Client) {
	t.Helper()
	shards := make([]*shard, n)
	bases := make([]string, n)
	for i := range shards {
		shards[i] = newShard(t, cfg)
		bases[i] = shards[i].ts.URL
	}
	rt, err := New(Config{
		Backends:      bases,
		ProbeInterval: time.Hour, // tests probe explicitly
		Logger:        discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return shards, rt, client.New(ts.URL)
}

func mustCreate(t *testing.T, c *client.Client, spec server.SessionSpec) server.SessionView {
	t.Helper()
	v, err := c.CreateSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func fig3Spec(id string) server.SessionSpec {
	return server.SessionSpec{
		ID: id, Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "rebudget-0.05",
	}
}

// Allocations served through the router must be bit-identical to a direct
// single-daemon run: routing never touches the numerics.
func TestRouterBitIdenticalToDirectDaemon(t *testing.T) {
	ctx := context.Background()
	direct := newShard(t, server.Config{})
	dc := client.New(direct.ts.URL)
	_, _, rc := newTier(t, 3, server.Config{})

	mustCreate(t, dc, fig3Spec("bit"))
	mustCreate(t, rc, fig3Spec("bit"))
	for e := 0; e < 4; e++ {
		want, err := dc.StepEpoch(ctx, "bit")
		if err != nil {
			t.Fatal(err)
		}
		got, err := rc.StepEpoch(ctx, "bit")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Alloc.Allocations, got.Alloc.Allocations) ||
			!reflect.DeepEqual(want.Alloc.Utilities, got.Alloc.Utilities) ||
			want.Alloc.Iterations != got.Alloc.Iterations {
			t.Fatalf("epoch %d: routed allocation diverges from direct daemon", e)
		}
	}
}

// Placement follows the ring: each session lands on its primary shard, the
// same id always routes to the same shard, and generated ids are injected by
// the router before the daemons ever see the spec.
func TestRouterPlacement(t *testing.T) {
	ctx := context.Background()
	shards, rt, rc := newTier(t, 3, server.Config{})

	byBase := map[string]*shard{}
	for _, s := range shards {
		byBase[s.ts.URL] = s
	}
	ids := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for _, id := range ids {
		mustCreate(t, rc, fig3Spec(id))
	}
	total := 0
	for _, s := range shards {
		total += s.srv.Sessions()
	}
	if total != len(ids) {
		t.Fatalf("shards hold %d sessions, want %d", total, len(ids))
	}
	for _, id := range ids {
		owner := byBase[rt.ring.Primary(id)]
		if _, err := client.New(owner.ts.URL).GetSession(ctx, id); err != nil {
			t.Fatalf("session %q not on its ring primary: %v", id, err)
		}
		if _, err := rc.GetSession(ctx, id); err != nil {
			t.Fatalf("session %q not reachable through router: %v", id, err)
		}
	}

	// Router-generated ids: unique, routable, placed.
	v1 := mustCreate(t, rc, server.SessionSpec{Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare"})
	v2 := mustCreate(t, rc, server.SessionSpec{Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare"})
	if v1.ID == "" || v1.ID == v2.ID {
		t.Fatalf("router-generated ids broken: %q, %q", v1.ID, v2.ID)
	}
	if _, err := rc.GetSession(ctx, v1.ID); err != nil {
		t.Fatalf("generated id %q not routable: %v", v1.ID, err)
	}
}

// A shard's 429 backpressure — with its Retry-After hint — crosses the
// router untouched.
func TestRouterPropagatesBackpressure(t *testing.T) {
	ctx := context.Background()
	_, _, rc := newTier(t, 2, server.Config{SessionRPS: 1, SessionBurst: 1})
	mustCreate(t, rc, fig3Spec("bp"))
	if _, err := rc.StepEpoch(ctx, "bp"); err != nil {
		t.Fatal(err)
	}
	_, err := rc.StepEpoch(ctx, "bp")
	if !client.IsBusy(err) {
		t.Fatalf("want 429 through router, got %v", err)
	}
	if ae := err.(*client.APIError); ae.RetryAfter <= 0 {
		t.Fatalf("Retry-After lost in the hop: %+v", ae)
	}
}

// Killing a shard fails its sessions over to the next ring position: creates
// keep landing on survivors, the health endpoint degrades, and the failover
// counters move.
func TestRouterFailover(t *testing.T) {
	ctx := context.Background()
	shards, rt, rc := newTier(t, 2, server.Config{})

	// Find ids primaried on each shard so the kill provably strands one.
	idOn := map[string]string{}
	for i := 0; len(idOn) < 2 && i < 64; i++ {
		id := fmt.Sprintf("fo-%d", i)
		if _, have := idOn[rt.ring.Primary(id)]; !have {
			idOn[rt.ring.Primary(id)] = id
		}
	}
	victim, survivor := shards[0], shards[1]
	strandedID := idOn[victim.ts.URL]
	liveID := idOn[survivor.ts.URL]
	mustCreate(t, rc, fig3Spec(strandedID))
	mustCreate(t, rc, fig3Spec(liveID))

	victim.ts.Close()
	rt.probeAll(context.Background())
	if got := rt.Healthy(); got != 1 {
		t.Fatalf("Healthy() = %d after kill, want 1", got)
	}

	// The survivor's session is untouched.
	if _, err := rc.StepEpoch(ctx, liveID); err != nil {
		t.Fatal(err)
	}
	// The stranded id now routes to the survivor — which, with no snapshot
	// store, answers an honest 404 (passed through, not a router error).
	_, err := rc.GetSession(ctx, strandedID)
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != 404 {
		t.Fatalf("stranded session: want shard 404 via failover, got %v", err)
	}
	if rt.met.failovers.Load() == 0 {
		t.Fatal("failover counter did not move")
	}
	// New sessions still place, wherever their primary was.
	v := mustCreate(t, rc, server.SessionSpec{Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "equalshare"})
	if _, err := rc.StepEpoch(ctx, v.ID); err != nil {
		t.Fatalf("create/step after shard loss: %v", err)
	}

	h, err := rc.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("router health = %q with one dead shard, want degraded", h.Status)
	}
}

// /metrics exposes the router counters and per-shard gauges.
func TestRouterMetrics(t *testing.T) {
	ctx := context.Background()
	shards, _, rc := newTier(t, 2, server.Config{})
	mustCreate(t, rc, fig3Spec("met"))
	if _, err := rc.StepEpoch(ctx, "met"); err != nil {
		t.Fatal(err)
	}
	text, err := rc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rebudget_router_up 1",
		"rebudget_router_shards 2",
		"rebudget_router_shards_healthy 2",
		"rebudget_router_sessions_placed_total 1",
		`rebudget_router_shard_up{shard="` + shards[0].ts.URL + `"} 1`,
		`route="/v1/sessions/{id}/epoch"`,
		"rebudget_router_request_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// The merged list spans shards; a dead shard shrinks the list instead of
// failing it.
func TestRouterListMergesShards(t *testing.T) {
	ctx := context.Background()
	shards, rt, rc := newTier(t, 2, server.Config{})
	ids := []string{"l-one", "l-two", "l-three", "l-four", "l-five"}
	for _, id := range ids {
		mustCreate(t, rc, fig3Spec(id))
	}
	// Placement hashes the shards' random httptest ports, so a fixed id
	// set can land entirely on one shard; top up until both hold sessions
	// so "partial" below means something.
	for i := 0; shards[0].srv.Sessions() == 0 || shards[1].srv.Sessions() == 0; i++ {
		if i >= 64 {
			t.Fatal("could not spread sessions across both shards")
		}
		id := fmt.Sprintf("l-extra-%d", i)
		mustCreate(t, rc, fig3Spec(id))
		ids = append(ids, id)
	}
	views, err := rc.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != len(ids) {
		t.Fatalf("merged list has %d sessions, want %d", len(views), len(ids))
	}
	shards[0].ts.Close()
	rt.probeAll(context.Background())
	views, err = rc.ListSessions(ctx)
	if err != nil {
		t.Fatalf("list with a dead shard should still answer: %v", err)
	}
	if len(views) == 0 || len(views) >= len(ids) {
		t.Fatalf("partial list has %d sessions, want 1..%d", len(views), len(ids)-1)
	}
}

// TestRouterAuthForwarding: keyed shards behind a router work three ways —
// the client's bearer token passes through, the router's BackendAPIKey
// fills the hop for keyless clients, and a client with a wrong key gets the
// shard's 401 verbatim.
func TestRouterAuthForwarding(t *testing.T) {
	ctx := context.Background()
	shards := []*shard{newShard(t, server.Config{APIKey: "shard-key"})}
	rt, err := New(Config{
		Backends:      []string{shards[0].ts.URL},
		ProbeInterval: time.Hour,
		BackendAPIKey: "shard-key",
		Logger:        discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })

	// Keyless client: the router injects its backend key on the hop.
	bare := client.New(ts.URL)
	mustCreate(t, bare, fig3Spec("via-router"))
	if _, err := bare.StepEpoch(ctx, "via-router"); err != nil {
		t.Fatalf("keyless epoch through keyed router: %v", err)
	}

	// Client token passes through and wins over the router's own key.
	keyed := client.New(ts.URL, client.WithAPIKey("shard-key"))
	if _, err := keyed.StepEpoch(ctx, "via-router"); err != nil {
		t.Fatalf("keyed epoch: %v", err)
	}
	wrong := client.New(ts.URL, client.WithAPIKey("not-it"))
	if _, err := wrong.StepEpoch(ctx, "via-router"); err == nil {
		t.Fatal("wrong client key was not refused")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != 401 {
		t.Fatalf("wrong key: want 401 through the router, got %v", err)
	}
}
