package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// The proxy must buffer every request body (it may replay it across ring
// positions on failover), which made body reads a malloc per request.
// Pooled buffers amortise that across the 100k-session load the tier is
// sized for.
var bodyBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// poolBufCap bounds what a pooled buffer retains, so one giant body does
// not pin its high-water mark in the pool forever.
const poolBufCap = 64 << 10

// readBody buffers r's body (bounded by max) into a pooled buffer. The
// caller owns the buffer until it calls putBodyBuf — the returned bytes
// alias the buffer and must not outlive it.
func readBody(w http.ResponseWriter, r *http.Request, max int64) (*bytes.Buffer, error) {
	buf := bodyBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, max)); err != nil {
		putBodyBuf(buf)
		return nil, err
	}
	return buf, nil
}

func putBodyBuf(buf *bytes.Buffer) {
	if buf.Cap() > poolBufCap {
		return
	}
	bodyBufs.Put(buf)
}

// jsonWriter pools a response buffer with an encoder bound to it, mirroring
// the daemon's hot-path encoder pool.
type jsonWriter struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonWriters = sync.Pool{New: func() any {
	jw := &jsonWriter{}
	jw.enc = json.NewEncoder(&jw.buf)
	jw.enc.SetIndent("", "  ")
	return jw
}}

func encodeJSON(w io.Writer, v any) error {
	jw := jsonWriters.Get().(*jsonWriter)
	jw.buf.Reset()
	if err := jw.enc.Encode(v); err != nil {
		putJSONWriter(jw)
		return err
	}
	_, err := w.Write(jw.buf.Bytes())
	putJSONWriter(jw)
	return err
}

func putJSONWriter(jw *jsonWriter) {
	if jw.buf.Cap() > poolBufCap {
		return
	}
	jsonWriters.Put(jw)
}
