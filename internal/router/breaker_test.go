package router

import (
	"testing"
	"time"
)

// fakeClock is a manual clock for breaker/budget tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time             { return c.t }
func (c *fakeClock) advance(d time.Duration)    { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1700000000, 0)} }
func testBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	b := newBreaker(cfg)
	clk := newFakeClock()
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{FailureThreshold: 3})
	b.onFailure()
	b.onFailure()
	b.onSuccess() // success resets the consecutive count
	b.onFailure()
	b.onFailure()
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after interrupted failures = %v, want closed", got)
	}
	b.onFailure()
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker allowed a request")
	}
}

func TestBreakerHalfOpenTrialLifecycle(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: 5 * time.Second})
	b.onFailure()
	if b.allow() {
		t.Fatal("freshly opened breaker allowed a request")
	}
	clk.advance(6 * time.Second)
	if !b.allow() {
		t.Fatal("breaker still rejecting after OpenTimeout")
	}
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state after timeout allow = %v, want half_open", got)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.onSuccess()
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker rejecting")
	}
}

func TestBreakerReopensOnFailedTrial(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: 5 * time.Second})
	b.onFailure()
	clk.advance(6 * time.Second)
	if !b.allow() {
		t.Fatal("no trial granted")
	}
	b.onFailure()
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after failed trial = %v, want open", got)
	}
	// The timeout restarts from the failed trial.
	if b.allow() {
		t.Fatal("re-opened breaker allowed immediately")
	}
	clk.advance(6 * time.Second)
	if !b.allow() {
		t.Fatal("re-opened breaker never recovered")
	}
}

// Probe outcomes drive the breaker both ways: failures can open it with
// no data traffic at all, and a success grants an open breaker a
// half-open trial — but never closes it outright (gray failures:
// probe-green proves the process, not the data path).
func TestBreakerProbeDriven(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour})
	b.onProbeFailure()
	b.onProbeFailure()
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after probe failures = %v, want open", got)
	}
	b.onProbeSuccess()
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state after probe success = %v, want half_open (never straight to closed)", got)
	}
	if !b.allow() {
		t.Fatal("half-open breaker refused the trial")
	}
	b.onSuccess()
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after trial success = %v, want closed", got)
	}
}

func TestBreakerUnclaimReleasesTrial(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second})
	b.onFailure()
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("no trial granted")
	}
	b.unclaim()
	if !b.allow() {
		t.Fatal("unclaimed trial slot not reusable")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{FailureThreshold: 1, Disabled: true})
	for i := 0; i < 10; i++ {
		b.onFailure()
		b.onProbeFailure()
	}
	if !b.allow() {
		t.Fatal("disabled breaker rejected a request")
	}
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("disabled breaker state = %v, want closed", got)
	}
}

func TestRetryBudgetTokens(t *testing.T) {
	clk := newFakeClock()
	rb := newRetryBudget(1, 2, clk.now) // 1 token/s, depth 2
	if !rb.take() || !rb.take() {
		t.Fatal("full bucket refused its burst")
	}
	if rb.take() {
		t.Fatal("empty bucket granted a token")
	}
	clk.advance(time.Second)
	if !rb.take() {
		t.Fatal("bucket did not refill")
	}
	// Refill is capped at the burst.
	clk.advance(time.Hour)
	if !rb.take() || !rb.take() {
		t.Fatal("refilled bucket refused its burst")
	}
	if rb.take() {
		t.Fatal("bucket overfilled past burst")
	}
}
