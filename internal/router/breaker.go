package router

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState int

const (
	// breakerClosed: traffic flows; consecutive data-path failures are
	// counted toward opening.
	breakerClosed breakerState = iota
	// breakerOpen: the shard's data path recently failed repeatedly;
	// requests are rejected without being attempted until OpenTimeout
	// elapses or an active probe succeeds.
	breakerOpen
	// breakerHalfOpen: one trial request is allowed through; its outcome
	// decides between closing and re-opening.
	breakerHalfOpen
)

// String implements fmt.Stringer (metric label values).
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

var breakerStates = []breakerState{breakerClosed, breakerOpen, breakerHalfOpen}

// BreakerConfig sizes the per-shard circuit breakers. Zero values select
// the documented defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive data-path failures that open the
	// breaker (default 3). Active probe failures count too, so a shard
	// that dies quietly between requests still opens its breaker.
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects before allowing a
	// half-open trial (default 5s). A successful active probe shortcuts
	// the wait: probe-green means the process is back, and the data path
	// deserves one trial even if the timer hasn't run out.
	OpenTimeout time.Duration
	// HalfOpenSuccesses is the trial successes needed to close again
	// (default 1).
	HalfOpenSuccesses int
	// Disabled turns breakers off: every allow() passes and no state is
	// kept. Health-probe gating and the retry budget still apply.
	Disabled bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	return c
}

// breaker is one shard's circuit breaker: closed → open on
// FailureThreshold consecutive transport failures, open → half-open after
// OpenTimeout (or a good active probe), half-open → closed on a
// successful trial / back to open on a failed one. It exists because
// health probes alone miss gray failures: a shard can answer /healthz
// while its data path drops every real request (exactly what a
// partitioned-but-alive process looks like). The breaker watches the data
// path itself.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu          sync.Mutex
	state       breakerState
	consecFails int
	successes   int // trial successes while half-open
	openedAt    time.Time
	trial       bool // a half-open trial is in flight

	transitions [3]int64 // entries into each state, for /metrics
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// currentState reports the breaker's position (metrics, tests).
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionCounts snapshots the per-state entry counters.
func (b *breaker) transitionCounts() [3]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}

// transition moves to state s (caller holds mu).
func (b *breaker) transition(s breakerState) {
	b.state = s
	b.transitions[s]++
	switch s {
	case breakerOpen:
		b.openedAt = b.now()
		b.consecFails = 0
		b.trial = false
	case breakerHalfOpen:
		b.successes = 0
		b.trial = false
	case breakerClosed:
		b.consecFails = 0
		b.trial = false
	}
}

// allow reports whether a request may be attempted right now. While
// half-open it admits exactly one in-flight trial; the caller MUST report
// the outcome via onSuccess/onFailure, or the trial slot stays claimed.
func (b *breaker) allow() bool {
	if b.cfg.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.transition(breakerHalfOpen)
		b.trial = true
		return true
	case breakerHalfOpen:
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
	return true
}

// unclaim releases a trial slot claimed by allow() when the caller ends
// up not attempting after all (the retry budget ran out first). Without
// it the half-open state would deadlock waiting on an outcome that never
// comes.
func (b *breaker) unclaim() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.trial = false
	}
}

// onSuccess records a data-path success.
func (b *breaker) onSuccess() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.consecFails = 0
	case breakerHalfOpen:
		b.trial = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.transition(breakerClosed)
		}
	}
}

// onFailure records a data-path transport failure.
func (b *breaker) onFailure() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.transition(breakerOpen)
		}
	case breakerHalfOpen:
		// The trial failed: back to open, restarting the timeout.
		b.transition(breakerOpen)
	case breakerOpen:
		// A fail-open last-resort attempt failed while already open;
		// nothing changes (re-stamping openedAt would starve recovery
		// under constant traffic).
	}
}

// onProbeSuccess records a good active /healthz probe. An open breaker
// moves straight to half-open — the process answers, so the data path has
// earned one trial — but never straight to closed: probes don't traverse
// the data path, and gray failures are precisely the case where probes
// pass while requests fail.
func (b *breaker) onProbeSuccess() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		b.transition(breakerHalfOpen)
	}
}

// onProbeFailure records a failed active probe. While closed it counts
// like a data-path failure, so a shard that dies with no traffic in
// flight still opens its breaker before the next request arrives.
func (b *breaker) onProbeFailure() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerClosed {
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.transition(breakerOpen)
		}
	}
}

// retryBudget is the router-wide failover token bucket: every retry
// (second and later attempt of one proxied request) spends a token.
// During a brownout — shards slow, clients retrying — per-request retry
// caps alone still multiply offered load by the cap; the shared bucket
// bounds the tier's total retry rate no matter how many requests arrive.
type retryBudget struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	stamp  time.Time
	now    func() time.Time
}

func newRetryBudget(rate, burst float64, now func() time.Time) *retryBudget {
	rb := &retryBudget{rate: rate, burst: burst, tokens: burst, now: now}
	rb.stamp = rb.now()
	return rb
}

// take spends one retry token, reporting whether one was available.
func (rb *retryBudget) take() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	now := rb.now()
	rb.tokens += now.Sub(rb.stamp).Seconds() * rb.rate
	if rb.tokens > rb.burst {
		rb.tokens = rb.burst
	}
	rb.stamp = now
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}
