package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// newElasticTier boots n shards over one shared in-memory snapshot store
// plus an elastic router (admin token "secret", fast migrator, probes
// driven explicitly by tests).
func newElasticTier(t *testing.T, n int, extra func(*Config)) ([]*shard, *server.MemorySnapshotStore, *Router, string) {
	t.Helper()
	snaps := server.NewMemorySnapshotStore()
	shards := make([]*shard, n)
	bases := make([]string, n)
	for i := range shards {
		shards[i] = newShard(t, server.Config{Snapshots: snaps})
		bases[i] = shards[i].ts.URL
	}
	cfg := Config{
		Backends:      bases,
		ProbeInterval: time.Hour, // tests probe explicitly
		// A deep idle pool: with probes off, one spurious connection
		// failure under -race load would mark a shard unhealthy forever
		// and send its sessions to a stale-snapshot failover restore —
		// exactly the noise these tests must not mistake for a bug.
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 128,
		},
		AdminToken:        "secret",
		MigrationInterval: 10 * time.Millisecond,
		MigrationBudget:   4,
		Logger:            discardLog(),
	}
	if extra != nil {
		extra(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return shards, snaps, rt, ts.URL
}

// waitDrained polls until the migration queue and pin set are empty.
func waitDrained(t *testing.T, rt *Router) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		queued, pinned := rt.pendingMigrations()
		if queued == 0 && pinned == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration never drained: %d queued, %d pinned", queued, pinned)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Growing the ring under live traffic: sessions keep stepping throughout,
// the moved subset lands warm on the new shard, and nothing regresses.
func TestAddShardMigratesUnderTraffic(t *testing.T) {
	_, snaps, rt, base := newElasticTier(t, 2, nil)
	rc := client.New(base)
	ctx := context.Background()

	const nSessions = 32
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("el-%d", i)
		mustCreate(t, rc, fig3Spec(ids[i]))
		if _, err := rc.StepEpoch(ctx, ids[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Live traffic through the whole change: steppers tolerate transient
	// handoff errors but never an epoch regression.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, nSessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			last := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rc.StepEpoch(ctx, id)
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if v.Epochs < last {
					errs[i] = fmt.Errorf("session %s epochs regressed %d -> %d", id, last, v.Epochs)
					return
				}
				last = v.Epochs
			}
		}(i, id)
	}

	third := newShard(t, server.Config{Snapshots: snaps})
	moved, err := rt.AddShard(ctx, third.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("shard add scheduled no migrations — nothing would rebalance")
	}
	if got := rt.Epoch(); got != 2 {
		t.Fatalf("epoch after add = %d, want 2", got)
	}
	waitDrained(t, rt)
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := rt.met.migrations.Load(); got == 0 {
		t.Fatal("migration counter did not move")
	}
	// Step everything once more: moved sessions must now be served by the
	// new shard (rehydrated warm from their snapshots).
	for _, id := range ids {
		if _, err := rc.StepEpoch(ctx, id); err != nil {
			t.Fatalf("post-migration step %s: %v", id, err)
		}
	}
	if got := third.srv.Sessions(); got == 0 {
		t.Fatal("new shard holds no sessions after the rebalance")
	}
	metrics, err := client.New(third.ts.URL).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `rebudgetd_snapshots_total{op="restore"}`) {
		t.Fatal("new shard reports no snapshot restores — sessions were recreated, not migrated")
	}
}

// Shrinking the ring: the removed shard's sessions drain to the survivors
// and the shard is released once empty.
func TestRemoveShardDrains(t *testing.T) {
	shards, _, rt, base := newElasticTier(t, 3, nil)
	rc := client.New(base)
	ctx := context.Background()

	const nSessions = 30
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("rm-%d", i)
		mustCreate(t, rc, fig3Spec(ids[i]))
		if _, err := rc.StepEpoch(ctx, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	victim := shards[1]
	before := victim.srv.Sessions()
	if before == 0 {
		t.Skip("degenerate placement: victim shard got no sessions")
	}
	moved, err := rt.RemoveShard(ctx, victim.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if moved != before {
		t.Fatalf("remove scheduled %d moves, victim held %d sessions", moved, before)
	}
	waitDrained(t, rt)
	if got := victim.srv.Sessions(); got != 0 {
		t.Fatalf("victim still holds %d sessions after the drain", got)
	}
	// Every session steps on, served by the survivors.
	for _, id := range ids {
		if _, err := rc.StepEpoch(ctx, id); err != nil {
			t.Fatalf("post-remove step %s: %v", id, err)
		}
	}
	if got := victim.srv.Sessions(); got != 0 {
		t.Fatal("a migrated session stepped back onto the removed shard")
	}
	// The retired shard is fully released once drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := rt.membershipBody()
		if len(body.Draining) == 0 {
			if len(body.Members) != 2 {
				t.Fatalf("members after remove = %v", body.Members)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retired shard never released: %+v", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := rt.Epoch(); got != 2 {
		t.Fatalf("epoch after remove = %d, want 2", got)
	}
}

// The admin API over HTTP: bearer-token gated, mutations report the new
// membership.
func TestAdminAPIOverHTTP(t *testing.T) {
	shards, _, _, base := newElasticTier(t, 2, nil)
	_ = shards
	do := func(method, path, token string, body any) (*http.Response, []byte) {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			buf, _ := json.Marshal(body)
			rd = bytes.NewReader(buf)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	if resp, _ := do(http.MethodGet, "/admin/membership", "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", resp.StatusCode)
	}
	if resp, _ := do(http.MethodGet, "/admin/membership", "wrong", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", resp.StatusCode)
	}
	resp, body := do(http.MethodGet, "/admin/membership", "secret", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized membership: %d (%s)", resp.StatusCode, body)
	}
	var mb MembershipBody
	if err := json.Unmarshal(body, &mb); err != nil || mb.Epoch != 1 || len(mb.Members) != 2 {
		t.Fatalf("membership body: %s (%v)", body, err)
	}

	third := newShard(t, server.Config{})
	resp, body = do(http.MethodPost, "/admin/shards", "secret", map[string]string{"shard": third.ts.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add shard: %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &mb); err != nil || mb.Epoch != 2 || len(mb.Members) != 3 {
		t.Fatalf("add response: %s (%v)", body, err)
	}
	// The epoch header rides every response in elastic mode (stamped at
	// request start, so the new epoch shows from the next request on).
	resp, _ = do(http.MethodGet, "/admin/membership", "secret", nil)
	if got := resp.Header.Get(server.EpochHeader); got != "2" {
		t.Fatalf("epoch header after add = %q, want \"2\"", got)
	}

	resp, body = do(http.MethodDelete, "/admin/shards?shard="+third.ts.URL, "secret", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove shard: %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &mb); err != nil || mb.Epoch != 3 || len(mb.Members) != 2 {
		t.Fatalf("remove response: %s (%v)", body, err)
	}
	// Removing a non-member is a 404, not a silent no-op.
	if resp, _ := do(http.MethodDelete, "/admin/shards?shard=http://nope:1", "secret", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove non-member: %d, want 404", resp.StatusCode)
	}
}

// Two router replicas converge on a killed shard within one gossip round
// (full mesh of two) — the pinned convergence bound.
func TestGossipConvergesOnKilledShard(t *testing.T) {
	snaps := server.NewMemorySnapshotStore()
	shardA := newShard(t, server.Config{Snapshots: snaps})
	shardB := newShard(t, server.Config{Snapshots: snaps})
	bases := []string{shardA.ts.URL, shardB.ts.URL}

	newReplica := func(peers []string) (*Router, string) {
		rt, err := New(Config{
			Backends:      bases,
			ProbeInterval: time.Hour,
			AdminToken:    "secret",
			GossipPeers:   peers,
			Logger:        discardLog(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rt.Handler())
		t.Cleanup(func() { ts.Close(); rt.Close() })
		return rt, ts.URL
	}
	rt2, url2 := newReplica(nil)
	rt1, _ := newReplica([]string{url2})

	if rt1.Healthy() != 2 || rt2.Healthy() != 2 {
		t.Fatalf("setup: both replicas should see 2 healthy shards (%d, %d)", rt1.Healthy(), rt2.Healthy())
	}

	// Shard B dies; only replica 1 probes it (replica 2's prober is
	// parked), so without gossip replica 2 would stay wrong for an hour.
	shardB.ts.Close()
	rt1.probeAll(context.Background())
	if rt1.Healthy() != 1 {
		t.Fatalf("replica 1 probe missed the death: healthy=%d", rt1.Healthy())
	}
	if rt2.Healthy() != 2 {
		t.Fatalf("replica 2 should not know yet: healthy=%d", rt2.Healthy())
	}

	rt1.GossipNow(context.Background()) // round 1: the pinned bound
	if rt2.Healthy() != 1 {
		t.Fatal("replica 2 did not converge on the killed shard within 1 gossip round")
	}
	if rt2.met.gossipAdopted.Load() == 0 {
		t.Fatal("replica 2 adopted nothing — convergence was a coincidence")
	}

	// Recovery flows the same way: replica 1's fresh probe outranks the
	// death it gossiped earlier.
	shardB2 := httptest.NewServer(shardB.srv.Handler())
	t.Cleanup(shardB2.Close)
	// The revived shard answers on a new port; re-home both replicas' view
	// of the old URL is impossible, so just verify seq authority instead:
	// replica 1 re-probes shard A (no flip, no bump) and gossips — replica
	// 2 must not flap.
	rt1.GossipNow(context.Background())
	if rt2.Healthy() != 1 {
		t.Fatal("replica 2 flapped on a no-change gossip round")
	}
}

// A membership change on one replica reaches its peer through gossip:
// epoch, member list, and routing all follow.
func TestGossipPropagatesMembership(t *testing.T) {
	snaps := server.NewMemorySnapshotStore()
	shardA := newShard(t, server.Config{Snapshots: snaps})
	shardB := newShard(t, server.Config{Snapshots: snaps})
	bases := []string{shardA.ts.URL, shardB.ts.URL}

	rt2, err := New(Config{Backends: bases, ProbeInterval: time.Hour,
		AdminToken: "secret", Logger: discardLog()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(func() { ts2.Close(); rt2.Close() })
	rt1, err := New(Config{Backends: bases, ProbeInterval: time.Hour,
		AdminToken: "secret", GossipPeers: []string{ts2.URL},
		MigrationInterval: 10 * time.Millisecond, Logger: discardLog()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt1.Close)

	third := newShard(t, server.Config{Snapshots: snaps})
	if _, err := rt1.AddShard(context.Background(), third.ts.URL); err != nil {
		t.Fatal(err)
	}
	rt1.GossipNow(context.Background())
	if got := rt2.Epoch(); got != 2 {
		t.Fatalf("peer epoch after gossip = %d, want 2", got)
	}
	members := rt2.Members()
	if len(members) != 3 {
		t.Fatalf("peer members after gossip = %v", members)
	}
	// Both replicas now compute identical placements.
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("place-%d", i)
		if p1, p2 := rt1.primaryFor(id), rt2.primaryFor(id); p1.base != p2.base {
			t.Fatalf("replicas disagree on %s: %s vs %s", id, p1.base, p2.base)
		}
	}
	// An unauthenticated gossip push is rejected when a token is set.
	resp, err := http.Post(ts2.URL+"/gossip", "application/json", strings.NewReader(`{"epoch":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated gossip: %d, want 401", resp.StatusCode)
	}
	if rt2.Epoch() == 99 {
		t.Fatal("unauthenticated gossip reshaped the membership")
	}
}

// SetBackends is the SIGHUP reload path: one call reconciles adds and
// removes against a full desired list.
func TestSetBackendsReload(t *testing.T) {
	shards, snaps, rt, base := newElasticTier(t, 2, nil)
	rc := client.New(base)
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		mustCreate(t, rc, fig3Spec(fmt.Sprintf("hup-%d", i)))
	}
	third := newShard(t, server.Config{Snapshots: snaps})
	// Desired: drop shard 1, keep shard 0, add the third.
	if err := rt.SetBackends(ctx, []string{shards[0].ts.URL, third.ts.URL}); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, rt)
	members := rt.Members()
	if len(members) != 2 {
		t.Fatalf("members after reload = %v", members)
	}
	for _, m := range members {
		if m == shards[1].ts.URL {
			t.Fatal("dropped shard still in the ring after reload")
		}
	}
	if got := rt.Epoch(); got != 3 {
		t.Fatalf("epoch after add+remove reload = %d, want 3", got)
	}
	// All sessions still step.
	for i := 0; i < 12; i++ {
		if _, err := rc.StepEpoch(ctx, fmt.Sprintf("hup-%d", i)); err != nil {
			t.Fatalf("post-reload step: %v", err)
		}
	}
	// An empty reload is refused — fat-fingering a config must not wipe
	// the fleet.
	if err := rt.SetBackends(ctx, nil); err == nil {
		t.Fatal("empty reload accepted")
	}
}

// With elastic mode off, the router's outward surface is bit-identical to
// the pre-elastic router: no epoch header, no membership fields, no
// elastic metrics, no admin or gossip routes.
func TestStaticModeSurfaceUnchanged(t *testing.T) {
	_, rt, _ := newTier(t, 2, server.Config{})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(server.EpochHeader); got != "" {
		t.Fatalf("static router leaks epoch header %q", got)
	}
	if strings.Contains(buf.String(), "membership_epoch") {
		t.Fatalf("static healthz leaks membership epoch: %s", buf.String())
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, leak := range []string{"membership", "migration", "gossip"} {
		if strings.Contains(buf.String(), leak) {
			t.Fatalf("static /metrics leaks %q series", leak)
		}
	}

	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/admin/membership"},
		{http.MethodPost, "/admin/shards"},
		{http.MethodPost, "/gossip"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("static router answers %s %s with %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}
