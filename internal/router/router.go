package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/server"
)

// Config sizes the router. Zero values select the documented defaults.
type Config struct {
	// Backends are the shard base URLs (e.g. "http://127.0.0.1:9001").
	// At least one is required.
	Backends []string
	// VNodes is the virtual nodes per shard on the hash ring (default 64).
	VNodes int
	// ProbeInterval is the /healthz polling period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe sweep (default 2s).
	ProbeTimeout time.Duration
	// ProxyTimeout is the per-proxied-request deadline (default 30s —
	// epoch batches on a loaded shard are allocation-grade work).
	ProxyTimeout time.Duration
	// MaxBody bounds buffered request bodies (default 1 MiB, matching the
	// daemon's own limit).
	MaxBody int64
	// Logger receives structured routing logs (default slog.Default()).
	Logger *slog.Logger
	// Transport overrides the proxy client's RoundTripper (default
	// http.DefaultTransport). This is the data-path seam chaos testing
	// plugs a fault-injecting transport into; the health prober keeps its
	// own client so active probes stay on a clean path — gray failures
	// (probe green, data path red) are then reproducible, which is the
	// scenario the circuit breakers exist for.
	Transport http.RoundTripper
	// Breaker sizes the per-shard circuit breakers.
	Breaker BreakerConfig
	// RetryBudget is the failover attempts allowed per proxied request
	// beyond the first (default 2; set negative to disable retries).
	RetryBudget int
	// RetryRate is the router-wide failover token-bucket refill, in
	// retries per second across all requests (default 16). The shared
	// bucket is what keeps failover from amplifying a brownout: per-request
	// caps bound one request's cost, the bucket bounds the tier's.
	RetryRate float64
	// RetryBurst is the bucket depth (default 2×RetryRate).
	RetryBurst float64
	// ProbeJitter spreads each prober sleep uniformly over
	// [1-j/2, 1+j/2]×ProbeInterval (default 0.2, i.e. ±10%), so N router
	// replicas pointed at the same shards don't synchronize their sweeps
	// into a thundering probe herd. Set negative for none.
	ProbeJitter float64
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	} else if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryRate <= 0 {
		c.RetryRate = 16
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 2 * c.RetryRate
	}
	if c.ProbeJitter == 0 {
		c.ProbeJitter = 0.2
	} else if c.ProbeJitter < 0 {
		c.ProbeJitter = 0
	}
	return c
}

// Router is the sharded serving tier: it owns the hash ring, the health
// prober and the proxy loop. Construct with New, mount Handler, Close when
// done.
type Router struct {
	cfg Config
	log *slog.Logger

	ring     *Ring
	backends map[string]*backend
	order    []*backend // configured order, for stable /metrics rendering

	met         *rtrMetrics
	mux         *http.ServeMux
	proxyClient *http.Client
	probeClient *http.Client
	retry       *retryBudget

	started time.Time
	idSalt  string
	idSeq   atomic.Int64

	proberStop chan struct{}
	proberDone chan struct{}
}

// New builds a router over the configured backends, probes them once
// synchronously (so routing decisions are informed from the first
// request), and starts the background prober.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend required")
	}
	rt := &Router{
		cfg:      cfg,
		log:      cfg.Logger,
		ring:     NewRing(cfg.VNodes),
		backends: make(map[string]*backend),
		met:      &rtrMetrics{},
		mux:      http.NewServeMux(),
		proxyClient: &http.Client{
			// The per-request deadline comes from the proxied context.
			Timeout:   0,
			Transport: cfg.Transport,
		},
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		started:     time.Now(),
		// The salt keeps generated ids from colliding across router
		// restarts (each daemon's own "s-%06d" sequence has the same
		// problem scoped to one process; the router outlives many).
		idSalt:     strconv.FormatInt(time.Now().UnixNano(), 36),
		proberStop: make(chan struct{}),
		proberDone: make(chan struct{}),
	}
	rt.retry = newRetryBudget(cfg.RetryRate, cfg.RetryBurst, time.Now)
	for _, raw := range cfg.Backends {
		base := strings.TrimRight(raw, "/")
		if base == "" {
			return nil, errors.New("router: empty backend URL")
		}
		if _, dup := rt.backends[base]; dup {
			return nil, fmt.Errorf("router: duplicate backend %q", base)
		}
		b := &backend{base: base, br: newBreaker(cfg.Breaker)}
		rt.backends[base] = b
		rt.order = append(rt.order, b)
		rt.ring.Add(base)
	}
	rt.routes()
	rt.probeAll(context.Background())
	go rt.prober()
	return rt, nil
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	rt.mux.HandleFunc("GET /v1/sessions", rt.handleList)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	rt.mux.HandleFunc("/v1/sessions/{id}/{verb}", rt.handleSession)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
}

// Handler returns the router's HTTP handler (logging + metrics wrapped).
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		rt.mux.ServeHTTP(rec, r)
		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		rt.met.observe(route, rec.code, dur)
		rt.log.Info("routed",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"code", rec.code, "dur_ms", float64(dur.Microseconds())/1000)
	})
}

// Close stops the health prober. The HTTP listener (owned by the caller)
// should be shut down first; the backends keep running — they are not the
// router's to stop.
func (rt *Router) Close() {
	close(rt.proberStop)
	<-rt.proberDone
}

// Healthy reports how many shards currently pass probes (for tests and
// ops tooling).
func (rt *Router) Healthy() int {
	n := 0
	for _, b := range rt.order {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// --- placement + proxy ---

// sequenceFor is the ring's failover order for a session id.
func (rt *Router) sequenceFor(id string) []*backend {
	names := rt.ring.Sequence(id)
	seq := make([]*backend, 0, len(names))
	for _, n := range names {
		seq = append(seq, rt.backends[n])
	}
	return seq
}

// proxy walks a session's ring sequence — healthy shards with a willing
// breaker first in ring order, then (fail-open) the shards that were
// skipped, in case probe or breaker state is stale — forwarding the
// buffered request to the first shard that answers at the transport
// level. HTTP statuses, including the daemon's 429/Retry-After
// backpressure, pass through untouched: the shard answered, and its
// answer stands. A transport failure marks the shard unhealthy on the
// spot and feeds its circuit breaker (passive detection), then moves on.
//
// Failover is budgeted two ways: each request gets RetryBudget attempts
// beyond its first, and every retry also spends a token from the
// router-wide bucket — an outage can't turn N incoming requests into
// N×ring-length attempts against shards that are already browning out.
//
// The returned flag reports whether body is safe to recycle: after a
// transport-level failure the http.Transport's write goroutine may still
// be reading the body briefly, so callers must not return a pooled buffer
// to its pool on that path.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, id string, body []byte) (bodySafe bool) {
	bodySafe = true
	seq := rt.sequenceFor(id)
	if len(seq) == 0 {
		rt.met.noShard.Add(1)
		writeErr(w, http.StatusServiceUnavailable, "no shards configured")
		return bodySafe
	}
	isEpoch := strings.HasSuffix(r.URL.Path, "/epoch")
	attempts := 0
	outOfBudget := false
	// attempt forwards to b; every attempt after the first is a retry and
	// must be paid for. served means the response was written; stop means
	// the retry budget is gone and the walk must end.
	attempt := func(b *backend, idx int) (served, stop bool) {
		if attempts > 0 {
			if attempts > rt.cfg.RetryBudget {
				outOfBudget = true
				return false, true
			}
			if !rt.retry.take() {
				rt.met.retryExhausted.Add(1)
				outOfBudget = true
				return false, true
			}
			rt.met.retries.Add(1)
		}
		attempts++
		if _, err := rt.forward(w, r, b, body); err != nil {
			bodySafe = false
			b.br.onFailure()
			b.healthy.Store(false)
			rt.met.failovers.Add(1)
			rt.log.Warn("shard unreachable, failing over", "shard", b.base, "err", err)
			return false, false
		}
		b.br.onSuccess()
		if idx > 0 {
			if isEpoch {
				rt.met.reroutedEpochs.Add(1)
			}
			rt.log.Info("request rerouted", "id", id, "shard", b.base, "ring_position", idx)
		}
		return true, false
	}
	var skipped []int
	for i, b := range seq {
		if !b.healthy.Load() {
			rt.met.failovers.Add(1)
			skipped = append(skipped, i)
			continue
		}
		if !b.br.allow() {
			rt.met.breakerRejects.Add(1)
			skipped = append(skipped, i)
			continue
		}
		served, stop := attempt(b, i)
		if served {
			return
		}
		if stop {
			// The budget stopped the attempt after allow() may have
			// claimed a half-open trial; give the slot back.
			b.br.unclaim()
			break
		}
	}
	// Fail-open last resort: probe state and breakers can both be stale
	// (a shard back up before its next probe, a breaker still open after
	// a partition healed). These attempts bypass the breaker gate — their
	// outcomes still feed it — and stay bounded by the retry budget.
	if !outOfBudget {
		for _, i := range skipped {
			served, stop := attempt(seq[i], i)
			if served {
				return
			}
			if stop {
				break
			}
		}
	}
	rt.met.noShard.Add(1)
	w.Header().Set("Retry-After", "1")
	msg := "no healthy shard"
	if outOfBudget {
		msg = "no healthy shard (retry budget exhausted)"
	}
	writeErr(w, http.StatusServiceUnavailable, msg)
	return bodySafe
}

// forward sends one buffered request to a shard and streams its response
// back. An error means the shard never answered (transport failure) and
// nothing was written to w — safe to retry on the next ring position.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte) (int, error) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProxyTimeout)
	defer cancel()
	url := b.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	// The tenant label rides the hop too: a spec without one is labelled by
	// the shard from this header, so tenancy works through the router.
	for _, h := range []string{"Content-Type", server.TenantHeader} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.proxyClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	// Retry-After must survive the hop: the router propagates the shard's
	// backpressure contract instead of inventing its own.
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode, nil
}

// --- handlers ---

// handleCreate places a new session: the spec's id (generated here when
// absent — placement needs a key before the daemon ever sees the spec) is
// hashed onto the ring and the create is forwarded to the owning shard.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(w, r, rt.cfg.MaxBody)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	var spec server.SessionSpec
	if raw.Len() > 0 {
		dec := json.NewDecoder(bytes.NewReader(raw.Bytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			putBodyBuf(raw)
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	putBodyBuf(raw) // decoded (or empty): the raw bytes are done
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("r%s-%06d", rt.idSalt, rt.idSeq.Add(1))
	}
	body, err := json.Marshal(spec)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	rt.proxy(rec, r, spec.ID, body)
	if rec.code == http.StatusCreated {
		rt.met.sessionsPlaced.Add(1)
	}
}

// handleSession proxies every per-session route by its {id}.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, "missing session id")
		return
	}
	buf, err := readBody(w, r, rt.cfg.MaxBody)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if rt.proxy(w, r, id, buf.Bytes()) {
		putBodyBuf(buf)
	}
}

// handleList fans a list out to every healthy shard and merges the views.
// Shards that fail mid-list are skipped (and marked) rather than failing
// the whole listing — a partial inventory beats none during an outage.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProxyTimeout)
	defer cancel()
	type shardList struct {
		views []server.SessionView
		err   error
	}
	results := make([]shardList, len(rt.order))
	var wg sync.WaitGroup
	for i, b := range rt.order {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/sessions", nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := rt.proxyClient.Do(req)
			if err != nil {
				b.healthy.Store(false)
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Sessions []server.SessionView `json:"sessions"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				results[i].err = err
				return
			}
			results[i].views = out.Sessions
		}(i, b)
	}
	wg.Wait()
	merged := []server.SessionView{}
	for _, res := range results {
		merged = append(merged, res.views...)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": merged})
}

// ShardHealth is one backend's state in the router's /healthz body.
type ShardHealth struct {
	Shard    string `json:"shard"`
	Healthy  bool   `json:"healthy"`
	Sessions int64  `json:"sessions"`
}

// HealthzBody is the router's /healthz response.
type HealthzBody struct {
	Status        string        `json:"status"`
	Shards        []ShardHealth `json:"shards"`
	UptimeSeconds int64         `json:"uptime_seconds"`
}

// handleHealthz reports the router healthy while at least one shard is:
// a degraded tier still serves (rerouted) traffic.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := HealthzBody{UptimeSeconds: int64(time.Since(rt.started).Seconds())}
	healthyN := 0
	for _, b := range rt.order {
		h := b.healthy.Load()
		if h {
			healthyN++
		}
		body.Shards = append(body.Shards, ShardHealth{
			Shard: b.base, Healthy: h, Sessions: b.sessions.Load(),
		})
	}
	code := http.StatusOK
	switch {
	case healthyN == len(rt.order):
		body.Status = "ok"
	case healthyN > 0:
		body.Status = "degraded"
	default:
		body.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.met.render(w, rt.order, time.Since(rt.started))
}

// --- HTTP plumbing (mirrors the daemon's) ---

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = encodeJSON(w, v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// routeLabel bounds metric cardinality exactly like the daemon's.
func routeLabel(path string) string {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	switch {
	case len(parts) >= 1 && parts[0] == "healthz":
		return "/healthz"
	case len(parts) >= 1 && parts[0] == "metrics":
		return "/metrics"
	case len(parts) >= 2 && parts[0] == "v1" && parts[1] == "sessions":
		switch len(parts) {
		case 2:
			return "/v1/sessions"
		case 3:
			return "/v1/sessions/{id}"
		default:
			return "/v1/sessions/{id}/" + parts[3]
		}
	default:
		return "other"
	}
}
