package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/server"
)

// Config sizes the router. Zero values select the documented defaults.
type Config struct {
	// Backends are the shard base URLs (e.g. "http://127.0.0.1:9001").
	// At least one is required.
	Backends []string
	// VNodes is the virtual nodes per shard on the hash ring (default 64).
	VNodes int
	// ProbeInterval is the /healthz polling period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe sweep (default 2s).
	ProbeTimeout time.Duration
	// ProxyTimeout is the per-proxied-request deadline (default 30s —
	// epoch batches on a loaded shard are allocation-grade work).
	ProxyTimeout time.Duration
	// MaxBody bounds buffered request bodies (default 1 MiB, matching the
	// daemon's own limit).
	MaxBody int64
	// Logger receives structured routing logs (default slog.Default()).
	Logger *slog.Logger
	// Transport overrides the proxy client's RoundTripper (default
	// http.DefaultTransport). This is the data-path seam chaos testing
	// plugs a fault-injecting transport into; the health prober keeps its
	// own client so active probes stay on a clean path — gray failures
	// (probe green, data path red) are then reproducible, which is the
	// scenario the circuit breakers exist for.
	Transport http.RoundTripper
	// Breaker sizes the per-shard circuit breakers.
	Breaker BreakerConfig
	// RetryBudget is the failover attempts allowed per proxied request
	// beyond the first (default 2; set negative to disable retries).
	RetryBudget int
	// RetryRate is the router-wide failover token-bucket refill, in
	// retries per second across all requests (default 16). The shared
	// bucket is what keeps failover from amplifying a brownout: per-request
	// caps bound one request's cost, the bucket bounds the tier's.
	RetryRate float64
	// RetryBurst is the bucket depth (default 2×RetryRate).
	RetryBurst float64
	// ProbeJitter spreads each prober sleep uniformly over
	// [1-j/2, 1+j/2]×ProbeInterval (default 0.2, i.e. ±10%), so N router
	// replicas pointed at the same shards don't synchronize their sweeps
	// into a thundering probe herd. Set negative for none.
	ProbeJitter float64

	// BackendAPIKey is the bearer token for shards running with -api-key.
	// The router sends it on its own shard-directed calls (migration
	// evicts) and injects it on proxied requests that carry no
	// Authorization of their own — so a deployment can keep keys on the
	// router→shard hop only, or pass client tokens through end to end.
	BackendAPIKey string

	// AdminToken, when set, enables the authenticated membership API
	// (POST/DELETE /admin/shards, GET /admin/membership) and arms elastic
	// mode. Requests must carry "Authorization: Bearer <token>".
	AdminToken string
	// GossipPeers are sibling router base URLs for probe-state gossip.
	// Non-empty arms elastic mode and starts the anti-entropy loop.
	GossipPeers []string
	// GossipInterval is the digest push period (default 1s).
	GossipInterval time.Duration
	// MigrationBudget bounds sessions moved per migration tick (default 8)
	// — the fleet-level CutSchedule step, so a membership change disturbs
	// serving no faster than a bounded budget cut disturbs the market.
	MigrationBudget int
	// MigrationInterval is the migrator tick period (default 200ms).
	MigrationInterval time.Duration
	// Elastic arms elastic mode without an admin token or gossip peers —
	// for deployments whose only membership channel is the SIGHUP
	// config-reload path. When elastic mode is off (the default with none
	// of the three set), the router's outputs are bit-identical to the
	// pre-elastic router: no epoch header, no membership metrics, no
	// admin or gossip routes.
	Elastic bool
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	} else if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryRate <= 0 {
		c.RetryRate = 16
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 2 * c.RetryRate
	}
	if c.ProbeJitter == 0 {
		c.ProbeJitter = 0.2
	} else if c.ProbeJitter < 0 {
		c.ProbeJitter = 0
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.MigrationBudget <= 0 {
		c.MigrationBudget = 8
	}
	if c.MigrationInterval <= 0 {
		c.MigrationInterval = 200 * time.Millisecond
	}
	if c.AdminToken != "" || len(c.GossipPeers) > 0 {
		c.Elastic = true
	}
	return c
}

// Router is the sharded serving tier: it owns the hash ring, the health
// prober and the proxy loop — and, in elastic mode, the membership state
// machine (admin API, budget-bounded session migrator, gossip loop).
// Construct with New, mount Handler, Close when done.
type Router struct {
	cfg     Config
	log     *slog.Logger
	elastic bool

	// mu guards the membership view: ring, backends, order, retired, pins.
	// In static deployments it is only ever write-locked during New, so the
	// read-lock on the data path is uncontended.
	mu       sync.RWMutex
	ring     *Ring
	backends map[string]*backend // every reachable shard, active and retired
	order    []*backend          // active shards, configured order, for stable /metrics rendering
	retired  map[string]*backend // removed from the ring, kept reachable while their sessions drain
	pins     map[string]string   // session id → shard base, overriding the ring mid-migration
	moveSeq  uint64              // bumps once per completed migration (under mu)
	movedAt  map[string]uint64   // session id → moveSeq when its pin last cleared
	listings int                 // membership listings in flight; movedAt is prunable only at zero

	epoch atomic.Uint64 // membership epoch; starts at 1, bumped per change

	migMu    sync.Mutex
	migQueue []migration

	met         *rtrMetrics
	mux         *http.ServeMux
	proxyClient *http.Client
	probeClient *http.Client
	retry       *retryBudget

	started time.Time
	idSalt  string
	idSeq   atomic.Int64

	proberStop chan struct{}
	proberDone chan struct{}
	loopStop   chan struct{} // migrator + gossip (elastic mode only)
	loopsDone  sync.WaitGroup
}

// migration is one session move: evict id from shard `from`, then let the
// ring's new owner rehydrate it.
type migration struct {
	id, from string
	retries  int
}

// New builds a router over the configured backends, probes them once
// synchronously (so routing decisions are informed from the first
// request), and starts the background prober (plus, in elastic mode, the
// migrator and gossip loops).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend required")
	}
	rt := &Router{
		cfg:      cfg,
		log:      cfg.Logger,
		elastic:  cfg.Elastic,
		ring:     NewRing(cfg.VNodes),
		backends: make(map[string]*backend),
		retired:  make(map[string]*backend),
		pins:     make(map[string]string),
		movedAt:  make(map[string]uint64),
		met:      &rtrMetrics{},
		mux:      http.NewServeMux(),
		proxyClient: &http.Client{
			// The per-request deadline comes from the proxied context.
			Timeout:   0,
			Transport: cfg.Transport,
		},
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		started:     time.Now(),
		// The salt keeps generated ids from colliding across router
		// restarts (each daemon's own "s-%06d" sequence has the same
		// problem scoped to one process; the router outlives many).
		idSalt:     strconv.FormatInt(time.Now().UnixNano(), 36),
		proberStop: make(chan struct{}),
		proberDone: make(chan struct{}),
		loopStop:   make(chan struct{}),
	}
	rt.epoch.Store(1)
	rt.retry = newRetryBudget(cfg.RetryRate, cfg.RetryBurst, time.Now)
	for _, raw := range cfg.Backends {
		base := strings.TrimRight(raw, "/")
		if base == "" {
			return nil, errors.New("router: empty backend URL")
		}
		if _, dup := rt.backends[base]; dup {
			return nil, fmt.Errorf("router: duplicate backend %q", base)
		}
		b := &backend{base: base, br: newBreaker(cfg.Breaker)}
		rt.backends[base] = b
		rt.order = append(rt.order, b)
		rt.ring.Add(base)
	}
	rt.routes()
	rt.probeAll(context.Background())
	go rt.prober()
	if rt.elastic {
		rt.loopsDone.Add(1)
		go rt.migrator()
		if len(cfg.GossipPeers) > 0 {
			rt.loopsDone.Add(1)
			go rt.gossiper()
		}
	}
	return rt, nil
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	rt.mux.HandleFunc("GET /v1/sessions", rt.handleList)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	rt.mux.HandleFunc("/v1/sessions/{id}/{verb}", rt.handleSession)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	// Elastic routes exist only in elastic mode: a static router answers
	// 404 on these paths, exactly as it did before elastic membership.
	if rt.cfg.AdminToken != "" {
		rt.mux.HandleFunc("POST /admin/shards", rt.handleAdminAdd)
		rt.mux.HandleFunc("DELETE /admin/shards", rt.handleAdminRemove)
		rt.mux.HandleFunc("GET /admin/membership", rt.handleMembership)
	}
	if rt.elastic {
		rt.mux.HandleFunc("POST /gossip", rt.handleGossip)
	}
}

// Handler returns the router's HTTP handler (logging + metrics wrapped).
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if rt.elastic {
			// The epoch header is how long-lived clients learn membership
			// moved and refresh their sticky/fallback state.
			w.Header().Set(server.EpochHeader, strconv.FormatUint(rt.epoch.Load(), 10))
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		rt.mux.ServeHTTP(rec, r)
		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		rt.met.observe(route, rec.code, dur)
		rt.log.Info("routed",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"code", rec.code, "dur_ms", float64(dur.Microseconds())/1000)
	})
}

// Close stops the health prober and, in elastic mode, the migrator and
// gossip loops. The HTTP listener (owned by the caller) should be shut
// down first; the backends keep running — they are not the router's to
// stop.
func (rt *Router) Close() {
	close(rt.proberStop)
	<-rt.proberDone
	close(rt.loopStop)
	rt.loopsDone.Wait()
}

// Healthy reports how many shards currently pass probes (for tests and
// ops tooling).
func (rt *Router) Healthy() int {
	n := 0
	for _, b := range rt.activeBackends() {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// Epoch reports the current membership epoch (1 until the first change).
func (rt *Router) Epoch() uint64 { return rt.epoch.Load() }

// Members reports the active ring membership, sorted.
func (rt *Router) Members() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Members()
}

// activeBackends snapshots the active (in-ring) shard list in configured
// order; safe to iterate without holding mu.
func (rt *Router) activeBackends() []*backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*backend, len(rt.order))
	copy(out, rt.order)
	return out
}

// allBackends snapshots every reachable shard — active and retired — for
// the prober: a retired shard must stay watched while its sessions drain.
func (rt *Router) allBackends() []*backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		out = append(out, b)
	}
	return out
}

// --- placement + proxy ---

// sequenceFor is the failover order for a session id: its migration pin
// first when one exists (the session's state is mid-move and must keep
// hitting its current owner), then the ring sequence.
func (rt *Router) sequenceFor(id string) []*backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	names := rt.ring.Sequence(id)
	seq := make([]*backend, 0, len(names)+1)
	if pin, ok := rt.pins[id]; ok {
		if b, ok := rt.backends[pin]; ok {
			seq = append(seq, b)
		}
	}
	for _, n := range names {
		b := rt.backends[n]
		if len(seq) > 0 && b == seq[0] {
			continue
		}
		seq = append(seq, b)
	}
	return seq
}

// primaryFor is the ring's current primary for id, pins ignored — the
// routing answer once a session's migration has fully drained.
func (rt *Router) primaryFor(id string) *backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	p := rt.ring.Primary(id)
	if p == "" {
		return nil
	}
	return rt.backends[p]
}

// routeFor is the retry target after a swallowed 410/404 revealed a
// session mid-move: the pin while one is still set, the ring primary
// once it clears. Retrying a *pinned* session on the ring primary would
// fork it — the primary restores the snapshot and serves while later
// pinned requests resurrect the old owner's copy, and whichever stepped
// further loses when the pin clears. Honoring the pin keeps exactly one
// shard authoritative at every instant; the migrator's second evict
// still closes the resurrect window it leaves.
func (rt *Router) routeFor(id string) *backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if pin, ok := rt.pins[id]; ok {
		if b, ok := rt.backends[pin]; ok {
			return b
		}
	}
	p := rt.ring.Primary(id)
	if p == "" {
		return nil
	}
	return rt.backends[p]
}

// errSessionMoved reports a swallowed 410: the shard answered "gone", which
// mid-migration means the session was just evicted to its snapshot and the
// ring's current primary can rehydrate it.
var errSessionMoved = errors.New("session gone mid-migration")

// errSessionSettling reports a swallowed 404 on a moved-session retry: the
// old owner said "gone", the new primary says "never heard of it" — the
// eviction's snapshot write is still in flight (the daemon closes the
// session before its save completes), so the snapshot will appear within
// one write's latency.
var errSessionSettling = errors.New("session snapshot still settling")

// settleRetries and settleWait bound how long a moved-session retry waits
// out that eviction/save race before letting the 404 stand.
const (
	settleRetries = 4
	settleWait    = 15 * time.Millisecond
)

// proxy walks a session's ring sequence — healthy shards with a willing
// breaker first in ring order, then (fail-open) the shards that were
// skipped, in case probe or breaker state is stale — forwarding the
// buffered request to the first shard that answers at the transport
// level. HTTP statuses, including the daemon's 429/Retry-After
// backpressure, pass through untouched: the shard answered, and its
// answer stands. A transport failure marks the shard unhealthy on the
// spot and feeds its circuit breaker (passive detection), then moves on.
//
// Failover is budgeted two ways: each request gets RetryBudget attempts
// beyond its first, and every retry also spends a token from the
// router-wide bucket — an outage can't turn N incoming requests into
// N×ring-length attempts against shards that are already browning out.
//
// In elastic mode one 410 per request is swallowed and retried against
// the ring's current primary: a session evicted for migration between
// this request's routing decision and its arrival answers "gone" on the
// old owner, and the retry is what turns that race into one warm
// rehydrate instead of a client-visible error.
//
// The returned flag reports whether body is safe to recycle: after a
// transport-level failure the http.Transport's write goroutine may still
// be reading the body briefly, so callers must not return a pooled buffer
// to its pool on that path.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, id string, body []byte) (bodySafe bool) {
	bodySafe = true
	seq := rt.sequenceFor(id)
	if len(seq) == 0 {
		rt.met.noShard.Add(1)
		writeErr(w, http.StatusServiceUnavailable, "no shards configured")
		return bodySafe
	}
	isEpoch := strings.HasSuffix(r.URL.Path, "/epoch")
	attempts := 0
	outOfBudget := false
	movedRetried := false
	settled := 0
	// attempt forwards to b; every attempt after the first is a retry and
	// must be paid for. served means the response was written; stop means
	// the retry budget is gone and the walk must end.
	var attempt func(b *backend, idx int) (served, stop bool)
	attempt = func(b *backend, idx int) (served, stop bool) {
		if attempts > 0 {
			if attempts > rt.cfg.RetryBudget {
				outOfBudget = true
				return false, true
			}
			if !rt.retry.take() {
				rt.met.retryExhausted.Add(1)
				outOfBudget = true
				return false, true
			}
			rt.met.retries.Add(1)
		}
		attempts++
		swallowGone := rt.elastic && !movedRetried
		// A 404 is swallowed (and waited out) only while this request is
		// entangled with a live migration: it already followed a 410 hand-
		// off, it already waited once, or the session is pinned — meaning a
		// move is in flight and the pin may have routed us to an owner that
		// just evicted it. Genuine unknown-session 404s stay instant.
		swallowMiss := rt.elastic && settled < settleRetries &&
			(movedRetried || settled > 0 || rt.isPinned(id))
		if _, err := rt.forward(w, r, b, body, swallowGone, swallowMiss); err != nil {
			if errors.Is(err, errSessionMoved) {
				// The shard answered; nothing was written. Re-route once to
				// the ring's current primary — free of charge: this is a
				// migration hand-off, not a failure.
				movedRetried = true
				rt.met.migrationRetries.Add(1)
				rt.log.Info("session moved mid-request, re-routing", "id", id, "from", b.base)
				np := rt.routeFor(id)
				if np == nil {
					np = b
				}
				attempts-- // the re-route replaces this attempt
				return attempt(np, idx)
			}
			if errors.Is(err, errSessionSettling) {
				// "Gone" on the old owner but not yet restorable on the new:
				// the eviction's snapshot write is mid-flight. Wait one write
				// latency and ask again — bounded, then the 404 stands.
				settled++
				rt.log.Info("moved session not restorable yet, waiting out the snapshot write",
					"id", id, "try", settled)
				select {
				case <-r.Context().Done():
					return false, true
				case <-time.After(settleWait):
				}
				np := rt.routeFor(id)
				if np == nil {
					np = b
				}
				attempts-- // still the same migration hand-off
				return attempt(np, idx)
			}
			bodySafe = false
			b.br.onFailure()
			b.setHealthy(false)
			rt.met.failovers.Add(1)
			rt.log.Warn("shard unreachable, failing over", "shard", b.base, "err", err)
			return false, false
		}
		b.br.onSuccess()
		if idx > 0 {
			if isEpoch {
				rt.met.reroutedEpochs.Add(1)
			}
			rt.log.Info("request rerouted", "id", id, "shard", b.base, "ring_position", idx)
		}
		return true, false
	}
	var skipped []int
	for i, b := range seq {
		if !b.healthy.Load() {
			rt.met.failovers.Add(1)
			skipped = append(skipped, i)
			continue
		}
		if !b.br.allow() {
			rt.met.breakerRejects.Add(1)
			skipped = append(skipped, i)
			continue
		}
		served, stop := attempt(b, i)
		if served {
			return
		}
		if stop {
			// The budget stopped the attempt after allow() may have
			// claimed a half-open trial; give the slot back.
			b.br.unclaim()
			break
		}
	}
	// Fail-open last resort: probe state and breakers can both be stale
	// (a shard back up before its next probe, a breaker still open after
	// a partition healed). These attempts bypass the breaker gate — their
	// outcomes still feed it — and stay bounded by the retry budget.
	if !outOfBudget {
		for _, i := range skipped {
			served, stop := attempt(seq[i], i)
			if served {
				return
			}
			if stop {
				break
			}
		}
	}
	rt.met.noShard.Add(1)
	w.Header().Set("Retry-After", "1")
	msg := "no healthy shard"
	if outOfBudget {
		msg = "no healthy shard (retry budget exhausted)"
	}
	writeErr(w, http.StatusServiceUnavailable, msg)
	return bodySafe
}

// forward sends one buffered request to a shard and streams its response
// back. An error means nothing was written to w — either the shard never
// answered (transport failure; safe to retry on the next ring position) or
// it answered a status the caller asked to swallow: 410 with swallowGone
// set (errSessionMoved; retry on the ring's current primary) or 404 with
// swallowMiss set (errSessionSettling; the migration's snapshot write is
// still landing, retry after a short wait).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte, swallowGone, swallowMiss bool) (int, error) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProxyTimeout)
	defer cancel()
	url := b.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	// The tenant label rides the hop too: a spec without one is labelled by
	// the shard from this header, so tenancy works through the router. The
	// client's bearer token is forwarded for keyed shards; when the client
	// sent none, the router's own backend key (if any) fills the hop.
	for _, h := range []string{"Content-Type", server.TenantHeader, "Authorization"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	if req.Header.Get("Authorization") == "" && rt.cfg.BackendAPIKey != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.BackendAPIKey)
	}
	resp, err := rt.proxyClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if swallowGone && resp.StatusCode == http.StatusGone {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, errSessionMoved
	}
	if swallowMiss && resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, errSessionSettling
	}
	// Retry-After must survive the hop: the router propagates the shard's
	// backpressure contract instead of inventing its own.
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode, nil
}

// --- handlers ---

// handleCreate places a new session: the spec's id (generated here when
// absent — placement needs a key before the daemon ever sees the spec) is
// hashed onto the ring and the create is forwarded to the owning shard.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(w, r, rt.cfg.MaxBody)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	var spec server.SessionSpec
	if raw.Len() > 0 {
		dec := json.NewDecoder(bytes.NewReader(raw.Bytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			putBodyBuf(raw)
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	putBodyBuf(raw) // decoded (or empty): the raw bytes are done
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("r%s-%06d", rt.idSalt, rt.idSeq.Add(1))
	}
	body, err := json.Marshal(spec)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	rt.proxy(rec, r, spec.ID, body)
	if rec.code == http.StatusCreated {
		rt.met.sessionsPlaced.Add(1)
	}
}

// handleSession proxies every per-session route by its {id}.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, "missing session id")
		return
	}
	buf, err := readBody(w, r, rt.cfg.MaxBody)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if rt.proxy(w, r, id, buf.Bytes()) {
		putBodyBuf(buf)
	}
}

// handleList fans a list out to every healthy shard and merges the views.
// Shards that fail mid-list are skipped (and marked) rather than failing
// the whole listing — a partial inventory beats none during an outage.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProxyTimeout)
	defer cancel()
	order := rt.activeBackends()
	type shardList struct {
		views []server.SessionView
		err   error
	}
	results := make([]shardList, len(order))
	var wg sync.WaitGroup
	for i, b := range order {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/sessions", nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := rt.proxyClient.Do(req)
			if err != nil {
				b.setHealthy(false)
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Sessions []server.SessionView `json:"sessions"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				results[i].err = err
				return
			}
			results[i].views = out.Sessions
		}(i, b)
	}
	wg.Wait()
	merged := []server.SessionView{}
	for _, res := range results {
		merged = append(merged, res.views...)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": merged})
}

// ShardHealth is one backend's state in the router's /healthz body.
type ShardHealth struct {
	Shard    string `json:"shard"`
	Healthy  bool   `json:"healthy"`
	Sessions int64  `json:"sessions"`
}

// HealthzBody is the router's /healthz response. MembershipEpoch appears
// only in elastic mode (omitempty keeps the static router's body
// bit-identical to the pre-elastic one).
type HealthzBody struct {
	Status          string        `json:"status"`
	Shards          []ShardHealth `json:"shards"`
	UptimeSeconds   int64         `json:"uptime_seconds"`
	MembershipEpoch uint64        `json:"membership_epoch,omitempty"`
}

// handleHealthz reports the router healthy while at least one shard is:
// a degraded tier still serves (rerouted) traffic.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := HealthzBody{UptimeSeconds: int64(time.Since(rt.started).Seconds())}
	if rt.elastic {
		body.MembershipEpoch = rt.epoch.Load()
	}
	order := rt.activeBackends()
	healthyN := 0
	for _, b := range order {
		h := b.healthy.Load()
		if h {
			healthyN++
		}
		body.Shards = append(body.Shards, ShardHealth{
			Shard: b.base, Healthy: h, Sessions: b.sessions.Load(),
		})
	}
	code := http.StatusOK
	switch {
	case healthyN == len(order):
		body.Status = "ok"
	case healthyN > 0:
		body.Status = "degraded"
	default:
		body.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.met.render(w, rt.activeBackends(), time.Since(rt.started))
	if rt.elastic {
		queued, pinned := rt.pendingMigrations()
		rt.met.renderElastic(w, rt.epoch.Load(), queued, pinned)
	}
}

// --- HTTP plumbing (mirrors the daemon's) ---

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = encodeJSON(w, v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// routeLabel bounds metric cardinality exactly like the daemon's.
func routeLabel(path string) string {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	switch {
	case len(parts) >= 1 && parts[0] == "healthz":
		return "/healthz"
	case len(parts) >= 1 && parts[0] == "metrics":
		return "/metrics"
	case len(parts) >= 1 && parts[0] == "gossip":
		return "/gossip"
	case len(parts) >= 1 && parts[0] == "admin":
		return "/admin"
	case len(parts) >= 2 && parts[0] == "v1" && parts[1] == "sessions":
		switch len(parts) {
		case 2:
			return "/v1/sessions"
		case 3:
			return "/v1/sessions/{id}"
		default:
			return "/v1/sessions/{id}/" + parts[3]
		}
	default:
		return "other"
	}
}
