package router

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/numeric"
)

// backend is one rebudgetd shard behind the router: its base URL plus the
// router's live view of it. Health flips two ways — actively, from the
// /healthz prober, and passively, when a proxied request fails at the
// transport level (the prober then has to see a good probe to flip it
// back). A draining daemon answers /healthz 503, so drains look exactly
// like deaths to the ring: traffic moves to the next position, which is
// what lets a shared snapshot store turn a drain into a warm migration.
type backend struct {
	base string
	br   *breaker // data-path circuit breaker (see breaker.go)

	healthy  atomic.Bool
	sessions atomic.Int64 // /healthz-reported resident session count
	probes   atomic.Int64 // completed probes (telemetry)

	// obsSeq versions this router's health observation for gossip: bumped
	// on every first-hand flip (probe or data-path), so a fresh local
	// observation outranks anything peers still gossip about the old state.
	// See internal/cluster gossip.go for the merge rule.
	obsSeq atomic.Uint64
}

// setHealthy records a first-hand health observation, bumping the gossip
// sequence only when the state actually flips.
func (b *backend) setHealthy(now bool) {
	if b.healthy.Swap(now) != now {
		b.obsSeq.Add(1)
	}
}

// adoptObservation installs a peer's gossiped observation verbatim — state
// and sequence together, no bump: adoption relays authority, it doesn't
// create any.
func (b *backend) adoptObservation(healthy bool, seq uint64) {
	b.healthy.Store(healthy)
	b.obsSeq.Store(seq)
}

// observation snapshots this backend's gossip view.
func (b *backend) observation() (healthy bool, seq uint64) {
	return b.healthy.Load(), b.obsSeq.Load()
}

// healthzBody mirrors the daemon's /healthz response.
type healthzBody struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
}

// probe checks one backend's /healthz and updates its state, reporting
// whether the backend is healthy.
func (b *backend) probe(ctx context.Context, client *http.Client) bool {
	b.probes.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		b.setHealthy(false)
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		b.setHealthy(false)
		return false
	}
	defer resp.Body.Close()
	var body healthzBody
	ok := resp.StatusCode == http.StatusOK &&
		json.NewDecoder(resp.Body).Decode(&body) == nil && body.Status == "ok"
	if ok {
		b.sessions.Store(int64(body.Sessions))
	}
	b.setHealthy(ok)
	return ok
}

// probeAll probes every backend concurrently (one sweep of the prober
// loop, also called synchronously by tests and at startup).
func (rt *Router) probeAll(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, b := range rt.allBackends() {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			was := b.healthy.Load()
			now := b.probe(ctx, rt.probeClient)
			// Probe outcomes feed the breaker: a good probe lets an open
			// breaker try the data path again (half-open); a bad one can
			// open the breaker before any request has to discover the
			// death for itself.
			if now {
				b.br.onProbeSuccess()
			} else {
				b.br.onProbeFailure()
			}
			if was != now {
				rt.log.Info("shard health changed", "shard", b.base, "healthy", now)
			}
		}(b)
	}
	wg.Wait()
}

// prober is the background health loop. Each sleep is jittered over
// [1-j/2, 1+j/2]×ProbeInterval so a fleet of router replicas watching
// the same shards drifts apart instead of probing in lockstep — N
// replicas × M shards of synchronized /healthz traffic is a self-made
// thundering herd on exactly the shards one is worried about. The jitter
// source is deliberately wall-clock seeded: decorrelating replicas is
// the whole point, so this is the one place the router wants real
// nondeterminism.
func (rt *Router) prober() {
	defer close(rt.proberDone)
	rng := numeric.NewRand(uint64(time.Now().UnixNano()) | 1)
	next := func() time.Duration {
		j := rt.cfg.ProbeJitter
		if j <= 0 {
			return rt.cfg.ProbeInterval
		}
		scale := 1 - j/2 + j*rng.Float64()
		return time.Duration(float64(rt.cfg.ProbeInterval) * scale)
	}
	t := time.NewTimer(next())
	defer t.Stop()
	for {
		select {
		case <-rt.proberStop:
			return
		case <-t.C:
			rt.probeAll(context.Background())
			t.Reset(next())
		}
	}
}
