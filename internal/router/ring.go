// Package router is the sharded serving tier in front of N rebudgetd
// backends: a reverse proxy that places sessions on shards via a
// consistent-hash ring (stable session-id → shard mapping, virtual nodes
// for balance), probes each shard's /healthz, and fails open to the next
// ring position when a shard is down or draining. Paired with a shared
// snapshot store on the daemons (rebudgetd -snapshot-dir or -snapshot-url),
// a ring move is a warm migration: the receiving shard rehydrates the
// session from its snapshot and resumes with one warm-started equilibrium
// instead of a cold solve. Each shard's market equilibrium is independent
// (the mechanism is per-chip), so routing preserves ReBudget's numerics
// exactly — epoch allocations through the router are bit-identical to a
// direct daemon. See DESIGN.md, "Sharded serving" and "Elastic membership".
package router

import "rebudget/internal/cluster"

// Ring is the consistent-hash ring, now owned by internal/cluster (the
// elastic-membership layer); the alias keeps the router's historical API
// for tests and callers.
type Ring = cluster.Ring

// NewRing builds an empty ring; vnodes <= 0 selects 64 virtual nodes per
// member.
func NewRing(vnodes int) *Ring { return cluster.NewRing(vnodes) }
