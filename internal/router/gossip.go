package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"rebudget/internal/cluster"
)

// Probe-state gossip between router replicas. Each replica periodically
// pushes its digest — membership epoch, member list, per-shard health
// observations — to every configured peer and merges the peer's digest
// out of the response (push-pull, so one exchange converges both sides).
// With every replica pushing to every peer each interval, a first-hand
// observation reaches a full mesh in one round and any connected peer
// graph in diameter-many rounds; internal/cluster pins the bound.
//
// Authority is sequence-numbered, not clocked: only first-hand flips bump
// a shard's observation seq (backend.setHealthy), so a replica that just
// probed a shard outranks every peer still relaying the old state — and
// stale gossip can never shout down a fresh local probe.

// digest snapshots this router's gossip view.
func (rt *Router) digest() cluster.Digest {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	d := cluster.Digest{
		Epoch:   rt.epoch.Load(),
		Members: rt.ring.Members(),
	}
	for _, b := range rt.order {
		healthy, seq := b.observation()
		d.Shards = append(d.Shards, cluster.ShardObservation{
			Shard: b.base, Healthy: healthy, Seq: seq,
		})
	}
	return d
}

// mergeDigest folds a peer's digest into local state: membership first
// (a higher epoch's member list is adopted wholesale — epochs only move
// through deliberate changes, so higher is simply newer), then per-shard
// observations under the cluster merge rule. Reports how many
// observations were adopted.
func (rt *Router) mergeDigest(d cluster.Digest) (adopted int) {
	if len(d.Members) > 0 && d.Epoch > rt.epoch.Load() {
		rt.adoptMembership(d.Members, d.Epoch)
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, obs := range d.Shards {
		b, known := rt.backends[obs.Shard]
		if !known {
			// Not in our membership (yet): epoch-gated, re-gossiped later.
			continue
		}
		_, localSeq := b.observation()
		local := cluster.ShardObservation{Shard: obs.Shard, Healthy: b.healthy.Load(), Seq: localSeq}
		if cluster.Supersedes(obs, local) {
			b.adoptObservation(obs.Healthy, obs.Seq)
			adopted++
			rt.log.Info("gossip adopted shard observation",
				"shard", obs.Shard, "healthy", obs.Healthy, "seq", obs.Seq)
		}
	}
	rt.met.gossipAdopted.Add(int64(adopted))
	return adopted
}

// adoptMembership replaces the active member set with a peer's newer view.
// The adopting replica performs no migration — the replica that executed
// the membership change drives the drain; this one only needs to route
// consistently with the new ring. Backends it didn't know are created
// (and probed on the next sweep); backends no longer in the membership
// are dropped unless they still hold pinned sessions.
func (rt *Router) adoptMembership(members []string, epoch uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if epoch <= rt.epoch.Load() { // re-check under the write lock
		return
	}
	want := make(map[string]bool, len(members))
	for _, m := range members {
		want[m] = true
	}
	// Add the new members.
	for _, m := range members {
		if _, ok := rt.backends[m]; !ok {
			b := &backend{base: m, br: newBreaker(rt.cfg.Breaker)}
			rt.backends[m] = b
			rt.order = append(rt.order, b)
		}
		if !rt.ring.Has(m) {
			rt.ring.Add(m)
			if b, ok := rt.retired[m]; ok {
				delete(rt.retired, m)
				rt.order = append(rt.order, b)
			}
		}
	}
	// Drop the departed ones (kept reachable while pinned, like a local
	// remove — pins on this replica come from its own reconcile passes).
	pinnedShards := make(map[string]bool, len(rt.pins))
	for _, shard := range rt.pins {
		pinnedShards[shard] = true
	}
	kept := rt.order[:0]
	for _, b := range rt.order {
		if want[b.base] {
			kept = append(kept, b)
			continue
		}
		rt.ring.Remove(b.base)
		if pinnedShards[b.base] {
			rt.retired[b.base] = b
		} else {
			delete(rt.backends, b.base)
		}
	}
	rt.order = kept
	rt.epoch.Store(epoch)
	rt.met.membershipChanges.Add(1)
	rt.log.Info("membership adopted from gossip", "epoch", epoch, "members", len(members))
}

// gossiper is the background anti-entropy loop.
func (rt *Router) gossiper() {
	defer rt.loopsDone.Done()
	t := time.NewTicker(rt.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.loopStop:
			return
		case <-t.C:
			rt.gossipOnce(context.Background())
		}
	}
}

// gossipOnce pushes this router's digest to every peer and merges each
// response digest (exported through tests via GossipNow).
func (rt *Router) gossipOnce(ctx context.Context) {
	d := rt.digest()
	payload, err := json.Marshal(d)
	if err != nil {
		return
	}
	for _, peer := range rt.cfg.GossipPeers {
		rt.met.gossipRounds.Add(1)
		ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			peer+"/gossip", bytes.NewReader(payload))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if rt.cfg.AdminToken != "" {
			req.Header.Set("Authorization", "Bearer "+rt.cfg.AdminToken)
		}
		resp, err := rt.proxyClient.Do(req)
		if err != nil {
			cancel()
			rt.met.gossipFailures.Add(1)
			continue
		}
		var reply cluster.Digest
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&reply) == nil {
			rt.mergeDigest(reply)
		}
		drainBody(resp)
		cancel()
	}
}

// GossipNow runs one synchronous gossip exchange with every peer — the
// deterministic handle tests and ops tooling use instead of waiting out
// the background interval.
func (rt *Router) GossipNow(ctx context.Context) { rt.gossipOnce(ctx) }

// handleGossip answers a peer's push: merge its digest, reply with ours.
// When an admin token is configured the exchange must carry it — a
// membership view is admin state, and adopting one from an unauthenticated
// source would let anyone re-shape the fleet.
func (rt *Router) handleGossip(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.AdminToken != "" && !rt.authorized(r) {
		writeErr(w, http.StatusUnauthorized, "gossip token required")
		return
	}
	var d cluster.Digest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err := dec.Decode(&d); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.mergeDigest(d)
	writeJSON(w, http.StatusOK, rt.digest())
}
