package router

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"rebudget/internal/cluster"
	"rebudget/internal/core"
)

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Elastic membership: live shard add/remove under traffic, with snapshots
// as the migration vehicle and the move rate bounded by the fleet-level
// CutSchedule. The protocol per change is pin → flip → reconcile → drain:
//
//  1. List resident sessions and compute the moved set — the keys whose
//     ring primary differs between the old and new membership
//     (cluster.MovedKeys; deterministic, so every replica agrees).
//  2. Pin each moved session to its current owner. Pins override the ring
//     in sequenceFor, so the flip cannot strand a session that has no
//     snapshot yet.
//  3. Flip the ring and bump the membership epoch.
//  4. Reconcile: list again and pin anything that moved in the window
//     between the first list and the flip.
//  5. Drain: the migrator evicts pinned sessions at MigrationBudget per
//     tick (core.CutSchedule with NoBackoff — §4.2's bounded reassignment
//     applied to the serving fleet). Each evict writes the session's
//     snapshot and frees it; clearing the pin then routes its next request
//     to the new owner, which rehydrates warm.
//
// A removed shard leaves the ring immediately (step 3) but stays reachable
// in the retired set until its last pinned session has drained — the
// evict verb needs somewhere to send the state.

// ErrNotMember reports a remove of a shard the ring doesn't hold.
var ErrNotMember = errors.New("router: shard is not a member")

// AddShard grows the ring by one shard under traffic, returning the number
// of sessions scheduled to migrate to it. The shard must answer /healthz
// before it is admitted — growing onto a dead shard is a typo, not a plan.
func (rt *Router) AddShard(ctx context.Context, raw string) (moved int, err error) {
	base := strings.TrimRight(raw, "/")
	if base == "" {
		return 0, errors.New("router: empty shard URL")
	}
	rt.mu.RLock()
	_, active := rt.backends[base]
	_, draining := rt.retired[base]
	oldMembers := rt.ring.Members()
	rt.mu.RUnlock()
	if draining {
		return 0, fmt.Errorf("router: shard %q is still draining from a remove", base)
	}
	if active {
		return 0, fmt.Errorf("router: shard %q is already a member", base)
	}
	b := &backend{base: base, br: newBreaker(rt.cfg.Breaker)}
	probeCtx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	ok := b.probe(probeCtx, rt.probeClient)
	cancel()
	if !ok {
		return 0, fmt.Errorf("router: shard %q failed its admission probe", base)
	}

	// Pin the moved set before the flip: between the pin and the evict,
	// those sessions keep hitting the owner that actually holds them. The
	// listing races any still-draining previous change, so sessions that
	// complete a move after seqStart are dropped from this plan — their
	// listed location is stale.
	seqStart := rt.beginListing()
	defer rt.endListing()
	residents := rt.listResidents(ctx)
	ids := make([]string, 0, len(residents))
	for id := range residents {
		ids = append(ids, id)
	}
	newMembers := append(append([]string{}, oldMembers...), base)
	movedKeys := cluster.MovedKeys(oldMembers, newMembers, rt.cfg.VNodes, ids)

	rt.mu.Lock()
	if _, dup := rt.backends[base]; dup {
		rt.mu.Unlock()
		return 0, fmt.Errorf("router: shard %q is already a member", base)
	}
	var plan []migration
	for _, id := range movedKeys {
		from, resident := residents[id]
		if !resident || rt.movedSince(id, seqStart) {
			continue
		}
		rt.pins[id] = from
		plan = append(plan, migration{id: id, from: from})
	}
	rt.backends[base] = b
	rt.order = append(rt.order, b)
	rt.ring.Add(base)
	epoch := rt.epoch.Add(1)
	rt.mu.Unlock()

	rt.enqueueMigrations(plan)
	rt.reconcile(ctx)
	rt.met.membershipChanges.Add(1)
	rt.log.Info("shard added", "shard", base, "epoch", epoch, "migrating", len(plan))
	return len(plan), nil
}

// RemoveShard shrinks the ring by one shard under traffic, returning the
// number of resident sessions scheduled to migrate off it. The shard
// leaves the ring at once but keeps serving its pinned sessions from the
// retired set until the migrator has drained them.
func (rt *Router) RemoveShard(ctx context.Context, raw string) (moved int, err error) {
	base := strings.TrimRight(raw, "/")
	rt.mu.RLock()
	b, active := rt.backends[base]
	_, draining := rt.retired[base]
	memberCount := rt.ring.Len()
	rt.mu.RUnlock()
	if draining {
		return 0, fmt.Errorf("router: shard %q is already draining", base)
	}
	if !active {
		return 0, fmt.Errorf("%w: %q", ErrNotMember, base)
	}
	if memberCount <= 1 {
		return 0, errors.New("router: refusing to remove the last shard")
	}

	seqStart := rt.beginListing()
	defer rt.endListing()
	residents := rt.listShardResidents(ctx, b)

	rt.mu.Lock()
	if !rt.ring.Has(base) {
		rt.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNotMember, base)
	}
	var plan []migration
	for _, id := range residents {
		if rt.movedSince(id, seqStart) {
			continue // moved off this shard while we were listing it
		}
		rt.pins[id] = base
		plan = append(plan, migration{id: id, from: base})
	}
	rt.ring.Remove(base)
	rt.retired[base] = b
	kept := rt.order[:0]
	for _, ob := range rt.order {
		if ob != b {
			kept = append(kept, ob)
		}
	}
	rt.order = kept
	epoch := rt.epoch.Add(1)
	rt.mu.Unlock()

	rt.enqueueMigrations(plan)
	rt.reconcile(ctx)
	rt.met.membershipChanges.Add(1)
	rt.log.Info("shard removed", "shard", base, "epoch", epoch, "migrating", len(plan))
	return len(plan), nil
}

// SetBackends reconciles the ring against a full desired shard list — the
// SIGHUP / config-reload path for deployments without the admin API. Adds
// and removes are the same pin/flip/drain machinery; unchanged shards are
// untouched. The first error aborts the remaining steps (the next reload
// retries them).
func (rt *Router) SetBackends(ctx context.Context, desired []string) error {
	want := make(map[string]bool, len(desired))
	var wantList []string
	for _, raw := range desired {
		base := strings.TrimRight(raw, "/")
		if base == "" {
			return errors.New("router: empty backend URL in reload")
		}
		if !want[base] {
			want[base] = true
			wantList = append(wantList, base)
		}
	}
	if len(wantList) == 0 {
		return errors.New("router: reload with no backends refused")
	}
	current := rt.Members()
	for _, base := range wantList {
		has := false
		for _, cur := range current {
			if cur == base {
				has = true
				break
			}
		}
		if !has {
			if _, err := rt.AddShard(ctx, base); err != nil {
				return err
			}
		}
	}
	for _, cur := range current {
		if !want[cur] {
			if _, err := rt.RemoveShard(ctx, cur); err != nil {
				return err
			}
		}
	}
	return nil
}

// listResidents maps every resident session id to the shard holding it,
// by asking each active shard directly (the router's own /v1/sessions
// merge loses the shard attribution).
func (rt *Router) listResidents(ctx context.Context) map[string]string {
	out := make(map[string]string)
	for _, b := range rt.activeBackends() {
		if !b.healthy.Load() {
			continue
		}
		for _, id := range rt.listShardResidents(ctx, b) {
			out[id] = b.base
		}
	}
	return out
}

// listShardResidents lists one shard's resident session ids.
func (rt *Router) listShardResidents(ctx context.Context, b *backend) []string {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/sessions", nil)
	if err != nil {
		return nil
	}
	resp, err := rt.proxyClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var out struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
		return nil
	}
	ids := make([]string, 0, len(out.Sessions))
	for _, s := range out.Sessions {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return ids
}

// reconcile closes the list/flip race: sessions created (or missed)
// between the migration plan's listing and the ring flip may now be
// resident on a shard that is no longer their primary. Pin and queue
// them; idempotent for sessions already pinned, and sessions whose move
// completed after this listing began are skipped — the listing's claim
// about where they live is stale, and re-pinning them to their old owner
// would fork the session (see clearPin).
func (rt *Router) reconcile(ctx context.Context) {
	seqStart := rt.beginListing()
	defer rt.endListing()
	residents := rt.listResidents(ctx)
	var plan []migration
	rt.mu.Lock()
	for id, shard := range residents {
		if _, pinned := rt.pins[id]; pinned {
			continue
		}
		if rt.movedSince(id, seqStart) {
			continue
		}
		if rt.ring.Primary(id) != shard {
			rt.pins[id] = shard
			plan = append(plan, migration{id: id, from: shard})
		}
	}
	rt.mu.Unlock()
	rt.enqueueMigrations(plan)
}

func (rt *Router) enqueueMigrations(plan []migration) {
	if len(plan) == 0 {
		return
	}
	rt.migMu.Lock()
	rt.migQueue = append(rt.migQueue, plan...)
	rt.migMu.Unlock()
}

// pendingMigrations reports queued moves plus still-pinned sessions (for
// /metrics; the two sets overlap until a move completes).
func (rt *Router) pendingMigrations() (queued, pinned int) {
	rt.migMu.Lock()
	queued = len(rt.migQueue)
	rt.migMu.Unlock()
	rt.mu.RLock()
	pinned = len(rt.pins)
	rt.mu.RUnlock()
	return queued, pinned
}

// migrator is the background drain loop: every tick it asks the fleet's
// CutSchedule how many sessions it may move, pops that many from the
// queue, and moves each one. NoBackoff keeps the budget constant — a
// membership change drains at a steady, bounded rate instead of a
// thundering re-shuffle (or an exponentially decaying trickle).
func (rt *Router) migrator() {
	defer rt.loopsDone.Done()
	sched := core.NewCutSchedule(float64(rt.cfg.MigrationBudget), 1, true)
	t := time.NewTicker(rt.cfg.MigrationInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.loopStop:
			return
		case <-t.C:
			cut, ok := sched.Next()
			if !ok {
				return // unreachable with NoBackoff; mirrors the §4.2 loop shape
			}
			rt.migrateTick(int(cut))
			rt.finalizeRetired()
		}
	}
}

// migrateTick moves up to budget sessions.
func (rt *Router) migrateTick(budget int) {
	for n := 0; n < budget; n++ {
		rt.migMu.Lock()
		if len(rt.migQueue) == 0 {
			rt.migMu.Unlock()
			return
		}
		m := rt.migQueue[0]
		rt.migQueue = rt.migQueue[1:]
		rt.migMu.Unlock()
		rt.migrateOne(m)
	}
}

// migrateOne executes one move: evict the session on its current owner
// (retire-to-snapshot), clear its pin so the ring routes to the new
// owner, then evict once more in case a pinned in-flight request
// resurrected it on the old owner between the two steps. A transport
// failure requeues the move (bounded retries) — the owner may be mid-
// restart and the session is still pinned, so nothing is lost by waiting.
func (rt *Router) migrateOne(m migration) {
	if ok, retry := rt.evict(m.from, m.id); !ok {
		if retry && m.retries < 5 {
			m.retries++
			rt.enqueueMigrations([]migration{m})
		} else {
			// The owner is gone for good (or the session already was):
			// unpin and let the ring's owner rehydrate from whatever
			// snapshot exists — the same contract as a shard death.
			rt.clearPin(m.id)
			rt.met.migrationDropped.Add(1)
		}
		return
	}
	rt.clearPin(m.id)
	rt.evict(m.from, m.id) // close the resurrect window; 404 is the norm
	rt.met.migrations.Add(1)
	rt.log.Info("session migrated", "id", m.id, "from", m.from)
}

// isPinned reports whether id is mid-migration: pinned to its old owner
// between the ring flip and the drain of its move. Requests for a pinned
// session may race the eviction itself (owner already retired it, pin not
// yet cleared), so the proxy treats their 404s as settling, not missing.
func (rt *Router) isPinned(id string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	_, ok := rt.pins[id]
	return ok
}

// clearPin releases a session from the migrator and stamps the move: any
// membership change whose resident listing began before this instant must
// not trust what that listing said about id. Without the stamp, a
// reconcile racing the drain re-pins a just-moved session to its OLD
// owner off the stale list — traffic then resurrects the old snapshot
// there while the new owner's live copy goes stale, and whichever copy
// stepped further loses when the bogus pin drains (an observed epoch
// regression, not a hypothetical).
func (rt *Router) clearPin(id string) {
	rt.mu.Lock()
	delete(rt.pins, id)
	rt.moveSeq++
	rt.movedAt[id] = rt.moveSeq
	rt.mu.Unlock()
}

// beginListing opens a resident-listing window: it snapshots the move
// counter for movedSince checks and holds the movedAt map unprunable
// until the matching endListing. Callers defer endListing immediately.
func (rt *Router) beginListing() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.listings++
	return rt.moveSeq
}

func (rt *Router) endListing() {
	rt.mu.Lock()
	rt.listings--
	rt.mu.Unlock()
}

// movedSince reports whether id's pin cleared after the given snapshot.
// Callers hold rt.mu.
func (rt *Router) movedSince(id string, since uint64) bool {
	at, ok := rt.movedAt[id]
	return ok && at > since
}

// evict asks a shard to retire a session to its snapshot. ok means the
// session is no longer resident there (evicted now, or already gone);
// retry means the shard didn't answer and the move should be retried.
func (rt *Router) evict(base, id string) (ok, retry bool) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/sessions/"+id+"/evict", nil)
	if err != nil {
		return false, false
	}
	// The migrator speaks for itself, not for a client — keyed shards get
	// the router's own backend token.
	if rt.cfg.BackendAPIKey != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.BackendAPIKey)
	}
	resp, err := rt.proxyClient.Do(req)
	if err != nil {
		return false, true
	}
	drainBody(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return true, false
	case http.StatusNotFound, http.StatusGone:
		// Not resident (idled out to its snapshot already, or deleted).
		return true, false
	default:
		return false, true
	}
}

// finalizeRetired drops retired shards whose last pinned session has
// drained: nothing routes to them anymore, so they leave the backend set
// entirely (probes stop, metrics forget them).
func (rt *Router) finalizeRetired() {
	rt.migMu.Lock()
	queued := len(rt.migQueue)
	rt.migMu.Unlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Quiescent — no pins, nothing queued — means no listing can be in a
	// race with a drain, so the move stamps have served their purpose.
	if queued == 0 && rt.listings == 0 && len(rt.pins) == 0 && len(rt.movedAt) > 0 {
		rt.movedAt = make(map[string]uint64)
	}
	if len(rt.retired) == 0 {
		return
	}
	stillPinned := make(map[string]bool, len(rt.retired))
	for _, shard := range rt.pins {
		stillPinned[shard] = true
	}
	for base := range rt.retired {
		if !stillPinned[base] {
			delete(rt.retired, base)
			delete(rt.backends, base)
			rt.log.Info("retired shard released", "shard", base)
		}
	}
}

// --- admin API ---

// authorized checks the bearer token in constant time.
func (rt *Router) authorized(r *http.Request) bool {
	if rt.cfg.AdminToken == "" {
		return false
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(rt.cfg.AdminToken)) == 1
}

// adminShardArg extracts the shard URL from body {"shard": "..."} or the
// ?shard= query parameter.
func adminShardArg(r *http.Request, maxBody int64) (string, error) {
	if q := r.URL.Query().Get("shard"); q != "" {
		return q, nil
	}
	var body struct {
		Shard string `json:"shard"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	if err := dec.Decode(&body); err != nil {
		return "", fmt.Errorf("shard argument required (body {\"shard\": ...} or ?shard=): %v", err)
	}
	return body.Shard, nil
}

// MembershipBody is the admin API's view of the ring, also returned by
// every mutation so one call shows its effect.
type MembershipBody struct {
	Epoch     uint64   `json:"epoch"`
	Members   []string `json:"members"`
	Draining  []string `json:"draining,omitempty"`
	Migrating int      `json:"migrating"`
}

func (rt *Router) membershipBody() MembershipBody {
	rt.mu.RLock()
	members := rt.ring.Members()
	var draining []string
	for base := range rt.retired {
		draining = append(draining, base)
	}
	rt.mu.RUnlock()
	sort.Strings(draining)
	queued, pinned := rt.pendingMigrations()
	mig := queued
	if pinned > mig {
		mig = pinned
	}
	return MembershipBody{
		Epoch:     rt.epoch.Load(),
		Members:   members,
		Draining:  draining,
		Migrating: mig,
	}
}

func (rt *Router) handleAdminAdd(w http.ResponseWriter, r *http.Request) {
	if !rt.authorized(r) {
		writeErr(w, http.StatusUnauthorized, "admin token required")
		return
	}
	shard, err := adminShardArg(r, rt.cfg.MaxBody)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	moved, err := rt.AddShard(r.Context(), shard)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	body := rt.membershipBody()
	if moved > body.Migrating {
		body.Migrating = moved
	}
	writeJSON(w, http.StatusOK, body)
}

func (rt *Router) handleAdminRemove(w http.ResponseWriter, r *http.Request) {
	if !rt.authorized(r) {
		writeErr(w, http.StatusUnauthorized, "admin token required")
		return
	}
	shard, err := adminShardArg(r, rt.cfg.MaxBody)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	moved, err := rt.RemoveShard(r.Context(), shard)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNotMember) {
			code = http.StatusNotFound
		}
		writeErr(w, code, err.Error())
		return
	}
	body := rt.membershipBody()
	if moved > body.Migrating {
		body.Migrating = moved
	}
	writeJSON(w, http.StatusOK, body)
}

func (rt *Router) handleMembership(w http.ResponseWriter, r *http.Request) {
	if !rt.authorized(r) {
		writeErr(w, http.StatusUnauthorized, "admin token required")
		return
	}
	writeJSON(w, http.StatusOK, rt.membershipBody())
}
