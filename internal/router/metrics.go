package router

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// proxyBuckets are the proxied-request latency histogram bounds, in
// seconds. Proxied epochs pay the shard's allocation cost plus one local
// hop, so the range matches the daemon's own request histogram.
var proxyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// rtrMetrics is the router's observability state, rendered in Prometheus
// text exposition format (hand-rolled like the daemon's — the repo takes
// no dependencies, but the output is scrape-compatible).
type rtrMetrics struct {
	sessionsPlaced atomic.Int64 // creates proxied successfully
	failovers      atomic.Int64 // requests skipped past an unhealthy/unreachable shard
	reroutedEpochs atomic.Int64 // epoch requests served by a non-primary shard
	noShard        atomic.Int64 // requests with no healthy shard at all
	breakerRejects atomic.Int64 // first-pass skips because a breaker was open
	retries        atomic.Int64 // failover attempts beyond a request's first
	retryExhausted atomic.Int64 // retries refused by the router-wide token bucket

	// Elastic-membership counters (rendered only in elastic mode, so a
	// static router's /metrics stays bit-identical to the pre-elastic one).
	migrations        atomic.Int64 // sessions moved to a new owner
	migrationRetries  atomic.Int64 // 410s swallowed and re-routed mid-migration
	migrationDropped  atomic.Int64 // moves abandoned (owner gone; snapshot-or-cold)
	membershipChanges atomic.Int64 // ring flips (admin, reload, or gossip adoption)
	gossipRounds      atomic.Int64 // digests pushed to peers
	gossipAdopted     atomic.Int64 // peer observations adopted locally
	gossipFailures    atomic.Int64 // unreachable peers

	requests labelCounters // route|code

	latCount atomic.Int64
	latSum   atomicFloat
	latBkt   [13]atomic.Int64 // parallel to proxyBuckets
}

func init() {
	if len(proxyBuckets) != len((&rtrMetrics{}).latBkt) {
		panic("router: latBkt array out of sync with proxyBuckets")
	}
}

// labelCounters is a small label-value → counter map (the daemon keeps an
// identical unexported helper; the packages stay decoupled).
type labelCounters struct {
	mu sync.Mutex
	m  map[string]*int64
}

func (lc *labelCounters) inc(label string) {
	lc.mu.Lock()
	if lc.m == nil {
		lc.m = make(map[string]*int64)
	}
	c, ok := lc.m[label]
	if !ok {
		c = new(int64)
		lc.m[label] = c
	}
	*c++
	lc.mu.Unlock()
}

func (lc *labelCounters) snapshot() ([]string, []int64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	labels := make([]string, 0, len(lc.m))
	for l := range lc.m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	counts := make([]int64, len(labels))
	for i, l := range labels {
		counts[i] = *lc.m[l]
	}
	return labels, counts
}

// atomicFloat accumulates float64 via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// observe records one routed request.
func (m *rtrMetrics) observe(route string, code int, dur time.Duration) {
	m.requests.inc(fmt.Sprintf("route=%q,code=\"%d\"", route, code))
	sec := dur.Seconds()
	m.latCount.Add(1)
	m.latSum.add(sec)
	for i, ub := range proxyBuckets {
		if sec <= ub {
			m.latBkt[i].Add(1)
		}
	}
}

// render writes the exposition: router counters, the proxied latency
// histogram, and per-shard gauges (health, probed session counts).
func (m *rtrMetrics) render(w io.Writer, backends []*backend, uptime time.Duration) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtFloat(v))
	}

	gauge("rebudget_router_up", "Router liveness (always 1 while serving).", 1)
	gauge("rebudget_router_uptime_seconds", "Seconds since the router started.", uptime.Seconds())
	gauge("rebudget_router_shards", "Configured shard count.", float64(len(backends)))
	healthyN := 0
	for _, b := range backends {
		if b.healthy.Load() {
			healthyN++
		}
	}
	gauge("rebudget_router_shards_healthy", "Shards currently passing health probes.", float64(healthyN))
	counter("rebudget_router_sessions_placed_total", "Sessions created through the router.", float64(m.sessionsPlaced.Load()))
	counter("rebudget_router_failovers_total", "Requests moved past an unhealthy or unreachable shard.", float64(m.failovers.Load()))
	counter("rebudget_router_rerouted_epochs_total", "Epoch requests served by a non-primary shard.", float64(m.reroutedEpochs.Load()))
	counter("rebudget_router_no_shard_total", "Requests failed because no shard was healthy.", float64(m.noShard.Load()))
	counter("rebudget_router_breaker_rejections_total", "Shards skipped on the first pass because their circuit breaker was open.", float64(m.breakerRejects.Load()))
	counter("rebudget_router_retries_total", "Failover attempts beyond a request's first.", float64(m.retries.Load()))
	counter("rebudget_router_retry_budget_exhausted_total", "Retries refused by the router-wide retry token bucket.", float64(m.retryExhausted.Load()))

	fmt.Fprintf(w, "# HELP rebudget_router_shard_up Shard health by probe (1 healthy).\n# TYPE rebudget_router_shard_up gauge\n")
	for _, b := range backends {
		up := 0
		if b.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(w, "rebudget_router_shard_up{shard=%q} %d\n", b.base, up)
	}
	fmt.Fprintf(w, "# HELP rebudget_router_shard_sessions Resident sessions per shard, from its last good /healthz.\n# TYPE rebudget_router_shard_sessions gauge\n")
	for _, b := range backends {
		fmt.Fprintf(w, "rebudget_router_shard_sessions{shard=%q} %d\n", b.base, b.sessions.Load())
	}
	fmt.Fprintf(w, "# HELP rebudget_router_shard_probes_total Health probes completed per shard.\n# TYPE rebudget_router_shard_probes_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(w, "rebudget_router_shard_probes_total{shard=%q} %d\n", b.base, b.probes.Load())
	}
	fmt.Fprintf(w, "# HELP rebudget_router_breaker_state Circuit breaker position per shard (one-hot over states).\n# TYPE rebudget_router_breaker_state gauge\n")
	for _, b := range backends {
		cur := b.br.currentState()
		for _, s := range breakerStates {
			v := 0
			if s == cur {
				v = 1
			}
			fmt.Fprintf(w, "rebudget_router_breaker_state{shard=%q,state=%q} %d\n", b.base, s.String(), v)
		}
	}
	fmt.Fprintf(w, "# HELP rebudget_router_breaker_transitions_total Circuit breaker entries into each state per shard.\n# TYPE rebudget_router_breaker_transitions_total counter\n")
	for _, b := range backends {
		tc := b.br.transitionCounts()
		for _, s := range breakerStates {
			fmt.Fprintf(w, "rebudget_router_breaker_transitions_total{shard=%q,to=%q} %d\n", b.base, s.String(), tc[s])
		}
	}

	labels, counts := m.requests.snapshot()
	fmt.Fprintf(w, "# HELP rebudget_router_requests_total Requests routed, by route and status code.\n# TYPE rebudget_router_requests_total counter\n")
	for i, l := range labels {
		fmt.Fprintf(w, "rebudget_router_requests_total{%s} %d\n", l, counts[i])
	}
	fmt.Fprintf(w, "# HELP rebudget_router_request_seconds Proxied request latency.\n# TYPE rebudget_router_request_seconds histogram\n")
	for i, ub := range proxyBuckets {
		fmt.Fprintf(w, "rebudget_router_request_seconds_bucket{le=%q} %d\n", fmtFloat(ub), m.latBkt[i].Load())
	}
	fmt.Fprintf(w, "rebudget_router_request_seconds_bucket{le=\"+Inf\"} %d\n", m.latCount.Load())
	fmt.Fprintf(w, "rebudget_router_request_seconds_sum %s\n", fmtFloat(m.latSum.load()))
	fmt.Fprintf(w, "rebudget_router_request_seconds_count %d\n", m.latCount.Load())
}

// renderElastic appends the elastic-membership series: epoch, migration
// and gossip counters. Called only in elastic mode — the whole section is
// absent from a static router's exposition.
func (m *rtrMetrics) renderElastic(w io.Writer, epoch uint64, queued, pinned int) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	gauge("rebudget_router_membership_epoch", "Current membership epoch (1 until the first change).", float64(epoch))
	counter("rebudget_router_membership_changes_total", "Ring flips applied (admin API, config reload, or gossip adoption).", float64(m.membershipChanges.Load()))
	counter("rebudget_router_migrations_total", "Sessions migrated to a new owner via snapshot evict/rehydrate.", float64(m.migrations.Load()))
	counter("rebudget_router_migration_retries_total", "Requests re-routed after a session moved mid-flight (swallowed 410s).", float64(m.migrationRetries.Load()))
	counter("rebudget_router_migrations_dropped_total", "Migrations abandoned because the owning shard stayed unreachable.", float64(m.migrationDropped.Load()))
	gauge("rebudget_router_migrations_pending", "Session moves queued or pinned mid-move.", float64(max(queued, pinned)))
	counter("rebudget_router_gossip_rounds_total", "Gossip digests pushed to peers.", float64(m.gossipRounds.Load()))
	counter("rebudget_router_gossip_adopted_total", "Peer shard observations adopted locally.", float64(m.gossipAdopted.Load()))
	counter("rebudget_router_gossip_failures_total", "Gossip pushes that failed to reach their peer.", float64(m.gossipFailures.Load()))
}

func fmtFloat(v float64) string { return fmt.Sprintf("%g", v) }
