package router

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

// Tenant labels must survive the routing hop both ways they can travel: in
// the spec body (which the router decodes and re-marshals for id injection)
// and in the X-Rebudget-Tenant header (which forward must copy).
func TestRouterPassesTenantThrough(t *testing.T) {
	tenancy := &server.TenancyConfig{Epoch: time.Hour}
	shards := make([]string, 2)
	for i := range shards {
		sh := newShard(t, server.Config{Tenancy: tenancy})
		shards[i] = sh.ts.URL
	}
	rt, err := New(Config{
		Backends:      shards,
		ProbeInterval: time.Hour,
		Logger:        discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	rc := client.New(ts.URL)
	ctx := context.Background()

	// Spec-carried label.
	spec := fig3Spec("spec-labelled")
	spec.Tenant = "acme/prod"
	v := mustCreate(t, rc, spec)
	if v.Tenant != "acme/prod" {
		t.Fatalf("spec tenant through router = %q, want acme/prod", v.Tenant)
	}

	// Header-carried label: raw POST, since the typed client has no headers.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions",
		strings.NewReader(`{"id":"hdr-labelled","workload":{"fig3":true},"mechanism":"rebudget-0.05"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TenantHeader, "acme/dev")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("header create through router: status %d", resp.StatusCode)
	}
	hv, err := rc.GetSession(ctx, "hdr-labelled")
	if err != nil {
		t.Fatal(err)
	}
	if hv.Tenant != "acme/dev" {
		t.Fatalf("header tenant through router = %q, want acme/dev", hv.Tenant)
	}

	// The merged list view carries the labels too.
	views, err := rc.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, lv := range views {
		got[lv.ID] = lv.Tenant
	}
	if got["spec-labelled"] != "acme/prod" || got["hdr-labelled"] != "acme/dev" {
		t.Fatalf("routed list tenants: %v", got)
	}
}
