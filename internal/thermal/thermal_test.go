package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{AmbientC: 45, ResistanceCW: 0, TimeConstantS: 1}); err == nil {
		t.Error("zero resistance accepted")
	}
	if _, err := NewNode(Config{AmbientC: 45, ResistanceCW: 1, TimeConstantS: 0}); err == nil {
		t.Error("zero time constant accepted")
	}
	n, err := NewNode(DefaultConfig())
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if n.Temp() != DefaultConfig().AmbientC {
		t.Errorf("initial temperature = %g, want ambient", n.Temp())
	}
}

func TestSteadyState(t *testing.T) {
	n, _ := NewNode(Config{AmbientC: 45, ResistanceCW: 3.5, TimeConstantS: 0.1})
	if got := n.SteadyState(10); math.Abs(got-80) > 1e-12 {
		t.Errorf("SteadyState(10) = %g, want 80", got)
	}
	if got := n.SteadyState(0); got != 45 {
		t.Errorf("SteadyState(0) = %g, want ambient", got)
	}
}

func TestUpdateConvergesToSteadyState(t *testing.T) {
	n, _ := NewNode(DefaultConfig())
	want := n.SteadyState(10)
	for i := 0; i < 1000; i++ {
		n.Update(10, 0.001) // 1 s total, 10 time constants
	}
	if math.Abs(n.Temp()-want) > 0.1 {
		t.Errorf("temperature after 10τ = %g, want %g", n.Temp(), want)
	}
}

func TestUpdateMonotoneApproach(t *testing.T) {
	n, _ := NewNode(DefaultConfig())
	prev := n.Temp()
	for i := 0; i < 100; i++ {
		cur := n.Update(10, 0.001)
		if cur < prev-1e-12 {
			t.Fatal("heating must be monotone under constant power")
		}
		prev = cur
	}
	// Now cool down.
	for i := 0; i < 100; i++ {
		cur := n.Update(0, 0.001)
		if cur > prev+1e-12 {
			t.Fatal("cooling must be monotone under zero power")
		}
		prev = cur
	}
}

func TestUpdateLargeStepStable(t *testing.T) {
	n, _ := NewNode(DefaultConfig())
	got := n.Update(10, 1e6) // absurdly large step must not overshoot
	want := n.SteadyState(10)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("large step temp = %g, want steady state %g", got, want)
	}
}

// Property: temperature always stays between ambient and the steady state
// of the maximum applied power.
func TestTemperatureEnvelope(t *testing.T) {
	f := func(powers [20]float64, dts [20]float64) bool {
		n, _ := NewNode(DefaultConfig())
		ambient := DefaultConfig().AmbientC
		maxP := 0.0
		for i := range powers {
			p := math.Abs(math.Mod(powers[i], 15))
			dt := 1e-4 + math.Abs(math.Mod(dts[i], 0.01))
			if p > maxP {
				maxP = p
			}
			temp := n.Update(p, dt)
			if temp < ambient-1e-9 || temp > n.SteadyState(maxP)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
