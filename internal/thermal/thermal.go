// Package thermal provides a first-order lumped RC thermal model per core,
// standing in for the HotSpot simulator the paper integrates with SESC. The
// market mechanism only consumes temperature through the static-power
// feedback loop, so a single-node RC network per core (die-to-ambient
// resistance plus thermal capacitance) preserves the relevant behaviour:
// temperature rises with sustained power, decays toward ambient, and feeds
// leakage back into the power model.
package thermal

import (
	"fmt"
	"math"
)

// Config parameterises an RC node.
type Config struct {
	AmbientC      float64 // ambient/heat-sink temperature
	ResistanceCW  float64 // junction-to-ambient thermal resistance (°C/W)
	TimeConstantS float64 // RC time constant
}

// DefaultConfig models a 65 nm core under a conventional heat sink: 10 W of
// sustained power settles ≈35 °C above ambient within a few hundred ms.
func DefaultConfig() Config {
	return Config{AmbientC: 45, ResistanceCW: 3.5, TimeConstantS: 0.1}
}

// Node is one core's thermal state.
type Node struct {
	cfg  Config
	temp float64
}

// NewNode validates cfg and returns a node at ambient temperature.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ResistanceCW <= 0 || cfg.TimeConstantS <= 0 {
		return nil, fmt.Errorf("thermal: non-positive RC parameters %+v", cfg)
	}
	return &Node{cfg: cfg, temp: cfg.AmbientC}, nil
}

// Temp returns the current junction temperature in °C.
func (n *Node) Temp() float64 { return n.temp }

// SteadyState returns the settled temperature under constant power.
func (n *Node) SteadyState(powerW float64) float64 {
	return n.cfg.AmbientC + powerW*n.cfg.ResistanceCW
}

// Update advances the node by dt seconds under the given power draw and
// returns the new temperature. It uses the exact exponential solution of
// the first-order ODE, so arbitrarily large dt steps remain stable.
func (n *Node) Update(powerW, dt float64) float64 {
	target := n.SteadyState(powerW)
	alpha := 1 - math.Exp(-dt/n.cfg.TimeConstantS)
	n.temp += (target - n.temp) * alpha
	return n.temp
}
