package experiments

import (
	"math"
	"strings"
	"testing"

	"rebudget/internal/cmpsim"
)

func TestFig1Bounds(t *testing.T) {
	pts := Fig1(101)
	if len(pts) != 101 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 0 || pts[100].X != 1 {
		t.Error("domain endpoints wrong")
	}
	// Known anchor values.
	if math.Abs(pts[50].PoABound-0.5) > 1e-9 {
		t.Errorf("PoA(0.5) = %g", pts[50].PoABound)
	}
	if math.Abs(pts[100].PoABound-0.75) > 1e-9 {
		t.Errorf("PoA(1) = %g", pts[100].PoABound)
	}
	if math.Abs(pts[100].EFBound-(2*math.Sqrt2-2)) > 1e-9 {
		t.Errorf("EF(1) = %g", pts[100].EFBound)
	}
	var sb strings.Builder
	RenderFig1(&sb, pts)
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Error("render missing header")
	}
}

func TestFig2Curves(t *testing.T) {
	curves, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || curves[0].App != "mcf" || curves[1].App != "vpr" {
		t.Fatalf("unexpected curve set: %+v", curves)
	}
	mcf := curves[0]
	// The hull must strictly exceed raw utility in the cliff region.
	lifted := false
	for i := range mcf.Raw {
		if mcf.Hull[i].Y > mcf.Raw[i].Y+0.1 {
			lifted = true
		}
		if mcf.Hull[i].Y < mcf.Raw[i].Y-1e-9 {
			t.Errorf("hull below raw at %g regions", mcf.Raw[i].X)
		}
	}
	if !lifted {
		t.Error("mcf hull never lifts the cliff")
	}
	var sb strings.Builder
	RenderFig2(&sb, curves)
	if !strings.Contains(sb.String(), "mcf") || !strings.Contains(sb.String(), "vpr") {
		t.Error("render missing apps")
	}
}

func TestFig3Story(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mechanisms) != 3 {
		t.Fatalf("mechanisms = %d", len(r.Mechanisms))
	}
	eq, rb20, rb40 := r.Mechanisms[0], r.Mechanisms[1], r.Mechanisms[2]
	if eq.Mechanism != "EqualBudget" || rb20.Mechanism != "ReBudget-20" || rb40.Mechanism != "ReBudget-40" {
		t.Fatalf("mechanism order wrong: %s %s %s", eq.Mechanism, rb20.Mechanism, rb40.Mechanism)
	}
	// §6.1.3: re-assignment raises MUR and efficiency monotonically.
	if rb20.MUR < eq.MUR-0.02 {
		t.Errorf("ReBudget-20 MUR %g below EqualBudget %g", rb20.MUR, eq.MUR)
	}
	if rb40.MUR < rb20.MUR-0.05 {
		t.Errorf("ReBudget-40 MUR %g below ReBudget-20 %g", rb40.MUR, rb20.MUR)
	}
	if rb20.Efficiency < eq.Efficiency-0.02 || rb40.Efficiency < rb20.Efficiency-0.02 {
		t.Errorf("efficiency not improving: %g → %g → %g",
			eq.Efficiency, rb20.Efficiency, rb40.Efficiency)
	}
	// Budgets: under EqualBudget everyone holds 100; ReBudget cuts the
	// over-budgeted B apps but keeps the hungriest app at 100.
	for _, a := range r.Apps {
		if math.Abs(eq.BudgetByApp[a]-100) > 1e-9 {
			t.Errorf("EqualBudget budget for %s = %g", a, eq.BudgetByApp[a])
		}
	}
	cutCount := 0
	keep := 0.0
	for _, a := range r.Apps {
		if rb20.BudgetByApp[a] < 99 {
			cutCount++
		}
		if rb20.BudgetByApp[a] > keep {
			keep = rb20.BudgetByApp[a]
		}
	}
	if cutCount == 0 {
		t.Error("ReBudget-20 cut nobody")
	}
	if keep < 99 {
		t.Error("ReBudget-20 should leave the highest-λ app at its full budget")
	}
	// Floors: ReBudget-20 ≥ 61.25, ReBudget-40 ≥ 20 (§6.1.3 / §6.2).
	for _, a := range r.Apps {
		if rb20.BudgetByApp[a] < 61.25-1e-6 {
			t.Errorf("ReBudget-20 budget for %s = %g below 61.25", a, rb20.BudgetByApp[a])
		}
		if rb40.BudgetByApp[a] < 20-1e-6 {
			t.Errorf("ReBudget-40 budget for %s = %g below 20", a, rb40.BudgetByApp[a])
		}
	}
	var sb strings.Builder
	RenderFig3(&sb, r)
	for _, want := range []string{"mcf", "swim", "MUR", "efficiency"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func smallSweep(t *testing.T) *SweepResult {
	t.Helper()
	s, err := RunSweep(8, 3, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepShapeAndOrdering(t *testing.T) {
	s := smallSweep(t)
	if len(s.Bundles) != 18 {
		t.Fatalf("bundles = %d, want 18", len(s.Bundles))
	}
	if len(s.Mechanisms) != 5 {
		t.Fatalf("mechanisms = %v", s.Mechanisms)
	}
	sums := map[string]Summary{}
	for _, sum := range s.Summarize() {
		sums[sum.Mechanism] = sum
	}
	// §6.1: market beats EqualShare; ReBudget beats EqualBudget; the knob
	// is monotone in aggressiveness.
	if sums["EqualBudget"].MedianEff < sums["EqualShare"].MedianEff {
		t.Errorf("EqualBudget median eff %g below EqualShare %g",
			sums["EqualBudget"].MedianEff, sums["EqualShare"].MedianEff)
	}
	if sums["ReBudget-20"].MedianEff < sums["EqualBudget"].MedianEff-0.01 {
		t.Errorf("ReBudget-20 median eff %g below EqualBudget %g",
			sums["ReBudget-20"].MedianEff, sums["EqualBudget"].MedianEff)
	}
	if sums["ReBudget-40"].MedianEff < sums["ReBudget-20"].MedianEff-0.01 {
		t.Errorf("ReBudget-40 median eff %g below ReBudget-20 %g",
			sums["ReBudget-40"].MedianEff, sums["ReBudget-20"].MedianEff)
	}
	// §6.2: fairness ordering is the mirror image.
	if sums["EqualBudget"].MedianEF < sums["ReBudget-20"].MedianEF-0.02 {
		t.Errorf("EqualBudget median EF %g below ReBudget-20 %g",
			sums["EqualBudget"].MedianEF, sums["ReBudget-20"].MedianEF)
	}
	if sums["ReBudget-20"].MedianEF < sums["ReBudget-40"].MedianEF-0.02 {
		t.Errorf("ReBudget-20 median EF %g below ReBudget-40 %g",
			sums["ReBudget-20"].MedianEF, sums["ReBudget-40"].MedianEF)
	}
	// Theorem 2 must hold for every market bundle.
	for _, name := range []string{"EqualBudget", "ReBudget-20", "ReBudget-40"} {
		if v := sums[name].BoundViolation; v != 0 {
			t.Errorf("%s violates the Theorem 2 bound on %d bundles", name, v)
		}
	}
	// MaxEfficiency is typically unfair (§6.2).
	var worstMaxEF float64 = 2
	for _, b := range s.Bundles {
		if b.MaxEffEF < worstMaxEF {
			worstMaxEF = b.MaxEffEF
		}
	}
	if worstMaxEF > 0.8 {
		t.Errorf("MaxEfficiency worst EF %g suspiciously fair", worstMaxEF)
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := RunSweep(8, 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(8, 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Bundles {
		for mi := range a.Mechanisms {
			if a.Bundles[i].Efficiency[mi] != b.Bundles[i].Efficiency[mi] {
				t.Fatal("sweep not deterministic")
			}
		}
	}
}

func TestSweepConvergence(t *testing.T) {
	s := smallSweep(t)
	for _, sum := range s.Summarize() {
		if sum.Mechanism == "EqualShare" {
			continue
		}
		// §6.4: the fail-safe is 30 iterations per equilibrium; ReBudget
		// runs several equilibria.
		if sum.P95Iterations > 30*sum.MeanRuns {
			t.Errorf("%s p95 iterations %g implausibly high", sum.Mechanism, sum.P95Iterations)
		}
	}
	var sb strings.Builder
	RenderConvergence(&sb, s)
	if !strings.Contains(sb.String(), "convergence") {
		t.Error("render missing header")
	}
}

func TestRenderFig4(t *testing.T) {
	s := smallSweep(t)
	var sb strings.Builder
	RenderFig4(&sb, s)
	out := sb.String()
	for _, want := range []string{"Figure 4", "efficiency", "envy-freeness", "summary", "ReBudget-40"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig5SmallSimulation(t *testing.T) {
	cfg := cmpsim.DefaultConfig(4)
	cfg.Epochs = 6
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2500
	r, err := RunFig5(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bundles) != 6 {
		t.Fatalf("bundles = %d", len(r.Bundles))
	}
	for _, b := range r.Bundles {
		for mi, m := range r.Mechanisms {
			if b.Efficiency[mi] <= 0 || b.Efficiency[mi] > 1.6 {
				t.Errorf("%s/%s: efficiency %g out of range", b.Category, m, b.Efficiency[mi])
			}
			if b.EnvyFreeness[mi] < 0 || b.EnvyFreeness[mi] > 1 {
				t.Errorf("%s/%s: EF %g out of range", b.Category, m, b.EnvyFreeness[mi])
			}
		}
	}
	var sb strings.Builder
	RenderFig5(&sb, r)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestTable1Render(t *testing.T) {
	var sb strings.Builder
	RenderTable1(&sb)
	out := sb.String()
	for _, want := range []string{"Table 1", "64-core", "640", "32", "0.8-4.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
}

func TestAblationTalus(t *testing.T) {
	rows, err := AblationTalus()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	hull, raw := rows[0], rows[1]
	// The design-choice claim: convexified utilities let the market find a
	// better allocation than cliffy ones.
	if hull.Efficiency < raw.Efficiency-0.02 {
		t.Errorf("talus (%g) should not lose to raw cliffs (%g)", hull.Efficiency, raw.Efficiency)
	}
	var sb strings.Builder
	RenderAblation(&sb, "talus", rows)
	if !strings.Contains(sb.String(), "talus-hull") {
		t.Error("render missing row")
	}
}

func TestAblationLambdaThreshold(t *testing.T) {
	rows, err := AblationLambdaThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A more permissive threshold cuts more budgets: MBR non-increasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].MBR > rows[i-1].MBR+0.05 {
			t.Errorf("MBR should not grow with threshold: %g → %g at %s",
				rows[i-1].MBR, rows[i].MBR, rows[i].Config)
		}
	}
}

func TestAblationBackoff(t *testing.T) {
	rows, err := AblationBackoff()
	if err != nil {
		t.Fatal(err)
	}
	expo, fixed := rows[0], rows[1]
	if expo.Config != "exponential-backoff" || fixed.Config != "fixed-step" {
		t.Fatalf("row order wrong: %+v", rows)
	}
	// Both respect the same floor.
	if expo.MBR < 0.6125-1e-6 || fixed.MBR < 0.6125-1e-6 {
		t.Errorf("floor violated: %g / %g", expo.MBR, fixed.MBR)
	}
}

func TestAblationBidOptimizer(t *testing.T) {
	rows, err := AblationBidOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Finer shift floors should not hurt efficiency materially.
	if rows[2].Efficiency < rows[0].Efficiency-0.05 {
		t.Errorf("finer optimizer lost efficiency: %g vs %g",
			rows[2].Efficiency, rows[0].Efficiency)
	}
	// §4.1.2's hill climb at the paper's 1%% floor must land within a few
	// percent of the water-filling reference.
	if rows[1].Efficiency < rows[3].Efficiency-0.05 {
		t.Errorf("hill climb %g far below greedy reference %g",
			rows[1].Efficiency, rows[3].Efficiency)
	}
}

func TestAblationGranularity(t *testing.T) {
	cfg := cmpsim.DefaultConfig(16)
	cfg.Epochs = 8
	cfg.WarmupEpochs = 4
	cfg.MaxAccessesPerCoreEpoch = 4000
	rows, err := AblationGranularity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WeightedSpeedup <= 0 {
			t.Errorf("%s: no throughput", r.Config)
		}
	}
	// The decisive claim: region granularity scales to 64 cores, way
	// quotas cannot (32 ways < 64 partitions).
	if !rows[0].Feasible64 {
		t.Error("region enforcement should host 64 cores")
	}
	if rows[1].Feasible64 {
		t.Error("way quotas cannot host 64 partitions in 32 ways")
	}
	var sb strings.Builder
	RenderGranularity(&sb, rows)
	if !strings.Contains(sb.String(), "UCP") {
		t.Error("render missing row")
	}
}

func TestSummarizeByCategory(t *testing.T) {
	s := smallSweep(t)
	rows := s.SummarizeByCategory()
	if len(rows) != 6*len(s.Mechanisms) {
		t.Fatalf("rows = %d, want %d", len(rows), 6*len(s.Mechanisms))
	}
	// Values are sane; the paper-specific per-category ordering (§6.1:
	// EqualShare best on BBPN) depends on the exact workload models and is
	// compared in EXPERIMENTS.md, not asserted here.
	for _, r := range rows {
		if r.MedianEff <= 0 || r.MedianEff > 1.05 {
			t.Errorf("%s/%s median efficiency %g out of range", r.Category, r.Mechanism, r.MedianEff)
		}
		if r.MedianEF < 0 || r.MedianEF > 1 {
			t.Errorf("%s/%s median EF %g out of range", r.Category, r.Mechanism, r.MedianEF)
		}
		if r.MinEff > r.MedianEff+1e-9 {
			t.Errorf("%s/%s min efficiency above median", r.Category, r.Mechanism)
		}
	}
	var sb strings.Builder
	RenderCategorySummary(&sb, s)
	for _, cat := range []string{"CPBN", "BBPN", "CPBB"} {
		if !strings.Contains(sb.String(), cat) {
			t.Errorf("render missing category %s", cat)
		}
	}
}

func TestSweepColumnHelpers(t *testing.T) {
	s := smallSweep(t)
	if s.Column("nope", func(b BundleResult, mi int) float64 { return 0 }) != nil {
		t.Error("unknown mechanism should yield nil column")
	}
	col := s.EfficiencyColumn("EqualBudget")
	if len(col) != len(s.Bundles) {
		t.Fatalf("column length %d", len(col))
	}
	if FractionAtLeast(nil, 0.5) != 0 {
		t.Error("empty fraction should be 0")
	}
	if FractionAtLeast([]float64{1, 0, 1, 1}, 0.5) != 0.75 {
		t.Error("fraction computation wrong")
	}
}

func TestRunSweepRejectsBadWorkload(t *testing.T) {
	if _, err := RunSweep(6, 1, 1, nil); err == nil {
		t.Error("non-multiple-of-4 cores accepted")
	}
}

func TestPhaseValidationAgreement(t *testing.T) {
	cfg := cmpsim.DefaultConfig(8)
	cfg.Epochs = 10
	rows, mae, err := PhaseValidation(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The analytic model and the execution-driven measurement must agree
	// to within monitoring/transient error — the §6 cross-check.
	if mae > 0.2 {
		t.Errorf("phase-1 vs phase-2 mean absolute error %.3f too large", mae)
	}
	var sb strings.Builder
	RenderValidation(&sb, rows, mae)
	if !strings.Contains(sb.String(), "mean absolute error") {
		t.Error("render missing MAE")
	}
}
