package experiments

import (
	"strings"
	"testing"
)

// TestProbeSummaries prints the headline tables under -v for manual
// comparison against the paper's §6 numbers.
func TestProbeSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	r3, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderFig3(&sb, r3)
	s, err := RunSweep(8, 5, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	RenderSummary(&sb, s)
	RenderConvergence(&sb, s)
	t.Log("\n" + sb.String())
}
