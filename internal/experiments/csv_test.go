package experiments

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"rebudget/internal/cmpsim"
)

func TestWriteSweepCSV(t *testing.T) {
	s, err := RunSweep(8, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSweepCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	// Header + 6 bundles × (5 mechanisms + MaxEfficiency row).
	want := 1 + 6*(len(s.Mechanisms)+1)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "bundle" || rows[0][3] != "efficiency" {
		t.Errorf("header wrong: %v", rows[0])
	}
	// Every efficiency parses and is positive.
	for _, r := range rows[1:] {
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad efficiency cell %q", r[3])
		}
	}
}

func TestWriteFig5CSV(t *testing.T) {
	cfg := cmpsim.DefaultConfig(4)
	cfg.Epochs = 4
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2000
	r, err := RunFig5(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig5CSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 6*(len(r.Mechanisms)+1)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestWriteFig2CSV(t *testing.T) {
	curves, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig2CSV(&sb, curves); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+2*16 {
		t.Fatalf("rows = %d", len(rows))
	}
}
