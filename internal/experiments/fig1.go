// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on top of the reproduction's substrates. Each driver
// returns structured data and can render the same rows/series the paper
// reports to an io.Writer.
package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/metrics"
)

// Fig1Point is one sample of the two theory curves in Figure 1.
type Fig1Point struct {
	X        float64 // MUR (left plot) or MBR (right plot)
	PoABound float64
	EFBound  float64
}

// Fig1 samples Theorem 1 and Theorem 2 across [0, 1].
func Fig1(samples int) []Fig1Point {
	if samples < 2 {
		samples = 2
	}
	out := make([]Fig1Point, samples)
	for i := range out {
		x := float64(i) / float64(samples-1)
		out[i] = Fig1Point{
			X:        x,
			PoABound: metrics.PoALowerBound(x),
			EFBound:  metrics.EnvyFreenessBound(x),
		}
	}
	return out
}

// RenderFig1 prints the two series.
func RenderFig1(w io.Writer, pts []Fig1Point) {
	fmt.Fprintln(w, "# Figure 1: theoretical bounds")
	fmt.Fprintln(w, "# left:  Price of Anarchy lower bound vs Market Utility Range (Theorem 1)")
	fmt.Fprintln(w, "# right: envy-freeness lower bound vs Market Budget Range (Theorem 2)")
	fmt.Fprintf(w, "%8s  %12s  %12s\n", "x", "PoA(MUR=x)", "EF(MBR=x)")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.3f  %12.4f  %12.4f\n", p.X, p.PoABound, p.EFBound)
	}
}
