package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSweepCSV emits the Figure 4 dataset as tidy CSV (one row per
// bundle × mechanism) for external plotting.
func WriteSweepCSV(w io.Writer, s *SweepResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"bundle", "category", "mechanism", "efficiency", "envy_freeness",
		"mur", "mbr", "ef_bound", "iterations", "equilibrium_runs", "converged",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for bi, b := range s.Bundles {
		for mi, mech := range s.Mechanisms {
			rec := []string{
				strconv.Itoa(bi),
				string(b.Bundle.Category),
				mech,
				f(b.Efficiency[mi]),
				f(b.EnvyFreeness[mi]),
				f(b.MUR[mi]),
				f(b.MBR[mi]),
				f(b.EFBound[mi]),
				strconv.Itoa(b.Iterations[mi]),
				strconv.Itoa(b.Runs[mi]),
				strconv.FormatBool(b.Converged[mi]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		// The MaxEfficiency reference appears as its own pseudo-mechanism
		// row so the fairness panel can include it.
		rec := []string{
			strconv.Itoa(bi), string(b.Bundle.Category), "MaxEfficiency",
			"1", f(b.MaxEffEF), "", "", "", "0", "0", "true",
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV emits the detailed-simulation dataset as tidy CSV.
func WriteFig5CSV(w io.Writer, r *Fig5Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"category", "mechanism", "efficiency", "envy_freeness", "mean_iterations",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, b := range r.Bundles {
		for mi, mech := range r.Mechanisms {
			if err := cw.Write([]string{
				string(b.Category), mech,
				f(b.Efficiency[mi]), f(b.EnvyFreeness[mi]), f(b.MeanIterations[mi]),
			}); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{
			string(b.Category), "MaxEfficiency", "1", f(b.MaxEffEF), "0",
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig2CSV emits the cache-utility curves.
func WriteFig2CSV(w io.Writer, curves []Fig2Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "regions", "raw_utility", "talus_utility"}); err != nil {
		return err
	}
	for _, c := range curves {
		for i := range c.Raw {
			if err := cw.Write([]string{
				c.App,
				fmt.Sprintf("%g", c.Raw[i].X),
				fmt.Sprintf("%g", c.Raw[i].Y),
				fmt.Sprintf("%g", c.Hull[i].Y),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTenantFrontierCSV emits the tenant-economy frontier as tidy CSV (one
// row per floor × mode).
func WriteTenantFrontierCSV(w io.Writer, r *TenantFrontierResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"floor", "mode", "efficiency", "min_fairness", "lent_total", "reclaimed_total",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, p := range r.Points {
		mode := "static"
		if p.Lending {
			mode = "lending"
		}
		if err := cw.Write([]string{
			f(p.Floor), mode, f(p.Efficiency), f(p.MinFairness), f(p.LentTotal), f(p.ReclaimedTotal),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
