package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// GranularityRow compares partition-enforcement granularities in the
// detailed simulator.
type GranularityRow struct {
	Config          string
	WeightedSpeedup float64
	EnvyFreeness    float64
	// Feasible64 reports whether the enforcement can host a 64-core CMP
	// at all (32 ways cannot give 64 partitions a way each; 128 kB
	// regions scale unchanged). This, not the head-to-head number, is
	// the paper's decisive argument for fine granularity.
	Feasible64 bool
}

// AblationGranularity runs a 16-core CPBB bundle under ReBudget-20 with
// the paper's Futility-Scaling 128 kB regions + Talus shadows versus
// strict UCP-style way quotas — the design choice §4.1.1 makes when it
// adopts fine-grained partitioning. The scale matters: at 16 cores on a
// 16-way cache, way quotas degenerate to one fixed way per core (the
// market cannot express any cache preference at all), and beyond that
// they are outright infeasible — while region-granularity targets keep
// working unchanged up to 64 cores.
func AblationGranularity(cfg cmpsim.Config) ([]GranularityRow, error) {
	return Engine{}.AblationGranularity(cfg)
}

// AblationGranularity is the engine-scheduled variant: the two enforcement
// modes are independent chips and run as parallel cells.
func (e Engine) AblationGranularity(cfg cmpsim.Config) ([]GranularityRow, error) {
	cfg.Cores = 16
	bundle, err := workload.Generate(workload.CPBB, cfg.Cores, numeric.NewRand(9))
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name string
		way  bool
	}{
		{"regions+talus (paper)", false},
		{"way-quotas (UCP-style)", true},
	}
	rows := make([]GranularityRow, len(modes))
	err = e.forEach(len(modes), func(i int) error {
		mode := modes[i]
		c := cfg
		c.WayPartition = mode.way
		chip, err := cmpsim.NewChip(c, bundle)
		if err != nil {
			return err
		}
		res, err := chip.Run(core.ReBudget{Step: 20})
		if err != nil {
			return err
		}
		// The scalability check: can this enforcement host 64 cores?
		big := cmpsim.DefaultConfig(64)
		big.WayPartition = mode.way
		bigBundle, err := workload.Generate(workload.CPBB, 64, numeric.NewRand(9))
		if err != nil {
			return err
		}
		_, bigErr := cmpsim.NewChip(big, bigBundle)
		rows[i] = GranularityRow{
			Config:          mode.name,
			WeightedSpeedup: res.WeightedSpeedup,
			EnvyFreeness:    res.EnvyFreeness,
			Feasible64:      bigErr == nil,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderGranularity prints the comparison.
func RenderGranularity(w io.Writer, rows []GranularityRow) {
	fmt.Fprintln(w, "# ablation: partition granularity (16-core detailed simulation, ReBudget-20)")
	fmt.Fprintln(w, "# at 16 cores × 16 ways, way quotas pin every core to one fixed way;")
	fmt.Fprintln(w, "# at 64 cores × 32 ways they cannot host the partitions at all")
	fmt.Fprintf(w, "%-24s %10s %8s %12s\n", "enforcement", "speedup", "EF", "64-core ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10.3f %8.3f %12v\n", r.Config, r.WeightedSpeedup, r.EnvyFreeness, r.Feasible64)
	}
}
