package experiments

import (
	"fmt"
	"io"
	"sort"

	"rebudget/internal/core"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// Fig3Mechanism is one mechanism's per-application marginal utilities on
// the sample BBPC bundle (Figure 3).
type Fig3Mechanism struct {
	Mechanism string
	// LambdaByApp holds λᵢ normalised to the bundle maximum, one entry
	// per distinct application (copies behave identically and are
	// averaged, as in the figure).
	LambdaByApp map[string]float64
	// BudgetByApp is the final budget per distinct application.
	BudgetByApp map[string]float64
	MUR         float64
	Efficiency  float64 // normalised to MaxEfficiency
}

// Fig3Result is the full experiment.
type Fig3Result struct {
	Apps       []string // distinct application names, bundle order
	Mechanisms []Fig3Mechanism
}

// Fig3 runs EqualBudget, ReBudget-20 and ReBudget-40 on the 8-core BBPC
// bundle of §6.1.1 and reports each application's λᵢ and budget.
func Fig3() (*Fig3Result, error) {
	bundle, err := workload.Figure3Bundle()
	if err != nil {
		return nil, err
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		return nil, err
	}
	maxEff, err := (core.MaxEfficiency{}).Allocate(setup.Capacity, setup.Players)
	if err != nil {
		return nil, err
	}

	res := &Fig3Result{}
	seen := map[string]bool{}
	for _, a := range bundle.Apps {
		if !seen[a.Name] {
			seen[a.Name] = true
			res.Apps = append(res.Apps, a.Name)
		}
	}

	for _, alloc := range []core.Allocator{
		core.EqualBudget{},
		core.ReBudget{Step: 20},
		core.ReBudget{Step: 40},
	} {
		out, err := alloc.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			return nil, err
		}
		maxLambda := numeric.Max(out.Lambdas)
		mech := Fig3Mechanism{
			Mechanism:   alloc.Name(),
			LambdaByApp: map[string]float64{},
			BudgetByApp: map[string]float64{},
			MUR:         out.MUR,
			Efficiency:  out.Efficiency() / maxEff.Efficiency(),
		}
		counts := map[string]int{}
		for i, a := range bundle.Apps {
			norm := 0.0
			if maxLambda > 0 {
				norm = out.Lambdas[i] / maxLambda
			}
			mech.LambdaByApp[a.Name] += norm
			mech.BudgetByApp[a.Name] += out.Budgets[i]
			counts[a.Name]++
		}
		for name, k := range counts {
			mech.LambdaByApp[name] /= float64(k)
			mech.BudgetByApp[name] /= float64(k)
		}
		res.Mechanisms = append(res.Mechanisms, mech)
	}
	return res, nil
}

// RenderFig3 prints per-application λ and budget for each mechanism.
func RenderFig3(w io.Writer, r *Fig3Result) {
	fmt.Fprintln(w, "# Figure 3: marginal utility λᵢ per application, sample BBPC bundle")
	fmt.Fprintln(w, "# (λ normalised to the bundle maximum; copies of an app averaged)")
	apps := append([]string(nil), r.Apps...)
	sort.Strings(apps)
	fmt.Fprintf(w, "%-12s", "app")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, "  %14s", m.Mechanism)
	}
	fmt.Fprintln(w)
	for _, a := range apps {
		fmt.Fprintf(w, "%-12s", a)
		for _, m := range r.Mechanisms {
			fmt.Fprintf(w, "  %6.2f (B=%3.0f)", m.LambdaByApp[a], m.BudgetByApp[a])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "MUR")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, "  %14.2f", m.MUR)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "efficiency")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, "  %13.0f%%", m.Efficiency*100)
	}
	fmt.Fprintln(w)
}
